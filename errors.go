package mdz

import (
	"context"
	"errors"
	"fmt"

	"github.com/mdz/mdz/internal/bitstream"
	"github.com/mdz/mdz/internal/budget"
	"github.com/mdz/mdz/internal/core"
)

// Sentinel errors for corrupt or unreadable input. Every decode-side
// failure path in this package wraps one of them, so callers can classify
// failures with errors.Is regardless of the exact message:
//
//	ErrCorruptBlock — a block or stream frame failed validation (bad magic,
//	  CRC mismatch, malformed section, undecodable payload);
//	ErrTruncated — the input ended before a complete value, block or
//	  stream trailer (torn write, partial download);
//	ErrStateDesync — blocks were presented out of order, or a checkpoint
//	  disagrees with the decoder's reconstructed state.
var (
	ErrCorruptBlock = errors.New("mdz: corrupt block")
	ErrTruncated    = errors.New("mdz: truncated input")
	ErrStateDesync  = errors.New("mdz: decoder state desync")
)

// ErrBudgetExceeded is the sentinel matched by every rejection of the
// decode memory governor (Config.MaxDecodeBytes and friends): the input's
// claimed sizes would push the decoder's in-flight allocations past the
// configured ceiling. It deliberately is NOT a corruption sentinel — the
// same input may decode fine under a larger budget — and it passes through
// mapBlockErr unwrapped so callers can distinguish resource rejection from
// damaged data.
var ErrBudgetExceeded = budget.ErrExceeded

// ErrNonFinite is returned by CompressBatch (and everything built on it)
// when the first batch of an axis contains ±Inf. Infinities would poison
// the value-range bound derivation and the quantizer built from it, so
// they are rejected before any encoder state is created — the wrapped
// message names the axis, snapshot and particle index. NaN is not an
// error: it is carried through the outlier path and reconstructed
// bit-exactly.
var ErrNonFinite = errors.New("mdz: non-finite input")

// CorruptBlockError reports a corrupt frame in a framed stream: which
// block, where in the byte stream, and why. It matches ErrCorruptBlock
// under errors.Is and exposes the underlying cause via Unwrap.
type CorruptBlockError struct {
	// Block is the frame sequence number (the expected one, if the frame
	// was too damaged to read its own).
	Block uint32
	// Offset is the absolute byte offset of the frame start in the stream.
	Offset int64
	// Cause is the underlying validation failure.
	Cause error
}

// Error implements error.
func (e *CorruptBlockError) Error() string {
	return fmt.Sprintf("mdz: corrupt block %d at offset %d: %v", e.Block, e.Offset, e.Cause)
}

// Unwrap exposes the underlying cause.
func (e *CorruptBlockError) Unwrap() error { return e.Cause }

// Is reports equivalence to the ErrCorruptBlock sentinel.
func (e *CorruptBlockError) Is(target error) bool { return target == ErrCorruptBlock }

// isCancellation reports a context cancellation or deadline expiry —
// environment outcomes that must never be reclassified as input
// corruption, and that surface even from a Resync reader.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// mapBlockErr classifies an error from the block decode path under the
// package sentinels: out-of-order blocks and state mismatches become
// ErrStateDesync, short inputs ErrTruncated, everything else
// ErrCorruptBlock. Errors already carrying a sentinel pass through.
func mapBlockErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrCorruptBlock) || errors.Is(err, ErrTruncated) || errors.Is(err, ErrStateDesync):
		return err
	case errors.Is(err, ErrBudgetExceeded) || isCancellation(err):
		// Environment errors, not input errors: budget rejections and
		// cancellations must stay matchable as exactly what they are.
		return err
	case errors.Is(err, core.ErrOrder) || errors.Is(err, core.ErrState):
		return fmt.Errorf("%w: %w", ErrStateDesync, err)
	case errors.Is(err, bitstream.ErrShortStream):
		return fmt.Errorf("%w: %w", ErrTruncated, err)
	default:
		return fmt.Errorf("%w: %w", ErrCorruptBlock, err)
	}
}
