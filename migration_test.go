package mdz

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// migrateWriter round-trips a Writer across a simulated process boundary:
// export, serialize, deserialize into fresh objects, resume over a copy of
// the container prefix. The prefix is read from out only after ExportState
// flushes the Writer's buffer — the ordering a real draining server must
// also respect. It returns the resumed writer and its buffer.
func migrateWriter(t *testing.T, w *Writer, out *bytes.Buffer, cfg Config) (*Writer, *bytes.Buffer) {
	t.Helper()
	st, err := w.ExportState()
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	prefix := out.Bytes()
	blob, err := st.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	wire := &WriterState{}
	if err := wire.UnmarshalBinary(blob); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	buf := bytes.NewBuffer(append([]byte(nil), prefix...))
	resumed, err := ResumeWriter(buf, cfg, wire)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	return resumed, buf
}

// TestWriterStateMigration is the session-migration contract behind the
// daemon's drain/restart: a stream split across two Writer lifetimes — the
// second resumed in a "new process" from serialized state — must be
// byte-identical to an unmigrated run and decode bit-identically, for v2
// and v3 formats, across split points landing mid-batch, on a block
// boundary, and before the first flushed block.
func TestWriterStateMigration(t *testing.T) {
	frames := makeFrames(23, 150, 7)
	for _, format := range []int{2, 3} {
		for _, method := range []Method{ADP, MT} {
			// BufferSize 4: split 10 is mid-batch (2 pending), split 8 is a
			// block boundary, split 2 precedes the first flushed block.
			// Depth 3 runs both writer lifetimes pipelined; the reference
			// stays synchronous, so equality also proves the pipeline is
			// byte-invisible across a migration.
			for _, tc := range []struct {
				split, depth int
			}{{10, 0}, {8, 0}, {2, 0}, {10, 3}, {8, 3}, {2, 3}} {
				split := tc.split
				t.Run(fmt.Sprintf("v%d_%v_split%d_depth%d", format, method, split, tc.depth), func(t *testing.T) {
					cfg := Config{
						ErrorBound: 1e-3, Method: method, BufferSize: 4,
						CheckpointInterval: 3, FormatVersion: format,
					}

					var want bytes.Buffer
					full, err := NewWriter(&want, cfg)
					if err != nil {
						t.Fatal(err)
					}
					for _, f := range frames {
						if err := full.WriteFrame(f); err != nil {
							t.Fatal(err)
						}
					}
					if err := full.Close(); err != nil {
						t.Fatal(err)
					}

					cfg.PipelineDepth = tc.depth
					var first bytes.Buffer
					w1, err := NewWriter(&first, cfg)
					if err != nil {
						t.Fatal(err)
					}
					for _, f := range frames[:split] {
						if err := w1.WriteFrame(f); err != nil {
							t.Fatal(err)
						}
					}
					w2, buf := migrateWriter(t, w1, &first, cfg)
					for _, f := range frames[split:] {
						if err := w2.WriteFrame(f); err != nil {
							t.Fatal(err)
						}
					}
					if err := w2.Close(); err != nil {
						t.Fatal(err)
					}

					if !bytes.Equal(want.Bytes(), buf.Bytes()) {
						t.Fatalf("migrated container diverged: %d vs %d bytes", buf.Len(), want.Len())
					}
					wr, wc := full.Stats()
					gr, gc := w2.Stats()
					if wr != gr || wc != gc {
						t.Errorf("migrated Stats = (%d, %d), want (%d, %d)", gr, gc, wr, wc)
					}

					got, err := NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
					if err != nil {
						t.Fatal(err)
					}
					ref, err := NewReader(bytes.NewReader(want.Bytes())).ReadAll()
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(ref) || len(got) != len(frames) {
						t.Fatalf("decoded %d snapshots, want %d", len(got), len(frames))
					}
					for ti := range ref {
						for i := range ref[ti].X {
							if math.Float64bits(ref[ti].X[i]) != math.Float64bits(got[ti].X[i]) ||
								math.Float64bits(ref[ti].Y[i]) != math.Float64bits(got[ti].Y[i]) ||
								math.Float64bits(ref[ti].Z[i]) != math.Float64bits(got[ti].Z[i]) {
								t.Fatalf("migrated decode diverged at t=%d i=%d", ti, i)
							}
						}
					}
				})
			}
		}
	}
}

// gatedSink blocks its first underlying Write until the gate is closed and
// signals entry, so a test can hold the Writer's io goroutine inside the
// sink while compressed batches queue up behind it.
type gatedSink struct {
	buf     bytes.Buffer
	gate    chan struct{}
	entered chan struct{}
	once    sync.Once
}

func (g *gatedSink) Write(p []byte) (int, error) {
	g.once.Do(func() { close(g.entered) })
	<-g.gate
	return g.buf.Write(p)
}

// TestWriterDrainMidPipeline is the SIGTERM-drain contract under load: with
// the io goroutine deterministically blocked inside the sink and compressed
// batches still queued in the pipeline, ExportState must wait for every
// in-flight frame, flush it into the container prefix, and hand over state
// that resumes byte-identically to an unmigrated synchronous run.
//
// Incompressible data (i.i.d. uniform coordinates under a tiny absolute
// bound) makes each batch's payload exceed the Writer's 1 MiB buffer, so
// the io goroutine hits the gated sink on the first data frame while later
// batches are provably still in flight.
func TestWriterDrainMidPipeline(t *testing.T) {
	const m, n, split = 16, 15000, 12
	rng := rand.New(rand.NewSource(41))
	frames := make([]Frame, m)
	for ti := range frames {
		f := Frame{X: make([]float64, n), Y: make([]float64, n), Z: make([]float64, n)}
		for i := 0; i < n; i++ {
			f.X[i], f.Y[i], f.Z[i] = rng.Float64()*100, rng.Float64()*100, rng.Float64()*100
		}
		frames[ti] = f
	}
	cfg := Config{
		ErrorBound: 1e-12, Mode: Absolute, Method: MT,
		BufferSize: 4, CheckpointInterval: 2,
	}

	var want bytes.Buffer
	full, err := NewWriter(&want, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := full.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := full.Close(); err != nil {
		t.Fatal(err)
	}

	cfg.PipelineDepth = 8
	sink := &gatedSink{gate: make(chan struct{}), entered: make(chan struct{})}
	w1, err := NewWriter(sink, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames[:split] {
		if err := w1.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	// The io goroutine is now blocked inside sink.Write on the first data
	// frame; the remaining batches sit in the pipeline queue.
	<-sink.entered
	type exported struct {
		st  *WriterState
		err error
	}
	done := make(chan exported, 1)
	go func() {
		st, err := w1.ExportState()
		done <- exported{st, err}
	}()
	select {
	case <-done:
		t.Fatal("ExportState returned while the io goroutine was blocked mid-pipeline")
	case <-time.After(20 * time.Millisecond):
	}
	close(sink.gate)
	res := <-done
	if res.err != nil {
		t.Fatalf("export: %v", res.err)
	}

	blob, err := res.st.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	wire := &WriterState{}
	if err := wire.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	buf := bytes.NewBuffer(append([]byte(nil), sink.buf.Bytes()...))
	w2, err := ResumeWriter(buf, cfg, wire)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	for _, f := range frames[split:] {
		if err := w2.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), buf.Bytes()) {
		t.Fatalf("drained container diverged: %d vs %d bytes", buf.Len(), want.Len())
	}
}

// TestCheckpointStateCrossProcessV3 mirrors TestCompressorStateResume for
// the v3 format: CheckpointState serialized across a process boundary must
// let a fresh v3 Compressor continue the stream byte-identically.
func TestCheckpointStateCrossProcessV3(t *testing.T) {
	frames := makeFrames(20, 160, 9)
	cfg := Config{ErrorBound: 1e-3, Method: ADP, FormatVersion: 3}
	full, err := NewCompressor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := full.CompressBatch(frames[i*5 : (i+1)*5]); err != nil {
			t.Fatal(err)
		}
	}
	st, err := full.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if st.Format != 3 {
		t.Fatalf("exported checkpoint format = %d, want 3", st.Format)
	}
	payload, err := st.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	wire := &CheckpointState{}
	if err := wire.UnmarshalBinary(payload); err != nil {
		t.Fatal(err)
	}
	if wire.Format != 3 {
		t.Fatalf("decoded checkpoint format = %d, want 3", wire.Format)
	}
	resumed, err := NewCompressor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.ImportState(wire); err != nil {
		t.Fatal(err)
	}
	for i := 2; i < 4; i++ {
		want, err := full.CompressBatch(frames[i*5 : (i+1)*5])
		if err != nil {
			t.Fatal(err)
		}
		got, err := resumed.CompressBatch(frames[i*5 : (i+1)*5])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("v3 batch %d diverged after cross-process resume", i)
		}
	}
}

// TestWriterStateGuards covers the refusal paths of the migration API.
func TestWriterStateGuards(t *testing.T) {
	if _, err := ResumeWriter(&bytes.Buffer{}, Config{ErrorBound: 1e-3}, nil); err == nil {
		t.Error("ResumeWriter accepted nil state")
	}
	if _, err := ResumeWriter(&bytes.Buffer{}, Config{ErrorBound: 1e-3},
		&WriterState{Opened: true, Blocks: 2}); err == nil {
		t.Error("ResumeWriter accepted flushed blocks without a checkpoint")
	}
	if _, err := ResumeWriter(&bytes.Buffer{}, Config{ErrorBound: 1e-3},
		&WriterState{Seq: 3}); err == nil {
		t.Error("ResumeWriter accepted an advanced cursor on an unopened stream")
	}

	// Format mismatch between the checkpoint and the resuming Config.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Config{ErrorBound: 1e-3, BufferSize: 2, FormatVersion: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range makeFrames(4, 60, 1) {
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	st, err := w.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeWriter(&bytes.Buffer{}, Config{ErrorBound: 1e-3, BufferSize: 2}, st); err == nil {
		t.Error("ResumeWriter accepted a v3 checkpoint under a v2 Config")
	}

	// Export after Close is refused; a never-written writer exports a
	// resumable zero state.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.ExportState(); err == nil {
		t.Error("ExportState after Close succeeded")
	}
	fresh, err := NewWriter(&bytes.Buffer{}, Config{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	zst, err := fresh.ExportState()
	if err != nil {
		t.Fatalf("ExportState on a fresh writer: %v", err)
	}
	if zst.Opened || zst.Checkpoint != nil || len(zst.Pending) != 0 {
		t.Errorf("fresh writer state not zero: %+v", zst)
	}
	if _, err := ResumeWriter(&bytes.Buffer{}, Config{ErrorBound: 1e-3}, zst); err != nil {
		t.Errorf("resume from a zero state: %v", err)
	}

	// Serialization rejects damage: truncations and trailing garbage.
	blob, err := st.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := new(WriterState).UnmarshalBinary(append(blob, 0)); err == nil {
		t.Error("trailing writer-state byte accepted")
	}
	for _, cut := range []int{0, 1, 2, len(blob) / 2, len(blob) - 1} {
		if err := new(WriterState).UnmarshalBinary(blob[:cut]); err == nil {
			t.Errorf("truncated writer state (%d bytes) accepted", cut)
		}
	}
}
