package mdz_test

import (
	"fmt"
	"math"

	mdz "github.com/mdz/mdz"
)

// toy builds a deterministic 3-frame trajectory of 4 particles.
func toy() []mdz.Frame {
	frames := make([]mdz.Frame, 3)
	for t := range frames {
		f := mdz.Frame{X: make([]float64, 4), Y: make([]float64, 4), Z: make([]float64, 4)}
		for i := 0; i < 4; i++ {
			f.X[i] = float64(i) + 0.001*float64(t)
			f.Y[i] = 2 * float64(i)
			f.Z[i] = -float64(i)
		}
		frames[t] = f
	}
	return frames
}

func ExampleCompress() {
	frames := toy()
	stream, err := mdz.Compress(frames, mdz.Config{ErrorBound: 1e-3})
	if err != nil {
		panic(err)
	}
	restored, err := mdz.Decompress(stream)
	if err != nil {
		panic(err)
	}
	worst := 0.0
	for t := range frames {
		for i := range frames[t].X {
			if d := math.Abs(frames[t].X[i] - restored[t].X[i]); d > worst {
				worst = d
			}
		}
	}
	fmt.Printf("frames: %d, bound held: %v\n", len(restored), worst <= 1e-3*3.002)
	// Output:
	// frames: 3, bound held: true
}

func ExampleCompressor_streaming() {
	c, err := mdz.NewCompressor(mdz.Config{ErrorBound: 0.01, Mode: mdz.Absolute, Method: mdz.MT})
	if err != nil {
		panic(err)
	}
	d := mdz.NewDecompressor()
	total := 0
	for _, batch := range mdz.Batch(toy(), 2) {
		blk, err := c.CompressBatch(batch)
		if err != nil {
			panic(err)
		}
		out, err := d.DecompressBatch(blk)
		if err != nil {
			panic(err)
		}
		total += len(out)
	}
	fmt.Println("decoded frames:", total)
	// Output:
	// decoded frames: 3
}
