package mdz

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"testing"
)

// buildV1Stream wraps pre-compressed blocks in the legacy container
// layout: "MDZW" followed by 4-byte little-endian length-prefixed blocks.
func buildV1Stream(blks ...[]byte) []byte {
	out := []byte(streamMagic)
	for _, blk := range blks {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(blk)))
		out = append(out, blk...)
	}
	return out
}

// TestV1StreamCompat checks that streams written by pre-checkpoint
// writers still decode byte-identically, including one wrapping the
// checked-in seed fixture block.
func TestV1StreamCompat(t *testing.T) {
	frames := makeFrames(12, 90, 31)
	c, err := NewCompressor(Config{ErrorBound: 1e-3, BufferSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	var blks [][]byte
	for i := 0; i < 3; i++ {
		blk, err := c.CompressBatch(frames[i*4 : (i+1)*4])
		if err != nil {
			t.Fatal(err)
		}
		blks = append(blks, append([]byte(nil), blk...))
	}
	// The reference decode, block by block, as the v1 reader always did.
	d := NewDecompressor()
	var want []Frame
	for _, blk := range blks {
		out, err := d.DecompressBatch(blk)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, out...)
	}

	got, err := NewReader(bytes.NewReader(buildV1Stream(blks...))).ReadAll()
	if err != nil {
		t.Fatalf("v1 stream decode: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("v1 decode yielded %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		if !framesExactEqual(want[i], got[i]) {
			t.Fatalf("v1 frame %d not byte-identical", i)
		}
	}

	// The checked-in fixture block, wrapped as a v1 stream.
	seedBlk, err := os.ReadFile("testdata/seed_block_v1.bin")
	if err != nil {
		t.Skipf("fixture unavailable: %v", err)
	}
	wantFix, err := NewDecompressor().DecompressBatch(seedBlk)
	if err != nil {
		t.Fatal(err)
	}
	gotFix, err := NewReader(bytes.NewReader(buildV1Stream(seedBlk))).ReadAll()
	if err != nil {
		t.Fatalf("fixture v1 stream decode: %v", err)
	}
	if len(gotFix) != len(wantFix) {
		t.Fatalf("fixture decode yielded %d frames, want %d", len(gotFix), len(wantFix))
	}
	for i := range wantFix {
		if !framesExactEqual(wantFix[i], gotFix[i]) {
			t.Fatalf("fixture frame %d not byte-identical", i)
		}
	}
}

// TestV1StreamResyncStops checks that Resync mode on a corrupt v1 stream
// (which has no sync markers to hunt for) stops cleanly after the damage
// and reports it, instead of failing hard.
func TestV1StreamResyncStops(t *testing.T) {
	frames := makeFrames(8, 50, 13)
	c, err := NewCompressor(Config{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	blk1, err := c.CompressBatch(frames[:4])
	if err != nil {
		t.Fatal(err)
	}
	blk1 = append([]byte(nil), blk1...)
	blk2, err := c.CompressBatch(frames[4:])
	if err != nil {
		t.Fatal(err)
	}
	stream := buildV1Stream(blk1, blk2)
	stream[4+4+len(blk1)+4+10] ^= 0x40 // hit block 2's body

	r := NewReaderWith(bytes.NewReader(stream), ReaderOptions{Resync: true})
	got, err := r.ReadAll()
	if err != nil {
		t.Fatalf("resync v1 read failed hard: %v", err)
	}
	if len(got) != 4 {
		t.Fatalf("salvaged %d frames, want the 4 before the damage", len(got))
	}
	stats := r.SalvageStats()
	if stats.CorruptFrames != 1 || stats.FirstError == nil {
		t.Errorf("stats = %+v, want one recorded corruption", stats)
	}
}

// TestPartialMagicIsTruncation checks that a stream cut inside the magic
// (1-3 byte file) reports ErrTruncated, not a clean EOF.
func TestPartialMagicIsTruncation(t *testing.T) {
	for n := 1; n < 4; n++ {
		for _, magic := range []string{streamMagic, streamMagicV2} {
			_, err := NewReader(bytes.NewReader([]byte(magic[:n]))).ReadFrame()
			if errors.Is(err, io.EOF) {
				t.Errorf("%d-byte prefix of %q read as clean EOF", n, magic)
			}
			if !errors.Is(err, ErrTruncated) {
				t.Errorf("%d-byte prefix of %q: err=%v, want ErrTruncated", n, magic, err)
			}
		}
	}
	// A bare magic with nothing after it is also a truncation (a v2 stream
	// always carries at least one data frame and a trailer).
	_, err := NewReader(bytes.NewReader([]byte(streamMagicV2))).ReadFrame()
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("bare v2 magic: err=%v, want ErrTruncated", err)
	}
}

// TestWriterStatsCountFraming checks that compressed-byte stats equal the
// bytes actually written: magic, frame headers, checkpoints and trailer
// included.
func TestWriterStatsCountFraming(t *testing.T) {
	frames := makeFrames(9, 70, 17)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Config{ErrorBound: 1e-3, BufferSize: 2, CheckpointInterval: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, comp := w.Stats()
	if raw != int64(9*70*3*8) {
		t.Errorf("raw = %d, want %d", raw, 9*70*3*8)
	}
	if comp != int64(buf.Len()) {
		t.Errorf("compressed = %d, but %d bytes were written", comp, buf.Len())
	}
}

// TestWriterCloseFlushesAfterError checks that Close drains the buffered
// prefix to the sink even when a later frame already failed, so partial
// data is not silently stranded in the bufio layer.
func TestWriterCloseFlushesAfterError(t *testing.T) {
	var sink bytes.Buffer
	w, err := NewWriter(&sink, Config{ErrorBound: 1e-3, BufferSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	good := makeFrames(2, 40, 3)
	for _, f := range good {
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	// A frame with mismatched axis lengths fails compression mid-stream.
	bad := Frame{X: make([]float64, 40), Y: make([]float64, 39), Z: make([]float64, 40)}
	werr := w.WriteFrame(bad)
	if werr == nil {
		// The size check may trip at the next flush boundary instead.
		werr = w.WriteFrame(Frame{X: make([]float64, 40), Y: make([]float64, 40), Z: make([]float64, 40)})
	}
	if werr == nil {
		t.Fatal("mismatched frame accepted")
	}
	cerr := w.Close()
	if !errors.Is(cerr, werr) && cerr == nil {
		t.Errorf("Close() = %v, want the original write error", cerr)
	}
	if sink.Len() == 0 {
		t.Error("Close stranded the buffered clean prefix")
	}
	// The flushed prefix must itself be a salvageable stream.
	r := NewReaderWith(bytes.NewReader(sink.Bytes()), ReaderOptions{Resync: true})
	gotFrames, err := r.ReadAll()
	if err != nil {
		t.Fatalf("salvage of flushed prefix: %v", err)
	}
	if len(gotFrames) != 2 {
		t.Errorf("salvaged %d frames from flushed prefix, want 2", len(gotFrames))
	}
	if !r.SalvageStats().Truncated {
		t.Error("flushed prefix not reported as truncated")
	}
}

// TestV2OverheadBudget checks the format-cost promise: with
// CheckpointInterval=0 (no checkpoint frames) the v2 container costs at
// most 64 bytes per stream beyond what the v1 framing would have cost for
// the same blocks.
func TestV2OverheadBudget(t *testing.T) {
	frames := makeFrames(8, 100, 29)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Config{ErrorBound: 1e-3, BufferSize: 4}) // 2 data blocks
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	metas := parseV2Frames(t, buf.Bytes())
	v1Cost := 4 // magic
	for _, m := range metas {
		if m.typ == frameCheckpoint {
			t.Fatal("checkpoint frame emitted with CheckpointInterval=0")
		}
		if m.typ == frameData {
			v1Cost += 4 + m.plen
		}
	}
	if over := buf.Len() - v1Cost; over > 64 {
		t.Errorf("v2 overhead beyond v1 framing = %d bytes, budget 64", over)
	}
}

// TestCheckpointFramesEmitted checks the CheckpointInterval contract: one
// checkpoint frame per interval data blocks, none at interval 0.
func TestCheckpointFramesEmitted(t *testing.T) {
	frames := makeFrames(14, 60, 23)
	for _, tc := range []struct {
		interval, want int
	}{{0, 0}, {1, 7}, {3, 2}} {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, Config{ErrorBound: 1e-3, BufferSize: 2, CheckpointInterval: tc.interval})
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range frames {
			if err := w.WriteFrame(f); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		got := len(checkpointFrames(parseV2Frames(t, buf.Bytes())))
		if got != tc.want {
			t.Errorf("interval %d: %d checkpoint frames, want %d", tc.interval, got, tc.want)
		}
		// Checkpoints must never change what a clean read returns.
		out, err := NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
		if err != nil || len(out) != len(frames) {
			t.Errorf("interval %d: clean read got %d frames, err=%v", tc.interval, len(out), err)
		}
	}
}
