package mdz

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"github.com/mdz/mdz/internal/telemetry"
)

// Stream container
//
// Writer produces the v2 recoverable container:
//
//	"MDZ2" frame… trailer-frame
//	frame := sync(4) type(1) seq(4 LE) len(4 LE) hcrc(4 LE) payload pcrc(4 LE)
//
// Every frame is independently locatable (sync marker) and verifiable
// (hcrc covers type/seq/len so a corrupted length can never cause an
// over-read; pcrc covers the payload, independent of the core block's own
// CRC footer). Frame types: data (one compressed batch), checkpoint
// (serialized CheckpointState, emitted every Config.CheckpointInterval
// data blocks) and trailer (total snapshot/block counts, distinguishing
// clean EOF from truncation).
//
// Reader also accepts the legacy v1 container ("MDZW" + length-prefixed
// blocks) written before the framed format existed. In Resync mode a
// corrupt frame does not kill the stream: the reader scans forward for the
// next sync marker, drops frames until decoder state is re-established
// (immediately if the clean prefix seeded it, else at the next
// checkpoint), and accounts for everything lost in SalvageStats.

const (
	streamMagic   = "MDZW" // v1: length-prefixed blocks, no recovery metadata
	streamMagicV2 = "MDZ2" // v2: sync-framed blocks, checkpoints, trailer
	// v3 uses the exact v2 framing (sync markers, checkpoints, trailer,
	// resync) but marks that the frames carry format-v3 blocks, which
	// pre-v3 builds cannot decode; the distinct magic fails them fast.
	streamMagicV3 = "MDZ3"
)

// Frame types of the v2 container.
const (
	frameData       = 0
	frameCheckpoint = 1
	frameTrailer    = 2
	// frameSeekIndex carries the opt-in seek table (Config.SeekIndex): one
	// offset/seq/snapshot-range record per data and checkpoint frame,
	// emitted between the last data frame and the trailer. Readers that
	// don't consult it skip it like any other non-data frame; salvage-mode
	// readers predating the type resynchronize past it.
	frameSeekIndex = 3
)

// frameSync is the v2 frame marker. The non-ASCII guard bytes keep it from
// colliding with text and with the other MDZ magics.
var frameSync = [4]byte{0xD6, 'M', 'Z', 0xB1}

const (
	frameHeaderSize = 17      // sync(4) + type(1) + seq(4) + len(4) + hcrc(4)
	frameCRCSize    = 4       // payload CRC32C
	maxFramePayload = 1 << 31 // sanity cap on the claimed payload length
)

// MaxPipelineDepth caps Config.PipelineDepth: beyond a few in-flight
// batches the overlap is already complete and additional depth only holds
// more compressed blocks in memory.
const MaxPipelineDepth = 64

// wireItem is one framed record queued between the Writer's compress stage
// and its io stage. The sequence number is assigned at enqueue time (in
// deterministic caller order), so the io stage is pure framing: header
// build, CRCs and writes.
type wireItem struct {
	typ     byte
	seq     uint32
	payload []byte
}

// Writer compresses frames onto an io.Writer as a framed MDZ stream,
// buffering BufferSize snapshots per block — the natural interface for
// in-situ dumping from a running simulation. Config.Workers and
// Config.Shards govern the parallel pipeline exactly as in CompressBatch;
// Config.CheckpointInterval controls how often recovery checkpoints are
// embedded (see Reader's Resync mode).
//
//	w := mdz.NewWriter(file, mdz.Config{ErrorBound: 1e-3})
//	for step := ...; ; {
//	    if dumpNow { w.WriteFrame(frame) }
//	}
//	w.Close() // flushes the final partial batch and writes the trailer
type Writer struct {
	c        *Compressor
	w        *bufio.Writer
	pending  []Frame
	bs       int
	interval int
	err      error
	closed   bool
	opened   bool
	seq      uint32 // next frame sequence number
	blocks   int64  // data blocks written
	frames   int64  // snapshots flushed into blocks
	// raw/compressed byte counters for reporting
	rawBytes, compBytes int64
	tel                 streamWriterTel

	// Seek table (Config.SeekIndex): one entry per data/checkpoint frame,
	// emitted as a frameSeekIndex frame just before the trailer at Close.
	indexOn bool
	index   []SeekEntry

	// Pipelined mode (Config.PipelineDepth > 0): frames are enqueued on
	// pipe — already sequence-numbered and fully accounted — and a single
	// io goroutine performs the header/CRC/write work, overlapping it with
	// the caller's compression of the next batch. All counters above are
	// caller-side and deterministic; only w.w is touched by the io
	// goroutine, so every caller-side use of w.w first drains the queue.
	pipe     chan wireItem
	ioDone   chan struct{}
	inflight sync.WaitGroup // enqueued but not yet emitted items
	ioMu     sync.Mutex
	ioErr    error // first io-stage failure; surfaces on the next drain
}

// streamWriterTel is the Writer's instrument set. All counters are nil-safe,
// so the zero value is the disabled state.
type streamWriterTel struct {
	// frames counts every framed record; checkpoints the checkpoint subset.
	frames, checkpoints *telemetry.Counter
	// framingBytes accumulates container overhead (magic, frame headers,
	// CRCs); checkpointBytes the checkpoint payloads. Together they are the
	// stream's cost over the bare compressed blocks.
	framingBytes, checkpointBytes *telemetry.Counter
	// pipelineStalls counts enqueues that found the pipeline queue full:
	// the compress stage outran the io stage by the full PipelineDepth and
	// had to wait. A high rate means the sink, not compression, bounds
	// throughput (or the depth is too small).
	pipelineStalls *telemetry.Counter
}

func newStreamWriterTel(reg *telemetry.Registry) streamWriterTel {
	return streamWriterTel{
		frames:          reg.Counter("stream.frames"),
		checkpoints:     reg.Counter("stream.checkpoints"),
		framingBytes:    reg.Counter("stream.framing.bytes"),
		checkpointBytes: reg.Counter("stream.checkpoint.bytes"),
		pipelineStalls:  reg.Counter("stream.pipeline.stalls"),
	}
}

// NewWriter returns a Writer with the given configuration. The stream
// header is written lazily with the first frame.
func NewWriter(w io.Writer, cfg Config) (*Writer, error) {
	c, err := NewCompressor(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.CheckpointInterval < 0 {
		return nil, fmt.Errorf("mdz: CheckpointInterval must be non-negative, got %d", cfg.CheckpointInterval)
	}
	bs := cfg.BufferSize
	if bs <= 0 {
		bs = DefaultBufferSize
	}
	sw := &Writer{
		c: c, w: bufio.NewWriterSize(w, 1<<20), bs: bs,
		interval: cfg.CheckpointInterval,
		indexOn:  cfg.SeekIndex,
		tel:      newStreamWriterTel(c.reg),
	}
	if cfg.PipelineDepth > 0 {
		// One io goroutine per Writer; it owns w.w until Close. A pipelined
		// Writer must be Closed (even after an error) to release it.
		sw.pipe = make(chan wireItem, cfg.PipelineDepth)
		sw.ioDone = make(chan struct{})
		go sw.ioLoop()
	}
	return sw, nil
}

// WriteFrame buffers one snapshot, flushing a compressed block every
// BufferSize frames.
func (w *Writer) WriteFrame(f Frame) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return errors.New("mdz: write after Close")
	}
	if !w.opened {
		magic := streamMagicV2
		if w.c.cfg.FormatVersion == 3 {
			magic = streamMagicV3
		}
		if _, err := w.w.WriteString(magic); err != nil {
			return w.fail(err)
		}
		w.compBytes += int64(len(magic))
		w.tel.framingBytes.Add(int64(len(magic)))
		w.opened = true
	}
	w.pending = append(w.pending, f)
	if len(w.pending) >= w.bs {
		return w.flush()
	}
	return nil
}

func (w *Writer) flush() error {
	if len(w.pending) == 0 {
		return nil
	}
	blk, err := w.c.CompressBatch(w.pending)
	if err != nil {
		return w.fail(err)
	}
	// Counters are caller-side even in pipelined mode, so w.compBytes and
	// w.seq at this point are exactly the frame's wire offset and sequence.
	entry := SeekEntry{
		Offset: w.compBytes, Seq: w.seq, Type: frameData,
		SnapFrom: w.frames, SnapCount: len(w.pending),
	}
	if err := w.writeFrame(frameData, blk); err != nil {
		return err
	}
	if w.indexOn {
		w.index = append(w.index, entry)
	}
	w.rawBytes += int64(len(w.pending) * w.pending[0].N() * 3 * 8)
	w.blocks++
	w.frames += int64(len(w.pending))
	w.pending = w.pending[:0]
	if w.interval > 0 && w.blocks%int64(w.interval) == 0 {
		return w.writeCheckpoint()
	}
	return nil
}

// writeFrame emits one framed record and accounts for its full wire size.
// All accounting is caller-side (and therefore deterministic): in pipelined
// mode only the header/CRC/write work of emitFrame is deferred to the io
// goroutine, so the wire bytes are identical in both modes.
func (w *Writer) writeFrame(typ byte, payload []byte) error {
	if len(payload) > maxFramePayload {
		return w.fail(fmt.Errorf("mdz: frame payload of %d bytes exceeds format limit", len(payload)))
	}
	seq := w.seq
	w.seq++
	w.compBytes += int64(frameHeaderSize + len(payload) + frameCRCSize)
	w.tel.frames.Inc()
	w.tel.framingBytes.Add(frameHeaderSize + frameCRCSize)
	if typ == frameCheckpoint {
		w.tel.checkpoints.Inc()
		w.tel.checkpointBytes.Add(int64(len(payload)))
	}
	if w.pipe != nil {
		if err := w.ioFailure(); err != nil {
			return w.fail(err)
		}
		it := wireItem{typ: typ, seq: seq, payload: payload}
		w.inflight.Add(1)
		select {
		case w.pipe <- it:
		default:
			// Full queue: the io stage is the bottleneck right now.
			w.tel.pipelineStalls.Inc()
			w.pipe <- it
		}
		return nil
	}
	if err := w.emitFrame(wireItem{typ: typ, seq: seq, payload: payload}); err != nil {
		return w.fail(err)
	}
	return nil
}

// emitFrame performs the io-stage work of one frame: header build, CRCs and
// the three writes. It runs on the caller in synchronous mode and on the io
// goroutine in pipelined mode, and never touches Writer state beyond w.w.
func (w *Writer) emitFrame(it wireItem) error {
	var hdr [frameHeaderSize]byte
	copy(hdr[:4], frameSync[:])
	hdr[4] = it.typ
	binary.LittleEndian.PutUint32(hdr[5:9], it.seq)
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(len(it.payload)))
	binary.LittleEndian.PutUint32(hdr[13:17], crc32.Checksum(hdr[4:13], crcTable))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(it.payload); err != nil {
		return err
	}
	var pcrc [frameCRCSize]byte
	binary.LittleEndian.PutUint32(pcrc[:], crc32.Checksum(it.payload, crcTable))
	if _, err := w.w.Write(pcrc[:]); err != nil {
		return err
	}
	return nil
}

// ioLoop is the pipelined Writer's io stage: it frames and writes queued
// items in enqueue order. After the first failure it keeps draining the
// queue — dropping writes — so the compress stage never blocks on a dead
// sink; the error surfaces through ioFailure on the next caller-side drain.
func (w *Writer) ioLoop() {
	defer close(w.ioDone)
	for it := range w.pipe {
		if w.ioFailure() == nil {
			if err := w.emitFrame(it); err != nil {
				w.ioMu.Lock()
				w.ioErr = err
				w.ioMu.Unlock()
			}
		}
		w.inflight.Done()
	}
}

// ioFailure reports the io stage's first failure, if any.
func (w *Writer) ioFailure() error {
	w.ioMu.Lock()
	defer w.ioMu.Unlock()
	return w.ioErr
}

// drain blocks until every enqueued frame has been emitted (or dropped by a
// failed io stage) and reports the io stage's first failure. After a clean
// drain the caller may touch w.w: the io goroutine is parked on an empty
// queue.
func (w *Writer) drain() error {
	if w.pipe == nil {
		return nil
	}
	w.inflight.Wait()
	return w.ioFailure()
}

// stopPipeline shuts the io stage down: closes the queue, waits for the io
// goroutine to exit and reports its first failure. Idempotent; a no-op for
// synchronous Writers.
func (w *Writer) stopPipeline() error {
	if w.pipe == nil {
		return nil
	}
	close(w.pipe)
	<-w.ioDone
	w.pipe = nil
	return w.ioFailure()
}

// writeCheckpoint embeds the compressor's current cross-batch state so a
// resyncing reader can restart decoding after this point.
func (w *Writer) writeCheckpoint() error {
	st, err := w.c.ExportState()
	if err != nil {
		return w.fail(err)
	}
	payload, err := st.MarshalBinary()
	if err != nil {
		return w.fail(err)
	}
	entry := SeekEntry{
		Offset: w.compBytes, Seq: w.seq, Type: frameCheckpoint, SnapFrom: w.frames,
	}
	if err := w.writeFrame(frameCheckpoint, payload); err != nil {
		return err
	}
	if w.indexOn {
		w.index = append(w.index, entry)
	}
	return nil
}

func (w *Writer) fail(err error) error {
	w.err = err
	return err
}

// Flush forwards every container byte buffered inside the Writer to the
// underlying io.Writer. It does NOT flush the pending partial batch —
// snapshots not yet compressed into a block stay pending until BufferSize
// is reached or Close runs — so the flushed prefix always ends on a frame
// boundary and is readable as a (trailerless) stream prefix. Long-running
// servers call this between batches to keep their copy of the container
// current for concurrent readers.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return errors.New("mdz: Flush after Close")
	}
	if err := w.drain(); err != nil {
		return w.fail(err)
	}
	if err := w.w.Flush(); err != nil {
		return w.fail(err)
	}
	return nil
}

// WriterState captures a live Writer so stream production can resume in a
// different process: the compressor checkpoint (nil until the first block
// has been flushed), the container cursor (sequence, block and snapshot
// counters), and the raw snapshots buffered but not yet compressed into a
// block. Together with the container bytes written so far — which the
// caller owns, since it owns the Writer's io.Writer — this is a complete
// session-migration unit: ResumeWriter on the same byte prefix continues
// the stream exactly where the exporting process stopped.
type WriterState struct {
	// Opened reports whether the stream magic has been written.
	Opened bool
	// Seq is the next frame sequence number.
	Seq uint32
	// Blocks and Frames are the data blocks and snapshots flushed so far.
	Blocks, Frames int64
	// RawBytes and CompBytes continue the Stats accounting.
	RawBytes, CompBytes int64
	// Checkpoint is the compressor's cross-batch state, nil before the
	// first flushed block (the resumed compressor then starts fresh).
	Checkpoint *CheckpointState
	// Pending holds the snapshots buffered but not yet flushed into a
	// block, in arrival order.
	Pending []Frame
	// SeekIndex reports that the exporting Writer was building a seek
	// table (Config.SeekIndex); Index holds the entries accumulated so
	// far. A resuming Writer with SeekIndex enabled continues the table
	// from these entries so the final stream's index is complete.
	SeekIndex bool
	Index     []SeekEntry
}

// ExportState snapshots the Writer for migration. It first flushes
// buffered container bytes to the underlying io.Writer (as Flush does), so
// the caller's copy of the container is complete up to the last emitted
// frame; the Writer remains usable afterwards. The returned state shares
// no mutable memory with the Writer and serializes with MarshalBinary.
func (w *Writer) ExportState() (*WriterState, error) {
	if w.err != nil {
		return nil, w.err
	}
	if w.closed {
		return nil, errors.New("mdz: ExportState after Close")
	}
	// In-flight pipelined frames are part of the exported container prefix:
	// drain them into w.w before flushing it, so the caller's copy of the
	// container matches the exported cursor exactly.
	if err := w.drain(); err != nil {
		return nil, w.fail(err)
	}
	if err := w.w.Flush(); err != nil {
		return nil, w.fail(err)
	}
	st := &WriterState{
		Opened: w.opened, Seq: w.seq,
		Blocks: w.blocks, Frames: w.frames,
		RawBytes: w.rawBytes, CompBytes: w.compBytes,
		SeekIndex: w.indexOn,
		Index:     append([]SeekEntry(nil), w.index...),
	}
	if w.blocks > 0 {
		cp, err := w.c.ExportState()
		if err != nil {
			return nil, err
		}
		st.Checkpoint = cp
	}
	st.Pending = make([]Frame, len(w.pending))
	for i, f := range w.pending {
		st.Pending[i] = Frame{
			X: append([]float64(nil), f.X...),
			Y: append([]float64(nil), f.Y...),
			Z: append([]float64(nil), f.Z...),
		}
	}
	return st, nil
}

// ResumeWriter reconstructs a Writer from state exported by ExportState,
// continuing a stream across a process boundary. dst must already hold the
// container bytes the exporting Writer produced (ResumeWriter appends; it
// never rewrites the prefix), and cfg must be equivalent to the exporting
// Writer's Config — in particular the same FormatVersion. The resumed
// Writer produces bytes identical to what the original would have written.
func ResumeWriter(dst io.Writer, cfg Config, st *WriterState) (*Writer, error) {
	if st == nil {
		return nil, errors.New("mdz: ResumeWriter with nil state")
	}
	if st.Blocks > 0 && st.Checkpoint == nil {
		return nil, fmt.Errorf("%w: writer state with %d blocks but no checkpoint", ErrStateDesync, st.Blocks)
	}
	if !st.Opened && (st.Seq != 0 || st.Blocks != 0 || st.Frames != 0 || len(st.Pending) > 0) {
		return nil, fmt.Errorf("%w: writer state advanced before the stream magic", ErrStateDesync)
	}
	if st.Checkpoint != nil && normalizeFormat(st.Checkpoint.Format) != normalizeFormat(cfg.FormatVersion) {
		return nil, fmt.Errorf("%w: checkpoint format v%d does not match Config.FormatVersion v%d",
			ErrStateDesync, normalizeFormat(st.Checkpoint.Format), normalizeFormat(cfg.FormatVersion))
	}
	if cfg.SeekIndex && !st.SeekIndex && st.Seq > 0 {
		// The already-written frames were never indexed; a table built from
		// here on would silently omit them. (The scan rebuild or `mdzc
		// -index` can retrofit the finished stream instead.)
		return nil, fmt.Errorf("%w: SeekIndex enabled but the exported writer was not indexing", ErrStateDesync)
	}
	w, err := NewWriter(dst, cfg)
	if err != nil {
		return nil, err
	}
	if st.Checkpoint != nil {
		if err := w.c.ImportState(st.Checkpoint); err != nil {
			return nil, err
		}
	}
	w.opened = st.Opened
	w.seq = st.Seq
	w.blocks = st.Blocks
	w.frames = st.Frames
	w.rawBytes = st.RawBytes
	w.compBytes = st.CompBytes
	w.pending = append(w.pending, st.Pending...)
	if w.indexOn {
		w.index = append(w.index, st.Index...)
	}
	return w, nil
}

// normalizeFormat maps the default format selector 0 to the concrete wire
// version it writes.
func normalizeFormat(v int) int {
	if v == 0 {
		return 2
	}
	return v
}

// Close flushes the final partial batch, writes the stream trailer and
// flushes the underlying buffer. If a prior frame already failed, Close
// still flushes whatever was buffered (best-effort, so partial data is not
// silently stranded) and returns the original error. It does not close
// the wrapped io.Writer.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	if w.err != nil {
		w.stopPipeline() // release the io goroutine; original error wins
		w.w.Flush()      // best-effort: don't strand buffered bytes
		return w.err
	}
	if err := w.flush(); err != nil {
		w.stopPipeline()
		w.w.Flush()
		return err
	}
	if w.opened {
		if w.indexOn {
			if err := w.writeFrame(frameSeekIndex, appendSeekIndex(nil, w.index)); err != nil {
				w.stopPipeline()
				w.w.Flush()
				return err
			}
		}
		trailer := bitstreamAppendTrailer(nil, w.frames, w.blocks)
		if err := w.writeFrame(frameTrailer, trailer); err != nil {
			w.stopPipeline()
			w.w.Flush()
			return err
		}
	}
	if err := w.stopPipeline(); err != nil {
		w.w.Flush()
		return w.fail(err)
	}
	return w.w.Flush()
}

// bitstreamAppendTrailer encodes the trailer payload: total snapshots and
// total data blocks, as uvarints.
func bitstreamAppendTrailer(dst []byte, frames, blocks int64) []byte {
	dst = binary.AppendUvarint(dst, uint64(frames))
	return binary.AppendUvarint(dst, uint64(blocks))
}

// Stats reports raw and compressed byte totals, including the stream
// magic, frame headers, checkpoints and trailer actually written.
func (w *Writer) Stats() (raw, compressed int64) { return w.rawBytes, w.compBytes }

// ReaderOptions configures NewReaderWith.
type ReaderOptions struct {
	// Workers bounds decompression parallelism (0 = GOMAXPROCS,
	// 1 = serial); decoded frames are identical for any worker count.
	Workers int
	// Pipeline, when positive, overlaps frame fetch with decode: a
	// read-ahead goroutine parses and CRC-checks up to Pipeline frames
	// while groups of independent data frames decode concurrently on the
	// Workers pool, delivered strictly in order — the read-side mirror of
	// Config.PipelineDepth. Decoded frames are byte-identical to a serial
	// read. Ignored in Resync mode (salvage accounting needs the serial
	// scan) and for v1 streams. A pipelined Reader holds a goroutine until
	// the stream is drained or Close is called.
	Pipeline int
	// Resync makes corruption survivable: instead of failing on the first
	// corrupt frame, the Reader scans forward for the next sync marker,
	// re-establishes decoder state (from the clean prefix or the next
	// checkpoint) and keeps going. Losses are reported via SalvageStats.
	Resync bool
	// Telemetry enables decode-side instrumentation, including live
	// mirrors of the SalvageStats counters; read it via Reader.Telemetry.
	Telemetry bool
	// Context, when non-nil, cancels reading cooperatively: once it is
	// done, ReadFrame returns ctx.Err() — even in Resync mode, because
	// cancellation is an environment outcome, not stream damage. The error
	// is sticky; a cancelled Reader cannot resume.
	Context context.Context
	// MaxDecodeBytes caps in-flight decode allocations driven by claimed
	// lengths in untrusted frames (see Config.MaxDecodeBytes). 0 means
	// unlimited. In strict mode a rejection surfaces as ErrBudgetExceeded;
	// in Resync mode the over-budget frame is recorded in SalvageStats and
	// skipped like a corrupt one, since it cannot be delivered under this
	// budget either way.
	MaxDecodeBytes int64
}

// LostRange is a half-open range [From, To) of frame sequence numbers that
// a resyncing Reader could not deliver.
type LostRange struct {
	From, To uint32
}

// SalvageStats accounts for what a Resync Reader lost and recovered.
type SalvageStats struct {
	// CorruptFrames counts frames rejected by framing, CRC or decode
	// validation.
	CorruptFrames int
	// Resyncs counts forward scans for a sync marker after corruption.
	Resyncs int
	// SkippedBytes counts bytes discarded while hunting for sync markers.
	SkippedBytes int64
	// SkippedBlocks counts intact data blocks dropped because decoder
	// state was not yet re-established (no checkpoint seen since the
	// corruption).
	SkippedBlocks int
	// DroppedFrames counts snapshots known to be lost. Exact when the
	// trailer survives; otherwise derived from the headers of skipped
	// blocks (corrupt blocks of unknown size are not included).
	DroppedFrames int
	// LostRanges lists the frame sequence ranges not delivered, in order.
	LostRanges []LostRange
	// Truncated reports that the stream ended without a trailer (torn
	// write or partial file).
	Truncated bool
	// FirstError is the first corruption encountered, with its frame
	// index and byte offset, or nil for a clean stream.
	FirstError *CorruptBlockError
}

// Reader decompresses a framed MDZ stream produced by Writer (v2) or by
// pre-checkpoint writers (v1), yielding frames one at a time.
type Reader struct {
	d   *Decompressor
	src io.Reader

	buf    []byte // window of not-yet-parsed input
	pos    int    // cursor into buf
	off    int64  // absolute stream offset of buf[pos]
	srcErr error  // sticky source error (io.EOF for clean exhaustion)

	queue  []Frame
	err    error
	opened bool
	v2     bool
	resync bool
	ctx    context.Context // nil disables cooperative cancellation

	nextSeq   uint32 // expected sequence of the next frame
	await     bool   // resync: drop data frames until the next checkpoint
	scanning  bool   // inside a corrupt region (suppresses double-counting)
	trailer   bool   // trailer frame seen
	delivered int64  // snapshots queued for the caller
	blocks    int64  // data blocks decoded
	stats     SalvageStats
	tel       streamReaderTel

	// Random access (see seek.go). srcSeeker is src when it supports
	// seeking; seeked relaxes the trailer-total check (the skipped prefix
	// was intentional) and skipSnaps drops the head of the first decoded
	// block when the target falls mid-block.
	srcSeeker   io.ReadSeeker
	index       []SeekEntry
	indexLoaded bool
	seeked      bool
	skipSnaps   int

	// Pipelined decode-ahead (see readpipe.go). pipePending holds a fetched
	// frame pulled while assembling a decode group but not yet processed;
	// pipeDefer holds an error discovered mid-group, surfaced once the
	// frames decoded before it are consumed.
	pipeDepth   int
	pipe        *readPipe
	pipePending *pipeItem
	pipeDefer   error
	clones      []*Decompressor
}

// streamReaderTel mirrors SalvageStats into live instruments. All fields
// are nil-safe, so the zero value is the disabled state.
type streamReaderTel struct {
	corruptFrames, resyncs, skippedBlocks, truncations *telemetry.Counter
	skippedBytes                                       *telemetry.Counter
	// droppedFrames is a gauge because the trailer's exact total replaces
	// the header-derived running estimate rather than adding to it.
	droppedFrames *telemetry.Gauge
}

func newStreamReaderTel(reg *telemetry.Registry) streamReaderTel {
	return streamReaderTel{
		corruptFrames: reg.Counter("stream.corrupt_frames"),
		resyncs:       reg.Counter("stream.resyncs"),
		skippedBlocks: reg.Counter("stream.skipped_blocks"),
		truncations:   reg.Counter("stream.truncations"),
		skippedBytes:  reg.Counter("stream.skipped.bytes"),
		droppedFrames: reg.Gauge("stream.dropped_frames"),
	}
}

// NewReader returns a Reader over r with the default worker pool
// (GOMAXPROCS).
func NewReader(r io.Reader) *Reader {
	return NewReaderWith(r, ReaderOptions{})
}

// NewReaderWorkers returns a Reader whose decompression parallelism is
// bounded by workers (0 = GOMAXPROCS, 1 = serial); decoded frames are
// identical for any worker count.
func NewReaderWorkers(r io.Reader, workers int) *Reader {
	return NewReaderWith(r, ReaderOptions{Workers: workers})
}

// NewReaderWith returns a Reader configured by opts.
func NewReaderWith(r io.Reader, opts ReaderOptions) *Reader {
	d := NewDecompressorWith(DecompressorOptions{
		Workers:        opts.Workers,
		Telemetry:      opts.Telemetry,
		Context:        opts.Context,
		MaxDecodeBytes: opts.MaxDecodeBytes,
	})
	rd := &Reader{
		d:      d,
		src:    r,
		resync: opts.Resync,
		ctx:    opts.Context,
		tel:    newStreamReaderTel(d.reg),
	}
	if rs, ok := r.(io.ReadSeeker); ok {
		rd.srcSeeker = rs
	}
	if opts.Pipeline > 0 && !opts.Resync {
		rd.pipeDepth = opts.Pipeline
		if rd.pipeDepth > MaxPipelineDepth {
			rd.pipeDepth = MaxPipelineDepth
		}
	}
	return rd
}

// Close releases the Reader's resources — today, the read-ahead goroutine
// of a pipelined Reader. It never touches the underlying source and is a
// no-op for serial Readers; a Reader read to io.EOF (or a sticky error)
// has already wound down, but callers abandoning a pipelined Reader
// mid-stream must Close it.
func (r *Reader) Close() error {
	r.stopPipe()
	return nil
}

// SalvageStats reports what a Resync reader skipped, dropped and
// recovered so far. The result is a snapshot; LostRanges is a copy.
func (r *Reader) SalvageStats() SalvageStats {
	st := r.stats
	st.LostRanges = append([]LostRange(nil), r.stats.LostRanges...)
	return st
}

// buffered reports the unparsed bytes currently windowed.
func (r *Reader) buffered() int { return len(r.buf) - r.pos }

// view returns the next n buffered bytes without consuming them. Only
// valid until the next fillTo call (the window may compact).
func (r *Reader) view(n int) []byte { return r.buf[r.pos : r.pos+n] }

// discard consumes n buffered bytes.
func (r *Reader) discard(n int) {
	r.pos += n
	r.off += int64(n)
}

const fillChunk = 64 << 10

// fillTo grows the window until at least n unconsumed bytes are available,
// reporting whether it succeeded. It never pre-allocates a claimed length:
// capacity only tracks bytes actually read, so a forged frame length
// cannot trigger a huge allocation. The window is only moved when the tail
// is actually full — a buffer already large enough is compacted in place
// (one copy), and growth copies the live region straight into the new
// buffer instead of compacting first.
func (r *Reader) fillTo(n int) bool {
	for r.buffered() < n {
		if r.srcErr != nil {
			return false
		}
		if len(r.buf) == cap(r.buf) {
			rem := r.buffered()
			if n <= cap(r.buf) {
				// Large enough already: compaction alone frees the tail.
				copy(r.buf, r.buf[r.pos:])
				r.buf = r.buf[:rem]
			} else {
				ncap := 2 * cap(r.buf)
				if ncap < fillChunk {
					ncap = fillChunk
				}
				nb := make([]byte, rem, ncap)
				copy(nb, r.buf[r.pos:])
				r.buf = nb
			}
			r.pos = 0
		}
		m, err := r.src.Read(r.buf[len(r.buf):cap(r.buf)])
		r.buf = r.buf[:len(r.buf)+m]
		if err != nil {
			r.srcErr = err
		}
	}
	return true
}

// open reads and validates the stream magic, selecting the v1 or v2 frame
// parser.
func (r *Reader) open() error {
	if !r.fillTo(4) {
		if r.srcErr != nil && r.srcErr != io.EOF {
			return r.srcErr
		}
		if r.buffered() == 0 {
			return io.EOF
		}
		return fmt.Errorf("mdz: stream cut inside the magic: %w", ErrTruncated)
	}
	magic := string(r.view(4))
	switch magic {
	case streamMagic:
		r.v2 = false
	case streamMagicV2, streamMagicV3:
		// v3 streams reuse the v2 framing; the block codecs inside each
		// frame self-describe, so the reader path is shared.
		r.v2 = true
	default:
		return fmt.Errorf("%w: not an MDZ stream (magic %q)", ErrCorruptBlock, magic)
	}
	r.discard(4)
	r.opened = true
	return nil
}

// ReadFrame returns the next frame, or io.EOF at end of stream.
func (r *Reader) ReadFrame() (Frame, error) {
	if r.err != nil {
		return Frame{}, r.err
	}
	if !r.opened {
		if err := r.open(); err != nil {
			return Frame{}, r.fail(err)
		}
	}
	for len(r.queue) == 0 {
		if r.ctx != nil {
			if cerr := r.ctx.Err(); cerr != nil {
				return Frame{}, r.fail(cerr)
			}
		}
		var err error
		switch {
		case r.v2 && r.pipeDepth > 0:
			err = r.nextBatchPiped()
		case r.v2:
			err = r.nextBatchV2()
		default:
			err = r.nextBatchV1()
		}
		if err != nil {
			return Frame{}, r.fail(err)
		}
	}
	f := r.queue[0]
	r.queue = r.queue[1:]
	return f, nil
}

// ReadAll drains the stream into a slice. On a seekable source carrying a
// seek table the result is preallocated from the table's snapshot total
// instead of growing frame by frame.
func (r *Reader) ReadAll() ([]Frame, error) {
	var out []Frame
	if total, ok := r.indexTotalSnaps(); ok && total > 0 && total <= 1<<30 {
		out = make([]Frame, 0, total)
	}
	for {
		f, err := r.ReadFrame()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, f)
	}
}

func (r *Reader) fail(err error) error {
	r.err = err
	return err
}

// nextBatchV1 reads one legacy length-prefixed block into the queue. The
// v1 container has no sync markers, so in Resync mode corruption ends the
// stream after accounting for it.
func (r *Reader) nextBatchV1() error {
	if !r.fillTo(4) {
		if r.srcErr != nil && r.srcErr != io.EOF {
			return r.srcErr
		}
		if r.buffered() == 0 {
			return io.EOF
		}
		return r.v1Corrupt(fmt.Errorf("mdz: stream cut inside a block header: %w", ErrTruncated))
	}
	n := binary.LittleEndian.Uint32(r.view(4))
	if n == 0 || n > maxFramePayload {
		return r.v1Corrupt(&CorruptBlockError{
			Block: uint32(r.blocks), Offset: r.off,
			Cause: fmt.Errorf("%w: implausible block length %d", ErrCorruptBlock, n),
		})
	}
	if !r.fillTo(4 + int(n)) {
		if r.srcErr != nil && r.srcErr != io.EOF {
			return r.srcErr
		}
		return r.v1Corrupt(fmt.Errorf("mdz: stream cut inside block %d: %w", r.blocks, ErrTruncated))
	}
	blockOff := r.off
	r.discard(4)
	blk := r.view(int(n))
	batch, err := r.d.DecompressBatch(blk)
	r.discard(int(n))
	if err != nil {
		if isCancellation(err) {
			return err
		}
		if !r.resync && errors.Is(err, ErrBudgetExceeded) {
			return err
		}
		return r.v1Corrupt(&CorruptBlockError{Block: uint32(r.blocks), Offset: blockOff, Cause: err})
	}
	r.blocks++
	r.delivered += int64(len(batch))
	r.queue = batch
	return nil
}

// v1Corrupt surfaces a legacy-container failure: typed in strict mode,
// recorded-then-EOF in Resync mode (no sync markers to scan for).
func (r *Reader) v1Corrupt(err error) error {
	if !r.resync {
		return err
	}
	var cbe *CorruptBlockError
	if !errors.As(err, &cbe) {
		cbe = &CorruptBlockError{Block: uint32(r.blocks), Offset: r.off, Cause: err}
	}
	r.recordCorrupt(cbe)
	if errors.Is(err, ErrTruncated) {
		r.markTruncated()
	}
	r.countSkipped(int64(r.buffered()))
	r.discard(r.buffered())
	return io.EOF
}

// frameParse is one verified v2 frame.
type frameParse struct {
	typ     byte
	seq     uint32
	payload []byte // aliases the window; use before the next fillTo
	size    int    // total wire size
}

// Internal parse outcomes distinguishing "bad bytes here" (scannable) from
// "source exhausted mid-frame" (truncation).
var (
	errNotFrame       = errors.New("mdz: no valid frame at this offset")
	errFrameTruncated = errors.New("mdz: frame cut short")
)

// parseFrame attempts to parse one complete frame at the cursor without
// consuming it. The header CRC is checked before the payload is fetched,
// so a corrupted length field can never cause an over-read.
func (r *Reader) parseFrame() (frameParse, error) {
	var fp frameParse
	if !r.fillTo(frameHeaderSize) {
		if r.srcErr != nil && r.srcErr != io.EOF {
			return fp, r.srcErr
		}
		if r.buffered() == 0 {
			return fp, io.EOF
		}
		return fp, errFrameTruncated
	}
	hdr := r.view(frameHeaderSize)
	if !bytes.Equal(hdr[:4], frameSync[:]) {
		return fp, errNotFrame
	}
	if crc32.Checksum(hdr[4:13], crcTable) != binary.LittleEndian.Uint32(hdr[13:17]) {
		return fp, errNotFrame
	}
	if hdr[4] > frameSeekIndex {
		return fp, errNotFrame
	}
	n := binary.LittleEndian.Uint32(hdr[9:13])
	if n > maxFramePayload {
		return fp, errNotFrame
	}
	total := frameHeaderSize + int(n) + frameCRCSize
	if !r.fillTo(total) {
		if r.srcErr != nil && r.srcErr != io.EOF {
			return fp, r.srcErr
		}
		return fp, errFrameTruncated
	}
	frame := r.view(total) // re-view: fillTo may have compacted the window
	payload := frame[frameHeaderSize : frameHeaderSize+int(n)]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(frame[total-frameCRCSize:]) {
		return fp, errNotFrame
	}
	fp = frameParse{
		typ:     frame[4],
		seq:     binary.LittleEndian.Uint32(frame[5:9]),
		payload: payload,
		size:    total,
	}
	return fp, nil
}

// nextFrameV2 returns the next acceptable frame, handling corruption per
// the reader mode: strict mode fails with a typed error; Resync mode
// records the damage, scans forward to the next verifiable frame and
// accounts for the sequence gap.
func (r *Reader) nextFrameV2() (frameParse, int64, error) {
	for {
		frameOff := r.off
		fp, perr := r.parseFrame()
		switch {
		case perr == nil:
			if fp.seq < r.nextSeq {
				// A stale or replayed frame; impossible from a healthy
				// writer.
				if !r.resync {
					return fp, frameOff, &CorruptBlockError{
						Block: r.nextSeq, Offset: frameOff,
						Cause: fmt.Errorf("%w: frame sequence %d replayed (want %d)", ErrCorruptBlock, fp.seq, r.nextSeq),
					}
				}
				// The frame is individually valid but its sequence number
				// proves the wire replayed (or duplicated) writer output.
				// That is real stream damage: account the event and the
				// discarded wire bytes, so salvage reports never claim
				// byte-exact recovery while silently dropping input.
				r.recordCorrupt(&CorruptBlockError{
					Block: fp.seq, Offset: frameOff,
					Cause: fmt.Errorf("%w: frame sequence %d replayed (want %d)", ErrCorruptBlock, fp.seq, r.nextSeq),
				})
				r.countSkipped(int64(fp.size))
				r.discard(fp.size)
				continue
			}
			if fp.seq > r.nextSeq {
				if !r.resync {
					return fp, frameOff, &CorruptBlockError{
						Block: r.nextSeq, Offset: frameOff,
						Cause: fmt.Errorf("%w: frame sequence jumped to %d (want %d)", ErrCorruptBlock, fp.seq, r.nextSeq),
					}
				}
				r.extendLost(r.nextSeq, fp.seq)
				if !r.d.seeded() {
					r.await = true
				}
			}
			r.discard(fp.size)
			r.nextSeq = fp.seq + 1
			r.scanning = false
			return fp, frameOff, nil

		case perr == io.EOF:
			// Clean frame boundary but no trailer was seen: truncation.
			err := fmt.Errorf("mdz: stream ended without a trailer: %w", ErrTruncated)
			if !r.resync {
				return fp, frameOff, err
			}
			r.markTruncated()
			r.noteTruncation(frameOff, err)
			return fp, frameOff, io.EOF

		case perr == errFrameTruncated:
			err := fmt.Errorf("mdz: stream cut inside frame %d: %w", r.nextSeq, ErrTruncated)
			if !r.resync {
				return fp, frameOff, err
			}
			r.markTruncated()
			r.noteTruncation(frameOff, err)
			r.countSkipped(int64(r.buffered()))
			r.discard(r.buffered())
			return fp, frameOff, io.EOF

		case perr == errNotFrame:
			cbe := &CorruptBlockError{
				Block: r.nextSeq, Offset: frameOff,
				Cause: fmt.Errorf("%w: frame sync/CRC validation failed", ErrCorruptBlock),
			}
			if !r.resync {
				return fp, frameOff, cbe
			}
			if !r.scanning {
				r.recordCorrupt(cbe)
				r.stats.Resyncs++
				r.tel.resyncs.Inc()
				r.scanning = true
				if !r.d.seeded() {
					r.await = true
				}
			}
			r.scanSync()

		default:
			return fp, frameOff, perr // hard I/O error from the source
		}
	}
}

// scanSync advances at least one byte, then to the next sync-marker
// candidate (or the end of input), counting everything it skips.
func (r *Reader) scanSync() {
	if r.buffered() > 0 {
		r.countSkipped(1)
		r.discard(1)
	}
	for {
		if i := bytes.Index(r.buf[r.pos:], frameSync[:]); i >= 0 {
			r.countSkipped(int64(i))
			r.discard(i)
			return
		}
		// No marker in the window: keep a possible 3-byte sync prefix at
		// the tail and pull more input.
		keep := len(frameSync) - 1
		if r.buffered() < keep {
			keep = r.buffered()
		}
		drop := r.buffered() - keep
		r.countSkipped(int64(drop))
		r.discard(drop)
		if !r.fillTo(keep + 1) {
			r.countSkipped(int64(r.buffered()))
			r.discard(r.buffered())
			return
		}
	}
}

// nextBatchV2 consumes frames until a data block fills the queue, the
// trailer ends the stream, or an error surfaces.
func (r *Reader) nextBatchV2() error {
	for {
		fp, frameOff, err := r.nextFrameV2()
		if err != nil {
			return err
		}
		switch fp.typ {
		case frameData:
			if r.await {
				// Intact but undecodable before a checkpoint reseeds the
				// decoder: account for it precisely via its header.
				r.stats.SkippedBlocks++
				r.tel.skippedBlocks.Inc()
				if bs, berr := blockSnapshots(fp.payload); berr == nil {
					r.stats.DroppedFrames += bs
					r.tel.droppedFrames.Set(int64(r.stats.DroppedFrames))
				}
				r.extendLost(fp.seq, fp.seq+1)
				continue
			}
			batch, derr := r.d.DecompressBatch(fp.payload)
			if derr != nil {
				if isCancellation(derr) {
					return derr // environment, not damage: surfaces in any mode
				}
				cbe := &CorruptBlockError{Block: fp.seq, Offset: frameOff, Cause: derr}
				if !r.resync {
					if errors.Is(derr, ErrBudgetExceeded) {
						return derr // resource rejection, not a corrupt block
					}
					return cbe
				}
				r.recordCorrupt(cbe)
				r.extendLost(fp.seq, fp.seq+1)
				if !r.d.seeded() {
					r.await = true
				}
				continue
			}
			r.blocks++
			if batch = r.trimSeekSkip(batch); len(batch) == 0 {
				continue
			}
			r.delivered += int64(len(batch))
			r.queue = batch
			return nil

		case frameSeekIndex:
			// The table is only consulted by Seek (which loads it by
			// offset); a sequential reader validates and caches it in
			// passing. A malformed payload inside an intact frame is real
			// corruption: the writer never emits one.
			if idx, ierr := parseSeekIndex(fp.payload); ierr == nil {
				if !r.indexLoaded {
					r.index, r.indexLoaded = idx, true
				}
			} else {
				cbe := &CorruptBlockError{Block: fp.seq, Offset: frameOff, Cause: ierr}
				if !r.resync {
					return cbe
				}
				r.recordCorrupt(cbe)
			}
			continue

		case frameCheckpoint:
			st := &CheckpointState{}
			tx := r.d.bud.Begin()
			derr := st.unmarshalTx(fp.payload, tx)
			tx.Close()
			if derr != nil {
				cbe := &CorruptBlockError{Block: fp.seq, Offset: frameOff, Cause: derr}
				if !r.resync {
					if errors.Is(derr, ErrBudgetExceeded) {
						return derr
					}
					return cbe
				}
				r.recordCorrupt(cbe)
				r.extendLost(fp.seq, fp.seq+1)
				continue
			}
			if r.d.seeded() && !r.d.stateMatches(st) {
				derr := fmt.Errorf("%w: checkpoint %d disagrees with reconstructed state", ErrStateDesync, fp.seq)
				if !r.resync {
					return derr
				}
				// The checkpoint is CRC-verified writer state: trust it
				// over whatever the decoder accumulated, but record the
				// disagreement.
				r.recordCorrupt(&CorruptBlockError{Block: fp.seq, Offset: frameOff, Cause: derr})
			}
			if aerr := r.d.ImportState(st); aerr != nil {
				if !r.resync {
					return aerr
				}
				r.recordCorrupt(&CorruptBlockError{Block: fp.seq, Offset: frameOff, Cause: aerr})
				continue
			}
			r.await = false
			continue

		case frameTrailer:
			br := bytes.NewReader(fp.payload)
			snapTotal, err1 := binary.ReadUvarint(br)
			blockTotal, err2 := binary.ReadUvarint(br)
			if err1 != nil || err2 != nil || br.Len() != 0 {
				cbe := &CorruptBlockError{
					Block: fp.seq, Offset: frameOff,
					Cause: fmt.Errorf("%w: malformed trailer", ErrCorruptBlock),
				}
				if !r.resync {
					return cbe
				}
				r.recordCorrupt(cbe)
				r.trailer = true
				return io.EOF
			}
			r.trailer = true
			if !r.resync {
				// After a Seek the undelivered prefix is intentional, so the
				// totals can only be bounds-checked, not matched exactly.
				if r.seeked {
					if int64(snapTotal) < r.delivered || int64(blockTotal) < r.blocks {
						return fmt.Errorf("%w: trailer claims %d snapshots in %d blocks, decoded %d in %d after a seek",
							ErrCorruptBlock, snapTotal, blockTotal, r.delivered, r.blocks)
					}
					return io.EOF
				}
				if int64(snapTotal) != r.delivered || int64(blockTotal) != r.blocks {
					return fmt.Errorf("%w: trailer claims %d snapshots in %d blocks, decoded %d in %d",
						ErrCorruptBlock, snapTotal, blockTotal, r.delivered, r.blocks)
				}
				return io.EOF
			}
			// With the trailer's exact totals, replace the header-derived
			// loss estimate (not after a seek: the skipped prefix is not a
			// loss).
			if !r.seeked && int64(snapTotal) >= r.delivered {
				r.stats.DroppedFrames = int(int64(snapTotal) - r.delivered)
				r.tel.droppedFrames.Set(int64(r.stats.DroppedFrames))
			}
			return io.EOF
		}
	}
}

// trimSeekSkip drops the leading snapshots of the first block decoded
// after a mid-block Seek, so delivery starts exactly at the target.
func (r *Reader) trimSeekSkip(batch []Frame) []Frame {
	if r.skipSnaps <= 0 {
		return batch
	}
	k := r.skipSnaps
	if k > len(batch) {
		k = len(batch)
	}
	r.skipSnaps -= k
	return batch[k:]
}

// recordCorrupt accounts one corruption event.
func (r *Reader) recordCorrupt(cbe *CorruptBlockError) {
	r.stats.CorruptFrames++
	r.tel.corruptFrames.Inc()
	if r.stats.FirstError == nil {
		r.stats.FirstError = cbe
	}
}

// countSkipped accounts n bytes discarded while hunting for sync markers.
func (r *Reader) countSkipped(n int64) {
	r.stats.SkippedBytes += n
	r.tel.skippedBytes.Add(n)
}

// markTruncated records that the stream ended without a trailer.
func (r *Reader) markTruncated() {
	if !r.stats.Truncated {
		r.tel.truncations.Inc()
	}
	r.stats.Truncated = true
}

// noteTruncation records the truncation point as the first error if the
// stream was otherwise clean.
func (r *Reader) noteTruncation(off int64, err error) {
	if r.stats.FirstError == nil {
		r.stats.FirstError = &CorruptBlockError{Block: r.nextSeq, Offset: off, Cause: err}
	}
}

// extendLost merges [from, to) into the lost-range list.
func (r *Reader) extendLost(from, to uint32) {
	if to <= from {
		return
	}
	if n := len(r.stats.LostRanges); n > 0 && r.stats.LostRanges[n-1].To == from {
		r.stats.LostRanges[n-1].To = to
		return
	}
	r.stats.LostRanges = append(r.stats.LostRanges, LostRange{From: from, To: to})
}
