package mdz

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Writer compresses frames onto an io.Writer as a framed MDZ stream,
// buffering BufferSize snapshots per block — the natural interface for
// in-situ dumping from a running simulation. Config.Workers and
// Config.Shards govern the parallel pipeline exactly as in CompressBatch.
//
//	w := mdz.NewWriter(file, mdz.Config{ErrorBound: 1e-3})
//	for step := ...; ; {
//	    if dumpNow { w.WriteFrame(frame) }
//	}
//	w.Close() // flushes the final partial batch
type Writer struct {
	c       *Compressor
	w       *bufio.Writer
	pending []Frame
	bs      int
	err     error
	closed  bool
	// raw/compressed byte counters for reporting
	rawBytes, compBytes int64
}

const streamMagic = "MDZW"

// NewWriter returns a Writer with the given configuration. The stream
// header is written lazily with the first frame.
func NewWriter(w io.Writer, cfg Config) (*Writer, error) {
	c, err := NewCompressor(cfg)
	if err != nil {
		return nil, err
	}
	bs := cfg.BufferSize
	if bs <= 0 {
		bs = DefaultBufferSize
	}
	return &Writer{c: c, w: bufio.NewWriterSize(w, 1<<20), bs: bs}, nil
}

// WriteFrame buffers one snapshot, flushing a compressed block every
// BufferSize frames.
func (w *Writer) WriteFrame(f Frame) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return errors.New("mdz: write after Close")
	}
	if len(w.pending) == 0 && w.rawBytes == 0 && w.compBytes == 0 {
		if _, err := w.w.WriteString(streamMagic); err != nil {
			return w.fail(err)
		}
	}
	w.pending = append(w.pending, f)
	if len(w.pending) >= w.bs {
		return w.flush()
	}
	return nil
}

func (w *Writer) flush() error {
	if len(w.pending) == 0 {
		return nil
	}
	blk, err := w.c.CompressBatch(w.pending)
	if err != nil {
		return w.fail(err)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(blk)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return w.fail(err)
	}
	if _, err := w.w.Write(blk); err != nil {
		return w.fail(err)
	}
	w.rawBytes += int64(len(w.pending) * w.pending[0].N() * 3 * 8)
	w.compBytes += int64(len(blk)) + 4
	w.pending = w.pending[:0]
	return nil
}

func (w *Writer) fail(err error) error {
	w.err = err
	return err
}

// Close flushes the final partial batch and the underlying buffer. It does
// not close the wrapped io.Writer.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.flush(); err != nil {
		return err
	}
	return w.w.Flush()
}

// Stats reports raw and compressed byte totals of flushed blocks.
func (w *Writer) Stats() (raw, compressed int64) { return w.rawBytes, w.compBytes }

// Reader decompresses a framed MDZ stream produced by Writer, yielding
// frames one at a time.
type Reader struct {
	d      *Decompressor
	r      *bufio.Reader
	queue  []Frame
	err    error
	opened bool
}

// NewReader returns a Reader over r with the default worker pool
// (GOMAXPROCS).
func NewReader(r io.Reader) *Reader {
	return NewReaderWorkers(r, 0)
}

// NewReaderWorkers returns a Reader whose decompression parallelism is
// bounded by workers (0 = GOMAXPROCS, 1 = serial); decoded frames are
// identical for any worker count.
func NewReaderWorkers(r io.Reader, workers int) *Reader {
	return &Reader{d: NewDecompressorWorkers(workers), r: bufio.NewReaderSize(r, 1<<20)}
}

// ReadFrame returns the next frame, or io.EOF at end of stream.
func (r *Reader) ReadFrame() (Frame, error) {
	if r.err != nil {
		return Frame{}, r.err
	}
	if !r.opened {
		magic := make([]byte, 4)
		if _, err := io.ReadFull(r.r, magic); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return Frame{}, r.fail(io.EOF)
			}
			return Frame{}, r.fail(err)
		}
		if string(magic) != streamMagic {
			return Frame{}, r.fail(fmt.Errorf("mdz: not an MDZ stream (magic %q)", magic))
		}
		r.opened = true
	}
	for len(r.queue) == 0 {
		var hdr [4]byte
		if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return Frame{}, r.fail(io.EOF)
			}
			return Frame{}, r.fail(fmt.Errorf("mdz: truncated stream: %w", err))
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n == 0 || n > 1<<31 {
			return Frame{}, r.fail(errors.New("mdz: corrupt stream framing"))
		}
		blk := make([]byte, n)
		if _, err := io.ReadFull(r.r, blk); err != nil {
			return Frame{}, r.fail(fmt.Errorf("mdz: truncated block: %w", err))
		}
		batch, err := r.d.DecompressBatch(blk)
		if err != nil {
			return Frame{}, r.fail(err)
		}
		r.queue = batch
	}
	f := r.queue[0]
	r.queue = r.queue[1:]
	return f, nil
}

// ReadAll drains the stream into a slice.
func (r *Reader) ReadAll() ([]Frame, error) {
	var out []Frame
	for {
		f, err := r.ReadFrame()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, f)
	}
}

func (r *Reader) fail(err error) error {
	r.err = err
	return err
}
