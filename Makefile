GO ?= go

.PHONY: all build test race vet fmt ci bench bench-entropy bench-compare bench-scale bench-read bench-lossless fuzz-short chaos loadtest

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

ci:
	sh scripts/ci.sh

# Hot-path throughput benchmarks for the sharded parallel pipeline.
bench:
	$(GO) test -run xxx -bench 'CompressBatch|DecompressBatch' -benchmem .

# Entropy-stage benchmark: per-stage MB/s, ns/value and compression ratio
# per method. bench-entropy refreshes the committed report; bench-compare
# diffs a fresh run against it.
bench-entropy:
	$(GO) run ./cmd/mdzbench -entropy -json BENCH_entropy.json

bench-compare:
	$(GO) run ./cmd/mdzbench -entropy -compare BENCH_entropy.json

# Multi-worker scaling benchmark: Writer compress MB/s over the
# Workers x Shards grid, baseline vs pipelined/amortized knobs. Refreshes
# the committed report; CI diffs against it warn-only.
bench-scale:
	$(GO) run ./cmd/mdzbench -scale -json BENCH_scale.json

# Fast-read-path benchmark: ReadRange of a tail window vs serial prefix
# decode on an indexed stream, plus full decode over the pipeline x workers
# grid. Refreshes the committed report; CI diffs against it warn-only.
bench-read:
	$(GO) run ./cmd/mdzbench -read -json BENCH_read.json

# Short fuzz pass over every differential and parser fuzzer in the tree.
# CI invokes this with FUZZTIME=10s; the default is a slightly longer local
# smoke. Each fuzzer runs alone (-fuzz takes one pattern per package run).
FUZZTIME ?= 30s

fuzz-short:
	$(GO) test -run '^$$' -fuzz '^FuzzStreamReader$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzCheckpointUnmarshal$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeBatch$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzV3Differential$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzReaderDifferential$$' -fuzztime $(FUZZTIME) ./internal/bitstream
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeDifferential$$' -fuzztime $(FUZZTIME) ./internal/huffman
	$(GO) test -run '^$$' -fuzz '^FuzzEncodeBytesEquivalence$$' -fuzztime $(FUZZTIME) ./internal/huffman
	$(GO) test -run '^$$' -fuzz '^FuzzDualRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/huffman
	$(GO) test -run '^$$' -fuzz '^FuzzLZDifferential$$' -fuzztime $(FUZZTIME) ./internal/lossless
	$(GO) test -run '^$$' -fuzz '^FuzzLZV3RoundTrip$$' -fuzztime $(FUZZTIME) ./internal/lossless

# Fault-containment sweep, longer than the CI gate: the crash-consistency
# matrix at every output byte (MDZ_CHAOS_SWEEP), plus the stream fault
# matrix, cancellation, panic-isolation and budget tests, all under the
# race detector and repeated to vary goroutine schedules.
chaos:
	MDZ_CHAOS_SWEEP=1 $(GO) test -race -count=2 \
		-run 'CrashMatrix|StreamFault|StreamFragmented|Resync|Cancel|ContextDeadline|Panic|Budget|MaxDecode|NoFsync|Salvage' \
		. ./cmd/mdzc
	$(GO) test -race -count=2 ./internal/faultio ./internal/safeio ./internal/pool ./internal/budget

# Daemon soak: a few hundred concurrent streaming sessions against an
# in-process mdzd under the race detector, every tenth container verified
# byte-identical to a local library run. ci.sh runs a smaller smoke; this
# is the longer local version.
loadtest:
	$(GO) run -race ./cmd/mdzload -spawn -sessions 256 -frames 40 -atoms 300 -c 32 -verify 0.1

# Dictionary-coder hot path: LZ and byte-Huffman micro-benchmarks (with
# alloc counts), the pooled flate/zlib writers, and the pipeline-payload
# benchmark that replays the exact bytes the VQ pipeline hands the backend.
bench-lossless:
	$(GO) test -run xxx -bench 'LZCompress|LZDecompress|EncodeBytes|DecodeBytes|FlateCompress|ZlibCompress' -benchmem ./internal/lossless ./internal/huffman
	$(GO) test -run xxx -bench 'VQPayload' -benchmem ./internal/bench
