GO ?= go

.PHONY: all build test race vet fmt ci bench bench-entropy bench-compare bench-lossless

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

ci:
	sh scripts/ci.sh

# Hot-path throughput benchmarks for the sharded parallel pipeline.
bench:
	$(GO) test -run xxx -bench 'CompressBatch|DecompressBatch' -benchmem .

# Entropy-stage benchmark: per-stage MB/s, ns/value and compression ratio
# per method. bench-entropy refreshes the committed report; bench-compare
# diffs a fresh run against it.
bench-entropy:
	$(GO) run ./cmd/mdzbench -entropy -json BENCH_entropy.json

bench-compare:
	$(GO) run ./cmd/mdzbench -entropy -compare BENCH_entropy.json

# Dictionary-coder hot path: LZ and byte-Huffman micro-benchmarks (with
# alloc counts), the pooled flate/zlib writers, and the pipeline-payload
# benchmark that replays the exact bytes the VQ pipeline hands the backend.
bench-lossless:
	$(GO) test -run xxx -bench 'LZCompress|LZDecompress|EncodeBytes|DecodeBytes|FlateCompress|ZlibCompress' -benchmem ./internal/lossless ./internal/huffman
	$(GO) test -run xxx -bench 'VQPayload' -benchmem ./internal/bench
