GO ?= go

.PHONY: all build test race vet fmt ci bench

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

ci:
	sh scripts/ci.sh

# Hot-path throughput benchmarks for the sharded parallel pipeline.
bench:
	$(GO) test -run xxx -bench 'CompressBatch|DecompressBatch' -benchmem .
