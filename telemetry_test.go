package mdz

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// TestTelemetrySnapshotParallel checks snapshot self-consistency with the
// full parallel pipeline engaged (axes × shards × ADP trials on Workers
// goroutines). Run under -race this also proves the instruments are safe at
// every concurrency level.
func TestTelemetrySnapshotParallel(t *testing.T) {
	frames := makeFrames(20, 2000, 3)
	c, err := NewCompressor(Config{ErrorBound: 1e-3, BufferSize: 5, Workers: 4, Shards: 4, Telemetry: true})
	if err != nil {
		t.Fatal(err)
	}
	var blocks [][]byte
	for _, batch := range Batch(frames, 5) {
		blk, err := c.CompressBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, blk)
	}
	s := c.Telemetry()
	if s == nil {
		t.Fatal("telemetry enabled but snapshot is nil")
	}
	// 4 batches × 3 axes; ADP trials do not count as emitted batches.
	if got := s.Counters["compress.axis_batches"]; got != 12 {
		t.Errorf("compress.axis_batches = %d, want 12", got)
	}
	vals, outs := s.Counters["compress.quant.values"], s.Counters["compress.quant.outliers"]
	if vals <= 0 || outs < 0 || outs > vals {
		t.Errorf("scope counters implausible: values=%d outliers=%d", vals, outs)
	}
	// ADP evaluates batches 0 and 1 per axis; every evaluation names a
	// winner, and transitions can never exceed evaluations.
	for _, axis := range []string{"x", "y", "z"} {
		evals := s.Counters["compress.adp."+axis+".evals"]
		if evals < 2 {
			t.Errorf("adp.%s.evals = %d, want >= 2", axis, evals)
		}
		wins := s.Counters["compress.adp."+axis+".win.vq"] +
			s.Counters["compress.adp."+axis+".win.vqt"] +
			s.Counters["compress.adp."+axis+".win.mt"]
		if wins != evals {
			t.Errorf("adp.%s wins = %d, evals = %d", axis, wins, evals)
		}
		if tr := s.Counters["compress.adp."+axis+".transitions"]; tr > evals {
			t.Errorf("adp.%s.transitions = %d > evals %d", axis, tr, evals)
		}
	}
	for _, h := range []string{
		"compress.stage.kmeans_fit.ns", "compress.stage.predict_quant.ns",
		"compress.stage.huffman.ns", "compress.stage.lossless.ns", "compress.stage.batch.ns",
	} {
		if s.Histograms[h].Count == 0 {
			t.Errorf("stage histogram %q has no observations", h)
		}
	}
	if s.Counters["pool.tasks"] == 0 {
		t.Error("pool instruments recorded no tasks despite Workers=4")
	}

	// Decode side.
	d := NewDecompressorWith(DecompressorOptions{Workers: 4, Telemetry: true})
	for _, blk := range blocks {
		if _, err := d.DecompressBatch(blk); err != nil {
			t.Fatal(err)
		}
	}
	ds := d.Telemetry()
	if got := ds.Counters["decompress.axis_batches"]; got != 12 {
		t.Errorf("decompress.axis_batches = %d, want 12", got)
	}
	if ds.Histograms["decompress.stage.dequant.ns"].Count == 0 {
		t.Error("decode dequant histogram empty")
	}
}

// TestTelemetryDoesNotChangeOutput: instrumentation must be observation
// only — identical output bytes with telemetry on and off.
func TestTelemetryDoesNotChangeOutput(t *testing.T) {
	frames := makeFrames(12, 500, 9)
	plain, err := Compress(frames, Config{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	instrumented, err := Compress(frames, Config{ErrorBound: 1e-3, Telemetry: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, instrumented) {
		t.Error("telemetry changed the output bytes")
	}
}

// TestTelemetryDisabled: without Config.Telemetry the accessors must report
// nil, not an empty registry.
func TestTelemetryDisabled(t *testing.T) {
	c, err := NewCompressor(Config{ErrorBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if c.Telemetry() != nil || c.TelemetryRegistry() != nil {
		t.Error("disabled compressor telemetry must be nil")
	}
	if NewDecompressor().Telemetry() != nil {
		t.Error("disabled decompressor telemetry must be nil")
	}
}

// TestStreamTelemetry checks the Writer's container accounting and that the
// Reader's salvage counters mirror SalvageStats exactly after corruption.
func TestStreamTelemetry(t *testing.T) {
	frames := makeFrames(10, 300, 5)
	var sb bytes.Buffer
	w, err := NewWriter(&sb, Config{ErrorBound: 1e-3, BufferSize: 2, CheckpointInterval: 2, Telemetry: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	ws := w.Telemetry()
	if ws == nil {
		t.Fatal("writer telemetry nil")
	}
	// 5 data blocks + 2 checkpoints (after blocks 2 and 4) + 1 trailer.
	if got := ws.Counters["stream.frames"]; got != 8 {
		t.Errorf("stream.frames = %d, want 8", got)
	}
	if got := ws.Counters["stream.checkpoints"]; got != 2 {
		t.Errorf("stream.checkpoints = %d, want 2", got)
	}
	if ws.Counters["stream.framing.bytes"] <= 0 || ws.Counters["stream.checkpoint.bytes"] <= 0 {
		t.Error("stream overhead counters empty")
	}

	// Corrupt one byte mid-stream, then salvage with telemetry on: the live
	// counters must agree with the SalvageStats the reader reports.
	stream := append([]byte(nil), sb.Bytes()...)
	stream[len(stream)/2] ^= 0xFF
	r := NewReaderWith(bytes.NewReader(stream), ReaderOptions{Resync: true, Telemetry: true})
	if _, err := r.ReadAll(); err != nil {
		t.Fatal(err)
	}
	stats := r.SalvageStats()
	if stats.CorruptFrames == 0 {
		t.Fatal("corruption was not detected")
	}
	rs := r.Telemetry()
	if got := rs.Counters["stream.corrupt_frames"]; got != int64(stats.CorruptFrames) {
		t.Errorf("stream.corrupt_frames = %d, stats say %d", got, stats.CorruptFrames)
	}
	if got := rs.Counters["stream.resyncs"]; got != int64(stats.Resyncs) {
		t.Errorf("stream.resyncs = %d, stats say %d", got, stats.Resyncs)
	}
	if got := rs.Counters["stream.skipped.bytes"]; got != stats.SkippedBytes {
		t.Errorf("stream.skipped.bytes = %d, stats say %d", got, stats.SkippedBytes)
	}
	if got := rs.Counters["stream.skipped_blocks"]; got != int64(stats.SkippedBlocks) {
		t.Errorf("stream.skipped_blocks = %d, stats say %d", got, stats.SkippedBlocks)
	}
	if got := rs.Gauges["stream.dropped_frames"]; got != int64(stats.DroppedFrames) {
		t.Errorf("stream.dropped_frames = %d, stats say %d", got, stats.DroppedFrames)
	}
}

// TestCompressNonFiniteInf is the regression test for silent ±Inf input:
// the first batch must be rejected with the typed ErrNonFinite instead of
// deriving an unusable bound.
func TestCompressNonFiniteInf(t *testing.T) {
	for _, axis := range []int{0, 1, 2} {
		frames := makeFrames(4, 50, 11)
		axisSeries(frames[:1], axis)[0][7] = math.Inf(1 - 2*(axis%2)) // ±Inf
		c, err := NewCompressor(Config{ErrorBound: 1e-3})
		if err != nil {
			t.Fatal(err)
		}
		_, err = c.CompressBatch(frames)
		if !errors.Is(err, ErrNonFinite) {
			t.Errorf("axis %d: Inf input error = %v, want ErrNonFinite", axis, err)
		}
		// The compressor must not be left with partial encoder state: a
		// clean retry with finite data succeeds.
		if _, err := c.CompressBatch(makeFrames(4, 50, 12)); err != nil {
			t.Errorf("axis %d: compressor unusable after rejected batch: %v", axis, err)
		}
	}
}

// TestCompressNaNRoundTrip documents the NaN contract: NaN is not an
// error — it takes the outlier raw-bits path and round-trips bit-exactly.
func TestCompressNaNRoundTrip(t *testing.T) {
	frames := makeFrames(6, 80, 13)
	frames[0].X[3] = math.NaN()
	frames[2].Y[40] = math.NaN()
	stream, err := Compress(frames, Config{ErrorBound: 1e-3, BufferSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if b := math.Float64bits(got[0].X[3]); b != math.Float64bits(frames[0].X[3]) {
		t.Errorf("NaN not preserved bit-exactly: %#x", b)
	}
	if !math.IsNaN(got[2].Y[40]) {
		t.Errorf("NaN position decoded to %v", got[2].Y[40])
	}
	// Neighbours still honor the error bound.
	eps := 1e-3 * frameRange(frames, 0)
	if d := math.Abs(got[0].X[4] - frames[0].X[4]); d > eps {
		t.Errorf("neighbour of NaN out of bound: |%v| > %v", d, eps)
	}
}
