package mdz

import (
	"errors"
	"fmt"
	"math"

	"github.com/mdz/mdz/internal/bitstream"
	"github.com/mdz/mdz/internal/budget"
	"github.com/mdz/mdz/internal/core"
	"github.com/mdz/mdz/internal/kmeans"
	"github.com/mdz/mdz/internal/lossless"
)

// AxisState is the cross-batch compressor state of one axis: the absolute
// error bound and quantization scale in effect, the fitted k-means level
// model (λ, μ), the concrete method currently selected, and the quantized
// snapshot-0 reference used by MT prediction.
type AxisState struct {
	ErrorBound    float64
	QuantScale    int
	K             int
	LevelDistance float64
	LevelOrigin   float64
	Method        Method
	Ref           []float64
}

// CheckpointState is everything needed to restart compression or
// decompression mid-stream: per-axis state plus the running batch index.
// Writer embeds it in checkpoint blocks every Config.CheckpointInterval
// data blocks; Reader reseeds from it after corruption.
type CheckpointState struct {
	// Batch is the number of batches encoded before this checkpoint.
	Batch int
	// Axes holds the X, Y, Z axis states.
	Axes [3]AxisState
	// Format is the wire-format version of the stream the checkpoint
	// belongs to (0 or 2 for v2, 3 for v3). It selects the payload
	// encoding of the checkpoint itself: v3 checkpoints pack their
	// reference snapshots with the v3 LZ backend.
	Format int
}

const (
	checkpointVersion   = 1
	checkpointVersionV3 = 2
)

// checkpointBackend compresses the reference snapshots inside checkpoint
// payloads. The reference values are quantized reconstructions, so their
// byte patterns repeat and LZ shrinks them well. v3 checkpoints use the
// dual-lane v3 backend, matching the rest of the stream.
var (
	checkpointBackend   = lossless.LZ{}
	checkpointBackendV3 = lossless.LZ{V3: true}
)

// MarshalBinary encodes the checkpoint into the self-contained payload
// format carried by checkpoint blocks.
func (st *CheckpointState) MarshalBinary() ([]byte, error) {
	if st.Batch < 0 {
		return nil, fmt.Errorf("mdz: negative checkpoint batch index %d", st.Batch)
	}
	ver, backend := byte(checkpointVersion), checkpointBackend
	if st.Format == 3 {
		ver, backend = checkpointVersionV3, checkpointBackendV3
	}
	out := []byte{ver}
	out = bitstream.AppendUvarint(out, uint64(st.Batch))
	for axis := range st.Axes {
		ax := &st.Axes[axis]
		out = bitstream.AppendFloat64(out, ax.ErrorBound)
		out = bitstream.AppendUvarint(out, uint64(ax.QuantScale))
		out = bitstream.AppendUvarint(out, uint64(ax.K))
		out = bitstream.AppendFloat64(out, ax.LevelDistance)
		out = bitstream.AppendFloat64(out, ax.LevelOrigin)
		out = append(out, byte(ax.Method))
		refBytes := bitstream.AppendFloat64s(nil, ax.Ref)
		packed, err := backend.Compress(refBytes)
		if err != nil {
			return nil, err
		}
		out = bitstream.AppendUvarint(out, uint64(len(ax.Ref)))
		out = bitstream.AppendSection(out, packed)
	}
	return out, nil
}

// UnmarshalBinary inverts MarshalBinary. Malformed payloads report
// ErrCorruptBlock.
func (st *CheckpointState) UnmarshalBinary(data []byte) error {
	return st.unmarshalTx(data, nil)
}

// unmarshalTx is UnmarshalBinary charging decode-side allocations (the
// per-axis reference snapshots and their unpacked byte images) against tx.
// A checkpoint claiming reference lengths past the budget is rejected with
// ErrBudgetExceeded before the allocations happen; nil tx is unlimited.
func (st *CheckpointState) unmarshalTx(data []byte, tx *budget.Tx) error {
	br := bitstream.NewByteReader(data)
	ver, err := br.ReadByte()
	if err != nil || (ver != checkpointVersion && ver != checkpointVersionV3) {
		return fmt.Errorf("%w: unsupported checkpoint version", ErrCorruptBlock)
	}
	backend := checkpointBackend
	st.Format = 2
	if ver == checkpointVersionV3 {
		backend = checkpointBackendV3
		st.Format = 3
	}
	batch, err := br.ReadUvarint()
	if err != nil || batch > 1<<40 {
		return fmt.Errorf("%w: bad checkpoint batch index", ErrCorruptBlock)
	}
	st.Batch = int(batch)
	for axis := range st.Axes {
		ax := &st.Axes[axis]
		if ax.ErrorBound, err = br.ReadFloat64(); err != nil {
			return mapBlockErr(err)
		}
		scale, err := br.ReadUvarint()
		if err != nil || scale > 1<<31 {
			return fmt.Errorf("%w: bad checkpoint quant scale", ErrCorruptBlock)
		}
		ax.QuantScale = int(scale)
		k, err := br.ReadUvarint()
		if err != nil || k > 1<<31 {
			return fmt.Errorf("%w: bad checkpoint level count", ErrCorruptBlock)
		}
		ax.K = int(k)
		if ax.LevelDistance, err = br.ReadFloat64(); err != nil {
			return mapBlockErr(err)
		}
		if ax.LevelOrigin, err = br.ReadFloat64(); err != nil {
			return mapBlockErr(err)
		}
		mb, err := br.ReadByte()
		if err != nil {
			return mapBlockErr(err)
		}
		ax.Method = Method(mb)
		n, err := br.ReadUvarint()
		if err != nil || n > 1<<33 {
			return fmt.Errorf("%w: bad checkpoint reference length", ErrCorruptBlock)
		}
		// Charge the float slice up front; the packed bytes' own expansion is
		// charged inside the budget-aware backend.
		if err := tx.Reserve(8 * int64(n)); err != nil {
			return err
		}
		packed, err := br.ReadSection()
		if err != nil {
			return mapBlockErr(err)
		}
		refBytes, err := lossless.DecompressTx(backend, packed, tx)
		if err != nil {
			if errors.Is(err, ErrBudgetExceeded) {
				return err
			}
			return fmt.Errorf("%w: checkpoint reference: %w", ErrCorruptBlock, err)
		}
		if uint64(len(refBytes)) != 8*n {
			return fmt.Errorf("%w: checkpoint reference length mismatch", ErrCorruptBlock)
		}
		if n == 0 {
			ax.Ref = nil
			continue
		}
		if ax.Ref, err = bitstream.DecodeFloat64s(ax.Ref[:0], refBytes); err != nil {
			return mapBlockErr(err)
		}
	}
	if br.Len() != 0 {
		return fmt.Errorf("%w: trailing checkpoint bytes", ErrCorruptBlock)
	}
	return nil
}

// writerStateVersion versions the WriterState wire encoding.
const writerStateVersion = 1

// Writer-state flag bits.
const (
	writerStateOpened     = 1 << 0
	writerStateCheckpoint = 1 << 1
	// writerStateSeekIndex marks a state exported from an indexing Writer
	// (Config.SeekIndex); the payload then carries the seek-table entries
	// accumulated so far. States without the flag encode byte-identically
	// to the historical format.
	writerStateSeekIndex = 1 << 2
)

// maxWriterStatePending caps the claimed pending-snapshot dimensions a
// WriterState payload may carry before allocation.
const maxWriterStatePending = 1 << 20

// MarshalBinary encodes the writer state into a self-contained payload —
// the unit a draining server persists per live session.
func (st *WriterState) MarshalBinary() ([]byte, error) {
	out := []byte{writerStateVersion}
	var flags byte
	if st.Opened {
		flags |= writerStateOpened
	}
	if st.Checkpoint != nil {
		flags |= writerStateCheckpoint
	}
	if st.SeekIndex {
		flags |= writerStateSeekIndex
	}
	out = append(out, flags)
	out = bitstream.AppendUvarint(out, uint64(st.Seq))
	for _, v := range []int64{st.Blocks, st.Frames, st.RawBytes, st.CompBytes} {
		if v < 0 {
			return nil, fmt.Errorf("mdz: negative writer-state counter %d", v)
		}
		out = bitstream.AppendUvarint(out, uint64(v))
	}
	if st.Checkpoint != nil {
		cp, err := st.Checkpoint.MarshalBinary()
		if err != nil {
			return nil, err
		}
		out = bitstream.AppendSection(out, cp)
	}
	out = bitstream.AppendUvarint(out, uint64(len(st.Pending)))
	for _, f := range st.Pending {
		n := f.N()
		if len(f.Y) != n || len(f.Z) != n {
			return nil, errors.New("mdz: pending frame with inconsistent axis lengths")
		}
		out = bitstream.AppendUvarint(out, uint64(n))
		out = bitstream.AppendFloat64s(out, f.X)
		out = bitstream.AppendFloat64s(out, f.Y)
		out = bitstream.AppendFloat64s(out, f.Z)
	}
	if st.SeekIndex {
		out = bitstream.AppendSection(out, appendSeekIndex(nil, st.Index))
	}
	return out, nil
}

// UnmarshalBinary inverts MarshalBinary. Malformed payloads report
// ErrCorruptBlock.
func (st *WriterState) UnmarshalBinary(data []byte) error {
	br := bitstream.NewByteReader(data)
	ver, err := br.ReadByte()
	if err != nil || ver != writerStateVersion {
		return fmt.Errorf("%w: unsupported writer-state version", ErrCorruptBlock)
	}
	flags, err := br.ReadByte()
	if err != nil {
		return mapBlockErr(err)
	}
	st.Opened = flags&writerStateOpened != 0
	seq, err := br.ReadUvarint()
	if err != nil || seq > 1<<32-1 {
		return fmt.Errorf("%w: bad writer-state sequence", ErrCorruptBlock)
	}
	st.Seq = uint32(seq)
	for _, dst := range []*int64{&st.Blocks, &st.Frames, &st.RawBytes, &st.CompBytes} {
		v, err := br.ReadUvarint()
		if err != nil || v > 1<<62 {
			return fmt.Errorf("%w: bad writer-state counter", ErrCorruptBlock)
		}
		*dst = int64(v)
	}
	st.Checkpoint = nil
	if flags&writerStateCheckpoint != 0 {
		sec, err := br.ReadSection()
		if err != nil {
			return mapBlockErr(err)
		}
		st.Checkpoint = &CheckpointState{}
		if err := st.Checkpoint.UnmarshalBinary(sec); err != nil {
			return err
		}
	}
	np, err := br.ReadUvarint()
	if err != nil || np > maxWriterStatePending {
		return fmt.Errorf("%w: bad writer-state pending count", ErrCorruptBlock)
	}
	st.Pending = make([]Frame, np)
	for i := range st.Pending {
		n, err := br.ReadUvarint()
		if err != nil || n > maxWriterStatePending {
			return fmt.Errorf("%w: bad writer-state frame length", ErrCorruptBlock)
		}
		f := Frame{}
		for _, axis := range []*[]float64{&f.X, &f.Y, &f.Z} {
			raw, err := br.ReadBytes(8 * int(n))
			if err != nil {
				return mapBlockErr(err)
			}
			if *axis, err = bitstream.DecodeFloat64s(nil, raw); err != nil {
				return mapBlockErr(err)
			}
		}
		st.Pending[i] = f
	}
	st.SeekIndex = flags&writerStateSeekIndex != 0
	st.Index = nil
	if st.SeekIndex {
		sec, err := br.ReadSection()
		if err != nil {
			return mapBlockErr(err)
		}
		if st.Index, err = parseSeekIndex(sec); err != nil {
			return err
		}
	}
	if br.Len() != 0 {
		return fmt.Errorf("%w: trailing writer-state bytes", ErrCorruptBlock)
	}
	return nil
}

// ExportState snapshots the compressor's cross-batch state after at least
// one compressed batch; it is what Writer embeds in checkpoint blocks. The
// returned state shares nothing with the compressor.
func (c *Compressor) ExportState() (*CheckpointState, error) {
	st := &CheckpointState{Format: c.cfg.FormatVersion}
	for axis, e := range c.enc {
		if e == nil {
			return nil, errors.New("mdz: ExportState before the first batch")
		}
		es := e.ExportState()
		st.Batch = es.Batch
		st.Axes[axis] = AxisState{
			ErrorBound:    es.ErrorBound,
			QuantScale:    es.QuantScale,
			K:             es.K,
			LevelDistance: es.LevelDistance,
			LevelOrigin:   es.LevelOrigin,
			Method:        es.Current,
			Ref:           es.Ref,
		}
	}
	return st, nil
}

// ImportState restores state exported by ExportState into a fresh
// Compressor built with an equivalent Config, so compression can resume
// mid-stream: the next CompressBatch produces bytes identical to what the
// original compressor would have emitted. The error-bound and scale come
// from the state (they were resolved from the first batch of the original
// run), so Config.Mode is not re-applied.
func (c *Compressor) ImportState(st *CheckpointState) error {
	for axis := range c.enc {
		if c.enc[axis] != nil {
			return fmt.Errorf("%w: ImportState on a used compressor", ErrStateDesync)
		}
	}
	for axis := range c.enc {
		ax := &st.Axes[axis]
		enc, err := core.NewEncoder(core.Params{
			ErrorBound:         ax.ErrorBound,
			QuantScale:         ax.QuantScale,
			Method:             c.cfg.Method,
			Sequence:           c.cfg.Sequence,
			AdaptInterval:      c.cfg.AdaptInterval,
			ADPRetrialInterval: c.cfg.ADPRetrialInterval,
			KMeans:             kmeans.Options{Seed: int64(axis) + 1},
			Shards:             c.cfg.Shards,
			FormatVersion:      c.cfg.FormatVersion,
			Pool:               c.pool,
		})
		if err != nil {
			return err
		}
		if err := enc.ImportState(core.EncoderState{
			ErrorBound:    ax.ErrorBound,
			QuantScale:    ax.QuantScale,
			K:             ax.K,
			LevelDistance: ax.LevelDistance,
			LevelOrigin:   ax.LevelOrigin,
			Current:       core.Method(ax.Method),
			Batch:         st.Batch,
			Ref:           ax.Ref,
		}); err != nil {
			return mapBlockErr(err)
		}
		c.enc[axis] = enc
	}
	return nil
}

// ImportState reseeds the decompressor's cross-block state (the per-axis
// MT reference snapshots) from a checkpoint, allowing decoding to resume
// at any block recorded after that checkpoint.
func (d *Decompressor) ImportState(st *CheckpointState) error {
	for axis := range st.Axes {
		ref := st.Axes[axis].Ref
		if ref == nil {
			return fmt.Errorf("%w: checkpoint carries no axis-%d reference", ErrStateDesync, axis)
		}
	}
	for axis, dec := range d.dec {
		dec.SetRef(st.Axes[axis].Ref)
	}
	return nil
}

// stateMatches reports whether the decompressor's established references
// agree bit-for-bit with the checkpoint (vacuously true for axes where the
// decompressor has no reference yet). A mismatch on a healthy stream means
// encoder and decoder have desynchronized.
func (d *Decompressor) stateMatches(st *CheckpointState) bool {
	for axis, dec := range d.dec {
		ref := dec.Ref()
		if ref == nil {
			continue
		}
		want := st.Axes[axis].Ref
		if len(ref) != len(want) {
			return false
		}
		for i := range ref {
			if math.Float64bits(ref[i]) != math.Float64bits(want[i]) {
				return false
			}
		}
	}
	return true
}

// seeded reports whether every axis decoder has an established MT
// reference (from decoding block 0 in order, or from a checkpoint).
func (d *Decompressor) seeded() bool {
	for _, dec := range d.dec {
		if dec.Ref() == nil {
			return false
		}
	}
	return true
}
