package mdz

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
)

// Seek table
//
// An indexed stream carries one extra frame (type frameSeekIndex) between
// the last data/checkpoint frame and the trailer, recording for every
// data and checkpoint frame its absolute file offset, frame sequence
// number and snapshot range. The payload is delta-encoded:
//
//	ver(1)=1  uvarint(count)
//	count × ( typ(1)  uvarint(offsetDelta)  uvarint(seqDelta)  uvarint(snapCount) )
//
// offsetDelta and seqDelta are against the previous entry (the first entry
// encodes absolutes), snapCount is 0 for checkpoint entries, and SnapFrom
// is reconstructed cumulatively — so a long stream's index costs a few
// bytes per block. Integrity comes from the enclosing frame: the seek
// frame's header and payload CRCs cover the whole table, and a reader that
// fails to validate it falls back to the scan rebuild as if the index were
// absent. The frame participates in the sequence numbering like any other,
// so -fsck sees an unbroken chain.

// seekIndexVersion versions the seek-table payload encoding.
const seekIndexVersion = 1

// SeekEntry is one seek-table record: the wire location and snapshot
// coverage of a data or checkpoint frame. Entries are ordered by offset.
type SeekEntry struct {
	// Offset is the absolute byte offset of the frame's sync marker.
	Offset int64
	// Seq is the frame's sequence number.
	Seq uint32
	// Type is the frame type: frameData (0) or frameCheckpoint (1).
	Type byte
	// SnapFrom is the stream-wide index of the first snapshot covered by
	// the frame (for checkpoints: the count of snapshots preceding it).
	SnapFrom int64
	// SnapCount is the number of snapshots in the frame (0 for
	// checkpoints).
	SnapCount int
}

// appendSeekIndex encodes entries into a seek-table payload.
func appendSeekIndex(dst []byte, entries []SeekEntry) []byte {
	dst = append(dst, seekIndexVersion)
	dst = appendUvarint(dst, uint64(len(entries)))
	var prevOff int64
	var prevSeq uint32
	for _, e := range entries {
		dst = append(dst, e.Type)
		dst = appendUvarint(dst, uint64(e.Offset-prevOff))
		dst = appendUvarint(dst, uint64(e.Seq-prevSeq))
		dst = appendUvarint(dst, uint64(e.SnapCount))
		prevOff, prevSeq = e.Offset, e.Seq
	}
	return dst
}

// parseSeekIndex decodes a seek-table payload, validating monotonicity so
// a damaged (but CRC-colliding) table can never send a seek backwards or
// out of bounds. The per-entry floor of 4 payload bytes bounds the
// allocation by the payload actually read.
func parseSeekIndex(payload []byte) ([]SeekEntry, error) {
	p := payload
	if len(p) < 2 || p[0] != seekIndexVersion {
		return nil, fmt.Errorf("%w: unsupported seek-table version", ErrCorruptBlock)
	}
	p = p[1:]
	count, p, err := readUvarint(p)
	if err != nil {
		return nil, err
	}
	if count > uint64(len(p))/4+1 {
		return nil, fmt.Errorf("%w: seek-table entry count %d exceeds payload", ErrCorruptBlock, count)
	}
	entries := make([]SeekEntry, 0, count)
	var off, snaps int64
	var seq uint32
	first := true
	for i := uint64(0); i < count; i++ {
		if len(p) == 0 {
			return nil, fmt.Errorf("%w: seek table cut short", ErrCorruptBlock)
		}
		typ := p[0]
		p = p[1:]
		if typ != frameData && typ != frameCheckpoint {
			return nil, fmt.Errorf("%w: seek-table entry with frame type %d", ErrCorruptBlock, typ)
		}
		var dOff, dSeq, sc uint64
		if dOff, p, err = readUvarint(p); err != nil {
			return nil, err
		}
		if dSeq, p, err = readUvarint(p); err != nil {
			return nil, err
		}
		if sc, p, err = readUvarint(p); err != nil {
			return nil, err
		}
		if dOff > 1<<62 || dSeq > 1<<32-1 || sc > maxFramePayload {
			return nil, fmt.Errorf("%w: implausible seek-table entry", ErrCorruptBlock)
		}
		if !first && (dOff == 0 || dSeq == 0) {
			return nil, fmt.Errorf("%w: non-monotonic seek-table entry", ErrCorruptBlock)
		}
		if typ == frameData && sc == 0 {
			return nil, fmt.Errorf("%w: seek-table data entry with no snapshots", ErrCorruptBlock)
		}
		if typ == frameCheckpoint && sc != 0 {
			return nil, fmt.Errorf("%w: seek-table checkpoint entry with snapshots", ErrCorruptBlock)
		}
		off += int64(dOff)
		seq += uint32(dSeq)
		entries = append(entries, SeekEntry{
			Offset: off, Seq: seq, Type: typ,
			SnapFrom: snaps, SnapCount: int(sc),
		})
		snaps += int64(sc)
		first = false
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: trailing seek-table bytes", ErrCorruptBlock)
	}
	return entries, nil
}

// seekIndexSnapshots reports the total snapshot coverage of an index.
func seekIndexSnapshots(entries []SeekEntry) int64 {
	if len(entries) == 0 {
		return 0
	}
	last := entries[len(entries)-1]
	return last.SnapFrom + int64(last.SnapCount)
}

// findSeekEntry locates the data entry covering snapshot, plus the nearest
// checkpoint entry preceding it (nil when the stream start is the only
// recovery point). ok is false when snapshot is past the index.
func findSeekEntry(entries []SeekEntry, snapshot int64) (data SeekEntry, cp *SeekEntry, ok bool) {
	// The predicate must be monotonic over the mixed entry sequence for
	// sort.Search, so it tests end-of-coverage (SnapFrom+SnapCount, which
	// never decreases) rather than entry type. A checkpoint's coverage ends
	// where the previous data frame's does, so the search can only land on
	// one when no data frame covers the target; the forward skip below keeps
	// that case (and any malformed index) out of the fast path.
	i := sort.Search(len(entries), func(i int) bool {
		e := entries[i]
		return e.SnapFrom+int64(e.SnapCount) > snapshot
	})
	for i < len(entries) && entries[i].Type != frameData {
		i++
	}
	if i == len(entries) {
		return SeekEntry{}, nil, false
	}
	for j := i - 1; j >= 0; j-- {
		if entries[j].Type == frameCheckpoint {
			cp = &entries[j]
			break
		}
	}
	return entries[i], cp, true
}

// appendUvarint is binary.AppendUvarint without the import churn of mixing
// encoding styles in this file.
func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// readUvarint decodes one uvarint from p, returning the remainder.
func readUvarint(p []byte) (uint64, []byte, error) {
	var v uint64
	var shift uint
	for i := 0; i < len(p); i++ {
		b := p[i]
		if shift >= 63 && b > 1 {
			break
		}
		if b < 0x80 {
			return v | uint64(b)<<shift, p[i+1:], nil
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, p, fmt.Errorf("%w: malformed varint in seek table", ErrCorruptBlock)
}

// RetrofitSeekIndex copies a complete, healthy v2/v3 stream from src to
// dst, inserting a seek-table frame immediately before the trailer — the
// `mdzc -index` retrofit for streams written before Config.SeekIndex (or
// with it off). The data and checkpoint frames are copied byte-for-byte,
// so every index offset matches the copy exactly; the seek frame takes the
// trailer's old sequence number and the trailer is re-emitted one higher.
// src must be strict-mode readable (corrupt or truncated streams are
// rejected: salvage first, then index). Returns the number of indexed
// frames.
func RetrofitSeekIndex(src io.ReadSeeker, dst io.Writer) (int, error) {
	if _, err := src.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	sc := newStreamScanner(src)
	if err := sc.open(); err != nil {
		return 0, err
	}
	entries, trailer, err := sc.scan(true)
	if err != nil {
		return 0, err
	}
	if trailer == nil {
		return 0, fmt.Errorf("mdz: stream has no trailer: %w", ErrTruncated)
	}
	if sc.hasIndex {
		return 0, errors.New("mdz: stream already carries a seek table")
	}
	// Copy everything up to the trailer byte-for-byte, so the index
	// offsets recorded against the source hold in the copy.
	if _, err := src.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	if _, err := io.CopyN(dst, src, trailer.off); err != nil {
		return 0, err
	}
	out := appendWireFrame(nil, frameSeekIndex, trailer.seq, appendSeekIndex(nil, entries))
	out = appendWireFrame(out, frameTrailer, trailer.seq+1, trailer.payload)
	if _, err := dst.Write(out); err != nil {
		return 0, err
	}
	return len(entries), nil
}

// appendWireFrame appends one complete wire frame (header, payload, CRCs)
// to dst — the same bytes Writer.emitFrame produces.
func appendWireFrame(dst []byte, typ byte, seq uint32, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	copy(hdr[:4], frameSync[:])
	hdr[4] = typ
	binary.LittleEndian.PutUint32(hdr[5:9], seq)
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[13:17], crc32.Checksum(hdr[4:13], crcTable))
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	var pcrc [frameCRCSize]byte
	binary.LittleEndian.PutUint32(pcrc[:], crc32.Checksum(payload, crcTable))
	return append(dst, pcrc[:]...)
}
