// Package mdz is an error-bounded lossy compressor for molecular-dynamics
// trajectories and other particle datasets, reproducing "MDZ: An Efficient
// Error-bounded Lossy Compressor for Molecular Dynamics" (ICDE 2022).
//
// MDZ adaptively selects among three MD-specific compression methods —
// vector-quantization (VQ), vector-quantization + time (VQT) and
// multi-level time (MT) — exploiting the spatial level-clustering and
// temporal smoothness characteristic of MD data. Every reconstructed value
// is guaranteed to be within the configured error bound of the original.
//
// # Quick start
//
//	frames := ...                                   // []mdz.Frame, one per snapshot
//	c, _ := mdz.NewCompressor(mdz.Config{ErrorBound: 1e-3})
//	var blocks [][]byte
//	for _, batch := range mdz.Batch(frames, 10) {   // buffer size BS = 10
//		blk, _ := c.CompressBatch(batch)
//		blocks = append(blocks, blk)
//	}
//	d := mdz.NewDecompressor()
//	for _, blk := range blocks {
//		batch, _ := d.DecompressBatch(blk)          // within 1e-3 × value range
//		_ = batch
//	}
//
// One-shot helpers Compress and Decompress handle batching and framing for
// whole in-memory trajectories.
package mdz

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"strings"

	"github.com/mdz/mdz/internal/bitstream"
	"github.com/mdz/mdz/internal/budget"
	"github.com/mdz/mdz/internal/core"
	"github.com/mdz/mdz/internal/kmeans"
	"github.com/mdz/mdz/internal/lossless"
	"github.com/mdz/mdz/internal/pool"
	"github.com/mdz/mdz/internal/quant"
	"github.com/mdz/mdz/internal/telemetry"
)

// Frame is one trajectory snapshot: per-axis particle positions of equal
// length.
type Frame struct {
	X, Y, Z []float64
}

// N reports the frame's particle count.
func (f Frame) N() int { return len(f.X) }

// Method selects the compression method.
type Method = core.Method

// Compression methods. ADP (the default) adaptively selects among the other
// three at runtime and is the paper's recommended configuration.
const (
	ADP = core.ADP
	VQ  = core.VQ
	VQT = core.VQT
	MT  = core.MT
)

// ParseMethod parses a method name — "ADP", "VQ", "VQT" or "MT",
// case-insensitively — as accepted by the mdzc and mdzd front ends. The
// empty string selects ADP, the paper's recommended default.
func ParseMethod(s string) (Method, error) {
	switch strings.ToUpper(s) {
	case "", "ADP":
		return ADP, nil
	case "VQ":
		return VQ, nil
	case "VQT":
		return VQT, nil
	case "MT":
		return MT, nil
	}
	return ADP, fmt.Errorf("mdz: unknown method %q", s)
}

// Sequence selects the quantization-code interleaving.
type Sequence = core.Sequence

// Quantization sequences; Seq2 (particle-major) is the paper's choice.
const (
	Seq2 = core.Seq2
	Seq1 = core.Seq1
)

// BoundMode selects how Config.ErrorBound is interpreted.
type BoundMode uint8

// Error-bound modes. ValueRange (the paper's ε) scales the bound by each
// axis's value range, measured on the first batch; Absolute uses the bound
// directly.
const (
	ValueRange BoundMode = iota
	Absolute
)

// DefaultBufferSize is the default batch size BS used by the one-shot
// helpers.
const DefaultBufferSize = 10

// Config configures a Compressor.
type Config struct {
	// ErrorBound is the error tolerance; interpretation depends on Mode.
	// Must be positive.
	ErrorBound float64
	// Mode selects value-range-relative (default) or absolute bounds.
	Mode BoundMode
	// Method selects ADP (default), VQ, VQT or MT.
	Method Method
	// QuantScale overrides the linear quantization scale (default 1024).
	QuantScale int
	// Sequence overrides the code interleaving (default Seq2).
	Sequence Sequence
	// AdaptInterval overrides ADP's re-evaluation period (default 50).
	AdaptInterval int
	// BufferSize is the batch size used by the one-shot Compress helper
	// (default 10). CompressBatch callers control batching themselves.
	BufferSize int
	// CheckpointInterval makes Writer emit a checkpoint block after every
	// CheckpointInterval data blocks. Checkpoints carry the decoder state
	// needed to restart mid-stream (per-axis k-means levels, the quantized
	// snapshot-0 reference and the batch index), so a resyncing Reader can
	// recover everything after the first checkpoint that follows a corrupt
	// region. 0 (the default) emits none: the stream start is the only
	// recovery point and framing overhead stays minimal.
	CheckpointInterval int
	// Workers bounds the goroutines used across all three parallelism
	// levels — axes, particle shards and ADP trial compressions — on a
	// single shared pool (0 = GOMAXPROCS, 1 = fully serial). Output bytes
	// never depend on Workers.
	Workers int
	// Shards splits each axis batch into K contiguous particle shards
	// encoded independently, so compression and decompression scale past
	// the three axes on large particle counts. 0 selects an automatic count
	// from the particle count alone (deterministic across machines);
	// 1 forces single-shard blocks byte-identical to the pre-sharding
	// format. Unlike Workers, the shard count is part of the output format.
	Shards int
	// ADPSampleShards, when positive, amortizes ADP re-evaluations: the
	// three trial compressions of an evaluation batch run on only this
	// many particle shards (a contiguous prefix, at real shard size) and
	// the winning method then encodes the full batch once, cutting the
	// evaluation batch's cost from ~4× to ~(1 + 3·S/K)× of a plain batch.
	// 0 (the default) keeps the paper's full-batch trials and the
	// historical output bytes. Like Shards — and unlike Workers — the
	// setting can change which method wins a round and therefore the
	// output bytes (deterministically, never the error bound); the
	// decoder needs no matching setting. Ignored unless Method is ADP.
	ADPSampleShards int
	// SeekIndex makes Writer build a seek table — one {offset, sequence,
	// snapshot range} record per data and checkpoint frame — and emit it
	// as one extra frame between the last data frame and the trailer at
	// Close. An indexed stream gives Reader.Seek/ReadRange O(1) random
	// access (jump to the nearest checkpoint, decode only the covered
	// frames) instead of the header-only scan rebuild; everything else —
	// framing, fsck, salvage, resync — is unchanged, and the data frames
	// are byte-identical to an unindexed stream. Costs a few bytes per
	// block at Close. Only Writer consults this field.
	SeekIndex bool
	// ADPRetrialInterval, when > 1, amortizes ADP across evaluation
	// rounds: a full three-method trial runs only on every Nth ADP
	// evaluation (and whenever the incumbent's compression ratio drifts
	// more than ~10% from the last trial); the rounds between reuse the
	// cached winner. This covers single-shard streams that
	// ADPSampleShards cannot help (sampling needs S < K shards). Like
	// ADPSampleShards it can change which method encodes a batch — and so
	// the output bytes, deterministically, never the error bound; the
	// decoder needs no matching setting. 0 or 1 (the default) keeps a
	// full trial at every evaluation round and the historical bytes.
	// After a checkpoint resume the cache restarts: the first evaluation
	// round of the resumed run always trials. Ignored unless Method is
	// ADP.
	ADPRetrialInterval int
	// PipelineDepth, when positive, makes Writer overlap compression of
	// batch N+1 with framing, checksumming and io of batch N through a
	// bounded queue of at most PipelineDepth in-flight compressed batches.
	// Frame order, stream bytes and resume state are identical to the
	// synchronous default (0); Flush, ExportState and Close drain the
	// queue first. A write error surfaces on a later WriteFrame, Flush or
	// Close — at most PipelineDepth batches late. Only Writer consults
	// this field.
	PipelineDepth int
	// Telemetry enables pipeline instrumentation: per-stage wall time,
	// ADP decisions, quantization scope rates, pool utilization and (via
	// Writer/Reader) stream framing overhead. Snapshots are read with
	// Compressor.Telemetry; the live registry (for the mdzc metrics
	// endpoint) with Compressor.TelemetryRegistry. Telemetry never changes
	// the output bytes; when false, the instrumentation hooks compile to a
	// nil check and cost nothing measurable.
	Telemetry bool
	// FormatVersion selects the wire format written by this Compressor:
	// 0 or 2 select format v2 (the default, byte-identical to previous
	// releases), 3 opts into format v3 — dual-stream entropy sections,
	// multi-symbol Huffman decode and the v3 dictionary coder — which is
	// faster to encode and decode but unreadable by pre-v3 builds. Readers
	// auto-detect the version per stream and per block, so decompression
	// needs no matching setting.
	FormatVersion int
	// Context, when non-nil, is polled cooperatively by every compress
	// operation that doesn't take its own context (CompressBatch, Compress,
	// Writer.WriteFrame/Close): once it is cancelled or past its deadline,
	// in-flight batches abort within a few shard row kernels and return
	// ctx.Err(). The explicit-context variants (CompressBatchContext,
	// CompressContext) ignore this field in favour of their argument.
	// Cancellation never corrupts compressor state: a cancelled batch can
	// be retried and produces the same bytes an uncancelled run would.
	Context context.Context
	// MaxDecodeBytes caps the decoder-side in-flight allocations driven by
	// claimed lengths in untrusted input (output matrices, entropy section
	// counts, code tables, backend original sizes, checkpoint state). It is
	// consulted by everything built from this Config that decodes —
	// DecompressorOptions/ReaderOptions carry their own copies for the
	// decode-only entry points. 0 (the default) means unlimited; rejections
	// match ErrBudgetExceeded and are counted in telemetry as
	// "budget.rejections". The cap is per concurrent operation set, not per
	// block: parallel shards draw from one shared ceiling.
	MaxDecodeBytes int64
	// Parallel is superseded by Workers and retained for compatibility:
	// axis-level parallelism is now governed by the worker pool, which
	// defaults to GOMAXPROCS. Output bytes are unaffected either way.
	//
	// Deprecated: set Workers instead; this field is ignored.
	Parallel bool
}

// workers resolves the effective worker count.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return 0 // pool.New treats 0 as GOMAXPROCS
}

// Compressor compresses trajectory batches. It is stateful: batches must be
// fed in simulation order, and the matching Decompressor must consume
// blocks in the same order. A Compressor must not be used from multiple
// goroutines concurrently (Config.Workers parallelizes internally).
type Compressor struct {
	cfg       Config
	pool      *pool.Pool
	enc       [3]*core.Encoder
	reg       *telemetry.Registry // nil unless cfg.Telemetry
	cancelled *telemetry.Counter  // "pipeline.cancelled_runs"; nil-safe
	faultHook func(op string, shard int)
}

// NewCompressor validates cfg and returns a Compressor.
func NewCompressor(cfg Config) (*Compressor, error) {
	if !(cfg.ErrorBound > 0) {
		return nil, fmt.Errorf("mdz: ErrorBound must be positive, got %v", cfg.ErrorBound)
	}
	if cfg.BufferSize == 0 {
		cfg.BufferSize = DefaultBufferSize
	}
	if cfg.BufferSize < 0 {
		return nil, fmt.Errorf("mdz: BufferSize must be positive, got %d", cfg.BufferSize)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("mdz: Workers must be non-negative, got %d", cfg.Workers)
	}
	if cfg.Shards < 0 || cfg.Shards > core.MaxShards {
		return nil, fmt.Errorf("mdz: Shards must be in [0, %d], got %d", core.MaxShards, cfg.Shards)
	}
	if cfg.ADPSampleShards < 0 || cfg.ADPSampleShards > core.MaxShards {
		return nil, fmt.Errorf("mdz: ADPSampleShards must be in [0, %d], got %d", core.MaxShards, cfg.ADPSampleShards)
	}
	if cfg.ADPRetrialInterval < 0 {
		return nil, fmt.Errorf("mdz: ADPRetrialInterval must be non-negative, got %d", cfg.ADPRetrialInterval)
	}
	if cfg.PipelineDepth < 0 || cfg.PipelineDepth > MaxPipelineDepth {
		return nil, fmt.Errorf("mdz: PipelineDepth must be in [0, %d], got %d", MaxPipelineDepth, cfg.PipelineDepth)
	}
	if v := cfg.FormatVersion; v != 0 && v != 2 && v != 3 {
		return nil, fmt.Errorf("mdz: FormatVersion must be 0, 2 or 3, got %d", v)
	}
	if cfg.MaxDecodeBytes < 0 {
		return nil, fmt.Errorf("mdz: MaxDecodeBytes must be non-negative, got %d", cfg.MaxDecodeBytes)
	}
	c := &Compressor{cfg: cfg, pool: pool.New(cfg.workers())}
	if cfg.Telemetry {
		c.reg = telemetry.NewRegistry()
		c.pool.SetTelemetry(pool.Instruments(c.reg))
	}
	c.cancelled = c.reg.Counter("pipeline.cancelled_runs")
	return c, nil
}

// noteCancelled counts a run that surfaced a context cancellation.
func noteCancelled(counter *telemetry.Counter, err error) {
	if isCancellation(err) {
		counter.Inc()
	}
}

// params builds per-axis core parameters. For ValueRange mode the absolute
// bound is derived from the first batch of that axis and then frozen for
// the compressor's lifetime — the bound is stateful, so a run whose value
// range grows after the first batch keeps the original absolute tolerance
// (feed a representative first batch, or use Absolute mode, when that
// matters). NaN values are skipped by the range measurement.
func (c *Compressor) params(axis int, firstBatch [][]float64) (core.Params, error) {
	eb := c.cfg.ErrorBound
	if c.cfg.Mode == ValueRange {
		var lo, hi float64
		first := true
		for _, snap := range firstBatch {
			l, h := quant.Range(snap)
			if first {
				lo, hi = l, h
				first = false
				continue
			}
			if l < lo {
				lo = l
			}
			if h > hi {
				hi = h
			}
		}
		eb = quant.AbsBound(c.cfg.ErrorBound, lo, hi)
	}
	return core.Params{
		ErrorBound:         eb,
		QuantScale:         c.cfg.QuantScale,
		Method:             c.cfg.Method,
		Sequence:           c.cfg.Sequence,
		AdaptInterval:      c.cfg.AdaptInterval,
		KMeans:             kmeans.Options{Seed: int64(axis) + 1},
		Shards:             c.cfg.Shards,
		ADPSampleShards:    c.cfg.ADPSampleShards,
		ADPRetrialInterval: c.cfg.ADPRetrialInterval,
		Pool:               c.pool,
		Tel:                core.EncoderInstruments(c.reg, axisName(axis)),
		FormatVersion:      c.cfg.FormatVersion,
		FaultHook:          c.faultHook,
	}, nil
}

// setFaultHook installs the shard-level fault-injection seam on the axis
// encoders — both those already built and, via params, those built later
// (test use only; see core.Params.FaultHook).
func (c *Compressor) setFaultHook(f func(op string, shard int)) {
	c.faultHook = f
	for _, enc := range c.enc {
		if enc != nil {
			enc.SetFaultHook(f)
		}
	}
}

// axisName names an axis index for telemetry and error messages.
func axisName(axis int) string {
	return [...]string{"x", "y", "z"}[axis]
}

// checkFinite rejects ±Inf in an axis's first batch. Infinities poison the
// value-range bound derivation (an infinite range yields an unusable
// quantizer) and have no meaningful error-bounded encoding; NaN is allowed
// everywhere and round-trips exactly through the outlier raw-bits path.
func checkFinite(axis int, batch [][]float64) error {
	for t, snap := range batch {
		for i, v := range snap {
			if math.IsInf(v, 0) {
				return fmt.Errorf("%w: %v at axis %s, snapshot %d, particle %d",
					ErrNonFinite, v, axisName(axis), t, i)
			}
		}
	}
	return nil
}

// CompressBatch compresses one buffer of frames into a self-contained block
// (all three axes). Frames must be non-empty and share a particle count.
// NaN values are legal anywhere and round-trip bit-exactly through the
// outlier path; ±Inf in an axis's first batch is rejected with
// ErrNonFinite (see checkFinite).
func (c *Compressor) CompressBatch(frames []Frame) ([]byte, error) {
	return c.CompressBatchContext(c.cfg.Context, frames)
}

// CompressBatchContext is CompressBatch with explicit cooperative
// cancellation (overriding Config.Context; nil disables it). On
// cancellation it returns ctx.Err() — context.Canceled or
// context.DeadlineExceeded — with all pooled scratch returned and encoder
// state unchanged, so the same batch can be compressed again on this
// Compressor with byte-identical output.
func (c *Compressor) CompressBatchContext(ctx context.Context, frames []Frame) ([]byte, error) {
	if len(frames) == 0 {
		return nil, errors.New("mdz: empty batch")
	}
	n := frames[0].N()
	for i, f := range frames {
		if f.N() != n || len(f.Y) != n || len(f.Z) != n {
			return nil, fmt.Errorf("mdz: frame %d has inconsistent particle count", i)
		}
	}
	// Build the three axis series once; they are shared by parameter
	// derivation and encoding below.
	var series [3][][]float64
	for axis := range series {
		series[axis] = axisSeries(frames, axis)
	}
	for axis := 0; axis < 3; axis++ {
		if c.enc[axis] == nil {
			// The first batch of an axis fixes its quantizer (and, in
			// ValueRange mode, its absolute bound), so infinities here would
			// corrupt the whole run; reject them up front.
			if err := checkFinite(axis, series[axis]); err != nil {
				return nil, err
			}
			p, err := c.params(axis, series[axis])
			if err != nil {
				return nil, err
			}
			enc, err := core.NewEncoder(p)
			if err != nil {
				return nil, err
			}
			c.enc[axis] = enc
		}
	}
	// The three axes encode concurrently on the shared pool; within each
	// axis, ADP trials and particle shards fan out further on the same
	// pool. Blocks are assembled in axis order, so output bytes are
	// independent of the worker count.
	var blks [3][]byte
	err := c.pool.RunContext(ctx, 3, func(axis int) error {
		blk, err := c.enc[axis].EncodeBatchContext(ctx, series[axis])
		blks[axis] = blk
		return err
	})
	if err != nil {
		noteCancelled(c.cancelled, err)
		return nil, err
	}
	out := []byte{'M', 'D', 'Z', 'S'}
	for _, blk := range blks {
		out = bitstream.AppendSection(out, blk)
	}
	// Integrity footer: CRC-32C of everything after the magic.
	out = bitstream.AppendUint32(out, crc32.Checksum(out[4:], crcTable))
	return out, nil
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Methods reports the concrete per-axis methods currently selected (useful
// under ADP). Before the first batch it returns zero values.
func (c *Compressor) Methods() [3]Method {
	var m [3]Method
	for i, e := range c.enc {
		if e != nil {
			m[i] = e.Method()
		}
	}
	return m
}

// Stats aggregates per-axis encoder statistics.
func (c *Compressor) Stats() (raw, compressed int64) {
	for _, e := range c.enc {
		if e != nil {
			raw += e.Stats.RawBytes
			compressed += e.Stats.CompressedBytes
		}
	}
	return raw, compressed
}

func axisSeries(frames []Frame, axis int) [][]float64 {
	out := make([][]float64, len(frames))
	for i, f := range frames {
		switch axis {
		case 0:
			out[i] = f.X
		case 1:
			out[i] = f.Y
		default:
			out[i] = f.Z
		}
	}
	return out
}

// Decompressor reconstructs frames from blocks, in encode order.
type Decompressor struct {
	pool      *pool.Pool
	dec       [3]*core.Decoder
	reg       *telemetry.Registry // nil unless opted in
	bud       *budget.Budget      // nil = unlimited
	ctx       context.Context     // default context for DecompressBatch; may be nil
	cancelled *telemetry.Counter  // "pipeline.cancelled_runs"; nil-safe
}

// DecompressorOptions configures a Decompressor.
type DecompressorOptions struct {
	// Workers bounds axis- and shard-level parallelism (0 = GOMAXPROCS,
	// 1 = serial). The reconstructed frames are identical for any count.
	Workers int
	// Telemetry enables decode-side instrumentation, read through
	// Decompressor.Telemetry / Decompressor.TelemetryRegistry.
	Telemetry bool
	// Context, when non-nil, is polled by DecompressBatch/Decompress calls
	// that don't take their own context; the explicit-context variants
	// override it. See Config.Context for semantics.
	Context context.Context
	// MaxDecodeBytes caps in-flight decode allocations driven by claimed
	// lengths in untrusted blocks; rejections match ErrBudgetExceeded.
	// 0 means unlimited. See Config.MaxDecodeBytes.
	MaxDecodeBytes int64
}

// NewDecompressor returns a Decompressor with default settings (a worker
// pool sized to GOMAXPROCS; use NewDecompressorWith to configure it).
func NewDecompressor() *Decompressor {
	return NewDecompressorWorkers(0)
}

// NewDecompressorWorkers returns a Decompressor whose axis- and shard-level
// parallelism is bounded by workers (0 = GOMAXPROCS, 1 = serial). The
// reconstructed frames are identical for any worker count.
func NewDecompressorWorkers(workers int) *Decompressor {
	return NewDecompressorWith(DecompressorOptions{Workers: workers})
}

// NewDecompressorWith returns a Decompressor configured by opts.
func NewDecompressorWith(opts DecompressorOptions) *Decompressor {
	d := &Decompressor{pool: pool.New(opts.Workers), ctx: opts.Context}
	if opts.Telemetry {
		d.reg = telemetry.NewRegistry()
		d.pool.SetTelemetry(pool.Instruments(d.reg))
	}
	d.cancelled = d.reg.Counter("pipeline.cancelled_runs")
	d.bud = budget.New(opts.MaxDecodeBytes)
	d.bud.SetTelemetry(d.reg.Counter("budget.rejections"))
	tel := core.DecoderInstruments(d.reg)
	for i := range d.dec {
		d.dec[i] = core.NewDecoder(core.Params{Backend: lossless.LZ{}, Pool: d.pool, Tel: tel, Budget: d.bud})
	}
	return d
}

// setFaultHook installs the shard-level fault-injection seam on all three
// axis decoders (test use only; see core.Params.FaultHook).
func (d *Decompressor) setFaultHook(f func(op string, shard int)) {
	for _, dec := range d.dec {
		dec.SetFaultHook(f)
	}
}

// DecompressBatch reconstructs the frames of one block, verifying its
// integrity checksum first.
func (d *Decompressor) DecompressBatch(blk []byte) ([]Frame, error) {
	return d.DecompressBatchContext(d.ctx, blk)
}

// DecompressBatchContext is DecompressBatch with explicit cooperative
// cancellation (overriding DecompressorOptions.Context; nil disables it).
// On cancellation it returns ctx.Err() with decoder state unchanged, so
// the same block can be decoded again.
func (d *Decompressor) DecompressBatchContext(ctx context.Context, blk []byte) ([]Frame, error) {
	if len(blk) < 4 || string(blk[:4]) != "MDZS" {
		return nil, fmt.Errorf("%w: not an MDZ block", ErrCorruptBlock)
	}
	if len(blk) < 8 {
		return nil, fmt.Errorf("%w: block cut before its checksum footer", ErrTruncated)
	}
	body := blk[4 : len(blk)-4]
	want, err := bitstream.NewByteReader(blk[len(blk)-4:]).ReadUint32()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated block footer", ErrTruncated)
	}
	if crc32.Checksum(body, crcTable) != want {
		return nil, fmt.Errorf("%w: block checksum mismatch (corrupted data)", ErrCorruptBlock)
	}
	br := bitstream.NewByteReader(body)
	var secs [3][]byte
	for axis := 0; axis < 3; axis++ {
		sec, err := br.ReadSection()
		if err != nil {
			return nil, mapBlockErr(err)
		}
		secs[axis] = sec
	}
	// Decode the three axes concurrently; each axis fans out further over
	// its particle shards on the same pool.
	var series [3][][]float64
	err = d.pool.RunContext(ctx, 3, func(axis int) error {
		out, derr := d.dec[axis].DecodeBatchContext(ctx, secs[axis])
		series[axis] = out
		return derr
	})
	if err != nil {
		noteCancelled(d.cancelled, err)
		return nil, mapBlockErr(err)
	}
	bs := len(series[0])
	if len(series[1]) != bs || len(series[2]) != bs {
		return nil, fmt.Errorf("%w: inconsistent axis batch sizes", ErrCorruptBlock)
	}
	frames := make([]Frame, bs)
	for t := 0; t < bs; t++ {
		frames[t] = Frame{X: series[0][t], Y: series[1][t], Z: series[2][t]}
	}
	return frames, nil
}

// blockSnapshots reports the snapshot count of a compressed block by
// parsing headers only — no payload is decompressed. A salvaging Reader
// uses it to account for intact blocks it must skip.
func blockSnapshots(blk []byte) (int, error) {
	if len(blk) < 8 || string(blk[:4]) != "MDZS" {
		return 0, fmt.Errorf("%w: not an MDZ block", ErrCorruptBlock)
	}
	br := bitstream.NewByteReader(blk[4 : len(blk)-4])
	sec, err := br.ReadSection()
	if err != nil {
		return 0, mapBlockErr(err)
	}
	_, bs, _, err := core.BlockInfo(sec)
	if err != nil {
		return 0, mapBlockErr(err)
	}
	return bs, nil
}

// Batch splits frames into buffers of at most bs frames (bs <= 0 selects
// DefaultBufferSize), mirroring the paper's buffered execution model.
func Batch(frames []Frame, bs int) [][]Frame {
	if bs <= 0 {
		bs = DefaultBufferSize
	}
	var out [][]Frame
	for i := 0; i < len(frames); i += bs {
		j := i + bs
		if j > len(frames) {
			j = len(frames)
		}
		out = append(out, frames[i:j])
	}
	return out
}

// Compress is a one-shot helper: it batches frames by cfg.BufferSize,
// compresses each batch, and frames the blocks into a single stream.
func Compress(frames []Frame, cfg Config) ([]byte, error) {
	c, err := NewCompressor(cfg)
	if err != nil {
		return nil, err
	}
	return c.Compress(frames)
}

// Compress compresses a whole trajectory on this Compressor: it batches
// frames by Config.BufferSize, compresses each batch, and frames the blocks
// into a single stream. Like CompressBatch it advances encoder state, so
// call it on a fresh Compressor (its main advantage over the package-level
// helper is access to Telemetry afterwards).
func (c *Compressor) Compress(frames []Frame) ([]byte, error) {
	return c.CompressContext(c.cfg.Context, frames)
}

// CompressContext is Compress with explicit cooperative cancellation
// (overriding Config.Context; nil disables it).
func (c *Compressor) CompressContext(ctx context.Context, frames []Frame) ([]byte, error) {
	out := []byte{'M', 'D', 'Z', 'F'}
	batches := Batch(frames, c.cfg.BufferSize)
	out = bitstream.AppendUvarint(out, uint64(len(batches)))
	for _, b := range batches {
		blk, err := c.CompressBatchContext(ctx, b)
		if err != nil {
			return nil, err
		}
		out = bitstream.AppendSection(out, blk)
	}
	return out, nil
}

// Decompress inverts Compress.
func Decompress(stream []byte) ([]Frame, error) {
	return NewDecompressor().Decompress(stream)
}

// Decompress reconstructs a whole trajectory produced by Compress on this
// Decompressor. Like DecompressBatch it advances decoder state, so call it
// on a fresh Decompressor.
func (d *Decompressor) Decompress(stream []byte) ([]Frame, error) {
	return d.DecompressContext(d.ctx, stream)
}

// DecompressContext is Decompress with explicit cooperative cancellation
// (overriding DecompressorOptions.Context; nil disables it).
func (d *Decompressor) DecompressContext(ctx context.Context, stream []byte) ([]Frame, error) {
	if len(stream) < 4 || string(stream[:4]) != "MDZF" {
		return nil, fmt.Errorf("%w: not an MDZ stream", ErrCorruptBlock)
	}
	br := bitstream.NewByteReader(stream[4:])
	nb, err := br.ReadUvarint()
	if err != nil {
		return nil, mapBlockErr(err)
	}
	if nb > 1<<30 {
		return nil, fmt.Errorf("%w: implausible block count", ErrCorruptBlock)
	}
	var frames []Frame
	for i := uint64(0); i < nb; i++ {
		blk, err := br.ReadSection()
		if err != nil {
			return nil, mapBlockErr(err)
		}
		batch, err := d.DecompressBatchContext(ctx, blk)
		if err != nil {
			return nil, err
		}
		frames = append(frames, batch...)
	}
	return frames, nil
}
