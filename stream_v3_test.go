package mdz

import (
	"bytes"
	"testing"

	"github.com/mdz/mdz/internal/faultio"
)

// writeStream runs frames through a Writer and returns the stream image.
func writeStream(t *testing.T, cfg Config, frames []Frame) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStreamFormatMatrix builds the same trajectory as a v1, v2 and v3
// container and checks that the auto-detecting Reader decodes all three,
// that v2 and v3 reconstruct bit-identical values, and that each stream
// leads with its own magic.
func TestStreamFormatMatrix(t *testing.T) {
	const bs = 4
	frames := makeFrames(16, 100, 91)
	cfg := Config{ErrorBound: 1e-3, Method: MT, BufferSize: bs, CheckpointInterval: 2}

	// v1: legacy length-prefixed container around v2-format blocks.
	c, err := NewCompressor(Config{ErrorBound: 1e-3, Method: MT, BufferSize: bs})
	if err != nil {
		t.Fatal(err)
	}
	var blks [][]byte
	for lo := 0; lo < len(frames); lo += bs {
		blk, err := c.CompressBatch(frames[lo : lo+bs])
		if err != nil {
			t.Fatal(err)
		}
		blks = append(blks, append([]byte(nil), blk...))
	}
	v1 := buildV1Stream(blks...)

	v2 := writeStream(t, cfg, frames)
	cfg3 := cfg
	cfg3.FormatVersion = 3
	v3 := writeStream(t, cfg3, frames)

	for _, c := range []struct {
		name, magic string
		stream      []byte
	}{
		{"v1", streamMagic, v1},
		{"v2", streamMagicV2, v2},
		{"v3", streamMagicV3, v3},
	} {
		if got := string(c.stream[:4]); got != c.magic {
			t.Fatalf("%s stream magic = %q, want %q", c.name, got, c.magic)
		}
	}

	decode := func(stream []byte) []Frame {
		got, err := NewReader(bytes.NewReader(stream)).ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	got1, got2, got3 := decode(v1), decode(v2), decode(v3)
	requireFramesIdentical(t, got1, got2, "v1 vs v2")
	requireFramesIdentical(t, got2, got3, "v2 vs v3")
}

// TestV3StreamRejectsOldReaderStyle pins that a v3 stream is not mistaken
// for a one-shot payload and that garbage magics still fail typed.
func TestV3StreamMagicDetection(t *testing.T) {
	frames := makeFrames(4, 30, 3)
	cfg := Config{ErrorBound: 1e-3, BufferSize: 4, FormatVersion: 3}
	v3 := writeStream(t, cfg, frames)

	// Mangle the magic: the reader must reject rather than guess.
	bad := append([]byte(nil), v3...)
	copy(bad, "MDZ9")
	if _, err := NewReader(bytes.NewReader(bad)).ReadAll(); err == nil {
		t.Fatal("unknown magic accepted")
	}
}

// TestV3StreamResync corrupts a v3 stream mid-frame and checks that the
// resyncing reader salvages the undamaged regions, exactly as it does for
// v2 streams: salvaged frames must be an order-preserving subsequence of
// the clean decode and the loss must be accounted.
func TestV3StreamResync(t *testing.T) {
	frames := makeFrames(24, 120, 57)
	cfg := Config{
		ErrorBound: 1e-3, Method: MT, BufferSize: 2,
		CheckpointInterval: 3, FormatVersion: 3,
	}
	stream := writeStream(t, cfg, frames)
	clean, err := NewReader(bytes.NewReader(stream)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	metas := parseV2Frames(t, stream)
	m := dataFrames(metas)[4]
	hurt := faultio.Corrupt(stream, faultio.Fault{
		Kind: faultio.FlipBit, Offset: int64(m.pay + m.plen/2), Bit: 3,
	})

	r := NewReaderWith(bytes.NewReader(hurt), ReaderOptions{Resync: true})
	salvaged, err := r.ReadAll()
	if err != nil {
		t.Fatalf("resync read: %v", err)
	}
	stats := r.SalvageStats()
	if stats.FirstError == nil {
		t.Fatal("corruption not recorded in salvage stats")
	}
	if len(salvaged) >= len(clean) {
		t.Fatalf("salvaged %d frames from a damaged stream of %d", len(salvaged), len(clean))
	}
	if len(salvaged) == 0 {
		t.Fatal("nothing salvaged")
	}
	if _, ok := matchSubsequence(clean, salvaged); !ok {
		t.Fatal("salvaged frames are not a subsequence of the clean decode")
	}
}
