package daemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	mdz "github.com/mdz/mdz"
	"github.com/mdz/mdz/internal/bitstream"
	"github.com/mdz/mdz/internal/safeio"
)

// Drain-state file layout: "MDZD" magic, a version byte, a uvarint session
// count, then per session three length-prefixed sections — JSON metadata,
// container bytes, serialized WriterState (empty for closed sessions).
// The file is written atomically on drain and consumed (deleted) on
// restore, so a crash between restarts can never resurrect stale sessions
// on top of newer ones.
const (
	drainMagic   = "MDZD"
	drainVersion = 1
)

// drainMeta is the JSON metadata section of one persisted session.
type drainMeta struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	State    string `json:"state"`
	Frames   int64  `json:"frames"`
	RawBytes int64  `json:"raw_bytes"`

	ErrorBound         float64 `json:"error_bound"`
	Mode               int     `json:"mode"`
	Method             int     `json:"method"`
	BufferSize         int     `json:"buffer_size"`
	CheckpointInterval int     `json:"checkpoint_interval"`
	FormatVersion      int     `json:"format_version"`
}

// Drain stops ingest on every live session — every accepted frame is
// compressed into its container first — and, when StatePath is set,
// persists all sessions atomically so the next process resumes them. The
// server stops accepting new sessions permanently; the process is expected
// to exit afterwards.
func (srv *Server) Drain() error {
	srv.mu.Lock()
	srv.draining = true
	list := make([]*session, 0, len(srv.sessions))
	for _, s := range srv.sessions {
		list = append(list, s)
	}
	srv.mu.Unlock()

	for _, s := range list {
		s.stopIngest()
	}
	if srv.opts.StatePath == "" {
		return nil
	}

	out := append([]byte(drainMagic), drainVersion)
	out = bitstream.AppendUvarint(out, uint64(len(list)))
	persisted := 0
	for _, s := range list {
		blob, err := s.export()
		if err != nil {
			srv.logf("drain: dropping session %s: %v", s.id, err)
			// A session that cannot export still occupies a count slot:
			// record an empty entry so the count stays honest.
			out = bitstream.AppendSection(out, nil)
			out = bitstream.AppendSection(out, nil)
			out = bitstream.AppendSection(out, nil)
			continue
		}
		out = append(out, blob...)
		persisted++
	}
	if err := safeio.WriteFileBytes(srv.opts.StatePath, out, safeio.Options{}); err != nil {
		return fmt.Errorf("daemon: persisting drain state: %w", err)
	}
	srv.tel.drained.Add(int64(persisted))
	srv.logf("drained %d session(s) to %s", persisted, srv.opts.StatePath)
	return nil
}

// export serializes one quiesced session (stopIngest already ran) as its
// three drain-file sections. Failed sessions do not export: their streams
// are already broken and resuming them would lie to the client.
func (s *session) export() ([]byte, error) {
	if err := s.failed(); err != nil {
		return nil, fmt.Errorf("session failed: %w", err)
	}
	s.mu.Lock()
	closed := s.state == stateClosed
	w := s.w
	s.mu.Unlock()

	var wst []byte
	if !closed {
		// ExportState flushes the Writer through sink (which locks mu), so
		// it must run while mu is free.
		st, err := w.ExportState()
		if err != nil {
			return nil, err
		}
		if wst, err = st.MarshalBinary(); err != nil {
			return nil, err
		}
	}

	s.mu.Lock()
	meta := drainMeta{
		ID: s.id, Tenant: s.tenant, State: s.state,
		Frames: s.frames, RawBytes: s.rawBytes,
		ErrorBound:         s.cfg.ErrorBound,
		Mode:               int(s.cfg.Mode),
		Method:             int(s.cfg.Method),
		BufferSize:         s.cfg.BufferSize,
		CheckpointInterval: s.cfg.CheckpointInterval,
		FormatVersion:      s.cfg.FormatVersion,
	}
	container := append([]byte(nil), s.buf.Bytes()...)
	s.mu.Unlock()

	mj, err := json.Marshal(&meta)
	if err != nil {
		return nil, err
	}
	var out []byte
	out = bitstream.AppendSection(out, mj)
	out = bitstream.AppendSection(out, container)
	out = bitstream.AppendSection(out, wst)
	return out, nil
}

// restore loads a drain file, reconstructs its sessions and deletes the
// file. A missing file is a clean first boot. A corrupt file is an error:
// silently discarding sessions a client was promised would be data loss.
func (srv *Server) restore(path string) (int, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	if len(data) < len(drainMagic)+1 || string(data[:4]) != drainMagic {
		return 0, errors.New("not a drain-state file")
	}
	if data[4] != drainVersion {
		return 0, fmt.Errorf("unsupported drain-state version %d", data[4])
	}
	br := bitstream.NewByteReader(data[5:])
	count, err := br.ReadUvarint()
	if err != nil || count > 1<<20 {
		return 0, errors.New("bad session count")
	}
	restored := 0
	var maxID uint64
	for i := uint64(0); i < count; i++ {
		mj, err := br.ReadSection()
		if err != nil {
			return restored, fmt.Errorf("session %d: metadata: %w", i, err)
		}
		container, err := br.ReadSection()
		if err != nil {
			return restored, fmt.Errorf("session %d: container: %w", i, err)
		}
		wstRaw, err := br.ReadSection()
		if err != nil {
			return restored, fmt.Errorf("session %d: writer state: %w", i, err)
		}
		if len(mj) == 0 {
			continue // a session dropped at drain time
		}
		var meta drainMeta
		if err := json.Unmarshal(mj, &meta); err != nil {
			return restored, fmt.Errorf("session %d: metadata: %w", i, err)
		}
		var wst *mdz.WriterState
		if len(wstRaw) > 0 {
			wst = &mdz.WriterState{}
			if err := wst.UnmarshalBinary(wstRaw); err != nil {
				return restored, fmt.Errorf("session %s: writer state: %w", meta.ID, err)
			}
		}
		cfg := mdz.Config{
			ErrorBound:         meta.ErrorBound,
			Mode:               mdz.BoundMode(meta.Mode),
			Method:             mdz.Method(meta.Method),
			BufferSize:         meta.BufferSize,
			CheckpointInterval: meta.CheckpointInterval,
			FormatVersion:      meta.FormatVersion,
		}
		s, err := srv.buildSession(meta.ID, meta.Tenant, cfg, container, wst)
		if err != nil {
			return restored, fmt.Errorf("session %s: %w", meta.ID, err)
		}
		s.mu.Lock()
		s.frames = meta.Frames
		s.rawBytes = meta.RawBytes
		if meta.State == stateClosed {
			s.state = stateClosed
		}
		s.mu.Unlock()
		srv.mu.Lock()
		srv.sessions[meta.ID] = s
		srv.mu.Unlock()
		srv.tel.active.Add(1)
		srv.tel.restored.Inc()
		if n, ok := parseSessionID(meta.ID); ok && n > maxID {
			maxID = n
		}
		restored++
	}
	if br.Len() != 0 {
		return restored, errors.New("trailing bytes after the last session")
	}
	srv.mu.Lock()
	if maxID > srv.nextID {
		srv.nextID = maxID
	}
	srv.mu.Unlock()
	// Consume the file: it represents sessions that now live here.
	if err := os.Remove(path); err != nil {
		return restored, fmt.Errorf("consuming drain state: %w", err)
	}
	return restored, nil
}

// parseSessionID inverts the "s%08x" id format.
func parseSessionID(id string) (uint64, bool) {
	var n uint64
	if _, err := fmt.Sscanf(id, "s%x", &n); err != nil {
		return 0, false
	}
	return n, true
}
