package daemon

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	mdz "github.com/mdz/mdz"
	"github.com/mdz/mdz/internal/budget"
	"github.com/mdz/mdz/internal/core"
)

// API-level sentinel errors and their HTTP status mapping.
var (
	errDraining        = errors.New("server is draining")
	errTooManySessions = errors.New("session limit reached")
	errUnknownSession  = errors.New("unknown session")
)

func statusFor(err error) int {
	switch {
	case errors.Is(err, errUnknownSession):
		return http.StatusNotFound
	case errors.Is(err, errSessionClosed):
		return http.StatusConflict
	case errors.Is(err, errTooManySessions):
		return http.StatusTooManyRequests
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, budget.ErrExceeded):
		return http.StatusInsufficientStorage
	case errors.Is(err, errWireFormat):
		return http.StatusBadRequest
	case errors.Is(err, context.Canceled):
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

// httpError renders err as a JSON problem document with its mapped status.
func (srv *Server) httpError(w http.ResponseWriter, err error) {
	status := statusFor(err)
	if status == http.StatusInsufficientStorage {
		srv.tel.rejectedMem.Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// SessionConfig is the JSON body of POST /v1/sessions.
type SessionConfig struct {
	// Tenant labels the session's per-tenant metrics; empty is "default".
	Tenant string `json:"tenant,omitempty"`
	// ErrorBound is the compressor's error tolerance (required, > 0).
	ErrorBound float64 `json:"error_bound"`
	// AbsoluteBound interprets ErrorBound as an absolute tolerance instead
	// of value-range-relative.
	AbsoluteBound bool `json:"absolute_bound,omitempty"`
	// Method names the compression method: ADP (default), VQ, VQT or MT.
	Method string `json:"method,omitempty"`
	// BufferSize is the snapshots-per-block batch size (default 10).
	BufferSize int `json:"buffer_size,omitempty"`
	// CheckpointInterval emits a recovery checkpoint every N blocks.
	CheckpointInterval int `json:"checkpoint_interval,omitempty"`
	// FormatVersion selects the container format: 0/2 = v2, 3 = v3.
	FormatVersion int `json:"format_version,omitempty"`
	// Workers bounds the session's compression goroutines (0 = GOMAXPROCS).
	// Capped at maxSessionWorkers so one tenant cannot claim the box.
	Workers int `json:"workers,omitempty"`
	// Shards fixes the particle shards per axis batch (0 = auto). Part of
	// the output format, so a fixed value pins output bytes.
	Shards int `json:"shards,omitempty"`
	// ADPSampleShards amortizes ADP re-evaluations onto a sampled shard
	// prefix (0 = full trials; changes output bytes deterministically).
	ADPSampleShards int `json:"adp_sample_shards,omitempty"`
	// PipelineDepth overlaps batch compression with container framing,
	// keeping up to N compressed batches in flight (0 = synchronous;
	// output bytes identical). Capped at maxSessionPipeline because each
	// in-flight batch holds compressed bytes outside the session budget.
	PipelineDepth int `json:"pipeline_depth,omitempty"`
	// SeekIndex appends a seek-table frame when the session closes, so
	// ranged reads of the drained container seek straight to the window
	// instead of decoding the prefix.
	SeekIndex bool `json:"seek_index,omitempty"`
}

// Per-session caps on client-supplied parallelism knobs. Workers are
// goroutines and pipeline slots are retained buffers, so both multiply per
// session; the caps keep a single tenant's request from dimensioning the
// whole process.
const (
	maxSessionWorkers  = 64
	maxSessionPipeline = 8
)

func (sc *SessionConfig) toConfig() (mdz.Config, error) {
	m, err := mdz.ParseMethod(sc.Method)
	if err != nil {
		return mdz.Config{}, err
	}
	if sc.Workers < 0 || sc.Workers > maxSessionWorkers {
		return mdz.Config{}, fmt.Errorf("workers must be in [0, %d], got %d", maxSessionWorkers, sc.Workers)
	}
	if sc.PipelineDepth < 0 || sc.PipelineDepth > maxSessionPipeline {
		return mdz.Config{}, fmt.Errorf("pipeline_depth must be in [0, %d], got %d", maxSessionPipeline, sc.PipelineDepth)
	}
	if sc.Shards < 0 || sc.Shards > core.MaxShards {
		return mdz.Config{}, fmt.Errorf("shards must be in [0, %d], got %d", core.MaxShards, sc.Shards)
	}
	if sc.ADPSampleShards < 0 || sc.ADPSampleShards > core.MaxShards {
		return mdz.Config{}, fmt.Errorf("adp_sample_shards must be in [0, %d], got %d", core.MaxShards, sc.ADPSampleShards)
	}
	cfg := mdz.Config{
		ErrorBound:         sc.ErrorBound,
		Method:             m,
		BufferSize:         sc.BufferSize,
		CheckpointInterval: sc.CheckpointInterval,
		FormatVersion:      sc.FormatVersion,
		Workers:            sc.Workers,
		Shards:             sc.Shards,
		ADPSampleShards:    sc.ADPSampleShards,
		PipelineDepth:      sc.PipelineDepth,
		SeekIndex:          sc.SeekIndex,
	}
	if sc.AbsoluteBound {
		cfg.Mode = mdz.Absolute
	}
	return cfg, nil
}

// Handler returns the service API mux. Observability endpoints (metrics,
// pprof) are intentionally not here — they belong on the admin listener.
func (srv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", srv.handleHealth)
	mux.HandleFunc("POST /v1/sessions", srv.handleCreate)
	mux.HandleFunc("GET /v1/sessions", srv.handleList)
	mux.HandleFunc("GET /v1/sessions/{id}", srv.handleInfo)
	mux.HandleFunc("DELETE /v1/sessions/{id}", srv.handleDelete)
	mux.HandleFunc("POST /v1/sessions/{id}/frames", srv.handleIngest)
	mux.HandleFunc("GET /v1/sessions/{id}/frames", srv.handleReadFrames)
	mux.HandleFunc("POST /v1/sessions/{id}/close", srv.handleClose)
	mux.HandleFunc("GET /v1/sessions/{id}/stream", srv.handleStream)
	mux.HandleFunc("POST /v1/decode", srv.handleDecode)
	return mux
}

func (srv *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	srv.mu.Lock()
	draining := srv.draining
	n := len(srv.sessions)
	srv.mu.Unlock()
	status := http.StatusOK
	if draining {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{
		"draining":     draining,
		"sessions":     n,
		"memory_bytes": srv.mem.Used(),
	})
}

func (srv *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var sc SessionConfig
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&sc); err != nil {
		srv.httpError(w, fmt.Errorf("%w: %v", errWireFormat, err))
		return
	}
	cfg, err := sc.toConfig()
	if err != nil {
		srv.httpError(w, fmt.Errorf("%w: %v", errWireFormat, err))
		return
	}
	s, err := srv.newSession(sc.Tenant, cfg)
	if err != nil {
		srv.httpError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, s.describe())
}

func (srv *Server) handleList(w http.ResponseWriter, r *http.Request) {
	srv.mu.Lock()
	list := make([]*session, 0, len(srv.sessions))
	for _, s := range srv.sessions {
		list = append(list, s)
	}
	srv.mu.Unlock()
	infos := make([]info, 0, len(list))
	for _, s := range list {
		infos = append(infos, s.describe())
	}
	writeJSON(w, http.StatusOK, infos)
}

func (srv *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	s, ok := srv.lookup(r.PathValue("id"))
	if !ok {
		srv.httpError(w, errUnknownSession)
		return
	}
	writeJSON(w, http.StatusOK, s.describe())
}

func (srv *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	s, ok := srv.lookup(r.PathValue("id"))
	if !ok {
		srv.httpError(w, errUnknownSession)
		return
	}
	srv.remove(s, "deleted")
	srv.tel.memUsed.Set(srv.mem.Used())
	w.WriteHeader(http.StatusNoContent)
}

// ingestBatchFrames bounds the snapshots grouped into one queue item, so
// queue depth bounds memory in frames, not in unbounded request bodies.
const ingestBatchFrames = 32

func (srv *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	s, ok := srv.lookup(r.PathValue("id"))
	if !ok {
		srv.httpError(w, errUnknownSession)
		return
	}
	br := bufio.NewReaderSize(r.Body, 64<<10)
	accepted := 0
	var acceptedBytes int64
	for {
		frames := make([]mdz.Frame, 0, ingestBatchFrames)
		var batchBytes int64
		var rerr error
		for len(frames) < ingestBatchFrames {
			f, err := readWireFrame(br)
			if err != nil {
				rerr = err
				break
			}
			frames = append(frames, f)
			batchBytes += wireFrameBytes(f.N())
		}
		if len(frames) > 0 {
			if err := s.enqueue(frames); err != nil {
				srv.httpError(w, fmt.Errorf("after %d accepted frames: %w", accepted, err))
				return
			}
			accepted += len(frames)
			acceptedBytes += batchBytes
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			srv.httpError(w, fmt.Errorf("after %d accepted frames: %w", accepted, rerr))
			return
		}
	}
	srv.tel.framesIn.Add(int64(accepted))
	srv.tel.bytesIn.Add(acceptedBytes)
	srv.tenantCounter(s.tenant, "frames_in").Add(int64(accepted))
	srv.tenantCounter(s.tenant, "bytes_in").Add(acceptedBytes)
	srv.tel.memUsed.Set(srv.mem.Used())
	writeJSON(w, http.StatusAccepted, map[string]int{"accepted": accepted})
}

func (srv *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	s, ok := srv.lookup(r.PathValue("id"))
	if !ok {
		srv.httpError(w, errUnknownSession)
		return
	}
	if err := s.finish(); err != nil {
		srv.httpError(w, err)
		return
	}
	s.touch()
	writeJSON(w, http.StatusOK, s.describe())
}

// handleStream serves the container bytes flushed so far (the complete
// container once the session is closed). Range requests are honored, so a
// client can tail a live session's container incrementally.
func (srv *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	s, ok := srv.lookup(r.PathValue("id"))
	if !ok {
		srv.httpError(w, errUnknownSession)
		return
	}
	data, closed, serr := s.snapshot()
	if serr != nil {
		srv.httpError(w, serr)
		return
	}
	s.touch()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Mdz-Complete", strconv.FormatBool(closed))
	http.ServeContent(w, r, s.id+".mdz", time.Time{}, bytes.NewReader(data))
	srv.tel.bytesOut.Add(int64(len(data)))
	srv.tenantCounter(s.tenant, "bytes_out").Add(int64(len(data)))
}

// handleReadFrames decodes a frame range [from, from+count) from the
// session's container and returns it in the wire record format. An active
// session's container legitimately ends mid-stream (no trailer yet); the
// truncation is tolerated and the response reports how many frames exist.
func (srv *Server) handleReadFrames(w http.ResponseWriter, r *http.Request) {
	s, ok := srv.lookup(r.PathValue("id"))
	if !ok {
		srv.httpError(w, errUnknownSession)
		return
	}
	from, count, err := parseRange(r)
	if err != nil {
		srv.httpError(w, err)
		return
	}
	data, closed, serr := s.snapshot()
	if serr != nil {
		srv.httpError(w, serr)
		return
	}
	s.touch()
	frames, derr := srv.decodeRange(r.Context(), data, from, count, false, !closed)
	if derr != nil {
		srv.httpError(w, derr)
		return
	}
	srv.writeFrames(w, s.tenant, frames)
}

// handleDecode is the stateless mirror: POST a container, get frames back.
// ?salvage=1 decodes through the resyncing reader and reports what was
// lost in response headers instead of failing on the first corrupt frame.
func (srv *Server) handleDecode(w http.ResponseWriter, r *http.Request) {
	from, count, err := parseRange(r)
	if err != nil {
		srv.httpError(w, err)
		return
	}
	salvage := r.URL.Query().Get("salvage") == "1"
	limit := srv.opts.MemPerSession
	if limit <= 0 {
		limit = 1 << 30
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		srv.httpError(w, fmt.Errorf("%w: %v", errWireFormat, err))
		return
	}
	if int64(len(data)) > limit {
		srv.httpError(w, fmt.Errorf("container over the %d-byte request cap: %w", limit, budget.ErrExceeded))
		return
	}
	opts := mdz.ReaderOptions{
		Resync:         salvage,
		Context:        r.Context(),
		MaxDecodeBytes: srv.opts.MaxDecodeBytes,
	}
	frames, rd, derr := readRange(data, opts, from, count)
	if derr != nil && !salvage {
		srv.httpError(w, derr)
		return
	}
	if salvage {
		st := rd.SalvageStats()
		w.Header().Set("X-Mdz-Corrupt-Frames", strconv.Itoa(st.CorruptFrames))
		w.Header().Set("X-Mdz-Skipped-Bytes", strconv.FormatInt(st.SkippedBytes, 10))
		w.Header().Set("X-Mdz-Dropped-Frames", strconv.Itoa(st.DroppedFrames))
		w.Header().Set("X-Mdz-Truncated", strconv.FormatBool(st.Truncated))
	}
	srv.writeFrames(w, "", frames)
}

// decodeRange decodes [from, from+count) out of container bytes.
// tolerateTruncation accepts a stream that ends without a trailer — the
// normal state of a live session's container.
func (srv *Server) decodeRange(ctx context.Context, data []byte, from, count int, salvage, tolerateTruncation bool) ([]mdz.Frame, error) {
	frames, _, err := readRange(data, mdz.ReaderOptions{
		Resync:         salvage,
		Context:        ctx,
		MaxDecodeBytes: srv.opts.MaxDecodeBytes,
	}, from, count)
	if err != nil && tolerateTruncation && errors.Is(err, mdz.ErrTruncated) {
		err = nil
	}
	if err != nil {
		return nil, err
	}
	return frames, nil
}

// readRange decodes the frame window [from, from+count) from container
// bytes (count < 0 = all remaining). In strict mode with from > 0 it first
// tries Reader.Seek, which jumps via the stream's frame index (present or
// scan-rebuilt) without decoding the prefix; any stream that cannot seek —
// v1, one-shot, or a live container without a trailer yet — falls back to
// the serial discard transparently. Salvage mode always reads serially so
// the from/count numbering matches the salvaged frame sequence. Reaching
// EOF early is not an error: the response simply carries fewer frames.
// Returns the Reader actually used so callers can inspect its stats.
func readRange(data []byte, opts mdz.ReaderOptions, from, count int) ([]mdz.Frame, *mdz.Reader, error) {
	if from > 0 && !opts.Resync {
		rd := mdz.NewReaderWith(bytes.NewReader(data), opts)
		switch err := rd.Seek(from); {
		case err == nil:
			out, cerr := collectFrames(rd, count)
			return out, rd, cerr
		case errors.Is(err, io.EOF):
			return nil, rd, nil
		}
		// Seek unavailable for this stream: fall through to a fresh serial
		// reader (the failed Seek may have left this one positioned oddly).
	}
	rd := mdz.NewReaderWith(bytes.NewReader(data), opts)
	var out []mdz.Frame
	for i := 0; count < 0 || len(out) < count; i++ {
		f, err := rd.ReadFrame()
		if err == io.EOF {
			return out, rd, nil
		}
		if err != nil {
			return out, rd, err
		}
		if i >= from {
			out = append(out, f)
		}
	}
	return out, rd, nil
}

// collectFrames reads up to count frames (count < 0 = all) from an already
// positioned Reader.
func collectFrames(rd *mdz.Reader, count int) ([]mdz.Frame, error) {
	var out []mdz.Frame
	for count < 0 || len(out) < count {
		f, err := rd.ReadFrame()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, f)
	}
	return out, nil
}

// writeFrames streams records in the wire format, with the frame count in
// a header so clients can preallocate.
func (srv *Server) writeFrames(w http.ResponseWriter, tenant string, frames []mdz.Frame) {
	var total int64
	for _, f := range frames {
		total += wireFrameBytes(f.N())
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Mdz-Frames", strconv.Itoa(len(frames)))
	w.Header().Set("Content-Length", strconv.FormatInt(total, 10))
	bw := bufio.NewWriterSize(w, 64<<10)
	for _, f := range frames {
		if err := writeWireFrame(bw, f); err != nil {
			return // client went away mid-response
		}
	}
	bw.Flush()
	srv.tel.bytesOut.Add(total)
	if tenant != "" {
		srv.tenantCounter(tenant, "bytes_out").Add(total)
	}
}

func parseRange(r *http.Request) (from, count int, err error) {
	q := r.URL.Query()
	from, count = 0, -1
	if v := q.Get("from"); v != "" {
		if from, err = strconv.Atoi(v); err != nil || from < 0 {
			return 0, 0, fmt.Errorf("%w: bad from=%q", errWireFormat, v)
		}
	}
	if v := q.Get("count"); v != "" {
		if count, err = strconv.Atoi(v); err != nil || count < 0 {
			return 0, 0, fmt.Errorf("%w: bad count=%q", errWireFormat, v)
		}
	}
	return from, count, nil
}
