package daemon

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	mdz "github.com/mdz/mdz"
)

// The frame wire format used on both directions of the HTTP API is a flat
// sequence of snapshot records: a uint32 little-endian atom count n
// followed by the X, Y and Z axes, each n IEEE-754 float64s little-endian.
// It is self-delimiting (records abut until EOF), streamable, and trivial
// to emit from any client without a schema library.

// maxWireAtoms caps the per-snapshot atom count a request may claim before
// the server allocates for it (1<<26 atoms ≈ 1.6 GB per snapshot record —
// far past any real trajectory, close enough to stop length forgeries).
const maxWireAtoms = 1 << 26

// wireFrameBytes is the wire (and approximate resident) size of one record.
func wireFrameBytes(n int) int64 { return 4 + 3*8*int64(n) }

// errWireFormat tags malformed request payloads (client error, not server).
var errWireFormat = errors.New("malformed frame record")

// readWireFrame reads one snapshot record. io.EOF is returned untouched
// when the source ends cleanly before a record starts; a record cut partway
// through reports errWireFormat.
func readWireFrame(r io.Reader) (mdz.Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return mdz.Frame{}, io.EOF
		}
		return mdz.Frame{}, fmt.Errorf("%w: record cut inside the atom count", errWireFormat)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxWireAtoms {
		return mdz.Frame{}, fmt.Errorf("%w: atom count %d out of range [1, %d]", errWireFormat, n, maxWireAtoms)
	}
	buf := make([]byte, 8*int(n))
	axes := [3][]float64{}
	for a := range axes {
		if _, err := io.ReadFull(r, buf); err != nil {
			return mdz.Frame{}, fmt.Errorf("%w: record cut inside axis %d", errWireFormat, a)
		}
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		axes[a] = vals
	}
	return mdz.Frame{X: axes[0], Y: axes[1], Z: axes[2]}, nil
}

// writeWireFrame emits one snapshot record.
func writeWireFrame(w io.Writer, f mdz.Frame) error {
	n := f.N()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(n))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 8*n)
	for _, axis := range [3][]float64{f.X, f.Y, f.Z} {
		for i, v := range axis {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
