// Package daemon is the mdzd compression service: stateful streaming
// sessions over HTTP. A client opens a session with a compression Config,
// streams snapshot frames in, and reads the finished v2/v3 container (or
// decoded frame ranges) back out. The server multiplexes many tenants over
// one process under global and per-session memory budgets, evicts idle
// sessions, and can drain every live session to disk and restore it after
// a restart without losing an accepted frame.
package daemon

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	mdz "github.com/mdz/mdz"
	"github.com/mdz/mdz/internal/budget"
	"github.com/mdz/mdz/internal/telemetry"
)

// Options configures a Server. The zero value serves with no memory caps,
// no idle eviction and no drain persistence.
type Options struct {
	// MaxSessions caps concurrently live sessions (0 = 1024).
	MaxSessions int
	// IdleTimeout evicts sessions (live or closed) that have not been
	// touched for this long, releasing their memory. 0 disables eviction.
	IdleTimeout time.Duration
	// QueueDepth bounds each session's ingest queue, in batches; a full
	// queue blocks the ingest request (backpressure). 0 = 4.
	QueueDepth int
	// MemGlobal caps the total bytes the server retains across all
	// sessions — queued raw snapshots plus accumulated containers.
	// Exhaustion rejects the triggering request with 507. 0 = unlimited.
	MemGlobal int64
	// MemPerSession caps one session's share of the same. 0 = unlimited.
	MemPerSession int64
	// MaxDecodeBytes is forwarded to every decode the server performs on
	// behalf of clients (ranged reads, /v1/decode). 0 = unlimited.
	MaxDecodeBytes int64
	// StatePath, when set, is where Drain persists live sessions and
	// where New looks for sessions to restore.
	StatePath string
	// Logf receives operational diagnostics (evictions, restore results).
	// nil discards.
	Logf func(format string, args ...any)
	// Registry receives the daemon's metrics. nil creates a private one.
	Registry *telemetry.Registry
}

// serverTel is the daemon's instrument set. Per-tenant counters are minted
// on demand via Server.tenantCounter.
type serverTel struct {
	active                    *telemetry.Gauge
	opened, closed, evicted   *telemetry.Counter
	restored, drained         *telemetry.Counter
	framesIn, bytesIn         *telemetry.Counter
	bytesOut, failures        *telemetry.Counter
	rejectedBusy, rejectedMem *telemetry.Counter
	memUsed                   *telemetry.Gauge
}

// Server is the session registry and HTTP API implementation.
type Server struct {
	opts Options
	reg  *telemetry.Registry
	mem  *budget.Budget
	tel  serverTel

	mu       sync.Mutex
	sessions map[string]*session
	nextID   uint64
	draining bool

	janitorStop chan struct{}
	janitorDone chan struct{}
}

// New builds a Server and, if Options.StatePath names a drain file from a
// previous process, restores its sessions (consuming the file).
func New(opts Options) (*Server, error) {
	if opts.MaxSessions <= 0 {
		opts.MaxSessions = 1024
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 4
	}
	reg := opts.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	srv := &Server{
		opts:     opts,
		reg:      reg,
		mem:      budget.New(opts.MemGlobal),
		sessions: make(map[string]*session),
	}
	srv.mem.SetTelemetry(reg.Counter("daemon.budget.rejections"))
	srv.tel = serverTel{
		active:       reg.Gauge("daemon.sessions.active"),
		opened:       reg.Counter("daemon.sessions.opened"),
		closed:       reg.Counter("daemon.sessions.closed"),
		evicted:      reg.Counter("daemon.sessions.evicted"),
		restored:     reg.Counter("daemon.sessions.restored"),
		drained:      reg.Counter("daemon.sessions.drained"),
		framesIn:     reg.Counter("daemon.frames.in"),
		bytesIn:      reg.Counter("daemon.bytes.in"),
		bytesOut:     reg.Counter("daemon.bytes.out"),
		failures:     reg.Counter("daemon.session.failures"),
		rejectedBusy: reg.Counter("daemon.rejected.busy"),
		rejectedMem:  reg.Counter("daemon.rejected.memory"),
		memUsed:      reg.Gauge("daemon.memory.used_bytes"),
	}
	if opts.StatePath != "" {
		n, err := srv.restore(opts.StatePath)
		if err != nil {
			return nil, fmt.Errorf("daemon: restoring %s: %w", opts.StatePath, err)
		}
		if n > 0 {
			srv.logf("restored %d session(s) from %s", n, opts.StatePath)
		}
	}
	if opts.IdleTimeout > 0 {
		srv.janitorStop = make(chan struct{})
		srv.janitorDone = make(chan struct{})
		go srv.janitor()
	}
	return srv, nil
}

func (srv *Server) logf(format string, args ...any) {
	if srv.opts.Logf != nil {
		srv.opts.Logf(format, args...)
	}
}

// Registry exposes the daemon's metrics registry for the admin listener.
func (srv *Server) Registry() *telemetry.Registry { return srv.reg }

// tenantCounter mints (or finds) a per-tenant labeled counter, e.g.
// "daemon.tenant.alice.frames_in".
func (srv *Server) tenantCounter(tenant, name string) *telemetry.Counter {
	return srv.reg.Counter("daemon.tenant." + sanitizeTenant(tenant) + "." + name)
}

// sanitizeTenant maps arbitrary client-supplied tenant strings into a
// bounded metric-name-safe slug so a hostile client cannot mint unbounded
// or malformed metric names.
func sanitizeTenant(t string) string {
	if t == "" {
		return "default"
	}
	var b strings.Builder
	for _, r := range strings.ToLower(t) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
		if b.Len() >= 48 {
			break
		}
	}
	return b.String()
}

// newSession registers a new live session. The Config must already be
// validated (newSession runs NewWriter, which re-validates).
func (srv *Server) newSession(tenant string, cfg mdz.Config) (*session, error) {
	srv.mu.Lock()
	if srv.draining {
		srv.mu.Unlock()
		return nil, errDraining
	}
	if len(srv.sessions) >= srv.opts.MaxSessions {
		srv.mu.Unlock()
		srv.tel.rejectedBusy.Inc()
		return nil, errTooManySessions
	}
	srv.nextID++
	id := fmt.Sprintf("s%08x", srv.nextID)
	srv.mu.Unlock()

	s, err := srv.buildSession(id, tenant, cfg, nil, nil)
	if err != nil {
		return nil, err
	}
	srv.mu.Lock()
	srv.sessions[id] = s
	srv.mu.Unlock()
	srv.tel.active.Add(1)
	srv.tel.opened.Inc()
	srv.tenantCounter(tenant, "sessions").Inc()
	return s, nil
}

// buildSession wires one session's goroutine, budget transaction and
// Writer — fresh (st == nil) or resumed from drained state over the given
// container prefix.
func (srv *Server) buildSession(id, tenant string, cfg mdz.Config, prefix []byte, st *mdz.WriterState) (*session, error) {
	ctx, cancel := context.WithCancel(context.Background())
	s := &session{
		id: id, tenant: tenant, srv: srv,
		ctx: ctx, cancel: cancel,
		ingest:   make(chan ingestBatch, srv.opts.QueueDepth),
		done:     make(chan struct{}),
		state:    stateActive,
		lastUsed: time.Now(),
	}
	s.containerTx = srv.mem.Begin()
	cfg.Context = ctx
	cfg.MaxDecodeBytes = srv.opts.MaxDecodeBytes
	s.cfg = cfg
	if len(prefix) > 0 {
		if err := s.containerTx.Reserve(int64(len(prefix))); err != nil {
			cancel()
			s.containerTx.Close()
			return nil, err
		}
		s.reserved += int64(len(prefix))
		s.buf.Write(prefix)
	}
	var w *mdz.Writer
	var err error
	if st != nil {
		w, err = mdz.ResumeWriter(sink{s}, cfg, st)
	} else {
		w, err = mdz.NewWriter(sink{s}, cfg)
	}
	if err != nil {
		cancel()
		s.containerTx.Close()
		return nil, err
	}
	s.w = w
	go s.pump()
	return s, nil
}

// lookup finds a live session by id.
func (srv *Server) lookup(id string) (*session, bool) {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	s, ok := srv.sessions[id]
	return s, ok
}

// remove destroys a session: drains its pump, releases every byte it held
// and drops it from the registry. why feeds the eviction/close telemetry.
func (srv *Server) remove(s *session, why string) {
	srv.mu.Lock()
	_, present := srv.sessions[s.id]
	delete(srv.sessions, s.id)
	srv.mu.Unlock()
	s.release()
	if present {
		srv.tel.active.Add(-1)
		if why == "evicted" {
			srv.tel.evicted.Inc()
			srv.logf("evicted idle session %s (tenant %s)", s.id, s.tenant)
		} else {
			srv.tel.closed.Inc()
		}
	}
}

// janitor evicts idle sessions on a timer until Close.
func (srv *Server) janitor() {
	defer close(srv.janitorDone)
	interval := srv.opts.IdleTimeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-srv.janitorStop:
			return
		case <-tick.C:
			srv.evictIdle()
		}
	}
}

func (srv *Server) evictIdle() {
	cutoff := time.Now().Add(-srv.opts.IdleTimeout)
	srv.mu.Lock()
	var idle []*session
	for _, s := range srv.sessions {
		s.mu.Lock()
		if s.lastUsed.Before(cutoff) {
			idle = append(idle, s)
		}
		s.mu.Unlock()
	}
	srv.mu.Unlock()
	for _, s := range idle {
		srv.remove(s, "evicted")
	}
}

// MemoryUsed reports the bytes currently reserved against the global
// budget (0 when unlimited — per-session accounting still applies).
func (srv *Server) MemoryUsed() int64 { return srv.mem.Used() }

// Close stops the janitor and destroys every session without persisting
// anything. Use Drain first for a graceful restart.
func (srv *Server) Close() {
	if srv.janitorStop != nil {
		close(srv.janitorStop)
		<-srv.janitorDone
	}
	srv.mu.Lock()
	list := make([]*session, 0, len(srv.sessions))
	for _, s := range srv.sessions {
		list = append(list, s)
	}
	srv.mu.Unlock()
	for _, s := range list {
		srv.remove(s, "closed")
	}
}
