package daemon

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	mdz "github.com/mdz/mdz"
	"github.com/mdz/mdz/internal/budget"
)

// Session lifecycle. A session is created active, moves to draining when
// its ingest side is being stopped (close, delete, eviction or server
// drain), and ends closed. A compression or budget failure makes the
// session sticky-failed (state still advances to closed via finish); the
// error is reported on every subsequent request.
const (
	stateActive   = "active"
	stateDraining = "draining"
	stateClosed   = "closed"
)

// ingestBatch is one queued unit of accepted-but-not-yet-compressed
// snapshots, together with its memory accounting: tx holds the global
// budget reservation for the raw bytes, size the amount charged against
// the per-session cap. The pump releases both once the batch is written.
type ingestBatch struct {
	frames []mdz.Frame
	tx     *budget.Tx
	size   int64
}

// session is one tenant-owned compression stream: a stateful Writer whose
// container accumulates in memory, fed by a bounded ingest queue consumed
// by a single pump goroutine (preserving frame order while HTTP handlers
// return early), all charged against per-session and global memory caps.
type session struct {
	id     string
	tenant string
	cfg    mdz.Config
	srv    *Server

	// ctx is cancelled on destroy/failure; it is also the compressor's
	// Config.Context, so cancellation aborts in-flight batch kernels.
	ctx    context.Context
	cancel context.CancelFunc

	ingest   chan ingestBatch
	done     chan struct{} // closed when the pump exits
	stopOnce sync.Once

	mu       sync.Mutex
	buf      bytes.Buffer // container bytes flushed so far
	w        *mdz.Writer  // guarded by the pump, not mu — see sink
	state    string
	err      error // sticky first failure
	frames   int64 // snapshots accepted (acknowledged to the client)
	rawBytes int64 // uncompressed size of the snapshots compressed so far
	reserved int64 // bytes charged against the per-session cap
	enq      sync.WaitGroup
	lastUsed time.Time

	// containerTx holds the global-budget reservation for the retained
	// container bytes; it lives until destroy.
	containerTx *budget.Tx
}

// errSessionClosed maps to 409: the client wrote to a closed stream.
var errSessionClosed = errors.New("session is closed")

// sink is the Writer's destination. It charges every flushed container
// byte against the session and global budgets before retaining it, so a
// session that outgrows its cap fails its own stream instead of the
// process. Writer methods are only ever called while mu is NOT held (the
// pump and the drain path own the Writer), so taking mu here cannot
// deadlock.
type sink struct{ s *session }

func (k sink) Write(p []byte) (int, error) {
	s := k.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if limit := s.srv.opts.MemPerSession; limit > 0 && s.reserved+int64(len(p)) > limit {
		return 0, fmt.Errorf("container needs %d bytes, session cap is %d: %w",
			s.reserved+int64(len(p)), limit, budget.ErrExceeded)
	}
	if err := s.containerTx.Reserve(int64(len(p))); err != nil {
		return 0, err
	}
	s.reserved += int64(len(p))
	s.buf.Write(p)
	return len(p), nil
}

// touch refreshes the idle-eviction clock.
func (s *session) touch() {
	s.mu.Lock()
	s.lastUsed = time.Now()
	s.mu.Unlock()
}

// enqueue hands a batch to the pump, blocking when the queue is full —
// that stall propagates up the HTTP request as backpressure. The batch is
// charged against both budgets first; on any refusal nothing is retained.
// A nil return means the snapshots are accepted: they will be compressed
// even if the session is closed immediately after.
func (s *session) enqueue(frames []mdz.Frame) error {
	size := int64(0)
	for _, f := range frames {
		size += wireFrameBytes(f.N())
	}
	s.mu.Lock()
	if s.state != stateActive {
		s.mu.Unlock()
		return errSessionClosed
	}
	if err := s.err; err != nil {
		s.mu.Unlock()
		return err
	}
	if limit := s.srv.opts.MemPerSession; limit > 0 && s.reserved+size > limit {
		s.mu.Unlock()
		return fmt.Errorf("ingest of %d bytes over the %d-byte session cap: %w", size, limit, budget.ErrExceeded)
	}
	tx := s.srv.mem.Begin()
	if err := tx.Reserve(size); err != nil {
		s.mu.Unlock()
		tx.Close()
		return err
	}
	s.reserved += size
	s.frames += int64(len(frames))
	s.lastUsed = time.Now()
	// Registering with enq under the same mu as the state check is what
	// lets stopIngest close the channel safely: once it flips the state
	// and enq.Wait returns, no send can be pending or arrive later.
	s.enq.Add(1)
	s.mu.Unlock()
	defer s.enq.Done()

	select {
	case s.ingest <- ingestBatch{frames: frames, tx: tx, size: size}:
		return nil
	case <-s.ctx.Done():
		tx.Close()
		s.mu.Lock()
		s.reserved -= size
		s.frames -= int64(len(frames))
		err := s.err
		s.mu.Unlock()
		if err == nil {
			err = context.Cause(s.ctx)
		}
		return err
	}
}

// pump is the session's single consumer: it preserves frame order, feeds
// the Writer, flushes the container after every batch so concurrent reads
// see current bytes, and releases each batch's memory charges. A write
// failure is sticky but the loop keeps draining so queued reservations are
// always returned.
func (s *session) pump() {
	defer close(s.done)
	for b := range s.ingest {
		var raw int64
		if s.failed() == nil {
			if err := s.writeBatch(b.frames); err != nil {
				s.fail(err)
			} else {
				for _, f := range b.frames {
					raw += int64(f.N()) * 3 * 8
				}
			}
		}
		b.tx.Close()
		s.mu.Lock()
		s.reserved -= b.size
		s.rawBytes += raw
		s.mu.Unlock()
	}
}

func (s *session) writeBatch(frames []mdz.Frame) error {
	for _, f := range frames {
		if err := s.w.WriteFrame(f); err != nil {
			return err
		}
	}
	return s.w.Flush()
}

// fail records the first error and cancels the session context, waking
// any handler blocked on the full queue.
func (s *session) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
	s.cancel()
	s.srv.tel.failures.Inc()
}

func (s *session) failed() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// stopIngest refuses new snapshots and waits until every accepted one has
// been compressed (or charged to the sticky error). Safe to call from any
// number of goroutines; all of them block until the pump has exited.
func (s *session) stopIngest() {
	s.stopOnce.Do(func() {
		s.mu.Lock()
		if s.state == stateActive {
			s.state = stateDraining
		}
		s.mu.Unlock()
		s.enq.Wait()
		close(s.ingest)
	})
	<-s.done
}

// finish drains the queue and closes the Writer, finalizing the container
// (trailer included). Idempotent; returns the session's sticky error if
// the stream failed at any point.
func (s *session) finish() error {
	s.stopIngest()
	s.mu.Lock()
	if s.state == stateClosed {
		err := s.err
		s.mu.Unlock()
		return err
	}
	w := s.w
	s.mu.Unlock()
	// Close writes through sink, which takes mu — so mu must not be held.
	cerr := w.Close()
	s.mu.Lock()
	s.state = stateClosed
	if s.err == nil && cerr != nil {
		s.err = cerr
	}
	err := s.err
	s.mu.Unlock()
	return err
}

// release returns every byte the session still holds to the global budget.
// Called once, by the server, when the session leaves the registry.
func (s *session) release() {
	s.cancel()
	s.stopIngest()
	// Best-effort Close so a pipelined Writer's io goroutine exits even
	// when the session is evicted or deleted without finish(). Idempotent;
	// the result is irrelevant because the container is discarded. Must
	// run without mu held: Close writes through sink, which takes mu.
	s.w.Close()
	s.mu.Lock()
	s.containerTx.Close()
	s.reserved = 0
	s.buf.Reset()
	s.state = stateClosed
	s.mu.Unlock()
}

// snapshot returns the container bytes flushed so far and whether the
// stream is final. The slice aliases the buffer's array but stays valid
// and immutable: the buffer is append-only, and growth reallocates rather
// than moving bytes under a reader.
func (s *session) snapshot() (data []byte, closed bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.Bytes(), s.state == stateClosed, s.err
}

// info is the session document served by the listing and detail endpoints.
type info struct {
	ID             string  `json:"id"`
	Tenant         string  `json:"tenant"`
	State          string  `json:"state"`
	Frames         int64   `json:"frames"`
	ContainerBytes int     `json:"container_bytes"`
	RawBytes       int64   `json:"raw_bytes"`
	CompBytes      int64   `json:"compressed_bytes"`
	Error          string  `json:"error,omitempty"`
	IdleSeconds    float64 `json:"idle_seconds"`
}

func (s *session) describe() info {
	s.mu.Lock()
	defer s.mu.Unlock()
	in := info{
		ID: s.id, Tenant: s.tenant, State: s.state, Frames: s.frames,
		ContainerBytes: s.buf.Len(),
		RawBytes:       s.rawBytes,
		CompBytes:      int64(s.buf.Len()),
		IdleSeconds:    time.Since(s.lastUsed).Seconds(),
	}
	if s.err != nil {
		in.Error = s.err.Error()
	}
	return in
}
