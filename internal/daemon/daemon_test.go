package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	mdz "github.com/mdz/mdz"
)

func makeTraj(m, n int, seed int64) []mdz.Frame {
	rng := rand.New(rand.NewSource(seed))
	frames := make([]mdz.Frame, m)
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i], y[i], z[i] = rng.Float64()*100, rng.Float64()*100, rng.Float64()*100
	}
	for t := 0; t < m; t++ {
		f := mdz.Frame{X: make([]float64, n), Y: make([]float64, n), Z: make([]float64, n)}
		for i := 0; i < n; i++ {
			x[i] += rng.NormFloat64() * 0.05
			y[i] += rng.NormFloat64() * 0.05
			z[i] += rng.NormFloat64() * 0.05
			f.X[i], f.Y[i], f.Z[i] = x[i], y[i], z[i]
		}
		frames[t] = f
	}
	return frames
}

func encodeWireFrames(t *testing.T, frames []mdz.Frame) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, f := range frames {
		if err := writeWireFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func decodeWireFrames(t *testing.T, data []byte) []mdz.Frame {
	t.Helper()
	r := bytes.NewReader(data)
	var out []mdz.Frame
	for {
		f, err := readWireFrame(r)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("wire decode: %v", err)
		}
		out = append(out, f)
	}
}

// testClient wraps the API with fatal-on-unexpected-status helpers.
type testClient struct {
	t    *testing.T
	base string
	c    *http.Client
}

func newTestEnv(t *testing.T, opts Options) (*Server, *testClient) {
	t.Helper()
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, &testClient{t: t, base: ts.URL, c: ts.Client()}
}

func (tc *testClient) do(method, path string, body []byte, wantStatus int) []byte {
	tc.t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, tc.base+path, rd)
	if err != nil {
		tc.t.Fatal(err)
	}
	resp, err := tc.c.Do(req)
	if err != nil {
		tc.t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		tc.t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		tc.t.Fatalf("%s %s: status %d (want %d): %s", method, path, resp.StatusCode, wantStatus, out)
	}
	return out
}

func (tc *testClient) create(cfg string) string {
	tc.t.Helper()
	out := tc.do(http.MethodPost, "/v1/sessions", []byte(cfg), http.StatusCreated)
	var in info
	if err := json.Unmarshal(out, &in); err != nil {
		tc.t.Fatalf("create response: %v\n%s", err, out)
	}
	return in.ID
}

func (tc *testClient) sessionInfo(id string) info {
	tc.t.Helper()
	out := tc.do(http.MethodGet, "/v1/sessions/"+id, nil, http.StatusOK)
	var in info
	if err := json.Unmarshal(out, &in); err != nil {
		tc.t.Fatal(err)
	}
	return in
}

// runSession pushes a trajectory through one full session lifecycle and
// returns the final container.
func (tc *testClient) runSession(cfg string, traj []mdz.Frame) []byte {
	tc.t.Helper()
	id := tc.create(cfg)
	tc.do(http.MethodPost, "/v1/sessions/"+id+"/frames", encodeWireFrames(tc.t, traj), http.StatusAccepted)
	tc.do(http.MethodPost, "/v1/sessions/"+id+"/close", nil, http.StatusOK)
	container := tc.do(http.MethodGet, "/v1/sessions/"+id+"/stream", nil, http.StatusOK)
	tc.do(http.MethodDelete, "/v1/sessions/"+id, nil, http.StatusNoContent)
	return container
}

// libraryContainer runs the same trajectory through the library directly.
func libraryContainer(t *testing.T, cfg mdz.Config, traj []mdz.Frame) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := mdz.NewWriter(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range traj {
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func framesEqual(a, b []mdz.Frame) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		for j := range a[i].X {
			if math.Float64bits(a[i].X[j]) != math.Float64bits(b[i].X[j]) ||
				math.Float64bits(a[i].Y[j]) != math.Float64bits(b[i].Y[j]) ||
				math.Float64bits(a[i].Z[j]) != math.Float64bits(b[i].Z[j]) {
				return false
			}
		}
	}
	return true
}

// TestDaemonE2EConcurrentSessions is the headline acceptance test: 64
// concurrent sessions (mixed v2/v3), every returned container byte-
// identical to the library API on the same input.
func TestDaemonE2EConcurrentSessions(t *testing.T) {
	_, tc := newTestEnv(t, Options{})
	const N = 64
	var wg sync.WaitGroup
	errs := make(chan error, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			format := 2 + i%2
			traj := makeTraj(24, 120, int64(1000+i))
			cfg := fmt.Sprintf(`{"tenant":"t%d","error_bound":1e-3,"format_version":%d,"checkpoint_interval":2,"buffer_size":5}`, i%4, format)
			got := tc.runSession(cfg, traj)
			want := libraryContainer(t, mdz.Config{
				ErrorBound: 1e-3, FormatVersion: format, CheckpointInterval: 2, BufferSize: 5,
			}, traj)
			if !bytes.Equal(got, want) {
				errs <- fmt.Errorf("session %d: container diverges from library output (%d vs %d bytes)", i, len(got), len(want))
				return
			}
			dec, err := mdz.NewReader(bytes.NewReader(got)).ReadAll()
			if err != nil {
				errs <- fmt.Errorf("session %d: %w", i, err)
				return
			}
			ref, err := mdz.NewReader(bytes.NewReader(want)).ReadAll()
			if err != nil {
				errs <- fmt.Errorf("session %d: %w", i, err)
				return
			}
			if !framesEqual(dec, ref) {
				errs <- fmt.Errorf("session %d: decoded frames diverge", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestDaemonDrainRestart covers graceful restart: frames accepted before a
// drain must all survive into the next process, which resumes the stream
// and finishes a container byte-identical to an uninterrupted run.
func TestDaemonDrainRestart(t *testing.T) {
	state := filepath.Join(t.TempDir(), "mdzd.state")
	traj := makeTraj(20, 100, 42)
	cfg := `{"tenant":"mig","error_bound":1e-3,"checkpoint_interval":2,"buffer_size":3}`
	libCfg := mdz.Config{ErrorBound: 1e-3, CheckpointInterval: 2, BufferSize: 3}

	srv1, tc1 := newTestEnv(t, Options{StatePath: state})
	id := tc1.create(cfg)
	// First half accepted (202 = accepted: the daemon owes us these
	// frames across any graceful restart).
	tc1.do(http.MethodPost, "/v1/sessions/"+id+"/frames", encodeWireFrames(t, traj[:11]), http.StatusAccepted)
	if err := srv1.Drain(); err != nil {
		t.Fatal(err)
	}
	// Draining servers refuse new sessions.
	tc1.do(http.MethodPost, "/v1/sessions", []byte(cfg), http.StatusServiceUnavailable)
	srv1.Close()

	// "Restart": a new server restores from the state file.
	srv2, tc2 := newTestEnv(t, Options{StatePath: state})
	in := tc2.sessionInfo(id)
	if in.Frames != 11 {
		t.Fatalf("restored session reports %d accepted frames, want 11", in.Frames)
	}
	tc2.do(http.MethodPost, "/v1/sessions/"+id+"/frames", encodeWireFrames(t, traj[11:]), http.StatusAccepted)
	tc2.do(http.MethodPost, "/v1/sessions/"+id+"/close", nil, http.StatusOK)
	got := tc2.do(http.MethodGet, "/v1/sessions/"+id+"/stream", nil, http.StatusOK)

	want := libraryContainer(t, libCfg, traj)
	if !bytes.Equal(got, want) {
		t.Fatalf("post-restart container diverges from an uninterrupted run (%d vs %d bytes)", len(got), len(want))
	}
	// The state file was consumed: a third boot starts empty.
	srv2.Close()
	srv3, tc3 := newTestEnv(t, Options{StatePath: state})
	tc3.do(http.MethodGet, "/v1/sessions/"+id, nil, http.StatusNotFound)
	srv3.Close()
}

// TestDaemonDrainRestartClosedSession: a session already closed at drain
// time keeps its finished container across the restart.
func TestDaemonDrainRestartClosedSession(t *testing.T) {
	state := filepath.Join(t.TempDir(), "mdzd.state")
	traj := makeTraj(8, 60, 7)
	srv1, tc1 := newTestEnv(t, Options{StatePath: state})
	id := tc1.create(`{"error_bound":1e-3}`)
	tc1.do(http.MethodPost, "/v1/sessions/"+id+"/frames", encodeWireFrames(t, traj), http.StatusAccepted)
	tc1.do(http.MethodPost, "/v1/sessions/"+id+"/close", nil, http.StatusOK)
	want := tc1.do(http.MethodGet, "/v1/sessions/"+id+"/stream", nil, http.StatusOK)
	if err := srv1.Drain(); err != nil {
		t.Fatal(err)
	}
	srv1.Close()

	srv2, tc2 := newTestEnv(t, Options{StatePath: state})
	defer srv2.Close()
	got := tc2.do(http.MethodGet, "/v1/sessions/"+id+"/stream", nil, http.StatusOK)
	if !bytes.Equal(got, want) {
		t.Fatal("closed session's container changed across restart")
	}
	// Still closed: more frames are refused.
	tc2.do(http.MethodPost, "/v1/sessions/"+id+"/frames", encodeWireFrames(t, traj[:1]), http.StatusConflict)
}

// TestDaemonRangedRead reads decoded frame ranges out of a live (unclosed)
// session and the stream endpoint with an HTTP Range header.
func TestDaemonRangedRead(t *testing.T) {
	_, tc := newTestEnv(t, Options{})
	traj := makeTraj(15, 80, 3)
	id := tc.create(`{"error_bound":1e-3,"buffer_size":3}`)
	tc.do(http.MethodPost, "/v1/sessions/"+id+"/frames", encodeWireFrames(t, traj), http.StatusAccepted)

	// Live session: 15 frames in blocks of 3 are all flushed; the stream
	// has no trailer yet, which a ranged read must tolerate.
	all := decodeWireFrames(t, tc.do(http.MethodGet, "/v1/sessions/"+id+"/frames", nil, http.StatusOK))
	if len(all) != 15 {
		t.Fatalf("live read returned %d frames, want 15", len(all))
	}
	mid := decodeWireFrames(t, tc.do(http.MethodGet, "/v1/sessions/"+id+"/frames?from=6&count=4", nil, http.StatusOK))
	if len(mid) != 4 || !framesEqual(mid, all[6:10]) {
		t.Fatalf("ranged read [6,10) returned %d frames or wrong content", len(mid))
	}

	tc.do(http.MethodPost, "/v1/sessions/"+id+"/close", nil, http.StatusOK)
	full := tc.do(http.MethodGet, "/v1/sessions/"+id+"/stream", nil, http.StatusOK)

	// Byte-range request against the container.
	req, _ := http.NewRequest(http.MethodGet, tc.base+"/v1/sessions/"+id+"/stream", nil)
	req.Header.Set("Range", "bytes=0-3")
	resp, err := tc.c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	part, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent || !bytes.Equal(part, full[:4]) {
		t.Fatalf("range request: status %d, %d bytes", resp.StatusCode, len(part))
	}
	if string(part) != "MDZ2" {
		t.Fatalf("container magic = %q", part)
	}
}

// TestDaemonDecodeEndpoint covers the stateless decoder, strict and
// salvage modes, against clean and corrupted containers.
func TestDaemonDecodeEndpoint(t *testing.T) {
	_, tc := newTestEnv(t, Options{})
	traj := makeTraj(12, 90, 11)
	container := libraryContainer(t, mdz.Config{ErrorBound: 1e-3, BufferSize: 3, CheckpointInterval: 2}, traj)

	dec := decodeWireFrames(t, tc.do(http.MethodPost, "/v1/decode", container, http.StatusOK))
	want, err := mdz.NewReader(bytes.NewReader(container)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !framesEqual(dec, want) {
		t.Fatal("decode endpoint diverges from the library reader")
	}

	sub := decodeWireFrames(t, tc.do(http.MethodPost, "/v1/decode?from=3&count=2", container, http.StatusOK))
	if len(sub) != 2 || !framesEqual(sub, want[3:5]) {
		t.Fatalf("ranged decode returned %d frames or wrong content", len(sub))
	}

	// Corrupt a byte mid-container: strict mode fails, salvage succeeds
	// and reports the damage in headers.
	corrupt := append([]byte(nil), container...)
	corrupt[len(corrupt)/2] ^= 0xFF
	tc.do(http.MethodPost, "/v1/decode", corrupt, http.StatusInternalServerError)

	req, _ := http.NewRequest(http.MethodPost, tc.base+"/v1/decode?salvage=1", bytes.NewReader(corrupt))
	resp, err := tc.c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("salvage decode: status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Mdz-Corrupt-Frames") == "0" {
		t.Error("salvage headers claim zero corrupt frames on a corrupted container")
	}
	if salvaged := decodeWireFrames(t, body); len(salvaged) == 0 {
		t.Error("salvage decode recovered nothing")
	}
}

// TestDaemonEviction: idle sessions are evicted and their memory returns
// to the global budget.
func TestDaemonEviction(t *testing.T) {
	srv, tc := newTestEnv(t, Options{
		IdleTimeout: 80 * time.Millisecond,
		MemGlobal:   16 << 20,
	})
	traj := makeTraj(6, 50, 9)
	id := tc.create(`{"error_bound":1e-3}`)
	tc.do(http.MethodPost, "/v1/sessions/"+id+"/frames", encodeWireFrames(t, traj), http.StatusAccepted)
	tc.do(http.MethodPost, "/v1/sessions/"+id+"/close", nil, http.StatusOK)
	if srv.MemoryUsed() == 0 {
		t.Fatal("closed session retains no accounted memory")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := srv.lookup(id); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session not evicted after its idle timeout")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if used := srv.MemoryUsed(); used != 0 {
		t.Fatalf("eviction leaked %d budgeted bytes", used)
	}
	if srv.reg.Counter("daemon.sessions.evicted").Value() == 0 {
		t.Error("eviction not counted")
	}
	tc.do(http.MethodGet, "/v1/sessions/"+id, nil, http.StatusNotFound)
}

// TestDaemonBudgets: the global memory cap rejects with 507 and the
// session cap fails the offending session without touching others; the
// session-count cap rejects with 429.
func TestDaemonBudgets(t *testing.T) {
	t.Run("global", func(t *testing.T) {
		_, tc := newTestEnv(t, Options{MemGlobal: 64 << 10})
		id := tc.create(`{"error_bound":1e-3}`)
		big := makeTraj(40, 500, 5) // ~480 KB wire bytes, over the 64 KB budget
		out := tc.do(http.MethodPost, "/v1/sessions/"+id+"/frames", encodeWireFrames(t, big), http.StatusInsufficientStorage)
		if !strings.Contains(string(out), "budget") {
			t.Errorf("507 body does not mention the budget: %s", out)
		}
	})
	t.Run("per-session", func(t *testing.T) {
		_, tc := newTestEnv(t, Options{MemPerSession: 32 << 10})
		idSmall := tc.create(`{"error_bound":1e-3}`)
		idBig := tc.create(`{"error_bound":1e-3}`)
		big := makeTraj(20, 400, 6)
		tc.do(http.MethodPost, "/v1/sessions/"+idBig+"/frames", encodeWireFrames(t, big), http.StatusInsufficientStorage)
		// The other session is unaffected.
		small := makeTraj(4, 40, 6)
		tc.do(http.MethodPost, "/v1/sessions/"+idSmall+"/frames", encodeWireFrames(t, small), http.StatusAccepted)
		tc.do(http.MethodPost, "/v1/sessions/"+idSmall+"/close", nil, http.StatusOK)
	})
	t.Run("max-sessions", func(t *testing.T) {
		_, tc := newTestEnv(t, Options{MaxSessions: 2})
		tc.create(`{"error_bound":1e-3}`)
		tc.create(`{"error_bound":1e-3}`)
		tc.do(http.MethodPost, "/v1/sessions", []byte(`{"error_bound":1e-3}`), http.StatusTooManyRequests)
	})
}

// TestDaemonDeleteActive: deleting a session mid-stream releases all of
// its memory even with queued work, and later requests see 404.
func TestDaemonDeleteActive(t *testing.T) {
	srv, tc := newTestEnv(t, Options{MemGlobal: 16 << 20})
	traj := makeTraj(12, 80, 13)
	id := tc.create(`{"error_bound":1e-3}`)
	tc.do(http.MethodPost, "/v1/sessions/"+id+"/frames", encodeWireFrames(t, traj), http.StatusAccepted)
	tc.do(http.MethodDelete, "/v1/sessions/"+id, nil, http.StatusNoContent)
	if used := srv.MemoryUsed(); used != 0 {
		t.Fatalf("delete leaked %d budgeted bytes", used)
	}
	tc.do(http.MethodGet, "/v1/sessions/"+id, nil, http.StatusNotFound)
	tc.do(http.MethodPost, "/v1/sessions/"+id+"/close", nil, http.StatusNotFound)
}

// TestDaemonBadRequests: malformed bodies and parameters map to 400.
func TestDaemonBadRequests(t *testing.T) {
	_, tc := newTestEnv(t, Options{})
	tc.do(http.MethodPost, "/v1/sessions", []byte(`{`), http.StatusBadRequest)
	tc.do(http.MethodPost, "/v1/sessions", []byte(`{"error_bound":1e-3,"method":"NOPE"}`), http.StatusBadRequest)
	tc.do(http.MethodPost, "/v1/sessions", []byte(`{"error_bound":-1}`), http.StatusInternalServerError)

	id := tc.create(`{"error_bound":1e-3}`)
	// Truncated frame record.
	tc.do(http.MethodPost, "/v1/sessions/"+id+"/frames", []byte{5, 0, 0, 0, 1, 2}, http.StatusBadRequest)
	tc.do(http.MethodGet, "/v1/sessions/"+id+"/frames?from=-2", nil, http.StatusBadRequest)
	tc.do(http.MethodGet, "/v1/sessions/nope", nil, http.StatusNotFound)
}

// TestDaemonSessionKnobs: the parallelism knobs round-trip through the
// session config — accepted values produce a container byte-identical to
// the library run with the same Config, and over-cap or negative values
// are rejected as 400s before a session exists.
func TestDaemonSessionKnobs(t *testing.T) {
	srv, tc := newTestEnv(t, Options{MemGlobal: 32 << 20})
	traj := makeTraj(24, 96, 23)
	got := tc.runSession(`{"error_bound":1e-3,"buffer_size":4,"checkpoint_interval":2,`+
		`"workers":2,"shards":4,"adp_sample_shards":1,"pipeline_depth":2}`, traj)
	want := libraryContainer(t, mdz.Config{
		ErrorBound: 1e-3, BufferSize: 4, CheckpointInterval: 2,
		Workers: 2, Shards: 4, ADPSampleShards: 1, PipelineDepth: 2,
	}, traj)
	if !bytes.Equal(got, want) {
		t.Fatalf("session container (%d bytes) differs from library container (%d bytes)", len(got), len(want))
	}
	for _, body := range []string{
		`{"error_bound":1e-3,"workers":65}`,
		`{"error_bound":1e-3,"workers":-1}`,
		`{"error_bound":1e-3,"pipeline_depth":9}`,
		`{"error_bound":1e-3,"pipeline_depth":-1}`,
		`{"error_bound":1e-3,"shards":-1}`,
		`{"error_bound":1e-3,"shards":1000000}`,
		`{"error_bound":1e-3,"adp_sample_shards":1000000}`,
	} {
		tc.do(http.MethodPost, "/v1/sessions", []byte(body), http.StatusBadRequest)
	}
	if used := srv.MemoryUsed(); used != 0 {
		t.Fatalf("knob session leaked %d budgeted bytes", used)
	}
}

// TestDaemonPipelinedDeleteActive: deleting a session whose Writer runs a
// pipelined io goroutine must not leak the goroutine or budgeted bytes —
// release closes the Writer best-effort.
func TestDaemonPipelinedDeleteActive(t *testing.T) {
	srv, tc := newTestEnv(t, Options{MemGlobal: 16 << 20})
	traj := makeTraj(12, 80, 13)
	id := tc.create(`{"error_bound":1e-3,"checkpoint_interval":2,"pipeline_depth":4}`)
	tc.do(http.MethodPost, "/v1/sessions/"+id+"/frames", encodeWireFrames(t, traj), http.StatusAccepted)
	tc.do(http.MethodDelete, "/v1/sessions/"+id, nil, http.StatusNoContent)
	if used := srv.MemoryUsed(); used != 0 {
		t.Fatalf("delete leaked %d budgeted bytes", used)
	}
}

// TestDaemonTenantMetrics: per-tenant counters accumulate under sanitized
// names and hostile tenant strings cannot mint unbounded metric names.
func TestDaemonTenantMetrics(t *testing.T) {
	srv, tc := newTestEnv(t, Options{})
	traj := makeTraj(5, 40, 17)
	tc.runSession(`{"tenant":"Alice/Prod","error_bound":1e-3}`, traj)
	if v := srv.reg.Counter("daemon.tenant.alice_prod.frames_in").Value(); v != 5 {
		t.Errorf("tenant frames_in = %d, want 5", v)
	}
	if v := srv.reg.Counter("daemon.frames.in").Value(); v != 5 {
		t.Errorf("daemon frames_in = %d, want 5", v)
	}
	if got := sanitizeTenant(strings.Repeat("x", 500)); len(got) > 48 {
		t.Errorf("sanitized tenant length %d", len(got))
	}
	if got := sanitizeTenant(""); got != "default" {
		t.Errorf("empty tenant = %q", got)
	}
}

// TestDaemonSeekIndexedRange: a seek_index session's drained container
// carries a seek table, and ranged reads of it — through the session
// endpoint and the stateless /v1/decode — return the same frames as the
// serial path, now via the index fast path.
func TestDaemonSeekIndexedRange(t *testing.T) {
	_, tc := newTestEnv(t, Options{})
	traj := makeTraj(20, 60, 9)
	id := tc.create(`{"error_bound":1e-3,"buffer_size":2,"checkpoint_interval":3,"seek_index":true}`)
	tc.do(http.MethodPost, "/v1/sessions/"+id+"/frames", encodeWireFrames(t, traj), http.StatusAccepted)
	tc.do(http.MethodPost, "/v1/sessions/"+id+"/close", nil, http.StatusOK)

	all := decodeWireFrames(t, tc.do(http.MethodGet, "/v1/sessions/"+id+"/frames", nil, http.StatusOK))
	if len(all) != 20 {
		t.Fatalf("full read returned %d frames, want 20", len(all))
	}
	window := decodeWireFrames(t, tc.do(http.MethodGet, "/v1/sessions/"+id+"/frames?from=13&count=5", nil, http.StatusOK))
	if len(window) != 5 || !framesEqual(window, all[13:18]) {
		t.Fatalf("indexed ranged read [13,18) returned %d frames or wrong content", len(window))
	}

	// The drained container itself must carry the index frame: a strict
	// in-process Seek against it must succeed without a scan rebuild.
	container := tc.do(http.MethodGet, "/v1/sessions/"+id+"/stream", nil, http.StatusOK)
	stream := container // container bytes ARE the stream for the daemon
	rd := mdz.NewReader(bytes.NewReader(stream))
	got, err := rd.ReadRange(13, 18)
	if err != nil {
		t.Fatalf("ReadRange over drained container: %v", err)
	}
	if !framesEqual(got, all[13:18]) {
		t.Fatal("ReadRange frames differ from endpoint frames")
	}

	// Stateless decode endpoint, same window.
	dec := decodeWireFrames(t, tc.do(http.MethodPost, "/v1/decode?from=13&count=5", stream, http.StatusOK))
	if len(dec) != 5 || !framesEqual(dec, all[13:18]) {
		t.Fatalf("stateless ranged decode returned %d frames or wrong content", len(dec))
	}
	// Past-the-end ranges yield an empty, successful response.
	empty := decodeWireFrames(t, tc.do(http.MethodPost, "/v1/decode?from=100&count=5", stream, http.StatusOK))
	if len(empty) != 0 {
		t.Fatalf("past-end ranged decode returned %d frames, want 0", len(empty))
	}
}
