package metrics

// MSD computes the mean squared displacement of particles between frame 0
// and each later frame, given per-axis position series (snapshots ×
// particles) and an optional periodic box edge (0 disables minimum-image
// unwrapping). MSD(t) growing linearly indicates diffusive (liquid)
// motion; a saturating MSD indicates bounded (solid) vibration — the
// regime split behind the paper's takeaways 2-4.
//
// Displacements are accumulated frame-to-frame with minimum image so
// particles that wrap across periodic boundaries are tracked correctly.
func MSD(x, y, z [][]float64, box float64) ([]float64, error) {
	m := len(x)
	if m == 0 || len(y) != m || len(z) != m {
		return nil, ErrLength
	}
	n := len(x[0])
	// Cumulative unwrapped displacement per particle.
	dx := make([]float64, n)
	dy := make([]float64, n)
	dz := make([]float64, n)
	out := make([]float64, m)
	for t := 1; t < m; t++ {
		if len(x[t]) != n || len(y[t]) != n || len(z[t]) != n {
			return nil, ErrLength
		}
		var sum float64
		for i := 0; i < n; i++ {
			sx := x[t][i] - x[t-1][i]
			sy := y[t][i] - y[t-1][i]
			sz := z[t][i] - z[t-1][i]
			if box > 0 {
				sx = mi(sx, box)
				sy = mi(sy, box)
				sz = mi(sz, box)
			}
			dx[i] += sx
			dy[i] += sy
			dz[i] += sz
			sum += dx[i]*dx[i] + dy[i]*dy[i] + dz[i]*dz[i]
		}
		out[t] = sum / float64(n)
	}
	return out, nil
}

// DiffusionRegime classifies an MSD curve: "diffusive" when the second
// half keeps growing at a comparable rate to the first half, "bounded"
// when it has flattened (growth ratio below 0.25), "static" when total
// displacement is negligible relative to scale.
func DiffusionRegime(msd []float64, scale float64) string {
	m := len(msd)
	if m < 4 {
		return "unknown"
	}
	final := msd[m-1]
	if scale > 0 && final < 1e-6*scale*scale {
		return "static"
	}
	half := msd[m/2]
	firstRate := half / float64(m/2)
	lastRate := (final - half) / float64(m-1-m/2)
	if firstRate <= 0 {
		return "bounded"
	}
	if lastRate/firstRate < 0.25 {
		return "bounded"
	}
	return "diffusive"
}

// VACF computes the velocity autocorrelation function from consecutive
// frame displacements (a finite-difference velocity proxy):
// C(τ) = ⟨v(t)·v(t+τ)⟩ / ⟨v·v⟩, averaged over particles and time origins.
func VACF(x, y, z [][]float64, box float64, maxLag int) ([]float64, error) {
	m := len(x)
	if m < 2 || len(y) != m || len(z) != m {
		return nil, ErrLength
	}
	n := len(x[0])
	steps := m - 1
	if maxLag >= steps {
		maxLag = steps - 1
	}
	if maxLag < 0 {
		maxLag = 0
	}
	// Finite-difference velocities.
	vx := make([][]float64, steps)
	vy := make([][]float64, steps)
	vz := make([][]float64, steps)
	for t := 0; t < steps; t++ {
		vx[t] = make([]float64, n)
		vy[t] = make([]float64, n)
		vz[t] = make([]float64, n)
		for i := 0; i < n; i++ {
			sx := x[t+1][i] - x[t][i]
			sy := y[t+1][i] - y[t][i]
			sz := z[t+1][i] - z[t][i]
			if box > 0 {
				sx, sy, sz = mi(sx, box), mi(sy, box), mi(sz, box)
			}
			vx[t][i], vy[t][i], vz[t][i] = sx, sy, sz
		}
	}
	out := make([]float64, maxLag+1)
	for lag := 0; lag <= maxLag; lag++ {
		var sum float64
		cnt := 0
		for t := 0; t+lag < steps; t++ {
			for i := 0; i < n; i++ {
				sum += vx[t][i]*vx[t+lag][i] + vy[t][i]*vy[t+lag][i] + vz[t][i]*vz[t+lag][i]
			}
			cnt += n
		}
		out[lag] = sum / float64(cnt)
	}
	if out[0] > 0 {
		inv := 1 / out[0]
		for lag := range out {
			out[lag] *= inv
		}
	}
	return out, nil
}
