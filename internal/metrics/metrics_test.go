package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func TestCompressionRatioAndBitRate(t *testing.T) {
	if got := CompressionRatio(1000, 100); got != 10 {
		t.Errorf("CR = %v", got)
	}
	if !math.IsInf(CompressionRatio(10, 0), 1) {
		t.Error("CR with zero compressed size")
	}
	// 100 values at 2 bytes each = 16 bits per value.
	if got := BitRate(200, 100); got != 16 {
		t.Errorf("BitRate = %v", got)
	}
	if got := BitRate(200, 0); got != 0 {
		t.Errorf("BitRate with 0 values = %v", got)
	}
}

func TestCompare(t *testing.T) {
	orig := []float64{0, 1, 2, 3, 4}
	recon := []float64{0, 1.1, 2, 3, 3.9}
	st, err := Compare(orig, recon)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.MaxError-0.1) > 1e-12 {
		t.Errorf("MaxError = %v", st.MaxError)
	}
	wantMSE := (0.01 + 0.01) / 5
	if math.Abs(st.MSE-wantMSE) > 1e-12 {
		t.Errorf("MSE = %v, want %v", st.MSE, wantMSE)
	}
	if st.Range != 4 {
		t.Errorf("Range = %v", st.Range)
	}
	wantPSNR := 20*math.Log10(4) - 10*math.Log10(wantMSE)
	if math.Abs(st.PSNR-wantPSNR) > 1e-9 {
		t.Errorf("PSNR = %v, want %v", st.PSNR, wantPSNR)
	}
	if math.Abs(st.NRMSE-math.Sqrt(wantMSE)/4) > 1e-12 {
		t.Errorf("NRMSE = %v", st.NRMSE)
	}
}

func TestComparePerfect(t *testing.T) {
	v := []float64{1, 2, 3}
	st, err := Compare(v, v)
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxError != 0 || !math.IsInf(st.PSNR, 1) {
		t.Errorf("perfect recon: %+v", st)
	}
}

func TestCompareErrors(t *testing.T) {
	if _, err := Compare([]float64{1}, []float64{1, 2}); err != ErrLength {
		t.Error("length mismatch not detected")
	}
	if _, err := CompareFrames([][]float64{{1}}, [][]float64{{1, 2}}); err != ErrLength {
		t.Error("frame length mismatch not detected")
	}
	st, err := Compare(nil, nil)
	if err != nil || st.N != 0 {
		t.Error("empty compare")
	}
}

func TestCompareFrames(t *testing.T) {
	o := [][]float64{{0, 1}, {2, 3}}
	r := [][]float64{{0, 1}, {2, 3.5}}
	st, err := CompareFrames(o, r)
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxError != 0.5 || st.N != 4 {
		t.Errorf("%+v", st)
	}
}

func TestSimilarity(t *testing.T) {
	s0 := []float64{1, 2, 3, 4}
	s := []float64{1.001, 2.5, 3.0001, 4}
	sim, err := Similarity(s0, s, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if sim != 0.75 {
		t.Errorf("similarity = %v, want 0.75", sim)
	}
	// Identical snapshots are 100% similar at any tau.
	sim, _ = Similarity(s0, s0, 1e-9)
	if sim != 1 {
		t.Errorf("self similarity = %v", sim)
	}
	// Zero handling.
	sim, _ = Similarity([]float64{0, 0}, []float64{0, 1}, 0.5)
	if sim != 0.5 {
		t.Errorf("zero-denominator similarity = %v", sim)
	}
	if _, err := Similarity([]float64{1}, []float64{1, 2}, 0.1); err != ErrLength {
		t.Error("length mismatch not detected")
	}
}

func TestHistogram(t *testing.T) {
	centers, counts := Histogram([]float64{0, 0.1, 0.9, 1.0}, 2)
	if len(centers) != 2 || counts[0] != 2 || counts[1] != 2 {
		t.Errorf("hist: %v %v", centers, counts)
	}
	// Constant data goes to one bin.
	_, counts = Histogram([]float64{5, 5, 5}, 4)
	if counts[0] != 3 {
		t.Errorf("constant hist: %v", counts)
	}
	if c, _ := Histogram(nil, 4); c != nil {
		t.Error("empty input")
	}
}

// TestHistogramNonFinite is the regression test for non-finite poisoning:
// NaN/±Inf contamination must not shift the finite range, leak into bin
// counts, or produce non-finite centers.
func TestHistogramNonFinite(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	centers, counts := Histogram([]float64{0, nan, 0.1, inf, 0.9, -inf, 1.0, nan}, 2)
	if len(centers) != 2 || len(counts) != 2 {
		t.Fatalf("contaminated hist shape: %v %v", centers, counts)
	}
	if counts[0] != 2 || counts[1] != 2 {
		t.Errorf("contaminated counts = %v, want [2 2]", counts)
	}
	for _, c := range centers {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			t.Errorf("non-finite bin center %v in %v", c, centers)
		}
	}
	// Constant finite data among garbage still collapses to one bin of the
	// finite count only.
	_, counts = Histogram([]float64{nan, 5, 5, inf, 5}, 4)
	if counts[0] != 3 {
		t.Errorf("constant-with-garbage counts = %v, want counts[0]=3", counts)
	}
	// Nothing finite at all: no histogram.
	if c, n := Histogram([]float64{nan, inf, -inf}, 4); c != nil || n != nil {
		t.Errorf("all-non-finite input must yield nil,nil, got %v %v", c, n)
	}
}

func TestPeakCount(t *testing.T) {
	// Three separated peaks.
	counts := []int{0, 10, 0, 0, 9, 0, 0, 12, 0}
	if got := PeakCount(counts, 0.5); got != 3 {
		t.Errorf("PeakCount = %d, want 3", got)
	}
	// Uniform-ish distribution: one broad peak.
	if got := PeakCount([]int{5, 6, 5, 6, 5, 6}, 0.5); got != 1 {
		t.Errorf("uniform PeakCount = %d, want 1", got)
	}
	if got := PeakCount([]int{0, 0}, 0.5); got != 0 {
		t.Errorf("empty PeakCount = %d", got)
	}
}

func TestRDFIdealGas(t *testing.T) {
	// Uniform random particles: g(r) ≈ 1 everywhere.
	rng := rand.New(rand.NewSource(1))
	n := 4000
	box := 20.0
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = rng.Float64() * box
		y[i] = rng.Float64() * box
		z[i] = rng.Float64() * box
	}
	r, g, err := RDF(x, y, z, box, 5, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 25 {
		t.Fatalf("bins = %d", len(r))
	}
	// Skip the first bins (few pairs, noisy).
	for b := 5; b < 25; b++ {
		if math.Abs(g[b]-1) > 0.2 {
			t.Errorf("bin %d (r=%.2f): g=%v, want ≈1", b, r[b], g[b])
		}
	}
}

func TestRDFCrystalPeaks(t *testing.T) {
	// Simple cubic lattice: strong peak at the lattice constant, zero below.
	a := 2.0
	nSide := 8
	box := float64(nSide) * a
	var x, y, z []float64
	for i := 0; i < nSide; i++ {
		for j := 0; j < nSide; j++ {
			for k := 0; k < nSide; k++ {
				x = append(x, float64(i)*a)
				y = append(y, float64(j)*a)
				z = append(z, float64(k)*a)
			}
		}
	}
	r, g, err := RDF(x, y, z, box, 3.5, 35)
	if err != nil {
		t.Fatal(err)
	}
	// Strong first-neighbor peak at r=a (6 neighbors). The second shell at
	// a√2 has 12 neighbors and can normalize slightly higher, so assert the
	// first peak's presence rather than global argmax.
	var gAtA float64
	for b := range g {
		if math.Abs(r[b]-a) <= 0.06 && g[b] > gAtA {
			gAtA = g[b]
		}
	}
	if gAtA < 5 {
		t.Errorf("g(a)=%v, want a strong first-neighbor peak", gAtA)
	}
	// Below the nearest-neighbor distance g must vanish.
	for b := range g {
		if r[b] < 1.5 && g[b] != 0 {
			t.Errorf("g(%v) = %v, want 0 below nn distance", r[b], g[b])
		}
	}
}

func TestRDFBruteForceAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 200
	box := 10.0
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = rng.Float64() * box
		y[i] = rng.Float64() * box
		z[i] = rng.Float64() * box
	}
	_, g, err := RDF(x, y, z, box, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Brute-force counts.
	dr := 4.0 / 16
	counts := make([]float64, 16)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := mi(x[i]-x[j], box)
			dy := mi(y[i]-y[j], box)
			dz := mi(z[i]-z[j], box)
			r := math.Sqrt(dx*dx + dy*dy + dz*dz)
			if r < 4 && r > 0 {
				b := int(r / dr)
				if b < 16 {
					counts[b] += 2
				}
			}
		}
	}
	rho := float64(n) / (box * box * box)
	for b := 0; b < 16; b++ {
		rLo := float64(b) * dr
		rHi := rLo + dr
		shell := 4.0 / 3.0 * math.Pi * (rHi*rHi*rHi - rLo*rLo*rLo)
		want := counts[b] / (rho * shell * float64(n))
		if math.Abs(g[b]-want) > 1e-9 {
			t.Fatalf("bin %d: cell-list g=%v brute g=%v", b, g[b], want)
		}
	}
}

func TestRDFValidation(t *testing.T) {
	if _, _, err := RDF([]float64{1}, []float64{1, 2}, []float64{1}, 10, 2, 4); err != ErrLength {
		t.Error("length mismatch not detected")
	}
	if _, _, err := RDF([]float64{1}, []float64{1}, []float64{1}, 10, 2, 4); err == nil {
		t.Error("single particle accepted")
	}
	if _, _, err := RDF([]float64{1, 2}, []float64{1, 2}, []float64{1, 2}, 0, 2, 4); err == nil {
		t.Error("zero box accepted")
	}
}

func TestRDFDistance(t *testing.T) {
	d, err := RDFDistance([]float64{1, 2, 3}, []float64{1, 2.5, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.5) > 1e-12 {
		t.Errorf("RDFDistance = %v", d)
	}
	if _, err := RDFDistance([]float64{1}, []float64{1, 2}); err != ErrLength {
		t.Error("length mismatch not detected")
	}
	if d, _ := RDFDistance(nil, nil); d != 0 {
		t.Error("empty distance")
	}
}
