package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// walk3D generates m snapshots of n particles; sigma is the per-step
// displacement scale; bounded pins particles to their start.
func walk3D(m, n int, sigma float64, bounded bool, seed int64) (x, y, z [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	x0 := make([]float64, n)
	pos := make([]float64, n)
	x = make([][]float64, m)
	y = make([][]float64, m)
	z = make([][]float64, m)
	for i := range pos {
		x0[i] = rng.Float64() * 10
		pos[i] = x0[i]
	}
	for t := 0; t < m; t++ {
		x[t] = make([]float64, n)
		y[t] = make([]float64, n)
		z[t] = make([]float64, n)
		for i := 0; i < n; i++ {
			if bounded {
				x[t][i] = x0[i] + rng.NormFloat64()*sigma
				y[t][i] = rng.NormFloat64() * sigma
				z[t][i] = rng.NormFloat64() * sigma
			} else {
				pos[i] += rng.NormFloat64() * sigma
				x[t][i] = pos[i]
				y[t][i] = 0
				z[t][i] = 0
			}
		}
	}
	return x, y, z
}

func TestMSDDiffusive(t *testing.T) {
	x, y, z := walk3D(60, 400, 0.1, false, 1)
	msd, err := MSD(x, y, z, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Random walk: MSD(t) ≈ sigma^2 * t.
	if msd[0] != 0 {
		t.Errorf("MSD(0) = %v", msd[0])
	}
	gotFinal := msd[59]
	want := 0.01 * 59
	if math.Abs(gotFinal-want)/want > 0.25 {
		t.Errorf("MSD(59) = %v, want ≈%v", gotFinal, want)
	}
	if DiffusionRegime(msd, 10) != "diffusive" {
		t.Errorf("regime = %s, want diffusive", DiffusionRegime(msd, 10))
	}
}

func TestMSDBounded(t *testing.T) {
	x, y, z := walk3D(60, 400, 0.05, true, 2)
	msd, err := MSD(x, y, z, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := DiffusionRegime(msd, 10); got != "bounded" {
		t.Errorf("regime = %s, want bounded", got)
	}
}

func TestMSDStatic(t *testing.T) {
	x, y, z := walk3D(10, 50, 0, true, 3)
	msd, _ := MSD(x, y, z, 0)
	if got := DiffusionRegime(msd, 10); got != "static" {
		t.Errorf("regime = %s, want static", got)
	}
}

func TestMSDPeriodicUnwrap(t *testing.T) {
	// A particle moving +0.4 per step in a box of 1.0 wraps repeatedly;
	// unwrapped MSD must keep growing quadratically (ballistic).
	m := 20
	x := make([][]float64, m)
	y := make([][]float64, m)
	z := make([][]float64, m)
	for t2 := 0; t2 < m; t2++ {
		p := math.Mod(0.4*float64(t2), 1.0)
		x[t2] = []float64{p}
		y[t2] = []float64{0}
		z[t2] = []float64{0}
	}
	msd, err := MSD(x, y, z, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Each raw step is +0.4 (|0.4| < L/2, kept) except across the wrap,
	// where the raw −0.6 unwraps back to +0.4 — so the reconstructed
	// motion is a clean +0.4/step ballistic trajectory.
	want := math.Pow(0.4*float64(m-1), 2)
	if math.Abs(msd[m-1]-want)/want > 1e-9 {
		t.Errorf("MSD = %v, want %v", msd[m-1], want)
	}
}

func TestMSDErrors(t *testing.T) {
	if _, err := MSD(nil, nil, nil, 0); err != ErrLength {
		t.Error("empty input accepted")
	}
	x := [][]float64{{1}, {1, 2}}
	if _, err := MSD(x, x, x, 0); err != ErrLength {
		t.Error("ragged input accepted")
	}
}

func TestVACFBallisticVsRandom(t *testing.T) {
	// Constant-velocity motion: VACF stays ≈1. Random walk: VACF(lag>0)≈0.
	m, n := 40, 200
	bx := make([][]float64, m)
	by := make([][]float64, m)
	bz := make([][]float64, m)
	for t2 := 0; t2 < m; t2++ {
		bx[t2] = make([]float64, n)
		by[t2] = make([]float64, n)
		bz[t2] = make([]float64, n)
		for i := 0; i < n; i++ {
			bx[t2][i] = float64(t2) * (0.1 + 0.001*float64(i))
		}
	}
	vacf, err := VACF(bx, by, bz, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if vacf[0] != 1 || vacf[3] < 0.95 {
		t.Errorf("ballistic VACF = %v", vacf)
	}
	rx, ry, rz := walk3D(40, 400, 0.1, false, 5)
	vacf, err = VACF(rx, ry, rz, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vacf[3]) > 0.15 {
		t.Errorf("random-walk VACF(3) = %v, want ≈0", vacf[3])
	}
}

func TestVACFErrors(t *testing.T) {
	if _, err := VACF(nil, nil, nil, 0, 3); err != ErrLength {
		t.Error("empty input accepted")
	}
}
