// Package metrics implements the evaluation metrics of the paper's §VII:
// compression ratio, bit rate, PSNR, NRMSE, maximum error, snapshot
// similarity (Eq. 2), value histograms (Fig 4) and the radial distribution
// function g(r) used for the physics-fidelity study (Fig 14).
package metrics

import (
	"errors"
	"math"
)

// ErrLength is returned when paired arrays disagree in length.
var ErrLength = errors.New("metrics: length mismatch")

// CompressionRatio returns originalBytes / compressedBytes.
func CompressionRatio(originalBytes, compressedBytes int64) float64 {
	if compressedBytes <= 0 {
		return math.Inf(1)
	}
	return float64(originalBytes) / float64(compressedBytes)
}

// BitRate returns the average compressed bits per data point given the
// original element count.
func BitRate(compressedBytes int64, numValues int) float64 {
	if numValues <= 0 {
		return 0
	}
	return float64(compressedBytes) * 8 / float64(numValues)
}

// ErrorStats aggregates the distortion metrics of a lossy reconstruction.
type ErrorStats struct {
	// MaxError is max |orig−recon|.
	MaxError float64
	// MSE is the mean squared error; RMSE its square root.
	MSE, RMSE float64
	// NRMSE is RMSE / value range of the original data.
	NRMSE float64
	// PSNR is 20·log10(range) − 10·log10(MSE) in dB.
	PSNR float64
	// Range is the original data's value range.
	Range float64
	// N counts compared values.
	N int
}

// Compare computes error statistics between original and reconstructed
// value streams of equal length.
func Compare(orig, recon []float64) (ErrorStats, error) {
	if len(orig) != len(recon) {
		return ErrorStats{}, ErrLength
	}
	var st ErrorStats
	if len(orig) == 0 {
		return st, nil
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	var sum2 float64
	for i := range orig {
		if orig[i] < lo {
			lo = orig[i]
		}
		if orig[i] > hi {
			hi = orig[i]
		}
		d := orig[i] - recon[i]
		if a := math.Abs(d); a > st.MaxError {
			st.MaxError = a
		}
		sum2 += d * d
	}
	st.N = len(orig)
	st.MSE = sum2 / float64(st.N)
	st.RMSE = math.Sqrt(st.MSE)
	st.Range = hi - lo
	if st.Range > 0 {
		st.NRMSE = st.RMSE / st.Range
		if st.MSE > 0 {
			st.PSNR = 20*math.Log10(st.Range) - 10*math.Log10(st.MSE)
		} else {
			st.PSNR = math.Inf(1)
		}
	} else if st.MSE == 0 {
		st.PSNR = math.Inf(1)
	}
	return st, nil
}

// CompareFrames flattens per-snapshot slices and computes error statistics
// over the whole series.
func CompareFrames(orig, recon [][]float64) (ErrorStats, error) {
	if len(orig) != len(recon) {
		return ErrorStats{}, ErrLength
	}
	var o, r []float64
	for i := range orig {
		if len(orig[i]) != len(recon[i]) {
			return ErrorStats{}, ErrLength
		}
		o = append(o, orig[i]...)
		r = append(r, recon[i]...)
	}
	return Compare(o, r)
}

// Similarity implements the paper's Eq. 2: the fraction of data points in
// snapshot s whose relative deviation from the reference snapshot s0 is
// below tau.
func Similarity(s0, s []float64, tau float64) (float64, error) {
	if len(s0) != len(s) {
		return 0, ErrLength
	}
	if len(s) == 0 {
		return 0, nil
	}
	count := 0
	for j := range s {
		den := s[j]
		if den == 0 {
			if s0[j] == 0 {
				count++
			}
			continue
		}
		if math.Abs((s[j]-s0[j])/den) < tau {
			count++
		}
	}
	return float64(count) / float64(len(s)), nil
}

// Histogram bins values into n equal-width bins over their range,
// returning bin centers and counts (Fig 4's frequency plots). Non-finite
// values (NaN, ±Inf) are skipped — they have no place on a finite axis and
// would otherwise poison the range (an Inf endpoint collapses every bin
// width; a NaN bins arbitrarily via float→int conversion). When no finite
// value remains, both results are nil.
func Histogram(values []float64, n int) (centers []float64, counts []int) {
	if n <= 0 || len(values) == 0 {
		return nil, nil
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	finite := 0
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		finite++
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if finite == 0 {
		return nil, nil
	}
	centers = make([]float64, n)
	counts = make([]int, n)
	w := (hi - lo) / float64(n)
	if w == 0 {
		centers[0] = lo
		counts[0] = finite
		return centers, counts
	}
	for i := range centers {
		centers[i] = lo + (float64(i)+0.5)*w
	}
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		b := int((v - lo) / w)
		if b >= n {
			b = n - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	return centers, counts
}

// PeakCount estimates how many distinct peaks a histogram has: bins whose
// count exceeds frac of the maximum and their immediate neighbors are
// merged into one peak. It distinguishes the paper's
// multiple-peak-dominated distributions from uniform ones.
func PeakCount(counts []int, frac float64) int {
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	if maxC == 0 {
		return 0
	}
	thresh := int(frac * float64(maxC))
	peaks := 0
	inPeak := false
	for _, c := range counts {
		if c > thresh {
			if !inPeak {
				peaks++
				inPeak = true
			}
		} else {
			inPeak = false
		}
	}
	return peaks
}

// RDF computes the radial distribution function g(r) of one frame in a
// periodic cubic box of edge box: bins pair distances up to rMax into n
// bins and normalizes by the ideal-gas expectation, so g(r)→1 at large r
// for uncorrelated particles.
func RDF(x, y, z []float64, box float64, rMax float64, n int) (r []float64, g []float64, err error) {
	np := len(x)
	if len(y) != np || len(z) != np {
		return nil, nil, ErrLength
	}
	if np < 2 || n <= 0 || rMax <= 0 || box <= 0 {
		return nil, nil, errors.New("metrics: invalid RDF parameters")
	}
	if rMax > box/2 {
		rMax = box / 2 // minimum image validity limit
	}
	dr := rMax / float64(n)
	counts := make([]float64, n)

	// Cell-list accelerated pair search.
	nc := int(box / rMax)
	if nc < 1 {
		nc = 1
	}
	if nc > 40 {
		nc = 40
	}
	cw := box / float64(nc)
	cellOf := func(i int) int {
		cx := int(wrapCoord(x[i], box) / cw)
		cy := int(wrapCoord(y[i], box) / cw)
		cz := int(wrapCoord(z[i], box) / cw)
		if cx >= nc {
			cx = nc - 1
		}
		if cy >= nc {
			cy = nc - 1
		}
		if cz >= nc {
			cz = nc - 1
		}
		return (cx*nc+cy)*nc + cz
	}
	head := make([]int, nc*nc*nc)
	for i := range head {
		head[i] = -1
	}
	next := make([]int, np)
	for i := 0; i < np; i++ {
		c := cellOf(i)
		next[i] = head[c]
		head[c] = i
	}
	rMax2 := rMax * rMax
	visit := func(i, j int) {
		dx := mi(x[i]-x[j], box)
		dy := mi(y[i]-y[j], box)
		dz := mi(z[i]-z[j], box)
		r2 := dx*dx + dy*dy + dz*dz
		if r2 < rMax2 && r2 > 0 {
			b := int(math.Sqrt(r2) / dr)
			if b < n {
				counts[b] += 2 // each pair contributes to both particles
			}
		}
	}
	seen := map[[2]int]bool{}
	for cx := 0; cx < nc; cx++ {
		for cy := 0; cy < nc; cy++ {
			for cz := 0; cz < nc; cz++ {
				c := (cx*nc+cy)*nc + cz
				for i := head[c]; i >= 0; i = next[i] {
					for j := next[i]; j >= 0; j = next[j] {
						visit(i, j)
					}
				}
				for dx := -1; dx <= 1; dx++ {
					for dy := -1; dy <= 1; dy++ {
						for dz := -1; dz <= 1; dz++ {
							if dx == 0 && dy == 0 && dz == 0 {
								continue
							}
							ox := ((cx+dx)%nc + nc) % nc
							oy := ((cy+dy)%nc + nc) % nc
							oz := ((cz+dz)%nc + nc) % nc
							o := (ox*nc+oy)*nc + oz
							if o <= c {
								continue
							}
							key := [2]int{c, o}
							if seen[key] {
								continue
							}
							seen[key] = true
							for i := head[c]; i >= 0; i = next[i] {
								for j := head[o]; j >= 0; j = next[j] {
									visit(i, j)
								}
							}
						}
					}
				}
			}
		}
	}

	rho := float64(np) / (box * box * box)
	r = make([]float64, n)
	g = make([]float64, n)
	for b := 0; b < n; b++ {
		rLo := float64(b) * dr
		rHi := rLo + dr
		shell := 4.0 / 3.0 * math.Pi * (rHi*rHi*rHi - rLo*rLo*rLo)
		ideal := rho * shell * float64(np)
		r[b] = rLo + dr/2
		if ideal > 0 {
			g[b] = counts[b] / ideal
		}
	}
	return r, g, nil
}

func wrapCoord(v, box float64) float64 {
	v = math.Mod(v, box)
	if v < 0 {
		v += box
	}
	return v
}

func mi(d, l float64) float64 {
	return d - l*math.Round(d/l)
}

// RDFDistance returns the mean absolute difference between two g(r) curves
// of equal length — the scalar used to rank compressors in Fig 14.
func RDFDistance(g1, g2 []float64) (float64, error) {
	if len(g1) != len(g2) {
		return 0, ErrLength
	}
	if len(g1) == 0 {
		return 0, nil
	}
	var sum float64
	for i := range g1 {
		sum += math.Abs(g1[i] - g2[i])
	}
	return sum / float64(len(g1)), nil
}
