package lossless

import (
	"errors"
	"math"

	"github.com/mdz/mdz/internal/bitstream"
	"github.com/mdz/mdz/internal/huffman"
)

// FPZip is a simplified reimplementation of fpzip's mechanism: each double
// is predicted from its predecessor (the 1-D Lorenzo predictor), the
// prediction residual is formed on a *monotone integer* remapping of the
// IEEE-754 bit pattern (so numerically close floats have numerically small
// residuals), and residuals are entropy coded. The original fpzip uses a
// range coder over residual group sizes; we varint-pack residuals and
// Huffman-code the resulting bytes, which captures the same
// prediction+entropy structure with stdlib-only code.
type FPZip struct{}

// Name implements FloatCompressor.
func (FPZip) Name() string { return "fpzip*" }

// floatToOrdered maps float64 bit patterns to uint64 such that the integer
// order matches the IEEE total order: negatives map below positives and
// magnitude ordering is preserved within each sign.
func floatToOrdered(f float64) uint64 {
	u := math.Float64bits(f)
	if u&(1<<63) != 0 {
		return ^u
	}
	return u | (1 << 63)
}

// orderedToFloat inverts floatToOrdered.
func orderedToFloat(u uint64) float64 {
	if u&(1<<63) != 0 {
		return math.Float64frombits(u &^ (1 << 63))
	}
	return math.Float64frombits(^u)
}

// CompressFloats implements FloatCompressor.
func (FPZip) CompressFloats(src []float64) ([]byte, error) {
	var resid []byte
	prev := uint64(1 << 63) // ordered encoding of +0
	for _, v := range src {
		m := floatToOrdered(v)
		resid = bitstream.AppendVarint(resid, int64(m-prev))
		prev = m
	}
	out := bitstream.AppendUvarint(nil, uint64(len(src)))
	return huffman.EncodeBytes(out, resid)
}

// DecompressFloats implements FloatCompressor.
func (FPZip) DecompressFloats(src []byte) ([]float64, error) {
	br := bitstream.NewByteReader(src)
	n, err := br.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if n > 1<<32 {
		return nil, ErrCorrupt
	}
	resid, err := huffman.DecodeBytes(br)
	if err != nil {
		if errors.Is(err, huffman.ErrByteRange) {
			err = ErrCorrupt
		}
		return nil, err
	}
	rr := bitstream.NewByteReader(resid)
	out := make([]float64, n)
	prev := uint64(1 << 63)
	for i := range out {
		d, err := rr.ReadVarint()
		if err != nil {
			return nil, err
		}
		m := prev + uint64(d)
		out[i] = orderedToFloat(m)
		prev = m
	}
	return out, nil
}
