package lossless

import (
	"errors"
	"math"

	"github.com/mdz/mdz/internal/bitstream"
	"github.com/mdz/mdz/internal/huffman"
)

// ZFP is a simplified reimplementation of ZFP's reversible (lossless) mode
// for 1-D streams: values are processed in blocks of 4, promoted to a
// common-exponent fixed-point representation, decorrelated with a
// reversible integer lifting transform (two Haar stages), and the transform
// coefficients are varint+Huffman coded. Blocks whose promotion would lose
// bits (mixed exponents beyond 52 bits of headroom, or non-finite values)
// fall back to verbatim storage, preserving exactness — the same escape
// hatch ZFP's reversible mode uses.
type ZFP struct{}

// Name implements FloatCompressor.
func (ZFP) Name() string { return "zfp*" }

const zfpBlock = 4

// CompressFloats implements FloatCompressor.
func (ZFP) CompressFloats(src []float64) ([]byte, error) {
	var flags []byte // 1 byte per block: 1 = transformed, 0 = raw
	var body []byte  // varint coefficients or raw bits
	for start := 0; start < len(src); start += zfpBlock {
		end := start + zfpBlock
		if end > len(src) {
			end = len(src)
		}
		blk := src[start:end]
		coef, emax, ok := promoteBlock(blk)
		if ok && len(blk) == zfpBlock {
			fwdLift(coef)
			flags = append(flags, 1)
			body = bitstream.AppendVarint(body, int64(emax))
			for _, c := range coef {
				body = bitstream.AppendVarint(body, c)
			}
		} else {
			flags = append(flags, 0)
			for _, v := range blk {
				body = bitstream.AppendUint64(body, math.Float64bits(v))
			}
		}
	}
	out := bitstream.AppendUvarint(nil, uint64(len(src)))
	out = bitstream.AppendSection(out, flags)
	return huffman.EncodeBytes(out, body)
}

// DecompressFloats implements FloatCompressor.
func (ZFP) DecompressFloats(src []byte) ([]float64, error) {
	br := bitstream.NewByteReader(src)
	n, err := br.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if n > 1<<32 {
		return nil, ErrCorrupt
	}
	flags, err := br.ReadSection()
	if err != nil {
		return nil, err
	}
	body, err := huffman.DecodeBytes(br)
	if err != nil {
		if errors.Is(err, huffman.ErrByteRange) {
			err = ErrCorrupt
		}
		return nil, err
	}
	rb := bitstream.NewByteReader(body)
	out := make([]float64, 0, n)
	for bi := 0; uint64(len(out)) < n; bi++ {
		if bi >= len(flags) {
			return nil, ErrCorrupt
		}
		size := zfpBlock
		if rem := int(n) - len(out); rem < size {
			size = rem
		}
		if flags[bi] == 1 {
			if size != zfpBlock {
				return nil, ErrCorrupt
			}
			emax, err := rb.ReadVarint()
			if err != nil {
				return nil, err
			}
			var coef [zfpBlock]int64
			for i := range coef {
				coef[i], err = rb.ReadVarint()
				if err != nil {
					return nil, err
				}
			}
			c := coef[:]
			invLift(c)
			scale := math.Ldexp(1, int(emax)-52)
			for _, ci := range c {
				out = append(out, float64(ci)*scale)
			}
		} else {
			for i := 0; i < size; i++ {
				u, err := rb.ReadUint64()
				if err != nil {
					return nil, err
				}
				out = append(out, math.Float64frombits(u))
			}
		}
	}
	return out, nil
}

// promoteBlock converts blk to common-exponent fixed point with 52
// fractional bits relative to the block's max exponent. ok is false when
// any value cannot be represented exactly (the caller stores the block raw).
func promoteBlock(blk []float64) (coef []int64, emax int, ok bool) {
	emax = math.MinInt32
	for _, v := range blk {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, 0, false
		}
		if v != 0 {
			_, e := math.Frexp(v)
			if e > emax {
				emax = e
			}
		}
	}
	if emax == math.MinInt32 {
		emax = 0 // all-zero block
	}
	scale := math.Ldexp(1, 52-emax)
	inv := math.Ldexp(1, emax-52)
	coef = make([]int64, len(blk))
	for i, v := range blk {
		f := v * scale
		if math.Abs(f) >= 1<<62 {
			return nil, 0, false
		}
		c := int64(f)
		if float64(c) != f || float64(c)*inv != v {
			return nil, 0, false // promotion would lose bits
		}
		coef[i] = c
	}
	return coef, emax, true
}

// fwdLift applies two reversible Haar lifting stages to a 4-coefficient
// block: pairwise (sum, diff), then one more stage on the two sums.
func fwdLift(c []int64) {
	c[0], c[1] = haarFwd(c[0], c[1])
	c[2], c[3] = haarFwd(c[2], c[3])
	c[0], c[2] = haarFwd(c[0], c[2])
}

// invLift inverts fwdLift.
func invLift(c []int64) {
	c[0], c[2] = haarInv(c[0], c[2])
	c[0], c[1] = haarInv(c[0], c[1])
	c[2], c[3] = haarInv(c[2], c[3])
}

// haarFwd returns (approx, detail) for the reversible Haar lifting step:
// d = a - b, s = b + (d >> 1).
func haarFwd(a, b int64) (s, d int64) {
	d = a - b
	s = b + (d >> 1)
	return s, d
}

// haarInv inverts haarFwd.
func haarInv(s, d int64) (a, b int64) {
	b = s - (d >> 1)
	a = b + d
	return a, b
}
