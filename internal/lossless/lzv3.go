package lossless

import (
	"encoding/binary"
	"sync"

	"github.com/mdz/mdz/internal/bitstream"
	"github.com/mdz/mdz/internal/huffman"
)

// Format v3 of the LZ backend. The wire layout is the v2 one with the two
// Huffman sections swapped for their dual-lane (format v3) counterparts:
//
//	uvarint origSize || EncodeBytes2(literals) || EncodeBytes2(seq)
//
// and the match finder is upgraded where v2 was pinned by golden hashes:
//
//   - lazy matching: after finding a match at i the finder peeks at i+1 and
//     defers (emitting src[i] as a literal) whenever the shifted match is
//     strictly longer — the classic deflate heuristic, worth a few percent
//     of ratio on MD quantization streams where run boundaries rarely align
//     with match starts;
//   - 5-byte hash chains over a 40-bit window (v2 hashes 4 bytes), which
//     cut chain pollution from the ubiquitous 4-byte near-zero patterns in
//     delta-encoded sections — every chain candidate already agrees on 5
//     bytes, so the walk wastes no probes on sub-minimum repeats;
//   - a head-only 4-byte probe table consulted when the chains come up
//     empty, so length-4 matches (below the 5-byte hash's reach) are still
//     coded instead of spilling into literals;
//   - an input-sized chain table: 2^16 heads below 256 KiB, 2^17 below
//     2 MiB, 2^18 above, so large blocks keep chains short instead of
//     piling collisions into the v2 fixed 2^16 table.
//
// v3 matches are at least lzMinMatch (4) bytes — same floor as v2; the
// sequence-triple format is unchanged, so the replay loop in
// AppendDecompress is shared verbatim.

const (
	lzMask40        = 1<<40 - 1
	lzMaxHashBitsV3 = 18
	lzHash4BitsV3   = 16
	// lzLazyGood: a match this long is taken immediately, skipping the lazy
	// probe. A one-byte-shifted alternative to an already-long match almost
	// never wins by enough to pay for the extra chain walk, and the probe is
	// the dominant cost of the lazy step on match-dense (well-predicted)
	// quantization streams. Lowering the cutoff from its original 64 trades
	// an (empirically ~0.01%) ratio loss for meaningfully fewer find() calls;
	// this is an encoder-side heuristic only, so v3 wire bytes change but
	// every decoder reads both generations identically.
	lzLazyGood = 32
)

// lzHashBitsV3 picks the chain-table width for an input size.
func lzHashBitsV3(n int) uint {
	switch {
	case n < 256<<10:
		return 16
	case n < 2<<20:
		return 17
	default:
		return lzMaxHashBitsV3
	}
}

// lzHash5 mixes the low 40 bits of v (5 bytes, little-endian) into a
// hashBits-wide bucket index. The odd 64-bit multiplier spreads the masked
// word across the high product bits.
func lzHash5(v uint64, shift uint) uint32 {
	return uint32((v & lzMask40) * 0x9E3779B185EBCA87 >> shift)
}

// lzHash4v3 buckets the low 32 bits of v for the head-only fallback table.
func lzHash4v3(v uint64) uint32 {
	return (uint32(v) * 2654435761) >> (32 - lzHash4BitsV3)
}

// lzV3State is the pooled per-call state of the v3 compressor. head is kept
// at the maximum chain-table size and cleared only up to the width in use;
// head4 is the 4-byte fallback probe table.
type lzV3State struct {
	head     []int32
	head4    []int32
	prev     []int32
	literals []byte
	seq      []byte
}

var lzV3Pool = sync.Pool{
	New: func() any {
		return &lzV3State{
			head:  make([]int32, 1<<lzMaxHashBitsV3),
			head4: make([]int32, 1<<lzHash4BitsV3),
		}
	},
}

// appendCompressV3 is AppendCompress for V3 backends.
func (z LZ) appendCompressV3(dst, src []byte) ([]byte, error) {
	maxChain := z.MaxChain
	if maxChain <= 0 {
		maxChain = DefaultMaxChain
	}
	st := lzV3Pool.Get().(*lzV3State)
	defer lzV3Pool.Put(st)
	literals := st.literals[:0]
	seq := st.seq[:0]
	// The finder loads 8 bytes at every probed position, so it walks
	// positions 0..len(src)-8; the unreachable tail is emitted as literals.
	if end := len(src) - 8; end >= 0 {
		hashBits := lzHashBitsV3(len(src))
		shift := 64 - hashBits
		head := st.head[:1<<hashBits]
		clear(head)
		head4 := st.head4
		clear(head4)
		prev := st.prev
		if cap(prev) < len(src) {
			prev = make([]int32, len(src))
			st.prev = prev
		} else {
			prev = prev[:len(src)]
		}
		// insert records position p (p <= end) in the chain and probe
		// tables.
		insert := func(p int) {
			v := binary.LittleEndian.Uint64(src[p:])
			h := lzHash5(v, shift)
			prev[p] = head[h]
			head[h] = int32(p) + 1
			head4[lzHash4v3(v)] = int32(p) + 1
		}
		// find reports the longest candidate match at position i, walking
		// the 5-byte chain new-to-old with the same window bound and
		// tail-word prefilter as the v2 finder; when the chain yields
		// nothing it falls back to the most recent 4-byte probe, so the
		// match floor stays at lzMinMatch.
		find := func(i int) (bestLen, bestDist int) {
			cur := binary.LittleEndian.Uint64(src[i:])
			lo := i - lzWindow
			if lo < 0 {
				lo = 0
			}
			var tail4 uint32
			cand := int(head[lzHash5(cur, shift)]) - 1
			for depth := 0; cand >= lo && depth < maxChain; depth++ {
				if (binary.LittleEndian.Uint64(src[cand:])^cur)&lzMask40 == 0 &&
					(bestLen == 0 || (i+bestLen < len(src) &&
						binary.LittleEndian.Uint32(src[cand+bestLen-3:]) == tail4)) {
					l := matchLen(src, cand, i)
					if l > bestLen {
						bestLen, bestDist = l, i-cand
						if i+bestLen >= len(src) {
							return // provably maximal
						}
						tail4 = binary.LittleEndian.Uint32(src[i+bestLen-3:])
					}
				}
				cand = int(prev[cand]) - 1
			}
			if bestLen == 0 {
				if c4 := int(head4[lzHash4v3(cur)]) - 1; c4 >= lo && c4 < i &&
					binary.LittleEndian.Uint32(src[c4:]) == uint32(cur) {
					if l := matchLen(src, c4, i); l >= lzMinMatch {
						bestLen, bestDist = l, i-c4
					}
				}
			}
			return
		}
		litStart := 0
		ins := 0 // next position not yet inserted into the tables
		i := 0
		for i <= end {
			l0, d0 := find(i)
			if ins == i {
				insert(i)
				ins = i + 1
			}
			if l0 < lzMinMatch {
				i++
				continue
			}
			// Lazy step: while the match is short enough to be worth
			// second-guessing, peek one byte ahead; a strictly longer match
			// there demotes src[i] to a literal and restarts the comparison.
			// Matches of lzLazyGood+ skip the probe entirely.
			for l0 < lzLazyGood && i+1 <= end {
				l1, d1 := find(i + 1)
				if ins == i+1 {
					insert(i + 1)
					ins = i + 2
				}
				if l1 <= l0 {
					break
				}
				i++
				l0, d0 = l1, d1
			}
			literals = append(literals, src[litStart:i]...)
			seq = bitstream.AppendUvarint(seq, uint64(i-litStart))
			seq = bitstream.AppendUvarint(seq, uint64(l0))
			seq = bitstream.AppendUvarint(seq, uint64(d0))
			// Insert the matched region (sparsely for long matches).
			stop := i + l0
			if stop > end+1 {
				stop = end + 1
			}
			step := 1
			if l0 > 64 {
				step = 4
			}
			for p := ins; p < stop; p += step {
				insert(p)
			}
			ins = stop
			i += l0
			litStart = i
		}
		if litStart < len(src) {
			literals = append(literals, src[litStart:]...)
			seq = bitstream.AppendUvarint(seq, uint64(len(src)-litStart))
			seq = bitstream.AppendUvarint(seq, 0)
			seq = bitstream.AppendUvarint(seq, 0)
		}
	} else if len(src) > 0 {
		literals = append(literals, src...)
		seq = bitstream.AppendUvarint(seq, uint64(len(src)))
		seq = bitstream.AppendUvarint(seq, 0)
		seq = bitstream.AppendUvarint(seq, 0)
	}
	st.literals, st.seq = literals, seq

	if hint := len(literals) + len(seq) + (len(literals)+len(seq))>>1 + 1200; cap(dst)-len(dst) < hint {
		grown := make([]byte, len(dst), len(dst)+hint)
		copy(grown, dst)
		dst = grown
	}
	out := bitstream.AppendUvarint(dst, uint64(len(src)))
	var err error
	out, err = huffman.EncodeBytes2(out, literals)
	if err != nil {
		return nil, err
	}
	out, err = huffman.EncodeBytes2(out, seq)
	if err != nil {
		return nil, err
	}
	return out, nil
}
