package lossless

import (
	"github.com/mdz/mdz/internal/bitstream"
	"github.com/mdz/mdz/internal/huffman"
)

// LZ is a from-scratch LZ77 dictionary coder with canonical-Huffman entropy
// coding, serving as the module's Zstd stand-in: it fills the same
// "dictionary coding after Huffman" role in the SZ pipeline (paper Fig 2 and
// Fig 6) and the Zstd row of Table V.
//
// Format: magic-free; uvarint original size, then two length-prefixed
// Huffman sections — literal bytes, and a varint-packed sequence stream of
// (literalRun, matchLen, distance) triples.
type LZ struct {
	// MaxChain bounds the match-finder chain walk; 0 means DefaultMaxChain.
	MaxChain int
}

const (
	lzMinMatch = 4
	lzWindow   = 1 << 20
	lzHashBits = 16
	lzHashSize = 1 << lzHashBits
	// DefaultMaxChain is the default bound on hash-chain traversal during
	// match finding; larger values trade speed for ratio.
	DefaultMaxChain = 32
)

// Name implements Backend.
func (LZ) Name() string { return "lz" }

func lzHash(b []byte) uint32 {
	// 4-byte FNV-style multiplicative hash.
	v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	return (v * 2654435761) >> (32 - lzHashBits)
}

// Compress implements Backend.
func (z LZ) Compress(src []byte) ([]byte, error) {
	maxChain := z.MaxChain
	if maxChain <= 0 {
		maxChain = DefaultMaxChain
	}
	var literals []byte
	var seq []byte // varint triples (litRun, matchLen, dist)
	if len(src) >= lzMinMatch {
		head := make([]int32, lzHashSize)
		for i := range head {
			head[i] = -1
		}
		prev := make([]int32, len(src))
		litStart := 0
		i := 0
		for i+lzMinMatch <= len(src) {
			h := lzHash(src[i:])
			bestLen, bestDist := 0, 0
			cand := head[h]
			for depth := 0; cand >= 0 && depth < maxChain; depth++ {
				d := i - int(cand)
				if d > lzWindow {
					break
				}
				l := matchLen(src, int(cand), i)
				if l > bestLen {
					bestLen, bestDist = l, d
				}
				cand = prev[cand]
			}
			if bestLen >= lzMinMatch {
				litRun := i - litStart
				literals = append(literals, src[litStart:i]...)
				seq = bitstream.AppendUvarint(seq, uint64(litRun))
				seq = bitstream.AppendUvarint(seq, uint64(bestLen))
				seq = bitstream.AppendUvarint(seq, uint64(bestDist))
				// Insert hash entries for the matched region (sparsely for
				// long matches to bound cost).
				end := i + bestLen
				step := 1
				if bestLen > 64 {
					step = 4
				}
				for ; i+lzMinMatch <= len(src) && i < end; i += step {
					hh := lzHash(src[i:])
					prev[i] = head[hh]
					head[hh] = int32(i)
				}
				i = end
				litStart = i
			} else {
				prev[i] = head[h]
				head[h] = int32(i)
				i++
			}
		}
		// Trailing literals.
		if litStart < len(src) {
			run := len(src) - litStart
			literals = append(literals, src[litStart:]...)
			seq = bitstream.AppendUvarint(seq, uint64(run))
			seq = bitstream.AppendUvarint(seq, 0)
			seq = bitstream.AppendUvarint(seq, 0)
		}
	} else if len(src) > 0 {
		literals = append(literals, src...)
		seq = bitstream.AppendUvarint(seq, uint64(len(src)))
		seq = bitstream.AppendUvarint(seq, 0)
		seq = bitstream.AppendUvarint(seq, 0)
	}

	out := bitstream.AppendUvarint(nil, uint64(len(src)))
	var err error
	out, err = huffman.EncodeInts(out, bytesToInts(literals))
	if err != nil {
		return nil, err
	}
	out, err = huffman.EncodeInts(out, bytesToInts(seq))
	if err != nil {
		return nil, err
	}
	return out, nil
}

func matchLen(src []byte, a, b int) int {
	n := 0
	for b+n < len(src) && src[a+n] == src[b+n] {
		n++
	}
	return n
}

func bytesToInts(b []byte) []int {
	out := make([]int, len(b))
	for i, v := range b {
		out[i] = int(v)
	}
	return out
}

func intsToBytes(v []int) ([]byte, error) {
	out := make([]byte, len(v))
	for i, x := range v {
		if x < 0 || x > 255 {
			return nil, ErrCorrupt
		}
		out[i] = byte(x)
	}
	return out, nil
}

// Decompress implements Backend.
func (z LZ) Decompress(src []byte) ([]byte, error) {
	br := bitstream.NewByteReader(src)
	origSize, err := br.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if origSize > 1<<34 {
		return nil, ErrCorrupt
	}
	litInts, err := huffman.DecodeInts(br)
	if err != nil {
		return nil, err
	}
	literals, err := intsToBytes(litInts)
	if err != nil {
		return nil, err
	}
	seqInts, err := huffman.DecodeInts(br)
	if err != nil {
		return nil, err
	}
	seq, err := intsToBytes(seqInts)
	if err != nil {
		return nil, err
	}

	// Trust origSize only as an upper bound enforced below, not as an
	// allocation hint: a forged value must not trigger a giant make.
	capHint := origSize
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	out := make([]byte, 0, capHint)
	sr := bitstream.NewByteReader(seq)
	litPos := 0
	for sr.Len() > 0 {
		litRun, err := sr.ReadUvarint()
		if err != nil {
			return nil, err
		}
		mLen, err := sr.ReadUvarint()
		if err != nil {
			return nil, err
		}
		dist, err := sr.ReadUvarint()
		if err != nil {
			return nil, err
		}
		if litPos+int(litRun) > len(literals) {
			return nil, ErrCorrupt
		}
		if uint64(len(out))+litRun+mLen > origSize {
			return nil, ErrCorrupt
		}
		out = append(out, literals[litPos:litPos+int(litRun)]...)
		litPos += int(litRun)
		if mLen > 0 {
			d := int(dist)
			if d <= 0 || d > len(out) {
				return nil, ErrCorrupt
			}
			// Byte-by-byte copy: matches may overlap their own output.
			start := len(out) - d
			for k := 0; k < int(mLen); k++ {
				out = append(out, out[start+k])
			}
		}
	}
	if uint64(len(out)) != origSize {
		return nil, ErrCorrupt
	}
	return out, nil
}
