package lossless

import (
	"encoding/binary"
	"errors"
	"math/bits"
	"sync"

	"github.com/mdz/mdz/internal/bitstream"
	"github.com/mdz/mdz/internal/budget"
	"github.com/mdz/mdz/internal/huffman"
)

// LZ is a from-scratch LZ77 dictionary coder with canonical-Huffman entropy
// coding, serving as the module's Zstd stand-in: it fills the same
// "dictionary coding after Huffman" role in the SZ pipeline (paper Fig 2 and
// Fig 6) and the Zstd row of Table V.
//
// Format: magic-free; uvarint original size, then two length-prefixed
// Huffman sections — literal bytes, and a varint-packed sequence stream of
// (literalRun, matchLen, distance) triples.
//
// All working state — match-finder tables, section buffers, Huffman scratch
// — is sync.Pool-backed, so steady-state Compress/Decompress cost no
// allocations beyond the returned buffer (and none at all through the
// Append* variants with a reused destination). The compressed bytes are
// decision-identical to the historical allocating implementation: the same
// candidates are visited in the same order with the same tie-breaks, which
// the differential fuzzer in lz_ref_test.go pins against the kept original.
type LZ struct {
	// MaxChain bounds the match-finder chain walk; 0 means DefaultMaxChain.
	MaxChain int
	// V3 selects the format v3 wire layout and match finder (lzv3.go):
	// dual-lane Huffman sections, lazy matching, 5-byte hashing, and an
	// input-sized hash table. v3 streams are not readable by a v2 decoder
	// (and vice versa); the container's block version selects the right one.
	V3 bool
}

const (
	lzMinMatch = 4
	lzWindow   = 1 << 20
	lzHashBits = 16
	lzHashSize = 1 << lzHashBits
	// DefaultMaxChain is the default bound on hash-chain traversal during
	// match finding; larger values trade speed for ratio.
	DefaultMaxChain = 32
)

// Name implements Backend.
func (LZ) Name() string { return "lz" }

func lzHash(v uint32) uint32 {
	// 4-byte FNV-style multiplicative hash over the little-endian word.
	return (v * 2654435761) >> (32 - lzHashBits)
}

// lzEncState is the pooled per-call state of Compress. head and prev store
// positions +1 so the zero value means "empty" and reuse needs only a
// memclr of head (prev entries are written before they are reachable
// through a chain, so prev is never cleared).
type lzEncState struct {
	head     []int32
	prev     []int32
	literals []byte
	seq      []byte
}

var lzEncPool = sync.Pool{
	New: func() any { return &lzEncState{head: make([]int32, lzHashSize)} },
}

// Compress implements Backend.
func (z LZ) Compress(src []byte) ([]byte, error) {
	return z.AppendCompress(nil, src)
}

// AppendCompress appends the compressed form of src to dst and returns the
// extended slice. With a reused dst of sufficient capacity the steady-state
// allocation count is zero.
func (z LZ) AppendCompress(dst, src []byte) ([]byte, error) {
	if z.V3 {
		return z.appendCompressV3(dst, src)
	}
	maxChain := z.MaxChain
	if maxChain <= 0 {
		maxChain = DefaultMaxChain
	}
	st := lzEncPool.Get().(*lzEncState)
	defer lzEncPool.Put(st)
	literals := st.literals[:0]
	seq := st.seq[:0]
	if len(src) >= lzMinMatch {
		head := st.head
		clear(head)
		prev := st.prev
		if cap(prev) < len(src) {
			prev = make([]int32, len(src))
			st.prev = prev
		} else {
			prev = prev[:len(src)]
		}
		litStart := 0
		i := 0
		for i+lzMinMatch <= len(src) {
			cur := binary.LittleEndian.Uint32(src[i:])
			h := lzHash(cur)
			bestLen, bestDist := 0, 0
			// Chains run new-to-old, so the first candidate past the window
			// ends the walk; folding that bound into the loop condition
			// (empty slots decode to -1, below any valid bound) saves a
			// branch per candidate.
			lo := i - lzWindow
			if lo < 0 {
				lo = 0
			}
			// tail4 caches the four bytes of src[i:] ending at offset
			// bestLen; a candidate that beats bestLen must reproduce them,
			// so one word compare filters the chain before the full
			// extension walk. Refreshed only when bestLen grows.
			var tail4 uint32
			cand := int(head[h]) - 1
			for depth := 0; cand >= lo && depth < maxChain; depth++ {
				// Early rejects that cannot change the emitted triple: a
				// candidate whose first four bytes differ cannot reach
				// lzMinMatch (and sub-minimum lengths never decide the
				// result — the first candidate to attain the maximum wins
				// either way), and once a best exists, a longer match must
				// agree with src[i:] on the word ending at offset bestLen.
				if binary.LittleEndian.Uint32(src[cand:]) == cur &&
					(bestLen == 0 || (i+bestLen < len(src) &&
						binary.LittleEndian.Uint32(src[cand+bestLen-3:]) == tail4)) {
					l := matchLen(src, cand, i)
					if l > bestLen {
						bestLen, bestDist = l, i-cand
						if i+bestLen >= len(src) {
							break // provably maximal: no candidate can beat it
						}
						tail4 = binary.LittleEndian.Uint32(src[i+bestLen-3:])
					}
				}
				cand = int(prev[cand]) - 1
			}
			if bestLen >= lzMinMatch {
				litRun := i - litStart
				literals = append(literals, src[litStart:i]...)
				seq = bitstream.AppendUvarint(seq, uint64(litRun))
				seq = bitstream.AppendUvarint(seq, uint64(bestLen))
				seq = bitstream.AppendUvarint(seq, uint64(bestDist))
				// Insert hash entries for the matched region (sparsely for
				// long matches to bound cost).
				end := i + bestLen
				step := 1
				if bestLen > 64 {
					step = 4
				}
				stop := end
				if m := len(src) - lzMinMatch + 1; stop > m {
					stop = m
				}
				for ; i < stop; i += step {
					hh := lzHash(binary.LittleEndian.Uint32(src[i:]))
					prev[i] = head[hh]
					head[hh] = int32(i) + 1
				}
				i = end
				litStart = i
			} else {
				prev[i] = head[h]
				head[h] = int32(i) + 1
				i++
			}
		}
		// Trailing literals.
		if litStart < len(src) {
			run := len(src) - litStart
			literals = append(literals, src[litStart:]...)
			seq = bitstream.AppendUvarint(seq, uint64(run))
			seq = bitstream.AppendUvarint(seq, 0)
			seq = bitstream.AppendUvarint(seq, 0)
		}
	} else if len(src) > 0 {
		literals = append(literals, src...)
		seq = bitstream.AppendUvarint(seq, uint64(len(src)))
		seq = bitstream.AppendUvarint(seq, 0)
		seq = bitstream.AppendUvarint(seq, 0)
	}
	st.literals, st.seq = literals, seq

	// Reserve the output in one step: each Huffman section is bounded by
	// MaxCodeLen/8 bytes per input byte plus a ~0.5 KiB table, so this hint
	// covers all but degenerate cases (append still grows correctly if the
	// bound is ever exceeded), replacing a chain of doubling re-copies.
	if hint := len(literals) + len(seq) + (len(literals)+len(seq))>>1 + 1200; cap(dst)-len(dst) < hint {
		grown := make([]byte, len(dst), len(dst)+hint)
		copy(grown, dst)
		dst = grown
	}
	out := bitstream.AppendUvarint(dst, uint64(len(src)))
	var err error
	out, err = huffman.EncodeBytes(out, literals)
	if err != nil {
		return nil, err
	}
	out, err = huffman.EncodeBytes(out, seq)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// matchLen reports how far the suffixes at a and b (a < b) match, extending
// eight bytes per step; the result is identical to the historical byte loop.
func matchLen(src []byte, a, b int) int {
	n := 0
	for b+n+8 <= len(src) {
		x := binary.LittleEndian.Uint64(src[a+n:]) ^ binary.LittleEndian.Uint64(src[b+n:])
		if x != 0 {
			return n + bits.TrailingZeros64(x)>>3
		}
		n += 8
	}
	for b+n < len(src) && src[a+n] == src[b+n] {
		n++
	}
	return n
}

// lzDecState is the pooled per-call state of Decompress.
type lzDecState struct {
	hs       huffman.DecodeScratch
	br       bitstream.ByteReader
	literals []byte
	seq      []byte
}

var lzDecPool = sync.Pool{New: func() any { return new(lzDecState) }}

// Decompress implements Backend.
func (z LZ) Decompress(src []byte) ([]byte, error) {
	return z.AppendDecompress(nil, src)
}

// DecompressTx implements BudgetedBackend: the stream's declared original
// size and its literal/sequence section lengths are charged against tx
// before being allocated for.
func (z LZ) DecompressTx(src []byte, tx *budget.Tx) ([]byte, error) {
	return z.appendDecompressTx(nil, src, tx)
}

// AppendDecompress appends the decompressed form of src to dst and returns
// the extended slice. With a reused dst of sufficient capacity the
// steady-state allocation count is zero.
func (z LZ) AppendDecompress(dst, src []byte) ([]byte, error) {
	return z.appendDecompressTx(dst, src, nil)
}

func (z LZ) appendDecompressTx(dst, src []byte, tx *budget.Tx) ([]byte, error) {
	st := lzDecPool.Get().(*lzDecState)
	defer lzDecPool.Put(st)
	br := &st.br
	br.Reset(src)
	origSize, err := br.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if origSize > 1<<34 {
		return nil, ErrCorrupt
	}
	// Charge the declared output size before reserving space for it; the
	// section decoders below charge their own declared lengths via tx.
	if err := tx.Reserve(int64(origSize)); err != nil {
		return nil, err
	}
	var literals, seq []byte
	if z.V3 {
		literals, err = st.hs.DecodeBytes2Tx(br, st.literals[:0], tx)
	} else {
		literals, err = st.hs.DecodeBytesTx(br, st.literals[:0], tx)
	}
	if err != nil {
		if errors.Is(err, huffman.ErrByteRange) {
			err = ErrCorrupt
		}
		return nil, err
	}
	st.literals = literals
	if z.V3 {
		seq, err = st.hs.DecodeBytes2Tx(br, st.seq[:0], tx)
	} else {
		seq, err = st.hs.DecodeBytesTx(br, st.seq[:0], tx)
	}
	if err != nil {
		if errors.Is(err, huffman.ErrByteRange) {
			err = ErrCorrupt
		}
		return nil, err
	}
	st.seq = seq

	// Trust origSize only as an upper bound enforced below, not as a blind
	// allocation hint: for plausible expansion ratios reserve the declared
	// size up front (killing the append-regrowth re-copies large blocks used
	// to pay), but cap what a forged header can make us allocate before any
	// payload has justified it.
	base := len(dst)
	capHint := origSize
	if limit := uint64(1<<20) + 32*uint64(len(src)); capHint > limit {
		capHint = limit
	}
	out := dst
	if free := uint64(cap(out) - len(out)); free < capHint {
		grown := make([]byte, len(out), uint64(len(out))+capHint)
		copy(grown, out)
		out = grown
	}
	litPos := 0
	pos := 0
	for pos < len(seq) {
		litRun, k := binary.Uvarint(seq[pos:])
		if k <= 0 {
			return nil, bitstream.ErrShortStream
		}
		pos += k
		mLen, k := binary.Uvarint(seq[pos:])
		if k <= 0 {
			return nil, bitstream.ErrShortStream
		}
		pos += k
		dist, k := binary.Uvarint(seq[pos:])
		if k <= 0 {
			return nil, bitstream.ErrShortStream
		}
		pos += k
		// Reject runs past the declared size before any int conversion: a
		// crafted >=2^63 litRun/mLen pair could overflow the additive guard
		// below (the historical decoder reached a slice-bounds panic on such
		// streams; every non-panicking outcome was ErrCorrupt, which this
		// guard preserves).
		if litRun > origSize || mLen > origSize {
			return nil, ErrCorrupt
		}
		if litPos+int(litRun) > len(literals) {
			return nil, ErrCorrupt
		}
		if uint64(len(out)-base)+litRun+mLen > origSize {
			return nil, ErrCorrupt
		}
		out = append(out, literals[litPos:litPos+int(litRun)]...)
		litPos += int(litRun)
		if mLen > 0 {
			d := int(dist)
			if d <= 0 || d > len(out)-base {
				return nil, ErrCorrupt
			}
			out = appendMatch(out, d, int(mLen))
		}
	}
	if uint64(len(out)-base) != origSize {
		return nil, ErrCorrupt
	}
	return out, nil
}

// appendMatch appends m bytes copied from distance d back in out.
// Non-overlapping matches (d >= m) are a single copy; overlapping ones —
// where the historical loop appended one byte at a time — extend the
// periodic run by doubling chunks, so an m-byte match costs O(log(m/d))
// copies instead of m appends.
func appendMatch(out []byte, d, m int) []byte {
	n := len(out)
	start := n - d
	if d >= m {
		return append(out, out[start:start+m]...)
	}
	end := n + m
	for len(out) < end {
		// out[start:] is periodic with period d, so copying any run of q
		// bytes (q a multiple of d) from the tail stays aligned with the
		// pattern; q grows with the written run, doubling each iteration.
		q := len(out) - start
		q -= q % d
		chunk := q
		if chunk > end-len(out) {
			chunk = end - len(out)
		}
		out = append(out, out[len(out)-q:len(out)-q+chunk]...)
	}
	return out
}
