package lossless

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"github.com/mdz/mdz/internal/bitstream"
	"github.com/mdz/mdz/internal/huffman"
)

// This file keeps the historical allocating LZ implementation verbatim as
// the reference for differential testing: the reworked coder must produce
// byte-identical compressed output and byte/error-identical decompression.

func bytesToInts(b []byte) []int {
	out := make([]int, len(b))
	for i, v := range b {
		out[i] = int(v)
	}
	return out
}

func intsToBytes(v []int) ([]byte, error) {
	out := make([]byte, len(v))
	for i, x := range v {
		if x < 0 || x > 255 {
			return nil, ErrCorrupt
		}
		out[i] = byte(x)
	}
	return out, nil
}

func lzRefMatchLen(src []byte, a, b int) int {
	n := 0
	for b+n < len(src) && src[a+n] == src[b+n] {
		n++
	}
	return n
}

func lzRefHash(b []byte) uint32 {
	v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	return (v * 2654435761) >> (32 - lzHashBits)
}

// lzRefCompress is the historical LZ.Compress.
func lzRefCompress(z LZ, src []byte) ([]byte, error) {
	maxChain := z.MaxChain
	if maxChain <= 0 {
		maxChain = DefaultMaxChain
	}
	var literals []byte
	var seq []byte
	if len(src) >= lzMinMatch {
		head := make([]int32, lzHashSize)
		for i := range head {
			head[i] = -1
		}
		prev := make([]int32, len(src))
		litStart := 0
		i := 0
		for i+lzMinMatch <= len(src) {
			h := lzRefHash(src[i:])
			bestLen, bestDist := 0, 0
			cand := head[h]
			for depth := 0; cand >= 0 && depth < maxChain; depth++ {
				d := i - int(cand)
				if d > lzWindow {
					break
				}
				l := lzRefMatchLen(src, int(cand), i)
				if l > bestLen {
					bestLen, bestDist = l, d
				}
				cand = prev[cand]
			}
			if bestLen >= lzMinMatch {
				litRun := i - litStart
				literals = append(literals, src[litStart:i]...)
				seq = bitstream.AppendUvarint(seq, uint64(litRun))
				seq = bitstream.AppendUvarint(seq, uint64(bestLen))
				seq = bitstream.AppendUvarint(seq, uint64(bestDist))
				end := i + bestLen
				step := 1
				if bestLen > 64 {
					step = 4
				}
				for ; i+lzMinMatch <= len(src) && i < end; i += step {
					hh := lzRefHash(src[i:])
					prev[i] = head[hh]
					head[hh] = int32(i)
				}
				i = end
				litStart = i
			} else {
				prev[i] = head[h]
				head[h] = int32(i)
				i++
			}
		}
		if litStart < len(src) {
			run := len(src) - litStart
			literals = append(literals, src[litStart:]...)
			seq = bitstream.AppendUvarint(seq, uint64(run))
			seq = bitstream.AppendUvarint(seq, 0)
			seq = bitstream.AppendUvarint(seq, 0)
		}
	} else if len(src) > 0 {
		literals = append(literals, src...)
		seq = bitstream.AppendUvarint(seq, uint64(len(src)))
		seq = bitstream.AppendUvarint(seq, 0)
		seq = bitstream.AppendUvarint(seq, 0)
	}

	out := bitstream.AppendUvarint(nil, uint64(len(src)))
	var err error
	out, err = huffman.EncodeInts(out, bytesToInts(literals))
	if err != nil {
		return nil, err
	}
	out, err = huffman.EncodeInts(out, bytesToInts(seq))
	if err != nil {
		return nil, err
	}
	return out, nil
}

// lzRefDecompress is the historical LZ.Decompress. On certain crafted
// streams (>=2^63 run lengths slipping past the additive overflow) it
// panics on a slice bound; callers recover and treat that as "must error".
func lzRefDecompress(src []byte) ([]byte, error) {
	br := bitstream.NewByteReader(src)
	origSize, err := br.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if origSize > 1<<34 {
		return nil, ErrCorrupt
	}
	litInts, err := huffman.DecodeInts(br)
	if err != nil {
		return nil, err
	}
	literals, err := intsToBytes(litInts)
	if err != nil {
		return nil, err
	}
	seqInts, err := huffman.DecodeInts(br)
	if err != nil {
		return nil, err
	}
	seq, err := intsToBytes(seqInts)
	if err != nil {
		return nil, err
	}

	capHint := origSize
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	out := make([]byte, 0, capHint)
	sr := bitstream.NewByteReader(seq)
	litPos := 0
	for sr.Len() > 0 {
		litRun, err := sr.ReadUvarint()
		if err != nil {
			return nil, err
		}
		mLen, err := sr.ReadUvarint()
		if err != nil {
			return nil, err
		}
		dist, err := sr.ReadUvarint()
		if err != nil {
			return nil, err
		}
		if litPos+int(litRun) > len(literals) {
			return nil, ErrCorrupt
		}
		if uint64(len(out))+litRun+mLen > origSize {
			return nil, ErrCorrupt
		}
		out = append(out, literals[litPos:litPos+int(litRun)]...)
		litPos += int(litRun)
		if mLen > 0 {
			d := int(dist)
			if d <= 0 || d > len(out) {
				return nil, ErrCorrupt
			}
			start := len(out) - d
			for k := 0; k < int(mLen); k++ {
				out = append(out, out[start+k])
			}
		}
	}
	if uint64(len(out)) != origSize {
		return nil, ErrCorrupt
	}
	return out, nil
}

// refDecompressRecover runs the historical decoder, converting its known
// crafted-stream panic into a sentinel.
var errRefPanic = errors.New("reference decoder panicked")

func refDecompressRecover(src []byte) (out []byte, err error) {
	defer func() {
		if recover() != nil {
			out, err = nil, errRefPanic
		}
	}()
	return lzRefDecompress(src)
}

// checkLZDifferential asserts old-vs-new equivalence on one input: identical
// compressed bytes, identical decompressed bytes, identical errors (with the
// reference panic accepted as "new must error").
func checkLZDifferential(t *testing.T, z LZ, in []byte) {
	t.Helper()
	newC, newErr := z.Compress(in)
	refC, refErr := lzRefCompress(z, in)
	if (newErr == nil) != (refErr == nil) {
		t.Fatalf("compress err: %v (new) vs %v (ref)", newErr, refErr)
	}
	if !bytes.Equal(newC, refC) {
		t.Fatalf("compressed bytes diverge: %d vs %d bytes", len(newC), len(refC))
	}
	checkLZDecompressDifferential(t, z, newC)
}

func checkLZDecompressDifferential(t *testing.T, z LZ, stream []byte) {
	t.Helper()
	newOut, newErr := z.Decompress(stream)
	refOut, refErr := refDecompressRecover(stream)
	if errors.Is(refErr, errRefPanic) {
		if newErr == nil {
			t.Fatalf("reference panicked but new decoder accepted the stream (%d bytes out)", len(newOut))
		}
		return
	}
	if !errors.Is(newErr, refErr) || !errors.Is(refErr, newErr) {
		t.Fatalf("decompress err: %v (new) vs %v (ref)", newErr, refErr)
	}
	if newErr == nil && !bytes.Equal(newOut, refOut) {
		t.Fatalf("decompressed bytes diverge: %d vs %d bytes", len(newOut), len(refOut))
	}
}

// TestLZDifferentialSeeded is the always-on slice of the differential fuzz:
// structured inputs across chain depths, plus corrupted streams.
func TestLZDifferentialSeeded(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	inputs := [][]byte{
		nil,
		{},
		{1},
		{1, 2, 3},
		{1, 2, 3, 4},
		bytes.Repeat([]byte{7}, 300),
		bytes.Repeat([]byte("abcd"), 200),
		bytes.Repeat([]byte("molecular dynamics "), 64),
		[]byte("abcabcabcXabcabcabc"),
	}
	random := make([]byte, 8192)
	rng.Read(random)
	inputs = append(inputs, random)
	skewed := make([]byte, 20000)
	for i := range skewed {
		if rng.Float64() < 0.8 {
			skewed[i] = 0
		} else {
			skewed[i] = byte(rng.Intn(16))
		}
	}
	inputs = append(inputs, skewed)
	// MD-pipeline-like payload: Huffman-coded quantization residuals.
	inputs = append(inputs, FloatsToBytes(mdLikeFloats(4096, 11)))

	for _, chain := range []int{0, 1, 4, 32, 256} {
		z := LZ{MaxChain: chain}
		for i, in := range inputs {
			t.Run("", func(t *testing.T) {
				checkLZDifferential(t, z, in)
			})
			_ = i
		}
	}
	// Corrupted/truncated streams must fail identically.
	z := LZ{}
	comp, _ := z.Compress(bytes.Repeat([]byte("xylophone"), 300))
	for cut := 0; cut < len(comp); cut += 1 + len(comp)/97 {
		checkLZDecompressDifferential(t, z, comp[:cut])
	}
	for trial := 0; trial < 200; trial++ {
		mut := append([]byte(nil), comp...)
		for k := 0; k < 1+trial%4; k++ {
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		}
		checkLZDecompressDifferential(t, z, mut)
	}
}

// FuzzLZDifferential fuzzes new-vs-old over both directions: arbitrary
// inputs through Compress (bytes must match exactly, and the result must
// round-trip), and the same bytes reinterpreted as a compressed stream
// through Decompress (identical output and identical error behavior).
func FuzzLZDifferential(f *testing.F) {
	f.Add([]byte("seed data seed data seed data"), 0)
	f.Add(bytes.Repeat([]byte{1, 2, 3}, 50), 32)
	f.Add([]byte{}, 1)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}, 0)
	f.Fuzz(func(t *testing.T, in []byte, chain int) {
		if chain < 0 || chain > 512 {
			chain = 0
		}
		z := LZ{MaxChain: chain}
		checkLZDifferential(t, z, in)
		checkLZDecompressDifferential(t, z, in)
	})
}
