package lossless

import (
	"encoding/binary"
	"math"

	"github.com/mdz/mdz/internal/bitstream"
)

// FPC reimplements the FPC lossless floating-point compressor (Burtscher &
// Ratanaworabhan): two hash-based value predictors — an FCM (finite context
// method) and a DFCM (differential FCM) — predict each double's bit pattern;
// the better prediction is XORed with the true value and only the non-zero
// tail bytes are stored, preceded by a selector bit and a leading-zero-byte
// count.
type FPC struct {
	// TableBits sets each predictor's hash-table size to 1<<TableBits
	// entries; 0 means 16 (512 KiB per table).
	TableBits uint
}

// Name implements FloatCompressor.
func (FPC) Name() string { return "fpc" }

func (f FPC) tableBits() uint {
	if f.TableBits == 0 {
		return 16
	}
	return f.TableBits
}

type fpcState struct {
	fcm, dfcm    []uint64
	fhash, dhash uint64
	last         uint64
	mask         uint64
}

func newFPCState(bits uint) *fpcState {
	return &fpcState{
		fcm:  make([]uint64, 1<<bits),
		dfcm: make([]uint64, 1<<bits),
		mask: (1 << bits) - 1,
	}
}

// predict returns the two candidate predictions for the next value.
func (s *fpcState) predict() (fcmPred, dfcmPred uint64) {
	return s.fcm[s.fhash], s.dfcm[s.dhash] + s.last
}

// update folds the actual value into both predictor tables.
func (s *fpcState) update(actual uint64) {
	s.fcm[s.fhash] = actual
	s.fhash = ((s.fhash << 6) ^ (actual >> 48)) & s.mask
	delta := actual - s.last
	s.dfcm[s.dhash] = delta
	s.dhash = ((s.dhash << 2) ^ (delta >> 40)) & s.mask
	s.last = actual
}

// CompressFloats implements FloatCompressor.
func (f FPC) CompressFloats(src []float64) ([]byte, error) {
	s := newFPCState(f.tableBits())
	head := bitstream.NewWriter(len(src)) // selector + LZB counts
	var tail []byte                       // residual bytes
	for _, v := range src {
		bits := math.Float64bits(v)
		p1, p2 := s.predict()
		x1, x2 := bits^p1, bits^p2
		sel := uint(0)
		x := x1
		if leadingZeroBytes(x2) > leadingZeroBytes(x1) {
			sel, x = 1, x2
		}
		lzb := leadingZeroBytes(x)
		head.WriteBit(sel)
		head.WriteBits(uint64(lzb), 4)
		var scratch [8]byte
		binary.BigEndian.PutUint64(scratch[:], x)
		tail = append(tail, scratch[lzb:]...)
		s.update(bits)
	}
	out := bitstream.AppendUvarint(nil, uint64(len(src)))
	out = append(out, byte(f.tableBits()))
	out = bitstream.AppendSection(out, head.Bytes())
	out = bitstream.AppendSection(out, tail)
	return out, nil
}

// DecompressFloats implements FloatCompressor.
func (f FPC) DecompressFloats(src []byte) ([]float64, error) {
	br := bitstream.NewByteReader(src)
	n, err := br.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if n > 1<<32 {
		return nil, ErrCorrupt
	}
	tb, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if tb == 0 || tb > 28 {
		return nil, ErrCorrupt
	}
	headBytes, err := br.ReadSection()
	if err != nil {
		return nil, err
	}
	tail, err := br.ReadSection()
	if err != nil {
		return nil, err
	}
	head := bitstream.NewReader(headBytes)
	s := newFPCState(uint(tb))
	out := make([]float64, n)
	tpos := 0
	for i := range out {
		sel, err := head.ReadBit()
		if err != nil {
			return nil, err
		}
		lzb64, err := head.ReadBits(4)
		if err != nil {
			return nil, err
		}
		lzb := int(lzb64)
		if lzb > 8 {
			return nil, ErrCorrupt
		}
		nb := 8 - lzb
		if tpos+nb > len(tail) {
			return nil, ErrCorrupt
		}
		var scratch [8]byte
		copy(scratch[lzb:], tail[tpos:tpos+nb])
		tpos += nb
		x := binary.BigEndian.Uint64(scratch[:])
		p1, p2 := s.predict()
		var bits uint64
		if sel == 0 {
			bits = x ^ p1
		} else {
			bits = x ^ p2
		}
		out[i] = math.Float64frombits(bits)
		s.update(bits)
	}
	return out, nil
}

func leadingZeroBytes(x uint64) int {
	n := 0
	for n < 8 && (x>>(56-8*uint(n)))&0xFF == 0 {
		n++
	}
	return n
}
