//go:build !race

package lossless

const raceEnabled = false
