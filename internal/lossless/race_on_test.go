//go:build race

package lossless

// raceEnabled reports whether the race detector is active; allocation-count
// tests are skipped under it (the detector drops sync.Pool items at random
// and instruments allocations).
const raceEnabled = true
