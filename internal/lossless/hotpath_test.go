package lossless

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestLZSteadyStateAllocs pins the pooling contract of the LZ hot path: with
// warmed pools and a reused destination of sufficient capacity, the Append
// variants allocate nothing at all, and Compress allocates only its result.
func TestLZSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	in := huffLikeBytes(1<<16, 11)
	z := LZ{}
	comp, err := z.Compress(in)
	if err != nil {
		t.Fatal(err)
	}

	dst := make([]byte, 0, 2*len(in))
	// Warm every pool (match finder, Huffman scratch, decode scratch).
	for i := 0; i < 3; i++ {
		if dst, err = z.AppendCompress(dst[:0], in); err != nil {
			t.Fatal(err)
		}
	}
	if got := testing.AllocsPerRun(50, func() {
		dst, err = z.AppendCompress(dst[:0], in)
	}); err != nil || got != 0 {
		t.Errorf("AppendCompress: %v allocs/op (err %v), want 0", got, err)
	}

	out := make([]byte, 0, len(in)+64)
	for i := 0; i < 3; i++ {
		if out, err = z.AppendDecompress(out[:0], comp); err != nil {
			t.Fatal(err)
		}
	}
	if got := testing.AllocsPerRun(50, func() {
		out, err = z.AppendDecompress(out[:0], comp)
	}); err != nil || got != 0 {
		t.Errorf("AppendDecompress: %v allocs/op (err %v), want 0", got, err)
	}
	if !bytes.Equal(out, in) {
		t.Fatal("round trip mismatch")
	}

	// Compress proper may allocate only the returned buffer (one make).
	if got := testing.AllocsPerRun(50, func() {
		_, err = z.Compress(in)
	}); err != nil || got > 1 {
		t.Errorf("Compress: %v allocs/op (err %v), want <= 1", got, err)
	}
}

// TestLZDecompressLargeBlockAllocs is the regression test for the capHint
// sizing in AppendDecompress: a multi-megabyte block must reserve its output
// up front from the declared size instead of growing through a chain of
// doubling re-copies.
func TestLZDecompressLargeBlockAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	in := huffLikeBytes(4<<20, 7)
	z := LZ{}
	comp, err := z.Compress(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := z.Decompress(comp); err != nil { // warm pools
		t.Fatal(err)
	}
	var out []byte
	got := testing.AllocsPerRun(5, func() {
		out, err = z.Decompress(comp)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, in) {
		t.Fatal("round trip mismatch")
	}
	// One alloc for the output; a couple more tolerated for pool churn.
	if got > 3 {
		t.Errorf("Decompress of %d bytes: %v allocs/op, want <= 3 (output reserved up front)", len(in), got)
	}
}

// naiveAppendMatch is the historical byte-at-a-time overlap copy.
func naiveAppendMatch(out []byte, d, m int) []byte {
	for j := 0; j < m; j++ {
		out = append(out, out[len(out)-d])
	}
	return out
}

// TestAppendMatchExhaustive checks the doubling-chunk overlap copy against
// the byte-at-a-time reference over every small (distance, length) pair —
// the whole region where the periodic-extension logic has edge cases.
func TestAppendMatchExhaustive(t *testing.T) {
	for d := 1; d <= 16; d++ {
		for m := 1; m <= 64; m++ {
			seed := make([]byte, d+3)
			for i := range seed {
				seed[i] = byte(i*37 + d*5 + 1)
			}
			got := appendMatch(append([]byte(nil), seed...), d, m)
			want := naiveAppendMatch(append([]byte(nil), seed...), d, m)
			if !bytes.Equal(got, want) {
				t.Fatalf("d=%d m=%d: got %x want %x", d, m, got, want)
			}
		}
	}
}

// TestPooledWritersRepeatedUse exercises the flate/zlib writer pools: reused
// writers must keep producing streams that decompress to the input, and the
// pools must be safe under concurrent Compress calls.
func TestPooledWritersRepeatedUse(t *testing.T) {
	for _, b := range []Backend{Flate{Level: 6}, Flate{Level: 9, Label: "brotli*"}, Zlib{}} {
		t.Run(b.Name(), func(t *testing.T) {
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 8; i++ {
						in := huffLikeBytes(1<<12+g*100+i, int64(g*100+i))
						comp, err := b.Compress(in)
						if err != nil {
							t.Errorf("compress: %v", err)
							return
						}
						out, err := b.Decompress(comp)
						if err != nil {
							t.Errorf("decompress: %v", err)
							return
						}
						if !bytes.Equal(out, in) {
							t.Error("round trip mismatch")
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

// The pooled-writer benchmarks: allocs/op is the headline number (an
// unpooled flate.NewWriter builds ~1 MiB of match-finder state per call).
func BenchmarkFlateCompress(b *testing.B) {
	for _, level := range []int{6, 9} {
		b.Run(fmt.Sprintf("level%d", level), func(b *testing.B) {
			in := huffLikeBytes(1<<16, 3)
			f := Flate{Level: level}
			b.SetBytes(int64(len(in)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.Compress(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkZlibCompress(b *testing.B) {
	in := huffLikeBytes(1<<16, 3)
	z := Zlib{}
	b.SetBytes(int64(len(in)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := z.Compress(in); err != nil {
			b.Fatal(err)
		}
	}
}
