// Package lossless provides the dictionary/lossless coding stage of the
// compression pipeline and the six lossless baseline compressors evaluated
// in the paper's Table V.
//
// Two interfaces are exposed: Backend compresses raw byte streams (the final
// stage of the SZ pipeline, where the paper uses Zstd), and FloatCompressor
// compresses float64 arrays directly (the lossless baselines of Table V).
//
// Substitutions relative to the paper (stdlib-only constraint):
//
//   - Zstd   → LZ, a from-scratch LZ77 + canonical-Huffman codec (same
//     dictionary+entropy class, see lz.go).
//   - Zlib   → stdlib compress/zlib (the real algorithm).
//   - Brotli → stdlib DEFLATE at maximum compression (same general-purpose
//     LZ class; Table V only requires the ~1-2x regime).
//   - FPC    → full FCM/DFCM reimplementation (fpc.go).
//   - fpzip  → predictive monotone-integer residual coder (fpzip.go).
//   - ZFP    → 1-D block-transform codec with reversible lifting (zfp.go).
package lossless

import (
	"bytes"
	"compress/flate"
	"compress/zlib"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"github.com/mdz/mdz/internal/budget"
)

// ErrCorrupt is returned when a compressed stream is malformed.
var ErrCorrupt = errors.New("lossless: corrupt stream")

// Backend compresses and decompresses byte streams. Implementations must be
// safe for concurrent use by multiple goroutines.
type Backend interface {
	// Name identifies the backend in benchmark reports.
	Name() string
	// Compress returns an encoded copy of src.
	Compress(src []byte) ([]byte, error)
	// Decompress inverts Compress.
	Decompress(src []byte) ([]byte, error)
}

// BudgetedBackend is the optional extension of Backend implemented by
// codecs that can charge a stream's claimed decode sizes against a budget
// transaction before allocating for them. DecompressTx with a nil tx must
// behave exactly like Decompress. Callers discover it by type assertion
// and fall back to Decompress (ungoverned) when it is absent.
type BudgetedBackend interface {
	Backend
	DecompressTx(src []byte, tx *budget.Tx) ([]byte, error)
}

// DecompressTx dispatches to b's budget-aware decompressor when it has
// one, otherwise to plain Decompress. A nil tx always takes the plain
// path's semantics.
func DecompressTx(b Backend, src []byte, tx *budget.Tx) ([]byte, error) {
	if bb, ok := b.(BudgetedBackend); ok {
		return bb.DecompressTx(src, tx)
	}
	return b.Decompress(src)
}

// FloatCompressor compresses float64 arrays losslessly.
type FloatCompressor interface {
	Name() string
	CompressFloats(src []float64) ([]byte, error)
	DecompressFloats(src []byte) ([]float64, error)
}

// Raw is the identity Backend, useful for isolating earlier pipeline stages
// in benchmarks.
type Raw struct{}

// Name implements Backend.
func (Raw) Name() string { return "raw" }

// Compress implements Backend (identity).
func (Raw) Compress(src []byte) ([]byte, error) {
	out := make([]byte, len(src))
	copy(out, src)
	return out, nil
}

// Decompress implements Backend (identity).
func (Raw) Decompress(src []byte) ([]byte, error) {
	out := make([]byte, len(src))
	copy(out, src)
	return out, nil
}

// Flate is a DEFLATE Backend at a configurable level. Level 9 serves as the
// Brotli stand-in in Table V; level 6 is the general-purpose default.
type Flate struct {
	// Level is a compress/flate level (1-9); 0 means DefaultCompression.
	Level int
	// Label overrides Name when non-empty (e.g. "brotli*" for the Table V
	// stand-in row).
	Label string
}

// Name implements Backend.
func (f Flate) Name() string {
	if f.Label != "" {
		return f.Label
	}
	return fmt.Sprintf("flate-%d", f.level())
}

func (f Flate) level() int {
	if f.Level == 0 {
		return flate.DefaultCompression
	}
	return f.Level
}

// flatePools caches one flate.Writer pool per compression level (index =
// level - flate.HuffmanOnly, the smallest valid level): NewWriter builds
// ~1 MiB of match-finder state per call, which dwarfs the actual DEFLATE
// work on pipeline-sized payloads, while Reset reuses it for free.
var flatePools [flate.BestCompression - flate.HuffmanOnly + 1]sync.Pool

func flateWriter(buf *bytes.Buffer, level int) (*flate.Writer, error) {
	idx := level - flate.HuffmanOnly
	if idx < 0 || idx >= len(flatePools) {
		return flate.NewWriter(buf, level) // out of range: let flate reject it
	}
	if w, _ := flatePools[idx].Get().(*flate.Writer); w != nil {
		w.Reset(buf)
		return w, nil
	}
	return flate.NewWriter(buf, level)
}

func putFlateWriter(w *flate.Writer, level int) {
	if idx := level - flate.HuffmanOnly; idx >= 0 && idx < len(flatePools) {
		flatePools[idx].Put(w)
	}
}

// Compress implements Backend.
func (f Flate) Compress(src []byte) ([]byte, error) {
	var buf bytes.Buffer
	level := f.level()
	w, err := flateWriter(&buf, level)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(src); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	putFlateWriter(w, level)
	return buf.Bytes(), nil
}

// Decompress implements Backend.
func (f Flate) Decompress(src []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(src))
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return out, nil
}

// Zlib is the stdlib zlib Backend (the paper's Zlib baseline, exactly).
type Zlib struct{}

// Name implements Backend.
func (Zlib) Name() string { return "zlib" }

// zlibPool caches zlib.Writers (default level) across Compress calls; like
// flate, construction cost exceeds the compression work on small payloads.
var zlibPool sync.Pool

// Compress implements Backend.
func (Zlib) Compress(src []byte) ([]byte, error) {
	var buf bytes.Buffer
	w, _ := zlibPool.Get().(*zlib.Writer)
	if w != nil {
		w.Reset(&buf)
	} else {
		w = zlib.NewWriter(&buf)
	}
	if _, err := w.Write(src); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	zlibPool.Put(w)
	return buf.Bytes(), nil
}

// Decompress implements Backend.
func (Zlib) Decompress(src []byte) ([]byte, error) {
	r, err := zlib.NewReader(bytes.NewReader(src))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return out, nil
}

// FloatAdapter lifts a byte Backend to a FloatCompressor by serializing the
// float64 array little-endian. This is how the general-purpose compressors
// (Zstd/Zlib/Brotli) consume floating-point data in Table V.
type FloatAdapter struct {
	B Backend
}

// Name implements FloatCompressor.
func (a FloatAdapter) Name() string { return a.B.Name() }

// CompressFloats implements FloatCompressor.
func (a FloatAdapter) CompressFloats(src []float64) ([]byte, error) {
	return a.B.Compress(FloatsToBytes(src))
}

// DecompressFloats implements FloatCompressor.
func (a FloatAdapter) DecompressFloats(src []byte) ([]float64, error) {
	raw, err := a.B.Decompress(src)
	if err != nil {
		return nil, err
	}
	return BytesToFloats(raw)
}

// FloatsToBytes serializes values little-endian, 8 bytes each.
func FloatsToBytes(values []float64) []byte {
	out := make([]byte, 8*len(values))
	for i, v := range values {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// BytesToFloats inverts FloatsToBytes.
func BytesToFloats(raw []byte) ([]float64, error) {
	if len(raw)%8 != 0 {
		return nil, ErrCorrupt
	}
	out := make([]float64, len(raw)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out, nil
}
