package lossless

import (
	"bytes"
	"math/rand"
	"testing"
)

func lzV3Corpus(rng *rand.Rand) [][]byte {
	mk := func(n int, gen func(i int) byte) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = gen(i)
		}
		return b
	}
	long := make([]byte, 600<<10) // past the 2^17 hash-table threshold
	for i := range long {
		long[i] = byte(rng.Intn(7) * 40)
	}
	huge := make([]byte, 3<<20) // past the 2^18 threshold
	for i := range huge {
		if i%97 == 0 {
			huge[i] = byte(rng.Intn(256))
		} else {
			huge[i] = huge[i%7]
		}
	}
	return [][]byte{
		nil,
		{},
		{42},
		[]byte("abc"),
		[]byte("abcdefg"), // below the 8-byte finder window: all literals
		[]byte("abcdabcdabcdabcdabcd"),
		bytes.Repeat([]byte{0}, 100000), // long overlapping match
		bytes.Repeat([]byte("the quick brown fox "), 500),
		mk(5000, func(i int) byte { return byte(i * i >> 3) }),
		mk(65536, func(i int) byte { return byte(rng.Intn(4)) }),
		long,
		huge,
	}
}

func TestLZV3RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	z := LZ{V3: true}
	var dst, out []byte
	for ci, src := range lzV3Corpus(rng) {
		enc, err := z.AppendCompress(dst[:0], src)
		if err != nil {
			t.Fatalf("case %d: compress: %v", ci, err)
		}
		dec, err := z.AppendDecompress(out[:0], enc)
		if err != nil {
			t.Fatalf("case %d: decompress: %v", ci, err)
		}
		if !bytes.Equal(dec, src) {
			t.Fatalf("case %d: round trip mismatch (%d bytes in, %d out)", ci, len(src), len(dec))
		}
		dst, out = enc, dec
	}
}

// TestLZV3Deterministic pins that repeated compression of the same input
// through pooled state yields identical bytes.
func TestLZV3Deterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	src := make([]byte, 200000)
	for i := range src {
		src[i] = byte(rng.Intn(17) * 15)
	}
	z := LZ{V3: true}
	first, err := z.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		again, err := z.Compress(src)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("iteration %d: nondeterministic output", k)
		}
	}
}

// TestLZV3RatioNotWorse sanity-checks that lazy matching plus dual-lane
// sections do not cost meaningful ratio against v2 on compressible data.
func TestLZV3RatioNotWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	src := make([]byte, 1<<20)
	for i := range src {
		if i < 8 || rng.Intn(20) == 0 {
			src[i] = byte(rng.Intn(256))
		} else {
			src[i] = src[i-rng.Intn(3)-5]
		}
	}
	v2, err := LZ{}.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	v3, err := LZ{V3: true}.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	// Allow a small constant for per-section overhead, but v3 should be in
	// the same ballpark or better.
	if len(v3) > len(v2)+len(v2)/20+256 {
		t.Fatalf("v3 ratio regressed: v2=%d bytes v3=%d bytes", len(v2), len(v3))
	}
	t.Logf("v2=%d v3=%d (input %d)", len(v2), len(v3), len(src))
}

func TestLZV3CorruptInput(t *testing.T) {
	z := LZ{V3: true}
	src := bytes.Repeat([]byte("payload payload "), 1000)
	enc, err := z.Compress(src)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(enc); cut += 13 {
		if _, err := z.Decompress(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
	// Flip bits across the stream; decode must error or round-trip-fail
	// gracefully, never panic.
	for off := 0; off < len(enc); off += 31 {
		mut := append([]byte(nil), enc...)
		mut[off] ^= 0x10
		dec, err := z.Decompress(mut)
		if err == nil && len(dec) != len(src) {
			t.Fatalf("offset %d: silent wrong-length success", off)
		}
	}
}

// FuzzLZV3RoundTrip checks v3 compress/decompress identity and that v2 and
// v3 reconstruct the same bytes from the same input.
func FuzzLZV3RoundTrip(f *testing.F) {
	f.Add([]byte("seed seed seed seed"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{9, 9, 9, 9, 9, 1}, 64))
	f.Fuzz(func(t *testing.T, src []byte) {
		z3 := LZ{V3: true}
		enc3, err := z3.Compress(src)
		if err != nil {
			t.Fatal(err)
		}
		dec3, err := z3.Decompress(enc3)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dec3, src) {
			t.Fatal("v3 round trip mismatch")
		}
		enc2, err := LZ{}.Compress(src)
		if err != nil {
			t.Fatal(err)
		}
		dec2, err := LZ{}.Decompress(enc2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dec2, dec3) {
			t.Fatal("v2 and v3 reconstructions diverge")
		}
	})
}
