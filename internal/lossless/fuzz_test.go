package lossless

import (
	"bytes"
	"testing"
)

// FuzzLZDecompress must never panic or hang on arbitrary input.
func FuzzLZDecompress(f *testing.F) {
	z := LZ{}
	seed, _ := z.Compress([]byte("seed data seed data seed data"))
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, in []byte) {
		out, err := z.Decompress(in)
		if err == nil && len(out) > 1<<26 {
			t.Fatalf("suspiciously large expansion: %d bytes", len(out))
		}
	})
}

// FuzzLZRoundTrip: compress-then-decompress must be the identity.
func FuzzLZRoundTrip(f *testing.F) {
	f.Add([]byte("hello hello hello"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{1, 2, 3}, 100))
	z := LZ{}
	f.Fuzz(func(t *testing.T, in []byte) {
		comp, err := z.Compress(in)
		if err != nil {
			t.Fatal(err)
		}
		out, err := z.Decompress(comp)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, in) {
			t.Fatalf("round trip mismatch: %d in, %d out", len(in), len(out))
		}
	})
}

// FuzzFPCDecompress exercises the FPC decoder on arbitrary bytes.
func FuzzFPCDecompress(f *testing.F) {
	seed, _ := FPC{}.CompressFloats([]float64{1, 2, 3})
	f.Add(seed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		out, _ := (FPC{}).DecompressFloats(in)
		if len(out) > 1<<24 {
			t.Fatalf("oversized output %d", len(out))
		}
	})
}

// FuzzZFPDecompress exercises the ZFP decoder on arbitrary bytes.
func FuzzZFPDecompress(f *testing.F) {
	seed, _ := ZFP{}.CompressFloats([]float64{1.5, -2.25, 3, 4})
	f.Add(seed)
	f.Fuzz(func(t *testing.T, in []byte) {
		out, _ := (ZFP{}).DecompressFloats(in)
		if len(out) > 1<<24 {
			t.Fatalf("oversized output %d", len(out))
		}
	})
}
