package lossless

import (
	"time"

	"github.com/mdz/mdz/internal/budget"
)

// Timed decorates a Backend with per-call observation hooks, letting the
// pipeline's telemetry layer attribute wall time and byte flow to the
// lossless stage without the backend implementations knowing about
// instrumentation. Nil hooks are skipped, and a Timed wrapper is as
// concurrency-safe as the backend it wraps (hooks must be safe for
// concurrent calls — telemetry instruments are).
type Timed struct {
	B Backend
	// OnCompress, if non-nil, observes every Compress call with its wall
	// time and input/output sizes.
	OnCompress func(d time.Duration, in, out int)
	// OnDecompress is the Decompress counterpart.
	OnDecompress func(d time.Duration, in, out int)
}

// Name implements Backend, delegating to the wrapped backend.
func (t Timed) Name() string { return t.B.Name() }

// Compress implements Backend.
func (t Timed) Compress(src []byte) ([]byte, error) {
	if t.OnCompress == nil {
		return t.B.Compress(src)
	}
	t0 := time.Now()
	out, err := t.B.Compress(src)
	t.OnCompress(time.Since(t0), len(src), len(out))
	return out, err
}

// Decompress implements Backend.
func (t Timed) Decompress(src []byte) ([]byte, error) {
	if t.OnDecompress == nil {
		return t.B.Decompress(src)
	}
	t0 := time.Now()
	out, err := t.B.Decompress(src)
	t.OnDecompress(time.Since(t0), len(src), len(out))
	return out, err
}

// DecompressTx implements BudgetedBackend, forwarding the transaction to
// the wrapped backend when it is budget-aware (falling back to plain
// Decompress otherwise) so a Timed decoration never silently strips the
// memory governor.
func (t Timed) DecompressTx(src []byte, tx *budget.Tx) ([]byte, error) {
	if t.OnDecompress == nil {
		return DecompressTx(t.B, src, tx)
	}
	t0 := time.Now()
	out, err := DecompressTx(t.B, src, tx)
	t.OnDecompress(time.Since(t0), len(src), len(out))
	return out, err
}
