package lossless

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func backends() []Backend {
	return []Backend{Raw{}, Flate{Level: 6}, Flate{Level: 9, Label: "brotli*"}, Zlib{}, LZ{}}
}

func floatCompressors() []FloatCompressor {
	return []FloatCompressor{
		FloatAdapter{B: LZ{}},
		FloatAdapter{B: Zlib{}},
		FloatAdapter{B: Flate{Level: 9}},
		FPC{},
		FPZip{},
		ZFP{},
	}
}

func TestBackendRoundTrip(t *testing.T) {
	inputs := [][]byte{
		nil,
		{},
		{0},
		[]byte("a"),
		[]byte("abcabcabcabcabcabcabcabc"),
		bytes.Repeat([]byte{0x55}, 10000),
	}
	rng := rand.New(rand.NewSource(1))
	random := make([]byte, 4096)
	rng.Read(random)
	inputs = append(inputs, random)
	// Realistic pipeline payload: skewed Huffman output bytes.
	skewed := make([]byte, 50000)
	for i := range skewed {
		if rng.Float64() < 0.8 {
			skewed[i] = 0
		} else {
			skewed[i] = byte(rng.Intn(16))
		}
	}
	inputs = append(inputs, skewed)

	for _, b := range backends() {
		for i, in := range inputs {
			comp, err := b.Compress(in)
			if err != nil {
				t.Fatalf("%s input %d: compress: %v", b.Name(), i, err)
			}
			out, err := b.Decompress(comp)
			if err != nil {
				t.Fatalf("%s input %d: decompress: %v", b.Name(), i, err)
			}
			if !bytes.Equal(out, in) {
				t.Fatalf("%s input %d: round trip mismatch (len in=%d out=%d)", b.Name(), i, len(in), len(out))
			}
		}
	}
}

func TestLZCompressesRepetitive(t *testing.T) {
	in := bytes.Repeat([]byte("molecular dynamics "), 1000)
	comp, err := LZ{}.Compress(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) >= len(in)/10 {
		t.Errorf("LZ on repetitive input: %d -> %d, expected >10x", len(in), len(comp))
	}
}

func TestLZQuickRoundTrip(t *testing.T) {
	z := LZ{}
	f := func(in []byte) bool {
		comp, err := z.Compress(in)
		if err != nil {
			return false
		}
		out, err := z.Decompress(comp)
		if err != nil {
			return false
		}
		return bytes.Equal(out, in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLZOverlappingMatch(t *testing.T) {
	// RLE-style input forces overlapping copies (dist < matchLen).
	in := append([]byte{1, 2, 3, 4}, bytes.Repeat([]byte{1, 2, 3, 4}, 100)...)
	z := LZ{}
	comp, err := z.Compress(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := z.Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, in) {
		t.Fatal("overlapping-match round trip failed")
	}
}

func TestLZCorrupt(t *testing.T) {
	z := LZ{}
	comp, _ := z.Compress(bytes.Repeat([]byte("xy"), 500))
	for _, cut := range []int{0, 1, len(comp) / 2, len(comp) - 1} {
		if _, err := z.Decompress(comp[:cut]); err == nil {
			t.Errorf("decompress of %d-byte prefix should fail", cut)
		}
	}
}

func mdLikeFloats(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	x := 10.0
	for i := range out {
		x += rng.NormFloat64() * 0.01
		out[i] = x
	}
	return out
}

func TestFloatCompressorsRoundTrip(t *testing.T) {
	inputs := [][]float64{
		nil,
		{},
		{0},
		{1.5, -2.25, 3.125},
		{math.Pi, math.E, math.Sqrt2, math.Ln2, -math.Pi},
		mdLikeFloats(5000, 7),
		{math.Inf(1), math.Inf(-1), 0, -0.0, math.MaxFloat64, math.SmallestNonzeroFloat64},
	}
	for _, fc := range floatCompressors() {
		for i, in := range inputs {
			comp, err := fc.CompressFloats(in)
			if err != nil {
				t.Fatalf("%s input %d: compress: %v", fc.Name(), i, err)
			}
			out, err := fc.DecompressFloats(comp)
			if err != nil {
				t.Fatalf("%s input %d: decompress: %v", fc.Name(), i, err)
			}
			if len(out) != len(in) {
				t.Fatalf("%s input %d: len %d != %d", fc.Name(), i, len(out), len(in))
			}
			for j := range in {
				if math.Float64bits(out[j]) != math.Float64bits(in[j]) {
					t.Fatalf("%s input %d elem %d: %v != %v", fc.Name(), i, j, out[j], in[j])
				}
			}
		}
	}
}

func TestFloatCompressorsNaN(t *testing.T) {
	in := []float64{1, math.NaN(), 3}
	for _, fc := range floatCompressors() {
		comp, err := fc.CompressFloats(in)
		if err != nil {
			t.Fatalf("%s: %v", fc.Name(), err)
		}
		out, err := fc.DecompressFloats(comp)
		if err != nil {
			t.Fatalf("%s: %v", fc.Name(), err)
		}
		if !math.IsNaN(out[1]) || out[0] != 1 || out[2] != 3 {
			t.Errorf("%s: NaN round trip: %v", fc.Name(), out)
		}
	}
}

func TestFloatQuickRoundTrip(t *testing.T) {
	for _, fc := range []FloatCompressor{FPC{}, FPZip{}, ZFP{}} {
		fc := fc
		f := func(in []float64) bool {
			comp, err := fc.CompressFloats(in)
			if err != nil {
				return false
			}
			out, err := fc.DecompressFloats(comp)
			if err != nil || len(out) != len(in) {
				return false
			}
			for i := range in {
				if math.Float64bits(out[i]) != math.Float64bits(in[i]) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
			t.Errorf("%s: %v", fc.Name(), err)
		}
	}
}

func TestOrderedFloatMapMonotone(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -1, -1e-300, 0, 1e-300, 1, 1e300, math.Inf(1)}
	for i := 1; i < len(vals); i++ {
		if floatToOrdered(vals[i-1]) >= floatToOrdered(vals[i]) {
			t.Errorf("ordering violated between %v and %v", vals[i-1], vals[i])
		}
	}
	f := func(x float64) bool { return orderedToFloat(floatToOrdered(x)) == x || math.IsNaN(x) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHaarLiftReversible(t *testing.T) {
	f := func(a, b int32) bool {
		s, d := haarFwd(int64(a), int64(b))
		ga, gb := haarInv(s, d)
		return ga == int64(a) && gb == int64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZFPSmoothBeatsRaw(t *testing.T) {
	in := make([]float64, 4096)
	for i := range in {
		in[i] = 100 + math.Sin(float64(i)*0.001) // very smooth, shared exponent
	}
	comp, err := (ZFP{}).CompressFloats(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) >= len(in)*8 {
		t.Errorf("ZFP on smooth input: %d floats -> %d bytes (no gain)", len(in), len(comp))
	}
}

func TestFloatAdapterRejectsMisaligned(t *testing.T) {
	a := FloatAdapter{B: Raw{}}
	if _, err := a.DecompressFloats([]byte{1, 2, 3}); err == nil {
		t.Error("expected error for misaligned byte count")
	}
}

func TestFPCCorrupt(t *testing.T) {
	comp, _ := FPC{}.CompressFloats(mdLikeFloats(100, 1))
	if _, err := (FPC{}).DecompressFloats(comp[:len(comp)/2]); err == nil {
		t.Error("expected error on truncated FPC stream")
	}
}

func BenchmarkLZCompressMDBytes(b *testing.B) {
	in := FloatsToBytes(mdLikeFloats(1<<14, 3))
	b.SetBytes(int64(len(in)))
	z := LZ{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := z.Compress(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFPCCompress(b *testing.B) {
	in := mdLikeFloats(1<<14, 3)
	b.SetBytes(int64(len(in) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (FPC{}).CompressFloats(in); err != nil {
			b.Fatal(err)
		}
	}
}

// huffLikeBytes synthesizes bytes statistically similar to the pipeline's
// lossless-stage input: the Huffman-packed quantization codes of an MD run
// (high-entropy bit packing with residual structure).
func huffLikeBytes(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, n)
	x := 0.0
	for i := range out {
		x += rng.NormFloat64()
		b := byte(int(x) & 0x3F)
		if rng.Float64() < 0.3 {
			b = byte(rng.Intn(256))
		}
		out[i] = b
	}
	return out
}

func BenchmarkLZDecompressMDBytes(b *testing.B) {
	in := FloatsToBytes(mdLikeFloats(1<<14, 3))
	z := LZ{}
	comp, err := z.Compress(in)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(in)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := z.Decompress(comp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLZCompressHuffLike(b *testing.B) {
	in := huffLikeBytes(1<<17, 3)
	b.SetBytes(int64(len(in)))
	z := LZ{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := z.Compress(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLZDecompressHuffLike(b *testing.B) {
	in := huffLikeBytes(1<<17, 3)
	z := LZ{}
	comp, err := z.Compress(in)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(in)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := z.Decompress(comp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLZCompressSkewed(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	in := make([]byte, 1<<17)
	for i := range in {
		if rng.Float64() < 0.8 {
			in[i] = 0
		} else {
			in[i] = byte(rng.Intn(16))
		}
	}
	b.SetBytes(int64(len(in)))
	z := LZ{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := z.Compress(in); err != nil {
			b.Fatal(err)
		}
	}
}
