package bench

import (
	"fmt"
	"math"
	"sort"

	"github.com/mdz/mdz/internal/dataset"
	"github.com/mdz/mdz/internal/metrics"
	"github.com/mdz/mdz/internal/predictor"
)

// charSets are the six datasets the paper uses in its characterization
// figures (Fig 3-5).
var charSets = []string{"Copper-B", "ADK", "Helium-A", "Helium-B", "Pt", "LJ"}

func init() {
	register("fig3", "spatial correlations of atom position data", runFig3)
	register("fig4", "value-frequency distributions (multi-peak vs uniform)", runFig4)
	register("fig5", "temporal correlations of atom trajectories", runFig5)
	register("fig8", "snapshot similarity with snapshot 0 (Eq. 2)", runFig8)
	register("tab2", "prediction error: snapshot-0 vs spatial Lorenzo", runTab2)
}

// runFig3 quantifies each dataset's spatial pattern: the lag-1 spatial
// roughness (mean |x[i+1]−x[i]| relative to range) and the fraction of
// points sitting on detected levels. Together they classify the paper's
// zigzag / stair-wise / random patterns.
func runFig3(cfg Config) (*Report, error) {
	rep := &Report{
		ID: "fig3", Title: Title("fig3"),
		Columns: []string{"dataset", "axis", "spatialRoughness", "levelFraction", "pattern"},
		Notes: []string{
			"zigzag/stair patterns -> high levelFraction; random -> low levelFraction (paper Fig 3)",
			"roughness is mean |x[i+1]-x[i]| / range over the first snapshot",
		},
	}
	for _, name := range charSets {
		d, err := load(name, cfg)
		if err != nil {
			return nil, err
		}
		for _, axis := range dataset.Axes {
			vals := d.Frames[0].Axis(axis)
			rough := roughness(vals)
			lf, spacing := levelFraction(vals)
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, v := range vals {
				lo, hi = math.Min(lo, v), math.Max(hi, v)
			}
			pattern := "random"
			switch {
			case lf > 0.7 && spacing > 0 && rough*(hi-lo) > 1.2*spacing:
				pattern = "zigzag" // successive atoms hop whole levels
			case lf > 0.7:
				pattern = "stair-wise"
			case lf > 0.45:
				pattern = "weak-levels"
			}
			rep.AddRow(name, axis.String(), rough, lf, pattern)
		}
	}
	return rep, nil
}

func roughness(vals []float64) float64 {
	if len(vals) < 2 {
		return 0
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	var sum float64
	for i, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		if i > 0 {
			sum += math.Abs(v - vals[i-1])
		}
	}
	if hi <= lo {
		return 0
	}
	return sum / float64(len(vals)-1) / (hi - lo)
}

// levelFraction estimates the fraction of values near a detected
// equal-distant level grid, plus the grid spacing. Peak centers come from
// histogram local maxima; spacing is the median gap between consecutive
// peaks; the grid is anchored at the first peak.
func levelFraction(vals []float64) (frac, spacing float64) {
	centers, counts := metrics.Histogram(vals, 200)
	if len(centers) == 0 {
		return 0, 0
	}
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	thresh := maxC / 4
	var peaks []float64
	inPeak := false
	bestBin, bestCount := 0, -1
	for i, c := range counts {
		if c > thresh {
			if !inPeak {
				inPeak = true
				bestBin, bestCount = i, c
			} else if c > bestCount {
				bestBin, bestCount = i, c
			}
		} else if inPeak {
			peaks = append(peaks, centers[bestBin])
			inPeak = false
		}
	}
	if inPeak {
		peaks = append(peaks, centers[bestBin])
	}
	if len(peaks) < 3 {
		return 0, 0
	}
	gaps := make([]float64, len(peaks)-1)
	for i := 1; i < len(peaks); i++ {
		gaps[i-1] = peaks[i] - peaks[i-1]
	}
	sort.Float64s(gaps)
	spacing = gaps[len(gaps)/2]
	if spacing <= 0 {
		return 0, 0
	}
	near := 0
	for _, v := range vals {
		f := math.Mod((v-peaks[0])/spacing, 1)
		if f < 0 {
			f += 1
		}
		if f > 0.5 {
			f = 1 - f
		}
		if f < 0.17 {
			near++
		}
	}
	return float64(near) / float64(len(vals)), spacing
}

// runFig4 reports each dataset's histogram peak structure, reproducing the
// paper's split into multiple-peak-dominated vs rather-uniform
// distributions.
func runFig4(cfg Config) (*Report, error) {
	rep := &Report{
		ID: "fig4", Title: Title("fig4"),
		Columns: []string{"dataset", "axis", "peaks", "countCV", "distribution"},
		Notes: []string{
			"multi-peak -> strong clustering into discrete levels (paper takeaway 2)",
		},
	}
	for _, name := range charSets {
		d, err := load(name, cfg)
		if err != nil {
			return nil, err
		}
		for _, axis := range dataset.Axes {
			vals := d.Frames[0].Axis(axis)
			_, counts := metrics.Histogram(vals, 100)
			peaks := metrics.PeakCount(counts, 0.25)
			cv := histCV(counts)
			// Multi-peak-dominated distributions concentrate mass on few
			// bins (high count dispersion); uniform ones spread it evenly.
			kind := "uniform"
			if cv > 1.2 && peaks >= 3 {
				kind = "multi-peak"
			}
			rep.AddRow(name, axis.String(), peaks, cv, kind)
		}
	}
	return rep, nil
}

// histCV is the coefficient of variation of histogram counts: ~3 for
// level-clustered data, <1 for uniform/unimodal distributions.
func histCV(counts []int) float64 {
	if len(counts) == 0 {
		return 0
	}
	var sum float64
	for _, c := range counts {
		sum += float64(c)
	}
	mean := sum / float64(len(counts))
	if mean == 0 {
		return 0
	}
	var varsum float64
	for _, c := range counts {
		d := float64(c) - mean
		varsum += d * d
	}
	return math.Sqrt(varsum/float64(len(counts))) / mean
}

// runFig5 quantifies temporal smoothness: mean |x_t − x_{t−1}| over all
// particles and steps, normalized by the value range.
func runFig5(cfg Config) (*Report, error) {
	rep := &Report{
		ID: "fig5", Title: Title("fig5"),
		Columns: []string{"dataset", "axis", "temporalDelta", "regime"},
		Notes: []string{
			"small temporalDelta -> data changes only slightly in time (Pt, LJ; paper takeaway 4)",
			"temporalDelta is mean |x(t)-x(t-1)| / range over all particles",
		},
	}
	for _, name := range charSets {
		d, err := load(name, cfg)
		if err != nil {
			return nil, err
		}
		for _, axis := range dataset.Axes {
			series := d.AxisSeries(axis)
			lo, hi := seriesRange(series)
			var sum float64
			cnt := 0
			for t := 1; t < len(series); t++ {
				sum += predictor.MeanAbsErrTime(series[t], series[t-1])
				cnt++
			}
			delta := 0.0
			if cnt > 0 && hi > lo {
				delta = sum / float64(cnt) / (hi - lo)
			}
			regime := "large-frequent"
			if delta < 0.005 {
				regime = "slight"
			}
			rep.AddRow(name, axis.String(), delta, regime)
		}
	}
	return rep, nil
}

// runFig8 computes Eq. 2 similarity of each snapshot against snapshot 0.
func runFig8(cfg Config) (*Report, error) {
	rep := &Report{
		ID: "fig8", Title: Title("fig8"),
		Columns: []string{"dataset", "tau", "snapshot25%", "snapshot50%", "snapshot75%", "snapshot100%"},
		Notes: []string{
			"Copper-A and Pt stay extremely similar to snapshot 0 (paper Fig 8), motivating MT",
		},
	}
	tau := 1e-2
	for _, name := range []string{"Copper-A", "Pt", "LJ", "Copper-B", "Helium-B"} {
		d, err := load(name, cfg)
		if err != nil {
			return nil, err
		}
		s0 := d.Frames[0].X
		row := []interface{}{name, fmt.Sprintf("%.0e", tau)}
		for _, fracIdx := range []float64{0.25, 0.5, 0.75, 1.0} {
			idx := int(fracIdx*float64(d.M()-1) + 0.5)
			sim, err := metrics.Similarity(s0, d.Frames[idx].X, tau)
			if err != nil {
				return nil, err
			}
			row = append(row, sim)
		}
		rep.AddRow(row...)
	}
	return rep, nil
}

// runTab2 compares mean absolute prediction errors of the snapshot-0
// predictor against the spatial Lorenzo predictor (paper Table II).
func runTab2(cfg Config) (*Report, error) {
	rep := &Report{
		ID: "tab2", Title: Title("tab2"),
		Columns: []string{"dataset", "axis", "lorenzoMAE", "snapshot0MAE", "winner"},
		Notes: []string{
			"snapshot-0 prediction beats spatial Lorenzo on MT-friendly datasets (paper Table II)",
		},
	}
	for _, name := range []string{"Copper-A", "Pt", "LJ", "Helium-A"} {
		d, err := load(name, cfg)
		if err != nil {
			return nil, err
		}
		for _, axis := range dataset.Axes {
			series := d.AxisSeries(axis)
			var lorSum, s0Sum float64
			for t := 1; t < len(series); t++ {
				lorSum += predictor.MeanAbsErr1D(series[t])
				s0Sum += predictor.MeanAbsErrSnapshot0(series[t], series[0])
			}
			n := float64(len(series) - 1)
			lor, s0 := lorSum/n, s0Sum/n
			winner := "snapshot-0"
			if lor < s0 {
				winner = "lorenzo"
			}
			rep.AddRow(name, axis.String(), lor, s0, winner)
		}
	}
	return rep, nil
}
