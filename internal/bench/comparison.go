package bench

import (
	"fmt"

	"github.com/mdz/mdz/internal/codec"
	"github.com/mdz/mdz/internal/core"
	"github.com/mdz/mdz/internal/dataset"
	"github.com/mdz/mdz/internal/lossless"
	"github.com/mdz/mdz/internal/metrics"
	"github.com/mdz/mdz/internal/sz2"
)

func init() {
	register("tab4", "SZ2 compression ratios in 1D vs 2D mode", runTab4)
	register("tab5", "lossless compressor ratios on MD data", runTab5)
	register("fig12", "lossy compression ratios across datasets and BS", runFig12)
	register("fig13", "rate-distortion (bit rate vs PSNR)", runFig13)
	register("tab6", "MaxError and NRMSE at CR=10 (Copper-B)", runTab6)
	register("fig14", "RDF fidelity at CR=10 (Copper-B)", runFig14)
	register("fig15", "compression/decompression throughput", runFig15)
	register("fig16", "generalizability: HACC cosmology datasets", runFig16)
}

// runTab4 reproduces Table IV: SZ2's 2D mode vs 1D mode on Pt, LJ and
// Helium-A (BS=10, ε=1E-3), per axis.
func runTab4(cfg Config) (*Report, error) {
	rep := &Report{
		ID: "tab4", Title: Title("tab4"),
		Columns: []string{"dataset", "mode", "x", "y", "z"},
		Notes: []string{
			"paper Table IV: 2D mode reaches up to ~200% higher CR by using space and time at once",
		},
	}
	for _, name := range []string{"Pt", "LJ", "Helium-A"} {
		d, err := load(name, cfg)
		if err != nil {
			return nil, err
		}
		for _, mode := range []sz2.Mode{sz2.Mode1D, sz2.Mode2D} {
			f := codec.FromBatch(&sz2.Compressor{Mode: mode})
			res, err := RunCodec(d, f, RunOptions{Epsilon: 1e-3, BufferSize: 10})
			if err != nil {
				return nil, err
			}
			rep.AddRow(name, mode.String(), res.PerAxisCR[0], res.PerAxisCR[1], res.PerAxisCR[2])
		}
	}
	return rep, nil
}

// runTab5 reproduces Table V: the six lossless compressors all land in the
// ~1-2x regime on MD floating-point data.
func runTab5(cfg Config) (*Report, error) {
	comps := []lossless.FloatCompressor{
		lossless.FloatAdapter{B: lossless.LZ{}},                              // Zstd stand-in
		lossless.FloatAdapter{B: lossless.Zlib{}},                            // Zlib (exact)
		lossless.FloatAdapter{B: lossless.Flate{Level: 9, Label: "brotli*"}}, // Brotli stand-in
		lossless.FPZip{},
		lossless.FPC{},
		lossless.ZFP{},
	}
	rep := &Report{
		ID: "tab5", Title: Title("tab5"),
		Columns: []string{"dataset", "zstd*", "zlib", "brotli*", "fpzip*", "fpc", "zfp*"},
		Notes: []string{
			"paper Table V: all lossless CRs are ~1-2 on MD floats (random mantissa bits)",
			"* marks stdlib-constrained stand-ins; see DESIGN.md section 5",
		},
	}
	for _, name := range []string{"Copper-A", "Helium-B", "ADK", "LJ"} {
		d, err := load(name, cfg)
		if err != nil {
			return nil, err
		}
		row := []interface{}{name}
		// Concatenate all axes, frame-major, as the paper's file layout.
		var flat []float64
		for _, fr := range d.Frames {
			flat = append(flat, fr.X...)
			flat = append(flat, fr.Y...)
			flat = append(flat, fr.Z...)
		}
		raw := int64(len(flat) * 8)
		for _, c := range comps {
			blob, err := c.CompressFloats(flat)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", c.Name(), name, err)
			}
			row = append(row, metrics.CompressionRatio(raw, int64(len(blob))))
		}
		rep.AddRow(row...)
	}
	return rep, nil
}

// runFig12 reproduces Fig 12: compression ratios of MDZ and the six lossy
// baselines across all eight datasets and buffer sizes.
func runFig12(cfg Config) (*Report, error) {
	rep := &Report{
		ID: "fig12", Title: Title("fig12"),
		Columns: []string{"dataset", "BS", "MDZ", "SZ2-2D", "ASN", "TNG", "HRTC", "MDB", "LFZip", "MDZ/2nd"},
		Notes: []string{
			"paper Fig 12: MDZ highest CR on all datasets and buffer sizes (eps=1E-3)",
			"'excl' reproduces the paper's TNG/HRTC runtime exceptions at original scale",
		},
	}
	bss := []int{10, 50, 100}
	if cfg.scale() < 1 {
		bss = []int{10}
	}
	order := []string{"MDZ", "SZ2-2D", "ASN", "TNG", "HRTC", "MDB", "LFZip"}
	for _, name := range []string{"Copper-A", "Copper-B", "Helium-A", "Helium-B", "ADK", "IFABP", "Pt", "LJ"} {
		d, err := load(name, cfg)
		if err != nil {
			return nil, err
		}
		for _, bs := range bss {
			crs := map[string]float64{}
			excluded := map[string]bool{}
			for _, f := range codec.AllLossy() {
				res, err := RunCodec(d, f, RunOptions{Epsilon: 1e-3, BufferSize: bs})
				if err != nil {
					return nil, err
				}
				crs[f.Name()] = res.CR
				excluded[f.Name()] = res.Excluded
			}
			row := []interface{}{name, bs}
			second := 0.0
			for _, cn := range order {
				if excluded[cn] {
					row = append(row, "excl")
					continue
				}
				row = append(row, crs[cn])
				if cn != "MDZ" && crs[cn] > second {
					second = crs[cn]
				}
			}
			ratio := 0.0
			if second > 0 {
				ratio = crs["MDZ"] / second
			}
			row = append(row, ratio)
			rep.AddRow(row...)
		}
	}
	return rep, nil
}

// fig13Sets are the rate-distortion datasets; trimmed at small scale.
func fig13Sets(cfg Config) []string {
	if cfg.scale() < 1 {
		return []string{"Copper-B", "LJ"}
	}
	return []string{"Copper-B", "Helium-B", "Pt", "LJ"}
}

// runFig13 reproduces Fig 13: bit rate vs PSNR across an ε sweep for every
// lossy compressor.
func runFig13(cfg Config) (*Report, error) {
	rep := &Report{
		ID: "fig13", Title: Title("fig13"),
		Columns: []string{"dataset", "codec", "eps", "bitRate", "PSNR"},
		Notes: []string{
			"paper Fig 13: MDZ dominates the rate-distortion frontier (higher PSNR at equal bit rate)",
		},
	}
	epss := []float64{1e-2, 1e-3, 1e-4}
	if cfg.scale() >= 1 {
		epss = []float64{1e-1, 1e-2, 1e-3, 1e-4, 1e-5}
	}
	for _, name := range fig13Sets(cfg) {
		d, err := load(name, cfg)
		if err != nil {
			return nil, err
		}
		for _, f := range codec.AllLossy() {
			if Excluded(f.Name(), d.Meta) {
				rep.AddRow(name, f.Name(), "-", "excl", "excl")
				continue
			}
			for _, eps := range epss {
				res, err := RunCodec(d, f, RunOptions{Epsilon: eps, BufferSize: 10})
				if err != nil {
					return nil, err
				}
				rep.AddRow(name, f.Name(), fmt.Sprintf("%.0e", eps), res.BitRate, res.Err.PSNR)
			}
		}
	}
	return rep, nil
}

// runTab6 reproduces Table VI: at a matched CR of 10 on Copper-B, compare
// MaxError and NRMSE per axis across compressors, including the individual
// MDZ methods.
func runTab6(cfg Config) (*Report, error) {
	rep := &Report{
		ID: "tab6", Title: Title("tab6"),
		Columns: []string{"codec", "axis", "CR", "MaxError", "NRMSE"},
		Notes: []string{
			"paper Table VI: MDZ(ADP) has the lowest MaxError and NRMSE on every axis at CR=10",
			"MDB excluded: it cannot reach CR 10 (paper §VII-C3)",
		},
	}
	d, err := load("Copper-B", cfg)
	if err != nil {
		return nil, err
	}
	facs := []codec.Factory{
		codec.MDZFactory{},
		codec.MDZFactory{Method: core.VQ},
		codec.MDZFactory{Method: core.VQT},
		codec.MDZFactory{Method: core.MT},
	}
	for _, f := range codec.Baselines() {
		if f.Name() == "MDB" {
			continue // cannot reach CR 10, as in the paper
		}
		facs = append(facs, f)
	}
	for _, f := range facs {
		if Excluded(f.Name(), d.Meta) {
			rep.AddRow(f.Name(), "-", "excl", "excl", "excl")
			continue
		}
		_, res, err := SearchEpsilonForCR(d, f, 10, 10)
		if err != nil {
			return nil, err
		}
		for ai, axis := range dataset.Axes {
			rep.AddRow(f.Name(), axis.String(), res.CR, res.PerAxisErr[ai].MaxError, res.PerAxisErr[ai].NRMSE)
		}
	}
	return rep, nil
}

// runFig14 reproduces Fig 14: RDFs of decompressed Copper-B at CR≈10,
// scored by mean |Δg(r)| against the original RDF.
func runFig14(cfg Config) (*Report, error) {
	rep := &Report{
		ID: "fig14", Title: Title("fig14"),
		Columns: []string{"codec", "CR", "rdfError", "faithful?"},
		Notes: []string{
			"paper Fig 14: only MDZ preserves the radial distribution function at CR=10",
			"rdfError is mean |g_orig(r) - g_decomp(r)| over the last frame",
		},
	}
	d, err := load("Copper-B", cfg)
	if err != nil {
		return nil, err
	}
	box := d.Meta.Box
	if box <= 0 {
		return nil, fmt.Errorf("fig14: dataset has no periodic box")
	}
	last := d.Frames[d.M()-1]
	rMax := box / 2
	bins := 60
	_, gOrig, err := metrics.RDF(last.X, last.Y, last.Z, box, rMax, bins)
	if err != nil {
		return nil, err
	}
	facs := append([]codec.Factory{codec.MDZFactory{}}, codec.Baselines()...)
	for _, f := range facs {
		if f.Name() == "MDB" {
			rep.AddRow(f.Name(), "n/a", "cannot reach CR 10", "-")
			continue
		}
		if Excluded(f.Name(), d.Meta) {
			rep.AddRow(f.Name(), "excl", "excl", "-")
			continue
		}
		_, res, err := SearchEpsilonForCR(d, f, 10, 10)
		if err != nil {
			return nil, err
		}
		rl := res.Recon[len(res.Recon)-1]
		_, gDec, err := metrics.RDF(rl.X, rl.Y, rl.Z, box, rMax, bins)
		if err != nil {
			return nil, err
		}
		dist, err := metrics.RDFDistance(gOrig, gDec)
		if err != nil {
			return nil, err
		}
		faithful := "no"
		if dist < 0.05 {
			faithful = "yes"
		}
		rep.AddRow(f.Name(), res.CR, dist, faithful)
	}
	return rep, nil
}

// runFig15 reproduces Fig 15: compression and decompression throughput of
// every lossy compressor on every dataset.
func runFig15(cfg Config) (*Report, error) {
	rep := &Report{
		ID: "fig15", Title: Title("fig15"),
		Columns: []string{"dataset", "codec", "compMBps", "decompMBps"},
		Notes: []string{
			"paper Fig 15: MDZ is consistently among the fastest; LFZip is slowest",
		},
	}
	sets := []string{"Copper-B", "Helium-B", "Pt", "LJ"}
	if cfg.scale() < 1 {
		sets = []string{"Copper-B", "LJ"}
	}
	for _, name := range sets {
		d, err := load(name, cfg)
		if err != nil {
			return nil, err
		}
		for _, f := range codec.AllLossy() {
			if Excluded(f.Name(), d.Meta) {
				rep.AddRow(name, f.Name(), "excl", "excl")
				continue
			}
			res, err := RunCodec(d, f, RunOptions{Epsilon: 1e-3, BufferSize: 10})
			if err != nil {
				return nil, err
			}
			rep.AddRow(name, f.Name(), res.EncodeMBps, res.DecodeMBps)
		}
	}
	return rep, nil
}

// runFig16 reproduces Fig 16: compression ratios on the HACC cosmology
// analogs, demonstrating generalizability beyond MD.
func runFig16(cfg Config) (*Report, error) {
	rep := &Report{
		ID: "fig16", Title: Title("fig16"),
		Columns: []string{"dataset", "MDZ", "SZ2-2D", "ASN", "TNG", "HRTC", "MDB", "LFZip", "MDZ/2nd"},
		Notes: []string{
			"paper Fig 16: MDZ best on both HACC datasets, 30-56% over the second best (eps=1E-3)",
			"HACC originals exceed both TNG and HRTC limits -> excl",
		},
	}
	order := []string{"MDZ", "SZ2-2D", "ASN", "TNG", "HRTC", "MDB", "LFZip"}
	for _, name := range []string{"HACC-1", "HACC-2"} {
		d, err := load(name, cfg)
		if err != nil {
			return nil, err
		}
		crs := map[string]float64{}
		excluded := map[string]bool{}
		for _, f := range codec.AllLossy() {
			res, err := RunCodec(d, f, RunOptions{Epsilon: 1e-3, BufferSize: 10})
			if err != nil {
				return nil, err
			}
			crs[f.Name()] = res.CR
			excluded[f.Name()] = res.Excluded
		}
		row := []interface{}{name}
		second := 0.0
		for _, cn := range order {
			if excluded[cn] {
				row = append(row, "excl")
				continue
			}
			row = append(row, crs[cn])
			if cn != "MDZ" && crs[cn] > second {
				second = crs[cn]
			}
		}
		ratio := 0.0
		if second > 0 {
			ratio = crs["MDZ"] / second
		}
		row = append(row, ratio)
		rep.AddRow(row...)
	}
	return rep, nil
}
