package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestScaleReportShape runs the scaling benchmark at unit-test scale and
// checks the report's invariants: the full grid is present, every point
// carries positive throughput on both sides, the headline point exists, and
// the report survives a JSON round-trip and a self-comparison.
func TestScaleReportShape(t *testing.T) {
	rep, err := RunScale(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != len(scaleGrid) {
		t.Fatalf("report has %d points, want %d", len(rep.Points), len(scaleGrid))
	}
	for _, p := range rep.Points {
		if p.BaselineMBps <= 0 || p.TunedMBps <= 0 {
			t.Errorf("w=%d k=%d: non-positive throughput %+v", p.Workers, p.Shards, p)
		}
		if p.BaselineRatio <= 1 || p.TunedRatio <= 1 {
			t.Errorf("w=%d k=%d: no compression %+v", p.Workers, p.Shards, p)
		}
	}
	if rep.HeadlineSpeedup <= 0 {
		t.Fatal("headline point (workers=8 shards=8) missing from the grid")
	}
	if rep.GOMAXPROCS <= 0 || rep.NumCPU <= 0 {
		t.Errorf("host info not recorded: GOMAXPROCS=%d NumCPU=%d", rep.GOMAXPROCS, rep.NumCPU)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadScaleReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != len(rep.Points) || back.HeadlineSpeedup != rep.HeadlineSpeedup {
		t.Fatal("JSON round-trip changed the report")
	}

	var table, diff strings.Builder
	if err := rep.WriteText(&table); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "headline") {
		t.Error("text table missing headline line")
	}
	// Self-comparison is clean and warn-only by contract: never an error.
	if err := CompareScale(&diff, back, rep); err != nil {
		t.Fatalf("self-compare returned a gating error: %v", err)
	}
}
