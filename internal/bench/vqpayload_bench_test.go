package bench

import (
	"testing"

	"github.com/mdz/mdz/internal/core"
	"github.com/mdz/mdz/internal/kmeans"
	"github.com/mdz/mdz/internal/lossless"
)

// capturingBackend wraps LZ and records every payload the pipeline hands it,
// so the backend can be re-benchmarked on the exact bytes the VQ pipeline
// produces rather than on synthetic data.
type capturingBackend struct {
	lossless.LZ
	payloads *[][]byte
}

func (c capturingBackend) Compress(src []byte) ([]byte, error) {
	cp := append([]byte(nil), src...)
	*c.payloads = append(*c.payloads, cp)
	return c.LZ.Compress(src)
}

// vqPayloads runs the Copper-B analog through the VQ pipeline (the entropy
// benchmark's configuration) and returns every lossless-stage input payload.
func vqPayloads(tb testing.TB) [][]byte {
	d, err := load("Copper-B", Config{Scale: 1.0, Seed: 42})
	if err != nil {
		tb.Fatal(err)
	}
	var payloads [][]byte
	var encs [3]*core.Encoder
	for axis := 0; axis < 3; axis++ {
		enc, err := core.NewEncoder(core.Params{
			ErrorBound: 1e-4,
			Method:     core.VQ,
			Shards:     1,
			KMeans:     kmeans.Options{Seed: int64(axis) + 1},
			Backend:    capturingBackend{payloads: &payloads},
		})
		if err != nil {
			tb.Fatal(err)
		}
		encs[axis] = enc
	}
	for _, b := range d.Batches(10) {
		var axes [3][][]float64
		for _, f := range b {
			axes[0] = append(axes[0], f.X)
			axes[1] = append(axes[1], f.Y)
			axes[2] = append(axes[2], f.Z)
		}
		for axis, enc := range encs {
			if _, err := enc.EncodeBatch(axes[axis]); err != nil {
				tb.Fatalf("axis %d: %v", axis, err)
			}
		}
	}
	return payloads
}

func BenchmarkLZCompressVQPayload(b *testing.B) {
	payloads := vqPayloads(b)
	var total int64
	for _, p := range payloads {
		total += int64(len(p))
	}
	b.Logf("%d payloads, %d bytes total", len(payloads), total)
	z := lossless.LZ{}
	b.SetBytes(total)
	b.ReportAllocs()
	b.ResetTimer()
	var dst []byte
	for i := 0; i < b.N; i++ {
		for _, p := range payloads {
			var err error
			dst, err = z.AppendCompress(dst[:0], p)
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkLZDecompressVQPayload(b *testing.B) {
	payloads := vqPayloads(b)
	z := lossless.LZ{}
	var comp [][]byte
	var total int64
	for _, p := range payloads {
		c, err := z.Compress(p)
		if err != nil {
			b.Fatal(err)
		}
		comp = append(comp, c)
		total += int64(len(p))
	}
	b.SetBytes(total)
	b.ReportAllocs()
	b.ResetTimer()
	var dst []byte
	for i := 0; i < b.N; i++ {
		for _, c := range comp {
			var err error
			dst, err = z.AppendDecompress(dst[:0], c)
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}
