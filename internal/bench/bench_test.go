package bench

import (
	"strings"
	"testing"

	"github.com/mdz/mdz/internal/codec"
)

// tiny returns a configuration small enough for unit tests.
func tiny() Config { return Config{Scale: 0.25, Seed: 7} }

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig3", "fig4", "fig5", "fig8", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16",
		"tab2", "tab3", "tab4", "tab5", "tab6", "tab7",
		"ext1", "abl1", "abl2",
	}
	have := map[string]bool{}
	for _, id := range Experiments() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
		if Title(id) == "" {
			t.Errorf("experiment %s has no title", id)
		}
	}
	if len(Experiments()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(Experiments()), len(want))
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("fig99", tiny()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestAllExperimentsRun executes every registered experiment at tiny scale:
// the full reproduction path must at least complete and produce rows.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	for _, id := range Experiments() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			rep, err := Run(id, tiny())
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if len(rep.Rows) == 0 {
				t.Fatalf("%s: no rows", id)
			}
			if len(rep.Columns) == 0 {
				t.Fatalf("%s: no columns", id)
			}
			var sb strings.Builder
			if _, err := rep.WriteTo(&sb); err != nil {
				t.Fatalf("%s: render: %v", id, err)
			}
			if !strings.Contains(sb.String(), id) {
				t.Errorf("%s: rendered report lacks id header", id)
			}
			if csv := rep.CSV(); !strings.Contains(csv, ",") {
				t.Errorf("%s: CSV output malformed", id)
			}
		})
	}
}

func TestRunCodecBasics(t *testing.T) {
	d, err := load("Copper-B", tiny())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCodec(d, codec.MDZFactory{}, RunOptions{Epsilon: 1e-3, BufferSize: 10, KeepRecon: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.CR <= 1 {
		t.Errorf("CR = %v, expected compression", res.CR)
	}
	if res.BitRate <= 0 || res.BitRate >= 64 {
		t.Errorf("BitRate = %v", res.BitRate)
	}
	if res.Err.MaxError <= 0 {
		t.Error("MaxError not recorded")
	}
	if len(res.Recon) != d.M() {
		t.Errorf("Recon has %d frames, want %d", len(res.Recon), d.M())
	}
	if res.EncodeMBps <= 0 || res.DecodeMBps <= 0 {
		t.Error("throughput not recorded")
	}
	// Per-axis error bound: eps times each axis range.
	for ai := range res.PerAxisErr {
		if res.PerAxisErr[ai].MaxError > 1e-3*res.PerAxisErr[ai].Range*1.0001 {
			t.Errorf("axis %d: MaxError %v exceeds eps*range", ai, res.PerAxisErr[ai].MaxError)
		}
	}
}

func TestExclusionEmulation(t *testing.T) {
	for _, c := range []struct {
		dataset, codec string
		want           bool
	}{
		{"Pt", "TNG", true},
		{"LJ", "TNG", true},
		{"Copper-A", "TNG", false},
		{"Copper-A", "HRTC", true},
		{"Helium-A", "HRTC", true},
		{"Copper-B", "HRTC", false},
		{"Copper-B", "MDZ", false},
	} {
		d, err := load(c.dataset, tiny())
		if err != nil {
			t.Fatal(err)
		}
		if got := Excluded(c.codec, d.Meta); got != c.want {
			t.Errorf("Excluded(%s, %s) = %v, want %v", c.codec, c.dataset, got, c.want)
		}
	}
}

func TestSearchEpsilonForCR(t *testing.T) {
	d, err := load("Copper-B", tiny())
	if err != nil {
		t.Fatal(err)
	}
	eps, res, err := SearchEpsilonForCR(d, codec.MDZFactory{}, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if eps <= 0 {
		t.Errorf("eps = %v", eps)
	}
	if res.CR < 6 || res.CR > 16 {
		t.Errorf("CR = %v, want ≈10", res.CR)
	}
	if len(res.Recon) == 0 {
		t.Error("reconstruction not kept")
	}
}

func TestReportFormatting(t *testing.T) {
	rep := &Report{ID: "x", Title: "demo", Columns: []string{"a", "bb"}}
	rep.AddRow("v", 3.14159)
	rep.AddRow(123456.0, 1e-9)
	var sb strings.Builder
	if _, err := rep.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "3.14") {
		t.Errorf("render:\n%s", out)
	}
	if got := rep.CSV(); !strings.HasPrefix(got, "a,bb\n") {
		t.Errorf("csv: %q", got)
	}
}

func TestDatasetCache(t *testing.T) {
	a, err := load("LJ", tiny())
	if err != nil {
		t.Fatal(err)
	}
	b, err := load("LJ", tiny())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cache miss for identical config")
	}
	c, err := load("LJ", Config{Scale: 0.25, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seeds must not share cache entries")
	}
}
