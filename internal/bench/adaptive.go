package bench

import (
	"github.com/mdz/mdz/internal/codec"
	"github.com/mdz/mdz/internal/core"
	"github.com/mdz/mdz/internal/dataset"
	"github.com/mdz/mdz/internal/quant"
)

func init() {
	register("fig10", "per-batch CR of VQ/VQT/MT/ADP over the run", runFig10)
	register("fig11", "ADP vs VQ/VQT/MT compression ratios across datasets and BS", runFig11)
}

// runFig10 tracks per-batch compression ratios over a long run, showing
// that the best method changes over time and ADP follows it (paper Fig 10).
func runFig10(cfg Config) (*Report, error) {
	rep := &Report{
		ID: "fig10", Title: Title("fig10"),
		Columns: []string{"dataset", "batchWindow", "VQ", "VQT", "MT", "ADP"},
		Notes: []string{
			"paper Fig 10: ADP tracks the best of the three across the run (BS=10)",
			"cells are window-averaged per-batch CRs over the x axis",
		},
	}
	for _, name := range []string{"Helium-B", "Copper-B"} {
		d, err := load(name, cfg)
		if err != nil {
			return nil, err
		}
		series := d.AxisSeries(dataset.AxisX)
		lo, hi := seriesRange(series)
		eb := quant.AbsBound(1e-3, lo, hi)
		bs := 10
		nBatches := (len(series) + bs - 1) / bs
		// Collect per-batch CRs for each method.
		perMethod := map[string][]float64{}
		for _, m := range []core.Method{core.VQ, core.VQT, core.MT, core.ADP} {
			f := codec.MDZFactory{Method: m, AdaptInterval: 5}
			stream, err := f.New(eb)
			if err != nil {
				return nil, err
			}
			var crs []float64
			for start := 0; start < len(series); start += bs {
				end := start + bs
				if end > len(series) {
					end = len(series)
				}
				blk, err := stream.Encode(series[start:end])
				if err != nil {
					return nil, err
				}
				raw := (end - start) * d.N() * 8
				crs = append(crs, float64(raw)/float64(len(blk)))
			}
			perMethod[m.String()] = crs
		}
		// Report in 4 windows across the run.
		windows := 4
		for w := 0; w < windows; w++ {
			loB := w * nBatches / windows
			hiB := (w + 1) * nBatches / windows
			if hiB <= loB {
				continue
			}
			row := []interface{}{name, windowLabel(w, windows)}
			for _, m := range []string{"VQ", "VQT", "MT", "ADP"} {
				row = append(row, mean(perMethod[m][loB:hiB]))
			}
			rep.AddRow(row...)
		}
	}
	return rep, nil
}

func windowLabel(w, total int) string {
	switch {
	case w == 0:
		return "first"
	case w == total-1:
		return "last"
	default:
		return "mid" + string(rune('0'+w))
	}
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// runFig11 reproduces Fig 11: ADP has the highest CR among the MDZ methods
// on every dataset and buffer size.
func runFig11(cfg Config) (*Report, error) {
	rep := &Report{
		ID: "fig11", Title: Title("fig11"),
		Columns: []string{"dataset", "BS", "VQ", "VQT", "MT", "ADP", "ADP>=best?"},
		Notes: []string{
			"paper Fig 11: ADP matches or exceeds the best single method everywhere (eps=1E-3)",
		},
	}
	bss := []int{10, 50, 100}
	if cfg.scale() < 1 {
		bss = []int{10, 50}
	}
	for _, name := range []string{"Copper-A", "Copper-B", "Helium-A", "Helium-B", "ADK", "IFABP", "Pt", "LJ"} {
		d, err := load(name, cfg)
		if err != nil {
			return nil, err
		}
		for _, bs := range bss {
			crs := map[string]float64{}
			for _, m := range []core.Method{core.VQ, core.VQT, core.MT, core.ADP} {
				f := codec.MDZFactory{Method: m, AdaptInterval: 5}
				res, err := RunCodec(d, f, RunOptions{Epsilon: 1e-3, BufferSize: bs})
				if err != nil {
					return nil, err
				}
				crs[m.String()] = res.CR
			}
			best := crs["VQ"]
			for _, m := range []string{"VQT", "MT"} {
				if crs[m] > best {
					best = crs[m]
				}
			}
			ok := "yes"
			if crs["ADP"] < 0.93*best {
				ok = "NO"
			}
			rep.AddRow(name, bs, crs["VQ"], crs["VQT"], crs["MT"], crs["ADP"], ok)
		}
	}
	return rep, nil
}
