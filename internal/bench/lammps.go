package bench

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"github.com/mdz/mdz/internal/core"
	"github.com/mdz/mdz/internal/sim"
)

func init() {
	register("tab7", "LJ simulation runtime breakdown with and without MDZ", runTab7)
}

// SimulateLJ runs the Lennard-Jones benchmark for the given number of
// steps, dumping a snapshot every saveEvery steps. With compress=true the
// dump path batches BS=10 snapshots through MDZ before writing, mirroring
// the paper's LAMMPS integration (§VII-D). It returns wall-clock totals.
//
// Substitution note: the paper's runs are MPI-parallel, so they report a
// communication fraction; this single-process engine has no MPI, so the
// breakdown is computation vs output only — the comparison that matters
// (output share with vs without MDZ) is preserved.
func SimulateLJ(atoms, steps, saveEvery int, compress bool, dir string) (total, compute, output time.Duration, bytesWritten int64, err error) {
	c := int(math.Cbrt(float64(atoms) / 4))
	if c < 2 {
		c = 2
	}
	pos, box := sim.FCC(c, c, c, 1.71)
	s := sim.NewSystem(box, pos, 11)
	s.Pair = sim.NewLJ(1, 1, 2.5)
	s.Thermo = sim.Langevin
	s.Temp = 1.0
	s.Gamma = 1
	s.Dt = 0.004
	s.InitVelocities(1.2)

	path := filepath.Join(dir, fmt.Sprintf("dump-%d-%d-%v.bin", atoms, saveEvery, compress))
	f, err := os.Create(path)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer os.Remove(path)
	defer f.Close()

	var encs [3]*core.Encoder
	if compress {
		for i := range encs {
			encs[i], err = core.NewEncoder(core.Params{ErrorBound: 1e-3 * box.L.X, Method: core.ADP, AdaptInterval: 5})
			if err != nil {
				return 0, 0, 0, 0, err
			}
		}
	}
	const bs = 10
	var batch [3][][]float64

	flush := func() error {
		if len(batch[0]) == 0 {
			return nil
		}
		for ai := range batch {
			if compress {
				blk, err := encs[ai].EncodeBatch(batch[ai])
				if err != nil {
					return err
				}
				if _, err := f.Write(blk); err != nil {
					return err
				}
				bytesWritten += int64(len(blk))
			} else {
				buf := make([]byte, 0, len(batch[ai])*len(batch[ai][0])*8)
				for _, snap := range batch[ai] {
					for _, v := range snap {
						buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
					}
				}
				if _, err := f.Write(buf); err != nil {
					return err
				}
				bytesWritten += int64(len(buf))
			}
			batch[ai] = batch[ai][:0]
		}
		return nil
	}

	start := time.Now()
	for step := 0; step < steps; step++ {
		t0 := time.Now()
		s.Step()
		compute += time.Since(t0)
		if step%saveEvery == 0 {
			t1 := time.Now()
			x, y, z := s.Snapshot()
			batch[0] = append(batch[0], x)
			batch[1] = append(batch[1], y)
			batch[2] = append(batch[2], z)
			if len(batch[0]) == bs {
				if err := flush(); err != nil {
					return 0, 0, 0, 0, err
				}
			}
			output += time.Since(t1)
		}
	}
	t1 := time.Now()
	if err := flush(); err != nil {
		return 0, 0, 0, 0, err
	}
	if err := f.Sync(); err != nil {
		return 0, 0, 0, 0, err
	}
	output += time.Since(t1)
	total = time.Since(start)
	return total, compute, output, bytesWritten, nil
}

// runTab7 reproduces Table VII's runtime breakdown at reduced scale: three
// system sizes × two save frequencies × with/without MDZ.
func runTab7(cfg Config) (*Report, error) {
	rep := &Report{
		ID: "tab7", Title: Title("tab7"),
		Columns: []string{"saveEvery", "atoms", "option", "duration", "comp%", "output%", "dumpMB"},
		Notes: []string{
			"paper Table VII: MDZ leaves total runtime unchanged and shrinks the output share",
			"single-process engine: no MPI communication column (see DESIGN.md section 5)",
		},
	}
	sizes := []int{500, 2048, 6912}
	steps := 400
	freqs := []int{5, 100} // scaled analog of the paper's 100 / 5000
	if cfg.scale() < 1 {
		sizes = []int{256, 864}
		steps = 120
	}
	dir, err := os.MkdirTemp("", "mdz-tab7-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	for _, freq := range freqs {
		for _, atoms := range sizes {
			for _, compress := range []bool{false, true} {
				total, compute, output, bytes, err := SimulateLJ(atoms, steps, freq, compress, dir)
				if err != nil {
					return nil, err
				}
				opt := "w/o MDZ"
				if compress {
					opt = "w MDZ"
				}
				rep.AddRow(freq, atoms, opt,
					fmt.Sprintf("%.2fs", total.Seconds()),
					100*compute.Seconds()/total.Seconds(),
					100*output.Seconds()/total.Seconds(),
					float64(bytes)/1e6)
			}
		}
	}
	return rep, nil
}
