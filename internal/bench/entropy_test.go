package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestEntropyReportRoundTrip(t *testing.T) {
	rep, err := RunEntropy(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"VQ", "VQT", "MT", "ADP"} {
		em, ok := rep.Methods[m]
		if !ok {
			t.Fatalf("method %s missing from report", m)
		}
		if em.Ratio <= 1 {
			t.Errorf("%s: compression ratio %.2f not > 1", m, em.Ratio)
		}
		if em.EncodeMBps <= 0 || em.DecodeMBps <= 0 {
			t.Errorf("%s: non-positive throughput (%f, %f)", m, em.EncodeMBps, em.DecodeMBps)
		}
		for _, stages := range []map[string]EntropyStage{em.Encode, em.Decode} {
			for _, key := range []string{"predict_quant", "huffman", "lossless"} {
				if stages[key].NsPerValue <= 0 {
					t.Errorf("%s: stage %s has no cost attributed", m, key)
				}
			}
		}
	}

	// The default run measures both formats; v3 must be populated and its
	// ratio must sit within the 2% regression budget of the v2 run.
	for _, m := range []string{"VQ", "VQT", "MT", "ADP"} {
		em, ok := rep.V3Methods[m]
		if !ok {
			t.Fatalf("method %s missing from v3 report", m)
		}
		if v2 := rep.Methods[m]; em.Ratio < v2.Ratio*0.98 {
			t.Errorf("%s: v3 ratio %.3f more than 2%% below v2 ratio %.3f", m, em.Ratio, v2.Ratio)
		}
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEntropyReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if back.Dataset != rep.Dataset || len(back.Methods) != len(rep.Methods) ||
		len(back.V3Methods) != len(rep.V3Methods) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, rep)
	}
	if back.Methods["MT"].Ratio != rep.Methods["MT"].Ratio {
		t.Fatalf("ratio changed in round trip")
	}

	var text, cmp bytes.Buffer
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "ADP") {
		t.Fatalf("text table missing methods:\n%s", text.String())
	}
	if err := CompareEntropy(&cmp, back, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cmp.String(), "MT") {
		t.Fatalf("comparison missing methods:\n%s", cmp.String())
	}
}
