package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestEntropyReportRoundTrip(t *testing.T) {
	rep, err := RunEntropy(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"VQ", "VQT", "MT", "ADP"} {
		em, ok := rep.Methods[m]
		if !ok {
			t.Fatalf("method %s missing from report", m)
		}
		if em.Ratio <= 1 {
			t.Errorf("%s: compression ratio %.2f not > 1", m, em.Ratio)
		}
		if em.EncodeMBps <= 0 || em.DecodeMBps <= 0 {
			t.Errorf("%s: non-positive throughput (%f, %f)", m, em.EncodeMBps, em.DecodeMBps)
		}
		for _, stages := range []map[string]EntropyStage{em.Encode, em.Decode} {
			for _, key := range []string{"predict_quant", "huffman", "lossless"} {
				if stages[key].NsPerValue <= 0 {
					t.Errorf("%s: stage %s has no cost attributed", m, key)
				}
			}
		}
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEntropyReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if back.Dataset != rep.Dataset || len(back.Methods) != len(rep.Methods) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, rep)
	}
	if back.Methods["MT"].Ratio != rep.Methods["MT"].Ratio {
		t.Fatalf("ratio changed in round trip")
	}

	var text, cmp bytes.Buffer
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "ADP") {
		t.Fatalf("text table missing methods:\n%s", text.String())
	}
	if err := CompareEntropy(&cmp, back, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cmp.String(), "MT") {
		t.Fatalf("comparison missing methods:\n%s", cmp.String())
	}
}
