package bench

import (
	"fmt"

	"github.com/mdz/mdz/internal/codec"
	"github.com/mdz/mdz/internal/core"
	"github.com/mdz/mdz/internal/dataset"
	"github.com/mdz/mdz/internal/quant"
)

func init() {
	register("fig9", "compressor throughput vs quantization scale (Helium-B)", runFig9)
	register("tab3", "Seq-1 vs Seq-2 compression ratios (Helium-B, MT)", runTab3)
}

// runFig9 sweeps the quantization scale from 64 to 65536 on Helium-B and
// reports compression/decompression throughput plus CR for VQ, VQT, MT.
// The paper's Fig 9 shows throughput degrading with larger scales (bigger
// Huffman trees) while 1024 retains full compression ratio.
func runFig9(cfg Config) (*Report, error) {
	rep := &Report{
		ID: "fig9", Title: Title("fig9"),
		Columns: []string{"scale", "method", "compMBps", "decompMBps", "CR"},
		Notes: []string{
			"paper Fig 9: throughput decreases as scale grows 64 -> 65536; scale 1024 is the knee",
			"value-range eps = 1E-3, BS = 10",
		},
	}
	d, err := load("Helium-B", cfg)
	if err != nil {
		return nil, err
	}
	for _, scale := range []int{64, 256, 1024, 4096, 16384, 65536} {
		for _, m := range []core.Method{core.VQ, core.VQT, core.MT} {
			f := codec.MDZFactory{Method: m, QuantScale: scale}
			res, err := RunCodec(d, f, RunOptions{Epsilon: 1e-3, BufferSize: 10})
			if err != nil {
				return nil, err
			}
			rep.AddRow(scale, m.String(), res.EncodeMBps, res.DecodeMBps, res.CR)
		}
	}
	return rep, nil
}

// runTab3 reproduces Table III: Seq-1 vs Seq-2 compression ratios on
// Helium-B with the MT method, BS=10, per axis and ε ∈ {1E-1, 5E-2, 1E-2}.
func runTab3(cfg Config) (*Report, error) {
	rep := &Report{
		ID: "tab3", Title: Title("tab3"),
		Columns: []string{"axis", "eps", "Seq-1 CR", "Seq-2 CR", "gain%"},
		Notes: []string{
			"paper Table III: Seq-2 improves CR by ~38% on Helium-B at eps=1E-1",
		},
	}
	d, err := load("Helium-B", cfg)
	if err != nil {
		return nil, err
	}
	for ai, axis := range dataset.Axes {
		for _, eps := range []float64{1e-1, 5e-2, 1e-2} {
			var crs [2]float64
			for si, seq := range []core.Sequence{core.Seq1, core.Seq2} {
				f := codec.MDZFactory{Method: core.MT, Sequence: seq,
					Label: fmt.Sprintf("MDZ-MT-%s", seq)}
				res, err := RunCodec(d, f, RunOptions{Epsilon: eps, BufferSize: 10})
				if err != nil {
					return nil, err
				}
				crs[si] = res.PerAxisCR[ai]
			}
			gain := 0.0
			if crs[0] > 0 {
				gain = (crs[1]/crs[0] - 1) * 100
			}
			rep.AddRow(axis.String(), fmt.Sprintf("%.0e", eps), crs[0], crs[1], gain)
		}
	}
	_ = quant.DefaultScale
	return rep, nil
}
