package bench

import (
	"fmt"
	"io"
	"strings"
)

// Report is a formatted experiment result: a titled table plus free-form
// notes explaining how it maps to the paper.
type Report struct {
	// ID and Title identify the experiment.
	ID, Title string
	// Columns and Rows hold the table body.
	Columns []string
	Rows    [][]string
	// Notes carries interpretation guidance (expected shape vs the paper).
	Notes []string
}

// AddRow appends a row, formatting each cell with %v.
func (r *Report) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	r.Rows = append(r.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v != v:
		return "NaN"
	case v >= 1e5 || v < 1e-3:
		return fmt.Sprintf("%.3g", v)
	case v >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// WriteTo renders the report as an aligned text table.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(cell)
			}
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", pad))
		}
		sb.WriteString("\n")
	}
	writeRow(r.Columns)
	total := 0
	for _, w2 := range widths {
		total += w2 + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteString("\n")
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// CSV renders the table as comma-separated values.
func (r *Report) CSV() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(r.Columns, ","))
	sb.WriteString("\n")
	for _, row := range r.Rows {
		sb.WriteString(strings.Join(row, ","))
		sb.WriteString("\n")
	}
	return sb.String()
}
