package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	mdz "github.com/mdz/mdz"
)

// ScalePoint is one (Workers, Shards) grid point of the scaling benchmark:
// the same trajectory compressed with the pre-PR execution knobs (baseline:
// synchronous Writer, full ADP trials) and with the pipelined/amortized
// knobs (tuned), on the same worker pool and shard layout.
type ScalePoint struct {
	Workers       int     `json:"workers"`
	Shards        int     `json:"shards"`
	BaselineMBps  float64 `json:"baseline_mb_per_s"`
	TunedMBps     float64 `json:"tuned_mb_per_s"`
	Speedup       float64 `json:"speedup"`
	BaselineRatio float64 `json:"baseline_ratio"`
	TunedRatio    float64 `json:"tuned_ratio"`
}

// ScaleReport is the machine-readable output of RunScale, committed as
// BENCH_scale.json. Throughput is end-to-end Writer compress throughput
// (raw MB/s into io.Discard), best of Repeats runs per configuration.
// GOMAXPROCS and NumCPU are recorded because the worker grid only buys
// wall-clock parallelism when the host actually has the cores; on a
// single-core host the speedup comes from the amortized-ADP and pipeline
// knobs, not from scheduling.
type ScaleReport struct {
	Dataset         string       `json:"dataset"`
	Snapshots       int          `json:"snapshots"`
	Atoms           int          `json:"atoms"`
	BatchSize       int          `json:"batch_size"`
	RawBytes        int64        `json:"raw_bytes"`
	GoVersion       string       `json:"go_version"`
	GOMAXPROCS      int          `json:"gomaxprocs"`
	NumCPU          int          `json:"num_cpu"`
	AdaptInterval   int          `json:"adapt_interval"`
	PipelineDepth   int          `json:"pipeline_depth"`
	ADPSampleShards int          `json:"adp_sample_shards"`
	Repeats         int          `json:"repeats"`
	Points          []ScalePoint `json:"points"`
	// HeadlineSpeedup is tuned/baseline at Workers=8, Shards=8 — the
	// acceptance number for the pipelined/amortized execution path.
	HeadlineSpeedup float64 `json:"headline_speedup"`
}

// Tuned-knob values the scale benchmark measures against the baseline, and
// the ADP re-evaluation period it runs both sides under. The short interval
// makes trial cost a first-order term, which is the regime the amortized
// knob exists for; production default (50) re-evaluates far less often.
const (
	scaleAdaptInterval = 2
	scalePipelineDepth = 2
	scaleSampleShards  = 1
	scaleRepeats       = 2
)

// scaleGrid is the benchmark's (Workers, Shards) matrix.
var scaleGrid = []struct{ workers, shards int }{
	{1, 1}, {2, 1}, {4, 1}, {8, 1},
	{1, 8}, {2, 8}, {4, 8}, {8, 8},
}

// RunScale measures multi-worker Writer compress throughput over the
// Workers x Shards grid, baseline knobs vs tuned knobs per point.
func RunScale(cfg Config) (*ScaleReport, error) {
	const name, bs = "Copper-B", 10
	d, err := load(name, cfg)
	if err != nil {
		return nil, err
	}
	frames := make([]mdz.Frame, d.M())
	for i, f := range d.Frames {
		frames[i] = mdz.Frame{X: f.X, Y: f.Y, Z: f.Z}
	}
	raw := int64(d.SizeBytes())
	rep := &ScaleReport{
		Dataset:         name,
		Snapshots:       d.M(),
		Atoms:           d.N(),
		BatchSize:       bs,
		RawBytes:        raw,
		GoVersion:       runtime.Version(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		NumCPU:          runtime.NumCPU(),
		AdaptInterval:   scaleAdaptInterval,
		PipelineDepth:   scalePipelineDepth,
		ADPSampleShards: scaleSampleShards,
		Repeats:         scaleRepeats,
	}
	for _, g := range scaleGrid {
		base := mdz.Config{
			ErrorBound: 1e-4, Method: mdz.ADP, BufferSize: bs,
			AdaptInterval: scaleAdaptInterval, CheckpointInterval: 4,
			Workers: g.workers, Shards: g.shards,
		}
		tuned := base
		tuned.PipelineDepth = scalePipelineDepth
		tuned.ADPSampleShards = scaleSampleShards

		bMBps, bRatio, err := scaleRun(base, frames, raw)
		if err != nil {
			return nil, fmt.Errorf("scale baseline w=%d k=%d: %w", g.workers, g.shards, err)
		}
		tMBps, tRatio, err := scaleRun(tuned, frames, raw)
		if err != nil {
			return nil, fmt.Errorf("scale tuned w=%d k=%d: %w", g.workers, g.shards, err)
		}
		pt := ScalePoint{
			Workers: g.workers, Shards: g.shards,
			BaselineMBps: bMBps, TunedMBps: tMBps,
			BaselineRatio: bRatio, TunedRatio: tRatio,
		}
		if bMBps > 0 {
			pt.Speedup = tMBps / bMBps
		}
		rep.Points = append(rep.Points, pt)
		if g.workers == 8 && g.shards == 8 {
			rep.HeadlineSpeedup = pt.Speedup
		}
	}
	return rep, nil
}

// scaleRun times one configuration: best wall clock of scaleRepeats full
// Writer runs into io.Discard, each on a fresh Writer so ADP state and the
// pipeline start cold. Returns raw MB/s and the compression ratio.
func scaleRun(cfg mdz.Config, frames []mdz.Frame, raw int64) (mbPerS, ratio float64, err error) {
	var bestNS int64
	var comp int64
	for rep := 0; rep < scaleRepeats; rep++ {
		w, err := mdz.NewWriter(io.Discard, cfg)
		if err != nil {
			return 0, 0, err
		}
		start := time.Now()
		for _, f := range frames {
			if err := w.WriteFrame(f); err != nil {
				return 0, 0, err
			}
		}
		if err := w.Close(); err != nil {
			return 0, 0, err
		}
		ns := time.Since(start).Nanoseconds()
		if bestNS == 0 || ns < bestNS {
			bestNS = ns
		}
		_, comp = w.Stats()
	}
	if comp > 0 {
		ratio = float64(raw) / float64(comp)
	}
	return mbps(raw, bestNS), ratio, nil
}

// WriteJSON writes the report as indented JSON.
func (r *ScaleReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadScaleReport parses a report written by WriteJSON.
func ReadScaleReport(data []byte) (*ScaleReport, error) {
	var r ScaleReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// WriteText renders the report as an aligned human-readable table.
func (r *ScaleReport) WriteText(w io.Writer) error {
	_, err := fmt.Fprintf(w, "scale benchmark: %s (%d snapshots x %d atoms, batch %d, %s, GOMAXPROCS=%d/%d CPUs)\n"+
		"tuned knobs: pipeline_depth=%d adp_sample_shards=%d, ADP re-eval every %d batches\n",
		r.Dataset, r.Snapshots, r.Atoms, r.BatchSize, r.GoVersion, r.GOMAXPROCS, r.NumCPU,
		r.PipelineDepth, r.ADPSampleShards, r.AdaptInterval)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %-7s %14s %12s %9s %10s %10s\n",
		"workers", "shards", "base MB/s", "tuned MB/s", "speedup", "base CR", "tuned CR")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-8d %-7d %14.1f %12.1f %8.2fx %10.2f %10.2f\n",
			p.Workers, p.Shards, p.BaselineMBps, p.TunedMBps, p.Speedup, p.BaselineRatio, p.TunedRatio)
	}
	fmt.Fprintf(w, "headline (workers=8 shards=8): %.2fx\n", r.HeadlineSpeedup)
	return nil
}

// CompareScale renders old-vs-new deltas. Scaling throughput is wall-clock
// on whatever host runs it, so every check is warn-only: WARNING lines for
// per-point tuned-throughput drops past the noise margin and for a headline
// speedup that fell below the acceptance bar. It never returns a gating
// error — CI treats the scale diff as advisory.
func CompareScale(w io.Writer, old, cur *ScaleReport) error {
	if _, err := fmt.Fprintf(w, "scale benchmark vs baseline (%s GOMAXPROCS=%d -> %s GOMAXPROCS=%d)\n",
		old.GoVersion, old.GOMAXPROCS, cur.GoVersion, cur.GOMAXPROCS); err != nil {
		return err
	}
	oldPts := map[[2]int]ScalePoint{}
	for _, p := range old.Points {
		oldPts[[2]int{p.Workers, p.Shards}] = p
	}
	const margin = 0.85
	for _, p := range cur.Points {
		o, ok := oldPts[[2]int{p.Workers, p.Shards}]
		if !ok {
			fmt.Fprintf(w, "w=%d k=%d: (no baseline point)\n", p.Workers, p.Shards)
			continue
		}
		fmt.Fprintf(w, "w=%d k=%d: tuned %8.1f -> %8.1f MB/s (%+.0f%%), speedup %.2fx -> %.2fx\n",
			p.Workers, p.Shards, o.TunedMBps, p.TunedMBps, pct(o.TunedMBps, p.TunedMBps), o.Speedup, p.Speedup)
		if p.TunedMBps < o.TunedMBps*margin {
			fmt.Fprintf(w, "WARNING: w=%d k=%d tuned throughput regressed %.1f -> %.1f MB/s\n",
				p.Workers, p.Shards, o.TunedMBps, p.TunedMBps)
		}
	}
	fmt.Fprintf(w, "headline: %.2fx -> %.2fx\n", old.HeadlineSpeedup, cur.HeadlineSpeedup)
	if cur.HeadlineSpeedup < 1.5 {
		fmt.Fprintf(w, "WARNING: headline speedup %.2fx below the 1.5x acceptance bar\n", cur.HeadlineSpeedup)
	}
	return nil
}
