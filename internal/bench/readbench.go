package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	mdz "github.com/mdz/mdz"
)

// ReadPoint is one (Pipeline, Workers) grid point of the read benchmark:
// full-stream decode throughput through the Reader with the given pipeline
// depth and worker count. Speedup is against the serial point (0, 1).
type ReadPoint struct {
	Pipeline int     `json:"pipeline"`
	Workers  int     `json:"workers"`
	MBps     float64 `json:"mb_per_s"`
	Speedup  float64 `json:"speedup"`
}

// ReadReport is the machine-readable output of RunRead, committed as
// BENCH_read.json. It measures the two halves of the fast read path on an
// indexed stream: random access (ReadRange of a tail window vs decoding the
// serial prefix to reach it) and pipelined parallel full decode (the
// Pipeline x Workers grid). Decoded frames are byte-identical across every
// configuration, so the numbers differ only in wall clock.
type ReadReport struct {
	Dataset     string `json:"dataset"`
	Snapshots   int    `json:"snapshots"`
	Atoms       int    `json:"atoms"`
	BatchSize   int    `json:"batch_size"`
	RawBytes    int64  `json:"raw_bytes"`
	StreamBytes int64  `json:"stream_bytes"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
	Repeats     int    `json:"repeats"`

	// Random access: the half-open tail window [WindowLo, WindowHi) — about
	// 1% of the stream — read by seeking through the index (RangedMs) vs by
	// decoding every prefix block serially until the window is reached
	// (SerialPrefixMs). RangedSpeedup is their ratio; the acceptance bar is
	// 10x.
	WindowLo       int     `json:"window_lo"`
	WindowHi       int     `json:"window_hi"`
	SerialPrefixMs float64 `json:"serial_prefix_ms"`
	RangedMs       float64 `json:"ranged_ms"`
	RangedSpeedup  float64 `json:"ranged_speedup"`

	Points []ReadPoint `json:"points"`
	// HeadlineSpeedup is the pipelined full-decode speedup at the
	// (pipeline=8, workers=8) grid point.
	HeadlineSpeedup float64 `json:"headline_speedup"`
}

const readRepeats = 3

// readGrid is the (Pipeline, Workers) matrix; (0, 1) is the serial
// baseline every speedup is normalized against.
var readGrid = []struct{ pipeline, workers int }{
	{0, 1}, {0, 4}, {2, 2}, {4, 4}, {8, 8},
}

// readTile repeats the generated trajectory to lengthen the stream: random
// access is only interesting when the serial prefix is long, and the dataset
// analogs are sized for compression studies, not for seek distance.
const readTile = 4

// RunRead measures the fast read path over an indexed in-memory stream.
func RunRead(cfg Config) (*ReadReport, error) {
	const name, bs = "Copper-B", 10
	d, err := load(name, cfg)
	if err != nil {
		return nil, err
	}
	frames := make([]mdz.Frame, 0, d.M()*readTile)
	for t := 0; t < readTile; t++ {
		for _, f := range d.Frames {
			frames = append(frames, mdz.Frame{X: f.X, Y: f.Y, Z: f.Z})
		}
	}
	raw := int64(d.SizeBytes()) * readTile

	// CheckpointInterval 1 puts a resume point after every batch, so a seek
	// re-decodes at most one batch of prefix — the configuration a stream
	// written for random access would use.
	var sb bytes.Buffer
	w, err := mdz.NewWriter(&sb, mdz.Config{
		ErrorBound: 1e-4, Method: mdz.ADP, BufferSize: bs,
		CheckpointInterval: 1, SeekIndex: true,
	})
	if err != nil {
		return nil, err
	}
	for _, f := range frames {
		if err := w.WriteFrame(f); err != nil {
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	stream := sb.Bytes()

	rep := &ReadReport{
		Dataset:     name,
		Snapshots:   len(frames),
		Atoms:       d.N(),
		BatchSize:   bs,
		RawBytes:    raw,
		StreamBytes: int64(len(stream)),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Repeats:     readRepeats,
	}

	// Random access: a ~1% window at the stream tail.
	win := len(frames) / 100
	if win < 1 {
		win = 1
	}
	rep.WindowLo, rep.WindowHi = len(frames)-win, len(frames)

	serialNS, err := bestOf(func() error {
		r := mdz.NewReader(bytes.NewReader(stream))
		delivered := 0
		for delivered < rep.WindowHi {
			if _, err := r.ReadFrame(); err != nil {
				return err
			}
			delivered++
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("read bench serial prefix: %w", err)
	}
	rangedNS, err := bestOf(func() error {
		r := mdz.NewReader(bytes.NewReader(stream))
		got, err := r.ReadRange(rep.WindowLo, rep.WindowHi)
		if err != nil {
			return err
		}
		if len(got) != win {
			return fmt.Errorf("ranged read returned %d frames, want %d", len(got), win)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("read bench ranged: %w", err)
	}
	rep.SerialPrefixMs = float64(serialNS) / 1e6
	rep.RangedMs = float64(rangedNS) / 1e6
	if rangedNS > 0 {
		rep.RangedSpeedup = float64(serialNS) / float64(rangedNS)
	}

	// Full-stream decode over the Pipeline x Workers grid.
	var serialMBps float64
	for _, g := range readGrid {
		ns, err := bestOf(func() error {
			r := mdz.NewReaderWith(bytes.NewReader(stream),
				mdz.ReaderOptions{Pipeline: g.pipeline, Workers: g.workers})
			defer r.Close()
			got, err := r.ReadAll()
			if err != nil {
				return err
			}
			if len(got) != len(frames) {
				return fmt.Errorf("decoded %d frames, want %d", len(got), len(frames))
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("read bench p=%d w=%d: %w", g.pipeline, g.workers, err)
		}
		pt := ReadPoint{Pipeline: g.pipeline, Workers: g.workers, MBps: mbps(raw, ns)}
		if g.pipeline == 0 && g.workers == 1 {
			serialMBps = pt.MBps
		}
		if serialMBps > 0 {
			pt.Speedup = pt.MBps / serialMBps
		}
		rep.Points = append(rep.Points, pt)
		if g.pipeline == 8 && g.workers == 8 {
			rep.HeadlineSpeedup = pt.Speedup
		}
	}
	return rep, nil
}

// bestOf times f readRepeats times and returns the best wall clock.
func bestOf(f func() error) (int64, error) {
	var best int64
	for i := 0; i < readRepeats; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		ns := time.Since(start).Nanoseconds()
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best, nil
}

// WriteJSON writes the report as indented JSON.
func (r *ReadReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReadReport parses a report written by WriteJSON.
func ReadReadReport(data []byte) (*ReadReport, error) {
	var r ReadReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// WriteText renders the report as an aligned human-readable table.
func (r *ReadReport) WriteText(w io.Writer) error {
	_, err := fmt.Fprintf(w, "read benchmark: %s (%d snapshots x %d atoms, batch %d, %s, GOMAXPROCS=%d/%d CPUs)\n"+
		"random access window [%d, %d): serial prefix %.2f ms, ranged %.2f ms (%.0fx)\n",
		r.Dataset, r.Snapshots, r.Atoms, r.BatchSize, r.GoVersion, r.GOMAXPROCS, r.NumCPU,
		r.WindowLo, r.WindowHi, r.SerialPrefixMs, r.RangedMs, r.RangedSpeedup)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-9s %-8s %12s %9s\n", "pipeline", "workers", "MB/s", "speedup")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-9d %-8d %12.1f %8.2fx\n", p.Pipeline, p.Workers, p.MBps, p.Speedup)
	}
	fmt.Fprintf(w, "headline (pipeline=8 workers=8): %.2fx\n", r.HeadlineSpeedup)
	return nil
}

// CompareRead renders old-vs-new deltas. Decode throughput is wall-clock on
// whatever host runs it, so every check is warn-only: WARNING lines for
// grid points that regressed past the noise margin and for a ranged-access
// speedup under the 10x acceptance bar. It never returns a gating error —
// CI treats the read diff as advisory.
func CompareRead(w io.Writer, old, cur *ReadReport) error {
	if _, err := fmt.Fprintf(w, "read benchmark vs baseline (%s GOMAXPROCS=%d -> %s GOMAXPROCS=%d)\n",
		old.GoVersion, old.GOMAXPROCS, cur.GoVersion, cur.GOMAXPROCS); err != nil {
		return err
	}
	fmt.Fprintf(w, "ranged access: %.0fx -> %.0fx\n", old.RangedSpeedup, cur.RangedSpeedup)
	if cur.RangedSpeedup < 10 {
		fmt.Fprintf(w, "WARNING: ranged-access speedup %.1fx below the 10x acceptance bar\n", cur.RangedSpeedup)
	}
	oldPts := map[[2]int]ReadPoint{}
	for _, p := range old.Points {
		oldPts[[2]int{p.Pipeline, p.Workers}] = p
	}
	const margin = 0.85
	for _, p := range cur.Points {
		o, ok := oldPts[[2]int{p.Pipeline, p.Workers}]
		if !ok {
			fmt.Fprintf(w, "p=%d w=%d: (no baseline point)\n", p.Pipeline, p.Workers)
			continue
		}
		fmt.Fprintf(w, "p=%d w=%d: %8.1f -> %8.1f MB/s (%+.0f%%)\n",
			p.Pipeline, p.Workers, o.MBps, p.MBps, pct(o.MBps, p.MBps))
		if p.MBps < o.MBps*margin {
			fmt.Fprintf(w, "WARNING: p=%d w=%d decode throughput regressed %.1f -> %.1f MB/s\n",
				p.Pipeline, p.Workers, o.MBps, p.MBps)
		}
	}
	fmt.Fprintf(w, "headline: %.2fx -> %.2fx\n", old.HeadlineSpeedup, cur.HeadlineSpeedup)
	return nil
}
