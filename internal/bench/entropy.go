package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	mdz "github.com/mdz/mdz"
)

// EntropyStage is one pipeline stage's cost in the entropy benchmark.
type EntropyStage struct {
	NsPerValue float64 `json:"ns_per_value"`
	MBps       float64 `json:"mb_per_s"`
}

// EntropyMethod aggregates one method's entropy-benchmark results.
type EntropyMethod struct {
	Ratio      float64                 `json:"compression_ratio"`
	EncodeMBps float64                 `json:"encode_mb_per_s"`
	DecodeMBps float64                 `json:"decode_mb_per_s"`
	Encode     map[string]EntropyStage `json:"encode_stages"`
	Decode     map[string]EntropyStage `json:"decode_stages"`
}

// EntropyReport is the machine-readable output of RunEntropy, committed as
// BENCH_entropy.json and diffed by `make bench-compare`. Stage numbers come
// from the pipeline telemetry (per-shard stopwatches), wall-clock numbers
// from timing the public API; both are single-worker single-shard so they
// measure the hot path, not the scheduler.
type EntropyReport struct {
	Dataset   string                   `json:"dataset"`
	Snapshots int                      `json:"snapshots"`
	Atoms     int                      `json:"atoms"`
	BatchSize int                      `json:"batch_size"`
	RawBytes  int64                    `json:"raw_bytes"`
	GoVersion string                   `json:"go_version"`
	Methods   map[string]EntropyMethod `json:"methods"`
	// V3Methods holds the same benchmark run with Config.FormatVersion 3
	// (dual-lane entropy coding). Comparisons are within-format only: v2
	// numbers diff against v2 baselines, v3 against v3.
	V3Methods map[string]EntropyMethod `json:"v3_methods,omitempty"`
}

// entropyStageNames maps telemetry histogram suffixes to report keys.
var entropyStages = []struct{ key, encHist, decHist string }{
	{"predict_quant", "compress.stage.predict_quant.ns", "decompress.stage.dequant.ns"},
	{"huffman", "compress.stage.huffman.ns", "decompress.stage.huffman.ns"},
	{"lossless", "compress.stage.lossless.ns", "decompress.stage.lossless.ns"},
}

// RunEntropy benchmarks the compression pipeline per method on one dataset
// analog, with telemetry attributing time to the prediction+quantization,
// Huffman, and lossless-backend stages. formats selects which wire-format
// versions to measure (2, 3, or both); empty means both. Format-2 results
// land in Methods, format-3 results in V3Methods.
func RunEntropy(cfg Config, formats ...int) (*EntropyReport, error) {
	const name, bs = "Copper-B", 10
	d, err := load(name, cfg)
	if err != nil {
		return nil, err
	}
	var batches [][]mdz.Frame
	for _, b := range d.Batches(bs) {
		fb := make([]mdz.Frame, len(b))
		for i, f := range b {
			fb[i] = mdz.Frame{X: f.X, Y: f.Y, Z: f.Z}
		}
		batches = append(batches, fb)
	}
	raw := int64(d.SizeBytes())
	values := int64(d.M() * d.N() * 3)
	rep := &EntropyReport{
		Dataset:   name,
		Snapshots: d.M(),
		Atoms:     d.N(),
		BatchSize: bs,
		RawBytes:  raw,
		GoVersion: runtime.Version(),
		Methods:   map[string]EntropyMethod{},
	}
	if len(formats) == 0 {
		formats = []int{2, 3}
	}
	for _, ver := range formats {
		dst := rep.Methods
		if ver == 3 {
			rep.V3Methods = map[string]EntropyMethod{}
			dst = rep.V3Methods
		} else if ver != 2 {
			return nil, fmt.Errorf("entropy: unsupported format version %d", ver)
		}
		for _, m := range []mdz.Method{mdz.VQ, mdz.VQT, mdz.MT, mdz.ADP} {
			em, err := runEntropyMethod(m, ver, batches, raw, values)
			if err != nil {
				return nil, fmt.Errorf("entropy %v (format v%d): %w", m, ver, err)
			}
			dst[m.String()] = em
		}
	}
	return rep, nil
}

func runEntropyMethod(m mdz.Method, formatVersion int, batches [][]mdz.Frame, raw, values int64) (EntropyMethod, error) {
	c, err := mdz.NewCompressor(mdz.Config{
		ErrorBound:    1e-4,
		Method:        m,
		Shards:        1,
		Workers:       1,
		FormatVersion: formatVersion,
		Telemetry:     true,
	})
	if err != nil {
		return EntropyMethod{}, err
	}
	blocks := make([][]byte, len(batches))
	var compressed int64
	start := time.Now()
	for i, b := range batches {
		blk, err := c.CompressBatch(b)
		if err != nil {
			return EntropyMethod{}, err
		}
		blocks[i] = blk
		compressed += int64(len(blk))
	}
	encWall := time.Since(start)

	dec := mdz.NewDecompressorWith(mdz.DecompressorOptions{Workers: 1, Telemetry: true})
	start = time.Now()
	for _, blk := range blocks {
		if _, err := dec.DecompressBatch(blk); err != nil {
			return EntropyMethod{}, err
		}
	}
	decWall := time.Since(start)

	em := EntropyMethod{
		Ratio:      float64(raw) / float64(compressed),
		EncodeMBps: mbps(raw, encWall.Nanoseconds()),
		DecodeMBps: mbps(raw, decWall.Nanoseconds()),
		Encode:     map[string]EntropyStage{},
		Decode:     map[string]EntropyStage{},
	}
	// Encode-side stage time is normalized by the telemetry values counter
	// (ADP trial compressions do real stage work on extra values); decode
	// touches each value exactly once.
	encSnap, decSnap := c.Telemetry(), dec.Telemetry()
	encValues := encSnap.Counters["compress.quant.values"]
	if encValues == 0 {
		encValues = values
	}
	for _, s := range entropyStages {
		em.Encode[s.key] = stageCost(encSnap.Histograms[s.encHist].Sum, encValues)
		em.Decode[s.key] = stageCost(decSnap.Histograms[s.decHist].Sum, values)
	}
	return em, nil
}

func stageCost(ns, values int64) EntropyStage {
	if ns == 0 || values == 0 {
		return EntropyStage{}
	}
	return EntropyStage{
		NsPerValue: float64(ns) / float64(values),
		MBps:       mbps(values*8, ns),
	}
}

func mbps(bytes, ns int64) float64 {
	if ns == 0 {
		return 0
	}
	return float64(bytes) / 1e6 / (float64(ns) / 1e9)
}

// WriteJSON writes the report as indented JSON.
func (r *EntropyReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadEntropyReport parses a report written by WriteJSON.
func ReadEntropyReport(data []byte) (*EntropyReport, error) {
	var r EntropyReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// methodOrder returns the report's methods in stable display order.
func (r *EntropyReport) methodOrder() []string { return methodOrder(r.Methods) }

func methodOrder(methods map[string]EntropyMethod) []string {
	order := []string{"VQ", "VQT", "MT", "ADP"}
	var out []string
	for _, m := range order {
		if _, ok := methods[m]; ok {
			out = append(out, m)
		}
	}
	var extra []string
	for m := range methods {
		found := false
		for _, o := range order {
			if m == o {
				found = true
				break
			}
		}
		if !found {
			extra = append(extra, m)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// WriteText renders the report as an aligned human-readable table, with a
// second section for the v3 run when the report carries one.
func (r *EntropyReport) WriteText(w io.Writer) error {
	_, err := fmt.Fprintf(w, "entropy benchmark: %s (%d snapshots x %d atoms, batch %d, %s)\n",
		r.Dataset, r.Snapshots, r.Atoms, r.BatchSize, r.GoVersion)
	if err != nil {
		return err
	}
	sections := []struct {
		label   string
		methods map[string]EntropyMethod
	}{{"format v2", r.Methods}, {"format v3", r.V3Methods}}
	for _, sec := range sections {
		if len(sec.methods) == 0 {
			continue
		}
		fmt.Fprintf(w, "[%s]\n", sec.label)
		fmt.Fprintf(w, "%-6s %8s %10s %10s   %-28s %-28s\n",
			"method", "CR", "enc MB/s", "dec MB/s", "enc ns/val (pq/huf/ll)", "dec ns/val (pq/huf/ll)")
		for _, m := range methodOrder(sec.methods) {
			em := sec.methods[m]
			fmt.Fprintf(w, "%-6s %8.2f %10.1f %10.1f   %-28s %-28s\n",
				m, em.Ratio, em.EncodeMBps, em.DecodeMBps,
				stageTriple(em.Encode), stageTriple(em.Decode))
		}
	}
	return nil
}

func stageTriple(stages map[string]EntropyStage) string {
	return fmt.Sprintf("%.1f / %.1f / %.1f",
		stages["predict_quant"].NsPerValue,
		stages["huffman"].NsPerValue,
		stages["lossless"].NsPerValue)
}

// CompareEntropy renders old-vs-new deltas of the headline numbers, within
// format only: v2 results diff against the baseline's v2 section and v3
// against its v3 section. Positive throughput deltas and CR deltas are
// improvements. Throughput drops past the machine-noise margin print
// WARNING lines; a compression-ratio regression beyond 2% on any method is
// deterministic (same inputs, same algorithm) and returns an error so CI
// fails loudly.
func CompareEntropy(w io.Writer, old, cur *EntropyReport) error {
	if _, err := fmt.Fprintf(w, "entropy benchmark vs baseline (%s -> %s)\n", old.GoVersion, cur.GoVersion); err != nil {
		return err
	}
	var ratioErr error
	sections := []struct {
		label    string
		old, cur map[string]EntropyMethod
	}{{"format v2", old.Methods, cur.Methods}, {"format v3", old.V3Methods, cur.V3Methods}}
	for _, sec := range sections {
		if len(sec.cur) == 0 {
			continue
		}
		if len(sec.old) == 0 {
			fmt.Fprintf(w, "[%s] (no baseline section)\n", sec.label)
			continue
		}
		fmt.Fprintf(w, "[%s]\n", sec.label)
		fmt.Fprintf(w, "%-6s %18s %22s %22s\n", "method", "CR", "enc MB/s", "dec MB/s")
		for _, m := range methodOrder(sec.cur) {
			n := sec.cur[m]
			o, ok := sec.old[m]
			if !ok {
				fmt.Fprintf(w, "%-6s (no baseline)\n", m)
				continue
			}
			fmt.Fprintf(w, "%-6s %8.2f -> %6.2f %10.1f -> %8.1f %10.1f -> %8.1f  (%+.0f%% dec)\n",
				m, o.Ratio, n.Ratio, o.EncodeMBps, n.EncodeMBps, o.DecodeMBps, n.DecodeMBps,
				pct(o.DecodeMBps, n.DecodeMBps))
			// Wall-clock throughput is advisory (~±10% noise on shared
			// runners): warn, don't fail.
			const margin = 0.85
			if n.EncodeMBps < o.EncodeMBps*margin {
				fmt.Fprintf(w, "WARNING: %s %s encode throughput regressed %.1f -> %.1f MB/s\n", sec.label, m, o.EncodeMBps, n.EncodeMBps)
			}
			if n.DecodeMBps < o.DecodeMBps*margin {
				fmt.Fprintf(w, "WARNING: %s %s decode throughput regressed %.1f -> %.1f MB/s\n", sec.label, m, o.DecodeMBps, n.DecodeMBps)
			}
			if n.Ratio < o.Ratio*0.98 && ratioErr == nil {
				ratioErr = fmt.Errorf("entropy: %s %s compression ratio regressed beyond 2%%: %.3f -> %.3f", sec.label, m, o.Ratio, n.Ratio)
			}
		}
	}
	return ratioErr
}

func pct(old, cur float64) float64 {
	if old == 0 {
		return 0
	}
	return (cur - old) / old * 100
}
