package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestReadReportShape runs the read benchmark at unit-test scale and checks
// the report's invariants: the full grid is present with positive throughput,
// both halves of the random-access measurement ran, the headline point
// exists, and the report survives a JSON round-trip and a self-comparison.
func TestReadReportShape(t *testing.T) {
	rep, err := RunRead(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != len(readGrid) {
		t.Fatalf("report has %d points, want %d", len(rep.Points), len(readGrid))
	}
	for _, p := range rep.Points {
		if p.MBps <= 0 || p.Speedup <= 0 {
			t.Errorf("p=%d w=%d: non-positive measurement %+v", p.Pipeline, p.Workers, p)
		}
	}
	if rep.HeadlineSpeedup <= 0 {
		t.Fatal("headline point (pipeline=8 workers=8) missing from the grid")
	}
	if rep.SerialPrefixMs <= 0 || rep.RangedMs <= 0 || rep.RangedSpeedup <= 0 {
		t.Errorf("random-access half not measured: %+v", rep)
	}
	if rep.WindowLo < 0 || rep.WindowHi <= rep.WindowLo || rep.WindowHi > rep.Snapshots {
		t.Errorf("bad window [%d, %d) over %d snapshots", rep.WindowLo, rep.WindowHi, rep.Snapshots)
	}
	if rep.StreamBytes <= 0 || rep.StreamBytes >= rep.RawBytes {
		t.Errorf("stream not compressed: %d of %d raw bytes", rep.StreamBytes, rep.RawBytes)
	}
	if rep.GOMAXPROCS <= 0 || rep.NumCPU <= 0 {
		t.Errorf("host info not recorded: GOMAXPROCS=%d NumCPU=%d", rep.GOMAXPROCS, rep.NumCPU)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReadReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != len(rep.Points) || back.RangedSpeedup != rep.RangedSpeedup {
		t.Fatal("JSON round-trip changed the report")
	}

	var table, diff strings.Builder
	if err := rep.WriteText(&table); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "headline") {
		t.Error("text table missing headline line")
	}
	// Self-comparison is clean and warn-only by contract: never an error.
	if err := CompareRead(&diff, back, rep); err != nil {
		t.Fatalf("self-compare returned a gating error: %v", err)
	}
}
