package bench

import (
	"fmt"
	"time"

	"github.com/mdz/mdz/internal/codec"
	"github.com/mdz/mdz/internal/core"
	"github.com/mdz/mdz/internal/dataset"
	"github.com/mdz/mdz/internal/kmeans"
	"github.com/mdz/mdz/internal/quant"
	"github.com/mdz/mdz/internal/sz3"
)

func init() {
	register("ext1", "extension: interpolation (SZ3-style) vs MDZ on MD data", runExt1)
	register("abl1", "ablation: ADP re-evaluation interval and overhead", runAbl1)
	register("abl2", "ablation: k-means sampling fraction for the VQ level model", runAbl2)
}

// runExt1 checks the paper's claim (§II, citing [16]) that general
// interpolation-based compressors like SZ-Interp/SZ3 are sub-optimal on MD
// data: MDZ should beat the interpolation codec on every MD dataset.
func runExt1(cfg Config) (*Report, error) {
	rep := &Report{
		ID: "ext1", Title: Title("ext1"),
		Columns: []string{"dataset", "MDZ", "SZ3i", "MDZ/SZ3i"},
		Notes: []string{
			"paper SII cites prior work: interpolation compressors are sub-optimal on MD data",
			"SZ3i interpolates along each particle's time series (its best layout); eps=1E-3, BS=10",
		},
	}
	for _, name := range []string{"Copper-B", "Helium-B", "ADK", "Pt", "LJ"} {
		d, err := load(name, cfg)
		if err != nil {
			return nil, err
		}
		mdzRes, err := RunCodec(d, codec.MDZFactory{}, RunOptions{Epsilon: 1e-3, BufferSize: 10})
		if err != nil {
			return nil, err
		}
		szRes, err := RunCodec(d, codec.FromBatch(&sz3.Compressor{}), RunOptions{Epsilon: 1e-3, BufferSize: 10})
		if err != nil {
			return nil, err
		}
		rep.AddRow(name, mdzRes.CR, szRes.CR, mdzRes.CR/szRes.CR)
	}
	return rep, nil
}

// runAbl1 sweeps ADP's re-evaluation interval, measuring both the CR it
// achieves and the evaluation overhead (extra encode work), validating the
// paper's choice of 50 with <6% overhead (§VI-D).
func runAbl1(cfg Config) (*Report, error) {
	rep := &Report{
		ID: "abl1", Title: Title("abl1"),
		Columns: []string{"dataset", "interval", "CR", "evalOverhead%", "projOverhead%@5423snaps"},
		Notes: []string{
			"paper SVI-D: interval 50 keeps selection fresh at <6% overhead",
			"overhead = extra encode passes from 3-way evaluations / total encodes",
			"projected column amortizes over the paper's Copper-B run length (5423 snapshots)",
		},
	}
	for _, name := range []string{"Helium-B", "Copper-B"} {
		d, err := load(name, cfg)
		if err != nil {
			return nil, err
		}
		series := d.AxisSeries(dataset.AxisX)
		lo, hi := seriesRange(series)
		eb := quant.AbsBound(1e-3, lo, hi)
		for _, interval := range []int{1, 5, 10, 50, 200} {
			enc, err := core.NewEncoder(core.Params{
				ErrorBound: eb, Method: core.ADP, AdaptInterval: interval,
			})
			if err != nil {
				return nil, err
			}
			var comp, raw int
			for start := 0; start < len(series); start += 10 {
				end := start + 10
				if end > len(series) {
					end = len(series)
				}
				blk, err := enc.EncodeBatch(series[start:end])
				if err != nil {
					return nil, err
				}
				comp += len(blk)
				raw += (end - start) * d.N() * 8
			}
			// Each evaluation encodes the batch 3x instead of 1x: 2 extra
			// passes per evaluation.
			batches := enc.Stats.Batches
			overhead := 200 * float64(enc.Stats.Evaluations) / float64(batches+2*enc.Stats.Evaluations)
			// Long-run projection at the paper's Copper-B scale: warm-up
			// evaluations amortize away.
			projBatches := 5423 / 10
			projEvals := 2 + (projBatches-2)/interval
			proj := 200 * float64(projEvals) / float64(projBatches+2*projEvals)
			rep.AddRow(name, interval, float64(raw)/float64(comp), overhead, proj)
		}
	}
	return rep, nil
}

// runAbl2 sweeps the k-means sampling fraction, validating the paper's 10%
// choice: the level model (and hence VQ's CR) is insensitive to the sample
// size while setup cost grows with it.
func runAbl2(cfg Config) (*Report, error) {
	rep := &Report{
		ID: "abl2", Title: Title("abl2"),
		Columns: []string{"dataset", "sampleFrac", "K", "lambdaErr%", "setupMs", "VQ CR"},
		Notes: []string{
			"paper SVI-A: k-means runs once on a 10% sample of the first snapshot",
			"lambdaErr compares the fitted level distance against the full-data fit",
		},
	}
	for _, name := range []string{"Copper-B", "Helium-B"} {
		d, err := load(name, cfg)
		if err != nil {
			return nil, err
		}
		snap0 := d.Frames[0].X
		full, err := kmeans.Cluster1D(snap0, kmeans.Options{SampleFraction: 1, MaxSample: len(snap0)})
		if err != nil {
			return nil, err
		}
		series := d.AxisSeries(dataset.AxisX)
		lo, hi := seriesRange(series)
		eb := quant.AbsBound(1e-3, lo, hi)
		for _, frac := range []float64{0.01, 0.05, 0.10, 0.50, 1.0} {
			t0 := time.Now()
			res, err := kmeans.Cluster1D(snap0, kmeans.Options{SampleFraction: frac, MaxSample: len(snap0), Seed: 3})
			if err != nil {
				return nil, err
			}
			setup := time.Since(t0)
			lamErr := 100 * abs(res.LevelDistance-full.LevelDistance) / full.LevelDistance
			// VQ CR with this sampling fraction.
			enc, err := core.NewEncoder(core.Params{
				ErrorBound: eb, Method: core.VQ,
				KMeans: kmeans.Options{SampleFraction: frac, MaxSample: len(snap0), Seed: 3},
			})
			if err != nil {
				return nil, err
			}
			var comp, raw int
			for start := 0; start < len(series); start += 10 {
				end := start + 10
				if end > len(series) {
					end = len(series)
				}
				blk, err := enc.EncodeBatch(series[start:end])
				if err != nil {
					return nil, err
				}
				comp += len(blk)
				raw += (end - start) * d.N() * 8
			}
			rep.AddRow(name, fmt.Sprintf("%.0f%%", frac*100), res.K, lamErr,
				float64(setup.Microseconds())/1000, float64(raw)/float64(comp))
		}
	}
	return rep, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
