// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§V and §VII) on the synthesized dataset
// analogs. Each experiment is registered under the paper's identifier
// (fig3…fig16, tab2…tab7) and produces a Report with the same rows/series
// the paper presents.
//
// Absolute numbers differ from the paper (reduced-scale simulated data on
// different hardware); the reproduction target is the *shape* of each
// result: who wins, by roughly what factor, and where crossovers fall.
package bench

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"github.com/mdz/mdz/internal/codec"
	"github.com/mdz/mdz/internal/dataset"
	"github.com/mdz/mdz/internal/gen"
	"github.com/mdz/mdz/internal/hrtc"
	"github.com/mdz/mdz/internal/metrics"
	"github.com/mdz/mdz/internal/quant"
	"github.com/mdz/mdz/internal/tng"
)

// Config controls experiment scale.
type Config struct {
	// Scale multiplies default dataset sizes: 1.0 is the standard reduced
	// scale; <1 shrinks further for unit tests and Go benchmarks.
	Scale float64
	// Seed perturbs dataset generation.
	Seed int64
}

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 1
	}
	return c.Scale
}

// Runner executes one experiment.
type Runner func(Config) (*Report, error)

var (
	regMu    sync.Mutex
	registry = map[string]entry{}
)

type entry struct {
	run   Runner
	title string
}

func register(id, title string, r Runner) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[id] = entry{run: r, title: title}
}

// Experiments lists registered experiment ids in order.
func Experiments() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Title returns an experiment's description.
func Title(id string) string {
	regMu.Lock()
	defer regMu.Unlock()
	return registry[id].title
}

// Run executes the experiment with the given id.
func Run(id string, cfg Config) (*Report, error) {
	regMu.Lock()
	e, ok := registry[id]
	regMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (known: %v)", id, Experiments())
	}
	return e.run(cfg)
}

// --- dataset cache ---------------------------------------------------------

var (
	cacheMu sync.Mutex
	cache   = map[string]*dataset.Dataset{}
)

// load generates (or returns cached) a dataset analog at the configured
// scale. Consumers must not mutate the result.
func load(name string, cfg Config) (*dataset.Dataset, error) {
	key := fmt.Sprintf("%s|%v|%d", name, cfg.scale(), cfg.Seed)
	cacheMu.Lock()
	if d, ok := cache[key]; ok {
		cacheMu.Unlock()
		return d, nil
	}
	cacheMu.Unlock()
	d, err := generateScaled(name, cfg)
	if err != nil {
		return nil, err
	}
	cacheMu.Lock()
	cache[key] = d
	cacheMu.Unlock()
	return d, nil
}

func generateScaled(name string, cfg Config) (*dataset.Dataset, error) {
	s := cfg.scale()
	if s == 1 {
		return gen.Generate(name, gen.Options{Seed: cfg.Seed})
	}
	// Probe defaults by generating metadata-only is not supported; instead
	// scale from the registered defaults through a tiny reflection-free
	// path: gen exposes defaults via Generate with explicit sizes, so look
	// them up here.
	def, ok := defaultSizes[name]
	if !ok {
		return gen.Generate(name, gen.Options{Seed: cfg.Seed})
	}
	snaps := int(math.Max(3, math.Round(float64(def.snaps)*s)))
	atoms := int(math.Max(64, math.Round(float64(def.atoms)*s)))
	return gen.Generate(name, gen.Options{Snapshots: snaps, Atoms: atoms, Seed: cfg.Seed})
}

// defaultSizes mirrors the generator defaults in internal/gen for scaling.
var defaultSizes = map[string]struct{ snaps, atoms int }{
	"Copper-A": {20, 4000},
	"Copper-B": {120, 1372},
	"Helium-A": {40, 2000},
	"Helium-B": {150, 1024},
	"ADK":      {80, 334},
	"IFABP":    {50, 1244},
	"Pt":       {30, 3000},
	"LJ":       {25, 4000},
	"HACC-1":   {15, 8000},
	"HACC-2":   {20, 6000},
}

// --- codec execution -------------------------------------------------------

// CodecResult summarizes one codec run over one dataset.
type CodecResult struct {
	Codec string
	// Excluded reports the paper's runtime-exception emulation (TNG/HRTC
	// above their atom limits, judged on the dataset's original scale).
	Excluded bool
	// CR is the overall compression ratio; PerAxisCR per axis.
	CR        float64
	PerAxisCR [3]float64
	// BitRate is compressed bits per value.
	BitRate float64
	// Err aggregates distortion over all axes.
	Err metrics.ErrorStats
	// PerAxisErr per axis.
	PerAxisErr [3]metrics.ErrorStats
	// EncodeMBps / DecodeMBps are throughputs over the raw payload.
	EncodeMBps, DecodeMBps float64
	// Recon holds reconstructed frames when KeepRecon was set.
	Recon []dataset.Frame
}

// RunOptions tunes RunCodec.
type RunOptions struct {
	// Epsilon is the value-range-based error bound ε.
	Epsilon float64
	// BufferSize is the batch size BS.
	BufferSize int
	// KeepRecon retains reconstructed frames (for RDF analysis).
	KeepRecon bool
}

// Excluded reports whether the paper's version of the named codec failed at
// the dataset's original scale (§VII-A5): HRTC on Copper-A, Helium-A, Pt,
// LJ; TNG on Pt and LJ.
func Excluded(codecName string, meta dataset.Metadata) bool {
	switch codecName {
	case "TNG":
		return meta.OriginalAtoms > tng.MaxAtoms
	case "HRTC":
		return meta.OriginalAtoms > hrtc.MaxAtoms
	}
	return false
}

// RunCodec compresses and decompresses the whole dataset with one codec,
// returning compression and distortion statistics.
func RunCodec(d *dataset.Dataset, f codec.Factory, opt RunOptions) (*CodecResult, error) {
	res := &CodecResult{Codec: f.Name()}
	if Excluded(f.Name(), d.Meta) {
		res.Excluded = true
		return res, nil
	}
	if opt.BufferSize <= 0 {
		opt.BufferSize = 10
	}
	bs := opt.BufferSize
	raw := int64(d.SizeBytes())
	var totalComp int64
	var encDur, decDur time.Duration
	var reconAxes [3][][]float64
	for ai, axis := range dataset.Axes {
		series := d.AxisSeries(axis)
		lo, hi := seriesRange(series)
		eb := quant.AbsBound(opt.Epsilon, lo, hi)
		stream, err := f.New(eb)
		if err != nil {
			return nil, err
		}
		var axisComp int64
		var recon [][]float64
		for start := 0; start < len(series); start += bs {
			end := start + bs
			if end > len(series) {
				end = len(series)
			}
			t0 := time.Now()
			blk, err := stream.Encode(series[start:end])
			encDur += time.Since(t0)
			if err != nil {
				return nil, fmt.Errorf("%s on %s axis %v: %w", f.Name(), d.Meta.Name, axis, err)
			}
			axisComp += int64(len(blk))
			t1 := time.Now()
			out, err := stream.Decode(blk)
			decDur += time.Since(t1)
			if err != nil {
				return nil, fmt.Errorf("%s on %s axis %v decode: %w", f.Name(), d.Meta.Name, axis, err)
			}
			recon = append(recon, out...)
		}
		st, err := metrics.CompareFrames(series, recon)
		if err != nil {
			return nil, err
		}
		res.PerAxisErr[ai] = st
		axisRaw := int64(len(series) * d.N() * 8)
		res.PerAxisCR[ai] = metrics.CompressionRatio(axisRaw, axisComp)
		totalComp += axisComp
		reconAxes[ai] = recon
	}
	res.CR = metrics.CompressionRatio(raw, totalComp)
	res.BitRate = metrics.BitRate(totalComp, d.M()*d.N()*3)
	res.Err = combineStats(res.PerAxisErr[:])
	if encDur > 0 {
		res.EncodeMBps = float64(raw) / encDur.Seconds() / 1e6
	}
	if decDur > 0 {
		res.DecodeMBps = float64(raw) / decDur.Seconds() / 1e6
	}
	if opt.KeepRecon {
		res.Recon = make([]dataset.Frame, d.M())
		for t := 0; t < d.M(); t++ {
			res.Recon[t] = dataset.Frame{
				X: reconAxes[0][t], Y: reconAxes[1][t], Z: reconAxes[2][t],
			}
		}
	}
	return res, nil
}

func seriesRange(series [][]float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, s := range series {
		l, h := quant.Range(s)
		if l < lo {
			lo = l
		}
		if h > hi {
			hi = h
		}
	}
	if lo > hi {
		return 0, 0
	}
	return lo, hi
}

func combineStats(per []metrics.ErrorStats) metrics.ErrorStats {
	var out metrics.ErrorStats
	var sumSq float64
	var rng float64
	for _, st := range per {
		if st.MaxError > out.MaxError {
			out.MaxError = st.MaxError
		}
		sumSq += st.MSE * float64(st.N)
		out.N += st.N
		if st.Range > rng {
			rng = st.Range
		}
	}
	if out.N > 0 {
		out.MSE = sumSq / float64(out.N)
		out.RMSE = math.Sqrt(out.MSE)
		out.Range = rng
		if rng > 0 {
			out.NRMSE = out.RMSE / rng
			if out.MSE > 0 {
				out.PSNR = 20*math.Log10(rng) - 10*math.Log10(out.MSE)
			} else {
				out.PSNR = math.Inf(1)
			}
		}
	}
	return out
}

// SearchEpsilonForCR binary-searches the value-range ε that brings a codec
// to approximately the target compression ratio on the dataset (used by the
// CR-matched distortion study, Table VI / Fig 14).
func SearchEpsilonForCR(d *dataset.Dataset, f codec.Factory, bs int, targetCR float64) (float64, *CodecResult, error) {
	loEps, hiEps := 1e-8, 0.3
	var best *CodecResult
	bestEps := hiEps
	for iter := 0; iter < 18; iter++ {
		mid := math.Sqrt(loEps * hiEps) // geometric bisection
		res, err := RunCodec(d, f, RunOptions{Epsilon: mid, BufferSize: bs})
		if err != nil {
			return 0, nil, err
		}
		if res.Excluded {
			return 0, res, nil
		}
		if best == nil || math.Abs(res.CR-targetCR) < math.Abs(best.CR-targetCR) {
			best = res
			bestEps = mid
		}
		if res.CR > targetCR {
			hiEps = mid // too lossy, tighten
		} else {
			loEps = mid
		}
		if math.Abs(res.CR-targetCR)/targetCR < 0.02 {
			break
		}
	}
	// Re-run at the best ε keeping the reconstruction.
	res, err := RunCodec(d, f, RunOptions{Epsilon: bestEps, BufferSize: bs, KeepRecon: true})
	if err != nil {
		return 0, nil, err
	}
	return bestEps, res, nil
}
