package sz2_test

import (
	"math/rand"
	"testing"

	"github.com/mdz/mdz/internal/codec"
	"github.com/mdz/mdz/internal/codec/codectest"
	"github.com/mdz/mdz/internal/sz2"
)

func TestConformance2D(t *testing.T) {
	codectest.RunConformance(t, codec.FromBatch(&sz2.Compressor{Mode: sz2.Mode2D}))
}

func TestConformance1D(t *testing.T) {
	codectest.RunConformance(t, codec.FromBatch(&sz2.Compressor{Mode: sz2.Mode1D}))
}

func TestNames(t *testing.T) {
	if (&sz2.Compressor{}).Name() != "SZ2-2D" {
		t.Error("default mode should be 2D")
	}
	if (&sz2.Compressor{Mode: sz2.Mode1D}).Name() != "SZ2-1D" {
		t.Error("1D name")
	}
}

// Table IV's shape: on data smooth in both space and time, 2D mode must
// compress better than 1D mode.
func Test2DBeats1DOnSmoothData(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bs, n := 10, 3000
	pos := make([]float64, n)
	for i := range pos {
		// Spatially smooth: neighboring particles have close coordinates.
		pos[i] = float64(i) * 0.01
	}
	batch := make([][]float64, bs)
	for t2 := range batch {
		snap := make([]float64, n)
		for i := range snap {
			pos[i] += rng.NormFloat64() * 0.001
			snap[i] = pos[i]
		}
		batch[t2] = snap
	}
	c2 := &sz2.Compressor{Mode: sz2.Mode2D}
	c1 := &sz2.Compressor{Mode: sz2.Mode1D}
	b2, err := c2.CompressSeries(batch, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := c1.CompressSeries(batch, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if len(b2) >= len(b1) {
		t.Errorf("2D (%d B) should beat 1D (%d B) on smooth data", len(b2), len(b1))
	}
}

func TestCorrupt(t *testing.T) {
	c := &sz2.Compressor{}
	blk, err := c.CompressSeries([][]float64{{1, 2, 3}}, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 3, len(blk) / 2} {
		if _, err := c.DecompressSeries(blk[:cut]); err == nil {
			t.Errorf("prefix %d accepted", cut)
		}
	}
}

func TestBadInputs(t *testing.T) {
	c := &sz2.Compressor{}
	if _, err := c.CompressSeries(nil, 1e-3); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := c.CompressSeries([][]float64{{1}, {1, 2}}, 1e-3); err == nil {
		t.Error("ragged batch accepted")
	}
	if _, err := c.CompressSeries([][]float64{{1}}, 0); err == nil {
		t.Error("zero bound accepted")
	}
}
