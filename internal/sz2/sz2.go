// Package sz2 reimplements the SZ2 error-bounded lossy compressor baseline
// (Tao et al. / Liang et al.) for the comparison study: Lorenzo prediction
// from reconstructed neighbors, linear-scale quantization, Huffman coding,
// and a dictionary-coding (Zstd-role) final stage.
//
// Both evaluation modes of the paper's Table IV are provided: Mode1D treats
// each batch as a flat stream with previous-value (1-D Lorenzo) prediction;
// Mode2D lays the batch out as a snapshots × particles grid and predicts
// each point from its left, up and diagonal reconstructed neighbors,
// exploiting spatial and temporal continuity at once.
package sz2

import (
	"errors"
	"fmt"
	"sync"

	"github.com/mdz/mdz/internal/bitstream"
	"github.com/mdz/mdz/internal/huffman"
	"github.com/mdz/mdz/internal/lossless"
	"github.com/mdz/mdz/internal/quant"
)

// Mode selects the prediction dimensionality.
type Mode uint8

// Prediction modes (Table IV).
const (
	Mode2D Mode = iota // default: the stronger mode, used in the evaluation
	Mode1D
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Mode1D {
		return "1D"
	}
	return "2D"
}

// DefaultQuantScale mirrors SZ2's default of 65536 quantization intervals.
const DefaultQuantScale = 65536

// ErrCorrupt is returned for malformed blocks.
var ErrCorrupt = errors.New("sz2: corrupt block")

// Compressor is a stateless per-batch SZ2 codec.
type Compressor struct {
	// Mode selects 1-D or 2-D Lorenzo prediction (default Mode2D).
	Mode Mode
	// QuantScale overrides the quantization interval count (default 65536).
	QuantScale int
	// Backend overrides the final lossless stage (default lossless.LZ).
	Backend lossless.Backend
}

// Name implements the benchmark Codec naming convention.
func (c *Compressor) Name() string { return "SZ2-" + c.Mode.String() }

func (c *Compressor) backend() lossless.Backend {
	if c.Backend == nil {
		return lossless.LZ{}
	}
	return c.Backend
}

func (c *Compressor) scale() int {
	if c.QuantScale <= 0 {
		return DefaultQuantScale
	}
	return c.QuantScale
}

const blockMagic = "SZ2B"

// huffScratchPool and decBinsPool recycle Huffman encoder state and decoded
// bin buffers across calls, keeping per-series table and symbol-buffer
// allocations off the steady-state path.
var (
	huffScratchPool = sync.Pool{New: func() any { return new(huffman.Scratch) }}
	decBinsPool     = sync.Pool{New: func() any { return new([]int) }}
)

// CompressSeries compresses one axis batch (snapshots × particles) under
// absolute error bound eb.
func (c *Compressor) CompressSeries(batch [][]float64, eb float64) ([]byte, error) {
	if len(batch) == 0 {
		return nil, errors.New("sz2: empty batch")
	}
	n := len(batch[0])
	for i, s := range batch {
		if len(s) != n {
			return nil, fmt.Errorf("sz2: snapshot %d has %d values, want %d", i, len(s), n)
		}
	}
	q, err := quant.New(eb, c.scale())
	if err != nil {
		return nil, err
	}
	bs := len(batch)
	bins := make([]int, 0, bs*n)
	var outliers []byte
	recon := make([][]float64, bs)
	for t := range recon {
		recon[t] = make([]float64, n)
	}
	for t := 0; t < bs; t++ {
		for i := 0; i < n; i++ {
			var pred float64
			switch {
			case c.Mode == Mode1D:
				// Flat stream: previous value, crossing snapshot borders.
				if i > 0 {
					pred = recon[t][i-1]
				} else if t > 0 {
					pred = recon[t-1][n-1]
				}
			default: // Mode2D
				left, up, diag := 0.0, 0.0, 0.0
				if i > 0 {
					left = recon[t][i-1]
				}
				if t > 0 {
					up = recon[t-1][i]
				}
				if i > 0 && t > 0 {
					diag = recon[t-1][i-1]
				}
				switch {
				case i > 0 && t > 0:
					pred = left + up - diag
				case i > 0:
					pred = left
				case t > 0:
					pred = up
				}
			}
			d := batch[t][i]
			code, r, ok := q.Quantize(d, pred)
			if !ok {
				outliers = quant.AppendBounded(outliers, d, eb)
				r = quant.BoundedRecon(d, eb)
				code = quant.Reserved
			}
			bins = append(bins, code)
			recon[t][i] = r
		}
	}
	var payload []byte
	hs := huffScratchPool.Get().(*huffman.Scratch)
	payload, err = hs.EncodeInts(payload, bins)
	huffScratchPool.Put(hs)
	if err != nil {
		return nil, err
	}
	payload = bitstream.AppendSection(payload, outliers)
	compressed, err := c.backend().Compress(payload)
	if err != nil {
		return nil, err
	}
	out := append([]byte{}, blockMagic...)
	out = append(out, byte(c.Mode))
	out = bitstream.AppendFloat64(out, eb)
	out = bitstream.AppendUvarint(out, uint64(c.scale()))
	out = bitstream.AppendUvarint(out, uint64(bs))
	out = bitstream.AppendUvarint(out, uint64(n))
	out = bitstream.AppendSection(out, compressed)
	return out, nil
}

// DecompressSeries inverts CompressSeries.
func (c *Compressor) DecompressSeries(blk []byte) ([][]float64, error) {
	br := bitstream.NewByteReader(blk)
	magic, err := br.ReadBytes(4)
	if err != nil || string(magic) != blockMagic {
		return nil, ErrCorrupt
	}
	modeByte, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	mode := Mode(modeByte)
	if mode != Mode1D && mode != Mode2D {
		return nil, ErrCorrupt
	}
	eb, err := br.ReadFloat64()
	if err != nil {
		return nil, err
	}
	scale, err := br.ReadUvarint()
	if err != nil {
		return nil, err
	}
	bs64, err := br.ReadUvarint()
	if err != nil {
		return nil, err
	}
	n64, err := br.ReadUvarint()
	if err != nil {
		return nil, err
	}
	bs, n := int(bs64), int(n64)
	if bs <= 0 || n < 0 || uint64(bs)*uint64(n) > 1<<33 {
		return nil, ErrCorrupt
	}
	q, err := quant.New(eb, int(scale))
	if err != nil {
		return nil, ErrCorrupt
	}
	compressed, err := br.ReadSection()
	if err != nil {
		return nil, err
	}
	payload, err := c.backend().Decompress(compressed)
	if err != nil {
		return nil, err
	}
	pr := bitstream.NewByteReader(payload)
	bp := decBinsPool.Get().(*[]int)
	defer decBinsPool.Put(bp)
	bins, err := huffman.DecodeIntsBuf(pr, *bp)
	if err != nil {
		return nil, err
	}
	*bp = bins
	outliers, err := pr.ReadSection()
	if err != nil {
		return nil, err
	}
	if len(bins) != bs*n {
		return nil, ErrCorrupt
	}
	opos := 0
	out := make([][]float64, bs)
	for t := range out {
		out[t] = make([]float64, n)
	}
	for t := 0; t < bs; t++ {
		for i := 0; i < n; i++ {
			var pred float64
			switch {
			case mode == Mode1D:
				if i > 0 {
					pred = out[t][i-1]
				} else if t > 0 {
					pred = out[t-1][n-1]
				}
			default:
				left, up, diag := 0.0, 0.0, 0.0
				if i > 0 {
					left = out[t][i-1]
				}
				if t > 0 {
					up = out[t-1][i]
				}
				if i > 0 && t > 0 {
					diag = out[t-1][i-1]
				}
				switch {
				case i > 0 && t > 0:
					pred = left + up - diag
				case i > 0:
					pred = left
				case t > 0:
					pred = up
				}
			}
			code := bins[t*n+i]
			if quant.IsReserved(code) {
				v, n2, err := quant.ReadBounded(outliers[opos:], eb)
				if err != nil {
					return nil, ErrCorrupt
				}
				opos += n2
				out[t][i] = v
			} else {
				out[t][i] = q.Dequantize(code, pred)
			}
		}
	}
	return out, nil
}
