package tng_test

import (
	"errors"
	"testing"

	"github.com/mdz/mdz/internal/codec"
	"github.com/mdz/mdz/internal/codec/codectest"
	"github.com/mdz/mdz/internal/tng"
)

func TestConformance(t *testing.T) {
	codectest.RunConformance(t, codec.FromBatch(&tng.Compressor{}))
}

func TestAtomLimitEmulation(t *testing.T) {
	c := &tng.Compressor{LimitAtoms: 10}
	big := [][]float64{make([]float64, 11)}
	if _, err := c.CompressSeries(big, 1e-3); !errors.Is(err, tng.ErrUnsupported) {
		t.Errorf("expected ErrUnsupported, got %v", err)
	}
	ok := [][]float64{make([]float64, 10)}
	if _, err := c.CompressSeries(ok, 1e-3); err != nil {
		t.Errorf("at-limit frame rejected: %v", err)
	}
	if tng.MaxAtoms != 2_000_000 {
		t.Errorf("MaxAtoms = %d; the paper's TNG handled Copper-A (1.08M) but not Pt (2.37M)", tng.MaxAtoms)
	}
}

func TestInterFrameDeltaHelpsStaticData(t *testing.T) {
	// Static particles: inter-frame deltas are all zero.
	n, bs := 3000, 10
	base := make([]float64, n)
	for i := range base {
		base[i] = float64(i%977) * 0.31
	}
	batch := make([][]float64, bs)
	for t2 := range batch {
		snap := make([]float64, n)
		copy(snap, base)
		batch[t2] = snap
	}
	c := &tng.Compressor{}
	blk, err := c.CompressSeries(batch, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if len(blk) > bs*n {
		t.Errorf("static data compressed to only %d B for %d values", len(blk), bs*n)
	}
	got, err := c.DecompressSeries(blk)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		d := got[bs-1][i] - base[i]
		if d > 1e-4 || d < -1e-4 {
			t.Fatalf("bound violated at %d", i)
		}
	}
}

func TestCorrupt(t *testing.T) {
	c := &tng.Compressor{}
	blk, err := c.CompressSeries([][]float64{{1, 2}, {1.1, 2.1}}, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 3, len(blk) - 2} {
		if _, err := c.DecompressSeries(blk[:cut]); err == nil {
			t.Errorf("prefix %d accepted", cut)
		}
	}
}
