// Package tng reimplements the TNG trajectory-compression baseline
// (Lundborg et al., the GROMACS TNG format): positions are quantized onto a
// fixed-point grid, encoded as intra-frame (previous atom) or inter-frame
// (previous frame) integer deltas, and packed with variable-length integer
// coding followed by a dictionary stage.
//
// The paper reports TNG runtime exceptions on the Pt and LJ datasets,
// attributed to an atom-count upper limit; CompressSeries reproduces that
// behavior by returning ErrUnsupported above MaxAtoms.
package tng

import (
	"errors"
	"fmt"
	"math"

	"github.com/mdz/mdz/internal/bitstream"
	"github.com/mdz/mdz/internal/lossless"
)

// MaxAtoms is the emulated per-frame atom limit; the paper's TNG failed on
// Pt (2.37M atoms) and LJ (6.9M) but ran on Copper-A (1.08M).
const MaxAtoms = 2_000_000

// ErrUnsupported reproduces TNG's runtime exception on oversized frames.
var ErrUnsupported = errors.New("tng: atom count exceeds format limit")

// ErrCorrupt is returned for malformed blocks.
var ErrCorrupt = errors.New("tng: corrupt block")

// Compressor is a stateless per-batch TNG-style codec.
type Compressor struct {
	// Backend overrides the final lossless stage (default lossless.LZ).
	Backend lossless.Backend
	// LimitAtoms overrides MaxAtoms for testing; 0 selects MaxAtoms.
	LimitAtoms int
}

// Name implements the benchmark Codec naming convention.
func (c *Compressor) Name() string { return "TNG" }

func (c *Compressor) backend() lossless.Backend {
	if c.Backend == nil {
		return lossless.LZ{}
	}
	return c.Backend
}

func (c *Compressor) limit() int {
	if c.LimitAtoms > 0 {
		return c.LimitAtoms
	}
	return MaxAtoms
}

const blockMagic = "TNGB"

// Per-frame delta mode.
const (
	modeIntra = 0 // delta vs previous atom in the same frame
	modeInter = 1 // delta vs the same atom in the previous frame
)

// CompressSeries compresses one axis batch under absolute error bound eb.
func (c *Compressor) CompressSeries(batch [][]float64, eb float64) ([]byte, error) {
	if len(batch) == 0 {
		return nil, errors.New("tng: empty batch")
	}
	n := len(batch[0])
	if n > c.limit() {
		return nil, ErrUnsupported
	}
	for i, s := range batch {
		if len(s) != n {
			return nil, fmt.Errorf("tng: snapshot %d has %d values, want %d", i, len(s), n)
		}
	}
	if !(eb > 0) {
		return nil, errors.New("tng: error bound must be positive")
	}
	// Fixed-point grid: index = round(v / (2eb)) keeps |recon − v| ≤ eb.
	step := 2 * eb
	bs := len(batch)
	grid := make([][]int64, bs)
	var raw []byte // exact values that overflow the fixed-point grid
	for t, snap := range batch {
		grid[t] = make([]int64, n)
		for i, v := range snap {
			g := math.Round(v / step)
			// Verify the decoder's reconstruction g·step at encode time:
			// float rounding at extreme magnitudes can break the bound, in
			// which case the value is stored exactly behind a sentinel.
			if math.Abs(g) > 1<<51 || math.IsNaN(g) || math.Abs(float64(int64(g))*step-v) > eb {
				grid[t][i] = math.MinInt64
				raw = bitstream.AppendFloat64(raw, v)
				continue
			}
			grid[t][i] = int64(g)
		}
	}
	var body []byte
	modes := make([]byte, bs)
	for t := 0; t < bs; t++ {
		// Pick intra vs inter by sampled cost.
		mode := modeIntra
		if t > 0 && sampleCost(grid[t], grid[t-1], true) < sampleCost(grid[t], grid[t-1], false) {
			mode = modeInter
		}
		modes[t] = byte(mode)
		var prev int64
		for i := 0; i < n; i++ {
			g := grid[t][i]
			if g == math.MinInt64 {
				// Sentinel marker: encode a reserved escape varint.
				body = bitstream.AppendVarint(body, math.MinInt64/2)
				continue
			}
			var ref int64
			if mode == modeInter && grid[t-1][i] != math.MinInt64 {
				ref = grid[t-1][i]
			} else if mode == modeIntra {
				ref = prev
			}
			body = bitstream.AppendVarint(body, g-ref)
			prev = g
		}
	}
	var payload []byte
	payload = bitstream.AppendSection(payload, modes)
	payload = bitstream.AppendSection(payload, body)
	payload = bitstream.AppendSection(payload, raw)
	compressed, err := c.backend().Compress(payload)
	if err != nil {
		return nil, err
	}
	out := append([]byte{}, blockMagic...)
	out = bitstream.AppendFloat64(out, eb)
	out = bitstream.AppendUvarint(out, uint64(bs))
	out = bitstream.AppendUvarint(out, uint64(n))
	out = bitstream.AppendSection(out, compressed)
	return out, nil
}

func sampleCost(cur, prev []int64, inter bool) float64 {
	stride := len(cur)/256 + 1
	var sum float64
	var last int64
	for i := 0; i < len(cur); i += stride {
		if cur[i] == math.MinInt64 {
			continue
		}
		var ref int64
		if inter {
			if prev[i] != math.MinInt64 {
				ref = prev[i]
			}
		} else {
			ref = last
		}
		d := cur[i] - ref
		if d < 0 {
			d = -d
		}
		sum += math.Log2(float64(d) + 1)
		last = cur[i]
	}
	return sum
}

// DecompressSeries inverts CompressSeries.
func (c *Compressor) DecompressSeries(blk []byte) ([][]float64, error) {
	br := bitstream.NewByteReader(blk)
	magic, err := br.ReadBytes(4)
	if err != nil || string(magic) != blockMagic {
		return nil, ErrCorrupt
	}
	eb, err := br.ReadFloat64()
	if err != nil {
		return nil, err
	}
	bs64, err := br.ReadUvarint()
	if err != nil {
		return nil, err
	}
	n64, err := br.ReadUvarint()
	if err != nil {
		return nil, err
	}
	bs, n := int(bs64), int(n64)
	if bs <= 0 || n < 0 || uint64(bs)*uint64(n) > 1<<33 || !(eb > 0) {
		return nil, ErrCorrupt
	}
	compressed, err := br.ReadSection()
	if err != nil {
		return nil, err
	}
	payload, err := c.backend().Decompress(compressed)
	if err != nil {
		return nil, err
	}
	pr := bitstream.NewByteReader(payload)
	modes, err := pr.ReadSection()
	if err != nil {
		return nil, err
	}
	if len(modes) != bs {
		return nil, ErrCorrupt
	}
	body, err := pr.ReadSection()
	if err != nil {
		return nil, err
	}
	raw, err := pr.ReadSection()
	if err != nil {
		return nil, err
	}
	rr := bitstream.NewByteReader(raw)
	bodyR := bitstream.NewByteReader(body)
	step := 2 * eb
	grid := make([][]int64, bs)
	out := make([][]float64, bs)
	for t := 0; t < bs; t++ {
		grid[t] = make([]int64, n)
		out[t] = make([]float64, n)
		mode := int(modes[t])
		if mode != modeIntra && mode != modeInter {
			return nil, ErrCorrupt
		}
		var prev int64
		for i := 0; i < n; i++ {
			d, err := bodyR.ReadVarint()
			if err != nil {
				return nil, err
			}
			if d == math.MinInt64/2 {
				v, err := rr.ReadFloat64()
				if err != nil {
					return nil, ErrCorrupt
				}
				grid[t][i] = math.MinInt64
				out[t][i] = v
				continue
			}
			var ref int64
			if mode == modeInter && t > 0 && grid[t-1][i] != math.MinInt64 {
				ref = grid[t-1][i]
			} else if mode == modeIntra {
				ref = prev
			}
			g := ref + d
			grid[t][i] = g
			out[t][i] = float64(g) * step
			prev = g
		}
	}
	return out, nil
}
