// Package codectest provides a conformance suite shared by every lossy
// compressor in this module: round-trip shape preservation and — the
// load-bearing invariant of the whole paper — the absolute error bound on
// every reconstructed value, across data regimes and bounds.
package codectest

import (
	"math"
	"math/rand"
	"testing"

	"github.com/mdz/mdz/internal/codec"
)

// Regimes returns named synthetic batch series covering the data regimes of
// the paper's characterization study (Fig 3-5).
func Regimes(bs, n int, seed int64) map[string][][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := map[string][][]float64{}

	// Crystalline: equal-distant levels with vibration and rare hops.
	levels := make([]int, n)
	for i := range levels {
		levels[i] = rng.Intn(10)
	}
	crystal := make([][]float64, bs)
	for t := range crystal {
		snap := make([]float64, n)
		for i := range snap {
			if rng.Float64() < 0.02 {
				levels[i] += rng.Intn(3) - 1
			}
			snap[i] = 2.0*float64(levels[i]) + rng.NormFloat64()*0.03
		}
		crystal[t] = snap
	}
	out["crystal"] = crystal

	// Liquid: spatially uniform, temporally smooth drift.
	pos := make([]float64, n)
	for i := range pos {
		pos[i] = rng.Float64() * 30
	}
	liquid := make([][]float64, bs)
	for t := range liquid {
		snap := make([]float64, n)
		for i := range snap {
			pos[i] += rng.NormFloat64() * 0.003
			snap[i] = pos[i]
		}
		liquid[t] = snap
	}
	out["liquid"] = liquid

	// Erratic: fully random every snapshot (worst case).
	erratic := make([][]float64, bs)
	for t := range erratic {
		snap := make([]float64, n)
		for i := range snap {
			snap[i] = rng.NormFloat64() * 100
		}
		erratic[t] = snap
	}
	out["erratic"] = erratic

	// Extremes: huge magnitudes, zeros and sign flips.
	extreme := make([][]float64, bs)
	for t := range extreme {
		snap := make([]float64, n)
		for i := range snap {
			switch i % 4 {
			case 0:
				snap[i] = 0
			case 1:
				snap[i] = rng.NormFloat64() * 1e12
			case 2:
				snap[i] = -math.Pi * float64(t+1)
			default:
				snap[i] = rng.NormFloat64() * 1e-12
			}
		}
		extreme[t] = snap
	}
	out["extreme"] = extreme

	return out
}

// RunConformance exercises a Factory across regimes and error bounds,
// asserting the error-bound invariant and shape preservation.
func RunConformance(t *testing.T, f codec.Factory) {
	t.Helper()
	for name, series := range Regimes(12, 150, 99) {
		for _, eb := range []float64{1e-1, 1e-3, 1e-6} {
			stream, err := f.New(eb)
			if err != nil {
				t.Fatalf("%s/%s eb=%v: New: %v", f.Name(), name, eb, err)
			}
			// Two sequential batches exercise cross-batch state.
			for _, batch := range [][][]float64{series[:6], series[6:]} {
				blk, err := stream.Encode(batch)
				if err != nil {
					t.Fatalf("%s/%s eb=%v: encode: %v", f.Name(), name, eb, err)
				}
				got, err := stream.Decode(blk)
				if err != nil {
					t.Fatalf("%s/%s eb=%v: decode: %v", f.Name(), name, eb, err)
				}
				if len(got) != len(batch) {
					t.Fatalf("%s/%s: got %d snapshots, want %d", f.Name(), name, len(got), len(batch))
				}
				for ti := range batch {
					if len(got[ti]) != len(batch[ti]) {
						t.Fatalf("%s/%s: snapshot %d has %d values, want %d",
							f.Name(), name, ti, len(got[ti]), len(batch[ti]))
					}
					for i := range batch[ti] {
						if e := math.Abs(batch[ti][i] - got[ti][i]); e > eb {
							t.Fatalf("%s/%s eb=%v: snapshot %d particle %d: error %v exceeds bound (orig %v recon %v)",
								f.Name(), name, eb, ti, i, e, batch[ti][i], got[ti][i])
						}
					}
				}
			}
		}
	}
	// Degenerate shapes.
	stream, err := f.New(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	single := [][]float64{{1.5, -2.5, 0}}
	blk, err := stream.Encode(single)
	if err != nil {
		t.Fatalf("%s: single snapshot: %v", f.Name(), err)
	}
	got, err := stream.Decode(blk)
	if err != nil || len(got) != 1 || len(got[0]) != 3 {
		t.Fatalf("%s: single snapshot round trip: %v %v", f.Name(), got, err)
	}
}
