// Package codec defines the common interfaces the benchmark harness uses to
// drive MDZ and every baseline compressor uniformly, plus adapters between
// the stateless per-batch baselines and MDZ's stateful stream model.
package codec

import (
	"github.com/mdz/mdz/internal/asn"
	"github.com/mdz/mdz/internal/core"
	"github.com/mdz/mdz/internal/hrtc"
	"github.com/mdz/mdz/internal/lfzip"
	"github.com/mdz/mdz/internal/mdb"
	"github.com/mdz/mdz/internal/sz2"
	"github.com/mdz/mdz/internal/tng"
)

// BatchCodec is a stateless per-batch compressor for one axis series: every
// block is independently decodable. All reimplemented baselines satisfy it.
type BatchCodec interface {
	// Name identifies the codec in reports.
	Name() string
	// CompressSeries compresses a batch (snapshots × particles) under an
	// absolute error bound.
	CompressSeries(batch [][]float64, eb float64) ([]byte, error)
	// DecompressSeries inverts CompressSeries.
	DecompressSeries(blk []byte) ([][]float64, error)
}

// Stream is a stateful per-axis compression session: batches must be
// encoded and decoded in order.
type Stream interface {
	Encode(batch [][]float64) ([]byte, error)
	Decode(blk []byte) ([][]float64, error)
}

// Factory creates fresh compression sessions. The benchmark harness makes
// one Stream per (dataset, axis) run.
type Factory interface {
	Name() string
	New(eb float64) (Stream, error)
}

// batchFactory adapts a stateless BatchCodec to the Factory interface.
type batchFactory struct {
	c BatchCodec
}

// FromBatch wraps a stateless per-batch codec as a Factory.
func FromBatch(c BatchCodec) Factory { return batchFactory{c} }

// Name implements Factory.
func (f batchFactory) Name() string { return f.c.Name() }

// New implements Factory.
func (f batchFactory) New(eb float64) (Stream, error) {
	return &batchStream{c: f.c, eb: eb}, nil
}

type batchStream struct {
	c  BatchCodec
	eb float64
}

func (s *batchStream) Encode(batch [][]float64) ([]byte, error) {
	return s.c.CompressSeries(batch, s.eb)
}

func (s *batchStream) Decode(blk []byte) ([][]float64, error) {
	return s.c.DecompressSeries(blk)
}

// MDZFactory creates MDZ streams with the given method (core.ADP by
// default) and optional parameter overrides.
type MDZFactory struct {
	// Method selects ADP/VQ/VQT/MT.
	Method core.Method
	// QuantScale, Sequence and AdaptInterval override core defaults when
	// non-zero.
	QuantScale    int
	Sequence      core.Sequence
	AdaptInterval int
	// Label overrides the reported name.
	Label string
}

// Name implements Factory.
func (f MDZFactory) Name() string {
	if f.Label != "" {
		return f.Label
	}
	if f.Method == core.ADP {
		return "MDZ"
	}
	return "MDZ-" + f.Method.String()
}

// New implements Factory.
func (f MDZFactory) New(eb float64) (Stream, error) {
	enc, err := core.NewEncoder(core.Params{
		ErrorBound:    eb,
		Method:        f.Method,
		QuantScale:    f.QuantScale,
		Sequence:      f.Sequence,
		AdaptInterval: f.AdaptInterval,
	})
	if err != nil {
		return nil, err
	}
	return &mdzStream{enc: enc, dec: core.NewDecoder(core.Params{})}, nil
}

type mdzStream struct {
	enc *core.Encoder
	dec *core.Decoder
}

func (s *mdzStream) Encode(batch [][]float64) ([]byte, error) {
	return s.enc.EncodeBatch(batch)
}

func (s *mdzStream) Decode(blk []byte) ([][]float64, error) {
	return s.dec.DecodeBatch(blk)
}

// Baselines returns the paper's six lossy comparison codecs (§VII-A4) as
// factories, in the paper's order: TNG, HRTC, ASN, SZ2(2D), MDB, LFZip.
func Baselines() []Factory {
	return []Factory{
		FromBatch(&tng.Compressor{}),
		FromBatch(&hrtc.Compressor{}),
		FromBatch(&asn.Compressor{}),
		FromBatch(&sz2.Compressor{}),
		FromBatch(&mdb.Compressor{}),
		FromBatch(&lfzip.Compressor{}),
	}
}

// AllLossy returns MDZ (ADP) followed by the six baselines.
func AllLossy() []Factory {
	return append([]Factory{MDZFactory{}}, Baselines()...)
}
