package codec_test

import (
	"testing"

	"github.com/mdz/mdz/internal/codec"
	"github.com/mdz/mdz/internal/codec/codectest"
	"github.com/mdz/mdz/internal/core"
)

func TestMDZFactoryConformanceAllMethods(t *testing.T) {
	for _, m := range []core.Method{core.ADP, core.VQ, core.VQT, core.MT} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			t.Parallel()
			codectest.RunConformance(t, codec.MDZFactory{Method: m})
		})
	}
}

func TestFactoryNames(t *testing.T) {
	if (codec.MDZFactory{}).Name() != "MDZ" {
		t.Error("default MDZ name")
	}
	if (codec.MDZFactory{Method: core.MT}).Name() != "MDZ-MT" {
		t.Error("method-specific name")
	}
	if (codec.MDZFactory{Label: "custom"}).Name() != "custom" {
		t.Error("label override")
	}
}

func TestBaselineRoster(t *testing.T) {
	names := map[string]bool{}
	for _, f := range codec.Baselines() {
		names[f.Name()] = true
	}
	for _, want := range []string{"TNG", "HRTC", "ASN", "SZ2-2D", "MDB", "LFZip"} {
		if !names[want] {
			t.Errorf("baseline %s missing from roster %v", want, names)
		}
	}
	all := codec.AllLossy()
	if all[0].Name() != "MDZ" || len(all) != 7 {
		t.Errorf("AllLossy roster: %d entries, first %s", len(all), all[0].Name())
	}
}
