// Package obshttp is the admin/observability HTTP stack shared by the mdz
// front ends (mdzc's -metrics-addr listener, mdzd's admin listener): a mux
// exposing Prometheus metrics, expvar and pprof, and a managed server whose
// background Serve loop reports its errors instead of dropping them.
package obshttp

import (
	"context"
	"errors"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"

	"github.com/mdz/mdz/internal/telemetry"
)

// Logf is the destination for serve-loop diagnostics; it follows the
// log.Printf contract. A nil Logf discards.
type Logf func(format string, args ...any)

// Mux builds the standard admin mux: /metrics renders the given registries
// in Prometheus text format, /debug/vars serves expvar, and /debug/pprof/*
// serves the runtime profiler endpoints.
func Mux(regs ...*telemetry.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", telemetry.Handler(regs...))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server owns one background-serving HTTP listener.
type Server struct {
	srv  *http.Server
	ln   net.Listener
	addr string
	done chan struct{}
	err  error // serve-loop exit cause, valid after done closes
}

// Serve binds addr (host:port; port 0 picks a free one) and serves h in a
// background goroutine. A serve-loop failure — anything other than the
// ErrServerClosed that a clean Shutdown produces — is reported through logf
// the moment it happens, so a dying admin listener is no longer silent.
func Serve(addr string, h http.Handler, logf Logf) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		srv:  &http.Server{Handler: h},
		ln:   ln,
		addr: ln.Addr().String(),
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.err = err
			if logf != nil {
				logf("admin listener on %s failed: %v", s.addr, err)
			}
		}
	}()
	return s, nil
}

// Addr returns the bound listener address (with the concrete port).
func (s *Server) Addr() string { return s.addr }

// Shutdown gracefully stops the server, waits for the serve loop to exit,
// and returns the first failure from either: an unclean serve-loop death or
// a shutdown that could not complete within ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	select {
	case <-s.done:
	case <-ctx.Done():
	}
	if s.err != nil {
		return s.err
	}
	return err
}
