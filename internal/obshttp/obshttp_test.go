package obshttp

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/mdz/mdz/internal/telemetry"
)

func TestServeAndCleanShutdown(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("demo.hits").Add(3)

	var logged []string
	s, err := Serve("127.0.0.1:0", Mux(reg), func(f string, a ...any) {
		logged = append(logged, fmt.Sprintf(f, a...))
	})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "mdz_demo_hits_total 3") {
		t.Fatalf("metrics response %d: %q", resp.StatusCode, body)
	}
	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("clean shutdown: %v", err)
	}
	if len(logged) != 0 {
		t.Errorf("clean shutdown logged serve errors: %v", logged)
	}
}

func TestServeLoopFailureIsLogged(t *testing.T) {
	logc := make(chan string, 1)
	s, err := Serve("127.0.0.1:0", http.NotFoundHandler(), func(f string, a ...any) {
		logc <- fmt.Sprintf(f, a...)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Yank the listener out from under the serve loop: Serve returns the
	// accept error (not ErrServerClosed), which must surface via logf and
	// again from Shutdown.
	s.ln.Close()
	select {
	case msg := <-logc:
		if !strings.Contains(msg, s.Addr()) {
			t.Errorf("serve-error log %q does not name the listener", msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("serve-loop failure never reached logf")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err == nil {
		t.Error("Shutdown reported a clean exit after the serve loop died")
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("127.0.0.1:-1", nil, nil); err == nil {
		t.Fatal("Serve bound an invalid address")
	}
}
