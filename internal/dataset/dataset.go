// Package dataset models MD trajectory data as the paper formulates it
// (§IV): a dataset D of M snapshots, each holding N particles with three
// axis values {x, y, z}, processed in batches of BS snapshots.
//
// The package also defines a simple binary container format so generated
// trajectories can be cached on disk and fed to the CLI tools.
package dataset

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// Axis selects one coordinate component.
type Axis int

// The three coordinate axes.
const (
	AxisX Axis = iota
	AxisY
	AxisZ
)

// String implements fmt.Stringer.
func (a Axis) String() string {
	switch a {
	case AxisX:
		return "x"
	case AxisY:
		return "y"
	case AxisZ:
		return "z"
	}
	return fmt.Sprintf("axis(%d)", int(a))
}

// Axes lists all three axes in order.
var Axes = []Axis{AxisX, AxisY, AxisZ}

// Frame is one simulation snapshot: per-axis position arrays of equal
// length (the particle count N).
type Frame struct {
	X, Y, Z []float64
}

// NewFrame allocates a frame for n particles.
func NewFrame(n int) Frame {
	return Frame{X: make([]float64, n), Y: make([]float64, n), Z: make([]float64, n)}
}

// N reports the particle count.
func (f Frame) N() int { return len(f.X) }

// Axis returns the position slice for axis a (no copy).
func (f Frame) Axis(a Axis) []float64 {
	switch a {
	case AxisX:
		return f.X
	case AxisY:
		return f.Y
	default:
		return f.Z
	}
}

// Clone deep-copies the frame.
func (f Frame) Clone() Frame {
	g := NewFrame(f.N())
	copy(g.X, f.X)
	copy(g.Y, f.Y)
	copy(g.Z, f.Z)
	return g
}

// Metadata carries dataset provenance, including the *original* scale from
// the paper's Table I, which drives the TNG/HRTC exclusion emulation.
type Metadata struct {
	// Name is the dataset identifier, e.g. "Copper-B".
	Name string
	// State is the physical state from Table I (Solid/Plasma/Protein/Liquid).
	State string
	// Code is the producing simulation package from Table I.
	Code string
	// OriginalAtoms and OriginalSnapshots are the paper's full-scale counts.
	OriginalAtoms, OriginalSnapshots int
	// Box is the periodic box edge length (0 if non-periodic), used by RDF.
	Box float64
}

// Dataset is a full trajectory plus metadata.
type Dataset struct {
	Meta   Metadata
	Frames []Frame
}

// M reports the snapshot count.
func (d *Dataset) M() int { return len(d.Frames) }

// N reports the particle count (0 for an empty dataset).
func (d *Dataset) N() int {
	if len(d.Frames) == 0 {
		return 0
	}
	return d.Frames[0].N()
}

// SizeBytes reports the raw size of the position payload (M×N×3×8).
func (d *Dataset) SizeBytes() int { return d.M() * d.N() * 3 * 8 }

// AxisSeries returns per-snapshot position slices for one axis, the layout
// every compressor in this module consumes. Slices alias the dataset.
func (d *Dataset) AxisSeries(a Axis) [][]float64 {
	out := make([][]float64, len(d.Frames))
	for i, f := range d.Frames {
		out[i] = f.Axis(a)
	}
	return out
}

// Batches partitions the snapshots into buffers of at most bs snapshots,
// mirroring the paper's buffered execution model. Frames are shared, not
// copied.
func (d *Dataset) Batches(bs int) [][]Frame {
	if bs <= 0 {
		bs = len(d.Frames)
	}
	var out [][]Frame
	for i := 0; i < len(d.Frames); i += bs {
		j := i + bs
		if j > len(d.Frames) {
			j = len(d.Frames)
		}
		out = append(out, d.Frames[i:j])
	}
	return out
}

// Validate checks structural invariants: uniform particle counts and finite
// (non-NaN) coordinates.
func (d *Dataset) Validate() error {
	n := d.N()
	for i, f := range d.Frames {
		if f.N() != n || len(f.Y) != n || len(f.Z) != n {
			return fmt.Errorf("dataset %s: frame %d has inconsistent particle count", d.Meta.Name, i)
		}
		for _, a := range Axes {
			for j, v := range f.Axis(a) {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("dataset %s: frame %d %s[%d] is not finite", d.Meta.Name, i, a, j)
				}
			}
		}
	}
	return nil
}

const fileMagic = "MDZD"

var errBadFile = errors.New("dataset: not an MDZD trajectory file")

// Write serializes the dataset to w: magic, metadata, then frame-major
// little-endian float64 payload (x array, y array, z array per frame).
func (d *Dataset) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return err
	}
	writeStr := func(s string) error {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	for _, s := range []string{d.Meta.Name, d.Meta.State, d.Meta.Code} {
		if err := writeStr(s); err != nil {
			return err
		}
	}
	hdr := []uint64{
		uint64(d.Meta.OriginalAtoms), uint64(d.Meta.OriginalSnapshots),
		math.Float64bits(d.Meta.Box), uint64(d.M()), uint64(d.N()),
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	buf := make([]byte, 8)
	for _, f := range d.Frames {
		for _, a := range Axes {
			for _, v := range f.Axis(a) {
				binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
				if _, err := bw.Write(buf); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// Read parses a dataset written by Write.
func Read(r io.Reader) (*Dataset, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != fileMagic {
		return nil, errBadFile
	}
	readStr := func() (string, error) {
		var n uint32
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return "", err
		}
		if n > 1<<16 {
			return "", errBadFile
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	d := &Dataset{}
	var err error
	if d.Meta.Name, err = readStr(); err != nil {
		return nil, err
	}
	if d.Meta.State, err = readStr(); err != nil {
		return nil, err
	}
	if d.Meta.Code, err = readStr(); err != nil {
		return nil, err
	}
	var hdr [5]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, err
		}
	}
	d.Meta.OriginalAtoms = int(hdr[0])
	d.Meta.OriginalSnapshots = int(hdr[1])
	d.Meta.Box = math.Float64frombits(hdr[2])
	m, n := int(hdr[3]), int(hdr[4])
	if m < 0 || n < 0 || uint64(m)*uint64(n) > 1<<32 {
		return nil, errBadFile
	}
	d.Frames = make([]Frame, m)
	buf := make([]byte, 8*n)
	for i := range d.Frames {
		f := NewFrame(n)
		for _, a := range Axes {
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, err
			}
			dst := f.Axis(a)
			for j := range dst {
				dst[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*j:]))
			}
		}
		d.Frames[i] = f
	}
	return d, nil
}

// Save writes the dataset to path.
func (d *Dataset) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a dataset from path.
func Load(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
