package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
)

func testSet(m, n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{Meta: Metadata{
		Name: "Test", State: "Solid", Code: "LAMMPS",
		OriginalAtoms: 1077290, OriginalSnapshots: 83, Box: 25.0,
	}}
	for i := 0; i < m; i++ {
		f := NewFrame(n)
		for j := 0; j < n; j++ {
			f.X[j] = rng.Float64() * 25
			f.Y[j] = rng.Float64() * 25
			f.Z[j] = rng.Float64() * 25
		}
		d.Frames = append(d.Frames, f)
	}
	return d
}

func TestAxisAccessors(t *testing.T) {
	d := testSet(3, 5, 1)
	if d.M() != 3 || d.N() != 5 {
		t.Fatalf("M=%d N=%d", d.M(), d.N())
	}
	if d.SizeBytes() != 3*5*3*8 {
		t.Errorf("SizeBytes=%d", d.SizeBytes())
	}
	for _, a := range Axes {
		series := d.AxisSeries(a)
		if len(series) != 3 || len(series[0]) != 5 {
			t.Fatalf("axis %v: bad shape", a)
		}
		// Alias check: mutating the series mutates the dataset.
		series[0][0] = -999
		if d.Frames[0].Axis(a)[0] != -999 {
			t.Errorf("axis %v series is not a view", a)
		}
	}
	if AxisX.String() != "x" || AxisY.String() != "y" || AxisZ.String() != "z" {
		t.Error("axis names")
	}
}

func TestBatches(t *testing.T) {
	d := testSet(7, 2, 2)
	b := d.Batches(3)
	if len(b) != 3 || len(b[0]) != 3 || len(b[1]) != 3 || len(b[2]) != 1 {
		t.Fatalf("batch shapes: %d %v", len(b), []int{len(b[0]), len(b[1]), len(b[2])})
	}
	if got := d.Batches(0); len(got) != 1 || len(got[0]) != 7 {
		t.Error("bs<=0 should yield one batch")
	}
}

func TestValidate(t *testing.T) {
	d := testSet(2, 3, 3)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	d.Frames[1].Y[0] = math.NaN()
	if err := d.Validate(); err == nil {
		t.Error("expected NaN to fail validation")
	}
	d2 := testSet(2, 3, 4)
	d2.Frames[1] = NewFrame(4)
	if err := d2.Validate(); err == nil {
		t.Error("expected inconsistent N to fail validation")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := testSet(4, 9, 5)
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Meta, d.Meta) {
		t.Errorf("meta mismatch: %+v vs %+v", got.Meta, d.Meta)
	}
	if !reflect.DeepEqual(got.Frames, d.Frames) {
		t.Error("frames mismatch")
	}
}

func TestSaveLoad(t *testing.T) {
	d := testSet(2, 4, 6)
	path := filepath.Join(t.TempDir(), "traj.mdzd")
	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Frames, d.Frames) {
		t.Error("frames mismatch after Save/Load")
	}
}

func TestReadBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOPE1234"))); err == nil {
		t.Error("expected error for bad magic")
	}
}

func TestReadTruncated(t *testing.T) {
	d := testSet(3, 3, 7)
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Read(bytes.NewReader(raw[:len(raw)-10])); err == nil {
		t.Error("expected error for truncated payload")
	}
}

func TestClone(t *testing.T) {
	d := testSet(1, 3, 8)
	c := d.Frames[0].Clone()
	c.X[0] = 1e9
	if d.Frames[0].X[0] == 1e9 {
		t.Error("Clone must deep-copy")
	}
}
