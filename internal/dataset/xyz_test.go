package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestXYZRoundTrip(t *testing.T) {
	d := testSet(3, 5, 11)
	var buf bytes.Buffer
	if err := d.WriteXYZ(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadXYZ(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.M() != 3 || got.N() != 5 {
		t.Fatalf("shape %dx%d", got.M(), got.N())
	}
	for fi := range d.Frames {
		for i := 0; i < 5; i++ {
			if math.Abs(got.Frames[fi].X[i]-d.Frames[fi].X[i]) > 0 {
				t.Fatalf("X[%d][%d] mismatch", fi, i)
			}
			if got.Frames[fi].Z[i] != d.Frames[fi].Z[i] {
				t.Fatalf("Z[%d][%d] mismatch", fi, i)
			}
		}
	}
}

func TestReadXYZForeignFormat(t *testing.T) {
	// Typical VMD-style file: element symbols, extra whitespace, blank line
	// between frames.
	in := `2
comment frame 0
O  1.0  2.0  3.0
H  4.5 -1.25 0.0

2
comment frame 1
O  1.1  2.1  3.1
H  4.6 -1.35 0.1
`
	d, err := ReadXYZ(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.M() != 2 || d.N() != 2 {
		t.Fatalf("shape %dx%d", d.M(), d.N())
	}
	if d.Frames[1].Y[1] != -1.35 {
		t.Errorf("Y = %v", d.Frames[1].Y[1])
	}
}

func TestReadXYZErrors(t *testing.T) {
	cases := []string{
		"",                      // empty
		"abc\ncomment\n",        // bad count
		"2\ncomment\nO 1 2 3\n", // truncated
		"1\ncomment\nO 1 2\n",   // short atom line
		"1\ncomment\nO 1 x 3\n", // bad float
		"1\nc\nO 1 2 3\n2\nc\nO 1 2 3\nO 1 2 3\n", // inconsistent N
	}
	for i, in := range cases {
		if _, err := ReadXYZ(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
