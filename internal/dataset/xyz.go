package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteXYZ serializes the dataset in the ubiquitous extended-XYZ text
// format (one block per frame: atom count, comment line, then
// "element x y z" rows), for interoperability with VMD, OVITO, ASE and
// other MD tooling.
func (d *Dataset) WriteXYZ(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	for fi, f := range d.Frames {
		fmt.Fprintf(bw, "%d\n", f.N())
		fmt.Fprintf(bw, "frame=%d dataset=%s\n", fi, d.Meta.Name)
		for i := 0; i < f.N(); i++ {
			fmt.Fprintf(bw, "X %.17g %.17g %.17g\n", f.X[i], f.Y[i], f.Z[i])
		}
	}
	return bw.Flush()
}

// ReadXYZ parses an XYZ trajectory written by WriteXYZ or standard MD
// tools. Element symbols are ignored; all frames must share an atom count.
func ReadXYZ(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	d := &Dataset{}
	for {
		// Atom-count line (skip blank lines between frames).
		var countLine string
		ok := false
		for sc.Scan() {
			countLine = strings.TrimSpace(sc.Text())
			if countLine != "" {
				ok = true
				break
			}
		}
		if !ok {
			break
		}
		n, err := strconv.Atoi(countLine)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("dataset: bad XYZ atom count %q", countLine)
		}
		if !sc.Scan() {
			return nil, fmt.Errorf("dataset: XYZ missing comment line")
		}
		f := NewFrame(n)
		for i := 0; i < n; i++ {
			if !sc.Scan() {
				return nil, fmt.Errorf("dataset: XYZ truncated at atom %d", i)
			}
			fields := strings.Fields(sc.Text())
			if len(fields) < 4 {
				return nil, fmt.Errorf("dataset: XYZ atom line %q", sc.Text())
			}
			for k, dst := range []*float64{&f.X[i], &f.Y[i], &f.Z[i]} {
				v, err := strconv.ParseFloat(fields[k+1], 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: XYZ coordinate %q: %v", fields[k+1], err)
				}
				*dst = v
			}
		}
		if len(d.Frames) > 0 && n != d.N() {
			return nil, fmt.Errorf("dataset: XYZ frame %d has %d atoms, want %d", len(d.Frames), n, d.N())
		}
		d.Frames = append(d.Frames, f)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(d.Frames) == 0 {
		return nil, fmt.Errorf("dataset: empty XYZ input")
	}
	return d, nil
}
