package sim

import (
	"fmt"
	"math"
	"math/rand"
)

// Thermostat selects the temperature-control scheme.
type Thermostat uint8

// Thermostats. NVE integrates without temperature control; Langevin adds
// friction plus matched random kicks; Berendsen rescales velocities toward
// the target with a relaxation time.
const (
	NVE Thermostat = iota
	Langevin
	Berendsen
)

// System is a classical MD system integrated with velocity Verlet. Reduced
// (LJ) units are used throughout: kB = 1, mass defaults to 1.
type System struct {
	Box   Box
	Pos   []Vec3
	Vel   []Vec3
	Force []Vec3
	Mass  []float64

	// Pair is the non-bonded potential; nil disables pair forces.
	Pair *LJ
	// Bonds and Angles hold the bonded topology for chain molecules.
	Bonds  []Bond
	Angles []Angle
	// Exclude suppresses pair interactions between directly bonded atoms.
	Exclude map[[2]int]bool

	// Thermo selects the thermostat; Temp is its target temperature.
	Thermo Thermostat
	Temp   float64
	// Gamma is the Langevin friction (1/time); Tau the Berendsen relaxation
	// time.
	Gamma, Tau float64
	// Dt is the integration timestep.
	Dt float64

	// Frozen marks atoms excluded from integration (e.g. bottom slab
	// layers).
	Frozen []bool

	rng       *rand.Rand
	potential float64
	steps     int
}

// NewSystem builds a system over the given positions with zero velocities
// and unit masses.
func NewSystem(box Box, pos []Vec3, seed int64) *System {
	n := len(pos)
	s := &System{
		Box:   box,
		Pos:   append([]Vec3(nil), pos...),
		Vel:   make([]Vec3, n),
		Force: make([]Vec3, n),
		Mass:  make([]float64, n),
		Dt:    0.005,
		rng:   rand.New(rand.NewSource(seed)),
	}
	for i := range s.Mass {
		s.Mass[i] = 1
	}
	return s
}

// N reports the atom count.
func (s *System) N() int { return len(s.Pos) }

// Steps reports how many integration steps have run.
func (s *System) Steps() int { return s.steps }

// InitVelocities draws Maxwell-Boltzmann velocities at temperature t and
// removes the centre-of-mass drift.
func (s *System) InitVelocities(t float64) {
	for i := range s.Vel {
		sd := math.Sqrt(t / s.Mass[i])
		s.Vel[i] = Vec3{
			s.rng.NormFloat64() * sd,
			s.rng.NormFloat64() * sd,
			s.rng.NormFloat64() * sd,
		}
	}
	s.RemoveDrift()
}

// RemoveDrift zeroes the centre-of-mass momentum.
func (s *System) RemoveDrift() {
	var p Vec3
	var m float64
	for i := range s.Vel {
		p = p.Add(s.Vel[i].Scale(s.Mass[i]))
		m += s.Mass[i]
	}
	if m == 0 {
		return
	}
	corr := p.Scale(1 / m)
	for i := range s.Vel {
		if s.Frozen != nil && s.Frozen[i] {
			continue
		}
		s.Vel[i] = s.Vel[i].Sub(corr)
	}
}

// ComputeForces fills Force and returns the potential energy.
func (s *System) ComputeForces() float64 {
	for i := range s.Force {
		s.Force[i] = Vec3{}
	}
	var u float64
	if s.Pair != nil {
		cl := newCellList(s.Box, s.Pos, s.Pair.Cutoff)
		cut2 := s.Pair.Cutoff * s.Pair.Cutoff
		cl.forEachPair(s.Pos, func(i, j int) {
			if s.Exclude != nil {
				a, b := i, j
				if a > b {
					a, b = b, a
				}
				if s.Exclude[[2]int{a, b}] {
					return
				}
			}
			d := s.Box.Delta(s.Pos[i], s.Pos[j])
			r2 := d.Norm2()
			if r2 >= cut2 {
				return
			}
			du, g := s.Pair.EnergyForce(r2)
			u += du
			fv := d.Scale(g)
			s.Force[i] = s.Force[i].Add(fv)
			s.Force[j] = s.Force[j].Sub(fv)
		})
	}
	u += bondForces(s.Box, s.Pos, s.Bonds, s.Force)
	u += angleForces(s.Box, s.Pos, s.Angles, s.Force)
	s.potential = u
	return u
}

// Step advances the system one velocity-Verlet timestep, applying the
// configured thermostat.
func (s *System) Step() {
	if s.steps == 0 {
		s.ComputeForces()
	}
	dt := s.Dt
	half := 0.5 * dt
	for i := range s.Pos {
		if s.Frozen != nil && s.Frozen[i] {
			continue
		}
		inv := 1 / s.Mass[i]
		s.Vel[i] = s.Vel[i].Add(s.Force[i].Scale(half * inv))
		s.Pos[i] = s.Box.Wrap(s.Pos[i].Add(s.Vel[i].Scale(dt)))
	}
	s.ComputeForces()
	for i := range s.Pos {
		if s.Frozen != nil && s.Frozen[i] {
			continue
		}
		inv := 1 / s.Mass[i]
		s.Vel[i] = s.Vel[i].Add(s.Force[i].Scale(half * inv))
	}
	s.applyThermostat()
	s.steps++
}

// Run advances n steps.
func (s *System) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

func (s *System) applyThermostat() {
	switch s.Thermo {
	case Langevin:
		gamma := s.Gamma
		if gamma <= 0 {
			gamma = 1
		}
		c1 := math.Exp(-gamma * s.Dt)
		for i := range s.Vel {
			if s.Frozen != nil && s.Frozen[i] {
				continue
			}
			c2 := math.Sqrt(s.Temp / s.Mass[i] * (1 - c1*c1))
			s.Vel[i] = s.Vel[i].Scale(c1).Add(Vec3{
				s.rng.NormFloat64() * c2,
				s.rng.NormFloat64() * c2,
				s.rng.NormFloat64() * c2,
			})
		}
	case Berendsen:
		tau := s.Tau
		if tau <= 0 {
			tau = 100 * s.Dt
		}
		t := s.Temperature()
		if t <= 0 {
			return
		}
		lam := math.Sqrt(1 + s.Dt/tau*(s.Temp/t-1))
		for i := range s.Vel {
			if s.Frozen != nil && s.Frozen[i] {
				continue
			}
			s.Vel[i] = s.Vel[i].Scale(lam)
		}
	}
}

// KineticEnergy returns ½Σmv².
func (s *System) KineticEnergy() float64 {
	var ke float64
	for i := range s.Vel {
		ke += 0.5 * s.Mass[i] * s.Vel[i].Norm2()
	}
	return ke
}

// PotentialEnergy returns the potential energy of the last force
// evaluation.
func (s *System) PotentialEnergy() float64 { return s.potential }

// TotalEnergy returns kinetic + potential.
func (s *System) TotalEnergy() float64 { return s.KineticEnergy() + s.potential }

// Temperature returns the instantaneous kinetic temperature (kB = 1).
func (s *System) Temperature() float64 {
	dof := 0
	for i := range s.Vel {
		if s.Frozen != nil && s.Frozen[i] {
			continue
		}
		dof += 3
	}
	if dof == 0 {
		return 0
	}
	return 2 * s.KineticEnergy() / float64(dof)
}

// Momentum returns the total momentum vector.
func (s *System) Momentum() Vec3 {
	var p Vec3
	for i := range s.Vel {
		p = p.Add(s.Vel[i].Scale(s.Mass[i]))
	}
	return p
}

// ExcludeBonded populates Exclude with every directly bonded pair, the
// standard convention for chain molecules.
func (s *System) ExcludeBonded() {
	s.Exclude = make(map[[2]int]bool, len(s.Bonds))
	for _, b := range s.Bonds {
		a, c := b.I, b.J
		if a > c {
			a, c = c, a
		}
		s.Exclude[[2]int{a, c}] = true
	}
}

// Chain appends a linear chain molecule of n beads starting at origin with
// bond length r0, returning the index range added. Beads are placed with a
// self-avoiding random walk (candidate directions are rejected while they
// land within 0.85·r0 of any existing bead, preventing the hard-core LJ
// blow-ups of overlapping starts); bonds and angles are registered.
func (s *System) Chain(n int, origin Vec3, r0, kBond, kAngle float64) (first, last int) {
	first = len(s.Pos)
	p := origin
	dir := Vec3{1, 0, 0}
	minDist2 := (0.85 * r0) * (0.85 * r0)
	for i := 0; i < n; i++ {
		s.Pos = append(s.Pos, s.Box.Wrap(p))
		s.Vel = append(s.Vel, Vec3{})
		s.Force = append(s.Force, Vec3{})
		s.Mass = append(s.Mass, 1)
		if s.Frozen != nil {
			s.Frozen = append(s.Frozen, false)
		}
		// Pick the next position: bend the growth direction slightly,
		// retrying (then taking the least-bad candidate) when the step
		// would clash with an existing bead.
		bestP := Vec3{}
		bestClear := -1.0
		for try := 0; try < 30; try++ {
			cand := dir.Add(Vec3{
				s.rng.NormFloat64() * 0.3,
				s.rng.NormFloat64() * 0.3,
				s.rng.NormFloat64() * 0.3,
			})
			cand = cand.Scale(1 / cand.Norm())
			np := p.Add(cand.Scale(r0))
			clear := math.Inf(1)
			// Check against every existing atom (other chains included)
			// except the bead just placed, which is r0 away by construction.
			for j := 0; j < len(s.Pos)-1; j++ {
				d2 := s.Box.Delta(np, s.Pos[j]).Norm2()
				if d2 < clear {
					clear = d2
				}
			}
			if clear > bestClear {
				bestClear = clear
				bestP = np
				dir = cand
			}
			if clear >= minDist2 {
				break
			}
		}
		p = bestP
	}
	last = len(s.Pos) - 1
	for i := first; i < last; i++ {
		s.Bonds = append(s.Bonds, Bond{I: i, J: i + 1, K: kBond, R0: r0})
	}
	theta0 := 1.9106 // ~109.5° tetrahedral
	for i := first; i+2 <= last; i++ {
		s.Angles = append(s.Angles, Angle{I: i, J: i + 1, K: i + 2, KTheta: kAngle, T0: theta0})
	}
	return first, last
}

// Snapshot copies current positions into per-axis arrays.
func (s *System) Snapshot() (x, y, z []float64) {
	n := s.N()
	x = make([]float64, n)
	y = make([]float64, n)
	z = make([]float64, n)
	for i, p := range s.Pos {
		x[i], y[i], z[i] = p.X, p.Y, p.Z
	}
	return x, y, z
}

// Validate performs cheap sanity checks, useful before long runs.
func (s *System) Validate() error {
	n := s.N()
	if len(s.Vel) != n || len(s.Force) != n || len(s.Mass) != n {
		return fmt.Errorf("sim: inconsistent array lengths")
	}
	for _, b := range s.Bonds {
		if b.I < 0 || b.I >= n || b.J < 0 || b.J >= n {
			return fmt.Errorf("sim: bond index out of range")
		}
	}
	for _, a := range s.Angles {
		if a.I < 0 || a.I >= n || a.J < 0 || a.J >= n || a.K < 0 || a.K >= n {
			return fmt.Errorf("sim: angle index out of range")
		}
	}
	return nil
}
