// Package sim is a from-scratch molecular-dynamics engine plus a
// gravitational N-body integrator. It is the data substrate of this
// reproduction: the paper evaluated MDZ on trajectories from LAMMPS, EXAALT
// and CHARMM runs on LANL/ANL supercomputers; those datasets are not
// redistributable, so internal/gen drives this engine to synthesize
// trajectories with the same qualitative structure (crystalline level
// clustering, protein vibration, liquid temporal smoothness, surface
// diffusion, cosmological drift).
//
// Capabilities: Lennard-Jones pair potential with cell-list neighbor
// search, harmonic bond and angle terms for chain molecules, velocity
// Verlet integration with optional Langevin or Berendsen thermostats,
// periodic boundaries, FCC/BCC lattice construction, Maxwell-Boltzmann
// initialization, and a Barnes-Hut octree gravity solver with leapfrog
// integration for the HACC-analog datasets.
package sim

import "math"

// Vec3 is a 3-component vector.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v − w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Norm2 returns |v|².
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Norm returns |v|.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Norm2()) }

// Cross returns v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}
