package sim

import "math"

// EAM is a simple embedded-atom-method potential for metals, the class of
// potential the paper's Copper/Pt/tungsten runs actually used (LJ is only a
// qualitative stand-in). The analytic form follows the common
// Finnis-Sinclair style:
//
//	U = Σ_i F(ρ_i) + ½ Σ_{i≠j} φ(r_ij)
//	ρ_i = Σ_{j≠i} ψ(r_ij)            (host electron density at atom i)
//	F(ρ)  = −A·√ρ                    (embedding energy)
//	ψ(r)  = (1 − r/Rc)²              (density contribution, smooth to 0 at Rc)
//	φ(r)  = B·(1 − r/Rp)²  for r<Rp  (short-range pair repulsion)
//
// Both terms and their derivatives vanish smoothly at their cutoffs, so the
// dynamics conserve energy without shifting tricks.
type EAM struct {
	// A scales the embedding (cohesion) term; B the pair repulsion.
	A, B float64
	// Rc is the density cutoff; Rp the (shorter) repulsion cutoff.
	Rc, Rp float64
}

// NewEAM returns an EAM potential with cohesion A, repulsion B, density
// cutoff rc and repulsion cutoff rp (rp <= rc).
func NewEAM(a, b, rc, rp float64) *EAM {
	if rp > rc {
		rp = rc
	}
	return &EAM{A: a, B: b, Rc: rc, Rp: rp}
}

// density returns ψ(r²) and its derivative dψ/dr divided by r.
func (e *EAM) density(r2 float64) (psi, dpsiOverR float64) {
	if r2 >= e.Rc*e.Rc || r2 == 0 {
		return 0, 0
	}
	r := math.Sqrt(r2)
	t := 1 - r/e.Rc
	psi = t * t
	// dψ/dr = −2t/Rc; divided by r for force scaling.
	dpsiOverR = -2 * t / (e.Rc * r)
	return psi, dpsiOverR
}

// pair returns φ(r²) and dφ/dr divided by r.
func (e *EAM) pair(r2 float64) (phi, dphiOverR float64) {
	if r2 >= e.Rp*e.Rp || r2 == 0 {
		return 0, 0
	}
	r := math.Sqrt(r2)
	t := 1 - r/e.Rp
	phi = e.B * t * t
	dphiOverR = -2 * e.B * t / (e.Rp * r)
	return phi, dphiOverR
}

// embed returns F(ρ) and F′(ρ).
func (e *EAM) embed(rho float64) (f, fp float64) {
	if rho <= 0 {
		return 0, 0
	}
	s := math.Sqrt(rho)
	return -e.A * s, -e.A / (2 * s)
}

// ComputeEAM fills forces for an EAM system and returns the potential
// energy. It runs two cell-list passes: one accumulating densities, one
// accumulating forces with the embedding derivatives.
func ComputeEAM(e *EAM, box Box, pos []Vec3, force []Vec3) float64 {
	n := len(pos)
	for i := range force {
		force[i] = Vec3{}
	}
	rho := make([]float64, n)
	cl := newCellList(box, pos, e.Rc)
	// Pass 1: densities and pair energy.
	var u float64
	cl.forEachPair(pos, func(i, j int) {
		r2 := box.Delta(pos[i], pos[j]).Norm2()
		if psi, _ := e.density(r2); psi > 0 {
			rho[i] += psi
			rho[j] += psi
		}
		if phi, _ := e.pair(r2); phi > 0 {
			u += phi
		}
	})
	fp := make([]float64, n)
	for i := 0; i < n; i++ {
		fi, fpi := e.embed(rho[i])
		u += fi
		fp[i] = fpi
	}
	// Pass 2: forces. dU/dr_ij includes φ′ plus (F′_i + F′_j)·ψ′.
	cl.forEachPair(pos, func(i, j int) {
		d := box.Delta(pos[i], pos[j])
		r2 := d.Norm2()
		_, dphi := e.pair(r2)
		_, dpsi := e.density(r2)
		g := -(dphi + (fp[i]+fp[j])*dpsi) // force magnitude / r
		if g != 0 {
			fv := d.Scale(g)
			force[i] = force[i].Add(fv)
			force[j] = force[j].Sub(fv)
		}
	})
	return u
}

// EAMSystem wraps a System whose forces come from an EAM potential instead
// of the LJ pair term. Step/thermostat logic is inherited by embedding.
type EAMSystem struct {
	*System
	Pot *EAM
}

// NewEAMSystem builds an EAM-driven system over the positions.
func NewEAMSystem(box Box, pos []Vec3, pot *EAM, seed int64) *EAMSystem {
	s := NewSystem(box, pos, seed)
	es := &EAMSystem{System: s, Pot: pot}
	return es
}

// ComputeForces overrides the LJ force evaluation with EAM.
func (es *EAMSystem) ComputeForces() float64 {
	u := ComputeEAM(es.Pot, es.Box, es.Pos, es.Force)
	es.potential = u
	return u
}

// Step advances one velocity-Verlet step under the EAM potential.
func (es *EAMSystem) Step() {
	if es.steps == 0 {
		es.ComputeForces()
	}
	dt := es.Dt
	half := 0.5 * dt
	for i := range es.Pos {
		if es.Frozen != nil && es.Frozen[i] {
			continue
		}
		inv := 1 / es.Mass[i]
		es.Vel[i] = es.Vel[i].Add(es.Force[i].Scale(half * inv))
		es.Pos[i] = es.Box.Wrap(es.Pos[i].Add(es.Vel[i].Scale(dt)))
	}
	es.ComputeForces()
	for i := range es.Pos {
		if es.Frozen != nil && es.Frozen[i] {
			continue
		}
		inv := 1 / es.Mass[i]
		es.Vel[i] = es.Vel[i].Add(es.Force[i].Scale(half * inv))
	}
	es.applyThermostat()
	es.steps++
}

// Run advances n EAM steps.
func (es *EAMSystem) Run(n int) {
	for i := 0; i < n; i++ {
		es.Step()
	}
}
