package sim

import "math"

// LJ is the Lennard-Jones 12-6 pair potential
// U(r) = 4ε[(σ/r)¹² − (σ/r)⁶], truncated and shifted at Cutoff so the
// energy is continuous there.
type LJ struct {
	Epsilon, Sigma, Cutoff float64
	shift                  float64 // U(cutoff) before shifting
}

// NewLJ returns a truncated-and-shifted LJ potential. A non-positive cutoff
// defaults to 2.5σ (the LAMMPS LJ-benchmark convention).
func NewLJ(epsilon, sigma, cutoff float64) *LJ {
	if cutoff <= 0 {
		cutoff = 2.5 * sigma
	}
	lj := &LJ{Epsilon: epsilon, Sigma: sigma, Cutoff: cutoff}
	sr6 := math.Pow(sigma/cutoff, 6)
	lj.shift = 4 * epsilon * (sr6*sr6 - sr6)
	return lj
}

// EnergyForce returns the pair energy and the magnitude factor g such that
// the force on atom i from atom j at displacement d (i−j) is d·g. Returns
// zeros beyond the cutoff.
func (lj *LJ) EnergyForce(r2 float64) (u, g float64) {
	if r2 >= lj.Cutoff*lj.Cutoff || r2 == 0 {
		return 0, 0
	}
	s2 := lj.Sigma * lj.Sigma / r2
	s6 := s2 * s2 * s2
	s12 := s6 * s6
	u = 4*lj.Epsilon*(s12-s6) - lj.shift
	// F(r) = 24ε(2 s12 − s6)/r; divide by r again to scale the displacement.
	g = 24 * lj.Epsilon * (2*s12 - s6) / r2
	return u, g
}

// Bond is a harmonic bond U = ½k(r−r0)² between atoms I and J.
type Bond struct {
	I, J  int
	K, R0 float64
}

// Angle is a harmonic angle U = ½k(θ−θ0)² on the triplet I–J–K (J is the
// vertex).
type Angle struct {
	I, J, K    int
	KTheta, T0 float64
}

// bondForces accumulates harmonic bond energy and forces.
func bondForces(box Box, pos []Vec3, bonds []Bond, f []Vec3) float64 {
	var u float64
	for _, b := range bonds {
		d := box.Delta(pos[b.I], pos[b.J])
		r := d.Norm()
		if r == 0 {
			continue
		}
		dr := r - b.R0
		u += 0.5 * b.K * dr * dr
		g := -b.K * dr / r
		fv := d.Scale(g)
		f[b.I] = f[b.I].Add(fv)
		f[b.J] = f[b.J].Sub(fv)
	}
	return u
}

// angleForces accumulates harmonic angle energy and forces.
func angleForces(box Box, pos []Vec3, angles []Angle, f []Vec3) float64 {
	var u float64
	for _, a := range angles {
		rij := box.Delta(pos[a.I], pos[a.J])
		rkj := box.Delta(pos[a.K], pos[a.J])
		ri, rk := rij.Norm(), rkj.Norm()
		if ri == 0 || rk == 0 {
			continue
		}
		cosT := rij.Dot(rkj) / (ri * rk)
		if cosT > 1 {
			cosT = 1
		} else if cosT < -1 {
			cosT = -1
		}
		theta := math.Acos(cosT)
		dt := theta - a.T0
		u += 0.5 * a.KTheta * dt * dt
		sinT := math.Sqrt(1 - cosT*cosT)
		if sinT < 1e-8 {
			continue // collinear: force direction undefined, skip
		}
		// F_i = −∇_i U = (k·Δθ/sinθ)·∂cosθ/∂r_i.
		coef := a.KTheta * dt / sinT
		// dcosθ/dri and dcosθ/drk
		fi := rkj.Scale(1 / (ri * rk)).Sub(rij.Scale(cosT / (ri * ri))).Scale(coef)
		fk := rij.Scale(1 / (ri * rk)).Sub(rkj.Scale(cosT / (rk * rk))).Scale(coef)
		f[a.I] = f[a.I].Add(fi)
		f[a.K] = f[a.K].Add(fk)
		f[a.J] = f[a.J].Sub(fi.Add(fk))
	}
	return u
}
