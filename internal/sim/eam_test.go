package sim

import (
	"math"
	"testing"
)

func testEAM() *EAM { return NewEAM(1.2, 4.0, 2.2, 1.6) }

// eamBrute computes EAM energy and forces with direct loops.
func eamBrute(e *EAM, box Box, pos []Vec3) ([]Vec3, float64) {
	n := len(pos)
	rho := make([]float64, n)
	var u float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			r2 := box.Delta(pos[i], pos[j]).Norm2()
			psi, _ := e.density(r2)
			rho[i] += psi
			rho[j] += psi
			phi, _ := e.pair(r2)
			u += phi
		}
	}
	fp := make([]float64, n)
	for i := 0; i < n; i++ {
		fi, fpi := e.embed(rho[i])
		u += fi
		fp[i] = fpi
	}
	force := make([]Vec3, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := box.Delta(pos[i], pos[j])
			r2 := d.Norm2()
			_, dphi := e.pair(r2)
			_, dpsi := e.density(r2)
			g := -(dphi + (fp[i]+fp[j])*dpsi)
			fv := d.Scale(g)
			force[i] = force[i].Add(fv)
			force[j] = force[j].Sub(fv)
		}
	}
	return force, u
}

func TestEAMCellListMatchesBrute(t *testing.T) {
	pos, box := FCC(3, 3, 3, 1.7)
	e := testEAM()
	force := make([]Vec3, len(pos))
	u := ComputeEAM(e, box, pos, force)
	bForce, bu := eamBrute(e, box, pos)
	if math.Abs(u-bu) > 1e-9*(1+math.Abs(bu)) {
		t.Fatalf("energy %v != %v", u, bu)
	}
	for i := range pos {
		if force[i].Sub(bForce[i]).Norm() > 1e-9*(1+bForce[i].Norm()) {
			t.Fatalf("atom %d force %v != %v", i, force[i], bForce[i])
		}
	}
}

func TestEAMForceIsEnergyGradient(t *testing.T) {
	// Finite-difference check: F = -dU/dx on a random atom. The box must
	// exceed 2×Rc so the minimum image is unique and U stays smooth.
	pos, box := FCC(3, 3, 3, 1.7)
	e := testEAM()
	force := make([]Vec3, len(pos))
	ComputeEAM(e, box, pos, force)
	const h = 1e-6
	for _, idx := range []int{0, 7, 13} {
		orig := pos[idx].X
		pos[idx].X = orig + h
		_, uPlus := eamBrute(e, box, pos)
		pos[idx].X = orig - h
		_, uMinus := eamBrute(e, box, pos)
		pos[idx].X = orig
		want := -(uPlus - uMinus) / (2 * h)
		if math.Abs(force[idx].X-want) > 1e-4*(1+math.Abs(want)) {
			t.Errorf("atom %d: Fx=%v, -dU/dx=%v", idx, force[idx].X, want)
		}
	}
}

func TestEAMCohesion(t *testing.T) {
	// The embedding term makes a crystal's energy negative (bound state).
	pos, box := FCC(3, 3, 3, 1.62)
	e := testEAM()
	force := make([]Vec3, len(pos))
	if u := ComputeEAM(e, box, pos, force); u >= 0 {
		t.Errorf("crystal energy %v, want negative (cohesive)", u)
	}
}

func TestEAMNVEConservation(t *testing.T) {
	pos, box := FCC(3, 3, 3, 1.62)
	es := NewEAMSystem(box, pos, testEAM(), 5)
	es.Dt = 0.002
	es.InitVelocities(0.05)
	es.ComputeForces()
	e0 := es.TotalEnergy()
	es.Run(300)
	e1 := es.TotalEnergy()
	if drift := math.Abs(e1-e0) / math.Abs(e0); drift > 5e-3 {
		t.Errorf("EAM NVE drift %.2e (E0=%v E1=%v)", drift, e0, e1)
	}
}

func TestEAMCrystalStable(t *testing.T) {
	// A cold EAM crystal must keep its atoms near lattice sites.
	pos, box := FCC(3, 3, 3, 1.62)
	start := append([]Vec3(nil), pos...)
	es := NewEAMSystem(box, pos, testEAM(), 6)
	es.Thermo = Langevin
	es.Temp = 0.05
	es.Gamma = 2
	es.Dt = 0.002
	es.InitVelocities(0.05)
	es.Run(500)
	for i, p := range es.Pos {
		if d := es.Box.Delta(p, start[i]).Norm(); d > 0.5 {
			t.Fatalf("atom %d drifted %v from its site", i, d)
		}
	}
}
