package sim

import "math"

// Box is an orthorhombic simulation cell. Periodic selects whether minimum
// image conventions and coordinate wrapping apply.
type Box struct {
	// L holds the edge lengths.
	L Vec3
	// Periodic enables periodic boundary conditions on all axes.
	Periodic bool
}

// NewCubicBox returns a periodic cubic box of edge l.
func NewCubicBox(l float64) Box {
	return Box{L: Vec3{l, l, l}, Periodic: true}
}

// Wrap maps p into the primary cell [0, L) per axis. Non-periodic boxes
// return p unchanged.
func (b Box) Wrap(p Vec3) Vec3 {
	if !b.Periodic {
		return p
	}
	return Vec3{wrap1(p.X, b.L.X), wrap1(p.Y, b.L.Y), wrap1(p.Z, b.L.Z)}
}

func wrap1(x, l float64) float64 {
	if l <= 0 {
		return x
	}
	x = math.Mod(x, l)
	if x < 0 {
		x += l
	}
	return x
}

// Delta returns the minimum-image displacement from q to p (p − q).
func (b Box) Delta(p, q Vec3) Vec3 {
	d := p.Sub(q)
	if !b.Periodic {
		return d
	}
	return Vec3{mi(d.X, b.L.X), mi(d.Y, b.L.Y), mi(d.Z, b.L.Z)}
}

func mi(d, l float64) float64 {
	if l <= 0 {
		return d
	}
	d -= l * math.Round(d/l)
	return d
}

// Volume returns the cell volume.
func (b Box) Volume() float64 { return b.L.X * b.L.Y * b.L.Z }
