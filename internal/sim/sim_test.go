package sim

import (
	"math"
	"math/rand"
	"testing"
)

func TestVecOps(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, 5, 6}
	if a.Add(b) != (Vec3{5, 7, 9}) {
		t.Error("Add")
	}
	if b.Sub(a) != (Vec3{3, 3, 3}) {
		t.Error("Sub")
	}
	if a.Scale(2) != (Vec3{2, 4, 6}) {
		t.Error("Scale")
	}
	if a.Dot(b) != 32 {
		t.Error("Dot")
	}
	if math.Abs(a.Norm()-math.Sqrt(14)) > 1e-15 {
		t.Error("Norm")
	}
	if a.Cross(b) != (Vec3{-3, 6, -3}) {
		t.Error("Cross")
	}
}

func TestBoxWrapDelta(t *testing.T) {
	b := NewCubicBox(10)
	p := b.Wrap(Vec3{11, -1, 25})
	want := Vec3{1, 9, 5}
	if p.Sub(want).Norm() > 1e-12 {
		t.Errorf("Wrap = %v, want %v", p, want)
	}
	// Minimum image: 9.5 and 0.5 are 1 apart across the boundary.
	d := b.Delta(Vec3{0.5, 0, 0}, Vec3{9.5, 0, 0})
	if math.Abs(d.X-1) > 1e-12 {
		t.Errorf("Delta.X = %v, want 1", d.X)
	}
	// Non-periodic box passes through.
	open := Box{L: Vec3{10, 10, 10}}
	if open.Wrap(Vec3{11, 0, 0}).X != 11 {
		t.Error("open box must not wrap")
	}
	if open.Delta(Vec3{9.5, 0, 0}, Vec3{0.5, 0, 0}).X != 9 {
		t.Error("open box delta")
	}
}

func TestLattices(t *testing.T) {
	pos, box := FCC(3, 3, 3, 1.5)
	if len(pos) != 3*3*3*4 {
		t.Errorf("FCC count = %d", len(pos))
	}
	if box.L.X != 4.5 {
		t.Errorf("FCC box = %v", box.L)
	}
	pos, _ = BCC(2, 3, 4, 2.0)
	if len(pos) != 2*3*4*2 {
		t.Errorf("BCC count = %d", len(pos))
	}
	pos, _ = SC(2, 2, 2, 1.0)
	if len(pos) != 8 {
		t.Errorf("SC count = %d", len(pos))
	}
	// All lattice sites must be inside the box.
	posF, boxF := FCC(4, 4, 4, 1.2)
	for _, p := range posF {
		if p.X < 0 || p.X >= boxF.L.X || p.Y < 0 || p.Y >= boxF.L.Y || p.Z < 0 || p.Z >= boxF.L.Z {
			t.Fatalf("site %v outside box %v", p, boxF.L)
		}
	}
	// Slab leaves vacuum above.
	posS, boxS := Slab(3, 3, 2, 6, 1.0)
	for _, p := range posS {
		if p.Z >= 2.0 {
			t.Fatalf("slab atom at z=%v above filled region", p.Z)
		}
	}
	if boxS.L.Z != 6.0 {
		t.Errorf("slab box height = %v", boxS.L.Z)
	}
}

func TestMinimumImageDistanceFCC(t *testing.T) {
	// In a perfect FCC lattice, the nearest-neighbor distance is a/√2.
	pos, box := FCC(3, 3, 3, 1.6)
	min := math.Inf(1)
	for i := 0; i < len(pos); i++ {
		for j := i + 1; j < len(pos); j++ {
			d := box.Delta(pos[i], pos[j]).Norm()
			if d < min {
				min = d
			}
		}
	}
	want := 1.6 / math.Sqrt2
	if math.Abs(min-want) > 1e-9 {
		t.Errorf("nearest neighbor = %v, want %v", min, want)
	}
}

// pairForcesBrute computes LJ forces with a direct double loop.
func pairForcesBrute(box Box, pos []Vec3, lj *LJ) ([]Vec3, float64) {
	f := make([]Vec3, len(pos))
	var u float64
	cut2 := lj.Cutoff * lj.Cutoff
	for i := 0; i < len(pos); i++ {
		for j := i + 1; j < len(pos); j++ {
			d := box.Delta(pos[i], pos[j])
			r2 := d.Norm2()
			if r2 >= cut2 {
				continue
			}
			du, g := lj.EnergyForce(r2)
			u += du
			fv := d.Scale(g)
			f[i] = f[i].Add(fv)
			f[j] = f[j].Sub(fv)
		}
	}
	return f, u
}

func TestCellListMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{10, 100, 300} {
		box := NewCubicBox(8)
		pos := make([]Vec3, n)
		for i := range pos {
			pos[i] = Vec3{rng.Float64() * 8, rng.Float64() * 8, rng.Float64() * 8}
		}
		s := NewSystem(box, pos, 1)
		s.Pair = NewLJ(1, 1, 2.5)
		uCell := s.ComputeForces()
		fBrute, uBrute := pairForcesBrute(box, pos, s.Pair)
		if math.Abs(uCell-uBrute) > 1e-9*(1+math.Abs(uBrute)) {
			t.Fatalf("n=%d: energy %v != %v", n, uCell, uBrute)
		}
		for i := range pos {
			if s.Force[i].Sub(fBrute[i]).Norm() > 1e-9*(1+fBrute[i].Norm()) {
				t.Fatalf("n=%d atom %d: force %v != %v", n, i, s.Force[i], fBrute[i])
			}
		}
	}
}

func TestCellListSmallBox(t *testing.T) {
	// Boxes with only 1-2 cells per axis exercise the wrap deduplication.
	rng := rand.New(rand.NewSource(3))
	box := NewCubicBox(4.0) // cutoff 2.5 → 1 cell per axis
	pos := make([]Vec3, 40)
	for i := range pos {
		pos[i] = Vec3{rng.Float64() * 4, rng.Float64() * 4, rng.Float64() * 4}
	}
	s := NewSystem(box, pos, 1)
	s.Pair = NewLJ(1, 1, 1.9)
	uCell := s.ComputeForces()
	_, uBrute := pairForcesBrute(box, pos, s.Pair)
	if math.Abs(uCell-uBrute) > 1e-9*(1+math.Abs(uBrute)) {
		t.Fatalf("small box: energy %v != %v", uCell, uBrute)
	}
}

func TestNVEEnergyConservation(t *testing.T) {
	pos, box := FCC(4, 4, 4, math.Pow(2, 1.0/6)*math.Sqrt2) // near-equilibrium spacing
	s := NewSystem(box, pos, 7)
	s.Pair = NewLJ(1, 1, 2.5)
	s.Dt = 0.002
	s.InitVelocities(0.2)
	s.ComputeForces()
	e0 := s.TotalEnergy()
	s.Run(400)
	e1 := s.TotalEnergy()
	drift := math.Abs(e1-e0) / math.Abs(e0)
	if drift > 5e-3 {
		t.Errorf("NVE energy drift %.2e over 400 steps (E0=%v E1=%v)", drift, e0, e1)
	}
}

func TestNVEMomentumConservation(t *testing.T) {
	pos, box := FCC(3, 3, 3, 1.7)
	s := NewSystem(box, pos, 8)
	s.Pair = NewLJ(1, 1, 2.5)
	s.InitVelocities(0.5)
	if p := s.Momentum().Norm(); p > 1e-10 {
		t.Fatalf("initial momentum %v after drift removal", p)
	}
	s.Run(100)
	if p := s.Momentum().Norm(); p > 1e-8 {
		t.Errorf("momentum drifted to %v", p)
	}
}

func TestLangevinReachesTargetTemperature(t *testing.T) {
	pos, box := FCC(4, 4, 4, 1.7)
	s := NewSystem(box, pos, 9)
	s.Pair = NewLJ(1, 1, 2.5)
	s.Thermo = Langevin
	s.Temp = 0.8
	s.Gamma = 2
	s.Dt = 0.002
	s.InitVelocities(0.1)
	s.Run(500)
	// Average over a window.
	var sum float64
	const w = 200
	for i := 0; i < w; i++ {
		s.Step()
		sum += s.Temperature()
	}
	avg := sum / w
	if math.Abs(avg-0.8) > 0.12 {
		t.Errorf("Langevin temperature %v, want ≈0.8", avg)
	}
}

func TestBerendsenReachesTargetTemperature(t *testing.T) {
	pos, box := FCC(4, 4, 4, 1.7)
	s := NewSystem(box, pos, 10)
	s.Pair = NewLJ(1, 1, 2.5)
	s.Thermo = Berendsen
	s.Temp = 0.5
	s.Tau = 0.05
	s.Dt = 0.002
	s.InitVelocities(1.5)
	s.Run(400)
	if got := s.Temperature(); math.Abs(got-0.5) > 0.15 {
		t.Errorf("Berendsen temperature %v, want ≈0.5", got)
	}
}

func TestFrozenAtomsDoNotMove(t *testing.T) {
	pos, box := Slab(3, 3, 2, 6, 1.6)
	s := NewSystem(box, pos, 11)
	s.Pair = NewLJ(1, 1, 2.5)
	s.Frozen = make([]bool, s.N())
	for i, p := range s.Pos {
		if p.Z < 0.5 {
			s.Frozen[i] = true
		}
	}
	frozenPos := map[int]Vec3{}
	for i, fz := range s.Frozen {
		if fz {
			frozenPos[i] = s.Pos[i]
		}
	}
	s.InitVelocities(0.3)
	s.Run(50)
	for i, want := range frozenPos {
		if s.Pos[i] != want {
			t.Fatalf("frozen atom %d moved from %v to %v", i, want, s.Pos[i])
		}
	}
}

func TestChainBondsStayNearR0(t *testing.T) {
	box := Box{L: Vec3{50, 50, 50}}
	s := NewSystem(box, nil, 12)
	first, last := s.Chain(30, Vec3{25, 25, 25}, 1.0, 200, 20)
	if last-first != 29 {
		t.Fatalf("chain range %d-%d", first, last)
	}
	if len(s.Bonds) != 29 || len(s.Angles) != 28 {
		t.Fatalf("topology: %d bonds %d angles", len(s.Bonds), len(s.Angles))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	s.Pair = NewLJ(0.2, 0.9, 2.0)
	s.ExcludeBonded()
	s.Thermo = Langevin
	s.Temp = 0.3
	s.Gamma = 5
	s.Dt = 0.002
	s.InitVelocities(0.3)
	s.Run(1000)
	for _, b := range s.Bonds {
		r := s.Box.Delta(s.Pos[b.I], s.Pos[b.J]).Norm()
		if math.Abs(r-b.R0) > 0.4 {
			t.Fatalf("bond %d-%d stretched to %v (r0=%v)", b.I, b.J, r, b.R0)
		}
	}
}

func TestAngleForceLowersEnergyTowardEquilibrium(t *testing.T) {
	// Three atoms at a right angle with θ0=109.5° should feel forces that
	// open the angle; energy decreases along the force direction.
	box := Box{L: Vec3{100, 100, 100}}
	pos := []Vec3{{1, 0, 0}, {0, 0, 0}, {0, 1, 0}}
	s := NewSystem(box, pos, 13)
	s.Angles = []Angle{{I: 0, J: 1, K: 2, KTheta: 10, T0: 1.9106}}
	u0 := s.ComputeForces()
	// Step a tiny bit along the forces.
	for i := range s.Pos {
		s.Pos[i] = s.Pos[i].Add(s.Force[i].Scale(1e-4))
	}
	u1 := s.ComputeForces()
	if u1 >= u0 {
		t.Errorf("energy did not decrease along forces: %v -> %v", u0, u1)
	}
}

func TestBarnesHutMatchesDirect(t *testing.T) {
	g := NewGravity(400, 10, 3)
	g.Theta = 0.5
	g.ComputeAccel()
	direct := g.DirectAccel()
	// Compare against the RMS force scale: per-particle relative error is
	// meaningless where opposing pulls cancel to near zero.
	var sumErr2, sumRef2 float64
	for i := range direct {
		sumErr2 += g.acc[i].Sub(direct[i]).Norm2()
		sumRef2 += direct[i].Norm2()
	}
	rel := math.Sqrt(sumErr2 / sumRef2)
	if rel > 0.05 {
		t.Errorf("Barnes-Hut RMS relative error %v vs direct", rel)
	}
}

func TestGravityStepMoves(t *testing.T) {
	g := NewGravity(500, 10, 4)
	x0, _, _ := g.Snapshot()
	g.Run(5)
	x1, _, _ := g.Snapshot()
	moved := 0
	for i := range x0 {
		if x0[i] != x1[i] {
			moved++
		}
	}
	if moved < len(x0)/2 {
		t.Errorf("only %d/%d particles moved", moved, len(x0))
	}
	for _, p := range g.Pos {
		if p.X < 0 || p.X >= g.Box.L.X {
			t.Fatalf("particle escaped box: %v", p)
		}
	}
}

func TestSnapshotShapes(t *testing.T) {
	pos, box := FCC(2, 2, 2, 1.5)
	s := NewSystem(box, pos, 14)
	x, y, z := s.Snapshot()
	if len(x) != s.N() || len(y) != s.N() || len(z) != s.N() {
		t.Error("snapshot lengths")
	}
	if x[0] != s.Pos[0].X || z[3] != s.Pos[3].Z {
		t.Error("snapshot values")
	}
}

func TestLJPotentialShape(t *testing.T) {
	lj := NewLJ(1, 1, 2.5)
	// Minimum at r = 2^(1/6)σ: force ≈ 0.
	rm := math.Pow(2, 1.0/6)
	_, g := lj.EnergyForce(rm * rm)
	if math.Abs(g) > 1e-9 {
		t.Errorf("force at minimum = %v", g)
	}
	// Repulsive inside the minimum.
	_, g = lj.EnergyForce(0.9 * 0.9)
	if g <= 0 {
		t.Errorf("force at r=0.9 should be repulsive, got %v", g)
	}
	// Zero beyond cutoff.
	if u, g := lj.EnergyForce(2.6 * 2.6); u != 0 || g != 0 {
		t.Error("beyond-cutoff interaction")
	}
	// Energy continuous at the cutoff (shifted).
	u, _ := lj.EnergyForce(2.4999999 * 2.4999999)
	if math.Abs(u) > 1e-5 {
		t.Errorf("energy at cutoff = %v, want ≈0 (shifted)", u)
	}
}

func BenchmarkLJStep(b *testing.B) {
	pos, box := FCC(8, 8, 8, 1.7)
	s := NewSystem(box, pos, 1)
	s.Pair = NewLJ(1, 1, 2.5)
	s.InitVelocities(0.5)
	s.Step()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkBarnesHutStep(b *testing.B) {
	g := NewGravity(5000, 10, 1)
	g.Step()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Step()
	}
}

func TestGravityEnergyConservation(t *testing.T) {
	// Leapfrog with softened gravity: total energy should drift only
	// slightly over a short run (Barnes-Hut adds bounded force error).
	g := NewGravity(300, 10, 6)
	g.Theta = 0.4
	g.Dt = 0.05
	g.Step() // prime accelerations
	e0 := g.Energy()
	g.Run(40)
	e1 := g.Energy()
	scale := math.Abs(e0)
	if scale == 0 {
		t.Skip("degenerate zero-energy configuration")
	}
	if drift := math.Abs(e1-e0) / scale; drift > 0.05 {
		t.Errorf("gravity energy drift %.3f over 40 steps (E0=%v E1=%v)", drift, e0, e1)
	}
}
