package sim

// cellList is a linked-cell spatial index for O(N) short-range pair
// iteration under periodic or open boundaries.
type cellList struct {
	box        Box
	nx, ny, nz int
	inv        Vec3  // cells per unit length
	head       []int // first atom index per cell, -1 if empty
	next       []int // next atom in the same cell, -1 terminates
}

// newCellList bins positions into cells of edge >= cutoff.
func newCellList(box Box, positions []Vec3, cutoff float64) *cellList {
	nx := int(box.L.X / cutoff)
	ny := int(box.L.Y / cutoff)
	nz := int(box.L.Z / cutoff)
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	if nz < 1 {
		nz = 1
	}
	c := &cellList{
		box: box, nx: nx, ny: ny, nz: nz,
		inv:  Vec3{float64(nx) / box.L.X, float64(ny) / box.L.Y, float64(nz) / box.L.Z},
		head: make([]int, nx*ny*nz),
		next: make([]int, len(positions)),
	}
	for i := range c.head {
		c.head[i] = -1
	}
	for i, p := range positions {
		idx := c.cellIndex(box.Wrap(p))
		c.next[i] = c.head[idx]
		c.head[idx] = i
	}
	return c
}

func (c *cellList) cellIndex(p Vec3) int {
	ix := clampCell(int(p.X*c.inv.X), c.nx)
	iy := clampCell(int(p.Y*c.inv.Y), c.ny)
	iz := clampCell(int(p.Z*c.inv.Z), c.nz)
	return (ix*c.ny+iy)*c.nz + iz
}

func clampCell(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// forEachPair invokes fn once per unordered atom pair whose cells are
// adjacent (including the same cell); distance filtering is the caller's
// job. Each unordered cell pair is visited exactly once even when periodic
// wrapping with few cells per axis maps several stencil directions onto the
// same neighbor.
func (c *cellList) forEachPair(positions []Vec3, fn func(i, j int)) {
	var seen map[int]bool
	small := c.nx <= 2 || c.ny <= 2 || c.nz <= 2
	for ix := 0; ix < c.nx; ix++ {
		for iy := 0; iy < c.ny; iy++ {
			for iz := 0; iz < c.nz; iz++ {
				cell := (ix*c.ny+iy)*c.nz + iz
				// Pairs within the cell.
				for i := c.head[cell]; i >= 0; i = c.next[i] {
					for j := c.next[i]; j >= 0; j = c.next[j] {
						fn(i, j)
					}
				}
				// Pairs with neighbor cells. The full 26-cell stencil with a
				// cell < other guard visits each unordered cell pair once;
				// wrapped duplicates are suppressed via the seen set.
				if small {
					seen = map[int]bool{}
				}
				for dx := -1; dx <= 1; dx++ {
					for dy := -1; dy <= 1; dy++ {
						for dz := -1; dz <= 1; dz++ {
							if dx == 0 && dy == 0 && dz == 0 {
								continue
							}
							jx, jy, jz := ix+dx, iy+dy, iz+dz
							if c.box.Periodic {
								jx = modCell(jx, c.nx)
								jy = modCell(jy, c.ny)
								jz = modCell(jz, c.nz)
							} else if jx < 0 || jx >= c.nx || jy < 0 || jy >= c.ny || jz < 0 || jz >= c.nz {
								continue
							}
							other := (jx*c.ny+jy)*c.nz + jz
							if other <= cell {
								continue
							}
							if small {
								if seen[other] {
									continue
								}
								seen[other] = true
							}
							for i := c.head[cell]; i >= 0; i = c.next[i] {
								for j := c.head[other]; j >= 0; j = c.next[j] {
									fn(i, j)
								}
							}
						}
					}
				}
			}
		}
	}
}

func modCell(d, n int) int {
	m := d % n
	if m < 0 {
		m += n
	}
	return m
}
