package sim

import (
	"math"
	"math/rand"
)

// Gravity is a softened-gravity N-body system solved with a Barnes-Hut
// octree and kick-drift-kick leapfrog integration. It synthesizes the
// HACC-analog cosmology datasets of the paper's generalizability study
// (Fig 16).
type Gravity struct {
	Box Box
	Pos []Vec3
	Vel []Vec3
	// G is the gravitational constant (reduced units), Soft the Plummer
	// softening length, Theta the Barnes-Hut opening angle.
	G, Soft, Theta float64
	Dt             float64

	acc   []Vec3
	steps int
}

// NewGravity builds a gravity system with n particles distributed as a
// mildly clustered random field inside a periodic cube of edge l.
func NewGravity(n int, l float64, seed int64) *Gravity {
	rng := rand.New(rand.NewSource(seed))
	g := &Gravity{
		Box:   NewCubicBox(l),
		Pos:   make([]Vec3, n),
		Vel:   make([]Vec3, n),
		acc:   make([]Vec3, n),
		G:     1e-4,
		Soft:  l * 0.005,
		Theta: 0.6,
		Dt:    0.1,
	}
	// Mixture of a uniform field and Gaussian blobs (proto-halos).
	nBlobs := 1 + n/2000
	centers := make([]Vec3, nBlobs)
	for i := range centers {
		centers[i] = Vec3{rng.Float64() * l, rng.Float64() * l, rng.Float64() * l}
	}
	for i := range g.Pos {
		if rng.Float64() < 0.5 {
			g.Pos[i] = Vec3{rng.Float64() * l, rng.Float64() * l, rng.Float64() * l}
		} else {
			c := centers[rng.Intn(nBlobs)]
			g.Pos[i] = g.Box.Wrap(c.Add(Vec3{
				rng.NormFloat64() * l * 0.05,
				rng.NormFloat64() * l * 0.05,
				rng.NormFloat64() * l * 0.05,
			}))
		}
		g.Vel[i] = Vec3{
			rng.NormFloat64() * 0.01,
			rng.NormFloat64() * 0.01,
			rng.NormFloat64() * 0.01,
		}
	}
	return g
}

// N reports the particle count.
func (g *Gravity) N() int { return len(g.Pos) }

// octNode is a Barnes-Hut octree node over a cubic region.
type octNode struct {
	center   Vec3    // region centre
	half     float64 // half edge length
	com      Vec3    // centre of mass
	mass     float64
	particle int // particle index for leaves, -1 otherwise
	children [8]*octNode
	leaf     bool
}

// buildOctree constructs the tree over all particles (unit masses).
func buildOctree(pos []Vec3, box Box) *octNode {
	half := math.Max(box.L.X, math.Max(box.L.Y, box.L.Z)) / 2
	root := &octNode{
		center:   Vec3{box.L.X / 2, box.L.Y / 2, box.L.Z / 2},
		half:     half,
		particle: -1,
		leaf:     true,
	}
	for i := range pos {
		root.insert(pos[i], i)
	}
	root.summarize()
	return root
}

func (n *octNode) insert(p Vec3, idx int) {
	if n.leaf && n.particle < 0 && n.mass == 0 {
		// Empty leaf: claim it.
		n.particle = idx
		n.com = p
		n.mass = 1
		return
	}
	if n.leaf {
		// Split: push existing occupant down, then insert the new one.
		if n.half < 1e-9 {
			// Coincident particles: aggregate mass at this node.
			n.mass++
			return
		}
		old, oldPos := n.particle, n.com
		n.leaf = false
		n.particle = -1
		if old >= 0 {
			n.childFor(oldPos).insert(oldPos, old)
		}
	}
	n.childFor(p).insert(p, idx)
	n.mass++ // provisional; summarize() recomputes exactly
}

func (n *octNode) childFor(p Vec3) *octNode {
	oct := 0
	if p.X >= n.center.X {
		oct |= 1
	}
	if p.Y >= n.center.Y {
		oct |= 2
	}
	if p.Z >= n.center.Z {
		oct |= 4
	}
	if n.children[oct] == nil {
		h := n.half / 2
		off := Vec3{-h, -h, -h}
		if oct&1 != 0 {
			off.X = h
		}
		if oct&2 != 0 {
			off.Y = h
		}
		if oct&4 != 0 {
			off.Z = h
		}
		n.children[oct] = &octNode{
			center:   n.center.Add(off),
			half:     h,
			particle: -1,
			leaf:     true,
		}
	}
	return n.children[oct]
}

// summarize recomputes mass and centre of mass bottom-up.
func (n *octNode) summarize() (mass float64, weighted Vec3) {
	if n.leaf {
		return n.mass, n.com.Scale(n.mass)
	}
	var m float64
	var w Vec3
	for _, c := range n.children {
		if c == nil {
			continue
		}
		cm, cw := c.summarize()
		m += cm
		w = w.Add(cw)
	}
	n.mass = m
	if m > 0 {
		n.com = w.Scale(1 / m)
	}
	return m, w
}

// accel computes the Barnes-Hut acceleration on a particle at p (excluding
// self-interaction via softening; exact exclusion is unnecessary with
// Plummer softening because the self term is zero distance → zero force
// only if skipped, so leaves matching selfIdx are skipped).
func (g *Gravity) accel(root *octNode, p Vec3, selfIdx int) Vec3 {
	var a Vec3
	soft2 := g.Soft * g.Soft
	var walk func(n *octNode)
	walk = func(n *octNode) {
		if n == nil || n.mass == 0 {
			return
		}
		if n.leaf && n.particle == selfIdx && n.mass <= 1 {
			return
		}
		d := g.Box.Delta(n.com, p)
		r2 := d.Norm2()
		if n.leaf || (n.half*2)/math.Sqrt(r2+1e-300) < g.Theta {
			inv := 1 / math.Pow(r2+soft2, 1.5)
			a = a.Add(d.Scale(g.G * n.mass * inv))
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(root)
	return a
}

// ComputeAccel fills the acceleration array via Barnes-Hut.
func (g *Gravity) ComputeAccel() {
	root := buildOctree(g.Pos, g.Box)
	for i := range g.Pos {
		g.acc[i] = g.accel(root, g.Pos[i], i)
	}
}

// DirectAccel computes exact pairwise accelerations (O(N²)), used by tests
// to validate the tree code.
func (g *Gravity) DirectAccel() []Vec3 {
	n := g.N()
	out := make([]Vec3, n)
	soft2 := g.Soft * g.Soft
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d := g.Box.Delta(g.Pos[j], g.Pos[i])
			r2 := d.Norm2()
			inv := 1 / math.Pow(r2+soft2, 1.5)
			out[i] = out[i].Add(d.Scale(g.G * inv))
		}
	}
	return out
}

// Step advances one kick-drift-kick leapfrog step.
func (g *Gravity) Step() {
	if g.steps == 0 {
		g.ComputeAccel()
	}
	half := 0.5 * g.Dt
	for i := range g.Pos {
		g.Vel[i] = g.Vel[i].Add(g.acc[i].Scale(half))
		g.Pos[i] = g.Box.Wrap(g.Pos[i].Add(g.Vel[i].Scale(g.Dt)))
	}
	g.ComputeAccel()
	for i := range g.Pos {
		g.Vel[i] = g.Vel[i].Add(g.acc[i].Scale(half))
	}
	g.steps++
}

// Run advances n steps.
func (g *Gravity) Run(n int) {
	for i := 0; i < n; i++ {
		g.Step()
	}
}

// Energy returns the total energy: kinetic plus softened pairwise
// potential −G·Σ 1/√(r²+ε²), computed by direct sum (O(N²); use for
// diagnostics on small systems).
func (g *Gravity) Energy() float64 {
	var ke float64
	for _, v := range g.Vel {
		ke += 0.5 * v.Norm2()
	}
	var pe float64
	soft2 := g.Soft * g.Soft
	n := g.N()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			r2 := g.Box.Delta(g.Pos[i], g.Pos[j]).Norm2()
			pe -= g.G / math.Sqrt(r2+soft2)
		}
	}
	return ke + pe
}

// Snapshot copies positions into per-axis arrays.
func (g *Gravity) Snapshot() (x, y, z []float64) {
	n := g.N()
	x = make([]float64, n)
	y = make([]float64, n)
	z = make([]float64, n)
	for i, p := range g.Pos {
		x[i], y[i], z[i] = p.X, p.Y, p.Z
	}
	return x, y, z
}
