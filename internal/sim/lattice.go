package sim

// FCC generates an nx×ny×nz face-centred-cubic lattice (4 atoms per unit
// cell of edge a), the crystal structure of copper and platinum. The
// returned box exactly tiles the lattice.
func FCC(nx, ny, nz int, a float64) ([]Vec3, Box) {
	basis := []Vec3{
		{0, 0, 0},
		{0.5, 0.5, 0},
		{0.5, 0, 0.5},
		{0, 0.5, 0.5},
	}
	return lattice(nx, ny, nz, a, basis)
}

// BCC generates an nx×ny×nz body-centred-cubic lattice (2 atoms per unit
// cell of edge a), the crystal structure of tungsten.
func BCC(nx, ny, nz int, a float64) ([]Vec3, Box) {
	basis := []Vec3{
		{0, 0, 0},
		{0.5, 0.5, 0.5},
	}
	return lattice(nx, ny, nz, a, basis)
}

// SC generates a simple-cubic lattice (1 atom per unit cell).
func SC(nx, ny, nz int, a float64) ([]Vec3, Box) {
	return lattice(nx, ny, nz, a, []Vec3{{0, 0, 0}})
}

func lattice(nx, ny, nz int, a float64, basis []Vec3) ([]Vec3, Box) {
	pos := make([]Vec3, 0, nx*ny*nz*len(basis))
	for ix := 0; ix < nx; ix++ {
		for iy := 0; iy < ny; iy++ {
			for iz := 0; iz < nz; iz++ {
				origin := Vec3{float64(ix), float64(iy), float64(iz)}
				for _, b := range basis {
					pos = append(pos, origin.Add(b).Scale(a))
				}
			}
		}
	}
	box := Box{L: Vec3{float64(nx) * a, float64(ny) * a, float64(nz) * a}, Periodic: true}
	return pos, box
}

// Slab generates an FCC slab occupying the lower nzFilled layers of an
// nx×ny×nz cell, leaving vacuum above — a surface geometry like the paper's
// Pt adatom-diffusion run. The box stays periodic in x/y and tall enough in
// z that the vacuum gap prevents self-interaction.
func Slab(nx, ny, nzFilled, nzTotal int, a float64) ([]Vec3, Box) {
	pos, _ := FCC(nx, ny, nzFilled, a)
	box := Box{L: Vec3{float64(nx) * a, float64(ny) * a, float64(nzTotal) * a}, Periodic: true}
	return pos, box
}
