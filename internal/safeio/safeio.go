// Package safeio provides crash-safe file replacement: output is staged in
// a temporary file in the destination directory, flushed to stable storage,
// and atomically renamed over the final path. A crash — of the process or
// the machine — at any byte of the write leaves either the old file (or no
// file) or the complete new one, never a torn prefix under the final name.
//
// The sequence is the classic journal-free commit protocol:
//
//  1. create a uniquely-named temp file next to the destination (same
//     filesystem, so the rename in step 4 is atomic);
//  2. stream the payload into it;
//  3. fsync the temp file, so the bytes are durable before they become
//     reachable under the final name;
//  4. rename onto the destination — the atomic commit point;
//  5. fsync the parent directory, making the rename itself durable.
//
// Options.NoSync skips steps 3 and 5 for callers that prefer speed over
// crash durability (atomicity against process crashes is preserved either
// way; an OS crash may then lose or empty the renamed file). On any failure
// the temp file is removed and the destination is untouched.
package safeio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Options configures WriteFile.
type Options struct {
	// NoSync skips the fsync of the temp file and parent directory. The
	// rename commit stays atomic, but after an OS crash the new file may be
	// lost or empty.
	NoSync bool
	// Mode is the permission mode of the final file; 0 means 0o644.
	Mode os.FileMode
	// WrapWriter, when non-nil, wraps the temp-file writer before the
	// payload callback sees it. It is a fault-injection seam for tests
	// (abort-at-byte, torn writes); production callers leave it nil.
	WrapWriter func(io.Writer) io.Writer
}

// WriteFile atomically replaces path with the bytes that write produces.
// The callback streams into a staged temp file; only after it returns nil
// and the data is synced does the file appear under path. On any error —
// from the callback, the sync or the rename — the temp file is removed and
// path is left exactly as it was.
func WriteFile(path string, opts Options, write func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("safeio: staging %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()           // no-op if already closed
			os.Remove(tmp.Name()) // the destination stays untouched
		}
	}()
	var w io.Writer = tmp
	if opts.WrapWriter != nil {
		w = opts.WrapWriter(tmp)
	}
	if err = write(w); err != nil {
		return err
	}
	if !opts.NoSync {
		if err = tmp.Sync(); err != nil {
			return fmt.Errorf("safeio: syncing %s: %w", path, err)
		}
	}
	mode := opts.Mode
	if mode == 0 {
		mode = 0o644
	}
	// CreateTemp creates 0o600; widen to the requested final mode.
	if err = tmp.Chmod(mode); err != nil {
		return fmt.Errorf("safeio: chmod %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("safeio: closing staged %s: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("safeio: committing %s: %w", path, err)
	}
	if !opts.NoSync {
		if err = syncDir(dir); err != nil {
			return fmt.Errorf("safeio: syncing directory of %s: %w", path, err)
		}
	}
	return nil
}

// WriteFileBytes is WriteFile for a payload already in memory.
func WriteFileBytes(path string, data []byte, opts Options) error {
	return WriteFile(path, opts, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// syncDir makes a completed rename in dir durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
