package safeio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"github.com/mdz/mdz/internal/faultio"
)

func TestWriteFileBytes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.bin")
	payload := []byte("hello, durable world")
	if err := WriteFileBytes(path, payload, Options{}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("read back %q, want %q", got, payload)
	}
	if fi, err := os.Stat(path); err != nil || fi.Mode().Perm() != 0o644 {
		t.Fatalf("mode = %v, %v; want 0644", fi.Mode(), err)
	}
}

func TestWriteFileReplacesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.bin")
	if err := os.WriteFile(path, []byte("old"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileBytes(path, []byte("new"), Options{NoSync: true}); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new" {
		t.Fatalf("read back %q, want %q", got, "new")
	}
}

func TestWriteFileCallbackErrorLeavesDestination(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := os.WriteFile(path, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("payload failure")
	err := WriteFile(path, Options{}, func(w io.Writer) error {
		w.Write([]byte("partial garbage"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the callback's", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "precious" {
		t.Fatalf("destination changed to %q on a failed write", got)
	}
	assertNoStrays(t, dir, "out.bin")
}

// TestWriteFileCrashMatrix kills the write at every byte offset of the
// payload and checks the crash-consistency contract: the destination is
// either absent (commit never happened) or holds the complete payload —
// never a torn prefix.
func TestWriteFileCrashMatrix(t *testing.T) {
	payload := []byte("MDZC crash consistency payload 0123456789")
	for n := 0; n <= len(payload); n++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "out.bin")
		err := WriteFile(path, Options{
			NoSync:     true,
			WrapWriter: func(w io.Writer) io.Writer { return faultio.NewWriter(w).AbortAt(int64(n)) },
		}, func(w io.Writer) error {
			_, err := w.Write(payload)
			return err
		})
		got, rerr := os.ReadFile(path)
		switch {
		case n < len(payload):
			if !errors.Is(err, faultio.ErrAborted) {
				t.Fatalf("abort at %d: err = %v, want ErrAborted", n, err)
			}
			if !os.IsNotExist(rerr) {
				t.Fatalf("abort at %d: destination exists with %d bytes; want absent", n, len(got))
			}
		default: // n == len(payload): the full payload got through
			if err != nil {
				t.Fatalf("abort past the payload: %v", err)
			}
			if rerr != nil || string(got) != string(payload) {
				t.Fatalf("destination = %q, %v; want the full payload", got, rerr)
			}
		}
		assertNoStrays(t, dir, "out.bin")
	}
}

// TestWriteFileTornWriteNeverCommits models a torn write the producer never
// observes (faultio Truncate): the staged bytes are short, but since the
// callback "succeeded", safeio commits. This documents the boundary of the
// contract — safeio guarantees atomic visibility of whatever the callback
// streamed, it cannot detect payload-level lies. Wire-format CRCs are the
// layer that catches this, which is exactly what mdzc -fsck verifies.
func TestWriteFileTornWriteNeverCommits(t *testing.T) {
	payload := []byte("0123456789")
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	err := WriteFile(path, Options{
		NoSync: true,
		WrapWriter: func(w io.Writer) io.Writer {
			return faultio.NewWriter(w, faultio.Fault{Kind: faultio.Truncate, Offset: 4})
		},
	}, func(w io.Writer) error {
		_, err := w.Write(payload)
		return err
	})
	if err != nil {
		t.Fatalf("torn write surfaced as %v; faultio models it as silent", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil || string(got) != "0123" {
		t.Fatalf("committed %q, %v; want the torn 4-byte prefix", got, rerr)
	}
}

// assertNoStrays fails if the staged temp file survived in dir.
func assertNoStrays(t *testing.T, dir, keep string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() != keep {
			t.Fatalf("stray staging file %q left behind", e.Name())
		}
	}
}
