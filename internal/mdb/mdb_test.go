package mdb_test

import (
	"math"
	"testing"

	"github.com/mdz/mdz/internal/codec"
	"github.com/mdz/mdz/internal/codec/codectest"
	"github.com/mdz/mdz/internal/mdb"
)

func TestConformance(t *testing.T) {
	codectest.RunConformance(t, codec.FromBatch(&mdb.Compressor{}))
}

func TestPMCOnConstantSeries(t *testing.T) {
	// Constant series collapse to one PMC segment each.
	bs, n := 40, 500
	batch := make([][]float64, bs)
	for t2 := range batch {
		snap := make([]float64, n)
		for i := range snap {
			snap[i] = float64(i) * 0.1
		}
		batch[t2] = snap
	}
	c := &mdb.Compressor{}
	blk, err := c.CompressSeries(batch, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	// One PMC segment per atom ≈ 11 bytes ≪ raw 40×8.
	if len(blk) > n*20 {
		t.Errorf("constant series: %d B for %d atoms", len(blk), n)
	}
	got, err := c.DecompressSeries(blk)
	if err != nil {
		t.Fatal(err)
	}
	for t2 := range batch {
		for i := range batch[t2] {
			if e := math.Abs(got[t2][i] - batch[t2][i]); e > 1e-3 {
				t.Fatalf("PMC bound violated: %v", e)
			}
		}
	}
}

func TestSwingOnLinearSeries(t *testing.T) {
	bs, n := 40, 300
	batch := make([][]float64, bs)
	for t2 := range batch {
		snap := make([]float64, n)
		for i := range snap {
			snap[i] = float64(i) + 0.05*float64(t2) // linear in time
		}
		batch[t2] = snap
	}
	c := &mdb.Compressor{}
	blk, err := c.CompressSeries(batch, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	// One Swing segment per atom ≈ 19 bytes.
	if len(blk) > n*30 {
		t.Errorf("linear series: %d B for %d atoms", len(blk), n)
	}
	got, err := c.DecompressSeries(blk)
	if err != nil {
		t.Fatal(err)
	}
	for t2 := range batch {
		for i := range batch[t2] {
			if e := math.Abs(got[t2][i] - batch[t2][i]); e > 1e-4 {
				t.Fatalf("Swing bound violated: %v at (%d,%d)", e, t2, i)
			}
		}
	}
}

func TestGorillaFallbackIsLossless(t *testing.T) {
	// Erratic series forces Gorilla: reconstruction must be bit-exact.
	batch := [][]float64{
		{1.1, -5, math.Pi},
		{-7.3, 100, 2.5},
		{42, -0.001, 1e10},
	}
	c := &mdb.Compressor{}
	blk, err := c.CompressSeries(batch, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.DecompressSeries(blk)
	if err != nil {
		t.Fatal(err)
	}
	for t2 := range batch {
		for i := range batch[t2] {
			if math.Abs(got[t2][i]-batch[t2][i]) > 1e-12 {
				t.Fatalf("Gorilla fallback lossy at (%d,%d): %v vs %v", t2, i, got[t2][i], batch[t2][i])
			}
		}
	}
}

func TestCorrupt(t *testing.T) {
	c := &mdb.Compressor{}
	blk, err := c.CompressSeries([][]float64{{1, 2}, {3, 4}}, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 3, len(blk) - 2} {
		if _, err := c.DecompressSeries(blk[:cut]); err == nil {
			t.Errorf("prefix %d accepted", cut)
		}
	}
}
