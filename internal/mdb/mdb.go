// Package mdb reimplements the compression core of ModelarDB (Jensen et
// al.) as an evaluation baseline — the paper's "MDB", a C++ re-extraction
// of ModelarDB's model-based compressor with the database machinery
// stripped. Each particle's time series is segmented window-by-window; for
// every segment the cheapest of three models within the error bound is
// stored:
//
//   - PMC-mean: a constant value (midrange of the segment),
//   - Swing: a linear function fit while the swing envelope stays valid,
//   - Gorilla: lossless XOR-of-previous-value bit packing (the fallback).
//
// As the paper observes (§VII-C1), the lack of quantization and entropy
// coding limits MDB to low single-digit compression ratios on MD data; this
// reimplementation reproduces that regime.
package mdb

import (
	"errors"
	"fmt"
	"math"

	"github.com/mdz/mdz/internal/bitstream"
)

// ErrCorrupt is returned for malformed blocks.
var ErrCorrupt = errors.New("mdb: corrupt block")

// Compressor is a stateless per-batch ModelarDB-style codec.
type Compressor struct{}

// Name implements the benchmark Codec naming convention.
func (c *Compressor) Name() string { return "MDB" }

const blockMagic = "MDBB"

// Model identifiers.
const (
	modelPMC     = 0
	modelSwing   = 1
	modelGorilla = 2
)

// CompressSeries compresses one axis batch under absolute error bound eb.
// Segmentation runs along each particle's time series.
func (c *Compressor) CompressSeries(batch [][]float64, eb float64) ([]byte, error) {
	if len(batch) == 0 {
		return nil, errors.New("mdb: empty batch")
	}
	n := len(batch[0])
	for i, s := range batch {
		if len(s) != n {
			return nil, fmt.Errorf("mdb: snapshot %d has %d values, want %d", i, len(s), n)
		}
	}
	if !(eb > 0) {
		return nil, errors.New("mdb: error bound must be positive")
	}
	bs := len(batch)
	var body []byte
	w := &bitstream.Writer{}
	series := make([]float64, bs)
	for i := 0; i < n; i++ {
		for t := 0; t < bs; t++ {
			series[t] = batch[t][i]
		}
		body = compressSeries1D(body, w, series, eb)
	}
	out := append([]byte{}, blockMagic...)
	out = bitstream.AppendFloat64(out, eb)
	out = bitstream.AppendUvarint(out, uint64(bs))
	out = bitstream.AppendUvarint(out, uint64(n))
	out = bitstream.AppendSection(out, body)
	out = bitstream.AppendSection(out, w.Bytes())
	return out, nil
}

// compressSeries1D greedily segments one series. Model metadata goes to
// body (varints); Gorilla payloads go to the shared bit writer.
func compressSeries1D(body []byte, w *bitstream.Writer, s []float64, eb float64) []byte {
	t := 0
	var segs []byte
	nSegs := 0
	// lastRecon tracks the reconstructed previous value: Gorilla XORs
	// against what the *decoder* will have, which is lossy for model
	// segments.
	lastRecon := 0.0
	for t < len(s) {
		// Try PMC-mean: extend while (max-min)/2 <= eb.
		pmcEnd, pmcVal := fitPMC(s[t:], eb)
		// Try Swing: linear fit.
		swingEnd, a0, a1 := fitSwing(s[t:], eb)
		switch {
		case pmcEnd >= swingEnd && pmcEnd > 1:
			segs = bitstream.AppendUvarint(segs, uint64(modelPMC))
			segs = bitstream.AppendUvarint(segs, uint64(pmcEnd))
			segs = bitstream.AppendFloat64(segs, pmcVal)
			t += pmcEnd
			lastRecon = pmcVal
		case swingEnd > 1:
			segs = bitstream.AppendUvarint(segs, uint64(modelSwing))
			segs = bitstream.AppendUvarint(segs, uint64(swingEnd))
			segs = bitstream.AppendFloat64(segs, a0)
			segs = bitstream.AppendFloat64(segs, a1)
			t += swingEnd
			lastRecon = a0 + a1*float64(swingEnd-1)
		default:
			// Gorilla fallback: lossless XOR packing per value.
			segs = bitstream.AppendUvarint(segs, uint64(modelGorilla))
			segs = bitstream.AppendUvarint(segs, 1)
			var prev uint64
			if t > 0 {
				prev = math.Float64bits(lastRecon)
			}
			gorillaEncode(w, math.Float64bits(s[t]), prev)
			lastRecon = s[t]
			t++
		}
		nSegs++
	}
	body = bitstream.AppendUvarint(body, uint64(nSegs))
	return append(body, segs...)
}

// fitPMC returns the longest prefix representable by one constant within
// eb, and that constant (the midrange).
func fitPMC(s []float64, eb float64) (int, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	end := 0
	val := 0.0
	for i, v := range s {
		if math.IsNaN(v) {
			break
		}
		nlo, nhi := math.Min(lo, v), math.Max(hi, v)
		if nhi-nlo > 2*eb || math.IsInf(nhi-nlo, 0) {
			break
		}
		// Verify the rounded midrange explicitly: at extreme magnitudes the
		// float64 average can land more than eb from an endpoint.
		nval := (nlo + nhi) / 2
		if math.Abs(nval-nlo) > eb || math.Abs(nval-nhi) > eb {
			break
		}
		lo, hi = nlo, nhi
		end = i + 1
		val = nval
	}
	return end, val
}

// fitSwing returns the longest prefix representable by a line within eb,
// with intercept a0 and slope a1 (the swing-filter envelope method).
func fitSwing(s []float64, eb float64) (int, float64, float64) {
	if len(s) == 0 || math.IsNaN(s[0]) || math.IsInf(s[0], 0) {
		return 0, 0, 0
	}
	a0 := s[0]
	if len(s) == 1 {
		return 1, a0, 0
	}
	// Envelope of admissible slopes through (0, a0).
	loSlope, hiSlope := math.Inf(-1), math.Inf(1)
	end := 1
	for i := 1; i < len(s); i++ {
		v := s[i]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			break
		}
		x := float64(i)
		nlo := math.Max(loSlope, (v-eb-a0)/x)
		nhi := math.Min(hiSlope, (v+eb-a0)/x)
		if nlo > nhi {
			break
		}
		loSlope, hiSlope = nlo, nhi
		end = i + 1
	}
	slope := 0.0
	if end > 1 {
		switch {
		case math.IsInf(loSlope, 0) && math.IsInf(hiSlope, 0):
			slope = 0
		case math.IsInf(loSlope, 0):
			slope = hiSlope
		case math.IsInf(hiSlope, 0):
			slope = loSlope
		default:
			slope = (loSlope + hiSlope) / 2
		}
	}
	// Verify the decoder's exact reconstruction a0 + slope·k against the
	// bound (float rounding can break the envelope math at extreme
	// magnitudes); shrink the segment until every point passes.
	for end > 1 {
		ok := true
		for k := 0; k < end; k++ {
			if math.Abs(a0+slope*float64(k)-s[k]) > eb {
				ok = false
				break
			}
		}
		if ok {
			break
		}
		end--
	}
	return end, a0, slope
}

// gorillaEncode writes one value XORed against the previous using the
// Gorilla scheme: '0' bit for identical, else '1' + 6-bit leading-zero
// count + 6-bit significant length + the significant bits.
func gorillaEncode(w *bitstream.Writer, bits, prev uint64) {
	x := bits ^ prev
	if x == 0 {
		w.WriteBit(0)
		return
	}
	w.WriteBit(1)
	lead := leadingZeros(x)
	trail := trailingZeros(x)
	sig := 64 - lead - trail
	w.WriteBits(uint64(lead), 6)
	w.WriteBits(uint64(sig-1), 6) // sig ∈ [1,64] stored as sig−1
	w.WriteBits(x>>uint(trail), uint(sig))
}

func gorillaDecode(r *bitstream.Reader, prev uint64) (uint64, error) {
	b, err := r.ReadBit()
	if err != nil {
		return 0, err
	}
	if b == 0 {
		return prev, nil
	}
	lead64, err := r.ReadBits(6)
	if err != nil {
		return 0, err
	}
	sig64, err := r.ReadBits(6)
	if err != nil {
		return 0, err
	}
	lead, sig := int(lead64), int(sig64)+1
	if lead+sig > 64 {
		return 0, ErrCorrupt
	}
	v, err := r.ReadBits(uint(sig))
	if err != nil {
		return 0, err
	}
	trail := 64 - lead - sig
	return prev ^ (v << uint(trail)), nil
}

func leadingZeros(x uint64) int {
	n := 0
	for x&(1<<63) == 0 && n < 64 {
		x <<= 1
		n++
	}
	return n
}

func trailingZeros(x uint64) int {
	n := 0
	for x&1 == 0 && n < 64 {
		x >>= 1
		n++
	}
	return n
}

// DecompressSeries inverts CompressSeries.
func (c *Compressor) DecompressSeries(blk []byte) ([][]float64, error) {
	br := bitstream.NewByteReader(blk)
	magic, err := br.ReadBytes(4)
	if err != nil || string(magic) != blockMagic {
		return nil, ErrCorrupt
	}
	if _, err := br.ReadFloat64(); err != nil { // eb, informational
		return nil, err
	}
	bs64, err := br.ReadUvarint()
	if err != nil {
		return nil, err
	}
	n64, err := br.ReadUvarint()
	if err != nil {
		return nil, err
	}
	bs, n := int(bs64), int(n64)
	if bs <= 0 || n < 0 || uint64(bs)*uint64(n) > 1<<33 {
		return nil, ErrCorrupt
	}
	body, err := br.ReadSection()
	if err != nil {
		return nil, err
	}
	gBits, err := br.ReadSection()
	if err != nil {
		return nil, err
	}
	bodyR := bitstream.NewByteReader(body)
	gr := bitstream.NewReader(gBits)
	out := make([][]float64, bs)
	for t := range out {
		out[t] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		nSegs, err := bodyR.ReadUvarint()
		if err != nil {
			return nil, err
		}
		t := 0
		for sIdx := uint64(0); sIdx < nSegs; sIdx++ {
			model, err := bodyR.ReadUvarint()
			if err != nil {
				return nil, err
			}
			length64, err := bodyR.ReadUvarint()
			if err != nil {
				return nil, err
			}
			length := int(length64)
			if t+length > bs {
				return nil, ErrCorrupt
			}
			switch model {
			case modelPMC:
				v, err := bodyR.ReadFloat64()
				if err != nil {
					return nil, err
				}
				for k := 0; k < length; k++ {
					out[t+k][i] = v
				}
			case modelSwing:
				a0, err := bodyR.ReadFloat64()
				if err != nil {
					return nil, err
				}
				a1, err := bodyR.ReadFloat64()
				if err != nil {
					return nil, err
				}
				for k := 0; k < length; k++ {
					out[t+k][i] = a0 + a1*float64(k)
				}
			case modelGorilla:
				var prev uint64
				if t > 0 {
					prev = math.Float64bits(out[t-1][i])
				}
				for k := 0; k < length; k++ {
					bits, err := gorillaDecode(gr, prev)
					if err != nil {
						return nil, err
					}
					out[t+k][i] = math.Float64frombits(bits)
					prev = bits
				}
			default:
				return nil, ErrCorrupt
			}
			t += length
		}
		if t != bs {
			return nil, ErrCorrupt
		}
	}
	return out, nil
}
