package kmeans

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// levels generates n points clustered around k equal-distant levels μ+j·λ
// with Gaussian vibration σ, mimicking crystalline MD coordinates.
func levels(n, k int, mu, lambda, sigma float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		j := rng.Intn(k)
		out[i] = mu + float64(j)*lambda + rng.NormFloat64()*sigma
	}
	return out
}

func TestClusterRecoverLevels(t *testing.T) {
	for _, k := range []int{2, 3, 5, 8, 12} {
		data := levels(5000, k, 10.0, 2.0, 0.05, int64(k))
		res, err := Cluster1D(data, Options{Seed: 1, SampleFraction: 1})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if res.K != k {
			t.Errorf("k=%d: selected K=%d", k, res.K)
			continue
		}
		if math.Abs(res.LevelDistance-2.0) > 0.05 {
			t.Errorf("k=%d: λ=%v, want ≈2.0", k, res.LevelDistance)
		}
		if math.Abs(res.LevelOrigin-10.0) > 0.1 {
			t.Errorf("k=%d: μ=%v, want ≈10.0", k, res.LevelOrigin)
		}
		if res.SpacingRSD > 0.1 {
			t.Errorf("k=%d: SpacingRSD=%v, want near 0 for equal-distant levels", k, res.SpacingRSD)
		}
	}
}

func TestClusterMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := 10 + rng.Intn(60)
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.Float64() * 100
		}
		sorted := append([]float64(nil), data...)
		sort.Float64s(sorted)
		// Force a specific K by disabling the elbow (huge ratio threshold
		// never triggers) and capping MaxK; then compare the final layer cost
		// at the selected K against brute force at the same K.
		res, err := Cluster1D(data, Options{SampleFraction: 1, MaxK: 6, ElbowRatio: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		want := BruteForce(sorted, res.K)
		if math.Abs(res.Cost-want) > 1e-6*(1+want) {
			t.Errorf("trial %d: DP cost %v != brute force %v at K=%d", trial, res.Cost, want, res.K)
		}
	}
}

func TestDPLayerOptimalEveryK(t *testing.T) {
	// Validate the D&C layer fill against brute force for every layer.
	rng := rand.New(rand.NewSource(4))
	data := make([]float64, 40)
	for i := range data {
		data[i] = rng.NormFloat64() * 10
	}
	sort.Float64s(data)
	ps := newPrefixSums(data)
	n := len(data)
	prev := make([]float64, n+1)
	cur := make([]float64, n+1)
	for m := 1; m <= n; m++ {
		prev[m] = ps.cost(0, m-1)
	}
	for k := 2; k <= 8; k++ {
		row := make([]int32, n+1)
		for m := 1; m < k; m++ {
			cur[m] = 0
		}
		fillLayer(ps, prev, cur, row, k, k, n, 1, n)
		if want := BruteForce(data, k); math.Abs(cur[n]-want) > 1e-9*(1+want) {
			t.Errorf("k=%d: layer cost %v != brute %v", k, cur[n], want)
		}
		prev, cur = cur, prev
	}
}

func TestSingleCluster(t *testing.T) {
	data := levels(1000, 1, 5.0, 0, 0.01, 3)
	res, err := Cluster1D(data, Options{SampleFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K < 1 {
		t.Fatalf("K=%d", res.K)
	}
	if res.LevelDistance <= 0 {
		t.Errorf("λ=%v must be positive", res.LevelDistance)
	}
}

func TestConstantData(t *testing.T) {
	data := make([]float64, 100)
	for i := range data {
		data[i] = 42
	}
	res, err := Cluster1D(data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 1 && res.Cost != 0 {
		t.Errorf("constant data: K=%d cost=%v", res.K, res.Cost)
	}
	if res.LevelDistance <= 0 {
		t.Errorf("λ=%v must be positive even for constant data", res.LevelDistance)
	}
}

func TestEmptyAndNaN(t *testing.T) {
	if _, err := Cluster1D(nil, Options{}); err != ErrEmpty {
		t.Errorf("nil data: err=%v", err)
	}
	if _, err := Cluster1D([]float64{math.NaN(), math.Inf(1)}, Options{}); err != ErrEmpty {
		t.Errorf("all-NaN data: err=%v", err)
	}
	// NaNs mixed with real data are skipped.
	res, err := Cluster1D([]float64{1, math.NaN(), 1.1, 0.9, 5, 5.1, 4.9}, Options{SampleFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 2 {
		t.Errorf("expected 2 clusters, got %d (centers %v)", res.K, res.Centers)
	}
}

func TestSamplingBoundsWork(t *testing.T) {
	data := levels(200000, 6, 0, 1.5, 0.02, 8)
	res, err := Cluster1D(data, Options{Seed: 2, MaxSample: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 6 {
		t.Errorf("sampled clustering selected K=%d, want 6", res.K)
	}
	if math.Abs(res.LevelDistance-1.5) > 0.05 {
		t.Errorf("λ=%v, want ≈1.5", res.LevelDistance)
	}
}

func TestKCap(t *testing.T) {
	// 200 distinct well-separated levels must still respect MaxK=150.
	data := levels(20000, 200, 0, 10, 0.001, 5)
	res, err := Cluster1D(data, Options{SampleFraction: 1, ElbowRatio: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if res.K > MaxK {
		t.Errorf("K=%d exceeds cap %d", res.K, MaxK)
	}
}

func TestPrefixSumCost(t *testing.T) {
	d := []float64{1, 2, 3, 10}
	ps := newPrefixSums(d)
	// cost of {1,2,3}: mean 2, deviation 2.
	if got := ps.cost(0, 2); math.Abs(got-2) > 1e-12 {
		t.Errorf("cost(0,2)=%v want 2", got)
	}
	if got := ps.cost(3, 3); got != 0 {
		t.Errorf("singleton cost=%v", got)
	}
}

func TestCostNonNegativeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		d := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e100 {
				d = append(d, v)
			}
		}
		if len(d) == 0 {
			return true
		}
		sort.Float64s(d)
		ps := newPrefixSums(d)
		for l := 0; l < len(d); l++ {
			for r := l; r < len(d) && r < l+10; r++ {
				if ps.cost(l, r) < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCostMonotoneInK(t *testing.T) {
	// F(N,k) must be non-increasing in k.
	data := levels(500, 4, 0, 3, 0.2, 11)
	sort.Float64s(data)
	prevCost := math.Inf(1)
	for k := 1; k <= 8; k++ {
		c := BruteForce(data, k)
		if c > prevCost+1e-9 {
			t.Errorf("F(N,%d)=%v > F(N,%d)=%v", k, c, k-1, prevCost)
		}
		prevCost = c
	}
}

func BenchmarkCluster1D(b *testing.B) {
	data := levels(100000, 10, 0, 2, 0.05, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cluster1D(data, Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
