// Package kmeans implements the sampling-based optimal 1-D k-means used by
// MDZ's VQ predictor (paper §VI-A).
//
// Optimally partitioning N sorted scalars into K clusters is solved exactly
// by dynamic programming over prefix sums:
//
//	F(n,k) = min_{0<i<=n} F(i-1,k-1) + Cost(i,n)
//
// where Cost(l,r) is the within-cluster squared deviation, O(1) per query
// via prefix sums of d and d². Each DP layer is filled with
// divide-and-conquer argmin exploitation of the monotone optimal split
// (O(N log N) per layer; the paper cites the O(KN) SMAWK variant of
// Grønlund et al. — the D&C form has identical output and is the standard
// practical implementation).
//
// Performance boosts from the paper: the DP runs once per compressor
// lifetime on a sample of the first snapshot (default 10 %), and layer
// computation stops early at the elbow κ where the improvement ratio
// G(k) = F(N,k)/F(N,k-1) collapses. K is capped at 150 because more levels
// harm the compressibility of the vector-quantization indexes.
package kmeans

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// MaxK is the paper's cap on the number of levels tested.
const MaxK = 150

// DefaultSampleFraction is the paper's sampling rate (10 % of the first
// snapshot).
const DefaultSampleFraction = 0.10

// DefaultMaxSample bounds the DP input size regardless of snapshot size,
// keeping clustering cost negligible next to compression.
const DefaultMaxSample = 20000

// ErrEmpty is returned when no finite data is available to cluster.
var ErrEmpty = errors.New("kmeans: no finite data")

// Result describes an optimal 1-D clustering and the derived equal-distant
// level model λ, μ used by the VQ predictor: level j sits at μ + j·λ.
type Result struct {
	// K is the selected number of clusters.
	K int
	// Centers holds the cluster centroids in ascending order.
	Centers []float64
	// Cost is the within-cluster squared deviation of the selected K.
	Cost float64
	// LevelDistance is λ, the fitted spacing between adjacent levels.
	LevelDistance float64
	// LevelOrigin is μ, the fitted value of level 0 (the lowest level).
	LevelOrigin float64
	// SpacingRSD is the relative standard deviation of consecutive center
	// spacings: ~0 for perfectly equal-distant levels, large for irregular
	// clusters. Callers can use it to judge VQ suitability.
	SpacingRSD float64
}

// Options configures Cluster1D.
type Options struct {
	// MaxK caps the number of clusters tested (default MaxK).
	MaxK int
	// SampleFraction in (0,1] selects the sampling rate (default 10 %).
	SampleFraction float64
	// MaxSample bounds the absolute sample size (default DefaultMaxSample).
	MaxSample int
	// Seed makes sampling deterministic.
	Seed int64
	// ElbowRatio is the G(κ) collapse threshold that stops the layer
	// computation (default 0.05): when the improvement ratio
	// G(κ) = F(N,κ)/F(N,κ−1) suddenly collapses below it — far below the
	// smooth ((κ−1)/κ)² decay of structure-less data — κ has matched the
	// data's true level count and the DP stops there.
	ElbowRatio float64
}

func (o *Options) fill() {
	if o.MaxK <= 0 || o.MaxK > MaxK {
		o.MaxK = MaxK
	}
	if o.SampleFraction <= 0 || o.SampleFraction > 1 {
		o.SampleFraction = DefaultSampleFraction
	}
	if o.MaxSample <= 0 {
		o.MaxSample = DefaultMaxSample
	}
	if o.ElbowRatio <= 0 || o.ElbowRatio >= 1 {
		o.ElbowRatio = 0.05
	}
}

// Cluster1D computes the sampled optimal 1-D k-means of data and fits the
// equal-distant level model. It never modifies data.
func Cluster1D(data []float64, opts Options) (Result, error) {
	opts.fill()
	sample := sampleFinite(data, opts.SampleFraction, opts.MaxSample, opts.Seed)
	if len(sample) == 0 {
		return Result{}, ErrEmpty
	}
	sort.Float64s(sample)
	return clusterSorted(sample, opts)
}

func sampleFinite(data []float64, frac float64, maxN int, seed int64) []float64 {
	want := int(float64(len(data)) * frac)
	if want < 1 {
		want = len(data)
	}
	if want > maxN {
		want = maxN
	}
	out := make([]float64, 0, want)
	if len(data) <= want {
		for _, v := range data {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				out = append(out, v)
			}
		}
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	// Reservoir-free strided sample with random phase: cheap and stable.
	stride := float64(len(data)) / float64(want)
	off := rng.Float64() * stride
	for i := 0; i < want; i++ {
		v := data[int(off+float64(i)*stride)]
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			out = append(out, v)
		}
	}
	return out
}

// prefixSums enables O(1) within-cluster cost queries.
type prefixSums struct {
	s, s2 []float64 // s[i] = sum of d[0..i), s2 likewise for squares
}

func newPrefixSums(d []float64) prefixSums {
	p := prefixSums{s: make([]float64, len(d)+1), s2: make([]float64, len(d)+1)}
	for i, v := range d {
		p.s[i+1] = p.s[i] + v
		p.s2[i+1] = p.s2[i] + v*v
	}
	return p
}

// cost returns the squared deviation of clustering d[l..r] (inclusive,
// 0-based) into one group around its mean.
func (p prefixSums) cost(l, r int) float64 {
	n := float64(r - l + 1)
	s := p.s[r+1] - p.s[l]
	s2 := p.s2[r+1] - p.s2[l]
	c := s2 - s*s/n
	if c < 0 {
		return 0 // numerical floor
	}
	return c
}

func clusterSorted(d []float64, opts Options) (Result, error) {
	n := len(d)
	ps := newPrefixSums(d)

	maxK := opts.MaxK
	if maxK > n {
		maxK = n
	}

	// F rows and split-point rows per layer, for backtracking.
	prev := make([]float64, n+1) // prev[m] = F(m, k-1), m = number of points
	cur := make([]float64, n+1)
	splits := make([][]int32, 1, maxK+1) // splits[k][m] = H(m,k); layer 0 unused

	prev[0] = 0
	for m := 1; m <= n; m++ {
		prev[m] = ps.cost(0, m-1) // k = 1
	}
	layerCosts := []float64{math.NaN(), prev[n]} // index by k
	splits = append(splits, nil)                 // k=1 has no split row

	bestK := 1
	found := false
	for k := 2; k <= maxK; k++ {
		fPrev := layerCosts[k-1]
		if fPrev == 0 {
			// Already a perfect clustering at k-1.
			bestK, found = k-1, true
			break
		}
		row := make([]int32, n+1)
		cur[0] = 0
		// cur[m] for m < k is 0 (each point its own cluster).
		for m := 1; m < k && m <= n; m++ {
			cur[m] = 0
			row[m] = int32(m) // degenerate: last cluster is the single point m
		}
		if n >= k {
			fillLayer(ps, prev, cur, row, k, k, n, 1, n)
		}
		splits = append(splits, row)
		layerCosts = append(layerCosts, cur[n])
		fCur := cur[n]

		// Elbow: G(k) collapsing far below the smooth decay of
		// structure-less data means k matches the true level count. Tiny
		// samples can reach near-zero cost by overfitting (one cluster per
		// point); require at least 4 sample points per cluster before
		// accepting the collapse as structure.
		if g := fCur / fPrev; (g < opts.ElbowRatio || fCur == 0) && n >= 4*k {
			bestK, found = k, true
			break
		}
		if n < 4*k {
			break // deeper layers would only overfit the sample
		}
		prev, cur = cur, prev
	}
	if !found {
		// No collapse: data has no strong level structure (e.g. uniform
		// distributions, Fig 4 (b)(e)(f)). Pick a small k that balances
		// residual cost against level-index entropy.
		bestScore := math.Inf(1)
		for k := 1; k < len(layerCosts); k++ {
			score := layerCosts[k]/layerCosts[1] + 0.01*float64(k)
			if score < bestScore {
				bestScore = score
				bestK = k
			}
		}
	}
	bestCost := layerCosts[bestK]

	centers := backtrack(d, ps, splits, bestK)
	res := Result{K: bestK, Centers: centers, Cost: bestCost}
	res.LevelDistance, res.LevelOrigin, res.SpacingRSD = fitLevels(centers, d)
	return res, nil
}

// fillLayer computes cur[lo..hi] = F(m,k) with divide-and-conquer over the
// monotone optimal split point. optLo/optHi bound the candidate split range.
func fillLayer(ps prefixSums, prev, cur []float64, row []int32, k, lo, hi, optLo, optHi int) {
	if lo > hi {
		return
	}
	mid := (lo + hi) / 2
	bestCost := math.Inf(1)
	bestI := optLo
	iHi := optHi
	if iHi > mid-1 {
		iHi = mid - 1 // last cluster i..mid-1 must be non-empty
	}
	iLo := optLo
	if iLo < k-1 {
		iLo = k - 1 // need at least k-1 points before the last cluster
	}
	for i := iLo; i <= iHi; i++ {
		// Last cluster covers points i..mid-1 (0-based), i.e. i+1..mid in
		// 1-based "count" terms with split H = i+1.
		c := prev[i] + ps.cost(i, mid-1)
		if c < bestCost {
			bestCost = c
			bestI = i
		}
	}
	cur[mid] = bestCost
	row[mid] = int32(bestI)
	fillLayer(ps, prev, cur, row, k, lo, mid-1, optLo, bestI)
	fillLayer(ps, prev, cur, row, k, mid+1, hi, bestI, optHi)
}

// backtrack recovers cluster centroids for the chosen k from split rows.
func backtrack(d []float64, ps prefixSums, splits [][]int32, k int) []float64 {
	n := len(d)
	bounds := make([]int, k+1) // bounds[j] = first index of cluster j; bounds[k] = n
	bounds[k] = n
	m := n
	for j := k; j >= 2; j-- {
		i := int(splits[j][m])
		bounds[j-1] = i
		m = i
	}
	bounds[0] = 0
	centers := make([]float64, 0, k)
	for j := 0; j < k; j++ {
		l, r := bounds[j], bounds[j+1]
		if l >= r {
			continue // empty cluster from degenerate layers
		}
		centers = append(centers, (ps.s[r]-ps.s[l])/float64(r-l))
	}
	return centers
}

// fitLevels derives λ and μ from the centroids. With K ≥ 2 it least-squares
// fits center_j ≈ μ + λ·j; with K = 1 it falls back to a λ that spans the
// data range so the single-level model still quantizes sensibly.
func fitLevels(centers []float64, d []float64) (lambda, mu, rsd float64) {
	k := len(centers)
	if k == 0 {
		return 1, 0, 0
	}
	if k == 1 {
		lo, hi := d[0], d[len(d)-1]
		span := hi - lo
		if span <= 0 {
			span = math.Abs(centers[0])
			if span == 0 {
				span = 1
			}
		}
		return span, centers[0], 0
	}
	// Least squares of centers against indices 0..k-1.
	var sx, sy, sxx, sxy float64
	for j, c := range centers {
		x := float64(j)
		sx += x
		sy += c
		sxx += x * x
		sxy += x * c
	}
	nf := float64(k)
	den := nf*sxx - sx*sx
	lambda = (nf*sxy - sx*sy) / den
	mu = (sy - lambda*sx) / nf
	if lambda <= 0 {
		lambda = (centers[k-1] - centers[0]) / float64(k-1)
		mu = centers[0]
	}
	// Spacing regularity.
	var mean float64
	sp := make([]float64, k-1)
	for j := 1; j < k; j++ {
		sp[j-1] = centers[j] - centers[j-1]
		mean += sp[j-1]
	}
	mean /= float64(k - 1)
	var varsum float64
	for _, s := range sp {
		varsum += (s - mean) * (s - mean)
	}
	if mean != 0 {
		rsd = math.Sqrt(varsum/float64(k-1)) / math.Abs(mean)
	}
	return lambda, mu, rsd
}

// BruteForce computes the exact optimal clustering cost of sorted data into
// k groups in O(k·n²). It exists for cross-validation in tests.
func BruteForce(sorted []float64, k int) float64 {
	n := len(sorted)
	if k >= n {
		return 0
	}
	ps := newPrefixSums(sorted)
	prev := make([]float64, n+1)
	cur := make([]float64, n+1)
	for m := 1; m <= n; m++ {
		prev[m] = ps.cost(0, m-1)
	}
	for kk := 2; kk <= k; kk++ {
		for m := 0; m <= n; m++ {
			if m < kk {
				cur[m] = 0
				continue
			}
			best := math.Inf(1)
			for i := kk - 1; i <= m; i++ {
				c := prev[i] + ps.cost(i, m-1)
				if c < best {
					best = c
				}
			}
			cur[m] = best
		}
		prev, cur = cur, prev
	}
	return prev[n]
}
