package huffman

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/mdz/mdz/internal/bitstream"
)

// refDecode is the historical tree-walking decoder — one ReadBit per level
// of the canonical tree, no lookup tables — kept test-only as the reference
// implementation for differential fuzzing of the table-driven decoder.
func refDecode(d *Decoder, r *bitstream.Reader) (int, error) {
	if len(d.symbols) == 0 {
		return 0, ErrCorrupt
	}
	var c uint64
	for l := uint8(1); l <= d.maxLen; l++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		c = (c << 1) | uint64(b)
		if d.count[l] > 0 {
			offset := c - d.firstCode[l]
			if c >= d.firstCode[l] && offset < uint64(d.count[l]) {
				return d.symbols[d.firstIndex[l]+int(offset)], nil
			}
		}
	}
	return 0, ErrCorrupt
}

// runDecodeDifferential decodes up to n symbols from payload three ways —
// per-symbol table-driven Decode, per-symbol tree walk, and the batched
// DecodeAllBuf fast loop — and fails on any divergence in symbols, errors,
// or reader positions.
func runDecodeDifferential(t *testing.T, d *Decoder, payload []byte, n int) {
	t.Helper()
	rNew := bitstream.NewReader(payload)
	rRef := bitstream.NewReader(payload)
	syms := make([]int, 0, n)
	var refErr error
	for i := 0; i < n; i++ {
		sNew, eNew := d.Decode(rNew)
		sRef, eRef := refDecode(d, rRef)
		if !errors.Is(eNew, eRef) || !errors.Is(eRef, eNew) {
			t.Fatalf("symbol %d: err %v (table) vs %v (walk)", i, eNew, eRef)
		}
		if eNew != nil {
			refErr = eNew
			break
		}
		if sNew != sRef {
			t.Fatalf("symbol %d: %d (table) vs %d (walk)", i, sNew, sRef)
		}
		if rNew.BitsRemaining() != rRef.BitsRemaining() {
			t.Fatalf("symbol %d: BitsRemaining %d (table) vs %d (walk)", i, rNew.BitsRemaining(), rRef.BitsRemaining())
		}
		syms = append(syms, sNew)
	}
	got, err := d.DecodeAllBuf(bitstream.NewReader(payload), n, nil)
	if refErr != nil {
		if !errors.Is(err, refErr) {
			t.Fatalf("DecodeAllBuf err %v, walk err %v", err, refErr)
		}
		return
	}
	if err != nil {
		t.Fatalf("DecodeAllBuf err %v, walk decoded %d cleanly", err, n)
	}
	for i := range got {
		if got[i] != syms[i] {
			t.Fatalf("DecodeAllBuf symbol %d: %d vs %d", i, got[i], syms[i])
		}
	}
}

// buildRandomDecoder makes a valid decoder from a random alphabet. Roughly
// half the trials go through Build (realistic skewed tables); the rest
// assemble explicit length maps, including long-code tables that exercise
// the second-level subtables and the slow-path fallback.
func buildRandomDecoder(rng *rand.Rand) *Decoder {
	if rng.Intn(2) == 0 {
		freq := map[int]uint64{}
		n := 1 + rng.Intn(300)
		for i := 0; i < n; i++ {
			freq[rng.Intn(1000)-500] = uint64(1 + rng.Intn(1<<uint(rng.Intn(20))))
		}
		enc, err := Build(freq)
		if err != nil {
			panic(err)
		}
		lengths := map[int]uint8{}
		for i, s := range enc.symbols {
			lengths[s] = enc.lengths[i]
		}
		d, err := NewDecoder(lengths)
		if err != nil {
			panic(err)
		}
		return d
	}
	// Explicit Kraft-valid chain: lengths 1,2,3,... (possibly jumping deep
	// past lutBits+subMaxBits) always satisfy sum 2^-l <= 1.
	lengths := map[int]uint8{}
	l := uint8(1 + rng.Intn(3))
	for s := 0; l <= MaxCodeLen && s < 64; s++ {
		lengths[s] = l
		l += uint8(1 + rng.Intn(4))
	}
	d, err := NewDecoder(lengths)
	if err != nil {
		panic(err)
	}
	return d
}

// TestDecodeDifferentialRandom is the seeded, always-on slice of the
// decoder differential fuzz: random valid tables against both valid
// payloads (round-trips) and random garbage (corrupt/short streams).
func TestDecodeDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 300; trial++ {
		d := buildRandomDecoder(rng)
		payload := make([]byte, rng.Intn(128))
		rng.Read(payload)
		runDecodeDifferential(t, d, payload, 1+rng.Intn(200))
	}
}

// TestDecodeLongCodesTwoLevel forces codes past lutBits so decoding flows
// through the second-level subtables, and past lutBits+subMaxBits so the
// slow-path fallback runs, asserting exact round-trips either way.
func TestDecodeLongCodesTwoLevel(t *testing.T) {
	// 8192 equal-weight symbols: all codes are 13 bits (> lutBits=11),
	// resolved entirely by subtables.
	freq := map[int]uint64{}
	for s := 0; s < 8192; s++ {
		freq[s] = 1
	}
	syms := make([]int, 20000)
	rng := rand.New(rand.NewSource(5))
	for i := range syms {
		syms[i] = rng.Intn(8192)
	}
	buf, err := EncodeInts(nil, syms)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeInts(bitstream.NewByteReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	for i := range syms {
		if got[i] != syms[i] {
			t.Fatalf("symbol %d: got %d want %d", i, got[i], syms[i])
		}
	}

	// Kraft-valid chain with a 58-bit code: beyond any subtable, decoded by
	// the slow path inside the fast loop. Encode by hand from the canonical
	// assignment.
	lengths := map[int]uint8{0: 1, 1: 58}
	d, err := NewDecoder(lengths)
	if err != nil {
		t.Fatal(err)
	}
	w := &bitstream.Writer{}
	// Canonical codes: symbol 0 = "0"; symbol 1 = 1<<57 over 58 bits.
	w.WriteBits(0, 1)
	w.WriteBits(1<<57, 58)
	w.WriteBits(0, 1)
	out, err := d.DecodeAllBuf(bitstream.NewReader(w.Bytes()), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 || out[1] != 1 || out[2] != 0 {
		t.Fatalf("deep-code decode: %v", out)
	}
	if len(d.sub) > maxSubEntries {
		t.Fatalf("subtable budget exceeded: %d entries", len(d.sub))
	}
}

// TestSubtableBudgetBounded builds an adversarial undersubscribed table
// with many distinct long-code prefixes and checks the second-level tables
// respect the global budget while still decoding correctly.
func TestSubtableBudgetBounded(t *testing.T) {
	// 2048 symbols of length 12 occupy half the 12-bit space (Kraft 0.5),
	// then symbols at length 23 (= lutBits+subMaxBits) pile width-12
	// subtables onto many distinct prefixes.
	lengths := map[int]uint8{}
	s := 0
	for i := 0; i < 1024; i++ {
		lengths[s] = 12
		s++
	}
	for i := 0; i < 512; i++ {
		lengths[s] = 23
		s++
	}
	d, err := NewDecoder(lengths)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.sub) > maxSubEntries {
		t.Fatalf("subtable budget exceeded: %d entries", len(d.sub))
	}
	// Round-trip through the encoder side of the same table.
	enc, err := fromLengths(lengths)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	syms := make([]int, 5000)
	for i := range syms {
		syms[i] = rng.Intn(s)
	}
	w := &bitstream.Writer{}
	if err := enc.EncodeAll(w, syms); err != nil {
		t.Fatal(err)
	}
	got, err := d.DecodeAllBuf(bitstream.NewReader(w.Bytes()), len(syms), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range syms {
		if got[i] != syms[i] {
			t.Fatalf("symbol %d: got %d want %d", i, got[i], syms[i])
		}
	}
}

// FuzzDecodeDifferential fuzzes the table-driven decoder against the
// historical tree-walking decoder: identical symbols and identical error
// behavior over arbitrary tables and payloads.
func FuzzDecodeDifferential(f *testing.F) {
	f.Add([]byte{2, 2, 2, 2}, []byte{0x1B, 0xAD}, uint16(8))
	f.Add([]byte{1, 58}, []byte{0x80, 0, 0, 0, 0, 0, 0, 0}, uint16(4))
	f.Add([]byte{3, 3, 3, 3, 3, 3, 3, 3}, []byte{0xFF, 0x00, 0x55}, uint16(8))
	f.Fuzz(func(t *testing.T, tbl, payload []byte, n uint16) {
		if len(tbl) == 0 || len(tbl) > 512 {
			t.Skip()
		}
		lengths := map[int]uint8{}
		for i, b := range tbl {
			lengths[i] = b%MaxCodeLen + 1
		}
		d, err := NewDecoder(lengths)
		if err != nil {
			t.Skip() // oversubscribed random table
		}
		runDecodeDifferential(t, d, payload, int(n%1024))
	})
}
