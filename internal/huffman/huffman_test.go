package huffman

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/mdz/mdz/internal/bitstream"
)

func roundTrip(t *testing.T, syms []int) {
	t.Helper()
	buf, err := EncodeInts(nil, syms)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeInts(bitstream.NewByteReader(buf))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(syms) == 0 && len(got) == 0 {
		return
	}
	if !reflect.DeepEqual(got, syms) {
		t.Fatalf("round trip mismatch: got %v want %v", got, syms)
	}
}

func TestRoundTripBasic(t *testing.T) {
	roundTrip(t, []int{1, 2, 3, 1, 1, 1, 2, 0, -5, 1024, -1024, 1, 1})
}

func TestRoundTripSingleSymbol(t *testing.T) {
	roundTrip(t, []int{7, 7, 7, 7, 7})
}

func TestRoundTripEmpty(t *testing.T) {
	roundTrip(t, []int{})
}

func TestRoundTripNegativeSymbols(t *testing.T) {
	roundTrip(t, []int{-1, -2, -3, -1000000, 1000000, 0})
}

func TestRoundTripSkewed(t *testing.T) {
	// Heavily skewed distribution typical of quantization bins.
	rng := rand.New(rand.NewSource(42))
	syms := make([]int, 20000)
	for i := range syms {
		r := rng.Float64()
		switch {
		case r < 0.85:
			syms[i] = 512 // the "zero residual" bin
		case r < 0.95:
			syms[i] = 511 + rng.Intn(3)
		default:
			syms[i] = rng.Intn(1024)
		}
	}
	buf, err := EncodeInts(nil, syms)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeInts(bitstream.NewByteReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, syms) {
		t.Fatal("round trip mismatch on skewed data")
	}
	// Entropy coding must beat the 2-byte naive encoding on skewed data.
	if len(buf) > len(syms) {
		t.Errorf("compressed size %d exceeds %d symbols at 1B/sym on skewed data", len(buf), len(syms))
	}
}

func TestSkewedCodesShorter(t *testing.T) {
	freq := map[int]uint64{0: 1000, 1: 100, 2: 10, 3: 1}
	e, err := Build(freq)
	if err != nil {
		t.Fatal(err)
	}
	if e.CodeLen(0) > e.CodeLen(3) {
		t.Errorf("frequent symbol has longer code: len(0)=%d len(3)=%d", e.CodeLen(0), e.CodeLen(3))
	}
	if e.CodeLen(0) != 1 {
		t.Errorf("dominant symbol should get a 1-bit code, got %d", e.CodeLen(0))
	}
}

func TestKraftInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		freq := map[int]uint64{}
		n := 2 + rng.Intn(300)
		for i := 0; i < n; i++ {
			freq[rng.Intn(2000)-1000] = uint64(1 + rng.Intn(10000))
		}
		e, err := Build(freq)
		if err != nil {
			t.Fatal(err)
		}
		var kraft float64
		for _, l := range e.lengths {
			kraft += 1.0 / float64(uint64(1)<<l)
		}
		if kraft > 1.0000001 {
			t.Fatalf("trial %d: Kraft sum %v > 1", trial, kraft)
		}
	}
}

func TestDeterministicBuild(t *testing.T) {
	freq := map[int]uint64{5: 3, -2: 3, 9: 3, 0: 7}
	a, _ := Build(freq)
	b, _ := Build(freq)
	if !reflect.DeepEqual(a.AppendTable(nil), b.AppendTable(nil)) {
		t.Error("Build is not deterministic")
	}
}

func TestEncodeUnknownSymbol(t *testing.T) {
	e, _ := Build(map[int]uint64{1: 1, 2: 1})
	w := &bitstream.Writer{}
	if err := e.Encode(w, 99); err == nil {
		t.Error("expected error encoding unknown symbol")
	}
}

func TestCorruptTable(t *testing.T) {
	// Length byte of 0 is invalid.
	var buf []byte
	buf = bitstream.AppendUvarint(buf, 1)
	buf = bitstream.AppendVarint(buf, 5)
	buf = append(buf, 0)
	if _, err := ReadTable(bitstream.NewByteReader(buf)); err == nil {
		t.Error("expected error on zero code length")
	}
}

func TestCorruptOversubscribed(t *testing.T) {
	// Three symbols of length 1 oversubscribe the code space.
	_, err := NewDecoder(map[int]uint8{1: 1, 2: 1, 3: 1})
	if err == nil {
		t.Error("expected error on oversubscribed lengths")
	}
}

func TestTruncatedPayload(t *testing.T) {
	syms := make([]int, 100)
	for i := range syms {
		syms[i] = i % 7
	}
	buf, err := EncodeInts(nil, syms)
	if err != nil {
		t.Fatal(err)
	}
	// Chop off the tail; decode must error, not hang or panic.
	_, err = DecodeInts(bitstream.NewByteReader(buf[:len(buf)-5]))
	if err == nil {
		t.Error("expected error on truncated payload")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(raw []int16) bool {
		syms := make([]int, len(raw))
		for i, v := range raw {
			syms[i] = int(v)
		}
		buf, err := EncodeInts(nil, syms)
		if err != nil {
			return false
		}
		got, err := DecodeInts(bitstream.NewByteReader(buf))
		if err != nil {
			return false
		}
		if len(syms) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(got, syms)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeSkewed(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	syms := make([]int, 1<<16)
	for i := range syms {
		if rng.Float64() < 0.9 {
			syms[i] = 512
		} else {
			syms[i] = rng.Intn(1024)
		}
	}
	b.SetBytes(int64(len(syms) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeInts(nil, syms); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeSkewed(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	syms := make([]int, 1<<16)
	for i := range syms {
		if rng.Float64() < 0.9 {
			syms[i] = 512
		} else {
			syms[i] = rng.Intn(1024)
		}
	}
	buf, err := EncodeInts(nil, syms)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(syms) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeInts(bitstream.NewByteReader(buf)); err != nil {
			b.Fatal(err)
		}
	}
}
