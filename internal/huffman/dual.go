package huffman

import (
	"fmt"

	"github.com/mdz/mdz/internal/bitstream"
)

// This file implements the format v3 entropy sections: interleaved
// dual-stream coding with multi-symbol decode.
//
// A v3 section splits the symbol sequence into two halves ("lanes") that are
// bit-packed independently and laid out as
//
//	section(table) || uvarint n || section(lane0) || section(lane1)
//
// with lane0 = syms[:(n+1)/2] and lane1 = syms[(n+1)/2:]. The table is the
// identical serialization v2 uses (AppendTable's layout), so the code itself
// carries no version. Two independent bit buffers let the encoder pack and
// the decoder refill the lanes alternately: each lane's shift/flush chain no
// longer serializes against the other's, which hides most of the
// accumulator-dependency latency the single-stream (v2) hot loops pin.
//
// On top of the dual lanes, decode uses a pair LUT: each lutBits-wide root
// probe resolves up to two complete codes in one table load (pairEnt), so
// dense alphabets — where most codes are a handful of bits — average well
// under one table access per symbol.

// pairEnt is one slot of the multi-symbol decode table. n is the number of
// symbols the probe resolves: 2 when a complete second code fits in the
// lutBits window after the first (consume lt bits), 1 when only the first
// code resolves (consume l1 bits), 0 when the prefix needs the checked
// fallback path (subtable codes, uncovered long codes, or symbols outside
// int32). w flags symbols outside 0..255 for the byte-section decoder: bit 0
// for sym1, bit 1 for sym2.
type pairEnt struct {
	sym1, sym2 int32
	l1, lt     uint8
	n, w       uint8
}

// buildPair derives the multi-symbol root table from the already-built
// two-level LUT. For a root slot p whose first code has length l1, the
// window advanced by l1 bits is p<<l1 (mod 2^lutBits) with the vacated low
// bits zero-filled; the entry found there describes a real second code only
// if it is a leaf whose length fits in the remaining lutBits-l1 genuine bits
// — entries reachable purely through the zero fill are excluded by that
// length test, because a leaf of length l2 <= lutBits-l1 is determined by
// the window's top l2 bits alone, all of which are real.
func (d *Decoder) buildPair() {
	if cap(d.pair) >= 1<<lutBits {
		d.pair = d.pair[:1<<lutBits]
	} else {
		d.pair = make([]pairEnt, 1<<lutBits)
	}
	pair := d.pair
	for p := range pair {
		e := d.lut[p]
		if e.len == 0 {
			pair[p] = pairEnt{}
			continue
		}
		sym := d.symbols[e.index]
		if int(int32(sym)) != sym {
			pair[p] = pairEnt{}
			continue
		}
		ent := pairEnt{sym1: int32(sym), l1: e.len, lt: e.len, n: 1}
		if uint(sym) > 255 {
			ent.w = 1
		}
		if rem := lutBits - uint(e.len); rem > 0 {
			e2 := d.lut[(p<<e.len)&(1<<lutBits-1)]
			if e2.len != 0 && uint(e2.len) <= rem {
				if sym2 := d.symbols[e2.index]; int(int32(sym2)) == sym2 {
					ent.sym2 = int32(sym2)
					ent.lt = e.len + e2.len
					ent.n = 2
					if uint(sym2) > 255 {
						ent.w |= 2
					}
				}
			}
		}
		pair[p] = ent
	}
}

// encodeDual packs lane a into w0 and lane b into w1, interleaving the two
// local accumulators so the per-symbol shift chains of the lanes overlap.
// Each lane's bytes are identical to an independent EncodeAll of that lane.
func (e *Encoder) encodeDual(w0, w1 *bitstream.Writer, a, b []int) error {
	if e.dense == nil {
		// Sparse alphabet: the map path is cold; encode the lanes serially.
		if err := e.EncodeAll(w0, a); err != nil {
			return err
		}
		return e.EncodeAll(w1, b)
	}
	lo, dense := e.denseMin, e.dense
	m := len(a)
	if len(b) < m {
		m = len(b)
	}
	var acc0, acc1 uint64
	var na0, na1 uint
	for i := 0; i < m; i++ {
		ia, ib := a[i]-lo, b[i]-lo
		if uint(ia) >= uint(len(dense)) || dense[ia].n == 0 {
			return fmt.Errorf("huffman: symbol %d not in alphabet", a[i])
		}
		if uint(ib) >= uint(len(dense)) || dense[ib].n == 0 {
			return fmt.Errorf("huffman: symbol %d not in alphabet", b[i])
		}
		c0, c1 := dense[ia], dense[ib]
		if na0+uint(c0.n) > 64 {
			w0.WriteBits(acc0, na0)
			acc0, na0 = 0, 0
		}
		acc0 = acc0<<c0.n | c0.bits
		na0 += uint(c0.n)
		if na1+uint(c1.n) > 64 {
			w1.WriteBits(acc1, na1)
			acc1, na1 = 0, 0
		}
		acc1 = acc1<<c1.n | c1.bits
		na1 += uint(c1.n)
	}
	// Lane-length tails (the halves differ by at most one symbol).
	for _, s := range a[m:] {
		idx := s - lo
		if uint(idx) >= uint(len(dense)) || dense[idx].n == 0 {
			return fmt.Errorf("huffman: symbol %d not in alphabet", s)
		}
		c := dense[idx]
		if na0+uint(c.n) > 64 {
			w0.WriteBits(acc0, na0)
			acc0, na0 = 0, 0
		}
		acc0 = acc0<<c.n | c.bits
		na0 += uint(c.n)
	}
	for _, s := range b[m:] {
		idx := s - lo
		if uint(idx) >= uint(len(dense)) || dense[idx].n == 0 {
			return fmt.Errorf("huffman: symbol %d not in alphabet", s)
		}
		c := dense[idx]
		if na1+uint(c.n) > 64 {
			w1.WriteBits(acc1, na1)
			acc1, na1 = 0, 0
		}
		acc1 = acc1<<c.n | c.bits
		na1 += uint(c.n)
	}
	if na0 > 0 {
		w0.WriteBits(acc0, na0)
	}
	if na1 > 0 {
		w1.WriteBits(acc1, na1)
	}
	return nil
}

// EncodeInts2 is the dual-stream (format v3) counterpart of EncodeInts: same
// code table, payload split into two independently packed lanes.
func (s *Scratch) EncodeInts2(dst []byte, syms []int) ([]byte, error) {
	enc, err := s.buildFor(syms)
	if err != nil {
		return nil, err
	}
	h := (len(syms) + 1) / 2
	var table []byte
	var w0, w1 *bitstream.Writer
	if s == nil {
		table = enc.AppendTable(nil)
		w0 = bitstream.NewWriter(len(syms) / 4)
		w1 = bitstream.NewWriter(len(syms) / 4)
	} else {
		s.table = enc.AppendTable(s.table[:0])
		table = s.table
		s.w.Reset()
		s.w2.Reset()
		w0, w1 = &s.w, &s.w2
	}
	if err := enc.encodeDual(w0, w1, syms[:h], syms[h:]); err != nil {
		return nil, err
	}
	if s != nil {
		s.stats = EncodeStats{
			Symbols:      enc.NumSymbols(),
			TableBytes:   len(table),
			PayloadBytes: len(w0.Bytes()) + len(w1.Bytes()),
		}
	}
	dst = bitstream.AppendSection(dst, table)
	dst = bitstream.AppendUvarint(dst, uint64(len(syms)))
	dst = bitstream.AppendSection(dst, w0.Bytes())
	dst = bitstream.AppendSection(dst, w1.Bytes())
	return dst, nil
}

// EncodeInts2 is the convenience form with fresh state.
func EncodeInts2(dst []byte, syms []int) ([]byte, error) {
	return (*Scratch)(nil).EncodeInts2(dst, syms)
}

// decodeDual fills out from the two lane readers: out[:h] from r0, out[h:]
// from r1, alternating one pair-LUT step per lane inside a register-resident
// burst. Either lane falling off its fast path (refill short, subtable or
// long code, non-int32 symbol) drops that step to the checked Decode; each
// lane's tail drains through the single-lane fast loop.
func (d *Decoder) decodeDual(r0, r1 *bitstream.Reader, out []int, h int) error {
	need := uint(lutBits)
	if m := uint(d.maxLen); m > need {
		need = m
	}
	pair := d.pair
	i0, i1 := 0, h
	lim0, lim1 := h, len(out)
outer:
	for i0 < lim0 && i1 < lim1 && r0.Ensure(need) && r1.Ensure(need) {
		c0, b0 := r0.BitState()
		c1, b1 := r1.BitState()
		for b0 >= need && b1 >= need && i0 < lim0 && i1 < lim1 {
			e0 := pair[c0>>(64-lutBits)]
			e1 := pair[c1>>(64-lutBits)]
			if e0.n == 0 || e1.n == 0 {
				r0.SetBitState(c0, b0)
				r1.SetBitState(c1, b1)
				if e0.n == 0 {
					s, err := d.Decode(r0)
					if err != nil {
						return err
					}
					out[i0] = s
					i0++
				} else {
					s, err := d.Decode(r1)
					if err != nil {
						return err
					}
					out[i1] = s
					i1++
				}
				continue outer
			}
			if e0.n == 2 && lim0-i0 >= 2 {
				out[i0] = int(e0.sym1)
				out[i0+1] = int(e0.sym2)
				i0 += 2
				c0 <<= e0.lt
				b0 -= uint(e0.lt)
			} else {
				out[i0] = int(e0.sym1)
				i0++
				c0 <<= e0.l1
				b0 -= uint(e0.l1)
			}
			if e1.n == 2 && lim1-i1 >= 2 {
				out[i1] = int(e1.sym1)
				out[i1+1] = int(e1.sym2)
				i1 += 2
				c1 <<= e1.lt
				b1 -= uint(e1.lt)
			} else {
				out[i1] = int(e1.sym1)
				i1++
				c1 <<= e1.l1
				b1 -= uint(e1.l1)
			}
		}
		r0.SetBitState(c0, b0)
		r1.SetBitState(c1, b1)
	}
	if err := d.decodeInto(r0, out[i0:lim0]); err != nil {
		return err
	}
	return d.decodeInto(r1, out[i1:lim1])
}

// DecodeInts2Buf inverts EncodeInts2, consuming from br into buf (reused
// when it has capacity).
func DecodeInts2Buf(br *bitstream.ByteReader, buf []int) ([]int, error) {
	return DecodeInts2Tx(br, buf, nil)
}

// DecodeInts2 is the convenience form of DecodeInts2Buf.
func DecodeInts2(br *bitstream.ByteReader) ([]int, error) {
	return DecodeInts2Buf(br, nil)
}

// EncodeBytes2 is the dual-stream (format v3) counterpart of EncodeBytes:
// same code table, payload split into two independently packed lanes.
func EncodeBytes2(dst []byte, data []byte) ([]byte, error) {
	s := byteEncPool.Get().(*byteEncScratch)
	defer byteEncPool.Put(s)

	nsym := s.histogram(data)
	if err := s.buildCodes(nsym); err != nil {
		return nil, err
	}
	s.appendCodeTable(nsym)

	h := (len(data) + 1) / 2
	a, b := data[:h], data[h:]
	s.w.Reset()
	s.w2.Reset()
	var acc0, acc1 uint64
	var na0, na1 uint
	for i := 0; i < len(b); i++ {
		c0, c1 := s.codes[a[i]], s.codes[b[i]]
		if na0+uint(c0.n) > 64 {
			s.w.WriteBits(acc0, na0)
			acc0, na0 = 0, 0
		}
		acc0 = acc0<<c0.n | c0.bits
		na0 += uint(c0.n)
		if na1+uint(c1.n) > 64 {
			s.w2.WriteBits(acc1, na1)
			acc1, na1 = 0, 0
		}
		acc1 = acc1<<c1.n | c1.bits
		na1 += uint(c1.n)
	}
	if len(a) > len(b) {
		c := s.codes[a[len(a)-1]]
		if na0+uint(c.n) > 64 {
			s.w.WriteBits(acc0, na0)
			acc0, na0 = 0, 0
		}
		acc0 = acc0<<c.n | c.bits
		na0 += uint(c.n)
	}
	if na0 > 0 {
		s.w.WriteBits(acc0, na0)
	}
	if na1 > 0 {
		s.w2.WriteBits(acc1, na1)
	}

	dst = bitstream.AppendSection(dst, s.table)
	dst = bitstream.AppendUvarint(dst, uint64(len(data)))
	dst = bitstream.AppendSection(dst, s.w.Bytes())
	dst = bitstream.AppendSection(dst, s.w2.Bytes())
	return dst, nil
}

// decodeDualBytes is decodeDual with a byte destination and the byte-range
// poisoning semantics of DecodeAllBytesBuf: stream errors surface
// immediately, ErrByteRange only after all symbols decode.
func (d *Decoder) decodeDualBytes(r0, r1 *bitstream.Reader, out []byte, h int) error {
	need := uint(lutBits)
	if m := uint(d.maxLen); m > need {
		need = m
	}
	pair := d.pair
	var wideAcc uint8
	i0, i1 := 0, h
	lim0, lim1 := h, len(out)
outer:
	for i0 < lim0 && i1 < lim1 && r0.Ensure(need) && r1.Ensure(need) {
		c0, b0 := r0.BitState()
		c1, b1 := r1.BitState()
		for b0 >= need && b1 >= need && i0 < lim0 && i1 < lim1 {
			e0 := pair[c0>>(64-lutBits)]
			e1 := pair[c1>>(64-lutBits)]
			if e0.n == 0 || e1.n == 0 {
				r0.SetBitState(c0, b0)
				r1.SetBitState(c1, b1)
				if e0.n == 0 {
					s, err := d.Decode(r0)
					if err != nil {
						return err
					}
					if uint(s) > 255 {
						wideAcc = 1
					}
					out[i0] = byte(s)
					i0++
				} else {
					s, err := d.Decode(r1)
					if err != nil {
						return err
					}
					if uint(s) > 255 {
						wideAcc = 1
					}
					out[i1] = byte(s)
					i1++
				}
				continue outer
			}
			if e0.n == 2 && lim0-i0 >= 2 {
				out[i0] = byte(e0.sym1)
				out[i0+1] = byte(e0.sym2)
				i0 += 2
				wideAcc |= e0.w
				c0 <<= e0.lt
				b0 -= uint(e0.lt)
			} else {
				out[i0] = byte(e0.sym1)
				i0++
				wideAcc |= e0.w & 1
				c0 <<= e0.l1
				b0 -= uint(e0.l1)
			}
			if e1.n == 2 && lim1-i1 >= 2 {
				out[i1] = byte(e1.sym1)
				out[i1+1] = byte(e1.sym2)
				i1 += 2
				wideAcc |= e1.w
				c1 <<= e1.lt
				b1 -= uint(e1.lt)
			} else {
				out[i1] = byte(e1.sym1)
				i1++
				wideAcc |= e1.w & 1
				c1 <<= e1.l1
				b1 -= uint(e1.l1)
			}
		}
		r0.SetBitState(c0, b0)
		r1.SetBitState(c1, b1)
	}
	for ; i0 < lim0; i0++ {
		s, err := d.Decode(r0)
		if err != nil {
			return err
		}
		if uint(s) > 255 {
			wideAcc = 1
		}
		out[i0] = byte(s)
	}
	for ; i1 < lim1; i1++ {
		s, err := d.Decode(r1)
		if err != nil {
			return err
		}
		if uint(s) > 255 {
			wideAcc = 1
		}
		out[i1] = byte(s)
	}
	if wideAcc != 0 {
		return ErrByteRange
	}
	return nil
}

// DecodeBytes2 inverts EncodeBytes2, consuming one dual-lane section from br
// into buf (reused when it has capacity).
func (s *DecodeScratch) DecodeBytes2(br *bitstream.ByteReader, buf []byte) ([]byte, error) {
	return s.DecodeBytes2Tx(br, buf, nil)
}
