package huffman

import (
	"errors"
	"slices"
	"sync"

	"github.com/mdz/mdz/internal/bitstream"
)

// This file holds the byte-oriented fast paths over the canonical codec:
// EncodeBytes/DecodeBytes produce and consume exactly the same wire bytes as
// EncodeInts/DecodeInts over the widened []int data, but operate on []byte
// end to end with pooled scratch state, so the dictionary-coder hot path
// (internal/lossless.LZ) never round-trips its sections through an 8×-larger
// integer slice.
//
// Byte-for-byte identity with the generic path is load-bearing (the LZ wire
// format is pinned by golden hashes) and rests on three facts, each checked
// by tests in bytes_test.go and the equivalence fuzzer:
//
//   - tree build: the byte builder's two-queue merge pops nodes in the same
//     strict (weight, order) total order as the generic path's heap, with
//     the same leaf numbering (symbols ascending), so it derives identical
//     code lengths;
//   - canonical assignment: iterating lengths ascending and symbols
//     ascending within a length visits (l, sym) pairs in exactly the order
//     fromLengths sorts them into;
//   - serialization: the table walk emits symbols ascending, matching
//     AppendTable's sort, and payload bits come from the same codes.

// ErrByteRange is returned by the byte-oriented decode paths when a decoded
// symbol falls outside 0..255. It is reported only after the symbol stream
// decodes cleanly, mirroring the historical decode-all-then-narrow
// sequencing (DecodeInts followed by a range-checking []int→[]byte copy).
var ErrByteRange = errors.New("huffman: decoded symbol out of byte range")

// byteEncScratch is the reusable state of one EncodeBytes call. freq4 holds
// four partial histograms summed into freq: striping the counts breaks the
// store-to-load dependency a single table suffers on runs of equal bytes.
type byteEncScratch struct {
	freq   [256]uint64
	freq4  [4][256]uint32
	lens   [256]uint8
	codes  [256]code
	leaves [256]leafNode
	keys   [256]uint64       // packed weight<<8|sym sort keys
	tw     [2*256 - 1]uint64 // tree node weights: sorted leaves, then merges
	par    [2*256 - 1]int32  // tree parent indices (root's is unset)
	table  []byte
	w      bitstream.Writer
	w2     bitstream.Writer // second lane of the dual-stream (v3) payload
}

// leafNode is one pre-merge Huffman leaf in the byte builder.
type leafNode struct {
	w   uint64
	sym int32
}

var byteEncPool = sync.Pool{
	New: func() any { return new(byteEncScratch) },
}

// EncodeBytes encodes data as one Huffman section — table || count ||
// payload appended to dst — producing bytes identical to EncodeInts over the
// same values widened to []int. All working state is pooled; steady state
// allocates only when dst needs to grow.
func EncodeBytes(dst []byte, data []byte) ([]byte, error) {
	s := byteEncPool.Get().(*byteEncScratch)
	defer byteEncPool.Put(s)

	nsym := s.histogram(data)
	if err := s.buildCodes(nsym); err != nil {
		return nil, err
	}
	s.appendCodeTable(nsym)

	// Payload: pack codes through a local 64-bit accumulator so the Writer
	// is called once per ~64 bits instead of once per symbol. MSB-first
	// concatenation makes the flushed words bit-identical to per-code writes.
	s.w.Reset()
	var acc uint64
	var na uint
	for _, b := range data {
		c := s.codes[b]
		if na+uint(c.n) > 64 {
			s.w.WriteBits(acc, na)
			acc, na = 0, 0
		}
		acc = acc<<c.n | c.bits
		na += uint(c.n)
	}
	if na > 0 {
		s.w.WriteBits(acc, na)
	}

	dst = bitstream.AppendSection(dst, s.table)
	dst = bitstream.AppendUvarint(dst, uint64(len(data)))
	dst = bitstream.AppendSection(dst, s.w.Bytes())
	return dst, nil
}

// histogram fills s.freq with data's byte frequencies and returns the number
// of distinct symbols. freq4 holds four partial histograms summed into freq:
// striping the counts breaks the store-to-load dependency a single table
// suffers on runs of equal bytes.
func (s *byteEncScratch) histogram(data []byte) int {
	clear(s.freq[:])
	if len(data) < 512 {
		// Striping doesn't amortize its table clears on short sections.
		for _, b := range data {
			s.freq[b]++
		}
	} else {
		for i := range s.freq4 {
			clear(s.freq4[i][:])
		}
		f0, f1, f2, f3 := &s.freq4[0], &s.freq4[1], &s.freq4[2], &s.freq4[3]
		i := 0
		for ; i+4 <= len(data); i += 4 {
			f0[data[i]]++
			f1[data[i+1]]++
			f2[data[i+2]]++
			f3[data[i+3]]++
			// Drain to the 64-bit totals well before uint32 overflow
			// (every 2^28 bytes, 2^26 increments per stripe).
			if i&(1<<28-4) == 1<<28-4 {
				for sym := range s.freq {
					s.freq[sym] += uint64(f0[sym]) + uint64(f1[sym]) + uint64(f2[sym]) + uint64(f3[sym])
				}
				clear(f0[:])
				clear(f1[:])
				clear(f2[:])
				clear(f3[:])
			}
		}
		for ; i < len(data); i++ {
			s.freq[data[i]]++
		}
		for sym := range s.freq {
			s.freq[sym] += uint64(f0[sym]) + uint64(f1[sym]) + uint64(f2[sym]) + uint64(f3[sym])
		}
	}
	nsym := 0
	for _, f := range s.freq {
		if f != 0 {
			nsym++
		}
	}
	return nsym
}

// appendCodeTable serializes the built code into s.table: uvarint symbol
// count, then (zigzag symbol delta, length byte) pairs in ascending symbol
// order — AppendTable's exact layout.
func (s *byteEncScratch) appendCodeTable(nsym int) {
	table := bitstream.AppendUvarint(s.table[:0], uint64(nsym))
	prev := int64(0)
	for sym := 0; sym < 256; sym++ {
		if s.lens[sym] == 0 {
			continue
		}
		table = bitstream.AppendVarint(table, int64(sym)-prev)
		prev = int64(sym)
		table = append(table, s.lens[sym])
	}
	s.table = table
}

// buildCodes derives canonical code lengths and codes for the nsym symbols
// with nonzero frequency in s.freq, into s.lens and s.codes.
func (s *byteEncScratch) buildCodes(nsym int) error {
	clear(s.lens[:])
	switch nsym {
	case 0:
		return nil
	case 1:
		// Degenerate alphabet: one-bit code, matching buildSorted.
		for sym, f := range s.freq {
			if f != 0 {
				s.lens[sym] = 1
				s.codes[sym] = code{bits: 0, n: 1}
				return nil
			}
		}
	}
	// Two-queue Huffman merge, pop-for-pop identical to buildSorted's heap:
	// that heap removes the global minimum of the live node multiset under
	// the strict (weight, order) total order, and here the live multiset is
	// always the union of two queues each already sorted by that order —
	// the leaves sorted below (leaves enumerate symbols ascending, so the
	// symbol tie-break equals the order tie-break), and the merged nodes in
	// creation order (merge weights are non-decreasing, creation orders
	// increasing). Taking the smaller head, leaf on ties (every leaf order
	// precedes every merge order), therefore pops the same node sequence
	// and yields the same depths, without any sift work.
	lq := s.leaves[:0]
	big := false
	for sym, f := range s.freq {
		if f != 0 {
			if f >= 1<<56 {
				big = true
			}
			lq = append(lq, leafNode{w: f, sym: int32(sym)})
		}
	}
	if big {
		// Weights this large (>= 2^56 occurrences) cannot share a packed
		// key with the symbol byte; sort the structs directly.
		slices.SortFunc(lq, func(a, b leafNode) int {
			if a.w != b.w {
				if a.w < b.w {
					return -1
				}
				return 1
			}
			return int(a.sym) - int(b.sym)
		})
	} else {
		// weight<<8|sym orders exactly like (weight, sym) and sorts as bare
		// uint64s, avoiding the comparison closure.
		keys := s.keys[:len(lq)]
		for i, lf := range lq {
			keys[i] = lf.w<<8 | uint64(lf.sym)
		}
		slices.Sort(keys)
		for i, k := range keys {
			lq[i] = leafNode{w: k >> 8, sym: int32(k & 0xff)}
		}
	}
	n := nsym
	tw, par := &s.tw, &s.par
	for i, lf := range lq {
		tw[i] = lf.w
	}
	li, ii := 0, n
	for next := n; next < 2*n-1; next++ {
		var a, b int
		if li < n && (ii >= next || tw[li] <= tw[ii]) {
			a, li = li, li+1
		} else {
			a, ii = ii, ii+1
		}
		if li < n && (ii >= next || tw[li] <= tw[ii]) {
			b, li = li, li+1
		} else {
			b, ii = ii, ii+1
		}
		tw[next] = tw[a] + tw[b]
		par[a], par[b] = int32(next), int32(next)
	}
	// Leaf depth via parent walk replaces assignDepths' recursion; the same
	// clamps apply (unreachable for byte alphabets, kept for fidelity).
	root := int32(2*n - 2)
	for i := 0; i < n; i++ {
		depth := 0
		for j := int32(i); j != root; j = par[j] {
			depth++
		}
		l := depth
		if l > MaxCodeLen {
			l = MaxCodeLen
		} else if l == 0 {
			l = 1
		}
		s.lens[lq[i].sym] = uint8(l)
	}
	// Canonical assignment: lengths ascending, symbols ascending within a
	// length — the exact (l, sym) order fromLengths sorts into — done
	// counting-style (first code per length, one ascending-symbol pass)
	// instead of one 256-symbol sweep per distinct length.
	var cnt [MaxCodeLen + 1]uint32
	for _, l := range s.lens {
		cnt[l]++ // cnt[0] counts absent symbols and is never read
	}
	var next [MaxCodeLen + 1]uint64
	for l := 2; l <= MaxCodeLen; l++ {
		next[l] = (next[l-1] + uint64(cnt[l-1])) << 1
	}
	for l := 1; l <= MaxCodeLen; l++ {
		if cnt[l] != 0 && next[l]+uint64(cnt[l]) > 1<<uint(l) {
			return ErrCorrupt // over-subscribed code space
		}
	}
	for sym, l := range s.lens {
		if l == 0 {
			continue
		}
		s.codes[sym] = code{bits: next[l], n: l}
		next[l]++
	}
	return nil
}

// DecodeScratch holds the reusable state of byte-section decoding: a pooled
// Decoder whose tables rebuild in place, plus parse and reader scratch. A
// DecodeScratch must not be used concurrently, and a Decoder obtained
// through it is only valid until the scratch's next use. The zero value is
// ready to use.
type DecodeScratch struct {
	dec     Decoder
	lengths map[int]uint8
	list    []symLen
	sorted  []symLen
	ext     []uint8
	r       bitstream.Reader
	r2      bitstream.Reader // second lane of the dual-stream (v3) payload
	br      bitstream.ByteReader
}

// ReadTable parses a serialized code table (AppendTable's layout) and
// returns a Decoder backed by the scratch's reusable tables.
//
// Tables our encoders write list symbols strictly ascending, so the common
// path skips the symbol→length map entirely: parsed pairs go through a
// stable counting sort by code length, which lands them in exactly the
// (length, symbol) order the map path sorts into. Non-ascending tables
// (only reachable from corrupt or adversarial streams) fall back to the
// map to keep its last-entry-wins semantics.
func (s *DecodeScratch) ReadTable(br *bitstream.ByteReader) (*Decoder, error) {
	n, err := br.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if n > 1<<24 {
		return nil, ErrCorrupt
	}
	list := s.list[:0]
	prev := int64(0)
	ascending := true
	for i := uint64(0); i < n; i++ {
		d, err := br.ReadVarint()
		if err != nil {
			return nil, err
		}
		if d <= 0 && i > 0 {
			ascending = false
		}
		prev += d
		l, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if l == 0 || l > MaxCodeLen {
			return nil, ErrCorrupt
		}
		list = append(list, symLen{int(prev), l})
	}
	s.list = list
	if !ascending {
		if s.lengths == nil {
			s.lengths = make(map[int]uint8, 64)
		} else {
			clear(s.lengths)
		}
		for _, it := range list {
			s.lengths[it.sym] = it.l
		}
		if err := s.dec.init(s.lengths, s); err != nil {
			return nil, err
		}
		return &s.dec, nil
	}
	// Stable counting sort by length; symbols stay ascending within each
	// length, so the result is the canonical (length, symbol) order.
	var pos [MaxCodeLen + 1]int32
	for _, it := range list {
		pos[it.l]++
	}
	off := int32(0)
	for l := 1; l <= MaxCodeLen; l++ {
		c := pos[l]
		pos[l] = off
		off += c
	}
	sorted := s.sorted
	if cap(sorted) < len(list) {
		sorted = make([]symLen, len(list))
		s.sorted = sorted
	} else {
		sorted = sorted[:len(list)]
	}
	for _, it := range list {
		sorted[pos[it.l]] = it
		pos[it.l]++
	}
	if err := s.dec.initSorted(sorted, s); err != nil {
		return nil, err
	}
	return &s.dec, nil
}

// DecodeBytes inverts EncodeBytes, consuming one section from br into buf
// (reused when it has capacity). It accepts exactly the streams for which
// DecodeInts succeeds with all symbols in 0..255, and fails with the same
// error sequencing: stream/table errors surface first, and ErrByteRange is
// returned only when the symbol stream itself decoded cleanly.
func (s *DecodeScratch) DecodeBytes(br *bitstream.ByteReader, buf []byte) ([]byte, error) {
	return s.DecodeBytesTx(br, buf, nil)
}

// DecodeAllBytesBuf reads exactly n symbols as bytes, reusing buf when it
// has capacity. It is DecodeAllBuf with a byte destination: symbols outside
// 0..255 poison the result, and the poisoning ErrByteRange is reported only
// after all n symbols decode — so stream errors (ErrShortStream/ErrCorrupt)
// take precedence exactly as in the historical decode-then-narrow path.
func (d *Decoder) DecodeAllBytesBuf(r *bitstream.Reader, n int, buf []byte) ([]byte, error) {
	var out []byte
	if cap(buf) >= n {
		out = buf[:n]
	} else {
		out = make([]byte, n)
	}
	if n == 0 {
		return out, nil
	}
	if len(d.symbols) == 0 {
		return nil, ErrCorrupt
	}
	need := uint(lutBits)
	if m := uint(d.maxLen); m > need {
		need = m
	}
	lut, sub := d.lut, d.sub
	var wideAcc uint8 // ORs lutEntry.wide: nonzero once any symbol left 0..255
	i := 0
outer:
	for i < n {
		if r.Buffered() < need && r.Fill() < need {
			break // near end of input: finish with the checked path
		}
		// Batch: hold the bit buffer in locals across every symbol the
		// current refill covers, so the per-symbol cost is shifts, one table
		// load, and a store — no Reader pointer traffic until write-back.
		cur, nbit := r.BitState()
		for nbit >= need && i < n {
			e := lut[cur>>(64-lutBits)]
			if e.len != 0 {
				cur <<= e.len
				nbit -= uint(e.len)
				wideAcc |= e.wide
				out[i] = e.symb
				i++
				continue
			}
			if w := uint(e.sub); w != 0 {
				se := sub[uint64(e.index)+(cur>>(64-lutBits-w))&((1<<w)-1)]
				if se.len != 0 {
					cur <<= se.len
					nbit -= uint(se.len)
					wideAcc |= se.wide
					out[i] = se.symb
					i++
					continue
				}
			}
			// Uncovered long code or invalid prefix: one checked decode.
			r.SetBitState(cur, nbit)
			sym, err := d.Decode(r)
			if err != nil {
				return nil, err
			}
			if uint(sym) > 255 {
				wideAcc = 1
			}
			out[i] = byte(sym)
			i++
			continue outer
		}
		r.SetBitState(cur, nbit)
	}
	for ; i < n; i++ {
		sym, err := d.Decode(r)
		if err != nil {
			return nil, err
		}
		if uint(sym) > 255 {
			wideAcc = 1
		}
		out[i] = byte(sym)
	}
	if wideAcc != 0 {
		return nil, ErrByteRange
	}
	return out, nil
}

// DecodeBytes is the convenience form of DecodeScratch.DecodeBytes with
// fresh state.
func DecodeBytes(br *bitstream.ByteReader) ([]byte, error) {
	var s DecodeScratch
	return s.DecodeBytes(br, nil)
}
