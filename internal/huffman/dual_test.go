package huffman

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"github.com/mdz/mdz/internal/bitstream"
)

func roundTripInts2(t *testing.T, s *Scratch, syms []int) {
	t.Helper()
	enc, err := s.EncodeInts2(nil, syms)
	if err != nil {
		t.Fatalf("EncodeInts2: %v", err)
	}
	got, err := DecodeInts2(bitstream.NewByteReader(enc))
	if err != nil {
		t.Fatalf("DecodeInts2: %v", err)
	}
	if len(got) != len(syms) {
		t.Fatalf("length mismatch: got %d want %d", len(got), len(syms))
	}
	for i := range got {
		if got[i] != syms[i] {
			t.Fatalf("value mismatch at %d: got %d want %d", i, got[i], syms[i])
		}
	}
}

func TestDualIntsRoundTripEdges(t *testing.T) {
	var sc Scratch
	cases := [][]int{
		{},                    // empty
		{42},                  // single symbol, odd n
		{7, 7},                // single distinct symbol, even n
		{7, 7, 7},             // single distinct symbol, odd n
		{-3, 5, -3, 5, 9},     // odd n, negative symbols
		{1, 2, 3, 4, 5, 6},    // even n, all distinct
		{1 << 40, -1 << 40},   // outside int32: pair LUT must fall back
		{0, 1 << 40, 0, 0, 5}, // mixed narrow/wide
	}
	for i, c := range cases {
		roundTripInts2(t, nil, c)
		roundTripInts2(t, &sc, c)
		_ = i
	}
}

func TestDualIntsRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	var sc Scratch
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(5000)
		nsym := 1 + rng.Intn(300)
		syms := make([]int, n)
		for i := range syms {
			// Skewed draw so some codes are short and hot.
			v := rng.Intn(nsym)
			if rng.Intn(3) > 0 {
				v = rng.Intn(1 + nsym/8)
			}
			syms[i] = v - nsym/2
		}
		roundTripInts2(t, &sc, syms)
	}
}

// TestDualIntsLongCodes drives codes past lutBits so decode exercises the
// pair-LUT fallback into subtables mid-stream.
func TestDualIntsLongCodes(t *testing.T) {
	// Exponential weights produce a maximally skewed tree; with 40 symbols
	// the rare ones get codes well beyond 11 bits.
	var payload []int
	for i := 0; i < 40; i++ {
		reps := 1 << uint(i%20)
		for j := 0; j < reps && len(payload) < 40000; j++ {
			payload = append(payload, i)
		}
	}
	rand.New(rand.NewSource(5)).Shuffle(len(payload), func(i, j int) {
		payload[i], payload[j] = payload[j], payload[i]
	})
	roundTripInts2(t, &Scratch{}, payload)
}

// TestDualLanesMatchSingleStream parses the v3 section and decodes each lane
// with the single-stream decoder: lane bytes must be exactly an independent
// EncodeAll of that half, and the halves must reassemble to the input.
func TestDualLanesMatchSingleStream(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(3000)
		syms := make([]int, n)
		for i := range syms {
			syms[i] = rng.Intn(100)
		}
		var sc Scratch
		enc, err := sc.EncodeInts2(nil, syms)
		if err != nil {
			t.Fatal(err)
		}
		br := bitstream.NewByteReader(enc)
		table, err := br.ReadSection()
		if err != nil {
			t.Fatal(err)
		}
		cnt, err := br.ReadUvarint()
		if err != nil {
			t.Fatal(err)
		}
		if int(cnt) != n {
			t.Fatalf("count: got %d want %d", cnt, n)
		}
		p0, err := br.ReadSection()
		if err != nil {
			t.Fatal(err)
		}
		p1, err := br.ReadSection()
		if err != nil {
			t.Fatal(err)
		}
		h := (n + 1) / 2

		// Per-lane bytes must equal an independent single-stream encode.
		e, err := sc.buildFor(syms)
		if err != nil {
			t.Fatal(err)
		}
		var w0, w1 bitstream.Writer
		if err := e.EncodeAll(&w0, syms[:h]); err != nil {
			t.Fatal(err)
		}
		if err := e.EncodeAll(&w1, syms[h:]); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(p0, w0.Bytes()) || !bytes.Equal(p1, w1.Bytes()) {
			t.Fatalf("trial %d: lane bytes differ from single-stream encode", trial)
		}

		// Each lane must decode standalone with the v2 decoder.
		dec, err := ReadTable(bitstream.NewByteReader(table))
		if err != nil {
			t.Fatal(err)
		}
		l0, err := dec.DecodeAllBuf(bitstream.NewReader(p0), h, nil)
		if err != nil {
			t.Fatal(err)
		}
		l1, err := dec.DecodeAllBuf(bitstream.NewReader(p1), n-h, nil)
		if err != nil {
			t.Fatal(err)
		}
		joined := append(append([]int{}, l0...), l1...)
		for i := range joined {
			if joined[i] != syms[i] {
				t.Fatalf("trial %d: lane split decode mismatch at %d", trial, i)
			}
		}
	}
}

func TestDualBytesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var ds DecodeScratch
	var buf []byte
	shapes := []func(n int) []byte{
		func(n int) []byte { // uniform random
			b := make([]byte, n)
			rng.Read(b)
			return b
		},
		func(n int) []byte { // runs of few symbols
			b := make([]byte, n)
			for i := range b {
				b[i] = byte(rng.Intn(4) * 63)
			}
			return b
		},
		func(n int) []byte { // skewed
			b := make([]byte, n)
			for i := range b {
				if rng.Intn(10) == 0 {
					b[i] = byte(rng.Intn(256))
				} else {
					b[i] = 'a'
				}
			}
			return b
		},
	}
	for trial := 0; trial < 120; trial++ {
		n := rng.Intn(8192)
		data := shapes[trial%len(shapes)](n)
		enc, err := EncodeBytes2(nil, data)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ds.DecodeBytes2(bitstream.NewByteReader(enc), buf)
		if err != nil {
			t.Fatalf("trial %d: DecodeBytes2: %v", trial, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("trial %d: byte round trip mismatch (n=%d)", trial, n)
		}
		buf = got
	}
}

// TestDualBytesMatchesInts pins the byte dual-lane wire format to the
// generic path: EncodeBytes2 must emit exactly EncodeInts2 over the widened
// values, and DecodeBytes2 must reject wide symbols with ErrByteRange.
func TestDualBytesMatchesInts(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(4096)
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(rng.Intn(40))
		}
		wide := make([]int, n)
		for i, b := range data {
			wide[i] = int(b)
		}
		fromBytes, err := EncodeBytes2(nil, data)
		if err != nil {
			t.Fatal(err)
		}
		fromInts, err := EncodeInts2(nil, wide)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fromBytes, fromInts) {
			t.Fatalf("trial %d: EncodeBytes2 and EncodeInts2 wire bytes differ", trial)
		}
		// The generic decoder must also accept the byte-path stream.
		vals, err := DecodeInts2(bitstream.NewByteReader(fromBytes))
		if err != nil {
			t.Fatal(err)
		}
		for i := range vals {
			if vals[i] != wide[i] {
				t.Fatalf("trial %d: DecodeInts2 over byte stream mismatch", trial)
			}
		}
	}

	// Wide symbols decode cleanly as ints but poison the byte path.
	var sc Scratch
	var ds DecodeScratch
	enc, err := sc.EncodeInts2(nil, []int{1, 300, 2, 2, 300, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.DecodeBytes2(bitstream.NewByteReader(enc), nil); !errors.Is(err, ErrByteRange) {
		t.Fatalf("want ErrByteRange, got %v", err)
	}
}

// TestDualDecodeCorrupt checks truncation and garbage fail with errors, not
// panics or silent success.
func TestDualDecodeCorrupt(t *testing.T) {
	var sc Scratch
	syms := make([]int, 999)
	for i := range syms {
		syms[i] = i % 37
	}
	enc, err := sc.EncodeInts2(nil, syms)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(enc); cut += 7 {
		if _, err := DecodeInts2(bitstream.NewByteReader(enc[:cut])); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
		var ds DecodeScratch
		if _, err := ds.DecodeBytes2(bitstream.NewByteReader(enc[:cut]), nil); err == nil {
			t.Fatalf("byte truncation at %d decoded successfully", cut)
		}
	}
}

// FuzzDualRoundTrip feeds arbitrary bytes through both dual-lane codecs and
// cross-checks the int path against the v2 single-stream codec.
func FuzzDualRoundTrip(f *testing.F) {
	f.Add([]byte("hello hello hello"))
	f.Add([]byte{0})
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{1, 2, 3, 250}, 100))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Byte path round trip.
		encB, err := EncodeBytes2(nil, data)
		if err != nil {
			t.Fatal(err)
		}
		var ds DecodeScratch
		gotB, err := ds.DecodeBytes2(bitstream.NewByteReader(encB), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotB, data) {
			t.Fatal("byte dual round trip mismatch")
		}

		// Int path: derive signed symbols from the input and cross-check
		// against the v2 section codec on decoded values.
		syms := make([]int, len(data))
		for i, b := range data {
			syms[i] = int(int8(b)) * int(b)
		}
		enc2, err := EncodeInts2(nil, syms)
		if err != nil {
			t.Fatal(err)
		}
		got2, err := DecodeInts2(bitstream.NewByteReader(enc2))
		if err != nil {
			t.Fatal(err)
		}
		enc1, err := EncodeInts(nil, syms)
		if err != nil {
			t.Fatal(err)
		}
		got1, err := DecodeInts(bitstream.NewByteReader(enc1))
		if err != nil {
			t.Fatal(err)
		}
		if len(got1) != len(got2) || len(got1) != len(syms) {
			t.Fatal("length divergence between v2 and v3 sections")
		}
		for i := range syms {
			if got2[i] != syms[i] || got1[i] != got2[i] {
				t.Fatalf("value divergence at %d", i)
			}
		}
	})
}
