package huffman

import (
	"bytes"
	"container/heap"
	"math/rand"
	"testing"

	"github.com/mdz/mdz/internal/bitstream"
)

// This file keeps the historical heap-based tree builder as a reference
// oracle: the production two-queue builder in buildSortedSc must produce the
// exact same canonical code (and therefore the same serialized table and the
// same payload bits) for every (symbol, weight) input. The heap pops nodes by
// (weight, order) with leaves ordered 0..n-1 by ascending symbol and merges
// numbered in creation order — the tie-break contract the two-queue argument
// relies on.

type refNode struct {
	weight      uint64
	symbol      int
	left, right *refNode
	order       int
}

type refHeap []*refNode

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].weight != h[j].weight {
		return h[i].weight < h[j].weight
	}
	return h[i].order < h[j].order
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(*refNode)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func refAssignDepths(n *refNode, depth uint8, out map[int]uint8) {
	if n.left == nil && n.right == nil {
		out[n.symbol] = depth
		return
	}
	refAssignDepths(n.left, depth+1, out)
	refAssignDepths(n.right, depth+1, out)
}

// refBuildSorted is the historical buildSorted, verbatim modulo the renamed
// node types: slab-allocated heap merge, recursive depth assignment, clamped
// lengths handed to fromLengths.
func refBuildSorted(syms []int, weights []uint64) (*Encoder, error) {
	if len(syms) == 0 {
		return &Encoder{codes: map[int]code{}}, nil
	}
	if len(syms) == 1 {
		e := &Encoder{codes: map[int]code{syms[0]: {0, 1}}}
		e.symbols = []int{syms[0]}
		e.lengths = []uint8{1}
		e.buildDense()
		return e, nil
	}
	slab := make([]refNode, 2*len(syms)-1)
	h := make(refHeap, 0, len(syms))
	order := 0
	for i, s := range syms {
		node := &slab[order]
		*node = refNode{weight: weights[i], symbol: s, order: order}
		h = append(h, node)
		order++
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(*refNode)
		b := heap.Pop(&h).(*refNode)
		node := &slab[order]
		*node = refNode{weight: a.weight + b.weight, left: a, right: b, order: order}
		heap.Push(&h, node)
		order++
	}
	root := h[0]
	lengths := map[int]uint8{}
	refAssignDepths(root, 0, lengths)
	for s, l := range lengths {
		if l > MaxCodeLen {
			lengths[s] = MaxCodeLen
		} else if l == 0 {
			lengths[s] = 1
		}
		_ = s
	}
	return fromLengths(lengths)
}

// compareBuilders asserts the production builder and the heap oracle agree on
// the serialized table and on the encoded payload for the given alphabet.
func compareBuilders(t *testing.T, syms []int, weights []uint64, payload []int) {
	t.Helper()
	var sc Scratch
	got, err := buildSortedSc(syms, weights, &sc)
	if err != nil {
		t.Fatalf("buildSortedSc: %v", err)
	}
	want, err := refBuildSorted(syms, weights)
	if err != nil {
		t.Fatalf("refBuildSorted: %v", err)
	}
	gt := got.AppendTable(nil)
	wt := want.AppendTable(nil)
	if !bytes.Equal(gt, wt) {
		t.Fatalf("tables differ: got %x want %x (syms=%v weights=%v)", gt, wt, syms, weights)
	}
	var gw, ww bitstream.Writer
	if err := got.EncodeAll(&gw, payload); err != nil {
		t.Fatalf("EncodeAll (two-queue): %v", err)
	}
	if err := want.EncodeAll(&ww, payload); err != nil {
		t.Fatalf("EncodeAll (heap): %v", err)
	}
	if !bytes.Equal(gw.Bytes(), ww.Bytes()) {
		t.Fatalf("payloads differ (syms=%v weights=%v)", syms, weights)
	}
}

func TestBuilderEquivalenceEdges(t *testing.T) {
	compareBuilders(t, []int{7}, []uint64{3}, []int{7, 7, 7})
	compareBuilders(t, []int{-4, 9}, []uint64{1, 1}, []int{9, -4, 9})
	// All-equal weights: every merge is a tie; the leaf-first rule decides.
	syms := make([]int, 257)
	wts := make([]uint64, 257)
	for i := range syms {
		syms[i] = i - 128
		wts[i] = 5
	}
	compareBuilders(t, syms, wts, syms)
	// Exponential weights: maximally skewed tree.
	for i := range wts {
		wts[i] = 1 << uint(i%50)
	}
	compareBuilders(t, syms, wts, syms)
	// Sparse alphabet past the dense-table gate.
	compareBuilders(t, []int{-1 << 40, 0, 1 << 40}, []uint64{2, 9, 4},
		[]int{0, -1 << 40, 1 << 40, 0})
	// Weights past the packed-sort-key range force the stable-sort fallback.
	compareBuilders(t, []int{1, 2, 3, 4}, []uint64{1 << 50, 1 << 50, 1, 1 << 50},
		[]int{1, 2, 3, 4})
}

func TestBuilderEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(400)
		symSet := map[int]bool{}
		for len(symSet) < n {
			symSet[rng.Intn(4000)-2000] = true
		}
		syms := make([]int, 0, n)
		for s := range symSet {
			syms = append(syms, s)
		}
		// ascending, as the builder contract requires
		for i := 1; i < len(syms); i++ {
			for j := i; j > 0 && syms[j] < syms[j-1]; j-- {
				syms[j], syms[j-1] = syms[j-1], syms[j]
			}
		}
		wts := make([]uint64, n)
		for i := range wts {
			// mix flat, skewed, and tie-heavy weight shapes
			switch trial % 3 {
			case 0:
				wts[i] = uint64(1 + rng.Intn(10))
			case 1:
				wts[i] = uint64(1 + rng.Intn(1<<16))
			default:
				wts[i] = 1 + uint64(rng.Int63())>>20
			}
		}
		payload := make([]int, 512)
		for i := range payload {
			payload[i] = syms[rng.Intn(n)]
		}
		compareBuilders(t, syms, wts, payload)
	}
}

// TestScratchBuilderReuse runs differently-shaped builds through one Scratch
// to verify pooled buffers never leak state between builds.
func TestScratchBuilderReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	var sc Scratch
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		syms := make([]int, n)
		next := rng.Intn(100) - 50
		for i := range syms {
			syms[i] = next
			next += 1 + rng.Intn(3)
		}
		wts := make([]uint64, n)
		for i := range wts {
			wts[i] = uint64(1 + rng.Intn(1000))
		}
		got, err := buildSortedSc(syms, wts, &sc)
		if err != nil {
			t.Fatal(err)
		}
		want, err := refBuildSorted(syms, wts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.AppendTable(nil), want.AppendTable(nil)) {
			t.Fatalf("trial %d: scratch reuse diverged", trial)
		}
	}
}
