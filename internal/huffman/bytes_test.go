package huffman

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/mdz/mdz/internal/bitstream"
)

// byteCases covers the byte-path shapes that matter: degenerate alphabets,
// the short-section histogram path (<512 bytes), the striped path, skewed
// and near-uniform distributions.
func byteCases() [][]byte {
	rng := rand.New(rand.NewSource(17))
	full := make([]byte, 4096)
	for i := range full {
		full[i] = byte(rng.Intn(256))
	}
	skew := make([]byte, 8192)
	for i := range skew {
		if rng.Float64() < 0.8 {
			skew[i] = 0
		} else {
			skew[i] = byte(rng.Intn(16))
		}
	}
	walk := make([]byte, 3000)
	x := 0.0
	for i := range walk {
		x += rng.NormFloat64()
		walk[i] = byte(int(x) & 0x3F)
	}
	return [][]byte{
		nil,
		{},
		{0},
		{255},
		bytes.Repeat([]byte{7}, 1),
		bytes.Repeat([]byte{7}, 600),
		{1, 2},
		{1, 2, 1, 1, 1, 2},
		full,
		skew,
		walk,
	}
}

func widen(data []byte) []int {
	wide := make([]int, len(data))
	for i, b := range data {
		wide[i] = int(b)
	}
	return wide
}

// TestEncodeBytesMatchesEncodeInts pins the load-bearing identity: the byte
// encoder emits exactly the bytes the generic int encoder emits for the
// widened data.
func TestEncodeBytesMatchesEncodeInts(t *testing.T) {
	for ci, data := range byteCases() {
		got, err := EncodeBytes(nil, data)
		if err != nil {
			t.Fatalf("case %d: EncodeBytes: %v", ci, err)
		}
		want, err := EncodeInts(nil, widen(data))
		if err != nil {
			t.Fatalf("case %d: EncodeInts: %v", ci, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("case %d (%d bytes): encodings differ: %d vs %d bytes", ci, len(data), len(got), len(want))
		}
	}
}

// TestDecodeBytesMatchesDecodeInts checks both decode paths (pooled scratch
// and the convenience wrapper) against DecodeInts on shared streams, with
// the scratch reused across cases as the LZ hot path reuses it.
func TestDecodeBytesMatchesDecodeInts(t *testing.T) {
	var s DecodeScratch
	var buf []byte
	for ci, data := range byteCases() {
		enc, err := EncodeBytes(nil, data)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		buf, err = s.DecodeBytes(bitstream.NewByteReader(enc), buf[:0])
		if err != nil {
			t.Fatalf("case %d: scratch DecodeBytes: %v", ci, err)
		}
		if !bytes.Equal(buf, data) {
			t.Errorf("case %d: scratch decode mismatch", ci)
		}
		out, err := DecodeBytes(bitstream.NewByteReader(enc))
		if err != nil {
			t.Fatalf("case %d: DecodeBytes: %v", ci, err)
		}
		if !bytes.Equal(out, data) {
			t.Errorf("case %d: DecodeBytes mismatch", ci)
		}
		ints, err := DecodeInts(bitstream.NewByteReader(enc))
		if err != nil {
			t.Fatalf("case %d: DecodeInts: %v", ci, err)
		}
		if len(ints) != len(data) {
			t.Fatalf("case %d: DecodeInts length %d, want %d", ci, len(ints), len(data))
		}
		for i, v := range ints {
			if v != int(data[i]) {
				t.Fatalf("case %d: DecodeInts[%d] = %d, want %d", ci, i, v, data[i])
			}
		}
	}
}

// TestDecodeBytesWideSymbol: a stream whose alphabet leaves the byte range
// decodes via DecodeInts but must fail DecodeBytes with ErrByteRange — and
// only after the stream itself parsed cleanly.
func TestDecodeBytesWideSymbol(t *testing.T) {
	syms := []int{300, 1, 2, 1, 300, 2, 1, 1}
	enc, err := EncodeInts(nil, syms)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeInts(bitstream.NewByteReader(enc)); err != nil {
		t.Fatalf("DecodeInts: %v", err)
	}
	var s DecodeScratch
	if _, err := s.DecodeBytes(bitstream.NewByteReader(enc), nil); err != ErrByteRange {
		t.Errorf("scratch DecodeBytes: err = %v, want ErrByteRange", err)
	}
	if _, err := DecodeBytes(bitstream.NewByteReader(enc)); err != ErrByteRange {
		t.Errorf("DecodeBytes: err = %v, want ErrByteRange", err)
	}
}

// appendTableEntry serializes one (delta, length) table pair.
func appendTableEntry(dst []byte, delta int64, l uint8) []byte {
	dst = bitstream.AppendVarint(dst, delta)
	return append(dst, l)
}

// TestReadTableNonAscendingFallback: tables whose symbols are not strictly
// ascending (unreachable from our encoders, but valid input) must take the
// map fallback and agree exactly with the historical map-based ReadTable —
// including last-entry-wins on duplicate symbols.
func TestReadTableNonAscendingFallback(t *testing.T) {
	cases := []struct {
		name  string
		pairs []struct {
			sym int64
			l   uint8
		}
	}{
		{"descending", []struct {
			sym int64
			l   uint8
		}{{5, 1}, {3, 2}, {7, 2}}},
		{"duplicate-last-wins", []struct {
			sym int64
			l   uint8
		}{{5, 2}, {3, 1}, {5, 3}, {5, 2}, {6, 2}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			table := bitstream.AppendUvarint(nil, uint64(len(tc.pairs)))
			prev := int64(0)
			for _, p := range tc.pairs {
				table = appendTableEntry(table, p.sym-prev, p.l)
				prev = p.sym
			}
			want, err := ReadTable(bitstream.NewByteReader(table))
			if err != nil {
				t.Fatalf("ReadTable: %v", err)
			}
			var s DecodeScratch
			got, err := s.ReadTable(bitstream.NewByteReader(table))
			if err != nil {
				t.Fatalf("scratch ReadTable: %v", err)
			}
			// Equivalent decoders decode identical symbol sequences from
			// identical bits (and fail at the same point).
			rng := rand.New(rand.NewSource(99))
			raw := make([]byte, 64)
			rng.Read(raw)
			r1 := bitstream.NewReader(raw)
			r2 := bitstream.NewReader(raw)
			for i := 0; i < 200; i++ {
				s1, e1 := want.Decode(r1)
				s2, e2 := got.Decode(r2)
				if s1 != s2 || (e1 == nil) != (e2 == nil) {
					t.Fatalf("symbol %d: map decoder (%d, %v) vs scratch decoder (%d, %v)", i, s1, e1, s2, e2)
				}
				if e1 != nil {
					break
				}
			}
		})
	}
}

// FuzzEncodeBytesEquivalence fuzzes the full byte-path identity: same wire
// bytes as the widened int path, and a clean byte-for-byte round trip.
func FuzzEncodeBytesEquivalence(f *testing.F) {
	for _, data := range byteCases() {
		f.Add(data)
	}
	var s DecodeScratch
	var buf []byte
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := EncodeBytes(nil, data)
		if err != nil {
			t.Fatalf("EncodeBytes: %v", err)
		}
		want, err := EncodeInts(nil, widen(data))
		if err != nil {
			t.Fatalf("EncodeInts: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("encodings differ for %d input bytes", len(data))
		}
		buf, err = s.DecodeBytes(bitstream.NewByteReader(got), buf[:0])
		if err != nil {
			t.Fatalf("DecodeBytes: %v", err)
		}
		if !bytes.Equal(buf, data) {
			t.Fatal("round trip mismatch")
		}
	})
}

func benchBytes(n int) []byte {
	rng := rand.New(rand.NewSource(9))
	data := make([]byte, n)
	x := 0.0
	for i := range data {
		x += rng.NormFloat64()
		data[i] = byte(int(x) & 0x3F)
		if rng.Float64() < 0.3 {
			data[i] = byte(rng.Intn(256))
		}
	}
	return data
}

func BenchmarkEncodeBytes(b *testing.B) {
	data := benchBytes(1 << 17)
	var dst []byte
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = EncodeBytes(dst[:0], data)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeBytes(b *testing.B) {
	data := benchBytes(1 << 17)
	enc, err := EncodeBytes(nil, data)
	if err != nil {
		b.Fatal(err)
	}
	var s DecodeScratch
	var buf []byte
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = s.DecodeBytes(bitstream.NewByteReader(enc), buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}
