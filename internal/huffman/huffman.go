// Package huffman implements a canonical Huffman codec over integer symbol
// alphabets. It is the entropy-coding stage of the SZ-style pipeline used by
// MDZ and the reimplemented baselines: quantization bins and level-index
// codes are Huffman coded before the dictionary (lossless) stage.
//
// The code table is serialized compactly as (symbol, code length) pairs and
// rebuilt canonically on decode, so encoder and decoder never need to share
// the tree itself.
package huffman

import (
	"errors"
	"fmt"
	"slices"
	"sort"

	"github.com/mdz/mdz/internal/bitstream"
)

// MaxCodeLen is the longest admissible code. Canonical codes are rebalanced
// to fit (package-limited alphabets make overflow practically impossible,
// but depth is still enforced for decoder table safety).
const MaxCodeLen = 58

var (
	// ErrCorrupt is returned when a serialized table or code stream is
	// malformed.
	ErrCorrupt = errors.New("huffman: corrupt stream")
)

// Encoder holds a canonical code table for a fixed symbol set.
type Encoder struct {
	codes map[int]code
	// table serialization, cached at build time
	symbols []int
	lengths []uint8
	// dense, when non-nil, maps symbol s to its code at index s-denseMin,
	// replacing the per-symbol map lookup on the encode hot path. Built when
	// the alphabet is near-contiguous — the common case for quantization
	// bins, which cluster around the zero bin. Holes have code length 0.
	denseMin int
	dense    []code
}

type code struct {
	bits uint64
	n    uint8
}

// Build constructs a canonical Huffman code for the given symbol frequency
// map. Symbols with zero frequency are ignored. Build is deterministic: the
// same frequency map always produces the same code.
func Build(freq map[int]uint64) (*Encoder, error) {
	if len(freq) == 0 {
		return &Encoder{codes: map[int]code{}}, nil
	}
	syms := make([]int, 0, len(freq))
	for s, f := range freq {
		if f > 0 {
			syms = append(syms, s)
		}
	}
	if len(syms) == 0 {
		return &Encoder{codes: map[int]code{}}, nil
	}
	sort.Ints(syms)
	weights := make([]uint64, len(syms))
	for i, s := range syms {
		weights[i] = freq[s]
	}
	return buildSorted(syms, weights)
}

// buildSorted constructs the canonical code for symbols given in strictly
// ascending order with positive weights. It is the common backend of Build
// and the dense (map-free) counting path in EncodeInts, and produces
// identical codes for identical (symbol, weight) multisets. The slices are
// not retained.
func buildSorted(syms []int, weights []uint64) (*Encoder, error) {
	return buildSortedSc(syms, weights, nil)
}

// buildSortedSc is buildSorted with optional scratch reuse: with a non-nil
// Scratch the sort keys, tree arrays, and the returned Encoder's tables all
// come from pooled buffers, so the per-shard encode path builds its code with
// zero steady-state allocations. The produced code is byte-identical to the
// historical heap-based builder: leaves enter the merge in (weight, symbol
// order) and internal nodes in creation order, which reproduces the heap's
// (weight, order) pop sequence exactly — on a weight tie every leaf order
// precedes every merge order, ties among leaves resolve by ascending symbol
// (the stable weight sort over an ascending-symbol input), and ties among
// merges resolve by creation order (merge weights are non-decreasing, so the
// queue front is the earliest minimum). huffman_ref_test.go pins this
// equivalence against the kept heap implementation.
func buildSortedSc(syms []int, weights []uint64, s *Scratch) (*Encoder, error) {
	n := len(syms)
	var e *Encoder
	if s != nil {
		e = &s.enc
		old := *e
		*e = Encoder{}
		e.symbols, e.lengths, e.dense = old.symbols[:0], old.lengths[:0], old.dense[:0]
	} else {
		e = &Encoder{}
	}
	if n == 0 {
		return e, nil
	}
	if n == 1 {
		// Degenerate alphabet: one-bit code.
		e.symbols = append(e.symbols, syms[0])
		e.lengths = append(e.lengths, 1)
		e.denseMin = syms[0]
		e.dense = append(e.dense[:0], code{bits: 0, n: 1})
		return e, nil
	}
	// Leaves in merge-pop order: a stable sort by weight over the ascending
	// symbol list. When weights and alphabet size fit, weight and original
	// index pack into one uint64 so the sort is a primitive slices.Sort
	// (pdqsort, no comparator calls); the fallback sorts index handles
	// stably.
	var keys []uint64
	if s != nil && cap(s.keys) >= n {
		keys = s.keys[:n]
	} else {
		keys = make([]uint64, n)
		if s != nil {
			s.keys = keys
		}
	}
	packed := n < 1<<24
	if packed {
		for _, w := range weights {
			if w >= 1<<40 {
				packed = false
				break
			}
		}
	}
	if packed {
		for i, w := range weights {
			keys[i] = w<<24 | uint64(i)
		}
		slices.Sort(keys)
	} else {
		for i := range keys {
			keys[i] = uint64(i)
		}
		slices.SortStableFunc(keys, func(a, b uint64) int {
			wa, wb := weights[a], weights[b]
			if wa < wb {
				return -1
			}
			if wa > wb {
				return 1
			}
			return 0
		})
	}
	ordOf := func(j int) int {
		if packed {
			return int(keys[j] & (1<<24 - 1))
		}
		return int(keys[j])
	}
	// Two-queue Huffman merge over a flat node array: nodes 0..n-1 are the
	// sorted leaves, nodes n..2n-2 the merges in creation order. Each step
	// pops the two smallest weights, preferring the leaf queue on ties.
	nodes := 2*n - 1
	var tw []uint64
	var par []int32
	if s != nil && cap(s.tw) >= nodes {
		tw = s.tw[:nodes]
	} else {
		tw = make([]uint64, nodes)
		if s != nil {
			s.tw = tw
		}
	}
	if s != nil && cap(s.par) >= nodes {
		par = s.par[:nodes]
	} else {
		par = make([]int32, nodes)
		if s != nil {
			s.par = par
		}
	}
	for j := 0; j < n; j++ {
		tw[j] = weights[ordOf(j)]
	}
	li, mi := 0, n
	for created := n; created < nodes; created++ {
		var a, b int
		if li < n && (mi >= created || tw[li] <= tw[mi]) {
			a, li = li, li+1
		} else {
			a, mi = mi, mi+1
		}
		if li < n && (mi >= created || tw[li] <= tw[mi]) {
			b, li = li, li+1
		} else {
			b, mi = mi, mi+1
		}
		tw[created] = tw[a] + tw[b]
		par[a], par[b] = int32(created), int32(created)
	}
	// Leaf depths via a reverse parent walk (parents are always created after
	// their children, so one descending pass resolves every depth), saturated
	// at 255 ahead of the MaxCodeLen clamp.
	var depth []uint8
	if s != nil && cap(s.depth) >= nodes {
		depth = s.depth[:nodes]
	} else {
		depth = make([]uint8, nodes)
		if s != nil {
			s.depth = depth
		}
	}
	depth[nodes-1] = 0
	for j := nodes - 2; j >= 0; j-- {
		d := depth[par[j]]
		if d < 255 {
			d++
		}
		depth[j] = d
	}
	// Code lengths per original (ascending-symbol) position, clamped to
	// MaxCodeLen exactly as the historical builder clamped.
	var lens []uint8
	if s != nil && cap(s.ordLens) >= n {
		lens = s.ordLens[:n]
	} else {
		lens = make([]uint8, n)
		if s != nil {
			s.ordLens = lens
		}
	}
	var cnt [MaxCodeLen + 1]int32
	maxLen := uint8(0)
	for j := 0; j < n; j++ {
		l := depth[j]
		if l > MaxCodeLen {
			l = MaxCodeLen
		}
		lens[ordOf(j)] = l
		cnt[l]++
		if l > maxLen {
			maxLen = l
		}
	}
	// Canonical first-code/first-index per length, with the same
	// over-subscription guard fromLengths applies per symbol (reachable only
	// through the depth clamp, i.e. never for realistic weights).
	var first [MaxCodeLen + 1]uint64
	var fidx [MaxCodeLen + 1]int32
	var next [MaxCodeLen + 1]int32
	var c uint64
	var idx int32
	for l := uint8(1); l <= maxLen; l++ {
		first[l] = c
		fidx[l] = idx
		c += uint64(cnt[l])
		idx += cnt[l]
		if cnt[l] > 0 && c > 1<<l {
			return nil, ErrCorrupt // over-subscribed code space
		}
		c <<= 1
	}
	// Assign codes by ascending symbol: position fidx[l]+k within the
	// canonical (length, symbol) order, code first[l]+k — the exact
	// assignment fromLengths produces.
	if cap(e.symbols) >= n {
		e.symbols = e.symbols[:n]
	} else {
		e.symbols = make([]int, n)
	}
	if cap(e.lengths) >= n {
		e.lengths = e.lengths[:n]
	} else {
		e.lengths = make([]uint8, n)
	}
	lo, hi := syms[0], syms[n-1]
	diff := uint64(hi) - uint64(lo)
	if diff < uint64(2*n+1024) {
		span := int(diff) + 1
		var dense []code
		if cap(e.dense) >= span {
			dense = e.dense[:span]
			clear(dense)
		} else {
			dense = make([]code, span)
		}
		for i := 0; i < n; i++ {
			l := lens[i]
			k := next[l]
			next[l]++
			pos := fidx[l] + k
			e.symbols[pos] = syms[i]
			e.lengths[pos] = l
			dense[syms[i]-lo] = code{bits: first[l] + uint64(k), n: l}
		}
		e.denseMin = lo
		e.dense = dense
	} else {
		codes := make(map[int]code, n)
		for i := 0; i < n; i++ {
			l := lens[i]
			k := next[l]
			next[l]++
			pos := fidx[l] + k
			e.symbols[pos] = syms[i]
			e.lengths[pos] = l
			codes[syms[i]] = code{bits: first[l] + uint64(k), n: l}
		}
		e.codes = codes
		e.dense = nil
	}
	return e, nil
}

// fromLengths builds the canonical code assignment from code lengths:
// symbols sorted by (length, symbol) receive consecutive codes.
func fromLengths(lengths map[int]uint8) (*Encoder, error) {
	type sl struct {
		sym int
		l   uint8
	}
	list := make([]sl, 0, len(lengths))
	for s, l := range lengths {
		if l == 0 || l > MaxCodeLen {
			return nil, fmt.Errorf("huffman: invalid code length %d for symbol %d", l, s)
		}
		list = append(list, sl{s, l})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].l != list[j].l {
			return list[i].l < list[j].l
		}
		return list[i].sym < list[j].sym
	})
	e := &Encoder{codes: make(map[int]code, len(list))}
	var next uint64
	var prevLen uint8
	for _, it := range list {
		next <<= (it.l - prevLen)
		prevLen = it.l
		if it.l < 64 && next >= (1<<it.l) {
			return nil, ErrCorrupt // over-subscribed code space
		}
		e.codes[it.sym] = code{bits: next, n: it.l}
		e.symbols = append(e.symbols, it.sym)
		e.lengths = append(e.lengths, it.l)
		next++
	}
	e.buildDense()
	return e, nil
}

// buildDense materializes the slice-indexed code lookup covering
// [denseMin, denseMin+len(dense)) when the alphabet is dense enough for the
// table to be small; very sparse alphabets keep the map-only lookup.
func (e *Encoder) buildDense() {
	if len(e.symbols) == 0 {
		return
	}
	lo, hi := e.symbols[0], e.symbols[0]
	for _, s := range e.symbols[1:] {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	// Unsigned difference is exact even when hi-lo overflows int.
	diff := uint64(hi) - uint64(lo)
	if diff >= uint64(2*len(e.symbols)+1024) {
		return
	}
	e.denseMin = lo
	e.dense = make([]code, int(diff)+1)
	for i, s := range e.symbols {
		e.dense[s-lo] = code{bits: e.codes[s].bits, n: e.lengths[i]}
	}
}

// lookup resolves the code for symbol s via the dense table when present.
func (e *Encoder) lookup(s int) (code, bool) {
	if e.dense != nil {
		if idx := s - e.denseMin; uint(idx) < uint(len(e.dense)) {
			c := e.dense[idx]
			return c, c.n != 0
		}
		return code{}, false
	}
	c, ok := e.codes[s]
	return c, ok
}

// CodeLen returns the code length in bits for symbol s, or 0 if s is not in
// the alphabet.
func (e *Encoder) CodeLen(s int) int {
	c, _ := e.lookup(s)
	return int(c.n)
}

// NumSymbols reports the alphabet size.
func (e *Encoder) NumSymbols() int { return len(e.symbols) }

// Encode appends the code for symbol s to w. Encoding a symbol outside the
// alphabet returns an error.
func (e *Encoder) Encode(w *bitstream.Writer, s int) error {
	c, ok := e.lookup(s)
	if !ok {
		return fmt.Errorf("huffman: symbol %d not in alphabet", s)
	}
	w.WriteBits(c.bits, uint(c.n))
	return nil
}

// EncodeAll encodes a symbol slice.
//
// The dense path packs codes into a local 64-bit accumulator and hands the
// Writer full words, the same provably bit-identical transform the byte
// section encoder uses: codes compose MSB-first inside the accumulator
// exactly as consecutive WriteBits calls would emit them, and the flush
// condition (na+c.n > 64) guarantees no code ever straddles the local
// accumulator.
func (e *Encoder) EncodeAll(w *bitstream.Writer, syms []int) error {
	if e.dense != nil {
		// Hot path: slice-indexed code lookup, no per-symbol call overhead.
		lo, dense := e.denseMin, e.dense
		var acc uint64
		var na uint
		for _, s := range syms {
			idx := s - lo
			if uint(idx) >= uint(len(dense)) || dense[idx].n == 0 {
				return fmt.Errorf("huffman: symbol %d not in alphabet", s)
			}
			c := dense[idx]
			if na+uint(c.n) > 64 {
				w.WriteBits(acc, na)
				acc, na = 0, 0
			}
			acc = acc<<c.n | c.bits
			na += uint(c.n)
		}
		if na > 0 {
			w.WriteBits(acc, na)
		}
		return nil
	}
	for _, s := range syms {
		if err := e.Encode(w, s); err != nil {
			return err
		}
	}
	return nil
}

// AppendTable serializes the code table: uvarint count, then per symbol a
// zigzag-varint symbol delta (sorted canonical order) and a byte length.
func (e *Encoder) AppendTable(dst []byte) []byte {
	dst = bitstream.AppendUvarint(dst, uint64(len(e.symbols)))
	prev := int64(0)
	if e.dense != nil {
		// The dense table already covers the alphabet in ascending symbol
		// order (holes have length 0), so the serialized-by-symbol emission
		// needs no sort and no per-call list allocation.
		for i := range e.dense {
			n := e.dense[i].n
			if n == 0 {
				continue
			}
			sym := int64(e.denseMin + i)
			dst = bitstream.AppendVarint(dst, sym-prev)
			prev = sym
			dst = append(dst, n)
		}
		return dst
	}
	// Serialize sorted by symbol so deltas are small and non-negative-ish.
	type sl struct {
		sym int
		l   uint8
	}
	list := make([]sl, len(e.symbols))
	for i, s := range e.symbols {
		list[i] = sl{s, e.lengths[i]}
	}
	sort.Slice(list, func(i, j int) bool { return list[i].sym < list[j].sym })
	for _, it := range list {
		dst = bitstream.AppendVarint(dst, int64(it.sym)-prev)
		prev = int64(it.sym)
		dst = append(dst, it.l)
	}
	return dst
}

// lutBits is the width of the root decode table: codes up to this length
// resolve with a single peek instead of a bitwise walk.
const lutBits = 11

// subMaxBits caps the width of any second-level subtable; codes longer than
// lutBits+subMaxBits bits always decode via the canonical bitwise walk.
const subMaxBits = 12

// maxSubEntries bounds the total second-level table size (entries across all
// subtables, ~1 MiB at 8 bytes each) so an adversarial — but Kraft-valid —
// serialized table cannot force huge allocations. Prefixes that miss the
// budget decode via the slow path; decoded output is unaffected.
const maxSubEntries = 1 << 17

// lutEntry is one slot of the two-level decode table. A leaf (len != 0)
// resolves a complete code: index is the symbol's canonical position and
// len its total code length. A node (len == 0, sub != 0) points at a
// second-level subtable: index is the base offset into Decoder.sub and sub
// the subtable's width in bits. len == 0 && sub == 0 marks a prefix with no
// table coverage (invalid, or a long code left to the slow path).
//
// Leaves additionally cache the symbol's low byte (symb) and whether the
// full symbol exceeds 0..255 (wide != 0), filling the struct's two padding
// bytes; the byte-oriented decode loop reads a symbol with a single table
// load instead of a dependent symbols[index] chase plus range compare.
type lutEntry struct {
	index int32
	len   uint8
	sub   uint8
	symb  uint8
	wide  uint8
}

// Decoder rebuilds a canonical code from a serialized table and decodes
// symbol streams.
type Decoder struct {
	// canonical decode tables indexed by code length
	firstCode  [MaxCodeLen + 1]uint64
	firstIndex [MaxCodeLen + 1]int
	count      [MaxCodeLen + 1]int
	symbols    []int // canonical order
	maxLen     uint8
	// lut is the lutBits-wide root table; sub holds the overflow subtables
	// for codes longer than lutBits, one contiguous region per root prefix.
	lut []lutEntry
	sub []lutEntry
	// pair is the multi-symbol (format v3) root table, built on demand by
	// buildPair; length zero means "not built for the current code".
	pair []pairEnt
}

// ReadTable parses a table serialized by AppendTable from br and returns the
// Decoder.
func ReadTable(br *bitstream.ByteReader) (*Decoder, error) {
	n, err := br.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if n > 1<<24 {
		return nil, ErrCorrupt
	}
	lengths := make(map[int]uint8, n)
	prev := int64(0)
	for i := uint64(0); i < n; i++ {
		d, err := br.ReadVarint()
		if err != nil {
			return nil, err
		}
		prev += d
		l, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if l == 0 || l > MaxCodeLen {
			return nil, ErrCorrupt
		}
		lengths[int(prev)] = l
	}
	return NewDecoder(lengths)
}

// NewDecoder builds a Decoder directly from a symbol→length map.
func NewDecoder(lengths map[int]uint8) (*Decoder, error) {
	d := &Decoder{}
	if err := d.init(lengths, nil); err != nil {
		return nil, err
	}
	return d, nil
}

// symLen is a (symbol, code length) pair, the unit of canonical table
// construction.
type symLen struct {
	sym int
	l   uint8
}

// init (re)builds the decoder from a symbol→length map. When sc is non-nil
// its scratch buffers are reused, so a pooled Decoder rebuilds with no
// steady-state allocations; the resulting tables are identical either way.
func (d *Decoder) init(lengths map[int]uint8, sc *DecodeScratch) error {
	var list []symLen
	if sc != nil {
		list = sc.list[:0]
	} else {
		list = make([]symLen, 0, len(lengths))
	}
	for s, l := range lengths {
		list = append(list, symLen{s, l})
	}
	if sc != nil {
		sc.list = list
	}
	// (l, sym) is a strict total order, so any comparison sort yields the
	// same sequence the historical sort.Slice produced.
	slices.SortFunc(list, func(a, b symLen) int {
		if a.l != b.l {
			return int(a.l) - int(b.l)
		}
		return a.sym - b.sym
	})
	return d.initSorted(list, sc)
}

// initSorted (re)builds the decoder from a list of distinct (symbol, length)
// pairs already in ascending (length, symbol) order — the canonical
// assignment order. Callers must guarantee both properties; init sorts an
// arbitrary map into it, and the table parser's counting sort preserves it.
func (d *Decoder) initSorted(list []symLen, sc *DecodeScratch) error {
	// pair keeps its capacity across rebuilds but is truncated: a stale pair
	// table belongs to the previous code, and v3 decoders call buildPair
	// again after every table parse.
	symbols, lut, sub, pair := d.symbols[:0], d.lut, d.sub, d.pair[:0]
	*d = Decoder{symbols: symbols, lut: lut, sub: sub, pair: pair}
	if len(list) == 0 {
		// Stale lut/sub buffers (pooled reuse) are never read: every decode
		// entry point checks len(d.symbols) first.
		return nil
	}
	for _, it := range list {
		if it.l == 0 || it.l > MaxCodeLen {
			return ErrCorrupt
		}
	}
	for _, it := range list {
		d.symbols = append(d.symbols, it.sym)
		d.count[it.l]++
		if it.l > d.maxLen {
			d.maxLen = it.l
		}
	}
	var c uint64
	idx := 0
	for l := uint8(1); l <= d.maxLen; l++ {
		d.firstCode[l] = c
		d.firstIndex[l] = idx
		c += uint64(d.count[l])
		idx += d.count[l]
		if l < 64 && c > (1<<l) {
			return ErrCorrupt
		}
		c <<= 1
	}
	d.buildLUT(sc)
	return nil
}

// buildLUT fills the two-level decode table. Level one: every lutBits-wide
// prefix whose leading bits form a complete code of length <= lutBits maps
// directly to its symbol. Level two: each prefix shared by longer codes
// gets a subtable sized for its longest code (capped at subMaxBits and the
// global maxSubEntries budget); codes past the caps keep len==0 entries and
// decode via the canonical bitwise walk. A non-nil sc contributes reusable
// backing arrays for the tables.
func (d *Decoder) buildLUT(sc *DecodeScratch) {
	if cap(d.lut) >= 1<<lutBits {
		d.lut = d.lut[:1<<lutBits]
	} else {
		d.lut = make([]lutEntry, 1<<lutBits)
	}
	for i := range d.lut {
		d.lut[i] = lutEntry{index: -1}
	}
	maxL := d.maxLen
	if maxL > lutBits {
		maxL = lutBits
	}
	for l := uint8(1); l <= maxL; l++ {
		for k := 0; k < d.count[l]; k++ {
			code := d.firstCode[l] + uint64(k)
			symIdx := int32(d.firstIndex[l] + k)
			sym := d.symbols[symIdx]
			e := lutEntry{index: symIdx, len: l, symb: uint8(sym)}
			if uint(sym) > 255 {
				e.wide = 1
			}
			base := code << (lutBits - uint(l))
			span := uint64(1) << (lutBits - uint(l))
			for s := uint64(0); s < span; s++ {
				d.lut[base+s] = e
			}
		}
	}
	if d.maxLen <= lutBits {
		d.sub = d.sub[:0]
		return
	}
	// Width (bits beyond the root prefix) each prefix's subtable needs to
	// cover its longest code.
	var ext []uint8
	if sc != nil && cap(sc.ext) >= 1<<lutBits {
		ext = sc.ext[:1<<lutBits]
		clear(ext)
	} else {
		ext = make([]uint8, 1<<lutBits)
		if sc != nil {
			sc.ext = ext
		}
	}
	for l := lutBits + 1; l <= int(d.maxLen); l++ {
		for k := 0; k < d.count[l]; k++ {
			code := d.firstCode[l] + uint64(k)
			p := code >> (uint(l) - lutBits)
			if e := uint8(l - lutBits); e > ext[p] {
				ext[p] = e
			}
		}
	}
	total := 0
	for p, w := range ext {
		if w == 0 {
			continue
		}
		if w > subMaxBits {
			w = subMaxBits
		}
		if total+(1<<w) > maxSubEntries {
			continue // budget exhausted: prefix stays on the slow path
		}
		d.lut[p] = lutEntry{index: int32(total), sub: w}
		total += 1 << w
	}
	if cap(d.sub) >= total {
		d.sub = d.sub[:total]
	} else {
		d.sub = make([]lutEntry, total)
	}
	for i := range d.sub {
		d.sub[i] = lutEntry{index: -1}
	}
	for l := lutBits + 1; l <= int(d.maxLen); l++ {
		for k := 0; k < d.count[l]; k++ {
			code := d.firstCode[l] + uint64(k)
			symIdx := int32(d.firstIndex[l] + k)
			extBits := uint(l) - lutBits
			node := d.lut[code>>extBits]
			if node.sub == 0 || uint(node.sub) < extBits {
				continue // no subtable, or code longer than it covers
			}
			rem := uint(node.sub) - extBits
			base := uint64(node.index) + (code&((1<<extBits)-1))<<rem
			sym := d.symbols[symIdx]
			e := lutEntry{index: symIdx, len: uint8(l), symb: uint8(sym)}
			if uint(sym) > 255 {
				e.wide = 1
			}
			for s := uint64(0); s < 1<<rem; s++ {
				d.sub[base+s] = e
			}
		}
	}
}

// Decode reads one symbol from r.
func (d *Decoder) Decode(r *bitstream.Reader) (int, error) {
	if len(d.symbols) == 0 {
		return 0, ErrCorrupt
	}
	// Fast path: resolve codes through the two-level table. A table hit is
	// only taken when the full code length fits within avail, so zero
	// padding past end-of-stream is never mistaken for data.
	if bits, avail := r.Peek(lutBits); avail > 0 {
		e := d.lut[bits]
		if e.len != 0 && uint(e.len) <= avail {
			if err := r.Skip(uint(e.len)); err != nil {
				return 0, err
			}
			return d.symbols[e.index], nil
		}
		if e.sub != 0 {
			w := uint(e.sub)
			bits2, avail2 := r.Peek(lutBits + w)
			se := d.sub[uint64(e.index)+(bits2&((1<<w)-1))]
			if se.len != 0 && uint(se.len) <= avail2 {
				if err := r.Skip(uint(se.len)); err != nil {
					return 0, err
				}
				return d.symbols[se.index], nil
			}
		}
	}
	return d.decodeSlow(r)
}

// decodeSlow is the canonical bitwise walk, the single source of truth for
// error semantics: ErrShortStream if the stream ends mid-code, ErrCorrupt
// after maxLen bits match nothing. It also decodes the (rare) codes the
// table budget does not cover.
func (d *Decoder) decodeSlow(r *bitstream.Reader) (int, error) {
	var c uint64
	for l := uint8(1); l <= d.maxLen; l++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		c = (c << 1) | uint64(b)
		if d.count[l] > 0 {
			offset := c - d.firstCode[l]
			if c >= d.firstCode[l] && offset < uint64(d.count[l]) {
				return d.symbols[d.firstIndex[l]+int(offset)], nil
			}
		}
	}
	return 0, ErrCorrupt
}

// DecodeAll reads exactly n symbols into a new slice.
func (d *Decoder) DecodeAll(r *bitstream.Reader, n int) ([]int, error) {
	return d.DecodeAllBuf(r, n, nil)
}

// DecodeAllBuf reads exactly n symbols, reusing buf when it has capacity.
//
// The fast loop keeps the reader's 64-bit buffer topped up with at least
// maxLen real stream bits, so table lookups need no avail gating and
// consume via PeekFast/SkipFast with zero per-symbol checks. Near the end
// of the input (or for pathological tables whose maxLen exceeds the refill
// guarantee) it falls back to the checked per-symbol Decode, which
// preserves the historical error semantics exactly.
func (d *Decoder) DecodeAllBuf(r *bitstream.Reader, n int, buf []int) ([]int, error) {
	var out []int
	if cap(buf) >= n {
		out = buf[:n]
	} else {
		out = make([]int, n)
	}
	if n == 0 {
		return out, nil
	}
	if len(d.symbols) == 0 {
		return nil, ErrCorrupt
	}
	if err := d.decodeInto(r, out); err != nil {
		return nil, err
	}
	return out, nil
}

// decodeInto fills out with exactly len(out) symbols from r; it is the core
// loop of DecodeAllBuf, shared with the dual-lane (v3) decoder for draining
// each lane's tail.
func (d *Decoder) decodeInto(r *bitstream.Reader, out []int) error {
	n := len(out)
	need := uint(lutBits)
	if m := uint(d.maxLen); m > need {
		need = m
	}
	lut, sub, symbols := d.lut, d.sub, d.symbols
	i := 0
	for i < n {
		if r.Buffered() < need && r.Fill() < need {
			break // near end of input: finish with the checked path
		}
		e := lut[r.PeekFast(lutBits)]
		if e.len != 0 {
			r.SkipFast(uint(e.len))
			out[i] = symbols[e.index]
			i++
			continue
		}
		if e.sub != 0 {
			w := uint(e.sub)
			se := sub[uint64(e.index)+(r.PeekFast(lutBits+w)&((1<<w)-1))]
			if se.len != 0 {
				r.SkipFast(uint(se.len))
				out[i] = symbols[se.index]
				i++
				continue
			}
		}
		// Uncovered long code or invalid prefix: one checked decode.
		s, err := d.Decode(r)
		if err != nil {
			return err
		}
		out[i] = s
		i++
	}
	for ; i < n; i++ {
		s, err := d.Decode(r)
		if err != nil {
			return err
		}
		out[i] = s
	}
	return nil
}

// Scratch holds reusable buffers for EncodeInts so repeated encodes (one
// per shard per batch in the MDZ pipeline) stop churning the allocator. A
// Scratch must not be used from multiple goroutines concurrently; the zero
// value is ready to use.
type Scratch struct {
	freq    map[int]uint64
	counts  []uint64 // dense frequency buffer, indexed by symbol-min
	counts4 []uint32 // 4-way striped counting stripes (summed into counts)
	syms    []int    // dense alphabet scratch (ascending)
	weights []uint64 // weights parallel to syms
	table   []byte
	w       bitstream.Writer
	w2      bitstream.Writer // second lane of the dual-stream (v3) payload
	stats   EncodeStats
	// code-builder scratch (see buildSortedSc)
	keys    []uint64
	tw      []uint64
	par     []int32
	depth   []uint8
	ordLens []uint8
	enc     Encoder
}

// EncodeStats describes the most recent EncodeInts call on a Scratch: the
// alphabet size and the serialized table and bit-packed payload sizes. The
// table/payload split is what telemetry uses to track per-shard Huffman
// table overhead (the cost that bounds useful shard counts).
type EncodeStats struct {
	// Symbols is the alphabet size of the encoded stream.
	Symbols int
	// TableBytes is the serialized code-table size.
	TableBytes int
	// PayloadBytes is the bit-packed symbol stream size.
	PayloadBytes int
}

// LastStats reports the stats of the most recent EncodeInts call. A nil
// Scratch (or one not yet used) reports zeros.
func (s *Scratch) LastStats() EncodeStats {
	if s == nil {
		return EncodeStats{}
	}
	return s.stats
}

// EncodeInts builds a code for syms, serializes the table and the
// bit-packed payload, and returns table||payload as length-prefixed
// sections appended to dst, reusing the Scratch's internal buffers. A nil
// receiver is valid and allocates fresh buffers.
func (s *Scratch) EncodeInts(dst []byte, syms []int) ([]byte, error) {
	enc, err := s.buildFor(syms)
	if err != nil {
		return nil, err
	}
	var table []byte
	var w *bitstream.Writer
	if s == nil {
		table = enc.AppendTable(nil)
		w = bitstream.NewWriter(len(syms) / 2)
	} else {
		s.table = enc.AppendTable(s.table[:0])
		table = s.table
		s.w.Reset()
		w = &s.w
	}
	if err := enc.EncodeAll(w, syms); err != nil {
		return nil, err
	}
	if s != nil {
		s.stats = EncodeStats{
			Symbols:      enc.NumSymbols(),
			TableBytes:   len(table),
			PayloadBytes: len(w.Bytes()),
		}
	}
	dst = bitstream.AppendSection(dst, table)
	dst = bitstream.AppendUvarint(dst, uint64(len(syms)))
	dst = bitstream.AppendSection(dst, w.Bytes())
	return dst, nil
}

// buildFor computes symbol frequencies and builds the canonical code. When
// the symbol range is near-contiguous — the common case for quantization
// bins — counting uses a dense slice instead of a map (one array increment
// per value); the resulting code is byte-identical to the map path because
// a dense ascending scan visits symbols in exactly sorted order.
func (s *Scratch) buildFor(syms []int) (*Encoder, error) {
	if len(syms) == 0 {
		return Build(nil)
	}
	lo, hi := syms[0], syms[0]
	for _, v := range syms[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	// hi-lo as a uint64 is exact even when the int subtraction would
	// overflow (e.g. extreme sentinel codes at both ends of the range).
	diff := uint64(hi) - uint64(lo)
	if diff < uint64(4*len(syms)+1024) && diff < 1<<20 {
		span := int(diff) + 1
		var counts []uint64
		if s != nil && cap(s.counts) >= span {
			counts = s.counts[:span]
		} else {
			counts = make([]uint64, span)
			if s != nil {
				s.counts = counts
			}
		}
		if s != nil && len(syms) >= 4*span && len(syms) >= 2048 && len(syms) < 1<<28 {
			// 4-way striped counting, ported from the byte-section encoder:
			// quantization bins arrive in long runs of the same symbol, and
			// four independent stripes break the same-address
			// increment-to-increment dependency those runs create. The input
			// bound keeps every uint32 stripe overflow-free, and the summed
			// counts are exactly the serial counts, so the built code is
			// byte-identical. Gated on len >= 4*span so clearing and summing
			// the stripes stays amortized.
			var c4 []uint32
			if cap(s.counts4) >= 4*span {
				c4 = s.counts4[:4*span]
				clear(c4)
			} else {
				c4 = make([]uint32, 4*span)
				s.counts4 = c4
			}
			n4 := len(syms) &^ 3
			for i := 0; i < n4; i += 4 {
				c4[syms[i]-lo]++
				c4[span+syms[i+1]-lo]++
				c4[2*span+syms[i+2]-lo]++
				c4[3*span+syms[i+3]-lo]++
			}
			for _, v := range syms[n4:] {
				c4[v-lo]++
			}
			for j := 0; j < span; j++ {
				counts[j] = uint64(c4[j]) + uint64(c4[span+j]) + uint64(c4[2*span+j]) + uint64(c4[3*span+j])
			}
		} else {
			clear(counts)
			for _, v := range syms {
				counts[v-lo]++
			}
		}
		var alph []int
		var wts []uint64
		if s != nil {
			alph, wts = s.syms[:0], s.weights[:0]
		}
		for i, c := range counts {
			if c != 0 {
				alph = append(alph, lo+i)
				wts = append(wts, c)
			}
		}
		if s != nil {
			s.syms, s.weights = alph, wts
		}
		return buildSortedSc(alph, wts, s)
	}
	var freq map[int]uint64
	if s == nil {
		freq = make(map[int]uint64)
	} else {
		if s.freq == nil {
			s.freq = make(map[int]uint64, 64)
		} else {
			clear(s.freq)
		}
		freq = s.freq
	}
	for _, sym := range syms {
		freq[sym]++
	}
	return Build(freq)
}

// EncodeInts is a convenience that builds a code for syms, serializes the
// table and the bit-packed payload, and returns table||payload as
// length-prefixed sections appended to dst.
func EncodeInts(dst []byte, syms []int) ([]byte, error) {
	return (*Scratch)(nil).EncodeInts(dst, syms)
}

// DecodeInts inverts EncodeInts, consuming from br.
func DecodeInts(br *bitstream.ByteReader) ([]int, error) {
	return DecodeIntsBuf(br, nil)
}

// DecodeIntsBuf is DecodeInts with a caller-provided destination buffer:
// when buf has sufficient capacity the symbols are decoded into it,
// avoiding a per-call allocation on the decode hot path.
func DecodeIntsBuf(br *bitstream.ByteReader, buf []int) ([]int, error) {
	return DecodeIntsTx(br, buf, nil)
}
