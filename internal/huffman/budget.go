package huffman

import (
	"github.com/mdz/mdz/internal/bitstream"
	"github.com/mdz/mdz/internal/budget"
)

// Budget-aware decode variants. Each reserves the stream's *claimed* sizes
// against tx before allocating for them, so a forged table or payload
// length is rejected with budget.ErrExceeded instead of ballooning into a
// huge allocation. A nil tx disables accounting, making the plain entry
// points (DecodeIntsBuf etc.) thin wrappers over these.
//
// Accounting is by claimed size, independent of buffer reuse: a pooled
// destination with spare capacity is charged the same as a fresh
// allocation, so acceptance is deterministic for a given input. Charges:
// 8 bytes per claimed int symbol, 1 per claimed byte symbol, and
// tableEntryCost per declared table entry (the symbol list, the
// symbol→length map or counting-sort scratch, and the entry's amortized
// share of the bounded LUT/subtables).

// tableEntryCost is the accounted bytes per declared code-table entry.
const tableEntryCost = 48

// readTableTx is ReadTable with the declared entry count charged to tx
// before the table is materialized.
func readTableTx(br *bitstream.ByteReader, tx *budget.Tx) (*Decoder, error) {
	if err := reserveTable(br, tx); err != nil {
		return nil, err
	}
	return ReadTable(br)
}

// ReadTableTx is DecodeScratch.ReadTable with the declared entry count
// charged to tx before parsing.
func (s *DecodeScratch) ReadTableTx(br *bitstream.ByteReader, tx *budget.Tx) (*Decoder, error) {
	if err := reserveTable(br, tx); err != nil {
		return nil, err
	}
	return s.ReadTable(br)
}

// reserveTable peeks the table's entry count by reading the leading
// uvarint and charges it, leaving br positioned after the count. It
// mirrors the count validation of the table parsers so a rejection here is
// byte-equivalent to one there.
func reserveTable(br *bitstream.ByteReader, tx *budget.Tx) error {
	if tx == nil {
		return nil
	}
	save := *br
	n, err := br.ReadUvarint()
	if err != nil {
		return err
	}
	*br = save
	if n > 1<<24 {
		return ErrCorrupt
	}
	return tx.Reserve(int64(n) * tableEntryCost)
}

// DecodeIntsTx is DecodeIntsBuf with budget accounting on tx.
func DecodeIntsTx(br *bitstream.ByteReader, buf []int, tx *budget.Tx) ([]int, error) {
	table, err := br.ReadSection()
	if err != nil {
		return nil, err
	}
	dec, err := readTableTx(bitstream.NewByteReader(table), tx)
	if err != nil {
		return nil, err
	}
	n, err := br.ReadUvarint()
	if err != nil {
		return nil, err
	}
	payload, err := br.ReadSection()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		if buf != nil {
			return buf[:0], nil
		}
		return []int{}, nil
	}
	if n > uint64(len(payload))*64+64 {
		return nil, ErrCorrupt
	}
	if err := tx.Reserve(8 * int64(n)); err != nil {
		return nil, err
	}
	return dec.DecodeAllBuf(bitstream.NewReader(payload), int(n), buf)
}

// DecodeInts2Tx is DecodeInts2Buf with budget accounting on tx.
func DecodeInts2Tx(br *bitstream.ByteReader, buf []int, tx *budget.Tx) ([]int, error) {
	table, err := br.ReadSection()
	if err != nil {
		return nil, err
	}
	dec, err := readTableTx(bitstream.NewByteReader(table), tx)
	if err != nil {
		return nil, err
	}
	n, err := br.ReadUvarint()
	if err != nil {
		return nil, err
	}
	p0, err := br.ReadSection()
	if err != nil {
		return nil, err
	}
	p1, err := br.ReadSection()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		if buf != nil {
			return buf[:0], nil
		}
		return []int{}, nil
	}
	if n > 1<<34 {
		return nil, ErrCorrupt
	}
	h := (n + 1) / 2
	if h > uint64(len(p0))*64+64 || n-h > uint64(len(p1))*64+64 {
		return nil, ErrCorrupt
	}
	if err := tx.Reserve(8 * int64(n)); err != nil {
		return nil, err
	}
	var out []int
	if cap(buf) >= int(n) {
		out = buf[:n]
	} else {
		out = make([]int, n)
	}
	if len(dec.symbols) == 0 {
		return nil, ErrCorrupt
	}
	dec.buildPair()
	if err := dec.decodeDual(bitstream.NewReader(p0), bitstream.NewReader(p1), out, int(h)); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeBytesTx is DecodeScratch.DecodeBytes with budget accounting on tx.
func (s *DecodeScratch) DecodeBytesTx(br *bitstream.ByteReader, buf []byte, tx *budget.Tx) ([]byte, error) {
	table, err := br.ReadSection()
	if err != nil {
		return nil, err
	}
	s.br.Reset(table)
	dec, err := s.ReadTableTx(&s.br, tx)
	if err != nil {
		return nil, err
	}
	n, err := br.ReadUvarint()
	if err != nil {
		return nil, err
	}
	payload, err := br.ReadSection()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		if buf != nil {
			return buf[:0], nil
		}
		return []byte{}, nil
	}
	if n > uint64(len(payload))*64+64 {
		return nil, ErrCorrupt
	}
	if err := tx.Reserve(int64(n)); err != nil {
		return nil, err
	}
	s.r.Reset(payload)
	return dec.DecodeAllBytesBuf(&s.r, int(n), buf)
}

// DecodeBytes2Tx is DecodeScratch.DecodeBytes2 with budget accounting on
// tx.
func (s *DecodeScratch) DecodeBytes2Tx(br *bitstream.ByteReader, buf []byte, tx *budget.Tx) ([]byte, error) {
	table, err := br.ReadSection()
	if err != nil {
		return nil, err
	}
	s.br.Reset(table)
	dec, err := s.ReadTableTx(&s.br, tx)
	if err != nil {
		return nil, err
	}
	n, err := br.ReadUvarint()
	if err != nil {
		return nil, err
	}
	p0, err := br.ReadSection()
	if err != nil {
		return nil, err
	}
	p1, err := br.ReadSection()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		if buf != nil {
			return buf[:0], nil
		}
		return []byte{}, nil
	}
	if n > 1<<34 {
		return nil, ErrCorrupt
	}
	h := (n + 1) / 2
	if h > uint64(len(p0))*64+64 || n-h > uint64(len(p1))*64+64 {
		return nil, ErrCorrupt
	}
	if err := tx.Reserve(int64(n)); err != nil {
		return nil, err
	}
	var out []byte
	if cap(buf) >= int(n) {
		out = buf[:n]
	} else {
		out = make([]byte, n)
	}
	if len(dec.symbols) == 0 {
		return nil, ErrCorrupt
	}
	dec.buildPair()
	s.r.Reset(p0)
	s.r2.Reset(p1)
	if err := dec.decodeDualBytes(&s.r, &s.r2, out, int(h)); err != nil {
		return nil, err
	}
	return out, nil
}
