package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1024); err == nil {
		t.Error("expected error for eb=0")
	}
	if _, err := New(-1, 1024); err == nil {
		t.Error("expected error for negative eb")
	}
	if _, err := New(math.Inf(1), 1024); err == nil {
		t.Error("expected error for infinite eb")
	}
	if _, err := New(1e-3, 2); err == nil {
		t.Error("expected error for tiny scale")
	}
	q, err := New(1e-3, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if q.ErrorBound() != 1e-3 || q.Scale() != 1024 {
		t.Errorf("accessors: eb=%v scale=%d", q.ErrorBound(), q.Scale())
	}
}

func TestQuantizeRoundTripBound(t *testing.T) {
	q, _ := New(0.01, 1024)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		pred := rng.NormFloat64() * 10
		d := pred + rng.NormFloat64() // residual mostly in scope
		code, recon, ok := q.Quantize(d, pred)
		if !ok {
			continue
		}
		if code == Reserved {
			t.Fatalf("in-scope value produced reserved code")
		}
		if got := q.Dequantize(code, pred); got != recon {
			t.Fatalf("Dequantize disagrees with Quantize recon: %v vs %v", got, recon)
		}
		if math.Abs(recon-d) > q.ErrorBound() {
			t.Fatalf("error bound violated: |%v-%v| = %v > %v", recon, d, math.Abs(recon-d), q.ErrorBound())
		}
	}
}

func TestOutOfScope(t *testing.T) {
	q, _ := New(0.001, 1024)
	// Residual of 10 is ~5000 bins: far out of the 1024 scale.
	code, recon, ok := q.Quantize(10.0, 0.0)
	if ok {
		t.Fatal("expected out-of-scope")
	}
	if code != Reserved {
		t.Errorf("out-of-scope code = %d, want Reserved", code)
	}
	if recon != 10.0 {
		t.Errorf("out-of-scope recon = %v, want exact value", recon)
	}
}

func TestNaNIsOutlier(t *testing.T) {
	q, _ := New(0.001, 1024)
	_, _, ok := q.Quantize(math.NaN(), 0.0)
	if ok {
		t.Error("NaN must be routed to outlier storage")
	}
	_, _, ok = q.Quantize(0, math.Inf(1))
	if ok {
		t.Error("Inf prediction must be routed to outlier storage")
	}
}

func TestZeroResidualIsMidCode(t *testing.T) {
	q, _ := New(0.5, 1024)
	code, recon, ok := q.Quantize(3.0, 3.0)
	if !ok || code != 512 || recon != 3.0 {
		t.Errorf("zero residual: code=%d recon=%v ok=%v", code, recon, ok)
	}
}

func TestPropertyErrorBound(t *testing.T) {
	f := func(dRaw, predRaw int32, ebExp uint8) bool {
		d := float64(dRaw) / 1000
		pred := float64(predRaw) / 1000
		eb := math.Pow(10, -float64(ebExp%7)) // 1 .. 1e-6
		q, err := New(eb, 1024)
		if err != nil {
			return false
		}
		code, recon, ok := q.Quantize(d, pred)
		if !ok {
			return recon == d // outlier path preserves value exactly
		}
		return math.Abs(q.Dequantize(code, pred)-d) <= eb && code > 0 && code < 1024
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestScaleBoundary(t *testing.T) {
	q, _ := New(1.0, 8) // bins: mid=4, maxMag=3, so residual in [-6,6] roughly
	// Residual exactly at max representable: k=3 -> code 7.
	code, _, ok := q.Quantize(6.0, 0.0)
	if !ok || code != 7 {
		t.Errorf("residual 6: code=%d ok=%v", code, ok)
	}
	// k=4 exceeds maxMag.
	if _, _, ok := q.Quantize(8.0, 0.0); ok {
		t.Error("residual 8 should be out of scope at scale 8")
	}
}

func TestAbsBound(t *testing.T) {
	if got := AbsBound(1e-3, 0, 100); got != 0.1 {
		t.Errorf("AbsBound = %v, want 0.1", got)
	}
	if got := AbsBound(1e-3, 5, 5); got != 1e-3 {
		t.Errorf("degenerate range AbsBound = %v, want 1e-3", got)
	}
}

func TestRange(t *testing.T) {
	lo, hi := Range([]float64{3, -1, math.NaN(), 7})
	if lo != -1 || hi != 7 {
		t.Errorf("Range = (%v,%v)", lo, hi)
	}
	lo, hi = Range([]float64{math.NaN()})
	if lo != 0 || hi != 0 {
		t.Errorf("all-NaN Range = (%v,%v)", lo, hi)
	}
	lo, hi = Range(nil)
	if lo != 0 || hi != 0 {
		t.Errorf("empty Range = (%v,%v)", lo, hi)
	}
}

func TestBoundedRoundTrip(t *testing.T) {
	cases := []struct {
		v, eb float64
	}{
		{0, 1e-3}, {1.5, 1e-3}, {-2.75, 1e-6}, {1e12, 1e-3}, {-1e12, 1e-3},
		{math.Pi, 1e-9}, {1e300, 1e-3}, {math.Inf(1), 1e-3}, {math.Inf(-1), 1e-3},
	}
	for _, c := range cases {
		buf := AppendBounded(nil, c.v, c.eb)
		got, n, err := ReadBounded(buf, c.eb)
		if err != nil {
			t.Fatalf("v=%v eb=%v: %v", c.v, c.eb, err)
		}
		if n != len(buf) {
			t.Fatalf("v=%v: consumed %d of %d bytes", c.v, n, len(buf))
		}
		if math.IsInf(c.v, 0) {
			if got != c.v {
				t.Fatalf("inf not preserved: %v", got)
			}
			continue
		}
		if math.Abs(got-c.v) > c.eb {
			t.Fatalf("v=%v eb=%v: recon %v exceeds bound", c.v, c.eb, got)
		}
		if want := BoundedRecon(c.v, c.eb); got != want {
			t.Fatalf("v=%v: BoundedRecon %v disagrees with decode %v", c.v, want, got)
		}
	}
}

func TestBoundedNaN(t *testing.T) {
	buf := AppendBounded(nil, math.NaN(), 1e-3)
	got, _, err := ReadBounded(buf, 1e-3)
	if err != nil || !math.IsNaN(got) {
		t.Fatalf("NaN round trip: %v %v", got, err)
	}
}

func TestBoundedCompactness(t *testing.T) {
	// Typical in-range outliers must cost far less than 8 raw bytes.
	buf := AppendBounded(nil, 3.14, 1e-3)
	if len(buf) > 3 {
		t.Errorf("small value encoded in %d bytes", len(buf))
	}
}

func TestBoundedPropertyRoundTrip(t *testing.T) {
	f := func(vRaw int64, ebExp uint8) bool {
		v := math.Float64frombits(uint64(vRaw))
		eb := math.Pow(10, -float64(ebExp%12)) // 1 .. 1e-11
		buf := AppendBounded(nil, v, eb)
		got, n, err := ReadBounded(buf, eb)
		if err != nil || n != len(buf) {
			return false
		}
		if math.IsNaN(v) {
			return math.IsNaN(got)
		}
		if math.IsInf(v, 0) {
			return got == v
		}
		return math.Abs(got-v) <= eb && got == BoundedRecon(v, eb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestBoundedTruncated(t *testing.T) {
	buf := AppendBounded(nil, 1e300, 1e-12) // raw path: flag + 8 bytes
	if _, _, err := ReadBounded(buf[:len(buf)-1], 1e-12); err == nil {
		t.Error("truncated raw encoding accepted")
	}
	if _, _, err := ReadBounded(nil, 1e-3); err == nil {
		t.Error("empty buffer accepted")
	}
}
