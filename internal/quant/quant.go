// Package quant implements the error-controlled linear-scale quantization
// stage shared by MDZ and the SZ-family baselines (paper §VI-C).
//
// A Quantizer maps a prediction residual r = d − pred to an integer bin
// code = round(r / (2·eb)); reconstruction is pred + code·2·eb, which keeps
// every decompressed value within the absolute error bound eb. Codes are
// biased by Scale/2 so the common near-zero residual lands mid-range, and
// residuals that fall outside the configured quantization scale are flagged
// as outliers (the paper's "out-of-scope" points): they carry the reserved
// code 0 and their exact value is stored separately.
package quant

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrShort is returned when a bounded-value decode runs out of input.
var ErrShort = errors.New("quant: short buffer")

// DefaultScale is the paper's chosen quantization scale: 1024 bins balances
// Huffman-tree size against the number of out-of-scope points (Fig 9).
const DefaultScale = 1024

// Reserved is the bin code that marks an out-of-scope (outlier) value.
const Reserved = 0

// Quantizer performs error-bounded linear-scale quantization with a fixed
// absolute error bound and scale. The zero value is not usable; use New.
type Quantizer struct {
	eb     float64 // absolute error bound
	twoEB  float64
	scale  int // number of bins, including the reserved code
	mid    int // bias: code for zero residual
	maxMag int // max |quantized| residual representable
}

// New returns a Quantizer with absolute error bound eb and the given scale
// (number of bins). Scale must be at least 4 and eb positive.
func New(eb float64, scale int) (*Quantizer, error) {
	if !(eb > 0) || math.IsInf(eb, 0) {
		return nil, fmt.Errorf("quant: error bound must be positive and finite, got %v", eb)
	}
	if scale < 4 {
		return nil, fmt.Errorf("quant: scale must be >= 4, got %d", scale)
	}
	mid := scale / 2
	return &Quantizer{
		eb:     eb,
		twoEB:  2 * eb,
		scale:  scale,
		mid:    mid,
		maxMag: mid - 1, // codes 1..scale-1 usable; 0 reserved
	}, nil
}

// ErrorBound returns the absolute error bound.
func (q *Quantizer) ErrorBound() float64 { return q.eb }

// Scale returns the configured number of bins.
func (q *Quantizer) Scale() int { return q.scale }

// Quantize maps value d with prediction pred to a bin code and the
// reconstructed (decompressed) value. ok is false when the residual is out
// of scope; the caller must then store d exactly and use code Reserved.
func (q *Quantizer) Quantize(d, pred float64) (code int, recon float64, ok bool) {
	r := d - pred
	k := math.Round(r / q.twoEB)
	if math.Abs(k) > float64(q.maxMag) || math.IsNaN(k) {
		return Reserved, d, false
	}
	recon = pred + k*q.twoEB
	// Floating-point rounding can nudge the reconstruction just past the
	// bound for extreme magnitudes; fall back to exact storage in that case.
	if math.Abs(recon-d) > q.eb || math.IsInf(recon, 0) {
		return Reserved, d, false
	}
	return int(k) + q.mid, recon, true
}

// Dequantize reconstructs a value from a bin code and prediction. The code
// must not be Reserved (outliers are restored from exact storage).
func (q *Quantizer) Dequantize(code int, pred float64) float64 {
	return pred + float64(code-q.mid)*q.twoEB
}

// IsReserved reports whether code marks an out-of-scope value.
func IsReserved(code int) bool { return code == Reserved }

// AbsBound converts a value-range-based relative error bound ε into the
// absolute bound value_range × ε used throughout the paper's evaluation.
func AbsBound(epsilon, lo, hi float64) float64 {
	r := hi - lo
	if r <= 0 {
		// Degenerate (constant) data: any positive bound works; use ε
		// against unit range so compression still proceeds.
		return epsilon
	}
	return epsilon * r
}

// AppendBounded appends a compact error-bounded encoding of v: the value is
// snapped to a 2·eb grid and stored as a varint grid index, mirroring the
// SZ family's truncated storage of unpredictable ("out-of-scope") data.
// Values that cannot be represented on the grid within eb (non-finite or
// extreme magnitudes) fall back to the exact 8-byte bit pattern behind a
// flag, so the bound always holds.
func AppendBounded(dst []byte, v, eb float64) []byte {
	if eb > 0 {
		k := math.Round(v / (2 * eb))
		if math.Abs(k) <= 1<<51 && !math.IsNaN(k) {
			recon := float64(int64(k)) * 2 * eb
			if math.Abs(recon-v) <= eb {
				u := uint64((int64(k)<<1)^(int64(k)>>63)) << 1 // zigzag, flag 0
				return binary.AppendUvarint(dst, u)
			}
		}
	}
	dst = binary.AppendUvarint(dst, 1) // flag 1: raw bits follow
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

// BoundedRecon returns the reconstruction that AppendBounded/ReadBounded
// will produce for v, letting encoders keep their state in lock-step with
// the decoder.
func BoundedRecon(v, eb float64) float64 {
	if eb > 0 {
		k := math.Round(v / (2 * eb))
		if math.Abs(k) <= 1<<51 && !math.IsNaN(k) {
			recon := float64(int64(k)) * 2 * eb
			if math.Abs(recon-v) <= eb {
				return recon
			}
		}
	}
	return v
}

// ReadBounded decodes a value written by AppendBounded, returning the value
// and the number of bytes consumed.
func ReadBounded(buf []byte, eb float64) (float64, int, error) {
	u, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, 0, ErrShort
	}
	if u&1 == 1 {
		if len(buf) < n+8 {
			return 0, 0, ErrShort
		}
		bits := binary.LittleEndian.Uint64(buf[n:])
		return math.Float64frombits(bits), n + 8, nil
	}
	z := u >> 1
	k := int64(z>>1) ^ -int64(z&1)
	return float64(k) * 2 * eb, n, nil
}

// Range scans values and returns (min, max). It ignores NaNs; if all values
// are NaN it returns (0, 0).
func Range(values []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo > hi {
		return 0, 0
	}
	return lo, hi
}
