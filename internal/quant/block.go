// Fused block kernels for the predict→quantize hot path. Each kernel makes
// a single pass over a snapshot row with zero function calls per value and
// writes bin codes directly in their serialized order via (base, stride)
// indexing — Seq-1 rows use stride 1, Seq-2 writes land pre-interleaved
// (base=t, stride=bs), eliminating the separate interleave pass.
//
// The floating-point operations and branch conditions replicate
// Quantizer.Quantize exactly (same expressions, same evaluation order), so
// a block encoded through these kernels is byte-identical to the historical
// per-value path. Out-of-scope values get code Reserved and recon[i] left
// as the original value; the caller restores them (exact storage via
// AppendBounded + BoundedRecon) in a follow-up pass over the row, keeping
// appends and byte-writing off the per-value loop. Legitimate codes are
// never Reserved, so a Reserved code in the output marks outliers
// unambiguously.
package quant

import (
	"math"

	"github.com/mdz/mdz/internal/predictor"
)

// QuantizeBlock quantizes data[i] against preds[i], writing the bin code to
// codes[base+i*stride] and the reconstruction to recon[i]. It returns the
// number of out-of-scope values (code Reserved, recon[i] = data[i]).
func (q *Quantizer) QuantizeBlock(data, preds []float64, codes []int, base, stride int, recon []float64) int {
	eb, twoEB, maxMag, mid := q.eb, q.twoEB, float64(q.maxMag), q.mid
	nOut := 0
	ci := base
	for i, d := range data {
		pred := preds[i]
		k := math.Round((d - pred) / twoEB)
		rec := pred + k*twoEB
		if math.Abs(k) > maxMag || math.IsNaN(k) || math.Abs(rec-d) > eb || math.IsInf(rec, 0) {
			codes[ci] = Reserved
			recon[i] = d
			nOut++
		} else {
			codes[ci] = int(k) + mid
			recon[i] = rec
		}
		ci += stride
	}
	return nOut
}

// QuantizeBlockTime is QuantizeBlock fused with previous-snapshot
// prediction: recon holds the reconstructed previous row on entry and the
// reconstructed current row on return, so time-chained encoding needs just
// one reconstruction buffer and no swap.
func (q *Quantizer) QuantizeBlockTime(data []float64, recon []float64, codes []int, base, stride int) int {
	eb, twoEB, maxMag, mid := q.eb, q.twoEB, float64(q.maxMag), q.mid
	nOut := 0
	ci := base
	for i, d := range data {
		pred := recon[i]
		k := math.Round((d - pred) / twoEB)
		rec := pred + k*twoEB
		if math.Abs(k) > maxMag || math.IsNaN(k) || math.Abs(rec-d) > eb || math.IsInf(rec, 0) {
			codes[ci] = Reserved
			recon[i] = d
			nOut++
		} else {
			codes[ci] = int(k) + mid
			recon[i] = rec
		}
		ci += stride
	}
	return nOut
}

// QuantizeBlockVQ fuses the VQ predictor (level index + centroid, paper
// Algorithm 1) with quantization: levels[i] receives the level-index delta
// chain (restarting at 0 for the row), codes and recon as in QuantizeBlock.
// Level deltas are emitted for out-of-scope values too, exactly like the
// per-value path.
func (q *Quantizer) QuantizeBlockVQ(data []float64, lam, mu float64, codes []int, base, stride int, levels []int, recon []float64) int {
	eb, twoEB, maxMag, mid := q.eb, q.twoEB, float64(q.maxMag), q.mid
	nOut := 0
	ci := base
	prevLevel := int64(0)
	for i, d := range data {
		// Inlined predictor.Level (too large for the compiler's inliner):
		// expressions must stay in lock-step with that function.
		l := math.Round((d - mu) / lam)
		if l > math.MaxInt32 {
			l = math.MaxInt32
		} else if l < math.MinInt32 {
			l = math.MinInt32
		}
		lvl := int64(l)
		pred := mu + lam*float64(lvl)
		levels[i] = int(lvl - prevLevel)
		prevLevel = lvl
		k := math.Round((d - pred) / twoEB)
		rec := pred + k*twoEB
		if math.Abs(k) > maxMag || math.IsNaN(k) || math.Abs(rec-d) > eb || math.IsInf(rec, 0) {
			codes[ci] = Reserved
			recon[i] = d
			nOut++
		} else {
			codes[ci] = int(k) + mid
			recon[i] = rec
		}
		ci += stride
	}
	return nOut
}

// DequantizeBlock reconstructs out[i] from codes[base+i*stride] and
// preds[i]. Reserved codes are counted and their out slots left untouched
// for the caller's outlier fix-up pass.
func (q *Quantizer) DequantizeBlock(codes []int, base, stride int, preds, out []float64) int {
	twoEB, mid := q.twoEB, q.mid
	nRes := 0
	ci := base
	for i := range out {
		if c := codes[ci]; c == Reserved {
			nRes++
		} else {
			out[i] = preds[i] + float64(c-mid)*twoEB
		}
		ci += stride
	}
	return nRes
}

// DequantizeBlockVQ is DequantizeBlock fused with the level-centroid
// predictor: levels[i] carries the row's level-index delta chain. The chain
// advances on Reserved codes too, mirroring the encoder.
func (q *Quantizer) DequantizeBlockVQ(codes []int, base, stride int, levels []int, lam, mu float64, out []float64) int {
	twoEB, mid := q.twoEB, q.mid
	nRes := 0
	ci := base
	prevLevel := int64(0)
	for i := range out {
		lvl := prevLevel + int64(levels[i])
		prevLevel = lvl
		if c := codes[ci]; c == Reserved {
			nRes++
		} else {
			// predictor.Centroid inlines; only Level (in QuantizeBlockVQ) is
			// large enough to need hand-fusing.
			out[i] = predictor.Centroid(lvl, lam, mu) + float64(c-mid)*twoEB
		}
		ci += stride
	}
	return nRes
}
