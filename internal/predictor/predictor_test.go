package predictor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLorenzo(t *testing.T) {
	if Lorenzo1D(3.5) != 3.5 {
		t.Error("Lorenzo1D")
	}
	if Lorenzo2D(1, 2, 0.5) != 2.5 {
		t.Error("Lorenzo2D")
	}
}

func TestLevelRoundTrip(t *testing.T) {
	lambda, mu := 2.0, 10.0
	for want := int64(-50); want <= 50; want++ {
		d := mu + lambda*float64(want) + 0.3 // within half a level
		level, centroid := Level(d, lambda, mu)
		if level != want {
			t.Fatalf("Level(%v) = %d, want %d", d, level, want)
		}
		if got := Centroid(level, lambda, mu); got != centroid {
			t.Fatalf("Centroid mismatch: %v vs %v", got, centroid)
		}
		if math.Abs(centroid-d) > lambda/2+1e-9 {
			t.Fatalf("centroid %v too far from %v", centroid, d)
		}
	}
}

func TestLevelNearestProperty(t *testing.T) {
	f := func(dRaw int32, lRaw uint8) bool {
		lambda := 0.5 + float64(lRaw%40)
		mu := -3.0
		d := float64(dRaw) / 100
		level, centroid := Level(d, lambda, mu)
		// The chosen centroid must be within λ/2 of d (nearest level).
		if math.Abs(centroid-d) > lambda/2+1e-9 {
			return false
		}
		// Neighbors cannot be closer.
		for _, nb := range []int64{level - 1, level + 1} {
			if math.Abs(Centroid(nb, lambda, mu)-d) < math.Abs(centroid-d)-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestLevelClamp(t *testing.T) {
	level, _ := Level(1e300, 1e-10, 0)
	if level != math.MaxInt32 {
		t.Errorf("positive overflow clamp: %d", level)
	}
	level, _ = Level(-1e300, 1e-10, 0)
	if level != math.MinInt32 {
		t.Errorf("negative overflow clamp: %d", level)
	}
}

func TestMeanAbsErrs(t *testing.T) {
	vals := []float64{0, 1, 3, 6}
	if got := MeanAbsErr1D(vals); got != 2 {
		t.Errorf("MeanAbsErr1D = %v, want 2", got)
	}
	if got := MeanAbsErr1D([]float64{5}); got != 0 {
		t.Errorf("single value err = %v", got)
	}
	cur := []float64{1, 2, 3}
	init := []float64{1, 1, 1}
	if got := MeanAbsErrSnapshot0(cur, init); got != 1 {
		t.Errorf("MeanAbsErrSnapshot0 = %v, want 1", got)
	}
	if got := MeanAbsErrTime(cur, init); got != 1 {
		t.Errorf("MeanAbsErrTime = %v, want 1", got)
	}
	if !math.IsNaN(MeanAbsErrSnapshot0(cur, []float64{1})) {
		t.Error("length mismatch should yield NaN")
	}
}
