// Package predictor provides the data-prediction primitives shared by MDZ
// and the SZ-family baselines (paper §III-B, §VI): spatial Lorenzo
// predictors, temporal previous-snapshot prediction, the snapshot-0
// (initial-time-based) prediction that powers MT, and the level-centroid
// prediction that powers VQ.
//
// All predictors operate on *reconstructed* (decompressed) values, never on
// originals, so compressor and decompressor stay in lock-step and error
// never accumulates beyond the bound.
package predictor

import "math"

// Lorenzo1D predicts a value from its immediate predecessor in the same
// snapshot (the classic 1-D Lorenzo predictor). prev is the reconstructed
// preceding value; the first element of a stream has no predecessor and is
// conventionally predicted as 0.
func Lorenzo1D(prev float64) float64 { return prev }

// Lorenzo2D predicts d[i][j] from reconstructed neighbors in a 2-D layout
// (snapshots × particles): left (same snapshot, previous particle), up
// (previous snapshot, same particle) and diagonal (previous snapshot,
// previous particle): left + up − diag.
func Lorenzo2D(left, up, diag float64) float64 { return left + up - diag }

// Time predicts a value from the reconstructed value of the same particle
// in the previous snapshot (paper's time-based predictor).
func Time(prevSnapshot float64) float64 { return prevSnapshot }

// Snapshot0 predicts a value from the reconstructed value of the same
// particle in the initial snapshot of the whole run (MT's
// initial-time-based prediction, paper §VI-B).
func Snapshot0(initial float64) float64 { return initial }

// Level computes the level index and centroid prediction of the VQ
// predictor for value d under the equal-distant level model (λ, μ):
// L = round((d−μ)/λ), V = μ + λ·L (paper Algorithm 1, lines 4-5).
func Level(d, lambda, mu float64) (level int64, centroid float64) {
	l := math.Round((d - mu) / lambda)
	// Clamp to a sane integer range; callers route pathological values to
	// outlier storage anyway.
	if l > math.MaxInt32 {
		l = math.MaxInt32
	} else if l < math.MinInt32 {
		l = math.MinInt32
	}
	level = int64(l)
	return level, mu + lambda*float64(level)
}

// Centroid returns the level-centroid value for an already-known level
// index (used on the decode path).
func Centroid(level int64, lambda, mu float64) float64 {
	return mu + lambda*float64(level)
}

// MeanAbsErr1D measures the mean absolute prediction error of the 1-D
// Lorenzo predictor over values (Table II's spatial column).
func MeanAbsErr1D(values []float64) float64 {
	if len(values) < 2 {
		return 0
	}
	var sum float64
	for i := 1; i < len(values); i++ {
		sum += math.Abs(values[i] - values[i-1])
	}
	return sum / float64(len(values)-1)
}

// MeanAbsErrSnapshot0 measures the mean absolute prediction error of
// snapshot-0 prediction: |cur[i] − initial[i]| averaged over particles
// (Table II's initial-time column).
func MeanAbsErrSnapshot0(cur, initial []float64) float64 {
	n := len(cur)
	if n == 0 || len(initial) != n {
		return math.NaN()
	}
	var sum float64
	for i := range cur {
		sum += math.Abs(cur[i] - initial[i])
	}
	return sum / float64(n)
}

// MeanAbsErrTime measures the mean absolute prediction error of
// previous-snapshot prediction.
func MeanAbsErrTime(cur, prev []float64) float64 {
	return MeanAbsErrSnapshot0(cur, prev)
}
