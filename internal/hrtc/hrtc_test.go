package hrtc_test

import (
	"errors"
	"math"
	"testing"

	"github.com/mdz/mdz/internal/codec"
	"github.com/mdz/mdz/internal/codec/codectest"
	"github.com/mdz/mdz/internal/hrtc"
)

func TestConformance(t *testing.T) {
	codectest.RunConformance(t, codec.FromBatch(&hrtc.Compressor{}))
}

func TestAtomLimitEmulation(t *testing.T) {
	c := &hrtc.Compressor{LimitAtoms: 5}
	big := [][]float64{make([]float64, 6)}
	if _, err := c.CompressSeries(big, 1e-3); !errors.Is(err, hrtc.ErrUnsupported) {
		t.Errorf("expected ErrUnsupported, got %v", err)
	}
	if hrtc.MaxAtoms != 100_000 {
		t.Errorf("MaxAtoms = %d; the paper's HRTC failed on Helium-A (106,711 atoms)", hrtc.MaxAtoms)
	}
}

func TestPiecewiseLinearExactOnLines(t *testing.T) {
	// Perfectly linear trajectories collapse to two knots per atom.
	bs, n := 50, 200
	batch := make([][]float64, bs)
	for t2 := range batch {
		snap := make([]float64, n)
		for i := range snap {
			snap[i] = float64(i) + 0.5*float64(t2)
		}
		batch[t2] = snap
	}
	c := &hrtc.Compressor{}
	blk, err := c.CompressSeries(batch, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	if len(blk) > bs*n {
		t.Errorf("linear trajectories compressed to %d B for %d values", len(blk), bs*n)
	}
	got, err := c.DecompressSeries(blk)
	if err != nil {
		t.Fatal(err)
	}
	for t2 := range batch {
		for i := range batch[t2] {
			if e := math.Abs(got[t2][i] - batch[t2][i]); e > 1e-2 {
				t.Fatalf("error %v at (%d,%d)", e, t2, i)
			}
		}
	}
}

func TestSingleSnapshot(t *testing.T) {
	c := &hrtc.Compressor{}
	blk, err := c.CompressSeries([][]float64{{3.25, -1.5}}, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.DecompressSeries(blk)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0][0]-3.25) > 1e-3 || math.Abs(got[0][1]+1.5) > 1e-3 {
		t.Errorf("single snapshot: %v", got[0])
	}
}

func TestCorrupt(t *testing.T) {
	c := &hrtc.Compressor{}
	blk, err := c.CompressSeries([][]float64{{1, 2}, {1.1, 2.1}, {1.2, 2.2}}, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 3, len(blk) - 2} {
		if _, err := c.DecompressSeries(blk[:cut]); err == nil {
			t.Errorf("prefix %d accepted", cut)
		}
	}
}
