// Package hrtc reimplements the HRTC trajectory compressor baseline (Huwald
// et al., "Compressing molecular dynamics trajectories: breaking the
// one-bit-per-sample barrier"): each atom's per-axis trajectory within a
// buffer is approximated by a greedy piecewise-linear function whose
// interpolation error stays within the bound; segment endpoints are
// quantized and stored as variable-length integers.
//
// The paper reports HRTC runtime exceptions on Copper-A, Helium-A, Pt and
// LJ — every dataset above ~10⁵ atoms; CompressSeries reproduces that
// behavior by returning ErrUnsupported above MaxAtoms.
package hrtc

import (
	"errors"
	"fmt"
	"math"

	"github.com/mdz/mdz/internal/bitstream"
	"github.com/mdz/mdz/internal/lossless"
)

// MaxAtoms is the emulated per-frame atom limit; the smallest dataset HRTC
// failed on in the paper was Helium-A with 106,711 atoms.
const MaxAtoms = 100_000

// ErrUnsupported reproduces HRTC's runtime exception on oversized frames.
var ErrUnsupported = errors.New("hrtc: atom count exceeds supported limit")

// ErrCorrupt is returned for malformed blocks.
var ErrCorrupt = errors.New("hrtc: corrupt block")

// Compressor is a stateless per-batch HRTC-style codec.
type Compressor struct {
	// Backend overrides the final lossless stage (default lossless.LZ).
	Backend lossless.Backend
	// LimitAtoms overrides MaxAtoms for testing; 0 selects MaxAtoms.
	LimitAtoms int
}

// Name implements the benchmark Codec naming convention.
func (c *Compressor) Name() string { return "HRTC" }

func (c *Compressor) backend() lossless.Backend {
	if c.Backend == nil {
		return lossless.LZ{}
	}
	return c.Backend
}

func (c *Compressor) limit() int {
	if c.LimitAtoms > 0 {
		return c.LimitAtoms
	}
	return MaxAtoms
}

const blockMagic = "HRTB"

// CompressSeries compresses one axis batch under absolute error bound eb.
// The piecewise-linear fit runs along each atom's time series; endpoints
// are quantized to an eb/2 grid so interpolation error plus quantization
// error stays within eb.
func (c *Compressor) CompressSeries(batch [][]float64, eb float64) ([]byte, error) {
	if len(batch) == 0 {
		return nil, errors.New("hrtc: empty batch")
	}
	n := len(batch[0])
	if n > c.limit() {
		return nil, ErrUnsupported
	}
	for i, s := range batch {
		if len(s) != n {
			return nil, fmt.Errorf("hrtc: snapshot %d has %d values, want %d", i, len(s), n)
		}
	}
	if !(eb > 0) {
		return nil, errors.New("hrtc: error bound must be positive")
	}
	bs := len(batch)
	// Endpoints are quantized to half-bound cells; linear fitting then gets
	// the other half of the budget.
	qStep := eb / 2
	fitTol := eb / 2
	var body []byte // per atom: varint segment count, then (dt, qvalue delta) pairs
	var raw []byte  // escape storage for non-finite / overflow values
	for i := 0; i < n; i++ {
		series := make([]float64, bs)
		ok := true
		for t := 0; t < bs; t++ {
			series[t] = batch[t][i]
			// Escape non-finite values and any value whose quantized knot
			// reconstruction would violate the endpoint error budget (float
			// rounding at extreme magnitudes, or index overflow).
			v := series[t]
			if math.IsNaN(v) || math.Abs(v) > float64(uint64(1)<<51)*qStep ||
				math.Abs(math.Round(v/qStep)*qStep-v) > eb/2 {
				ok = false
			}
		}
		if !ok {
			// Whole-series escape: store exactly.
			body = bitstream.AppendUvarint(body, 0)
			for t := 0; t < bs; t++ {
				raw = bitstream.AppendFloat64(raw, series[t])
			}
			continue
		}
		segs := fitPiecewiseLinear(series, fitTol, qStep)
		body = bitstream.AppendUvarint(body, uint64(len(segs)))
		prevQ := int64(0)
		prevT := 0
		for si, sg := range segs {
			dt := sg.t - prevT
			if si == 0 {
				dt = sg.t // first knot is at t=0 anyway
			}
			body = bitstream.AppendUvarint(body, uint64(dt))
			body = bitstream.AppendVarint(body, sg.q-prevQ)
			prevQ = sg.q
			prevT = sg.t
		}
	}
	var payload []byte
	payload = bitstream.AppendSection(payload, body)
	payload = bitstream.AppendSection(payload, raw)
	compressed, err := c.backend().Compress(payload)
	if err != nil {
		return nil, err
	}
	out := append([]byte{}, blockMagic...)
	out = bitstream.AppendFloat64(out, eb)
	out = bitstream.AppendUvarint(out, uint64(bs))
	out = bitstream.AppendUvarint(out, uint64(n))
	out = bitstream.AppendSection(out, compressed)
	return out, nil
}

// knot is a quantized trajectory breakpoint.
type knot struct {
	t int   // snapshot index
	q int64 // quantized value (units of qStep)
}

// fitPiecewiseLinear greedily extends segments between quantized knots
// while every intermediate sample stays within tol of the interpolant.
// Knot quantization error is bounded by qStep/2.
func fitPiecewiseLinear(series []float64, tol, qStep float64) []knot {
	quantize := func(v float64) int64 { return int64(math.Round(v / qStep)) }
	value := func(q int64) float64 { return float64(q) * qStep }
	knots := []knot{{t: 0, q: quantize(series[0])}}
	start := 0
	for start < len(series)-1 {
		startV := value(knots[len(knots)-1].q)
		end := start + 1
		// Extend as far as interpolation holds.
		for cand := start + 2; cand < len(series); cand++ {
			candV := value(quantize(series[cand]))
			good := true
			for m := start + 1; m < cand; m++ {
				frac := float64(m-start) / float64(cand-start)
				interp := startV + frac*(candV-startV)
				if math.Abs(interp-series[m]) > tol {
					good = false
					break
				}
			}
			if !good {
				break
			}
			end = cand
		}
		knots = append(knots, knot{t: end, q: quantize(series[end])})
		start = end
	}
	return knots
}

// DecompressSeries inverts CompressSeries.
func (c *Compressor) DecompressSeries(blk []byte) ([][]float64, error) {
	br := bitstream.NewByteReader(blk)
	magic, err := br.ReadBytes(4)
	if err != nil || string(magic) != blockMagic {
		return nil, ErrCorrupt
	}
	eb, err := br.ReadFloat64()
	if err != nil {
		return nil, err
	}
	bs64, err := br.ReadUvarint()
	if err != nil {
		return nil, err
	}
	n64, err := br.ReadUvarint()
	if err != nil {
		return nil, err
	}
	bs, n := int(bs64), int(n64)
	if bs <= 0 || n < 0 || uint64(bs)*uint64(n) > 1<<33 || !(eb > 0) {
		return nil, ErrCorrupt
	}
	compressed, err := br.ReadSection()
	if err != nil {
		return nil, err
	}
	payload, err := c.backend().Decompress(compressed)
	if err != nil {
		return nil, err
	}
	pr := bitstream.NewByteReader(payload)
	body, err := pr.ReadSection()
	if err != nil {
		return nil, err
	}
	raw, err := pr.ReadSection()
	if err != nil {
		return nil, err
	}
	bodyR := bitstream.NewByteReader(body)
	rawR := bitstream.NewByteReader(raw)
	qStep := eb / 2
	out := make([][]float64, bs)
	for t := range out {
		out[t] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		nSegs, err := bodyR.ReadUvarint()
		if err != nil {
			return nil, err
		}
		if nSegs == 0 {
			for t := 0; t < bs; t++ {
				v, err := rawR.ReadFloat64()
				if err != nil {
					return nil, ErrCorrupt
				}
				out[t][i] = v
			}
			continue
		}
		if nSegs > uint64(bs) {
			return nil, ErrCorrupt
		}
		knots := make([]knot, nSegs)
		prevQ := int64(0)
		prevT := 0
		for k := range knots {
			dt, err := bodyR.ReadUvarint()
			if err != nil {
				return nil, err
			}
			dq, err := bodyR.ReadVarint()
			if err != nil {
				return nil, err
			}
			knots[k] = knot{t: prevT + int(dt), q: prevQ + dq}
			prevT = knots[k].t
			prevQ = knots[k].q
			if knots[k].t >= bs {
				return nil, ErrCorrupt
			}
		}
		// Reconstruct by linear interpolation between knots.
		for k := 0; k+1 < len(knots); k++ {
			a, b := knots[k], knots[k+1]
			va, vb := float64(a.q)*qStep, float64(b.q)*qStep
			span := b.t - a.t
			if span <= 0 {
				return nil, ErrCorrupt
			}
			for t := a.t; t <= b.t; t++ {
				frac := float64(t-a.t) / float64(span)
				out[t][i] = va + frac*(vb-va)
			}
		}
		if len(knots) == 1 {
			out[knots[0].t][i] = float64(knots[0].q) * qStep
		}
	}
	return out, nil
}
