package sz3_test

import (
	"testing"

	"github.com/mdz/mdz/internal/codec"
	"github.com/mdz/mdz/internal/codec/codectest"
	"github.com/mdz/mdz/internal/sz3"
)

func TestConformance(t *testing.T) {
	codectest.RunConformance(t, codec.FromBatch(&sz3.Compressor{}))
}

func TestName(t *testing.T) {
	if (&sz3.Compressor{}).Name() != "SZ3i" {
		t.Error("name")
	}
}

func TestInterpolationHelpsSmoothTimeSeries(t *testing.T) {
	// Smooth per-particle trajectories: interpolation residuals vanish.
	bs, n := 32, 500
	batch := make([][]float64, bs)
	for t2 := range batch {
		snap := make([]float64, n)
		for i := range snap {
			snap[i] = float64(i)*3 + 0.1*float64(t2)*float64(t2)/float64(bs)
		}
		batch[t2] = snap
	}
	c := &sz3.Compressor{}
	blk, err := c.CompressSeries(batch, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if len(blk) > bs*n {
		t.Errorf("smooth series compressed to %d B for %d values", len(blk), bs*n)
	}
}

func TestCorrupt(t *testing.T) {
	c := &sz3.Compressor{}
	blk, err := c.CompressSeries([][]float64{{1, 2}, {1.5, 2.5}, {2, 3}}, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 3, len(blk) - 2} {
		if _, err := c.DecompressSeries(blk[:cut]); err == nil {
			t.Errorf("prefix %d accepted", cut)
		}
	}
}
