package sz3

import (
	"testing"
	"testing/quick"
)

func TestInterpOrderCoversAllIndices(t *testing.T) {
	for m := 1; m <= 64; m++ {
		order, pa, pb := interpOrder(m)
		if len(order) != m {
			t.Fatalf("m=%d: schedule covers %d indices", m, len(order))
		}
		seen := make([]bool, m)
		for _, idx := range order {
			if idx < 0 || idx >= m {
				t.Fatalf("m=%d: index %d out of range", m, idx)
			}
			if seen[idx] {
				t.Fatalf("m=%d: index %d scheduled twice", m, idx)
			}
			// Predictors must already be reconstructed (appear earlier).
			for _, p := range []int{pa[idx], pb[idx]} {
				if p >= 0 && !seen[p] {
					t.Fatalf("m=%d: index %d predicted from unseen %d", m, idx, p)
				}
			}
			seen[idx] = true
		}
	}
}

func TestInterpOrderProperty(t *testing.T) {
	f := func(mRaw uint8) bool {
		m := int(mRaw)%200 + 1
		order, _, _ := interpOrder(m)
		if len(order) != m {
			return false
		}
		seen := map[int]bool{}
		for _, i := range order {
			if seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
