// Package sz3 implements an interpolation-based error-bounded compressor in
// the style of SZ3 / SZ-Interp (Zhao et al., ICDE 2021 — the paper's
// reference [31]). It is not part of the paper's comparison set (the paper
// cites prior work showing interpolation compressors are sub-optimal on MD
// data because they rely on smoothness along the interpolated dimension);
// it is included as an extension baseline so that claim can be checked
// directly (experiment "ext1").
//
// Mechanism: per particle time series, a multi-level cubic/linear
// interpolation cascade predicts each point from already-reconstructed
// points at coarser strides (level ℓ predicts odd multiples of 2^ℓ from
// neighbors at 2^(ℓ+1)); residuals go through the standard linear-scale
// quantization + Huffman + dictionary pipeline.
package sz3

import (
	"errors"
	"fmt"
	"sync"

	"github.com/mdz/mdz/internal/bitstream"
	"github.com/mdz/mdz/internal/huffman"
	"github.com/mdz/mdz/internal/lossless"
	"github.com/mdz/mdz/internal/quant"
)

// ErrCorrupt is returned for malformed blocks.
var ErrCorrupt = errors.New("sz3: corrupt block")

// Compressor is a stateless per-batch interpolation codec.
type Compressor struct {
	// QuantScale overrides the quantization interval count (default 65536).
	QuantScale int
	// Backend overrides the final lossless stage (default lossless.LZ).
	Backend lossless.Backend
}

// Name implements the benchmark Codec naming convention.
func (c *Compressor) Name() string { return "SZ3i" }

func (c *Compressor) backend() lossless.Backend {
	if c.Backend == nil {
		return lossless.LZ{}
	}
	return c.Backend
}

func (c *Compressor) scale() int {
	if c.QuantScale <= 0 {
		return 65536
	}
	return c.QuantScale
}

const blockMagic = "SZ3B"

// huffScratchPool and decBinsPool recycle Huffman encoder state and decoded
// bin buffers across calls, keeping per-series table and symbol-buffer
// allocations off the steady-state path.
var (
	huffScratchPool = sync.Pool{New: func() any { return new(huffman.Scratch) }}
	decBinsPool     = sync.Pool{New: func() any { return new([]int) }}
)

// interpOrder enumerates, for a series of length m, the prediction schedule:
// anchors at the coarsest stride are predicted from their predecessors, then
// each finer level interpolates midpoints from reconstructed neighbors.
//
// For every index it returns (a, b): the indices whose reconstructed values
// predict it (b < 0 means single-point prediction from a; a < 0 means no
// prediction, i.e. the very first anchor predicted as 0).
func interpOrder(m int) (order []int, pa, pb []int) {
	pa = make([]int, m)
	pb = make([]int, m)
	for i := range pa {
		pa[i], pb[i] = -1, -1
	}
	// Coarsest power-of-two stride <= m.
	stride := 1
	for stride*2 < m {
		stride *= 2
	}
	// Anchors: 0, stride, 2*stride... predicted from the previous anchor.
	prev := -1
	for i := 0; i < m; i += stride {
		order = append(order, i)
		pa[i] = prev
		prev = i
	}
	// Refinement levels.
	for s := stride; s >= 2; s /= 2 {
		half := s / 2
		for i := half; i < m; i += s {
			order = append(order, i)
			lo := i - half
			hi := i + half
			if hi >= m {
				// Right edge: extrapolate from the left neighbor only.
				pa[i] = lo
			} else {
				pa[i], pb[i] = lo, hi
			}
		}
	}
	return order, pa, pb
}

// predict computes the interpolation prediction for index i given the
// reconstruction buffer.
func predict(recon []float64, i, a, b int) float64 {
	switch {
	case a < 0:
		return 0
	case b < 0:
		return recon[a]
	default:
		return (recon[a] + recon[b]) / 2
	}
}

// CompressSeries compresses one axis batch under absolute error bound eb.
// Interpolation runs along each particle's time dimension (the layout that
// favors interpolation most on trajectory data).
func (c *Compressor) CompressSeries(batch [][]float64, eb float64) ([]byte, error) {
	if len(batch) == 0 {
		return nil, errors.New("sz3: empty batch")
	}
	n := len(batch[0])
	for i, s := range batch {
		if len(s) != n {
			return nil, fmt.Errorf("sz3: snapshot %d has %d values, want %d", i, len(s), n)
		}
	}
	q, err := quant.New(eb, c.scale())
	if err != nil {
		return nil, err
	}
	bs := len(batch)
	order, pa, pb := interpOrder(bs)
	bins := make([]int, 0, bs*n)
	var outliers []byte
	series := make([]float64, bs)
	recon := make([]float64, bs)
	for i := 0; i < n; i++ {
		for t := 0; t < bs; t++ {
			series[t] = batch[t][i]
		}
		for _, t := range order {
			pred := predict(recon, t, pa[t], pb[t])
			code, r, ok := q.Quantize(series[t], pred)
			if !ok {
				outliers = quant.AppendBounded(outliers, series[t], eb)
				r = quant.BoundedRecon(series[t], eb)
				code = quant.Reserved
			}
			bins = append(bins, code)
			recon[t] = r
		}
	}
	var payload []byte
	hs := huffScratchPool.Get().(*huffman.Scratch)
	payload, err = hs.EncodeInts(payload, bins)
	huffScratchPool.Put(hs)
	if err != nil {
		return nil, err
	}
	payload = bitstream.AppendSection(payload, outliers)
	compressed, err := c.backend().Compress(payload)
	if err != nil {
		return nil, err
	}
	out := append([]byte{}, blockMagic...)
	out = bitstream.AppendFloat64(out, eb)
	out = bitstream.AppendUvarint(out, uint64(c.scale()))
	out = bitstream.AppendUvarint(out, uint64(bs))
	out = bitstream.AppendUvarint(out, uint64(n))
	out = bitstream.AppendSection(out, compressed)
	return out, nil
}

// DecompressSeries inverts CompressSeries.
func (c *Compressor) DecompressSeries(blk []byte) ([][]float64, error) {
	br := bitstream.NewByteReader(blk)
	magic, err := br.ReadBytes(4)
	if err != nil || string(magic) != blockMagic {
		return nil, ErrCorrupt
	}
	eb, err := br.ReadFloat64()
	if err != nil {
		return nil, err
	}
	scale, err := br.ReadUvarint()
	if err != nil {
		return nil, err
	}
	bs64, err := br.ReadUvarint()
	if err != nil {
		return nil, err
	}
	n64, err := br.ReadUvarint()
	if err != nil {
		return nil, err
	}
	bs, n := int(bs64), int(n64)
	if bs <= 0 || n < 0 || uint64(bs)*uint64(n) > 1<<33 {
		return nil, ErrCorrupt
	}
	q, err := quant.New(eb, int(scale))
	if err != nil {
		return nil, ErrCorrupt
	}
	compressed, err := br.ReadSection()
	if err != nil {
		return nil, err
	}
	payload, err := c.backend().Decompress(compressed)
	if err != nil {
		return nil, err
	}
	pr := bitstream.NewByteReader(payload)
	bp := decBinsPool.Get().(*[]int)
	defer decBinsPool.Put(bp)
	bins, err := huffman.DecodeIntsBuf(pr, *bp)
	if err != nil {
		return nil, err
	}
	*bp = bins
	outliers, err := pr.ReadSection()
	if err != nil {
		return nil, err
	}
	if len(bins) != bs*n {
		return nil, ErrCorrupt
	}
	order, pa, pb := interpOrder(bs)
	opos := 0
	out := make([][]float64, bs)
	for t := range out {
		out[t] = make([]float64, n)
	}
	recon := make([]float64, bs)
	idx := 0
	for i := 0; i < n; i++ {
		for _, t := range order {
			pred := predict(recon, t, pa[t], pb[t])
			code := bins[idx]
			idx++
			if quant.IsReserved(code) {
				v, n2, err := quant.ReadBounded(outliers[opos:], eb)
				if err != nil {
					return nil, ErrCorrupt
				}
				opos += n2
				recon[t] = v
			} else {
				recon[t] = q.Dequantize(code, pred)
			}
		}
		for t := 0; t < bs; t++ {
			out[t][i] = recon[t]
		}
	}
	return out, nil
}
