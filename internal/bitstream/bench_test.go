package bitstream

import (
	"math/rand"
	"testing"
)

// BenchmarkWriterWriteBits measures the word-at-a-time bit writer on a mix
// of widths typical of Huffman output (mostly short codes, some long).
func BenchmarkWriterWriteBits(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	widths := make([]uint, 1<<14)
	vals := make([]uint64, len(widths))
	total := 0
	for i := range widths {
		w := uint(3 + rng.Intn(14))
		widths[i] = w
		vals[i] = rng.Uint64() & ((1 << w) - 1)
		total += int(w)
	}
	b.SetBytes(int64(total / 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := &Writer{}
		for j, n := range widths {
			w.WriteBits(vals[j], n)
		}
		if len(w.Bytes()) == 0 {
			b.Fatal("empty output")
		}
	}
}

// BenchmarkReaderReadBits measures the word-buffered reader over the same
// width mix, including refill and straddle handling.
func BenchmarkReaderReadBits(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	widths := make([]uint, 1<<14)
	w := &Writer{}
	total := 0
	for i := range widths {
		n := uint(3 + rng.Intn(14))
		widths[i] = n
		w.WriteBits(rng.Uint64()&((1<<n)-1), n)
		total += int(n)
	}
	buf := w.Bytes()
	b.SetBytes(int64(total / 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(buf)
		for _, n := range widths {
			if _, err := r.ReadBits(n); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkReaderPeekSkip measures the Peek+Skip pattern the table-driven
// Huffman decoder leans on.
func BenchmarkReaderPeekSkip(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	buf := make([]byte, 1<<14)
	rng.Read(buf)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(buf)
		for r.BitsRemaining() >= 16 {
			bits, _ := r.Peek(11)
			if err := r.Skip(5 + uint(bits&7)); err != nil {
				b.Fatal(err)
			}
		}
	}
}
