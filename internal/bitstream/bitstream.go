// Package bitstream provides low-level bit- and byte-oriented encoding
// primitives shared by every codec in this repository: an MSB-first bit
// writer/reader, unsigned varints, and zigzag transforms for signed
// integers.
//
// All codecs in this module serialize multi-byte scalars little-endian and
// bits MSB-first within a byte, so streams are portable across platforms.
package bitstream

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrShortStream is returned when a reader runs out of input mid-value.
var ErrShortStream = errors.New("bitstream: unexpected end of stream")

// Writer accumulates bits MSB-first into an in-memory buffer. Bits are
// packed into a 64-bit accumulator and flushed eight bytes at a time, so
// WriteBits performs no per-bit (or per-byte) work on the hot path. The
// wire format is unchanged from the historical byte-at-a-time writer:
// MSB-first bits, zero padding on Align/Bytes.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	cur  uint64 // pending bits, right-aligned (low nbit bits valid)
	nbit uint   // number of pending bits in cur (< 64)
}

// NewWriter returns a Writer with capacity preallocated for n bytes.
func NewWriter(n int) *Writer {
	return &Writer{buf: make([]byte, 0, n)}
}

// WriteBit appends a single bit (0 or 1).
func (w *Writer) WriteBit(b uint) {
	w.WriteBits(uint64(b&1), 1)
}

// WriteBits appends the low n bits of v, MSB first. n must be <= 64.
func (w *Writer) WriteBits(v uint64, n uint) {
	if n == 0 {
		return
	}
	if n < 64 {
		v &= (1 << n) - 1
	}
	if free := 64 - w.nbit; n > free {
		// Top up the accumulator with the high `free` bits of v, flush the
		// full word, and start a fresh accumulator with the remainder.
		// (free can be 0 here only if nbit were 64, which never survives a
		// WriteBits call, so the shifts below are well defined.)
		w.cur = (w.cur << free) | (v >> (n - free))
		w.buf = binary.BigEndian.AppendUint64(w.buf, w.cur)
		n -= free
		w.cur = v & ((1 << n) - 1)
		w.nbit = n
		return
	}
	w.cur = (w.cur << n) | v
	w.nbit += n
	if w.nbit == 64 {
		w.buf = binary.BigEndian.AppendUint64(w.buf, w.cur)
		w.cur, w.nbit = 0, 0
	}
}

// WriteUnary appends v as a unary code: v one-bits followed by a zero bit.
func (w *Writer) WriteUnary(v uint64) {
	for v >= 32 {
		w.WriteBits(math.MaxUint32, 32)
		v -= 32
	}
	if v > 0 {
		w.WriteBits((1<<v)-1, uint(v))
	}
	w.WriteBit(0)
}

// Align pads the stream with zero bits up to the next byte boundary.
func (w *Writer) Align() {
	if w.nbit == 0 {
		return
	}
	if pad := w.nbit % 8; pad != 0 {
		w.cur <<= 8 - pad
		w.nbit += 8 - pad
	}
	for w.nbit > 0 {
		w.nbit -= 8
		w.buf = append(w.buf, byte(w.cur>>w.nbit))
	}
	w.cur = 0
}

// Bytes flushes any partial byte (zero padded) and returns the encoded
// buffer. The Writer remains usable; subsequent writes start byte-aligned.
func (w *Writer) Bytes() []byte {
	w.Align()
	return w.buf
}

// BitLen reports the total number of bits written so far.
func (w *Writer) BitLen() int {
	return len(w.buf)*8 + int(w.nbit)
}

// Reset truncates the writer for reuse.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur, w.nbit = 0, 0
}

// Reader consumes bits MSB-first from a byte slice. It maintains a 64-bit
// bit buffer refilled a word at a time from the input, so Peek and Skip on
// buffered bits compile down to shifts and masks with no per-bit branching.
type Reader struct {
	buf  []byte
	pos  int    // next unread byte index (bytes before pos are buffered in cur)
	cur  uint64 // bit buffer: the next stream bit is bit 63; bits below nbit are zero
	nbit uint   // number of valid (top-aligned) bits in cur, <= 64
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// Reset repositions the Reader at the start of buf, discarding all state.
// It lets long-lived (pooled) readers avoid a per-use allocation.
func (r *Reader) Reset(buf []byte) {
	r.buf = buf
	r.pos = 0
	r.cur, r.nbit = 0, 0
}

// Fill tops up the 64-bit bit buffer from the input and reports the number
// of buffered bits now available (at least 57 unless the input is nearly
// exhausted). Callers that batch-decode can Fill once and then use PeekFast
// and SkipFast, which perform no refill or bounds checks of their own.
func (r *Reader) Fill() uint {
	if r.pos+8 <= len(r.buf) {
		// Insert as many whole bytes from a single 8-byte load as fit above
		// the valid region, keeping the below-nbit bits zero.
		w := binary.BigEndian.Uint64(r.buf[r.pos:])
		free := 64 - r.nbit
		take := free &^ 7 // whole bytes only
		r.cur |= (w >> (64 - take) << (free - take))
		r.pos += int(take >> 3)
		r.nbit += take
		return r.nbit
	}
	for r.nbit <= 56 && r.pos < len(r.buf) {
		r.cur |= uint64(r.buf[r.pos]) << (56 - r.nbit)
		r.pos++
		r.nbit += 8
	}
	return r.nbit
}

// Buffered reports the number of bits currently held in the bit buffer
// (consumable via PeekFast/SkipFast without a Fill).
func (r *Reader) Buffered() uint { return r.nbit }

// Ensure reports whether at least need bits are (or can be made) available in
// the bit buffer, filling it only when necessary. It is the per-lane refill
// gate of the dual-stream (format v3) entropy decoders, which interleave two
// Readers and must check both lanes before each register-resident burst.
func (r *Reader) Ensure(need uint) bool {
	return r.nbit >= need || r.Fill() >= need
}

// BitState exposes the raw bit buffer (next stream bit at bit 63, bits below
// nbit zero) so batch decoders can peek and consume in registers instead of
// through pointer loads. Pair with SetBitState to write the advanced state
// back before any other Reader method runs.
func (r *Reader) BitState() (cur uint64, nbit uint) { return r.cur, r.nbit }

// SetBitState writes back a bit-buffer state previously obtained from
// BitState and advanced only by left-shifting cur while decrementing nbit by
// the same amount (which preserves the bits-below-nbit-are-zero invariant).
func (r *Reader) SetBitState(cur uint64, nbit uint) { r.cur, r.nbit = cur, nbit }

// BitsRemaining reports the total number of unread bits, buffered or not.
func (r *Reader) BitsRemaining() int {
	return (len(r.buf)-r.pos)*8 + int(r.nbit)
}

// PeekFast returns the next n bits MSB-first and right-aligned without
// consuming them. It performs no refill and no bounds checks: the caller
// must ensure 0 < n <= Buffered() (typically by calling Fill first).
func (r *Reader) PeekFast(n uint) uint64 {
	return r.cur >> (64 - n)
}

// SkipFast consumes n bits without any checks: the caller must ensure
// n <= Buffered().
func (r *Reader) SkipFast(n uint) {
	r.cur <<= n
	r.nbit -= n
}

// drain consumes all remaining input, mirroring the historical reader's
// state after a short read (everything consumed, then ErrShortStream).
func (r *Reader) drain() {
	r.pos = len(r.buf)
	r.cur, r.nbit = 0, 0
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.nbit == 0 && r.Fill() == 0 {
		return 0, ErrShortStream
	}
	v := uint(r.cur >> 63)
	r.cur <<= 1
	r.nbit--
	return v, nil
}

// ReadBits reads n bits (n <= 64) MSB-first and returns them right-aligned.
// If fewer than n bits remain, the reader consumes them all and returns
// ErrShortStream.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n == 0 {
		return 0, nil
	}
	if r.nbit < n && r.Fill() < n {
		return r.readBitsStraddle(n)
	}
	v := r.cur >> (64 - n)
	r.cur <<= n
	r.nbit -= n
	return v, nil
}

// readBitsStraddle handles the rare case where a wide unaligned read cannot
// be served from the 64-bit buffer alone (a byte-granular refill tops out at
// 57-63 buffered bits): it consumes the buffered bits, refills, and splices.
func (r *Reader) readBitsStraddle(n uint) (uint64, error) {
	if r.BitsRemaining() < int(n) {
		r.drain()
		return 0, ErrShortStream
	}
	take := r.nbit
	hi := uint64(0)
	if take > 0 {
		hi = r.cur >> (64 - take)
	}
	r.cur, r.nbit = 0, 0
	r.Fill()
	rem := n - take // <= 7: the straddle only occurs with >= 57 bits buffered
	lo := r.cur >> (64 - rem)
	r.cur <<= rem
	r.nbit -= rem
	return hi<<rem | lo, nil
}

// Peek returns the next n bits (n <= 64) without consuming them, MSB-first
// and right-aligned, zero-padded past the end of the stream.
//
// Contract: avail = min(n, bits remaining) reports how many of the returned
// bits actually exist in the stream; the n-avail low bits of the result are
// zero padding, not data. Peek never fails — at end of stream it silently
// returns avail < n (possibly 0) — so callers that treat the padded result
// as data without checking avail will mistake padding for a value. Always
// gate on avail (see huffman.Decoder.Decode for the canonical pattern:
// a table hit is only taken when the code length fits within avail).
func (r *Reader) Peek(n uint) (bits uint64, avail uint) {
	if n == 0 {
		return 0, 0
	}
	if r.nbit < n {
		if r.Fill() < n && r.pos < len(r.buf) {
			return r.peekStraddle(n)
		}
	}
	avail = n
	if r.nbit < n {
		avail = r.nbit
	}
	// Bits below nbit in cur are zero by invariant, so the result is
	// automatically zero-padded past the end of the stream.
	return r.cur >> (64 - n), avail
}

// peekStraddle assembles a lookahead wider than the bit buffer can hold (a
// byte-granular refill of an unaligned buffer tops out at 57-63 bits, so
// this only triggers for n in 58..64) by reading ahead in the input without
// consuming it.
func (r *Reader) peekStraddle(n uint) (bits uint64, avail uint) {
	v := r.cur
	got := r.nbit
	for pos := r.pos; got < n && pos < len(r.buf); pos++ {
		b := uint64(r.buf[pos])
		if got <= 56 {
			v |= b << (56 - got)
		} else {
			// Only the high 64-got bits of b fit in the window; the rest
			// are beyond bit 64 and cannot be part of an n<=64 peek.
			v |= b >> (got - 56)
		}
		got += 8
	}
	avail = n
	if got < n {
		avail = got
	}
	return v >> (64 - n), avail
}

// Skip consumes n bits previously examined with Peek. It returns
// ErrShortStream (consuming all remaining bits) if fewer than n remain.
func (r *Reader) Skip(n uint) error {
	if r.nbit >= n {
		r.cur <<= n
		r.nbit -= n
		return nil
	}
	if r.Fill() < n {
		if r.BitsRemaining() < int(n) {
			r.drain()
			return ErrShortStream
		}
		// Wide unaligned skip straddles the bit buffer: discard the
		// buffered bits, refill, and drop the remainder (<= 7 bits).
		rem := n - r.nbit
		r.cur, r.nbit = 0, 0
		r.Fill()
		r.cur <<= rem
		r.nbit -= rem
		return nil
	}
	r.cur <<= n
	r.nbit -= n
	return nil
}

// ReadUnary reads a unary code written by WriteUnary.
func (r *Reader) ReadUnary() (uint64, error) {
	var v uint64
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 0 {
			return v, nil
		}
		v++
	}
}

// Align discards bits up to the next byte boundary.
func (r *Reader) Align() {
	// Total bits consumed so far is pos*8 - nbit; dropping nbit%8 bits
	// lands it on the next byte boundary of the underlying stream.
	k := r.nbit % 8
	r.cur <<= k
	r.nbit -= k
}

// Remaining reports the number of unread whole bytes (after alignment).
func (r *Reader) Remaining() int {
	return len(r.buf) - r.pos + int(r.nbit/8)
}

// ZigZag maps a signed integer to an unsigned one so small-magnitude values
// (of either sign) become small codes: 0→0, -1→1, 1→2, -2→3, ...
func ZigZag(v int64) uint64 {
	return uint64((v << 1) ^ (v >> 63))
}

// UnZigZag inverts ZigZag.
func UnZigZag(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}

// AppendUvarint appends v in LEB128 variable-length encoding.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// AppendVarint appends v zigzag-encoded as a uvarint.
func AppendVarint(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, ZigZag(v))
}

// Uvarint decodes a uvarint from buf, returning the value and the number of
// bytes consumed. A zero count signals a malformed/short buffer.
func Uvarint(buf []byte) (uint64, int) {
	return binary.Uvarint(buf)
}

// Varint decodes a zigzag-encoded signed varint.
func Varint(buf []byte) (int64, int) {
	u, n := binary.Uvarint(buf)
	return UnZigZag(u), n
}

// AppendUint64 appends v little-endian.
func AppendUint64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

// AppendUint32 appends v little-endian.
func AppendUint32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

// AppendFloat64 appends the IEEE-754 bits of f little-endian.
func AppendFloat64(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

// AppendFloat64s appends each value's IEEE-754 bits little-endian, in
// order — the flat layout used by checkpoint reference snapshots.
func AppendFloat64s(dst []byte, vals []float64) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// DecodeFloat64s inverts AppendFloat64s over the whole buffer, appending
// the decoded values to dst. The buffer length must be a multiple of 8.
func DecodeFloat64s(dst []float64, buf []byte) ([]float64, error) {
	if len(buf)%8 != 0 {
		return nil, ErrShortStream
	}
	for off := 0; off < len(buf); off += 8 {
		dst = append(dst, math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])))
	}
	return dst, nil
}

// Uint64At reads a little-endian uint64 at offset off.
func Uint64At(buf []byte, off int) (uint64, error) {
	if off+8 > len(buf) {
		return 0, ErrShortStream
	}
	return binary.LittleEndian.Uint64(buf[off:]), nil
}

// Float64At reads a little-endian float64 at offset off.
func Float64At(buf []byte, off int) (float64, error) {
	u, err := Uint64At(buf, off)
	return math.Float64frombits(u), err
}

// ByteReader is a cursor over a byte slice for length-prefixed section
// decoding. All Read* methods return ErrShortStream past the end.
type ByteReader struct {
	buf []byte
	off int
}

// NewByteReader returns a cursor positioned at the start of buf.
func NewByteReader(buf []byte) *ByteReader {
	return &ByteReader{buf: buf}
}

// Reset repositions the cursor at the start of buf, discarding all state.
func (b *ByteReader) Reset(buf []byte) {
	b.buf = buf
	b.off = 0
}

// Len reports unread bytes.
func (b *ByteReader) Len() int { return len(b.buf) - b.off }

// Offset reports the current cursor position.
func (b *ByteReader) Offset() int { return b.off }

// ReadByte consumes one byte.
func (b *ByteReader) ReadByte() (byte, error) {
	if b.off >= len(b.buf) {
		return 0, ErrShortStream
	}
	v := b.buf[b.off]
	b.off++
	return v, nil
}

// ReadUint32 consumes a little-endian uint32.
func (b *ByteReader) ReadUint32() (uint32, error) {
	if b.off+4 > len(b.buf) {
		return 0, ErrShortStream
	}
	v := binary.LittleEndian.Uint32(b.buf[b.off:])
	b.off += 4
	return v, nil
}

// ReadUint64 consumes a little-endian uint64.
func (b *ByteReader) ReadUint64() (uint64, error) {
	if b.off+8 > len(b.buf) {
		return 0, ErrShortStream
	}
	v := binary.LittleEndian.Uint64(b.buf[b.off:])
	b.off += 8
	return v, nil
}

// ReadFloat64 consumes a little-endian IEEE-754 float64.
func (b *ByteReader) ReadFloat64() (float64, error) {
	u, err := b.ReadUint64()
	return math.Float64frombits(u), err
}

// ReadUvarint consumes a LEB128 varint.
func (b *ByteReader) ReadUvarint() (uint64, error) {
	v, n := binary.Uvarint(b.buf[b.off:])
	if n <= 0 {
		return 0, ErrShortStream
	}
	b.off += n
	return v, nil
}

// ReadVarint consumes a zigzag-encoded signed varint.
func (b *ByteReader) ReadVarint() (int64, error) {
	u, err := b.ReadUvarint()
	return UnZigZag(u), err
}

// ReadBytes consumes exactly n bytes and returns them as a subslice of the
// underlying buffer (no copy).
func (b *ByteReader) ReadBytes(n int) ([]byte, error) {
	if n < 0 || b.off+n > len(b.buf) {
		return nil, ErrShortStream
	}
	v := b.buf[b.off : b.off+n]
	b.off += n
	return v, nil
}

// ReadSection consumes a uvarint length prefix followed by that many bytes.
func (b *ByteReader) ReadSection() ([]byte, error) {
	n, err := b.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(b.Len()) {
		return nil, ErrShortStream
	}
	return b.ReadBytes(int(n))
}

// AppendSection appends a uvarint length prefix followed by payload.
func AppendSection(dst, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// AppendShardSection appends one shard sub-section of a sharded block: the
// shard's item count (particles) as a uvarint, followed by its payload as a
// length-prefixed section.
func AppendShardSection(dst []byte, items int, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(items))
	return AppendSection(dst, payload)
}

// ReadShardSection consumes a shard sub-section written by
// AppendShardSection, returning the shard's item count and payload (a
// no-copy subslice of the underlying buffer).
func (b *ByteReader) ReadShardSection() (items int, payload []byte, err error) {
	n, err := b.ReadUvarint()
	if err != nil {
		return 0, nil, err
	}
	if n > 1<<40 {
		return 0, nil, ErrShortStream
	}
	payload, err = b.ReadSection()
	if err != nil {
		return 0, nil, err
	}
	return int(n), payload, nil
}
