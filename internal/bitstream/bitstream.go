// Package bitstream provides low-level bit- and byte-oriented encoding
// primitives shared by every codec in this repository: an MSB-first bit
// writer/reader, unsigned varints, and zigzag transforms for signed
// integers.
//
// All codecs in this module serialize multi-byte scalars little-endian and
// bits MSB-first within a byte, so streams are portable across platforms.
package bitstream

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrShortStream is returned when a reader runs out of input mid-value.
var ErrShortStream = errors.New("bitstream: unexpected end of stream")

// Writer accumulates bits MSB-first into an in-memory buffer.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	cur  uint64 // pending bits, left-aligned within nbit
	nbit uint   // number of pending bits in cur (< 8 after flushes)
}

// NewWriter returns a Writer with capacity preallocated for n bytes.
func NewWriter(n int) *Writer {
	return &Writer{buf: make([]byte, 0, n)}
}

// WriteBit appends a single bit (0 or 1).
func (w *Writer) WriteBit(b uint) {
	w.WriteBits(uint64(b&1), 1)
}

// WriteBits appends the low n bits of v, MSB first. n must be <= 64.
func (w *Writer) WriteBits(v uint64, n uint) {
	if n == 0 {
		return
	}
	if n < 64 {
		v &= (1 << n) - 1
	}
	for n > 0 {
		take := 8 - w.nbit
		if take > n {
			take = n
		}
		// Bits of v from position n-1 down to n-take.
		chunk := (v >> (n - take)) & ((1 << take) - 1)
		w.cur = (w.cur << take) | chunk
		w.nbit += take
		n -= take
		if w.nbit == 8 {
			w.buf = append(w.buf, byte(w.cur))
			w.cur, w.nbit = 0, 0
		}
	}
}

// WriteUnary appends v as a unary code: v one-bits followed by a zero bit.
func (w *Writer) WriteUnary(v uint64) {
	for v >= 32 {
		w.WriteBits(math.MaxUint32, 32)
		v -= 32
	}
	if v > 0 {
		w.WriteBits((1<<v)-1, uint(v))
	}
	w.WriteBit(0)
}

// Align pads the stream with zero bits up to the next byte boundary.
func (w *Writer) Align() {
	if w.nbit > 0 {
		w.cur <<= 8 - w.nbit
		w.buf = append(w.buf, byte(w.cur))
		w.cur, w.nbit = 0, 0
	}
}

// Bytes flushes any partial byte (zero padded) and returns the encoded
// buffer. The Writer remains usable; subsequent writes start byte-aligned.
func (w *Writer) Bytes() []byte {
	w.Align()
	return w.buf
}

// BitLen reports the total number of bits written so far.
func (w *Writer) BitLen() int {
	return len(w.buf)*8 + int(w.nbit)
}

// Reset truncates the writer for reuse.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur, w.nbit = 0, 0
}

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf  []byte
	pos  int  // next byte index
	cur  byte // current byte being consumed
	nbit uint // bits remaining in cur
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (uint, error) {
	v, err := r.ReadBits(1)
	return uint(v), err
}

// ReadBits reads n bits (n <= 64) MSB-first and returns them right-aligned.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	var v uint64
	for n > 0 {
		if r.nbit == 0 {
			if r.pos >= len(r.buf) {
				return 0, ErrShortStream
			}
			r.cur = r.buf[r.pos]
			r.pos++
			r.nbit = 8
		}
		take := r.nbit
		if take > n {
			take = n
		}
		chunk := uint64(r.cur >> (r.nbit - take))
		chunk &= (1 << take) - 1
		v = (v << take) | chunk
		r.nbit -= take
		n -= take
	}
	return v, nil
}

// Peek returns the next n bits (n <= 32) without consuming them, MSB-first
// and right-aligned, zero-padded past the end of the stream. avail reports
// how many of the returned bits actually exist.
func (r *Reader) Peek(n uint) (bits uint64, avail uint) {
	availBits := uint(len(r.buf)-r.pos)*8 + r.nbit
	take := n
	if take > availBits {
		take = availBits
	}
	// Gather up to n bits starting at the current position.
	var v uint64
	got := uint(0)
	// Bits left in the current partial byte.
	if r.nbit > 0 {
		cur := uint64(r.cur) & ((1 << r.nbit) - 1)
		if r.nbit >= take {
			v = cur >> (r.nbit - take)
			got = take
		} else {
			v = cur
			got = r.nbit
		}
	}
	pos := r.pos
	for got < take {
		b := uint64(r.buf[pos])
		pos++
		need := take - got
		if need >= 8 {
			v = (v << 8) | b
			got += 8
		} else {
			v = (v << need) | (b >> (8 - need))
			got += need
		}
	}
	return v << (n - got), take
}

// Skip consumes n bits previously examined with Peek. It returns
// ErrShortStream if fewer than n bits remain.
func (r *Reader) Skip(n uint) error {
	_, err := r.ReadBits(n)
	return err
}

// ReadUnary reads a unary code written by WriteUnary.
func (r *Reader) ReadUnary() (uint64, error) {
	var v uint64
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 0 {
			return v, nil
		}
		v++
	}
}

// Align discards bits up to the next byte boundary.
func (r *Reader) Align() {
	r.nbit = 0
}

// Remaining reports the number of unread whole bytes (after alignment).
func (r *Reader) Remaining() int {
	return len(r.buf) - r.pos
}

// ZigZag maps a signed integer to an unsigned one so small-magnitude values
// (of either sign) become small codes: 0→0, -1→1, 1→2, -2→3, ...
func ZigZag(v int64) uint64 {
	return uint64((v << 1) ^ (v >> 63))
}

// UnZigZag inverts ZigZag.
func UnZigZag(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}

// AppendUvarint appends v in LEB128 variable-length encoding.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// AppendVarint appends v zigzag-encoded as a uvarint.
func AppendVarint(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, ZigZag(v))
}

// Uvarint decodes a uvarint from buf, returning the value and the number of
// bytes consumed. A zero count signals a malformed/short buffer.
func Uvarint(buf []byte) (uint64, int) {
	return binary.Uvarint(buf)
}

// Varint decodes a zigzag-encoded signed varint.
func Varint(buf []byte) (int64, int) {
	u, n := binary.Uvarint(buf)
	return UnZigZag(u), n
}

// AppendUint64 appends v little-endian.
func AppendUint64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

// AppendUint32 appends v little-endian.
func AppendUint32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

// AppendFloat64 appends the IEEE-754 bits of f little-endian.
func AppendFloat64(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

// AppendFloat64s appends each value's IEEE-754 bits little-endian, in
// order — the flat layout used by checkpoint reference snapshots.
func AppendFloat64s(dst []byte, vals []float64) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// DecodeFloat64s inverts AppendFloat64s over the whole buffer, appending
// the decoded values to dst. The buffer length must be a multiple of 8.
func DecodeFloat64s(dst []float64, buf []byte) ([]float64, error) {
	if len(buf)%8 != 0 {
		return nil, ErrShortStream
	}
	for off := 0; off < len(buf); off += 8 {
		dst = append(dst, math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])))
	}
	return dst, nil
}

// Uint64At reads a little-endian uint64 at offset off.
func Uint64At(buf []byte, off int) (uint64, error) {
	if off+8 > len(buf) {
		return 0, ErrShortStream
	}
	return binary.LittleEndian.Uint64(buf[off:]), nil
}

// Float64At reads a little-endian float64 at offset off.
func Float64At(buf []byte, off int) (float64, error) {
	u, err := Uint64At(buf, off)
	return math.Float64frombits(u), err
}

// ByteReader is a cursor over a byte slice for length-prefixed section
// decoding. All Read* methods return ErrShortStream past the end.
type ByteReader struct {
	buf []byte
	off int
}

// NewByteReader returns a cursor positioned at the start of buf.
func NewByteReader(buf []byte) *ByteReader {
	return &ByteReader{buf: buf}
}

// Len reports unread bytes.
func (b *ByteReader) Len() int { return len(b.buf) - b.off }

// Offset reports the current cursor position.
func (b *ByteReader) Offset() int { return b.off }

// ReadByte consumes one byte.
func (b *ByteReader) ReadByte() (byte, error) {
	if b.off >= len(b.buf) {
		return 0, ErrShortStream
	}
	v := b.buf[b.off]
	b.off++
	return v, nil
}

// ReadUint32 consumes a little-endian uint32.
func (b *ByteReader) ReadUint32() (uint32, error) {
	if b.off+4 > len(b.buf) {
		return 0, ErrShortStream
	}
	v := binary.LittleEndian.Uint32(b.buf[b.off:])
	b.off += 4
	return v, nil
}

// ReadUint64 consumes a little-endian uint64.
func (b *ByteReader) ReadUint64() (uint64, error) {
	if b.off+8 > len(b.buf) {
		return 0, ErrShortStream
	}
	v := binary.LittleEndian.Uint64(b.buf[b.off:])
	b.off += 8
	return v, nil
}

// ReadFloat64 consumes a little-endian IEEE-754 float64.
func (b *ByteReader) ReadFloat64() (float64, error) {
	u, err := b.ReadUint64()
	return math.Float64frombits(u), err
}

// ReadUvarint consumes a LEB128 varint.
func (b *ByteReader) ReadUvarint() (uint64, error) {
	v, n := binary.Uvarint(b.buf[b.off:])
	if n <= 0 {
		return 0, ErrShortStream
	}
	b.off += n
	return v, nil
}

// ReadVarint consumes a zigzag-encoded signed varint.
func (b *ByteReader) ReadVarint() (int64, error) {
	u, err := b.ReadUvarint()
	return UnZigZag(u), err
}

// ReadBytes consumes exactly n bytes and returns them as a subslice of the
// underlying buffer (no copy).
func (b *ByteReader) ReadBytes(n int) ([]byte, error) {
	if n < 0 || b.off+n > len(b.buf) {
		return nil, ErrShortStream
	}
	v := b.buf[b.off : b.off+n]
	b.off += n
	return v, nil
}

// ReadSection consumes a uvarint length prefix followed by that many bytes.
func (b *ByteReader) ReadSection() ([]byte, error) {
	n, err := b.ReadUvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(b.Len()) {
		return nil, ErrShortStream
	}
	return b.ReadBytes(int(n))
}

// AppendSection appends a uvarint length prefix followed by payload.
func AppendSection(dst, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// AppendShardSection appends one shard sub-section of a sharded block: the
// shard's item count (particles) as a uvarint, followed by its payload as a
// length-prefixed section.
func AppendShardSection(dst []byte, items int, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(items))
	return AppendSection(dst, payload)
}

// ReadShardSection consumes a shard sub-section written by
// AppendShardSection, returning the shard's item count and payload (a
// no-copy subslice of the underlying buffer).
func (b *ByteReader) ReadShardSection() (items int, payload []byte, err error) {
	n, err := b.ReadUvarint()
	if err != nil {
		return 0, nil, err
	}
	if n > 1<<40 {
		return 0, nil, ErrShortStream
	}
	payload, err = b.ReadSection()
	if err != nil {
		return 0, nil, err
	}
	return int(n), payload, nil
}
