package bitstream

import (
	"math/rand"
	"testing"
)

// oldReader is the historical byte-at-a-time Reader, kept verbatim (modulo
// receiver names) as the reference implementation for differential tests:
// the word-buffered Reader must match its values, errors, and observable
// state on every operation sequence.
type oldReader struct {
	buf  []byte
	pos  int  // next byte index
	cur  byte // current byte being consumed
	nbit uint // bits remaining in cur
}

func newOldReader(buf []byte) *oldReader { return &oldReader{buf: buf} }

func (r *oldReader) ReadBit() (uint, error) {
	v, err := r.ReadBits(1)
	return uint(v), err
}

func (r *oldReader) ReadBits(n uint) (uint64, error) {
	var v uint64
	for n > 0 {
		if r.nbit == 0 {
			if r.pos >= len(r.buf) {
				return 0, ErrShortStream
			}
			r.cur = r.buf[r.pos]
			r.pos++
			r.nbit = 8
		}
		take := r.nbit
		if take > n {
			take = n
		}
		chunk := uint64(r.cur >> (r.nbit - take))
		chunk &= (1 << take) - 1
		v = (v << take) | chunk
		r.nbit -= take
		n -= take
	}
	return v, nil
}

func (r *oldReader) Peek(n uint) (bits uint64, avail uint) {
	availBits := uint(len(r.buf)-r.pos)*8 + r.nbit
	take := n
	if take > availBits {
		take = availBits
	}
	var v uint64
	got := uint(0)
	if r.nbit > 0 {
		cur := uint64(r.cur) & ((1 << r.nbit) - 1)
		if r.nbit >= take {
			v = cur >> (r.nbit - take)
			got = take
		} else {
			v = cur
			got = r.nbit
		}
	}
	pos := r.pos
	for got < take {
		b := uint64(r.buf[pos])
		pos++
		need := take - got
		if need >= 8 {
			v = (v << 8) | b
			got += 8
		} else {
			v = (v << need) | (b >> (8 - need))
			got += need
		}
	}
	return v << (n - got), take
}

func (r *oldReader) Skip(n uint) error {
	_, err := r.ReadBits(n)
	return err
}

func (r *oldReader) ReadUnary() (uint64, error) {
	var v uint64
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 0 {
			return v, nil
		}
		v++
	}
}

func (r *oldReader) Align() { r.nbit = 0 }

func (r *oldReader) Remaining() int { return len(r.buf) - r.pos }

func (r *oldReader) bitsRemaining() int {
	return (len(r.buf)-r.pos)*8 + int(r.nbit)
}

// TestPeekBoundaryExhaustive checks the Peek contract — avail =
// min(n, bits remaining), zero padding below avail — for every peek width
// 0..64 at every bit offset of buffers 0..10 bytes long, reaching each
// offset both bit-by-bit (buffer mostly full) and via one big skip (buffer
// alignment differs), so both refill paths are exercised at every boundary.
func TestPeekBoundaryExhaustive(t *testing.T) {
	data := []byte{0xA5, 0x3C, 0xFF, 0x00, 0x81, 0x7E, 0xD2, 0x4B, 0x96, 0xE7}
	for bufLen := 0; bufLen <= len(data); bufLen++ {
		buf := data[:bufLen]
		total := bufLen * 8
		// bitAt returns bit i of buf MSB-first, or 0 past the end.
		bitAt := func(i int) uint64 {
			if i >= total {
				return 0
			}
			return uint64(buf[i/8]>>(7-i%8)) & 1
		}
		for off := 0; off <= total; off++ {
			for n := uint(0); n <= 64; n++ {
				for _, arrival := range []string{"bitwise", "skip"} {
					r := NewReader(buf)
					if arrival == "bitwise" {
						for i := 0; i < off; i++ {
							if _, err := r.ReadBit(); err != nil {
								t.Fatal(err)
							}
						}
					} else if off > 0 {
						if err := r.Skip(uint(off)); err != nil {
							t.Fatal(err)
						}
					}
					wantAvail := uint(total - off)
					if wantAvail > n {
						wantAvail = n
					}
					var want uint64
					for i := uint(0); i < n; i++ {
						want = want<<1 | bitAt(off+int(i))
					}
					bits, avail := r.Peek(n)
					if avail != wantAvail || bits != want {
						t.Fatalf("len=%d off=%d n=%d arrival=%s: Peek = (%#x, %d), want (%#x, %d)",
							bufLen, off, n, arrival, bits, avail, want, wantAvail)
					}
					// Peek must not perturb subsequent reads.
					if rest := uint(total - off); rest > 0 {
						k := rest
						if k > 64 {
							k = 64
						}
						got, err := r.ReadBits(k)
						if err != nil {
							t.Fatalf("len=%d off=%d n=%d: ReadBits(%d) after Peek: %v", bufLen, off, n, k, err)
						}
						var wantNext uint64
						for i := uint(0); i < k; i++ {
							wantNext = wantNext<<1 | bitAt(off+int(i))
						}
						if got != wantNext {
							t.Fatalf("len=%d off=%d n=%d: ReadBits(%d) after Peek = %#x, want %#x", bufLen, off, n, k, got, wantNext)
						}
					}
				}
			}
		}
	}
}

// runDifferential drives the new and old readers through the same operation
// script and fails on any divergence in values, avail, errors, or Remaining.
func runDifferential(t *testing.T, data, script []byte) {
	t.Helper()
	nr := NewReader(data)
	or := newOldReader(data)
	dead := false // both readers have errored; old reader state is settled
	for i := 0; i+1 < len(script) && !dead; i += 2 {
		op := script[i] % 6
		n := uint(script[i+1]) % 65
		switch op {
		case 0:
			gv, ge := nr.ReadBits(n)
			wv, we := or.ReadBits(n)
			if (ge == nil) != (we == nil) {
				t.Fatalf("op %d ReadBits(%d): err %v vs %v", i, n, ge, we)
			}
			if ge == nil && gv != wv {
				t.Fatalf("op %d ReadBits(%d): %#x vs %#x", i, n, gv, wv)
			}
			dead = ge != nil
		case 1:
			gb, ga := nr.Peek(n)
			wb, wa := or.Peek(n)
			if gb != wb || ga != wa {
				t.Fatalf("op %d Peek(%d): (%#x,%d) vs (%#x,%d)", i, n, gb, ga, wb, wa)
			}
		case 2:
			ge := nr.Skip(n)
			we := or.Skip(n)
			if (ge == nil) != (we == nil) {
				t.Fatalf("op %d Skip(%d): err %v vs %v", i, n, ge, we)
			}
			dead = ge != nil
		case 3:
			gv, ge := nr.ReadBit()
			wv, we := or.ReadBit()
			if (ge == nil) != (we == nil) || gv != wv {
				t.Fatalf("op %d ReadBit: (%d,%v) vs (%d,%v)", i, gv, ge, wv, we)
			}
			dead = ge != nil
		case 4:
			nr.Align()
			or.Align()
		case 5:
			gv, ge := nr.ReadUnary()
			wv, we := or.ReadUnary()
			if (ge == nil) != (we == nil) {
				t.Fatalf("op %d ReadUnary: err %v vs %v", i, ge, we)
			}
			if ge == nil && gv != wv {
				t.Fatalf("op %d ReadUnary: %d vs %d", i, gv, wv)
			}
			dead = ge != nil
		}
		if nr.Remaining() != or.Remaining() {
			t.Fatalf("op %d: Remaining %d vs %d", i, nr.Remaining(), or.Remaining())
		}
		if nr.BitsRemaining() != or.bitsRemaining() {
			t.Fatalf("op %d: BitsRemaining %d vs %d", i, nr.BitsRemaining(), or.bitsRemaining())
		}
	}
}

// TestReaderDifferentialRandom is the seeded, always-on slice of the
// differential fuzz: random data and op scripts through both readers.
func TestReaderDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		data := make([]byte, rng.Intn(64))
		rng.Read(data)
		script := make([]byte, 2+rng.Intn(128))
		rng.Read(script)
		runDifferential(t, data, script)
	}
}

// FuzzReaderDifferential fuzzes the word-buffered Reader against the
// historical byte-at-a-time implementation: identical values and identical
// error behavior on arbitrary op sequences over arbitrary input.
func FuzzReaderDifferential(f *testing.F) {
	f.Add([]byte{0xA5, 0x3C}, []byte{0, 11, 1, 64, 2, 3, 3, 0, 4, 0, 5, 0})
	f.Add([]byte{}, []byte{0, 64, 1, 1})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x00}, []byte{5, 0, 0, 63, 1, 64})
	f.Fuzz(func(t *testing.T, data, script []byte) {
		runDifferential(t, data, script)
	})
}
