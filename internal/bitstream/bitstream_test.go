package bitstream

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadBits(t *testing.T) {
	w := NewWriter(16)
	w.WriteBits(0b101, 3)
	w.WriteBits(0xFF, 8)
	w.WriteBits(0, 1)
	w.WriteBits(0xDEADBEEF, 32)
	w.WriteBits(1, 64)
	r := NewReader(w.Bytes())
	cases := []struct {
		n    uint
		want uint64
	}{{3, 0b101}, {8, 0xFF}, {1, 0}, {32, 0xDEADBEEF}, {64, 1}}
	for i, c := range cases {
		got, err := r.ReadBits(c.n)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != c.want {
			t.Errorf("case %d: got %#x want %#x", i, got, c.want)
		}
	}
}

func TestBitRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(500)
		vals := make([]uint64, n)
		widths := make([]uint, n)
		w := &Writer{}
		for i := range vals {
			widths[i] = uint(1 + rng.Intn(64))
			vals[i] = rng.Uint64()
			if widths[i] < 64 {
				vals[i] &= (1 << widths[i]) - 1
			}
			w.WriteBits(vals[i], widths[i])
		}
		r := NewReader(w.Bytes())
		for i := range vals {
			got, err := r.ReadBits(widths[i])
			if err != nil {
				t.Fatalf("trial %d item %d: %v", trial, i, err)
			}
			if got != vals[i] {
				t.Fatalf("trial %d item %d: got %#x want %#x (width %d)", trial, i, got, vals[i], widths[i])
			}
		}
	}
}

func TestUnary(t *testing.T) {
	w := &Writer{}
	in := []uint64{0, 1, 2, 5, 31, 32, 33, 100, 257}
	for _, v := range in {
		w.WriteUnary(v)
	}
	r := NewReader(w.Bytes())
	for i, want := range in {
		got, err := r.ReadUnary()
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if got != want {
			t.Errorf("item %d: got %d want %d", i, got, want)
		}
	}
}

func TestReadPastEnd(t *testing.T) {
	r := NewReader([]byte{0xAB})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBits(1); err != ErrShortStream {
		t.Errorf("want ErrShortStream, got %v", err)
	}
}

func TestZigZagProperty(t *testing.T) {
	f := func(v int64) bool { return UnZigZag(ZigZag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Small magnitudes map to small codes.
	for i, want := range []uint64{0, 1, 2, 3, 4} {
		v := int64(i+1) / 2
		if i%2 == 1 {
			v = -v
		}
		if got := ZigZag(v); got != want {
			t.Errorf("ZigZag(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestVarintRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		buf := AppendVarint(nil, v)
		got, n := Varint(buf)
		return n == len(buf) && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestByteReaderSections(t *testing.T) {
	var buf []byte
	buf = AppendSection(buf, []byte("hello"))
	buf = AppendSection(buf, nil)
	buf = AppendSection(buf, bytes.Repeat([]byte{9}, 300))
	br := NewByteReader(buf)
	s1, err := br.ReadSection()
	if err != nil || string(s1) != "hello" {
		t.Fatalf("section 1: %q %v", s1, err)
	}
	s2, err := br.ReadSection()
	if err != nil || len(s2) != 0 {
		t.Fatalf("section 2: %v %v", s2, err)
	}
	s3, err := br.ReadSection()
	if err != nil || len(s3) != 300 {
		t.Fatalf("section 3: len=%d %v", len(s3), err)
	}
	if br.Len() != 0 {
		t.Errorf("expected empty reader, %d bytes left", br.Len())
	}
	if _, err := br.ReadSection(); err != ErrShortStream {
		t.Errorf("want ErrShortStream, got %v", err)
	}
}

func TestByteReaderScalars(t *testing.T) {
	var buf []byte
	buf = append(buf, 0x7F)
	buf = AppendUint32(buf, 0xCAFEBABE)
	buf = AppendUint64(buf, math.MaxUint64-5)
	buf = AppendFloat64(buf, -123.456)
	buf = AppendUvarint(buf, 1<<40)
	buf = AppendVarint(buf, -99999)
	br := NewByteReader(buf)
	if b, _ := br.ReadByte(); b != 0x7F {
		t.Errorf("byte: %#x", b)
	}
	if v, _ := br.ReadUint32(); v != 0xCAFEBABE {
		t.Errorf("u32: %#x", v)
	}
	if v, _ := br.ReadUint64(); v != math.MaxUint64-5 {
		t.Errorf("u64: %#x", v)
	}
	if f, _ := br.ReadFloat64(); f != -123.456 {
		t.Errorf("f64: %v", f)
	}
	if v, _ := br.ReadUvarint(); v != 1<<40 {
		t.Errorf("uvarint: %d", v)
	}
	if v, _ := br.ReadVarint(); v != -99999 {
		t.Errorf("varint: %d", v)
	}
}

func TestTruncatedScalars(t *testing.T) {
	br := NewByteReader([]byte{1, 2, 3})
	if _, err := br.ReadUint64(); err != ErrShortStream {
		t.Errorf("u64: want ErrShortStream, got %v", err)
	}
	if _, err := br.ReadUint32(); err != ErrShortStream {
		t.Errorf("u32 after 3 bytes: want ErrShortStream, got %v", err)
	}
}

func TestReaderReset(t *testing.T) {
	w := &Writer{}
	w.WriteBits(0xABC, 12)
	first := append([]byte(nil), w.Bytes()...)
	w.Reset()
	w.WriteBits(0x5, 3)
	second := append([]byte(nil), w.Bytes()...)

	r := NewReader(first)
	if got, err := r.ReadBits(12); err != nil || got != 0xABC {
		t.Fatalf("first read: %x, %v", got, err)
	}
	r.Reset(second)
	if got, err := r.ReadBits(3); err != nil || got != 0x5 {
		t.Errorf("after Reset: %x, %v", got, err)
	}
	if got := r.BitsRemaining(); got != 5 {
		t.Errorf("after Reset + 3 bits: %d bits remaining, want 5 (byte padding)", got)
	}
}

func TestByteReaderReset(t *testing.T) {
	br := NewByteReader([]byte{1, 2, 3})
	if _, err := br.ReadBytes(3); err != nil {
		t.Fatal(err)
	}
	br.Reset([]byte{9, 8})
	if br.Offset() != 0 || br.Len() != 2 {
		t.Fatalf("after Reset: off %d len %d", br.Offset(), br.Len())
	}
	if b, err := br.ReadByte(); err != nil || b != 9 {
		t.Errorf("after Reset: %d, %v", b, err)
	}
}

// TestBitState checks the register-batching accessor pair: state read out,
// advanced exactly as the Decode hot loops advance it (left shifts), and
// written back must leave the Reader indistinguishable from one that
// consumed the same bits through ReadBits.
func TestBitState(t *testing.T) {
	w := &Writer{}
	w.WriteBits(0b1011, 4)
	w.WriteBits(0xDEAD, 16)
	w.WriteBits(0x3F, 6)
	r := NewReader(w.Bytes())
	r.Fill()
	cur, nbit := r.BitState()
	if cur>>(64-4) != 0b1011 {
		t.Fatalf("top nibble = %b", cur>>(64-4))
	}
	cur <<= 4
	nbit -= 4
	r.SetBitState(cur, nbit)
	if got, err := r.ReadBits(16); err != nil || got != 0xDEAD {
		t.Errorf("after SetBitState: %x, %v", got, err)
	}
	if got, err := r.ReadBits(6); err != nil || got != 0x3F {
		t.Errorf("tail: %x, %v", got, err)
	}
}

func TestWriterReset(t *testing.T) {
	w := &Writer{}
	w.WriteBits(0xFFFF, 16)
	w.Reset()
	w.WriteBits(0xA, 4)
	got := w.Bytes()
	if len(got) != 1 || got[0] != 0xA0 {
		t.Errorf("after reset: % x", got)
	}
}

func TestBitLen(t *testing.T) {
	w := &Writer{}
	if w.BitLen() != 0 {
		t.Errorf("empty BitLen = %d", w.BitLen())
	}
	w.WriteBits(1, 3)
	if w.BitLen() != 3 {
		t.Errorf("BitLen = %d, want 3", w.BitLen())
	}
	w.WriteBits(1, 13)
	if w.BitLen() != 16 {
		t.Errorf("BitLen = %d, want 16", w.BitLen())
	}
}

func TestPeekSkip(t *testing.T) {
	w := &Writer{}
	w.WriteBits(0b1011_0011_1100_0101, 16)
	r := NewReader(w.Bytes())
	bits, avail := r.Peek(8)
	if avail != 8 || bits != 0b1011_0011 {
		t.Fatalf("Peek(8) = %b avail %d", bits, avail)
	}
	// Peek must not consume.
	bits2, _ := r.Peek(8)
	if bits2 != bits {
		t.Fatal("Peek consumed bits")
	}
	if err := r.Skip(3); err != nil {
		t.Fatal(err)
	}
	bits, avail = r.Peek(8)
	if avail != 8 || bits != 0b1_0011_110 {
		t.Fatalf("after Skip(3): %b avail %d", bits, avail)
	}
	// Peek past end: zero-padded, avail reports truth.
	if err := r.Skip(10); err != nil {
		t.Fatal(err)
	}
	bits, avail = r.Peek(8)
	if avail != 3 {
		t.Fatalf("tail avail = %d", avail)
	}
	if bits != 0b101_00000 {
		t.Fatalf("tail bits = %b", bits)
	}
	if err := r.Skip(4); err != ErrShortStream {
		t.Fatalf("over-skip err = %v", err)
	}
}

func TestPeekMatchesReadBitsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(40)
		w := &Writer{}
		for i := 0; i < n; i++ {
			w.WriteBits(rng.Uint64(), uint(1+rng.Intn(24)))
		}
		data := w.Bytes()
		r1 := NewReader(data)
		r2 := NewReader(data)
		for {
			k := uint(1 + rng.Intn(20))
			peeked, avail := r1.Peek(k)
			if avail == 0 {
				break
			}
			take := avail
			got, err := r2.ReadBits(take)
			if err != nil {
				t.Fatal(err)
			}
			if err := r1.Skip(take); err != nil {
				t.Fatal(err)
			}
			if peeked>>(k-take) != got {
				t.Fatalf("trial %d: peek %b != read %b (k=%d take=%d)", trial, peeked>>(k-take), got, k, take)
			}
		}
	}
}
