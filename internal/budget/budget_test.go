package budget

import (
	"errors"
	"sync"
	"testing"

	"github.com/mdz/mdz/internal/telemetry"
)

func TestNilBudgetUnlimited(t *testing.T) {
	var b *Budget
	tx := b.Begin()
	if tx != nil {
		t.Fatalf("nil budget Begin = %v, want nil tx", tx)
	}
	if err := tx.Reserve(1 << 50); err != nil {
		t.Fatalf("nil tx Reserve: %v", err)
	}
	tx.Close()
	if b.Limit() != 0 || b.Used() != 0 {
		t.Fatalf("nil budget Limit/Used = %d/%d, want 0/0", b.Limit(), b.Used())
	}
}

func TestNewNonPositiveLimit(t *testing.T) {
	if b := New(0); b != nil {
		t.Fatalf("New(0) = %v, want nil", b)
	}
	if b := New(-5); b != nil {
		t.Fatalf("New(-5) = %v, want nil", b)
	}
}

func TestReserveAndRelease(t *testing.T) {
	b := New(100)
	tx := b.Begin()
	if err := tx.Reserve(60); err != nil {
		t.Fatalf("Reserve(60): %v", err)
	}
	if got := b.Used(); got != 60 {
		t.Fatalf("Used = %d, want 60", got)
	}
	if err := tx.Reserve(50); !errors.Is(err, ErrExceeded) {
		t.Fatalf("Reserve(50) over limit: err = %v, want ErrExceeded", err)
	}
	if got := b.Used(); got != 60 {
		t.Fatalf("Used after rejection = %d, want 60 (failed reserve must not charge)", got)
	}
	if err := tx.Reserve(40); err != nil {
		t.Fatalf("Reserve(40) at exactly limit: %v", err)
	}
	tx.Close()
	if got := b.Used(); got != 0 {
		t.Fatalf("Used after Close = %d, want 0", got)
	}
	tx.Close() // idempotent
	if got := b.Used(); got != 0 {
		t.Fatalf("Used after double Close = %d, want 0", got)
	}
}

func TestRejectionCounter(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("budget.rejections")
	b := New(10)
	b.SetTelemetry(c)
	tx := b.Begin()
	defer tx.Close()
	if err := tx.Reserve(11); !errors.Is(err, ErrExceeded) {
		t.Fatalf("Reserve(11): %v", err)
	}
	if err := tx.Reserve(5); err != nil {
		t.Fatalf("Reserve(5): %v", err)
	}
	if got := c.Value(); got != 1 {
		t.Fatalf("rejections = %d, want 1", got)
	}
}

func TestConcurrentTxSharedBudget(t *testing.T) {
	const (
		goroutines = 16
		perG       = 200
		limit      = 4 // only 4 single-byte reservations can be live at once
	)
	b := New(limit)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tx := b.Begin()
				if err := tx.Reserve(1); err == nil {
					if u := b.Used(); u < 1 || u > limit {
						t.Errorf("Used = %d outside [1,%d]", u, limit)
					}
				}
				tx.Close()
			}
		}()
	}
	wg.Wait()
	if got := b.Used(); got != 0 {
		t.Fatalf("Used after all Tx closed = %d, want 0", got)
	}
}

func TestConcurrentReserveSameTx(t *testing.T) {
	b := New(1000)
	tx := b.Begin()
	var wg sync.WaitGroup
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tx.Reserve(1)
			}
		}()
	}
	wg.Wait()
	if got := b.Used(); got != 1000 {
		t.Fatalf("Used = %d, want 1000", got)
	}
	tx.Close()
	if got := b.Used(); got != 0 {
		t.Fatalf("Used after Close = %d, want 0", got)
	}
}
