// Package budget provides an accounted memory governor for decode paths.
//
// Untrusted inputs carry length fields the decoder must allocate for before
// it can validate them; a forged length can otherwise balloon a single
// corrupt block into a multi-gigabyte allocation. Instead of scattering
// ad-hoc per-site caps, a Budget gives every decode operation a shared,
// accounted ceiling: each operation opens a Tx, reserves the claimed sizes
// before allocating, and closes the Tx when done, releasing everything it
// reserved. Concurrent operations (and concurrent shards inside one
// operation) draw from the same Budget atomically, so the ceiling bounds
// the decoder's total in-flight claimed bytes, not just one allocation.
//
// Accounting is by claimed decode size (deterministic for a given input),
// not by the allocator's view — pooled scratch that is merely reused is
// still charged, so the same input is accepted or rejected identically
// regardless of pool temperature. Retained state that outlives the
// operation (e.g. a decoder reference snapshot) is released with the Tx;
// the Budget governs decode-time amplification, not steady-state footprint.
//
// A nil *Budget and a nil *Tx are valid everywhere and mean "unlimited".
package budget

import (
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/mdz/mdz/internal/telemetry"
)

// ErrExceeded is the sentinel wrapped by every budget rejection.
var ErrExceeded = errors.New("decode memory budget exceeded")

// Budget is a shared decode-allocation ceiling. The zero value is not
// useful; use New. A nil *Budget disables governance.
type Budget struct {
	limit      int64
	used       atomic.Int64
	rejections *telemetry.Counter // nil-safe
}

// New returns a Budget with the given ceiling in bytes. A non-positive
// limit yields nil (unlimited).
func New(limit int64) *Budget {
	if limit <= 0 {
		return nil
	}
	return &Budget{limit: limit}
}

// SetTelemetry attaches a rejection counter (nil detaches). Call before the
// Budget is shared between goroutines.
func (b *Budget) SetTelemetry(c *telemetry.Counter) {
	if b != nil {
		b.rejections = c
	}
}

// Limit reports the ceiling in bytes (0 for a nil Budget).
func (b *Budget) Limit() int64 {
	if b == nil {
		return 0
	}
	return b.limit
}

// Used reports the bytes currently reserved across all open transactions.
func (b *Budget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// Begin opens a transaction. The caller must Close it (usually deferred)
// to release its reservations. A nil Budget returns a nil Tx, which is
// valid and unlimited.
func (b *Budget) Begin() *Tx {
	if b == nil {
		return nil
	}
	return &Tx{b: b}
}

// Tx accumulates reservations for one decode operation. Reserve may be
// called from concurrent shards of the same operation; Close must be called
// exactly once, after all of them have finished.
type Tx struct {
	b        *Budget
	reserved atomic.Int64
}

// Reserve charges n claimed bytes against the budget. On success the bytes
// stay reserved until Close. On failure nothing is charged and the error
// wraps ErrExceeded. Non-positive n and nil receivers are no-ops.
func (t *Tx) Reserve(n int64) error {
	if t == nil || n <= 0 {
		return nil
	}
	if now := t.b.used.Add(n); now > t.b.limit {
		t.b.used.Add(-n)
		t.b.rejections.Inc()
		return fmt.Errorf("%w: need %d bytes, %d of %d in use", ErrExceeded, n, now-n, t.b.limit)
	}
	t.reserved.Add(n)
	return nil
}

// Close releases everything the transaction reserved. Safe on nil and
// idempotent.
func (t *Tx) Close() {
	if t == nil {
		return
	}
	if n := t.reserved.Swap(0); n != 0 {
		t.b.used.Add(-n)
	}
}
