// Package telemetry is the stdlib-only observability substrate of the MDZ
// pipeline: atomic counters, gauges and fixed-bucket integer histograms
// collected in a Registry and exported as an immutable Snapshot, Prometheus
// text, or an expvar variable.
//
// # Design
//
// The hot path is lock-free: counters and gauges are single atomics, and a
// histogram observation is a short linear scan over its (immutable) bucket
// bounds plus two atomic adds. The Registry mutex guards only instrument
// registration, which happens once at pipeline construction.
//
// Every instrument is nil-safe: calling any method on a nil *Counter,
// *Gauge, *Histogram or *Registry is a no-op that performs no allocation
// and, for timers, never reads the clock. Pipeline code therefore holds
// plain instrument pointers that are nil when telemetry is disabled, so the
// disabled path compiles down to a predicted branch per call site.
//
// Histograms are integer-valued in an explicit base unit, conventionally
// nanoseconds for durations (DurationBounds) and bytes for sizes
// (SizeBounds); the unit belongs in the metric name (…".ns", …".bytes").
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter is valid and ignores all updates.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be non-negative for Prometheus counter semantics).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value that may go up and down. The zero
// value is ready to use; a nil *Gauge is valid and ignores all updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket integer histogram. Bounds are ascending
// inclusive upper limits; values above the last bound land in an implicit
// overflow bucket. The zero value is not usable — histograms come from
// Registry.Histogram — but a nil *Histogram is valid and ignores all
// observations.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1; last is overflow
	sum     atomic.Int64
	count   atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Stopwatch times one operation into a duration histogram. The zero value
// (from a nil histogram) is valid: Stop is then a no-op and the clock is
// never read.
type Stopwatch struct {
	h  *Histogram
	t0 time.Time
}

// Start begins timing an operation. On a nil histogram it returns the zero
// Stopwatch without reading the clock, so a disabled timer costs one branch.
func (h *Histogram) Start() Stopwatch {
	if h == nil {
		return Stopwatch{}
	}
	return Stopwatch{h: h, t0: time.Now()}
}

// Stop records the elapsed nanoseconds since Start.
func (s Stopwatch) Stop() {
	if s.h == nil {
		return
	}
	s.h.Observe(time.Since(s.t0).Nanoseconds())
}

// DurationBounds returns the standard exponential duration bucket bounds in
// nanoseconds: 1µs to ~4.3s in ×4 steps. The slice is fresh and may be
// modified by the caller.
func DurationBounds() []int64 {
	bounds := make([]int64, 0, 12)
	for b := int64(1000); b <= 4<<30; b *= 4 { // 1µs … ~4.3s
		bounds = append(bounds, b)
	}
	return bounds
}

// SizeBounds returns the standard exponential size bucket bounds in bytes:
// 256B to 256MiB in ×4 steps.
func SizeBounds() []int64 {
	bounds := make([]int64, 0, 11)
	for b := int64(256); b <= 256<<20; b *= 4 {
		bounds = append(bounds, b)
	}
	return bounds
}

// CountBounds returns exponential bucket bounds for small cardinalities
// (alphabet sizes, shard counts): 4 to ~1M in ×4 steps.
func CountBounds() []int64 {
	bounds := make([]int64, 0, 10)
	for b := int64(4); b <= 1<<20; b *= 4 {
		bounds = append(bounds, b)
	}
	return bounds
}

// Registry is a named collection of instruments. Instruments are created
// on first lookup and shared thereafter, so independent pipeline components
// referring to the same metric name aggregate into one series. A nil
// *Registry is valid: every lookup returns a nil instrument and Snapshot
// returns nil, which disables instrumentation end to end.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it if needed.
// A nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds if needed (bounds must be ascending; they are
// copied). A later lookup of an existing histogram ignores bounds.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		b := append([]int64(nil), bounds...)
		h = &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time export of a Registry, safe to retain, compare
// and serialize (it shares nothing with the live instruments).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// HistogramSnapshot is the exported state of one histogram. Buckets are
// cumulative (Prometheus "le" semantics) over the finite bounds; Count also
// covers the overflow bucket, so Count >= the last bucket's value.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one cumulative histogram bucket: the number of observations
// less than or equal to UpperBound.
type Bucket struct {
	UpperBound int64 `json:"le"`
	Count      int64 `json:"count"`
}

// Mean returns the histogram's mean observation, or 0 when empty.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Snapshot exports the registry's current state. A nil registry returns
// nil. Because observations are individually atomic but not coordinated,
// a snapshot taken while the pipeline runs is approximate (each instrument
// is internally consistent; cross-instrument invariants may lag).
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Sum:     h.sum.Load(),
			Buckets: make([]Bucket, len(h.bounds)),
		}
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.buckets[i].Load()
			hs.Buckets[i] = Bucket{UpperBound: b, Count: cum}
		}
		hs.Count = cum + h.buckets[len(h.bounds)].Load()
		s.Histograms[name] = hs
	}
	return s
}

// names returns the sorted instrument names of one kind, for deterministic
// exposition output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
