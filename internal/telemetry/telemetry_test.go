package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a.b") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []int64{10, 100, 1000})
	for _, v := range []int64{1, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["h"]
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.Sum != 1+10+11+100+5000 {
		t.Fatalf("sum = %d", s.Sum)
	}
	// Cumulative: le=10 → 2, le=100 → 4, le=1000 → 4; overflow in Count.
	want := []Bucket{{10, 2}, {100, 4}, {1000, 4}}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %v", s.Buckets)
	}
	for i, b := range want {
		if s.Buckets[i] != b {
			t.Fatalf("bucket %d = %+v, want %+v", i, s.Buckets[i], b)
		}
	}
	if s.Mean() != float64(s.Sum)/5 {
		t.Fatalf("mean = %v", s.Mean())
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", DurationBounds())
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(5)
	h.Start().Stop()
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

// TestDisabledPathAllocs asserts the disabled (nil-handle) hot path never
// allocates: this is what lets instrumentation stay compiled into the
// pipeline at near-zero cost when telemetry is off.
func TestDisabledPathAllocs(t *testing.T) {
	var r *Registry
	var c *Counter
	var h *Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(7)
		h.Observe(42)
		sw := h.Start()
		sw.Stop()
		_ = r.Counter("name")
		_ = r.Histogram("name", nil)
		_ = r.Gauge("name")
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocated %v per op, want 0", allocs)
	}
}

// TestEnabledObserveAllocs asserts the enabled hot path (counter add,
// histogram observe) is allocation-free too — only registration allocates.
func TestEnabledObserveAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", DurationBounds())
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		h.Observe(12345)
	})
	if allocs != 0 {
		t.Fatalf("enabled observe path allocated %v per op, want 0", allocs)
	}
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", []int64{8})
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				h.Observe(int64(w))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*each {
		t.Fatalf("counter = %d, want %d", got, workers*each)
	}
	s := r.Snapshot().Histograms["h"]
	if s.Count != workers*each {
		t.Fatalf("hist count = %d, want %d", s.Count, workers*each)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("compress.batches").Add(3)
	r.Gauge("pool.helpers_active").Set(2)
	h := r.Histogram("compress.stage.huffman.ns", []int64{1000, 1000000})
	h.Observe(500)
	h.Observe(2000000)

	rec := httptest.NewRecorder()
	Handler(r, nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE mdz_compress_batches_total counter",
		"mdz_compress_batches_total 3",
		"# TYPE mdz_pool_helpers_active gauge",
		"mdz_pool_helpers_active 2",
		"# TYPE mdz_compress_stage_huffman_ns histogram",
		`mdz_compress_stage_huffman_ns_bucket{le="1000"} 1`,
		`mdz_compress_stage_huffman_ns_bucket{le="+Inf"} 2`,
		"mdz_compress_stage_huffman_ns_sum 2000500",
		"mdz_compress_stage_huffman_ns_count 2",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, body)
		}
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
}

func TestExpvarAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(9)
	r.Histogram("h", []int64{10}).Observe(3)
	raw, err := json.Marshal(r.Expvar()())
	if err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Counters["c"] != 9 {
		t.Fatalf("roundtripped counter = %d, want 9", decoded.Counters["c"])
	}
	if decoded.Histograms["h"].Count != 1 {
		t.Fatalf("roundtripped hist count = %d, want 1", decoded.Histograms["h"].Count)
	}
}

func TestStandardBounds(t *testing.T) {
	for _, bounds := range [][]int64{DurationBounds(), SizeBounds(), CountBounds()} {
		if len(bounds) == 0 {
			t.Fatal("empty bounds")
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				t.Fatalf("bounds not ascending: %v", bounds)
			}
		}
	}
}
