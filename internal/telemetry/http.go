package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// promPrefix namespaces every exposed metric, per Prometheus convention.
const promPrefix = "mdz_"

// promName maps a dotted registry name to a Prometheus-legal metric name:
// "compress.stage.huffman.ns" → "mdz_compress_stage_huffman_ns".
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(promPrefix) + len(name))
	b.WriteString(promPrefix)
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): counters with a _total suffix, gauges verbatim,
// histograms with cumulative le-labelled buckets plus _sum and _count.
// Output order is deterministic. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range sortedKeys(r.counters) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s_total counter\n%s_total %d\n", pn, pn, r.counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.gauges) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, r.gauges[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.buckets[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, b, cum); err != nil {
				return err
			}
		}
		cum += h.buckets[len(h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			pn, cum, pn, h.sum.Load(), pn, cum); err != nil {
			return err
		}
	}
	return nil
}

// Handler returns an http.Handler serving the given registries in the
// Prometheus text format; nil registries are skipped. Mount it on /metrics.
func Handler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, r := range regs {
			if err := r.WritePrometheus(w); err != nil {
				return
			}
		}
	})
}

// Expvar returns the registry as an expvar.Func rendering its live
// Snapshot, suitable for expvar.Publish. A nil registry yields null.
func (r *Registry) Expvar() expvar.Func {
	return func() any { return r.Snapshot() }
}
