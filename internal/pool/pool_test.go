package pool

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"github.com/mdz/mdz/internal/telemetry"
)

func TestNilPoolRunsSerially(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Errorf("nil pool workers = %d", p.Workers())
	}
	got := make([]int, 5)
	if err := p.Run(5, func(i int) error { got[i] = i + 1; return nil }); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i+1 {
			t.Errorf("task %d not run", i)
		}
	}
}

func TestRunAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 13} {
		p := New(workers)
		if p.Workers() != workers {
			t.Errorf("Workers() = %d, want %d", p.Workers(), workers)
		}
		const n = 257
		var hits [n]atomic.Int32
		if err := p.Run(n, func(i int) error { hits[i].Add(1); return nil }); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestRunReturnsLowestIndexError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	for _, workers := range []int{1, 4} {
		p := New(workers)
		err := p.Run(10, func(i int) error {
			switch i {
			case 3:
				return errA
			case 7:
				return errB
			}
			return nil
		})
		if err != errA {
			t.Errorf("workers=%d: err = %v, want %v", workers, err, errA)
		}
	}
}

func TestNestedRunDoesNotDeadlock(t *testing.T) {
	p := New(4)
	var total atomic.Int32
	err := p.Run(8, func(i int) error {
		return p.Run(8, func(j int) error {
			return p.Run(3, func(k int) error {
				total.Add(1)
				return nil
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if total.Load() != 8*8*3 {
		t.Errorf("ran %d inner tasks, want %d", total.Load(), 8*8*3)
	}
}

func TestZeroTasks(t *testing.T) {
	if err := New(4).Run(0, func(int) error { t.Error("task ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Error("default pool has no workers")
	}
	if New(-3).Workers() < 1 {
		t.Error("negative workers pool unusable")
	}
}

func TestRunRecoversPanicToPanicError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := New(workers)
		err := p.Run(8, func(i int) error {
			if i == 5 {
				panic("boom")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v (%T), want *PanicError", workers, err, err)
		}
		if pe.Task != 5 || pe.Value != "boom" {
			t.Errorf("workers=%d: PanicError = task %d value %v", workers, pe.Task, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Errorf("workers=%d: no stack captured", workers)
		}
	}
}

func TestPanicErrorLowestIndexVsError(t *testing.T) {
	errA := errors.New("a")
	p := New(1) // serial: deterministic ordering
	err := p.Run(10, func(i int) error {
		switch i {
		case 2:
			panic("early")
		case 6:
			return errA
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Task != 2 {
		t.Fatalf("err = %v, want PanicError for task 2", err)
	}
}

func TestPanicErrorUnwrapsErrorValue(t *testing.T) {
	sentinel := errors.New("inner")
	err := New(1).Run(1, func(int) error { panic(sentinel) })
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is(err, sentinel) = false for %v", err)
	}
}

func TestPanicsRecoveredCounter(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := New(2)
	p.SetTelemetry(Instruments(reg))
	_ = p.Run(4, func(i int) error {
		if i%2 == 0 {
			panic(i)
		}
		return nil
	})
	if got := reg.Counter("pool.panics_recovered").Value(); got != 2 {
		t.Fatalf("panics_recovered = %d, want 2", got)
	}
}

func TestRunContextCancelSkipsUnstartedTasks(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := New(workers)
		ctx, cancel := context.WithCancel(context.Background())
		var started atomic.Int32
		err := p.RunContext(ctx, 64, func(i int) error {
			started.Add(1)
			cancel()
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if s := started.Load(); s >= 64 {
			t.Errorf("workers=%d: all %d tasks ran despite cancellation", workers, s)
		}
	}
}

func TestRunContextNilAndUncancelled(t *testing.T) {
	p := New(4)
	var n atomic.Int32
	if err := p.RunContext(nil, 16, func(int) error { n.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := p.RunContext(context.Background(), 16, func(int) error { n.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 32 {
		t.Errorf("ran %d tasks, want 32", n.Load())
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := New(4).RunContext(ctx, 8, func(int) error {
		t.Error("task ran on pre-cancelled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestChunkedCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 13} {
		for _, n := range []int{1, 2, 7, 64, 257} {
			p := New(workers)
			hits := make([]atomic.Int32, n)
			var chunks atomic.Int32
			err := p.RunChunked(n, func(lo, hi int) error {
				chunks.Add(1)
				if lo >= hi || lo < 0 || hi > n {
					t.Errorf("workers=%d n=%d: bad chunk [%d,%d)", workers, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					hits[i].Add(1)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range hits {
				if c := hits[i].Load(); c != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, c)
				}
			}
			if c := int(chunks.Load()); c > workers || c > n {
				t.Errorf("workers=%d n=%d: %d chunks, want <= min(workers, n)", workers, n, c)
			}
		}
	}
}

func TestChunkedNilPoolSingleChunk(t *testing.T) {
	var p *Pool
	calls := 0
	err := p.RunChunked(9, func(lo, hi int) error {
		calls++
		if lo != 0 || hi != 9 {
			t.Errorf("chunk [%d,%d), want [0,9)", lo, hi)
		}
		return nil
	})
	if err != nil || calls != 1 {
		t.Fatalf("err=%v calls=%d, want nil/1", err, calls)
	}
}

func TestChunkedLowestChunkError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	for _, workers := range []int{1, 4} {
		p := New(workers)
		err := p.RunChunked(16, func(lo, hi int) error {
			if lo <= 12 && 12 < hi {
				return errB
			}
			if lo <= 1 && 1 < hi {
				return errA
			}
			return nil
		})
		// Single-chunk runs see index 12's branch first (checked first);
		// multi-chunk runs must prefer the chunk containing index 1.
		want := errA
		if workers == 1 {
			want = errB
		}
		if err != want {
			t.Errorf("workers=%d: err = %v, want %v", workers, err, want)
		}
	}
}

func TestChunkedRecoversPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := New(workers).RunChunked(8, func(lo, hi int) error {
			if lo == 0 {
				panic("chunk boom")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) || pe.Task != 0 || pe.Value != "chunk boom" {
			t.Fatalf("workers=%d: err = %v, want PanicError{Task:0}", workers, err)
		}
	}
}

func TestChunkedPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := New(4).RunContextChunked(ctx, 8, func(lo, hi int) error {
		t.Error("chunk ran on pre-cancelled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestChunkedNestedDoesNotDeadlock(t *testing.T) {
	p := New(4)
	var total atomic.Int32
	err := p.RunChunked(8, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			if err := p.RunChunked(8, func(lo2, hi2 int) error {
				total.Add(int32(hi2 - lo2))
				return nil
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total.Load() != 8*8 {
		t.Errorf("covered %d inner indices, want %d", total.Load(), 8*8)
	}
}

func TestChunkedZeroTasks(t *testing.T) {
	if err := New(4).RunChunked(0, func(int, int) error { t.Error("chunk ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestChunkedTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := New(4)
	p.SetTelemetry(Instruments(reg))
	if err := p.RunChunked(16, func(lo, hi int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("pool.chunked_runs").Value(); got != 1 {
		t.Errorf("chunked_runs = %d, want 1", got)
	}
	if got := reg.Counter("pool.chunks").Value(); got < 1 || got > 4 {
		t.Errorf("chunks = %d, want 1..4", got)
	}
	if got := reg.Gauge("pool.helpers_active").Value(); got != 0 {
		t.Errorf("helpers_active = %d after return, want 0", got)
	}
}
