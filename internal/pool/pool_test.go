package pool

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestNilPoolRunsSerially(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Errorf("nil pool workers = %d", p.Workers())
	}
	got := make([]int, 5)
	if err := p.Run(5, func(i int) error { got[i] = i + 1; return nil }); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i+1 {
			t.Errorf("task %d not run", i)
		}
	}
}

func TestRunAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 13} {
		p := New(workers)
		if p.Workers() != workers {
			t.Errorf("Workers() = %d, want %d", p.Workers(), workers)
		}
		const n = 257
		var hits [n]atomic.Int32
		if err := p.Run(n, func(i int) error { hits[i].Add(1); return nil }); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestRunReturnsLowestIndexError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	for _, workers := range []int{1, 4} {
		p := New(workers)
		err := p.Run(10, func(i int) error {
			switch i {
			case 3:
				return errA
			case 7:
				return errB
			}
			return nil
		})
		if err != errA {
			t.Errorf("workers=%d: err = %v, want %v", workers, err, errA)
		}
	}
}

func TestNestedRunDoesNotDeadlock(t *testing.T) {
	p := New(4)
	var total atomic.Int32
	err := p.Run(8, func(i int) error {
		return p.Run(8, func(j int) error {
			return p.Run(3, func(k int) error {
				total.Add(1)
				return nil
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if total.Load() != 8*8*3 {
		t.Errorf("ran %d inner tasks, want %d", total.Load(), 8*8*3)
	}
}

func TestZeroTasks(t *testing.T) {
	if err := New(4).Run(0, func(int) error { t.Error("task ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Error("default pool has no workers")
	}
	if New(-3).Workers() < 1 {
		t.Error("negative workers pool unusable")
	}
}
