// Package pool provides a bounded, work-sharing parallel executor shared by
// the compression pipeline's three nesting levels (axes × ADP trials ×
// particle shards).
//
// The design goal is a single global bound on concurrency that is safe under
// arbitrary nesting: a Pool holds workers−1 helper tokens and every Run call
// executes tasks on the calling goroutine as well, grabbing helper tokens
// only opportunistically (TryAcquire semantics). A nested Run that finds all
// tokens busy simply degrades to serial execution in its caller — it can
// never deadlock, and the total number of running goroutines stays bounded
// by the configured worker count regardless of nesting depth.
//
// Task results must be written into index-addressed slots by the callback,
// so outputs are assembled in deterministic order no matter which goroutine
// ran which task.
//
// Fault containment: a task that panics is recovered into a *PanicError
// (stack captured) and reported through the normal lowest-index-error
// return, so one poisoned shard degrades to an error instead of crashing
// the process. RunContext adds cooperative cancellation — tasks not yet
// started when the context is done are skipped and report ctx.Err();
// tasks already running always finish, so every Run/RunContext return
// happens strictly after all its goroutines have exited (no leaks, and
// deferred scratch returns inside tasks always execute).
package pool

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"github.com/mdz/mdz/internal/telemetry"
)

// Pool is a bounded executor. A nil *Pool is valid and runs everything
// serially on the caller's goroutine.
type Pool struct {
	sem chan struct{} // helper tokens: capacity = workers-1
	tel *Telemetry    // nil when uninstrumented
}

// Telemetry is the pool's instrument set. All fields are nil-safe, so a
// partially populated struct is fine; a nil *Telemetry disables
// instrumentation entirely.
type Telemetry struct {
	// Runs counts parallel-eligible Run calls (n > 1 on a parallel pool).
	Runs *telemetry.Counter
	// Tasks counts tasks executed by those calls.
	Tasks *telemetry.Counter
	// HelperSpawns counts helper goroutines claimed from the token pool.
	HelperSpawns *telemetry.Counter
	// SerialDegradations counts parallel-eligible Run calls that could not
	// claim a single helper token (a saturated pool: the call degraded to
	// serial execution in its caller — the intended nesting behaviour, but
	// a high rate means Workers is the bottleneck).
	SerialDegradations *telemetry.Counter
	// PanicsRecovered counts task panics converted into *PanicError.
	PanicsRecovered *telemetry.Counter
	// HelpersActive gauges the helper goroutines currently running.
	HelpersActive *telemetry.Gauge
	// ChunkedRuns counts parallel-eligible RunContextChunked calls.
	ChunkedRuns *telemetry.Counter
	// Chunks counts the contiguous chunks those calls were split into —
	// one chunk per participating goroutine. Chunks/ChunkedRuns is the
	// effective fan-out; a ratio near 1 under load means the pool was
	// saturated and affinity runs degraded to a single participant.
	Chunks *telemetry.Counter
}

// Instruments builds the pool's instrument set on reg under the "pool."
// namespace. A nil registry yields nil (uninstrumented).
func Instruments(reg *telemetry.Registry) *Telemetry {
	if reg == nil {
		return nil
	}
	return &Telemetry{
		Runs:               reg.Counter("pool.runs"),
		Tasks:              reg.Counter("pool.tasks"),
		HelperSpawns:       reg.Counter("pool.helper_spawns"),
		SerialDegradations: reg.Counter("pool.serial_degradations"),
		PanicsRecovered:    reg.Counter("pool.panics_recovered"),
		HelpersActive:      reg.Gauge("pool.helpers_active"),
		ChunkedRuns:        reg.Counter("pool.chunked_runs"),
		Chunks:             reg.Counter("pool.chunks"),
	}
}

// SetTelemetry attaches (or detaches, with nil) the pool's instruments.
// Call it before the pool is shared between goroutines.
func (p *Pool) SetTelemetry(t *Telemetry) {
	if p != nil {
		p.tel = t
	}
}

// New returns a Pool allowing up to workers concurrently running tasks
// (including the goroutine that calls Run). workers <= 0 selects
// runtime.GOMAXPROCS(0); workers == 1 yields a serial pool.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, workers-1)}
}

// Workers reports the concurrency bound (1 for a nil or serial pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return cap(p.sem) + 1
}

// PanicError reports a task panic recovered by the pool. It satisfies
// error and carries the panic value plus the stack of the panicking
// goroutine, captured at recovery time.
type PanicError struct {
	// Task is the index of the task that panicked.
	Task int
	// Value is the value passed to panic.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("pool: task %d panicked: %v", e.Task, e.Value)
}

// Unwrap exposes a wrapped error panic value (panic(err)) to errors.Is/As.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// call runs f(i), converting a panic into a *PanicError.
func (p *Pool) call(f func(i int) error, i int) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Task: i, Value: v, Stack: debug.Stack()}
			if p != nil && p.tel != nil {
				p.tel.PanicsRecovered.Inc()
			}
		}
	}()
	return f(i)
}

// Run executes f(0) … f(n-1), sharing the work between the calling
// goroutine and any helper slots it can claim from the pool. It returns the
// error of the lowest-index failing task (all tasks still run). Run is safe
// to call concurrently and reentrantly; nested calls that find the pool
// saturated run serially in their caller.
func (p *Pool) Run(n int, f func(i int) error) error {
	return p.RunContext(nil, n, f)
}

// RunContext is Run with cooperative cancellation: once ctx is done, tasks
// that have not started are skipped and their slots report ctx.Err(), which
// participates in the usual lowest-index-error selection. Tasks already
// running are never interrupted — long tasks should poll ctx themselves.
// RunContext returns only after every started task has finished, so callers
// never observe in-flight goroutines after it returns. A nil ctx disables
// cancellation.
func (p *Pool) RunContext(ctx context.Context, n int, f func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if p == nil || cap(p.sem) == 0 || n == 1 {
		var firstErr error
		for i := 0; i < n; i++ {
			var err error
			if ctx != nil && ctx.Err() != nil {
				err = ctx.Err()
			} else {
				err = p.call(f, i)
			}
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	errs := make([]error, n)
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if ctx != nil && ctx.Err() != nil {
				errs[i] = ctx.Err()
				continue
			}
			errs[i] = p.call(f, i)
		}
	}
	var wg sync.WaitGroup
	spawned := 0
spawn:
	for ; spawned < n-1; spawned++ {
		select {
		case p.sem <- struct{}{}:
			if p.tel != nil {
				p.tel.HelpersActive.Add(1)
			}
			wg.Add(1)
			go func() {
				defer func() {
					<-p.sem
					if p.tel != nil {
						p.tel.HelpersActive.Add(-1)
					}
					wg.Done()
				}()
				work()
			}()
		default:
			break spawn // pool saturated: caller absorbs the rest
		}
	}
	if t := p.tel; t != nil {
		t.Runs.Inc()
		t.Tasks.Add(int64(n))
		t.HelperSpawns.Add(int64(spawned))
		if spawned == 0 {
			t.SerialDegradations.Inc()
		}
	}
	work()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// callRange runs f(lo, hi), converting a panic into a *PanicError whose
// Task is the first index of the chunk.
func (p *Pool) callRange(f func(lo, hi int) error, lo, hi int) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Task: lo, Value: v, Stack: debug.Stack()}
			if p != nil && p.tel != nil {
				p.tel.PanicsRecovered.Inc()
			}
		}
	}()
	return f(lo, hi)
}

// RunChunked is RunContextChunked without cancellation.
func (p *Pool) RunChunked(n int, f func(lo, hi int) error) error {
	return p.RunContextChunked(nil, n, f)
}

// RunContextChunked executes f over the index range [0, n) split into at
// most Workers contiguous chunks, exactly one chunk per participating
// goroutine. Unlike RunContext — where a shared counter lets tasks migrate
// to whichever goroutine is free — the chunk→goroutine assignment is fixed
// for the whole call, so state a participant acquires once per chunk
// (scratch buffers, Huffman slabs) serves every index in its chunk instead
// of round-tripping through a global sync.Pool per index. The cost is
// static load balance: chunks are equal-sized, so one slow index stalls its
// chunk. Use it when per-index work is uniform (particle shards) and
// per-acquisition state dominates; use RunContext when task cost varies.
//
// Helper tokens are claimed opportunistically up front (TryAcquire, never
// blocking), so nested calls degrade to a single chunk on the caller's
// goroutine rather than deadlocking. f must poll ctx itself for
// cancellation inside a chunk; chunks not yet started when ctx is done are
// skipped and report ctx.Err(). The error of the lowest-indexed failing
// chunk is returned, and panics are contained as in Run.
func (p *Pool) RunContextChunked(ctx context.Context, n int, f func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	parts := 1
	if p != nil && cap(p.sem) > 0 && n > 1 {
		max := cap(p.sem) + 1
		if max > n {
			max = n
		}
		claimed := 0
	claim:
		for claimed < max-1 {
			select {
			case p.sem <- struct{}{}:
				claimed++
			default:
				break claim // pool saturated: run with what we have
			}
		}
		parts = claimed + 1
	}
	if parts == 1 {
		if p != nil && p.tel != nil && p.Workers() > 1 && n > 1 {
			p.tel.ChunkedRuns.Inc()
			p.tel.Chunks.Inc()
			p.tel.SerialDegradations.Inc()
		}
		if ctx != nil && ctx.Err() != nil {
			return ctx.Err()
		}
		return p.callRange(f, 0, n)
	}
	if t := p.tel; t != nil {
		t.ChunkedRuns.Inc()
		t.Chunks.Add(int64(parts))
		t.HelperSpawns.Add(int64(parts - 1))
		t.HelpersActive.Add(int64(parts - 1))
	}
	errs := make([]error, parts)
	runChunk := func(j int) {
		lo, hi := j*n/parts, (j+1)*n/parts
		if ctx != nil && ctx.Err() != nil {
			errs[j] = ctx.Err()
			return
		}
		errs[j] = p.callRange(f, lo, hi)
	}
	var wg sync.WaitGroup
	for j := 1; j < parts; j++ {
		wg.Add(1)
		go func(j int) {
			defer func() {
				<-p.sem
				if p.tel != nil {
					p.tel.HelpersActive.Add(-1)
				}
				wg.Done()
			}()
			runChunk(j)
		}(j)
	}
	runChunk(0)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
