package core

import (
	"sync"

	"github.com/mdz/mdz/internal/huffman"
)

// encodeScratch holds the per-shard working buffers of the encode hot path
// (quantization bins, level deltas, reconstruction row, outlier bytes,
// payload assembly, Huffman scratch). Instances are recycled through a
// sync.Pool so steady-state encoding performs no per-batch slice
// allocations; each concurrent shard task owns one instance for the
// duration of its encode. The fused kernels write codes directly in
// serialized order and chain reconstructions in place, so no interleave
// target or second reconstruction row is needed.
type encodeScratch struct {
	bins, levels      []int
	recon             []float64
	outliers, payload []byte
	huff              huffman.Scratch
}

var encScratchPool = sync.Pool{New: func() any { return new(encodeScratch) }}

// decodeScratch mirrors encodeScratch for the decode path. The snapshot
// rows themselves are returned to the caller and therefore always freshly
// allocated; only the transient symbol streams are pooled.
type decodeScratch struct {
	bins, levels []int
}

var decScratchPool = sync.Pool{New: func() any { return new(decodeScratch) }}

// intsCap returns s resized to n, reallocating only when capacity is
// insufficient. Contents are unspecified.
func intsCap(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// floatsCap is intsCap for float64 slices.
func floatsCap(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// extendInts grows s by n elements and returns the grown slice plus the new
// tail, whose contents are unspecified (callers overwrite every element).
// Doubling growth keeps pooled buffers from reallocating every row.
func extendInts(s []int, n int) ([]int, []int) {
	l := len(s)
	if cap(s) < l+n {
		c := 2*cap(s) + n
		ns := make([]int, l+n, c)
		copy(ns, s)
		s = ns
	} else {
		s = s[:l+n]
	}
	return s, s[l:]
}
