package core

import (
	"bytes"
	"testing"

	"github.com/mdz/mdz/internal/telemetry"
)

// encodeAll runs batches through one encoder, decoding each block to check
// the error bound, and returns the concatenated blocks.
func encodeAll(t *testing.T, p Params, batches [][][]float64, eb float64) []byte {
	t.Helper()
	enc, err := NewEncoder(p)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(Params{})
	var out []byte
	for bi, batch := range batches {
		blk, err := enc.EncodeBatch(batch)
		if err != nil {
			t.Fatalf("batch %d: encode: %v", bi, err)
		}
		got, err := dec.DecodeBatch(blk)
		if err != nil {
			t.Fatalf("batch %d: decode: %v", bi, err)
		}
		if e := maxAbsErr(batch, got); e > eb {
			t.Fatalf("batch %d: max error %v exceeds bound %v", bi, e, eb)
		}
		out = append(out, blk...)
	}
	return out
}

// TestADPSampleShardsAcceptance is the gate on the amortized-ADP knob: on a
// stream with a regime change mid-way (temporally smooth, then crystalline),
// deciding re-evaluations on a single sampled shard must stay within 2% of
// the full-trial compressed size, honor the error bound, and be fully
// deterministic. The sampled counter proves the fast path actually ran.
func TestADPSampleShardsAcceptance(t *testing.T) {
	const eb = 1e-3
	var batches [][][]float64
	liquid := liquidBatch(96, 600, 11)
	for i := 0; i < 96; i += 8 {
		batches = append(batches, liquid[i:i+8])
	}
	crystal := crystalBatch(96, 600, 12)
	for i := 0; i < 96; i += 8 {
		batches = append(batches, crystal[i:i+8])
	}

	base := Params{ErrorBound: eb, Method: ADP, AdaptInterval: 4, Shards: 4}
	full := encodeAll(t, base, batches, eb)

	reg := telemetry.NewRegistry()
	sampledParams := base
	sampledParams.ADPSampleShards = 1
	sampledParams.Tel = EncoderInstruments(reg, "x")
	sampled := encodeAll(t, sampledParams, batches, eb)

	if v := reg.Counter("compress.adp.x.sampled_evals").Value(); v == 0 {
		t.Fatal("sampled_evals = 0: the sampled trial path never engaged")
	}
	// The knob trades trial cost for selection fidelity; the acceptance
	// bar is a compressed size within 2% of full trials on this workload.
	if limit := int(float64(len(full)) * 1.02); len(sampled) > limit {
		t.Fatalf("sampled ADP output %d B exceeds 1.02x full-trial output %d B", len(sampled), len(full))
	}

	again := encodeAll(t, sampledParams, batches, eb)
	if !bytes.Equal(sampled, again) {
		t.Fatal("sampled ADP output is not deterministic across runs")
	}
}

// TestADPSampleShardsValidation: the knob is range-checked like Shards.
func TestADPSampleShardsValidation(t *testing.T) {
	if _, err := NewEncoder(Params{ErrorBound: 1e-3, ADPSampleShards: -1}); err == nil {
		t.Error("negative ADPSampleShards accepted")
	}
	if _, err := NewEncoder(Params{ErrorBound: 1e-3, ADPSampleShards: MaxShards + 1}); err == nil {
		t.Error("ADPSampleShards above MaxShards accepted")
	}
	if _, err := NewEncoder(Params{ErrorBound: 1e-3, ADPSampleShards: 2}); err != nil {
		t.Errorf("valid ADPSampleShards rejected: %v", err)
	}
}
