package core

import (
	"strings"

	"github.com/mdz/mdz/internal/huffman"
	"github.com/mdz/mdz/internal/telemetry"
)

// Telemetry is the instrument set threaded through an Encoder or Decoder.
// Every field is nil-safe, so a zero Telemetry (the disabled state) keeps
// all instrumentation call sites valid at near-zero cost. Encoders of the
// three axes share the stage histograms and scope counters but carry
// per-axis ADP counters; use EncoderInstruments/DecoderInstruments to build
// consistently named sets on a registry.
//
// Stage attribution note: under ADP, trial compressions contribute to the
// stage timings and scope counters exactly like emitted batches — they are
// real pipeline work, which is the point of asking "which stage is hot".
// ADP decision counters (Evals, Wins, Transitions) track the selection
// itself.
type Telemetry struct {
	// Stage wall time, nanoseconds, one observation per shard (FitNS: one
	// per encoder lifetime; BatchNS: one per axis batch). QuantNS is the
	// fused prediction+quantization loop on encode and the dequantization
	// loop on decode; the two stages are a single pass in this pipeline.
	FitNS, QuantNS, HuffNS, BackendNS, BatchNS *telemetry.Histogram
	// Per-shard Huffman table overhead and alphabet size (encode side).
	HuffTableBytes, HuffAlphabet *telemetry.Histogram
	// Values counts quantized values; Outliers the subset that fell out of
	// quantization scope (the paper's unpredictable points). Encode side.
	Values, Outliers *telemetry.Counter
	// Lossless-backend byte flow (uncompressed in, compressed out on
	// encode; reversed on decode).
	BackendInBytes, BackendOutBytes *telemetry.Counter
	// Batches counts per-axis batch operations (3 per block).
	Batches *telemetry.Counter
	// ADP decision tracking, per axis: evaluation rounds, the winner of
	// each round, and rounds whose winner differed from the incumbent.
	Evals, Transitions *telemetry.Counter
	Wins               [4]*telemetry.Counter // indexed by Method
	// SampledEvals counts the subset of Evals decided on a sampled shard
	// prefix (Params.ADPSampleShards). Per axis.
	SampledEvals *telemetry.Counter
	// ReusedEvals counts evaluation rounds that skipped the trial trio and
	// reused the cached winner (Params.ADPRetrialInterval). These rounds are
	// not counted in Evals: Evals remains the number of trials actually run.
	// Per axis.
	ReusedEvals *telemetry.Counter
	// ScratchAcquires counts scratch-state acquisitions from the global
	// pools — one per chunk of a sharded run. A rate near the shard rate
	// means affinity is not engaging (saturated pool, serial chunks); a
	// rate near the worker count per batch is the healthy state.
	ScratchAcquires *telemetry.Counter
}

// EncoderInstruments builds the encode-side instrument set for one axis
// ("x", "y" or "z") on reg. Stage histograms and scope counters share names
// across axes and therefore aggregate; ADP counters are per-axis. A nil
// registry returns nil (instrumentation disabled).
func EncoderInstruments(reg *telemetry.Registry, axis string) *Telemetry {
	if reg == nil {
		return nil
	}
	t := &Telemetry{
		FitNS:           reg.Histogram("compress.stage.kmeans_fit.ns", telemetry.DurationBounds()),
		QuantNS:         reg.Histogram("compress.stage.predict_quant.ns", telemetry.DurationBounds()),
		HuffNS:          reg.Histogram("compress.stage.huffman.ns", telemetry.DurationBounds()),
		BackendNS:       reg.Histogram("compress.stage.lossless.ns", telemetry.DurationBounds()),
		BatchNS:         reg.Histogram("compress.stage.batch.ns", telemetry.DurationBounds()),
		HuffTableBytes:  reg.Histogram("compress.huffman.table.bytes", telemetry.SizeBounds()),
		HuffAlphabet:    reg.Histogram("compress.huffman.alphabet", telemetry.CountBounds()),
		Values:          reg.Counter("compress.quant.values"),
		Outliers:        reg.Counter("compress.quant.outliers"),
		BackendInBytes:  reg.Counter("compress.lossless.in.bytes"),
		BackendOutBytes: reg.Counter("compress.lossless.out.bytes"),
		Batches:         reg.Counter("compress.axis_batches"),
		Evals:           reg.Counter("compress.adp." + axis + ".evals"),
		Transitions:     reg.Counter("compress.adp." + axis + ".transitions"),
		SampledEvals:    reg.Counter("compress.adp." + axis + ".sampled_evals"),
		ReusedEvals:     reg.Counter("compress.adp." + axis + ".reused_evals"),
		ScratchAcquires: reg.Counter("compress.scratch.acquires"),
	}
	for _, m := range []Method{VQ, VQT, MT} {
		t.Wins[m] = reg.Counter("compress.adp." + axis + ".win." + strings.ToLower(m.String()))
	}
	return t
}

// DecoderInstruments builds the decode-side instrument set on reg (decode
// shards are axis-anonymous, so there is one shared set). A nil registry
// returns nil.
func DecoderInstruments(reg *telemetry.Registry) *Telemetry {
	if reg == nil {
		return nil
	}
	return &Telemetry{
		QuantNS:         reg.Histogram("decompress.stage.dequant.ns", telemetry.DurationBounds()),
		HuffNS:          reg.Histogram("decompress.stage.huffman.ns", telemetry.DurationBounds()),
		BackendNS:       reg.Histogram("decompress.stage.lossless.ns", telemetry.DurationBounds()),
		BatchNS:         reg.Histogram("decompress.stage.batch.ns", telemetry.DurationBounds()),
		BackendInBytes:  reg.Counter("decompress.lossless.in.bytes"),
		BackendOutBytes: reg.Counter("decompress.lossless.out.bytes"),
		Batches:         reg.Counter("decompress.axis_batches"),
		ScratchAcquires: reg.Counter("decompress.scratch.acquires"),
	}
}

// observeHuffman records one EncodeInts outcome.
func (t *Telemetry) observeHuffman(st huffman.EncodeStats) {
	t.HuffTableBytes.Observe(int64(st.TableBytes))
	t.HuffAlphabet.Observe(int64(st.Symbols))
}
