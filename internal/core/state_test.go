package core

import (
	"bytes"
	"errors"
	"testing"
)

// TestEncoderStateRoundTrip checks the ExportState contract: a fresh
// encoder importing state exported after batch b emits byte-identical
// blocks for every following batch, per method and shard count.
func TestEncoderStateRoundTrip(t *testing.T) {
	batches := [][][]float64{
		crystalBatch(6, 200, 1),
		crystalBatch(6, 200, 2),
		crystalBatch(6, 200, 3),
		crystalBatch(6, 200, 4),
	}
	for _, m := range []Method{VQ, VQT, MT, ADP} {
		for _, shards := range []int{1, 4} {
			p := Params{ErrorBound: 1e-3, Method: m, Shards: shards}
			full, err := NewEncoder(p)
			if err != nil {
				t.Fatal(err)
			}
			// Encode the first two batches on the original encoder.
			for _, b := range batches[:2] {
				if _, err := full.EncodeBatch(b); err != nil {
					t.Fatalf("%v/%d: encode: %v", m, shards, err)
				}
			}
			st := full.ExportState()
			if st.Batch != 2 || st.Ref == nil {
				t.Fatalf("%v/%d: exported state batch=%d ref=%v", m, shards, st.Batch, st.Ref != nil)
			}

			resumed, err := NewEncoder(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := resumed.ImportState(st); err != nil {
				t.Fatalf("%v/%d: import: %v", m, shards, err)
			}
			for bi, b := range batches[2:] {
				want, err := full.EncodeBatch(b)
				if err != nil {
					t.Fatal(err)
				}
				got, err := resumed.EncodeBatch(b)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(want, got) {
					t.Errorf("%v/%d: batch %d diverged after state round-trip", m, shards, bi+2)
				}
			}
		}
	}
}

// TestDecoderRefReseed checks that SetRef lets a fresh decoder pick up
// mid-stream exactly where a continuous decoder would be.
func TestDecoderRefReseed(t *testing.T) {
	batches := [][][]float64{
		liquidBatch(5, 150, 7),
		liquidBatch(5, 150, 8),
		liquidBatch(5, 150, 9),
	}
	enc, err := NewEncoder(Params{ErrorBound: 1e-3, Method: MT})
	if err != nil {
		t.Fatal(err)
	}
	var blks [][]byte
	for _, b := range batches {
		blk, err := enc.EncodeBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		blks = append(blks, blk)
	}

	cont := NewDecoder(Params{})
	var wantLast [][]float64
	for i, blk := range blks {
		out, err := cont.DecodeBatch(blk)
		if err != nil {
			t.Fatal(err)
		}
		if i == len(blks)-1 {
			wantLast = out
		}
	}

	// A fresh decoder must refuse the MT block without a reference…
	fresh := NewDecoder(Params{})
	if _, err := fresh.DecodeBatch(blks[2]); !errors.Is(err, ErrOrder) {
		t.Fatalf("mid-stream decode without ref: err=%v, want ErrOrder", err)
	}
	// …and decode it bit-identically once reseeded.
	fresh.SetRef(cont.Ref())
	got, err := fresh.DecodeBatch(blks[2])
	if err != nil {
		t.Fatal(err)
	}
	for ti := range wantLast {
		for i := range wantLast[ti] {
			if wantLast[ti][i] != got[ti][i] {
				t.Fatalf("reseeded decode diverged at t=%d i=%d", ti, i)
			}
		}
	}
}

// TestImportStateRejects covers the guard rails around ImportState.
func TestImportStateRejects(t *testing.T) {
	p := Params{ErrorBound: 1e-3, Method: VQT}
	enc, err := NewEncoder(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.EncodeBatch(crystalBatch(4, 100, 1)); err != nil {
		t.Fatal(err)
	}
	st := enc.ExportState()

	if err := enc.ImportState(st); !errors.Is(err, ErrState) {
		t.Errorf("import into used encoder: err=%v, want ErrState", err)
	}

	other, _ := NewEncoder(Params{ErrorBound: 5e-3, Method: VQT})
	if err := other.ImportState(st); !errors.Is(err, ErrState) {
		t.Errorf("import with mismatched bound: err=%v, want ErrState", err)
	}

	bad := st
	bad.LevelDistance = 0
	dst, _ := NewEncoder(p)
	if err := dst.ImportState(bad); !errors.Is(err, ErrState) {
		t.Errorf("import with broken level model: err=%v, want ErrState", err)
	}
}

// TestBlockInfo checks header-only inspection of a block.
func TestBlockInfo(t *testing.T) {
	enc, err := NewEncoder(Params{ErrorBound: 1e-3, Method: VQ, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	blk, err := enc.EncodeBatch(crystalBatch(9, 120, 3))
	if err != nil {
		t.Fatal(err)
	}
	m, bs, n, err := BlockInfo(blk)
	if err != nil {
		t.Fatal(err)
	}
	if m != VQ || bs != 9 || n != 120 {
		t.Errorf("BlockInfo = (%v, %d, %d), want (VQ, 9, 120)", m, bs, n)
	}
	if _, _, _, err := BlockInfo([]byte("junk")); !errors.Is(err, ErrCorrupt) {
		t.Errorf("BlockInfo on junk: err=%v, want ErrCorrupt", err)
	}
}
