package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/mdz/mdz/internal/kmeans"
)

// ErrState is returned when imported encoder/decoder state is inconsistent
// with the configured parameters or internally invalid.
var ErrState = errors.New("core: inconsistent codec state")

// EncoderState is the cross-batch state of one axis encoder — everything
// beyond Params that EncodeBatch consults. Exporting it after batch b and
// importing it into a fresh Encoder built with the same Params yields
// byte-identical blocks for batches b+1, b+2, … It is also exactly the
// state a Decoder needs to be reseeded mid-stream (only Ref matters on the
// decode side; the rest lets a crashed writer resume).
type EncoderState struct {
	// ErrorBound and QuantScale echo the effective (filled) Params so a
	// restarting process can rebuild the encoder without re-deriving the
	// absolute bound from a first batch it no longer has.
	ErrorBound float64
	QuantScale int
	// K, LevelDistance (λ) and LevelOrigin (μ) are the k-means level model
	// fitted on snapshot 0 of the run.
	K             int
	LevelDistance float64
	LevelOrigin   float64
	// Current is the concrete method in use (ADP resolves to one of three).
	Current Method
	// Batch is the number of batches encoded so far (drives the ADP
	// re-evaluation schedule).
	Batch int
	// Ref is the reconstructed (quantized) snapshot 0 of the run, the MT
	// prediction reference. Nil before the first batch.
	Ref []float64
}

// ExportState snapshots the encoder's cross-batch state. The returned Ref
// is a copy; mutating it does not affect the encoder.
func (e *Encoder) ExportState() EncoderState {
	st := EncoderState{
		ErrorBound: e.p.ErrorBound,
		QuantScale: e.p.QuantScale,
		Current:    e.cur,
		Batch:      e.batch,
	}
	if e.km != nil {
		st.K = e.km.K
		st.LevelDistance = e.km.LevelDistance
		st.LevelOrigin = e.km.LevelOrigin
	}
	if e.ref != nil {
		st.Ref = append([]float64(nil), e.ref...)
	}
	return st
}

// ImportState restores state exported by ExportState into an encoder built
// with matching Params. It must be called before the first EncodeBatch.
func (e *Encoder) ImportState(st EncoderState) error {
	if e.batch != 0 || e.km != nil {
		return fmt.Errorf("%w: ImportState on a used encoder", ErrState)
	}
	if st.ErrorBound != e.p.ErrorBound || st.QuantScale != e.p.QuantScale {
		return fmt.Errorf("%w: state bound/scale (%v, %d) differ from params (%v, %d)",
			ErrState, st.ErrorBound, st.QuantScale, e.p.ErrorBound, e.p.QuantScale)
	}
	if st.Batch < 0 {
		return fmt.Errorf("%w: negative batch index", ErrState)
	}
	if st.Batch > 0 {
		if !(st.LevelDistance > 0) || math.IsInf(st.LevelDistance, 0) || math.IsNaN(st.LevelOrigin) {
			return fmt.Errorf("%w: invalid level model (λ=%v, μ=%v)", ErrState, st.LevelDistance, st.LevelOrigin)
		}
		if st.Current != VQ && st.Current != VQT && st.Current != MT {
			return fmt.Errorf("%w: invalid current method %v", ErrState, st.Current)
		}
		e.km = &kmeans.Result{K: st.K, LevelDistance: st.LevelDistance, LevelOrigin: st.LevelOrigin}
		e.cur = st.Current
	}
	if st.Ref != nil {
		e.ref = append([]float64(nil), st.Ref...)
	}
	e.batch = st.Batch
	return nil
}

// Ref reports the decoder's MT prediction reference (the reconstructed
// snapshot 0 of the run), or nil before the first decoded block. The
// returned slice is the decoder's own; callers must not mutate it.
func (d *Decoder) Ref() []float64 { return d.ref }

// SetRef reseeds the decoder's MT prediction reference from a checkpoint,
// replacing any existing reference. A nil ref clears it.
func (d *Decoder) SetRef(ref []float64) {
	if ref == nil {
		d.ref = nil
		return
	}
	d.ref = append([]float64(nil), ref...)
}

// BlockInfo reports a block's concrete method, snapshot count and particle
// count by parsing only its header — no payload is decompressed. It is what
// a salvaging reader uses to account for blocks it skips without decoding.
func BlockInfo(blk []byte) (m Method, bs, n int, err error) {
	h, err := parseHeader(blk)
	if err != nil {
		return 0, 0, 0, err
	}
	return h.method, h.bs, h.n, nil
}

// SetFaultHook installs the fault-injection seam (see Params.FaultHook)
// after construction. Not safe to call concurrently with decoding; it
// exists for tests that need to force panics or deterministic
// cancellation inside shard workers.
func (d *Decoder) SetFaultHook(f func(op string, shard int)) { d.p.FaultHook = f }

// SetFaultHook is the encoder counterpart of Decoder.SetFaultHook.
func (e *Encoder) SetFaultHook(f func(op string, shard int)) { e.p.FaultHook = f }
