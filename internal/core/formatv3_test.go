package core

import (
	"math"
	"testing"
)

// encodeBatches runs a fresh encoder over batches and returns the blocks.
func encodeBatches(t *testing.T, p Params, batches [][][]float64) [][]byte {
	t.Helper()
	enc, err := NewEncoder(p)
	if err != nil {
		t.Fatal(err)
	}
	blks := make([][]byte, len(batches))
	for bi, batch := range batches {
		blk, err := enc.EncodeBatch(batch)
		if err != nil {
			t.Fatalf("batch %d: encode: %v", bi, err)
		}
		blks[bi] = append([]byte(nil), blk...)
	}
	return blks
}

// TestV3RoundTripMatchesV2 pins the v3 invariant that matters: the wire
// bytes change but the reconstruction does not. Every method must decode
// v3 blocks to values bit-identical to the v2 decode of the same input.
func TestV3RoundTripMatchesV2(t *testing.T) {
	batches := [][][]float64{
		crystalBatch(10, 500, 1),
		crystalBatch(10, 500, 2),
		liquidBatch(10, 500, 3),
	}
	for _, m := range []Method{VQ, VQT, MT, ADP} {
		for _, shards := range []int{1, 3} {
			p2 := Params{ErrorBound: 1e-3, Method: m, Shards: shards}
			p3 := p2
			p3.FormatVersion = 3
			blks2 := encodeBatches(t, p2, batches)
			blks3 := encodeBatches(t, p3, batches)

			dec2, dec3 := NewDecoder(Params{}), NewDecoder(Params{})
			for bi := range batches {
				if blks3[bi][4] != formatVer3 {
					t.Fatalf("%v shards=%d: block %d version byte = %d, want %d",
						m, shards, bi, blks3[bi][4], formatVer3)
				}
				got2, err := dec2.DecodeBatch(blks2[bi])
				if err != nil {
					t.Fatalf("%v shards=%d: v2 decode batch %d: %v", m, shards, bi, err)
				}
				got3, err := dec3.DecodeBatch(blks3[bi])
				if err != nil {
					t.Fatalf("%v shards=%d: v3 decode batch %d: %v", m, shards, bi, err)
				}
				if len(got2) != len(got3) {
					t.Fatalf("%v shards=%d: batch %d: snapshot count diverged", m, shards, bi)
				}
				for ti := range got2 {
					for i := range got2[ti] {
						if math.Float64bits(got2[ti][i]) != math.Float64bits(got3[ti][i]) {
							t.Fatalf("%v shards=%d: batch %d snap %d value %d: v2=%v v3=%v",
								m, shards, bi, ti, i, got2[ti][i], got3[ti][i])
						}
					}
				}
				if e := maxAbsErr(batches[bi], got3); e > 1e-3 {
					t.Fatalf("%v shards=%d: batch %d: v3 error %g exceeds bound", m, shards, bi, e)
				}
			}
		}
	}
}

// TestV3SingleParticleBlock exercises the v3-only always-sharded layout at
// the degenerate sizes where v2 would fall back to the version-1 framing.
func TestV3SingleParticleBlock(t *testing.T) {
	for _, n := range []int{1, 2, 5} {
		batch := crystalBatch(3, n, int64(n))
		blks := encodeBatches(t, Params{ErrorBound: 1e-3, Method: VQ, FormatVersion: 3}, [][][]float64{batch})
		got, err := NewDecoder(Params{}).DecodeBatch(blks[0])
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if e := maxAbsErr(batch, got); e > 1e-3 {
			t.Fatalf("n=%d: error %g exceeds bound", n, e)
		}
	}
}

// TestV3ParamValidation pins the accepted FormatVersion values.
func TestV3ParamValidation(t *testing.T) {
	for _, v := range []int{0, 2, 3} {
		if _, err := NewEncoder(Params{ErrorBound: 1e-3, FormatVersion: v}); err != nil {
			t.Fatalf("FormatVersion %d rejected: %v", v, err)
		}
	}
	for _, v := range []int{1, 4, -1} {
		if _, err := NewEncoder(Params{ErrorBound: 1e-3, FormatVersion: v}); err == nil {
			t.Fatalf("FormatVersion %d accepted", v)
		}
	}
}

// TestV3CorruptBlocks mirrors TestCorruptBlocks for the v3 layout: every
// truncation and every byte flip must produce an error or a decode, never
// a panic.
func TestV3CorruptBlocks(t *testing.T) {
	batch := crystalBatch(8, 300, 9)
	blks := encodeBatches(t, Params{ErrorBound: 1e-3, Method: ADP, FormatVersion: 3}, [][][]float64{batch})
	blk := blks[0]
	for cut := 0; cut < len(blk); cut += 3 {
		if _, err := NewDecoder(Params{}).DecodeBatch(blk[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
	for off := 0; off < len(blk); off += 7 {
		mut := append([]byte(nil), blk...)
		mut[off] ^= 0x20
		NewDecoder(Params{}).DecodeBatch(mut) // must not panic
	}
}
