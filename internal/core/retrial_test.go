package core

import (
	"bytes"
	"testing"

	"github.com/mdz/mdz/internal/telemetry"
)

// TestADPRetrialIntervalAcceptance is the gate on the cross-round ADP
// trial-reuse knob: on a stream with a regime change mid-way (temporally
// smooth, then crystalline), re-trialing only every 3rd evaluation round
// must stay within 2% of the every-round-trial compressed size, honor the
// error bound, and be fully deterministic. The reused counter proves the
// reuse path actually ran, and the drift check must still converge on the
// new regime (transitions > 0 in the retrial run too).
func TestADPRetrialIntervalAcceptance(t *testing.T) {
	const eb = 1e-3
	var batches [][][]float64
	liquid := liquidBatch(96, 600, 11)
	for i := 0; i < 96; i += 8 {
		batches = append(batches, liquid[i:i+8])
	}
	crystal := crystalBatch(96, 600, 12)
	for i := 0; i < 96; i += 8 {
		batches = append(batches, crystal[i:i+8])
	}

	// Shards: 1 — exactly the configuration ADPSampleShards cannot amortize
	// (sampling needs S < K), which is what this knob exists for.
	base := Params{ErrorBound: eb, Method: ADP, AdaptInterval: 2, Shards: 1}
	full := encodeAll(t, base, batches, eb)

	reg := telemetry.NewRegistry()
	retrialParams := base
	retrialParams.ADPRetrialInterval = 3
	retrialParams.Tel = EncoderInstruments(reg, "x")
	retrial := encodeAll(t, retrialParams, batches, eb)

	reused := reg.Counter("compress.adp.x.reused_evals").Value()
	if reused == 0 {
		t.Fatal("reused_evals = 0: the trial-reuse path never engaged")
	}
	evals := reg.Counter("compress.adp.x.evals").Value()
	if evals == 0 {
		t.Fatal("evals = 0: no full trial ever ran")
	}
	// The whole point: strictly fewer trial rounds than the every-round
	// baseline would have run (reused rounds are not counted in evals).
	if wantRounds := int64(len(batches)-1)/int64(base.AdaptInterval) + 2; evals >= wantRounds {
		t.Fatalf("evals = %d, want fewer than the %d evaluation rounds", evals, wantRounds)
	}
	// The knob trades trial cost for selection fidelity; the acceptance bar
	// is a compressed size within 2% of every-round trials on this workload.
	if limit := int(float64(len(full)) * 1.02); len(retrial) > limit {
		t.Fatalf("retrial ADP output %d B exceeds 1.02x full-trial output %d B", len(retrial), len(full))
	}

	again := encodeAll(t, retrialParams, batches, eb)
	if !bytes.Equal(retrial, again) {
		t.Fatal("retrial ADP output is not deterministic across runs")
	}
}

// TestADPRetrialDrift: a hard regime shift between trial rounds must trip
// the drift check and re-trial early rather than ride the stale winner to
// the next scheduled round.
func TestADPRetrialDrift(t *testing.T) {
	const eb = 1e-3
	var batches [][][]float64
	liquid := liquidBatch(40, 400, 7)
	for i := 0; i < 40; i += 8 {
		batches = append(batches, liquid[i:i+8])
	}
	crystal := crystalBatch(40, 400, 8)
	for i := 0; i < 40; i += 8 {
		batches = append(batches, crystal[i:i+8])
	}

	reg := telemetry.NewRegistry()
	p := Params{
		ErrorBound: eb, Method: ADP, AdaptInterval: 1, Shards: 1,
		// Interval far beyond the stream length: without the drift check no
		// second trial would ever run.
		ADPRetrialInterval: 1000,
		Tel:                EncoderInstruments(reg, "x"),
	}
	encodeAll(t, p, batches, eb)

	// Batches 0 and 1 always trial; the regime shift must force at least one
	// more full trial despite the huge interval.
	if evals := reg.Counter("compress.adp.x.evals").Value(); evals <= 2 {
		t.Fatalf("evals = %d: the drift check never forced a re-trial across the regime shift", evals)
	}
	if reused := reg.Counter("compress.adp.x.reused_evals").Value(); reused == 0 {
		t.Fatal("reused_evals = 0: the reuse path never engaged")
	}
}

// TestADPRetrialIntervalValidation: the knob rejects negative values and
// treats 0/1 as the historical every-round behaviour.
func TestADPRetrialIntervalValidation(t *testing.T) {
	if _, err := NewEncoder(Params{ErrorBound: 1e-3, ADPRetrialInterval: -1}); err == nil {
		t.Error("negative ADPRetrialInterval accepted")
	}
	for _, v := range []int{0, 1, 2} {
		if _, err := NewEncoder(Params{ErrorBound: 1e-3, ADPRetrialInterval: v}); err != nil {
			t.Errorf("ADPRetrialInterval %d rejected: %v", v, err)
		}
	}
}

// TestADPRetrialOffIdentity: 0 and 1 produce byte-identical output to the
// historical every-round configuration.
func TestADPRetrialOffIdentity(t *testing.T) {
	const eb = 1e-3
	var batches [][][]float64
	liquid := liquidBatch(32, 300, 5)
	for i := 0; i < 32; i += 8 {
		batches = append(batches, liquid[i:i+8])
	}
	base := Params{ErrorBound: eb, Method: ADP, AdaptInterval: 2}
	ref := encodeAll(t, base, batches, eb)
	for _, v := range []int{0, 1} {
		p := base
		p.ADPRetrialInterval = v
		if got := encodeAll(t, p, batches, eb); !bytes.Equal(got, ref) {
			t.Fatalf("ADPRetrialInterval=%d changed output bytes vs the default", v)
		}
	}
}
