package core

import (
	"math"
	"testing"
)

func TestDecodeSnapshotVQ(t *testing.T) {
	data := crystalBatch(12, 300, 21)
	for _, seq := range []Sequence{Seq1, Seq2} {
		enc, err := NewEncoder(Params{ErrorBound: 1e-3, Method: VQ, Sequence: seq})
		if err != nil {
			t.Fatal(err)
		}
		blk, err := enc.EncodeBatch(data)
		if err != nil {
			t.Fatal(err)
		}
		dec := NewDecoder(Params{})
		full, err := dec.DecodeBatch(blk)
		if err != nil {
			t.Fatal(err)
		}
		dec2 := NewDecoder(Params{})
		for _, snap := range []int{0, 5, 11} {
			got, err := dec2.DecodeSnapshot(blk, snap)
			if err != nil {
				t.Fatalf("%v snapshot %d: %v", seq, snap, err)
			}
			for i := range got {
				if got[i] != full[snap][i] {
					t.Fatalf("%v snapshot %d particle %d: random access %v != full decode %v",
						seq, snap, i, got[i], full[snap][i])
				}
				if e := math.Abs(got[i] - data[snap][i]); e > 1e-3 {
					t.Fatalf("%v snapshot %d: error %v", seq, snap, e)
				}
			}
		}
	}
}

func TestDecodeSnapshotWithOutliers(t *testing.T) {
	// Mix in extreme values to force the outlier path; the cursor must be
	// positioned correctly when skipping earlier rows.
	data := crystalBatch(6, 100, 22)
	data[2][50] = 1e15
	data[4][7] = -1e15
	enc, _ := NewEncoder(Params{ErrorBound: 1e-4, Method: VQ})
	blk, err := enc.EncodeBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(Params{})
	for snap := 0; snap < 6; snap++ {
		got, err := dec.DecodeSnapshot(blk, snap)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if e := math.Abs(got[i] - data[snap][i]); e > 1e-4 {
				t.Fatalf("snapshot %d particle %d: error %v", snap, i, e)
			}
		}
	}
}

func TestDecodeSnapshotRejectsTimeChained(t *testing.T) {
	data := crystalBatch(5, 50, 23)
	for _, m := range []Method{VQT, MT} {
		enc, _ := NewEncoder(Params{ErrorBound: 1e-3, Method: m})
		blk, err := enc.EncodeBatch(data)
		if err != nil {
			t.Fatal(err)
		}
		dec := NewDecoder(Params{})
		if _, err := dec.DecodeSnapshot(blk, 1); err != ErrNotRandomAccess {
			t.Errorf("%v: err = %v, want ErrNotRandomAccess", m, err)
		}
	}
}

func TestDecodeSnapshotBounds(t *testing.T) {
	data := crystalBatch(4, 20, 24)
	enc, _ := NewEncoder(Params{ErrorBound: 1e-3, Method: VQ})
	blk, _ := enc.EncodeBatch(data)
	dec := NewDecoder(Params{})
	if _, err := dec.DecodeSnapshot(blk, -1); err == nil {
		t.Error("negative snapshot accepted")
	}
	if _, err := dec.DecodeSnapshot(blk, 4); err == nil {
		t.Error("out-of-range snapshot accepted")
	}
	if _, err := dec.DecodeSnapshot([]byte("bogus"), 0); err == nil {
		t.Error("bogus block accepted")
	}
}
