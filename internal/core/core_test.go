package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/mdz/mdz/internal/lossless"
)

// crystalBatch mimics crystalline MD data: values vibrate around
// equal-distant levels with occasional level hops over time.
func crystalBatch(bs, n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	base := make([]int, n)
	for i := range base {
		base[i] = rng.Intn(12)
	}
	out := make([][]float64, bs)
	for t := range out {
		snap := make([]float64, n)
		for i := range snap {
			if rng.Float64() < 0.01 {
				base[i] += rng.Intn(3) - 1 // rare level hop
			}
			snap[i] = 5.0 + 2.0*float64(base[i]) + rng.NormFloat64()*0.03
		}
		out[t] = snap
	}
	return out
}

// liquidBatch mimics LJ-liquid data: spatially random but extremely smooth
// in time.
func liquidBatch(bs, n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pos := make([]float64, n)
	for i := range pos {
		pos[i] = rng.Float64() * 40
	}
	out := make([][]float64, bs)
	for t := range out {
		snap := make([]float64, n)
		for i := range snap {
			pos[i] += rng.NormFloat64() * 0.002
			snap[i] = pos[i]
		}
		out[t] = snap
	}
	return out
}

func maxAbsErr(a, b [][]float64) float64 {
	worst := 0.0
	for t := range a {
		for i := range a[t] {
			if e := math.Abs(a[t][i] - b[t][i]); e > worst {
				worst = e
			}
		}
	}
	return worst
}

func roundTripMethod(t *testing.T, m Method, batches [][][]float64, eb float64) (compressed, raw int) {
	t.Helper()
	enc, err := NewEncoder(Params{ErrorBound: eb, Method: m})
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(Params{})
	for bi, batch := range batches {
		blk, err := enc.EncodeBatch(batch)
		if err != nil {
			t.Fatalf("%v batch %d: encode: %v", m, bi, err)
		}
		got, err := dec.DecodeBatch(blk)
		if err != nil {
			t.Fatalf("%v batch %d: decode: %v", m, bi, err)
		}
		if len(got) != len(batch) {
			t.Fatalf("%v batch %d: got %d snapshots, want %d", m, bi, len(got), len(batch))
		}
		if e := maxAbsErr(batch, got); e > eb {
			t.Fatalf("%v batch %d: max error %v exceeds bound %v", m, bi, e, eb)
		}
		compressed += len(blk)
		raw += len(batch) * len(batch[0]) * 8
	}
	return compressed, raw
}

func TestRoundTripAllMethodsCrystal(t *testing.T) {
	data := crystalBatch(30, 400, 1)
	batches := [][][]float64{data[:10], data[10:20], data[20:]}
	for _, m := range []Method{VQ, VQT, MT, ADP} {
		comp, raw := roundTripMethod(t, m, batches, 1e-3)
		if comp >= raw {
			t.Errorf("%v: no compression (%d >= %d)", m, comp, raw)
		}
	}
}

func TestRoundTripAllMethodsLiquid(t *testing.T) {
	data := liquidBatch(30, 400, 2)
	batches := [][][]float64{data[:10], data[10:20], data[20:]}
	for _, m := range []Method{VQ, VQT, MT, ADP} {
		roundTripMethod(t, m, batches, 1e-3)
	}
}

func TestMTBeatsVQOnLiquid(t *testing.T) {
	data := liquidBatch(50, 1000, 3)
	var batches [][][]float64
	for i := 0; i < 50; i += 10 {
		batches = append(batches, data[i:i+10])
	}
	mt, _ := roundTripMethod(t, MT, batches, 1e-3)
	vq, _ := roundTripMethod(t, VQ, batches, 1e-3)
	if mt >= vq {
		t.Errorf("MT (%d B) should beat VQ (%d B) on temporally smooth data", mt, vq)
	}
}

func TestVQBeatsTimeOnErraticCrystal(t *testing.T) {
	// Each snapshot re-randomizes level assignment: time prediction is
	// useless, spatial levels are everything.
	rng := rand.New(rand.NewSource(5))
	bs, n := 10, 2000
	batch := make([][]float64, bs)
	for t2 := range batch {
		snap := make([]float64, n)
		for i := range snap {
			snap[i] = 2.0*float64(rng.Intn(10)) + rng.NormFloat64()*0.02
		}
		batch[t2] = snap
	}
	vq, _ := roundTripMethod(t, VQ, [][][]float64{batch}, 1e-2)
	mt, _ := roundTripMethod(t, MT, [][][]float64{batch}, 1e-2)
	if vq >= mt {
		t.Errorf("VQ (%d B) should beat MT (%d B) on erratic crystal data", vq, mt)
	}
}

func TestADPPicksBest(t *testing.T) {
	// ADP must be within a whisker of the best single method.
	for seed := int64(1); seed <= 3; seed++ {
		data := liquidBatch(40, 500, seed)
		var batches [][][]float64
		for i := 0; i < 40; i += 10 {
			batches = append(batches, data[i:i+10])
		}
		sizes := map[Method]int{}
		for _, m := range []Method{VQ, VQT, MT, ADP} {
			sizes[m], _ = roundTripMethod(t, m, batches, 1e-3)
		}
		best := sizes[VQ]
		for _, m := range []Method{VQT, MT} {
			if sizes[m] < best {
				best = sizes[m]
			}
		}
		if float64(sizes[ADP]) > 1.05*float64(best) {
			t.Errorf("seed %d: ADP %d B vs best single %d B", seed, sizes[ADP], best)
		}
	}
}

func TestErrorBoundPropertyRandomData(t *testing.T) {
	f := func(seed int64, ebExp uint8, mRaw uint8) bool {
		m := Method(mRaw % 4)
		eb := math.Pow(10, -1-float64(ebExp%5))
		rng := rand.New(rand.NewSource(seed))
		bs, n := 1+rng.Intn(6), 1+rng.Intn(80)
		var batches [][][]float64
		for b := 0; b < 3; b++ {
			batch := make([][]float64, bs)
			for t2 := range batch {
				snap := make([]float64, n)
				for i := range snap {
					snap[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(4))-1)
				}
				batch[t2] = snap
			}
			batches = append(batches, batch)
		}
		enc, err := NewEncoder(Params{ErrorBound: eb, Method: m})
		if err != nil {
			return false
		}
		dec := NewDecoder(Params{})
		for _, batch := range batches {
			blk, err := enc.EncodeBatch(batch)
			if err != nil {
				return false
			}
			got, err := dec.DecodeBatch(blk)
			if err != nil {
				return false
			}
			if maxAbsErr(batch, got) > eb {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSequenceModes(t *testing.T) {
	data := liquidBatch(10, 300, 9)
	for _, seq := range []Sequence{Seq1, Seq2} {
		enc, err := NewEncoder(Params{ErrorBound: 1e-3, Method: MT, Sequence: seq})
		if err != nil {
			t.Fatal(err)
		}
		dec := NewDecoder(Params{})
		blk, err := enc.EncodeBatch(data)
		if err != nil {
			t.Fatalf("%v: %v", seq, err)
		}
		got, err := dec.DecodeBatch(blk)
		if err != nil {
			t.Fatalf("%v: %v", seq, err)
		}
		if e := maxAbsErr(data, got); e > 1e-3 {
			t.Errorf("%v: error %v", seq, e)
		}
	}
}

func TestSeq2BeatsSeq1OnStableData(t *testing.T) {
	// Per-particle constant drift: each particle's time-prediction residual
	// (and hence quantization code) is stable over time but differs across
	// particles. Seq-2 groups each particle's identical codes into runs the
	// dictionary coder exploits (paper Table III); Seq-1 interleaves them.
	rng := rand.New(rand.NewSource(10))
	n, total := 2000, 40
	pos := make([]float64, n)
	vel := make([]float64, n)
	for i := range pos {
		pos[i] = rng.Float64() * 40
		vel[i] = (rng.Float64() - 0.5) * 0.2 // constant per-particle velocity
	}
	data := make([][]float64, total)
	for t2 := range data {
		snap := make([]float64, n)
		for i := range snap {
			pos[i] += vel[i]
			snap[i] = pos[i]
		}
		data[t2] = snap
	}
	sizes := map[Sequence]int{}
	for _, seq := range []Sequence{Seq1, Seq2} {
		enc, _ := NewEncoder(Params{ErrorBound: 1e-3, Method: MT, Sequence: seq})
		var sum int
		for i := 0; i < total; i += 10 {
			blk, err := enc.EncodeBatch(data[i : i+10])
			if err != nil {
				t.Fatal(err)
			}
			sum += len(blk)
		}
		sizes[seq] = sum
	}
	if sizes[Seq2] >= sizes[Seq1] {
		t.Errorf("Seq-2 (%d B) should beat Seq-1 (%d B) on per-particle stable codes", sizes[Seq2], sizes[Seq1])
	}
}

func TestInterleaveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bs, n := 1+rng.Intn(10), 1+rng.Intn(50)
		bins := make([]int, bs*n)
		for i := range bins {
			bins[i] = rng.Intn(1000)
		}
		got := deinterleave(interleave(bins, bs, n), bs, n)
		for i := range bins {
			if got[i] != bins[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOutlierHeavyData(t *testing.T) {
	// Data with huge jumps everywhere: nearly all values out of scope.
	rng := rand.New(rand.NewSource(11))
	batch := make([][]float64, 5)
	for t2 := range batch {
		snap := make([]float64, 100)
		for i := range snap {
			snap[i] = rng.NormFloat64() * 1e12
		}
		batch[t2] = snap
	}
	for _, m := range []Method{VQ, VQT, MT} {
		enc, _ := NewEncoder(Params{ErrorBound: 1e-9, Method: m})
		dec := NewDecoder(Params{})
		blk, err := enc.EncodeBatch(batch)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		got, err := dec.DecodeBatch(blk)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if e := maxAbsErr(batch, got); e > 1e-9 {
			t.Errorf("%v: outlier-heavy error %v", m, e)
		}
	}
}

func TestMTOutOfOrderRejected(t *testing.T) {
	data := liquidBatch(20, 50, 12)
	enc, _ := NewEncoder(Params{ErrorBound: 1e-3, Method: MT})
	blk0, err := enc.EncodeBatch(data[:10])
	if err != nil {
		t.Fatal(err)
	}
	blk1, err := enc.EncodeBatch(data[10:])
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(Params{})
	if _, err := dec.DecodeBatch(blk1); err != ErrOrder {
		t.Errorf("decoding batch 1 first: err=%v, want ErrOrder", err)
	}
	if _, err := dec.DecodeBatch(blk0); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.DecodeBatch(blk1); err != nil {
		t.Errorf("in-order decode after recovery failed: %v", err)
	}
}

func TestCorruptBlocks(t *testing.T) {
	data := crystalBatch(5, 50, 13)
	enc, _ := NewEncoder(Params{ErrorBound: 1e-3, Method: VQ})
	blk, err := enc.EncodeBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]byte{
		nil,
		blk[:3],
		blk[:len(blk)/2],
		append([]byte("XXXX"), blk[4:]...),
	}
	for i, c := range cases {
		dec := NewDecoder(Params{})
		if _, err := dec.DecodeBatch(c); err == nil {
			t.Errorf("case %d: expected decode error", i)
		}
	}
	// Flip the method byte to an invalid value.
	bad := append([]byte(nil), blk...)
	bad[5] = 99
	if _, err := (NewDecoder(Params{})).DecodeBatch(bad); err == nil {
		t.Error("invalid method byte accepted")
	}
}

func TestParamValidation(t *testing.T) {
	if _, err := NewEncoder(Params{ErrorBound: 0}); err == nil {
		t.Error("eb=0 accepted")
	}
	if _, err := NewEncoder(Params{ErrorBound: 1e-3, QuantScale: 2}); err == nil {
		t.Error("scale=2 accepted")
	}
	if _, err := NewEncoder(Params{ErrorBound: -5}); err == nil {
		t.Error("negative eb accepted")
	}
}

func TestEmptyBatchRejected(t *testing.T) {
	enc, _ := NewEncoder(Params{ErrorBound: 1e-3})
	if _, err := enc.EncodeBatch(nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := enc.EncodeBatch([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged batch accepted")
	}
}

func TestStatsAccounting(t *testing.T) {
	data := liquidBatch(20, 100, 14)
	enc, _ := NewEncoder(Params{ErrorBound: 1e-3, Method: ADP, AdaptInterval: 2})
	for i := 0; i < 20; i += 10 {
		if _, err := enc.EncodeBatch(data[i : i+10]); err != nil {
			t.Fatal(err)
		}
	}
	if enc.Stats.Batches != 2 {
		t.Errorf("Batches=%d", enc.Stats.Batches)
	}
	if enc.Stats.Evaluations != 2 {
		t.Errorf("Evaluations=%d (batches 0 and 1 are always evaluated)", enc.Stats.Evaluations)
	}
	if enc.Stats.RawBytes != 2*10*100*8 {
		t.Errorf("RawBytes=%d", enc.Stats.RawBytes)
	}
	if enc.Stats.CompressedBytes <= 0 {
		t.Error("CompressedBytes not recorded")
	}
}

func TestBlockMethodPeek(t *testing.T) {
	data := crystalBatch(5, 50, 15)
	enc, _ := NewEncoder(Params{ErrorBound: 1e-3, Method: VQT})
	blk, err := enc.EncodeBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	m, err := BlockMethod(blk)
	if err != nil || m != VQT {
		t.Errorf("BlockMethod = %v, %v", m, err)
	}
	if _, err := BlockMethod([]byte("xx")); err == nil {
		t.Error("short block accepted")
	}
}

func TestBackendPluggability(t *testing.T) {
	data := crystalBatch(10, 200, 16)
	for _, b := range []lossless.Backend{lossless.Raw{}, lossless.Flate{Level: 6}, lossless.LZ{}} {
		enc, err := NewEncoder(Params{ErrorBound: 1e-3, Method: VQ, Backend: b})
		if err != nil {
			t.Fatal(err)
		}
		dec := NewDecoder(Params{Backend: b})
		blk, err := enc.EncodeBatch(data)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		got, err := dec.DecodeBatch(blk)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		if e := maxAbsErr(data, got); e > 1e-3 {
			t.Errorf("%s: error %v", b.Name(), e)
		}
	}
}

func TestConstantDataset(t *testing.T) {
	batch := make([][]float64, 10)
	for t2 := range batch {
		snap := make([]float64, 64)
		for i := range snap {
			snap[i] = 7.5
		}
		batch[t2] = snap
	}
	for _, m := range []Method{VQ, VQT, MT, ADP} {
		enc, _ := NewEncoder(Params{ErrorBound: 1e-6, Method: m})
		dec := NewDecoder(Params{})
		blk, err := enc.EncodeBatch(batch)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		got, err := dec.DecodeBatch(blk)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if e := maxAbsErr(batch, got); e > 1e-6 {
			t.Errorf("%v: constant data error %v", m, e)
		}
	}
}

func TestMethodString(t *testing.T) {
	if ADP.String() != "ADP" || VQ.String() != "VQ" || VQT.String() != "VQT" || MT.String() != "MT" {
		t.Error("method names")
	}
	if Seq1.String() != "Seq-1" || Seq2.String() != "Seq-2" {
		t.Error("sequence names")
	}
}

func BenchmarkEncodeMTLiquid(b *testing.B) {
	data := liquidBatch(10, 10000, 1)
	enc, _ := NewEncoder(Params{ErrorBound: 1e-3, Method: MT})
	b.SetBytes(int64(10 * 10000 * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.EncodeBatch(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeVQCrystal(b *testing.B) {
	data := crystalBatch(10, 10000, 1)
	enc, _ := NewEncoder(Params{ErrorBound: 1e-3, Method: VQ})
	b.SetBytes(int64(10 * 10000 * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.EncodeBatch(data); err != nil {
			b.Fatal(err)
		}
	}
}
