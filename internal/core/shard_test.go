package core

import (
	"bytes"
	"math"
	"testing"

	"github.com/mdz/mdz/internal/pool"
)

func TestDefaultShardsProperties(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 1}, {1, 1}, {16383, 1}, {16384, 1}, {32768, 2},
		{16384 * 64, 64}, {16384 * 200, 64}, {1 << 30, 64},
	}
	for _, c := range cases {
		if got := DefaultShards(c.n); got != c.want {
			t.Errorf("DefaultShards(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestShardBoundsProperties(t *testing.T) {
	for _, n := range []int{1, 2, 7, 100, 16384, 99991} {
		for _, k := range []int{1, 2, 3, 7, 64} {
			if k > n {
				continue
			}
			b := shardBounds(n, k)
			if len(b) != k+1 || b[0] != 0 || b[k] != n {
				t.Fatalf("shardBounds(%d,%d) = %v", n, k, b)
			}
			for s := 0; s < k; s++ {
				sz := b[s+1] - b[s]
				if sz < n/k || sz > n/k+1 {
					t.Fatalf("shardBounds(%d,%d): shard %d size %d not near-equal", n, k, s, sz)
				}
			}
		}
	}
}

// TestShardedRoundTripAllMethods exercises format-version-2 blocks directly
// at the core layer: every method, several shard counts, parallel and
// serial pools, across two batches (so MT's snapshot-0 reference and the
// VQ level-model reuse both cross a batch boundary).
func TestShardedRoundTripAllMethods(t *testing.T) {
	const eb = 1e-2
	batches := [][][]float64{crystalBatch(6, 400, 9), crystalBatch(6, 400, 10)}
	liquid := [][][]float64{liquidBatch(6, 400, 9), liquidBatch(6, 400, 10)}
	for _, m := range []Method{VQ, VQT, MT, ADP} {
		data := batches
		if m == MT {
			data = liquid
		}
		for _, shards := range []int{1, 2, 3, 7, 400} {
			for _, workers := range []int{1, 4} {
				pl := pool.New(workers)
				enc, err := NewEncoder(Params{ErrorBound: eb, Method: m, Shards: shards, Pool: pl})
				if err != nil {
					t.Fatal(err)
				}
				dec := NewDecoder(Params{Pool: pl})
				for bi, batch := range data {
					blk, err := enc.EncodeBatch(batch)
					if err != nil {
						t.Fatalf("%v shards=%d workers=%d batch %d: %v", m, shards, workers, bi, err)
					}
					wantVer := byte(formatVer2)
					if shards == 1 {
						wantVer = formatVer1
					}
					if blk[4] != wantVer {
						t.Fatalf("%v shards=%d: version %d, want %d", m, shards, blk[4], wantVer)
					}
					got, err := dec.DecodeBatch(blk)
					if err != nil {
						t.Fatalf("%v shards=%d workers=%d batch %d: decode: %v", m, shards, workers, bi, err)
					}
					if worst := maxAbsErr(batch, got); worst > eb {
						t.Fatalf("%v shards=%d workers=%d batch %d: error %v > %v", m, shards, workers, bi, worst, eb)
					}
				}
			}
		}
	}
}

// TestShardCountClampedToParticles: asking for more shards than particles
// must clamp, not emit empty shards.
func TestShardCountClampedToParticles(t *testing.T) {
	enc, _ := NewEncoder(Params{ErrorBound: 1e-2, Method: VQ, Shards: MaxShards})
	batch := crystalBatch(4, 5, 11)
	blk, err := enc.EncodeBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewDecoder(Params{}).DecodeBatch(blk)
	if err != nil {
		t.Fatal(err)
	}
	if maxAbsErr(batch, got) > 1e-2 {
		t.Fatal("bound violated")
	}
}

// TestShardedRandomAccess checks DecodeSnapshot against full decode on
// multi-shard VQ blocks for both interleave modes.
func TestShardedRandomAccess(t *testing.T) {
	for _, seq := range []Sequence{Seq1, Seq2} {
		batch := crystalBatch(8, 300, 13)
		// Inject outliers so the per-shard outlier cursor is exercised.
		batch[3][7] = 1e6
		batch[5][250] = -1e6
		enc, err := NewEncoder(Params{ErrorBound: 1e-2, Method: VQ, Sequence: seq, Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		blk, err := enc.EncodeBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		full, err := NewDecoder(Params{}).DecodeBatch(blk)
		if err != nil {
			t.Fatal(err)
		}
		dec := NewDecoder(Params{Pool: pool.New(4)})
		for ti := range batch {
			snap, err := dec.DecodeSnapshot(blk, ti)
			if err != nil {
				t.Fatalf("seq=%v t=%d: %v", seq, ti, err)
			}
			for i := range snap {
				if snap[i] != full[ti][i] {
					t.Fatalf("seq=%v t=%d particle %d: random access %v != full decode %v",
						seq, ti, i, snap[i], full[ti][i])
				}
			}
			if math.Abs(snap[7]-batch[ti][7]) > 1e-2 {
				t.Fatalf("seq=%v t=%d: outlier column bound violated", seq, ti)
			}
		}
	}
}

// TestShardedCorruptBlocks fuzzes the version-2 header paths: bad shard
// counts, particle sums that disagree with n, and truncated sub-sections
// must all fail cleanly.
func TestShardedCorruptBlocks(t *testing.T) {
	enc, _ := NewEncoder(Params{ErrorBound: 1e-2, Method: VQ, Shards: 3})
	blk, err := enc.EncodeBatch(crystalBatch(4, 90, 17))
	if err != nil {
		t.Fatal(err)
	}
	if blk[4] != formatVer2 {
		t.Fatalf("expected a version-2 block, got version %d", blk[4])
	}
	dec := NewDecoder(Params{})
	// Truncations at every length must error, never panic.
	for cut := 1; cut < len(blk); cut += 7 {
		if _, err := dec.DecodeBatch(blk[:len(blk)-cut]); err == nil {
			t.Errorf("truncated to %d bytes: accepted", len(blk)-cut)
		}
	}
	// Single-byte corruptions of the header region must error or round-trip
	// within structure checks — but never panic.
	for off := 4; off < 40 && off < len(blk); off++ {
		mut := bytes.Clone(blk)
		mut[off] ^= 0xFF
		dec := NewDecoder(Params{})
		_, _ = dec.DecodeBatch(mut) // must not panic
	}
}
