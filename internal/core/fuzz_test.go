package core

import (
	"math"
	"testing"
)

// FuzzDecodeBatch hammers the block decoder with mutated inputs: it must
// return an error or a valid batch, never panic or hang.
func FuzzDecodeBatch(f *testing.F) {
	// Seed with valid blocks from each method.
	for _, m := range []Method{VQ, VQT, MT} {
		enc, err := NewEncoder(Params{ErrorBound: 1e-3, Method: m})
		if err != nil {
			f.Fatal(err)
		}
		blk, err := enc.EncodeBatch(crystalBatch(4, 30, int64(m)))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blk)
	}
	f.Add([]byte{})
	f.Add([]byte("MDZB"))
	f.Fuzz(func(t *testing.T, blk []byte) {
		dec := NewDecoder(Params{})
		out, err := dec.DecodeBatch(blk)
		if err != nil {
			return
		}
		for _, snap := range out {
			for _, v := range snap {
				_ = v
			}
		}
	})
}

// FuzzRoundTrip checks the end-to-end invariant on fuzzer-shaped inputs:
// whatever bytes the fuzzer proposes are reinterpreted as a small float
// batch, and the round trip must hold the bound.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, uint8(0))
	f.Add([]byte{255, 0, 127, 4}, uint8(3))
	f.Fuzz(func(t *testing.T, raw []byte, mRaw uint8) {
		if len(raw) == 0 {
			return
		}
		m := Method(mRaw % 4)
		n := len(raw)
		if n > 64 {
			n = 64
		}
		batch := make([][]float64, 3)
		for ti := range batch {
			snap := make([]float64, n)
			for i := 0; i < n; i++ {
				snap[i] = float64(int(raw[i])-128) * math.Pow(2, float64(ti-1))
			}
			batch[ti] = snap
		}
		const eb = 1e-2
		enc, err := NewEncoder(Params{ErrorBound: eb, Method: m})
		if err != nil {
			t.Fatal(err)
		}
		blk, err := enc.EncodeBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		dec := NewDecoder(Params{})
		out, err := dec.DecodeBatch(blk)
		if err != nil {
			t.Fatal(err)
		}
		for ti := range batch {
			for i := range batch[ti] {
				if d := math.Abs(batch[ti][i] - out[ti][i]); d > eb {
					t.Fatalf("method %v: error %v at (%d,%d)", m, d, ti, i)
				}
			}
		}
	})
}
