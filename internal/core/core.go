// Package core implements MDZ, the adaptive error-bounded lossy compressor
// for molecular-dynamics trajectories (paper §VI). It provides the three
// MD-specific compression methods — VQ (vector-quantization, spatial), VQT
// (VQ + time prediction) and MT (multi-level time prediction) — plus the
// adaptive selector ADP that re-evaluates the best method every
// AdaptInterval batches.
//
// The compressor is stateful across batches, mirroring the paper's buffered
// execution model: k-means level parameters (λ, μ) are computed once from a
// sample of the first snapshot, and the reconstructed initial snapshot is
// retained as the MT reference. Encoder and Decoder must therefore process
// batches in the same order; every block is otherwise self-describing.
//
// # Parallel execution
//
// Every predictor in the pipeline needs only per-particle local context, so
// a batch parallelizes cleanly along the particle axis: the encoder splits
// each batch into K contiguous particle shards (Params.Shards; 0 selects an
// automatic count from the particle count alone, so output stays
// deterministic across machines) and encodes them concurrently on
// Params.Pool. Each shard carries its own Huffman tables and level-delta
// chain, making shards fully independent for the decoder too. Blocks with
// K > 1 use format version 2 (a list of shard sub-sections per block);
// K = 1 blocks keep the version-1 layout byte-for-byte, and the decoder
// accepts both. For a fixed (input, params, K) the output bytes are
// identical regardless of pool size: shards are encoded concurrently but
// assembled in index order.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/mdz/mdz/internal/bitstream"
	"github.com/mdz/mdz/internal/budget"
	"github.com/mdz/mdz/internal/huffman"
	"github.com/mdz/mdz/internal/kmeans"
	"github.com/mdz/mdz/internal/lossless"
	"github.com/mdz/mdz/internal/pool"
	"github.com/mdz/mdz/internal/predictor"
	"github.com/mdz/mdz/internal/quant"
)

// Method selects the MDZ compression method.
type Method uint8

// Compression methods. ADP is the paper's default: it dynamically selects
// among VQ, VQT and MT at runtime.
const (
	ADP Method = iota
	VQ
	VQT
	MT
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case ADP:
		return "ADP"
	case VQ:
		return "VQ"
	case VQT:
		return "VQT"
	case MT:
		return "MT"
	}
	return fmt.Sprintf("Method(%d)", uint8(m))
}

// Sequence selects the quantization-code interleaving (paper §VI-C2).
type Sequence uint8

// Quantization sequences. Seq2 stores one particle's codes across all
// snapshots of a buffer contiguously (particle-major) and is the paper's
// choice; Seq1 stores snapshot-major.
const (
	Seq2 Sequence = iota
	Seq1
)

// String implements fmt.Stringer.
func (s Sequence) String() string {
	if s == Seq1 {
		return "Seq-1"
	}
	return "Seq-2"
}

// DefaultAdaptInterval is the paper's ADP re-evaluation period, in
// compression operations (batches).
const DefaultAdaptInterval = 50

// adpDriftFrac is the relative compression-ratio drift that forces a reused
// ADP winner (Params.ADPRetrialInterval) back through a full trial round
// early: the regime has visibly shifted, so the cached ranking is suspect.
const adpDriftFrac = 0.10

// MaxShards bounds the per-block shard count, keeping headers small and
// rejecting absurd counts in corrupted blocks.
const MaxShards = 4096

const (
	// shardMinParticles is the per-shard particle floor used by the
	// automatic shard count: below it, sharding overhead (extra Huffman
	// tables, shorter dictionary contexts) outweighs the parallelism.
	shardMinParticles = 16384
	maxAutoShards     = 64
)

// DefaultShards reports the automatic shard count for an n-particle axis.
// It depends only on n — never on core count — so automatically sharded
// output is identical across machines.
func DefaultShards(n int) int {
	k := n / shardMinParticles
	if k < 1 {
		return 1
	}
	if k > maxAutoShards {
		return maxAutoShards
	}
	return k
}

// shardBounds splits n particles into k near-equal contiguous ranges,
// returning k+1 cumulative offsets.
func shardBounds(n, k int) []int {
	bounds := make([]int, k+1)
	base, rem := n/k, n%k
	off := 0
	for s := 0; s < k; s++ {
		bounds[s] = off
		off += base
		if s < rem {
			off++
		}
	}
	bounds[k] = n
	return bounds
}

// Params configures an Encoder. The zero value is not usable; use
// NewEncoder which applies defaults.
type Params struct {
	// ErrorBound is the absolute error bound (must be positive). Callers
	// using the paper's value-range-based ε should convert with
	// quant.AbsBound first.
	ErrorBound float64
	// QuantScale is the linear-scale quantization range (default 1024).
	QuantScale int
	// Method selects VQ, VQT, MT, or adaptive ADP (default ADP).
	Method Method
	// Sequence selects the quantization interleaving (default Seq2).
	Sequence Sequence
	// AdaptInterval is the ADP re-evaluation period in batches (default 50).
	AdaptInterval int
	// Backend is the final lossless stage (default lossless.LZ).
	Backend lossless.Backend
	// KMeans tunes the sampled 1-D clustering for the VQ level model.
	KMeans kmeans.Options
	// Shards splits each batch into K contiguous particle shards encoded
	// independently: 0 selects DefaultShards(n), 1 forces single-shard
	// blocks byte-identical to format version 1. Shard count changes the
	// output bytes (format version 2) but never the error bound.
	Shards int
	// ADPSampleShards, when positive, amortizes ADP re-evaluations: the
	// VQ/VQT/MT trial compressions run on only a contiguous particle
	// prefix of the batch covering this many shards (at real shard size),
	// and the winner — judged on trial output sizes — then encodes the
	// full batch once. This cuts an evaluation batch's cost from ~4× to
	// ~(1 + 3·S/K)× of a plain batch. 0 (the default) keeps the paper's
	// full-batch trials and the historical output bytes. Sampling can
	// change which method wins a round, and therefore the output bytes,
	// exactly the way Shards does — deterministically for a fixed (input,
	// params), never affecting the error bound, and invisibly to the
	// decoder, which reads the method from each block header.
	ADPSampleShards int
	// ADPRetrialInterval, when > 1, amortizes ADP across evaluation rounds:
	// the VQ/VQT/MT trial trio runs only on every ADPRetrialInterval-th
	// evaluation round; the rounds between encode with the cached winner and
	// merely verify it, re-running the full trio early whenever the achieved
	// compression ratio drifts more than adpDriftFrac from the last trial's.
	// This amortizes the evaluation cost that ADPSampleShards cannot touch
	// on single-shard batches. Like sampling it can change which method
	// encodes a batch — and therefore the output bytes, deterministically,
	// never the error bound; the decoder reads the method from each block
	// header. 0 or 1 (the default) trials every round (historical bytes).
	// Batches 0 and 1 always trial, so a fresh (or checkpoint-resumed)
	// encoder re-anchors before any reuse.
	ADPRetrialInterval int
	// Pool bounds the goroutines used for shard- and ADP-trial-level
	// parallelism. A nil pool runs serially; pool size never changes the
	// output bytes.
	Pool *pool.Pool
	// Tel, when non-nil, attaches pipeline instrumentation (stage timings,
	// ADP decisions, quantization scope rates). Nil disables it at
	// near-zero cost; telemetry never changes the output bytes.
	Tel *Telemetry
	// FormatVersion selects the block wire format: 0 or 2 write version-2
	// blocks (version 1 when Shards resolves to 1, preserving historical
	// bytes), 3 writes version-3 blocks (dual-stream entropy sections and
	// the v3 dictionary coder). Decoders read all versions regardless of
	// this setting.
	FormatVersion int
	// Budget, when non-nil, bounds the decoder's in-flight allocations that
	// are driven by claimed lengths in untrusted blocks (output matrices,
	// entropy payload counts, code tables, backend original sizes). Each
	// DecodeBatch opens one transaction against it; rejections surface as
	// errors wrapping budget.ErrExceeded, never as corruption. Encoding is
	// not governed — encoder allocations are proportional to caller input.
	Budget *budget.Budget
	// FaultHook, when non-nil, is called at the start of every shard encode
	// (op "encode_shard") and decode (op "decode_shard") with the shard
	// index. It is a fault-injection seam for tests — a hook that panics
	// exercises the pool's panic containment; one that cancels a context
	// exercises cooperative cancellation. Production configs leave it nil.
	FaultHook func(op string, shard int)
}

func (p *Params) fill() error {
	if !(p.ErrorBound > 0) {
		return fmt.Errorf("core: ErrorBound must be positive, got %v", p.ErrorBound)
	}
	if p.QuantScale == 0 {
		p.QuantScale = quant.DefaultScale
	}
	if p.QuantScale < 4 {
		return fmt.Errorf("core: QuantScale must be >= 4, got %d", p.QuantScale)
	}
	if p.AdaptInterval <= 0 {
		p.AdaptInterval = DefaultAdaptInterval
	}
	if p.Shards < 0 || p.Shards > MaxShards {
		return fmt.Errorf("core: Shards must be in [0, %d], got %d", MaxShards, p.Shards)
	}
	if p.ADPSampleShards < 0 || p.ADPSampleShards > MaxShards {
		return fmt.Errorf("core: ADPSampleShards must be in [0, %d], got %d", MaxShards, p.ADPSampleShards)
	}
	if p.ADPRetrialInterval < 0 {
		return fmt.Errorf("core: ADPRetrialInterval must be non-negative, got %d", p.ADPRetrialInterval)
	}
	if p.Backend == nil {
		p.Backend = lossless.LZ{}
	}
	switch p.FormatVersion {
	case 0:
		p.FormatVersion = formatVer2
	case formatVer2, formatVer3:
	default:
		return fmt.Errorf("core: FormatVersion must be 0, 2 or 3, got %d", p.FormatVersion)
	}
	return nil
}

// v3Backend returns the format-v3 variant of b: the built-in LZ flips to
// its v3 wire layout and match finder; other backends (already versioned by
// their own bytes, or external) pass through unchanged.
func v3Backend(b lossless.Backend) lossless.Backend {
	if z, ok := b.(lossless.LZ); ok {
		z.V3 = true
		return z
	}
	return b
}

// Block format constants.
const (
	blockMagic = "MDZB"
	formatVer1 = 1 // single payload section per axis
	formatVer2 = 2 // sharded: shard count + per-shard sub-sections
	// formatVer3 keeps the version-2 sharded framing (always sharded, even
	// K=1) but swaps every entropy payload for its dual-lane counterpart:
	// huffman.EncodeInts2 sections inside shards and the V3 LZ backend
	// around them. Decoders select the codec per block from this byte, so
	// v2 and v3 blocks interleave freely on the wire.
	formatVer3   = 3
	firstLorenzo = 0 // first snapshot of batch: spatial Lorenzo (no ref yet)
	firstRef     = 1 // first snapshot of batch: snapshot-0 reference
	firstVQ      = 2 // first snapshot of batch: VQ level prediction
)

// ErrCorrupt is returned for malformed blocks.
var ErrCorrupt = errors.New("core: corrupt MDZ block")

// corrupt wraps a low-level parse error so errors.Is(err, ErrCorrupt)
// holds while the underlying cause stays inspectable. Budget rejections
// and context cancellations pass through unwrapped: they describe the
// decoder's environment, not the input bytes, and must stay matchable as
// exactly what they are.
func corrupt(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrCorrupt) {
		return err
	}
	if errors.Is(err, budget.ErrExceeded) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return fmt.Errorf("%w: %w", ErrCorrupt, err)
}

// ctxErr reports ctx's cancellation state; a nil ctx never cancels.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// ErrOrder is returned when a Decoder receives blocks out of order.
var ErrOrder = errors.New("core: MT block requires the preceding blocks to be decoded first")

// Encoder compresses one axis of a trajectory, batch by batch.
type Encoder struct {
	p     Params
	q     *quant.Quantizer
	km    *kmeans.Result
	ref   []float64 // reconstructed snapshot 0 of the run (set after batch 0)
	cur   Method    // concrete method in use (ADP resolves to one of the three)
	batch int       // batches encoded so far
	tel   Telemetry // by value: zero struct (all-nil fields) when disabled
	// Cross-round trial cache (Params.ADPRetrialInterval): evaluation rounds
	// since the last full trial, and the compression ratio the winner
	// achieved then (0 until a trial has run; the drift check is against it).
	// Not part of the checkpoint wire state: a resumed encoder starts with a
	// cold cache and re-trials on its first evaluation round.
	evalsSinceTrial int
	trialRatio      float64
	// Stats accumulates encoder-side statistics for benchmarks.
	Stats Stats
}

// Stats records encoder activity, exported for the benchmark harness.
type Stats struct {
	// Batches counts encoded batches; Evaluations counts ADP trials.
	Batches, Evaluations int
	// MethodBatches counts batches emitted per concrete method.
	MethodBatches [4]int
	// RawBytes and CompressedBytes accumulate totals.
	RawBytes, CompressedBytes int64
}

// NewEncoder returns an Encoder for one axis with the given parameters.
func NewEncoder(p Params) (*Encoder, error) {
	if err := p.fill(); err != nil {
		return nil, err
	}
	q, err := quant.New(p.ErrorBound, p.QuantScale)
	if err != nil {
		return nil, err
	}
	cur := p.Method
	if cur == ADP {
		cur = VQT // provisional; first batch evaluation overrides
	}
	e := &Encoder{p: p, q: q, cur: cur}
	if p.FormatVersion == formatVer3 {
		e.p.Backend = v3Backend(e.p.Backend)
	}
	if p.Tel != nil {
		e.tel = *p.Tel
		e.p.Backend = lossless.Timed{B: e.p.Backend, OnCompress: func(d time.Duration, in, out int) {
			e.tel.BackendNS.Observe(d.Nanoseconds())
			e.tel.BackendInBytes.Add(int64(in))
			e.tel.BackendOutBytes.Add(int64(out))
		}}
	}
	return e, nil
}

// Method reports the concrete method currently selected (useful under ADP).
func (e *Encoder) Method() Method { return e.cur }

// shardCount resolves the effective shard count for an n-particle batch.
func (e *Encoder) shardCount(n int) int {
	k := e.p.Shards
	if k == 0 {
		k = DefaultShards(n)
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	return k
}

// EncodeBatch compresses a buffer of snapshots (each []float64 of equal
// length) into a self-describing block. Snapshots are consumed in
// simulation order; the batch must not be empty.
func (e *Encoder) EncodeBatch(batch [][]float64) ([]byte, error) {
	return e.EncodeBatchContext(nil, batch)
}

// EncodeBatchContext is EncodeBatch with cooperative cancellation: shard
// row loops and the work pool poll ctx, so a cancelled multi-gigabyte
// batch aborts within a few row kernels and returns ctx.Err(). The
// encoder's cross-batch state (level model, MT reference, batch counter)
// is only advanced after a fully successful encode, so a cancelled call
// leaves the encoder exactly as it was — retrying the same batch produces
// the same bytes. A nil ctx disables cancellation.
func (e *Encoder) EncodeBatchContext(ctx context.Context, batch [][]float64) ([]byte, error) {
	if len(batch) == 0 {
		return nil, errors.New("core: empty batch")
	}
	n := len(batch[0])
	for i, s := range batch {
		if len(s) != n {
			return nil, fmt.Errorf("core: snapshot %d has %d values, want %d", i, len(s), n)
		}
	}
	sw := e.tel.BatchNS.Start()
	if e.km == nil {
		if err := e.initLevels(batch[0]); err != nil {
			return nil, err
		}
	}

	// ADP re-evaluates every AdaptInterval batches. Batch 1 is also always
	// evaluated: batch 0 has no MT reference yet, so its winner can be
	// unrepresentative of steady-state behaviour.
	adapt := e.p.Method == ADP && (e.batch <= 1 || e.batch%e.p.AdaptInterval == 0)
	var out []byte
	var recon0 []float64
	if adapt {
		// Trial-reuse (Params.ADPRetrialInterval): between full trial rounds
		// the cached winner encodes the batch directly, and only its achieved
		// ratio is checked — a drift beyond adpDriftFrac discards the reuse
		// encode and falls through to the full trio below. Batches 0 and 1
		// always trial (no ratio anchor yet, and batch 0's winner is
		// unrepresentative — see the comment above).
		reuse := e.p.ADPRetrialInterval > 1 && e.batch > 1 &&
			e.evalsSinceTrial < e.p.ADPRetrialInterval-1 && e.trialRatio > 0
		if reuse {
			var err error
			out, recon0, err = e.encodeWith(ctx, e.cur, batch)
			if err != nil {
				return nil, err
			}
			ratio := float64(len(out)) / float64(len(batch)*n*8)
			if math.Abs(ratio-e.trialRatio) > adpDriftFrac*e.trialRatio {
				// Regime shift: the cached ranking is suspect. Re-trial now.
				reuse = false
				out, recon0 = nil, nil
			} else {
				e.evalsSinceTrial++
				e.tel.ReusedEvals.Inc()
			}
		}
		if reuse {
			// Reused round: no trial ran, so no Evals/Wins/Transitions.
		} else {
			if err := e.adaptTrial(ctx, batch, &out, &recon0); err != nil {
				return nil, err
			}
			e.evalsSinceTrial = 0
			e.trialRatio = float64(len(out)) / float64(len(batch)*n*8)
		}
	} else {
		m := e.cur
		if e.p.Method != ADP {
			m = e.p.Method
		}
		var err error
		out, recon0, err = e.encodeWith(ctx, m, batch)
		if err != nil {
			return nil, err
		}
	}
	if e.ref == nil {
		e.ref = recon0
	}
	e.batch++
	e.Stats.Batches++
	e.Stats.MethodBatches[e.cur]++
	e.Stats.RawBytes += int64(len(batch) * n * 8)
	e.Stats.CompressedBytes += int64(len(out))
	e.tel.Batches.Inc()
	sw.Stop()
	return out, nil
}

// adaptTrial runs one full ADP evaluation round — the VQ/VQT/MT trio
// (sampled when Params.ADPSampleShards allows) — selects the winner into
// e.cur and stores the winning full-batch block into *out/*recon0.
func (e *Encoder) adaptTrial(ctx context.Context, batch [][]float64, out *[]byte, recon0 *[]float64) error {
	e.Stats.Evaluations++
	e.tel.Evals.Inc()
	prev := e.cur
	// The three candidate trial compressions are independent; run them
	// concurrently on the shared pool and pick the winner in fixed
	// method order so the selection is deterministic.
	methods := [...]Method{VQ, VQT, MT}
	if sub, ok := e.sampleBatch(batch); ok {
		// Amortized evaluation (Params.ADPSampleShards): judge the trio
		// on a shard-prefix sub-batch, then encode the full batch once
		// with the winner. Trial blocks are discarded — only their sizes
		// compete — so the sub-batch sharing real shard sizes is what
		// keeps the per-shard overhead fraction representative.
		e.tel.SampledEvals.Inc()
		var sizes [3]int
		err := e.p.Pool.RunContext(ctx, len(methods), func(i int) error {
			blk, _, terr := e.encodeWithShards(ctx, methods[i], sub, e.p.ADPSampleShards)
			sizes[i] = len(blk)
			return terr
		})
		if err != nil {
			return err
		}
		bestLen := math.MaxInt
		for i, m := range methods {
			if sizes[i] < bestLen {
				bestLen, e.cur = sizes[i], m
			}
		}
		*out, *recon0, err = e.encodeWith(ctx, e.cur, batch)
		if err != nil {
			return err
		}
	} else {
		var blks [3][]byte
		var r0s [3][]float64
		err := e.p.Pool.RunContext(ctx, len(methods), func(i int) error {
			var terr error
			blks[i], r0s[i], terr = e.encodeWith(ctx, methods[i], batch)
			return terr
		})
		if err != nil {
			return err
		}
		bestLen := math.MaxInt
		for i, m := range methods {
			if len(blks[i]) < bestLen {
				bestLen = len(blks[i])
				*out, *recon0, e.cur = blks[i], r0s[i], m
			}
		}
	}
	e.tel.Wins[e.cur].Inc()
	if e.cur != prev {
		e.tel.Transitions.Inc()
	}
	return nil
}

// initLevels runs the sampled optimal k-means once per encoder lifetime.
func (e *Encoder) initLevels(snapshot0 []float64) error {
	sw := e.tel.FitNS.Start()
	defer sw.Stop()
	res, err := kmeans.Cluster1D(snapshot0, e.p.KMeans)
	if err != nil {
		// No finite data to cluster: fall back to a unit level model; the
		// outlier path keeps correctness.
		res = kmeans.Result{K: 1, LevelDistance: 1, LevelOrigin: 0}
	}
	if !(res.LevelDistance > 0) || math.IsInf(res.LevelDistance, 0) || math.IsNaN(res.LevelOrigin) {
		res.LevelDistance, res.LevelOrigin = 1, 0
	}
	e.km = &res
	return nil
}

// sampleBatch returns the contiguous particle prefix of batch covering the
// first ADPSampleShards shards at the batch's real shard size, or ok=false
// when sampling is disabled or would not shrink the trial (sample count >=
// effective shard count). MT reference prediction indexes e.ref by particle
// position, so a prefix sub-batch stays a valid trial input for every
// method.
func (e *Encoder) sampleBatch(batch [][]float64) ([][]float64, bool) {
	sample := e.p.ADPSampleShards
	if sample <= 0 {
		return nil, false
	}
	n := len(batch[0])
	k := e.shardCount(n)
	if sample >= k {
		return nil, false
	}
	m := shardBounds(n, k)[sample]
	sub := make([][]float64, len(batch))
	for t, snap := range batch {
		sub[t] = snap[:m]
	}
	return sub, true
}

// encodeWith compresses batch with concrete method m without mutating
// encoder state: it shards the batch along the particle axis, encodes the
// shards concurrently (assembled in index order, so bytes are
// deterministic), and returns the block plus the reconstruction of the
// batch's first snapshot (the MT reference candidate for batch 0).
func (e *Encoder) encodeWith(ctx context.Context, m Method, batch [][]float64) (blk []byte, recon0 []float64, err error) {
	return e.encodeWithShards(ctx, m, batch, 0)
}

// encodeWithShards is encodeWith with an explicit shard count; shards <= 0
// resolves the configured count. Sampled ADP trials pass the sample count so
// trial shards keep the full batch's shard size.
func (e *Encoder) encodeWithShards(ctx context.Context, m Method, batch [][]float64, shardsOverride int) (blk []byte, recon0 []float64, err error) {
	bs, n := len(batch), len(batch[0])
	k := shardsOverride
	if k <= 0 {
		k = e.shardCount(n)
	} else if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	firstPred := byte(firstVQ)
	if m == MT {
		if e.ref != nil {
			firstPred = firstRef
		} else {
			firstPred = firstLorenzo
		}
	}
	bounds := shardBounds(n, k)
	recon0 = make([]float64, n)
	shards := make([][]byte, k)
	// Chunked run: each participating worker owns a fixed contiguous shard
	// range and one scratch acquisition serves its whole chunk, so hot
	// buffers (Huffman slabs, section payloads) stay with the worker instead
	// of migrating through the global sync.Pool once per shard.
	err = e.p.Pool.RunContextChunked(ctx, k, func(cl, ch int) error {
		sc := encScratchPool.Get().(*encodeScratch)
		defer encScratchPool.Put(sc)
		e.tel.ScratchAcquires.Inc()
		for s := cl; s < ch; s++ {
			if cerr := ctxErr(ctx); cerr != nil {
				return cerr
			}
			lo, hi := bounds[s], bounds[s+1]
			payload, serr := e.encodeShard(ctx, sc, m, batch, lo, hi, firstPred, recon0[lo:hi], s)
			if serr != nil {
				return serr
			}
			shards[s] = payload
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	// Header. Version 1 (single section) for K=1 keeps byte-for-byte
	// compatibility with pre-sharding blocks; format v3 always uses the
	// sharded layout so readers branch on the version byte alone.
	ver := byte(formatVer1)
	if e.p.FormatVersion == formatVer3 {
		ver = formatVer3
	} else if k > 1 {
		ver = formatVer2
	}
	blk = append(blk, blockMagic...)
	blk = append(blk, ver, byte(m), byte(e.p.Sequence), firstPred)
	blk = bitstream.AppendFloat64(blk, e.p.ErrorBound)
	blk = bitstream.AppendUvarint(blk, uint64(e.p.QuantScale))
	blk = bitstream.AppendUvarint(blk, uint64(bs))
	blk = bitstream.AppendUvarint(blk, uint64(n))
	blk = bitstream.AppendFloat64(blk, e.km.LevelDistance)
	blk = bitstream.AppendFloat64(blk, e.km.LevelOrigin)
	if ver == formatVer1 {
		blk = bitstream.AppendSection(blk, shards[0])
	} else {
		blk = bitstream.AppendUvarint(blk, uint64(k))
		for s, payload := range shards {
			blk = bitstream.AppendShardSection(blk, bounds[s+1]-bounds[s], payload)
		}
	}
	return blk, recon0, nil
}

// encodeShard compresses the particle range [lo, hi) of batch with method m
// into one backend-compressed payload carrying its own Huffman tables and
// level-delta chain. recon0 (length hi-lo) receives the reconstruction of
// the shard's first snapshot. encodeShard reads but never mutates encoder
// state, so shards and ADP trials can run concurrently. sc is the calling
// chunk's scratch: one acquisition serves every shard the chunk encodes.
func (e *Encoder) encodeShard(ctx context.Context, sc *encodeScratch, m Method, batch [][]float64, lo, hi int, firstPred byte, recon0 []float64, shard int) ([]byte, error) {
	if e.p.FaultHook != nil {
		e.p.FaultHook("encode_shard", shard)
	}
	bs, sn := len(batch), hi-lo
	bins := intsCap(sc.bins, bs*sn) // codes in serialized order
	sc.bins = bins
	levels := sc.levels[:0]          // J stream: level-index deltas (VQ-coded snapshots)
	outliers := sc.outliers[:0]      // exact values in snapshot-major traversal order
	recon := floatsCap(sc.recon, sn) // reconstruction of the latest snapshot row

	// The fused kernels write each row's codes straight into their
	// serialized position: Seq-1 is snapshot-major (row t at t*sn, stride
	// 1), Seq-2 is particle-major (row t at offset t, stride bs), so no
	// separate interleave pass runs.
	stride, rowStep := 1, sn
	if e.p.Sequence == Seq2 {
		stride, rowStep = bs, 1
	}

	// Scope counters accumulate locally and flush once per shard, keeping
	// atomic traffic off the per-value path.
	nOut := 0
	eb := e.p.ErrorBound
	qsw := e.tel.QuantNS.Start()
	for t, snap := range batch {
		// One poll per row kernel: cheap against the O(sn) work below, and
		// fine-grained enough that a deadline aborts within a few rows. The
		// deferred scratch Put above still runs, so cancellation never
		// strands pooled state.
		if err := ctxErr(ctx); err != nil {
			qsw.Stop()
			return nil, err
		}
		data := snap[lo:hi]
		base := t * rowStep
		rowOut := 0
		vqSnapshot := m == VQ || (m == VQT && t == 0)
		switch {
		case vqSnapshot:
			var lvlRow []int
			levels, lvlRow = extendInts(levels, sn)
			rowOut = e.q.QuantizeBlockVQ(data, e.km.LevelDistance, e.km.LevelOrigin, bins, base, stride, lvlRow, recon)
		case t == 0 && m == MT && firstPred == firstRef:
			rowOut = e.q.QuantizeBlock(data, e.ref[lo:hi], bins, base, stride, recon)
		case t == 0 && m == MT:
			// Very first batch of the run: no reference exists yet, so the
			// initial snapshot is coded with spatial Lorenzo (restarting at
			// each shard boundary). This stays scalar — every prediction
			// depends on the previous value's possibly-bounded recon, so
			// the outlier fix-up can't be deferred past the next value.
			prev := 0.0
			ci := base
			for i, d := range data {
				code, rec, ok := e.q.Quantize(d, prev)
				if !ok {
					outliers = quant.AppendBounded(outliers, d, eb)
					rec = quant.BoundedRecon(d, eb)
					code = quant.Reserved
					nOut++
				}
				bins[ci] = code
				recon[i] = rec
				prev = rec
				ci += stride
			}
		default: // time-based prediction from the previous snapshot
			rowOut = e.q.QuantizeBlockTime(data, recon, bins, base, stride)
		}
		if rowOut > 0 {
			// Out-of-scope fix-up: the kernels left the original value in
			// recon[i] under each Reserved code. Store it exactly and swap
			// in the bounded reconstruction, in traversal order, before the
			// next row's time prediction reads recon.
			nOut += rowOut
			ci := base
			for i := range recon {
				if bins[ci] == quant.Reserved {
					d := recon[i]
					outliers = quant.AppendBounded(outliers, d, eb)
					recon[i] = quant.BoundedRecon(d, eb)
				}
				ci += stride
			}
		}
		if t == 0 {
			copy(recon0, recon)
		}
	}
	qsw.Stop()
	e.tel.Values.Add(int64(bs * sn))
	e.tel.Outliers.Add(int64(nOut))
	sc.recon = recon
	sc.levels, sc.outliers = levels, outliers

	// Assemble payload sections, then run the lossless backend. Format v3
	// swaps in the dual-lane section codec; the section order and outlier
	// byte layout are unchanged.
	payload := sc.payload[:0]
	var err error
	hsw := e.tel.HuffNS.Start()
	if e.p.FormatVersion == formatVer3 {
		payload, err = sc.huff.EncodeInts2(payload, bins)
	} else {
		payload, err = sc.huff.EncodeInts(payload, bins)
	}
	if err != nil {
		return nil, err
	}
	e.tel.observeHuffman(sc.huff.LastStats())
	if e.p.FormatVersion == formatVer3 {
		payload, err = sc.huff.EncodeInts2(payload, levels)
	} else {
		payload, err = sc.huff.EncodeInts(payload, levels)
	}
	if err != nil {
		return nil, err
	}
	e.tel.observeHuffman(sc.huff.LastStats())
	hsw.Stop()
	payload = bitstream.AppendSection(payload, outliers)
	sc.payload = payload
	return e.p.Backend.Compress(payload)
}

// interleave reorders a snapshot-major bs×n code matrix to particle-major
// (Seq-2).
func interleave(bins []int, bs, n int) []int {
	out := make([]int, len(bins))
	interleaveInto(out, bins, bs, n)
	return out
}

// interleaveInto is interleave with a caller-provided destination.
func interleaveInto(out, bins []int, bs, n int) {
	idx := 0
	for i := 0; i < n; i++ {
		for t := 0; t < bs; t++ {
			out[idx] = bins[t*n+i]
			idx++
		}
	}
}

// deinterleave inverts interleave.
func deinterleave(bins []int, bs, n int) []int {
	out := make([]int, len(bins))
	deinterleaveInto(out, bins, bs, n)
	return out
}

// deinterleaveInto is deinterleave with a caller-provided destination.
func deinterleaveInto(out, bins []int, bs, n int) {
	idx := 0
	for i := 0; i < n; i++ {
		for t := 0; t < bs; t++ {
			out[t*n+i] = bins[idx]
			idx++
		}
	}
}

// Decoder decompresses blocks produced by an Encoder. Blocks must be fed in
// encode order (the MT reference is carried across batches).
type Decoder struct {
	p Params
	// backendV3 is the format-v3 variant of p.Backend, selected per block
	// by the header version byte so v2 and v3 blocks interleave freely.
	backendV3 lossless.Backend
	ref       []float64
	tel       Telemetry // by value: zero struct (all-nil fields) when disabled
}

// NewDecoder returns a Decoder. Only Backend, Pool and Tel are consulted
// from p (other parameters are read from block headers); a zero Params
// selects defaults.
func NewDecoder(p Params) *Decoder {
	if p.Backend == nil {
		p.Backend = lossless.LZ{}
	}
	d := &Decoder{p: p, backendV3: v3Backend(p.Backend)}
	if p.Tel != nil {
		d.tel = *p.Tel
		onDecompress := func(dur time.Duration, in, out int) {
			d.tel.BackendNS.Observe(dur.Nanoseconds())
			d.tel.BackendInBytes.Add(int64(in))
			d.tel.BackendOutBytes.Add(int64(out))
		}
		d.p.Backend = lossless.Timed{B: d.p.Backend, OnDecompress: onDecompress}
		d.backendV3 = lossless.Timed{B: d.backendV3, OnDecompress: onDecompress}
	}
	return d
}

// DecodeBatch reconstructs the snapshots of one block, decoding particle
// shards concurrently on the configured pool.
func (d *Decoder) DecodeBatch(blk []byte) ([][]float64, error) {
	return d.DecodeBatchContext(nil, blk)
}

// DecodeBatchContext is DecodeBatch with cooperative cancellation (shard
// row loops and the work pool poll ctx; nil disables it). Like the
// encoder, the decoder's cross-batch state is only advanced on success,
// so a cancelled decode can be retried. When Params.Budget is set, the
// block's claimed geometry and every claimed section length are charged
// against one budget transaction scoped to this call.
func (d *Decoder) DecodeBatchContext(ctx context.Context, blk []byte) ([][]float64, error) {
	sw := d.tel.BatchNS.Start()
	h, err := parseHeader(blk)
	if err != nil {
		return nil, err
	}
	q, err := quant.New(h.eb, h.scale)
	if err != nil {
		return nil, ErrCorrupt
	}
	if h.method == MT && h.firstPred == firstRef {
		if d.ref == nil || len(d.ref) != h.n {
			return nil, ErrOrder
		}
	}
	tx := d.p.Budget.Begin()
	defer tx.Close()
	// The output matrix is the decoder's single largest claimed-size
	// allocation: charge it before materializing.
	if err := tx.Reserve(8 * int64(h.bs) * int64(h.n)); err != nil {
		return nil, err
	}
	out := make([][]float64, h.bs)
	for t := range out {
		out[t] = make([]float64, h.n)
	}
	offs := shardOffsets(h.shards)
	// Same chunked affinity as the encoder: one scratch per participating
	// worker for the whole chunk of shards.
	err = d.p.Pool.RunContextChunked(ctx, len(h.shards), func(cl, ch int) error {
		sc := decScratchPool.Get().(*decodeScratch)
		defer decScratchPool.Put(sc)
		d.tel.ScratchAcquires.Inc()
		for s := cl; s < ch; s++ {
			if cerr := ctxErr(ctx); cerr != nil {
				return cerr
			}
			if serr := d.decodeShard(ctx, q, h, h.shards[s], offs[s], out, tx, sc, s); serr != nil {
				return serr
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if d.ref == nil {
		d.ref = append([]float64(nil), out[0]...)
	}
	d.tel.Batches.Inc()
	sw.Stop()
	return out, nil
}

// decodeShard reconstructs one shard's particle columns [lo, lo+particles)
// into out. Shards write disjoint column ranges, so they are safe to decode
// concurrently. sc is the calling chunk's scratch, shared by every shard of
// the chunk.
func (d *Decoder) decodeShard(ctx context.Context, q *quant.Quantizer, h *header, sh shardSec, lo int, out [][]float64, tx *budget.Tx, sc *decodeScratch, shard int) error {
	if d.p.FaultHook != nil {
		d.p.FaultHook("decode_shard", shard)
	}
	bs, sn := h.bs, sh.particles
	bins, levels, outliers, err := d.sections(h.ver, sh.body, bs, sn, sc, tx)
	if err != nil {
		return err
	}
	// Strided reads pull each row straight out of the serialized order —
	// Seq-2 streams are no longer deinterleaved into a scratch copy.
	stride, rowStep := 1, sn
	if h.seq == Seq2 {
		stride, rowStep = bs, 1
	}
	opos := 0
	levelPos := 0
	qsw := d.tel.QuantNS.Start()
	defer qsw.Stop()
	for t := 0; t < bs; t++ {
		// Same per-row cancellation granularity as the encoder's shard loop.
		if err := ctxErr(ctx); err != nil {
			return err
		}
		base := t * rowStep
		snap := out[t][lo : lo+sn]
		nRes := 0
		vqSnapshot := h.method == VQ || (h.method == VQT && t == 0) ||
			(h.method == MT && t == 0 && h.firstPred == firstVQ)
		switch {
		case vqSnapshot:
			if len(levels)-levelPos < sn {
				return ErrCorrupt
			}
			lvlRow := levels[levelPos : levelPos+sn]
			levelPos += sn
			nRes = q.DequantizeBlockVQ(bins, base, stride, lvlRow, h.lam, h.mu, snap)
		case t == 0 && h.method == MT && h.firstPred == firstLorenzo:
			// Scalar, like the encoder: each prediction needs the previous
			// value's final (possibly outlier-restored) reconstruction.
			prev := 0.0
			ci := base
			for i := 0; i < sn; i++ {
				if quant.IsReserved(bins[ci]) {
					v, nb, err := quant.ReadBounded(outliers[opos:], h.eb)
					if err != nil {
						return ErrCorrupt
					}
					opos += nb
					snap[i] = v
				} else {
					snap[i] = q.Dequantize(bins[ci], prev)
				}
				prev = snap[i]
				ci += stride
			}
		case t == 0 && h.method == MT && h.firstPred == firstRef:
			nRes = q.DequantizeBlock(bins, base, stride, d.ref[lo:lo+sn], snap)
		default: // time-based
			nRes = q.DequantizeBlock(bins, base, stride, out[t-1][lo:lo+sn], snap)
		}
		if nRes > 0 {
			// Outlier fix-up in traversal order, before the next row's time
			// prediction reads snap.
			ci := base
			for i := 0; i < sn; i++ {
				if quant.IsReserved(bins[ci]) {
					v, nb, err := quant.ReadBounded(outliers[opos:], h.eb)
					if err != nil {
						return ErrCorrupt
					}
					opos += nb
					snap[i] = v
				}
				ci += stride
			}
		}
	}
	return nil
}

// DecodeSnapshot decodes a single snapshot t out of a VQ block without
// reconstructing the others — the random-access property the paper
// highlights for VQ (§VI: "any snapshot data can be decompressed very
// quickly without a need in decompressing other snapshots"). It fails with
// ErrNotRandomAccess for VQT/MT blocks, whose snapshots are chained in
// time.
func (d *Decoder) DecodeSnapshot(blk []byte, t int) ([]float64, error) {
	h, err := parseHeader(blk)
	if err != nil {
		return nil, err
	}
	if h.method != VQ {
		return nil, ErrNotRandomAccess
	}
	if t < 0 || t >= h.bs {
		return nil, fmt.Errorf("core: snapshot %d out of range [0,%d)", t, h.bs)
	}
	q, err := quant.New(h.eb, h.scale)
	if err != nil {
		return nil, ErrCorrupt
	}
	tx := d.p.Budget.Begin()
	defer tx.Close()
	if err := tx.Reserve(8 * int64(h.n)); err != nil {
		return nil, err
	}
	snap := make([]float64, h.n)
	offs := shardOffsets(h.shards)
	err = d.p.Pool.Run(len(h.shards), func(s int) error {
		return d.decodeShardSnapshot(q, h, h.shards[s], offs[s], t, snap, tx)
	})
	if err != nil {
		return nil, err
	}
	return snap, nil
}

// decodeShardSnapshot reconstructs row t of one shard into snap[lo:].
func (d *Decoder) decodeShardSnapshot(q *quant.Quantizer, h *header, sh shardSec, lo, t int, snap []float64, tx *budget.Tx) error {
	bs, sn := h.bs, sh.particles
	sc := decScratchPool.Get().(*decodeScratch)
	defer decScratchPool.Put(sc)
	bins, levels, outliers, err := d.sections(h.ver, sh.body, bs, sn, sc, tx)
	if err != nil {
		return err
	}
	if len(levels) != bs*sn {
		return ErrCorrupt // VQ blocks carry one level delta per value
	}
	stride, rowStep := 1, sn
	if h.seq == Seq2 {
		stride, rowStep = bs, 1
	}
	// Position the outlier cursor: skip reserved codes of rows before t in
	// snapshot-major traversal order (the order the encoder stored them).
	opos := 0
	for tt := 0; tt < t; tt++ {
		ci := tt * rowStep
		for i := 0; i < sn; i++ {
			if quant.IsReserved(bins[ci]) {
				_, n2, err := quant.ReadBounded(outliers[opos:], h.eb)
				if err != nil {
					return ErrCorrupt
				}
				opos += n2
			}
			ci += stride
		}
	}
	lvlRow := levels[t*sn : (t+1)*sn]
	prevLevel := int64(0)
	ci := t * rowStep
	for i := 0; i < sn; i++ {
		lvl := prevLevel + int64(lvlRow[i])
		prevLevel = lvl
		if quant.IsReserved(bins[ci]) {
			v, n2, err := quant.ReadBounded(outliers[opos:], h.eb)
			if err != nil {
				return ErrCorrupt
			}
			opos += n2
			snap[lo+i] = v
		} else {
			snap[lo+i] = q.Dequantize(bins[ci], predictor.Centroid(lvl, h.lam, h.mu))
		}
		ci += stride
	}
	return nil
}

// ErrNotRandomAccess is returned by DecodeSnapshot on VQT/MT blocks.
var ErrNotRandomAccess = errors.New("core: random access requires a VQ block")

// shardSec is one parsed shard sub-section.
type shardSec struct {
	particles int
	body      []byte // compressed shard payload
}

// shardOffsets returns each shard's starting particle column.
func shardOffsets(shards []shardSec) []int {
	offs := make([]int, len(shards))
	off := 0
	for s := range shards {
		offs[s] = off
		off += shards[s].particles
	}
	return offs
}

// header is the parsed block preamble.
type header struct {
	ver       byte
	method    Method
	seq       Sequence
	firstPred byte
	eb        float64
	scale     int
	bs, n     int
	lam, mu   float64
	shards    []shardSec
}

func parseHeader(blk []byte) (*header, error) {
	br := bitstream.NewByteReader(blk)
	magic, err := br.ReadBytes(4)
	if err != nil || string(magic) != blockMagic {
		return nil, ErrCorrupt
	}
	ver, err := br.ReadByte()
	if err != nil || ver < formatVer1 || ver > formatVer3 {
		return nil, ErrCorrupt
	}
	h := &header{ver: ver}
	mByte, err := br.ReadByte()
	if err != nil {
		return nil, corrupt(err)
	}
	h.method = Method(mByte)
	if h.method != VQ && h.method != VQT && h.method != MT {
		return nil, ErrCorrupt
	}
	seqByte, err := br.ReadByte()
	if err != nil {
		return nil, corrupt(err)
	}
	h.seq = Sequence(seqByte)
	if h.firstPred, err = br.ReadByte(); err != nil {
		return nil, corrupt(err)
	}
	// An unknown firstPred would route MT's snapshot 0 into the time
	// branch, which indexes the (nonexistent) previous snapshot.
	if h.firstPred > firstVQ {
		return nil, ErrCorrupt
	}
	if h.eb, err = br.ReadFloat64(); err != nil {
		return nil, corrupt(err)
	}
	scale, err := br.ReadUvarint()
	if err != nil {
		return nil, corrupt(err)
	}
	h.scale = int(scale)
	bs64, err := br.ReadUvarint()
	if err != nil {
		return nil, corrupt(err)
	}
	n64, err := br.ReadUvarint()
	if err != nil {
		return nil, corrupt(err)
	}
	h.bs, h.n = int(bs64), int(n64)
	if h.bs <= 0 || h.n < 0 || uint64(h.bs)*uint64(h.n) > 1<<33 {
		return nil, ErrCorrupt
	}
	if h.lam, err = br.ReadFloat64(); err != nil {
		return nil, corrupt(err)
	}
	if h.mu, err = br.ReadFloat64(); err != nil {
		return nil, corrupt(err)
	}
	if ver == formatVer1 {
		body, err := br.ReadSection()
		if err != nil {
			return nil, corrupt(err)
		}
		h.shards = []shardSec{{particles: h.n, body: body}}
		return h, nil
	}
	k64, err := br.ReadUvarint()
	if err != nil {
		return nil, corrupt(err)
	}
	// Version 3 always uses the sharded layout, so a single empty shard
	// (k=1, n=0) is legal there; versions <= 2 only shard when n >= k >= 2.
	if k64 < 1 || k64 > MaxShards || (int(k64) > h.n && !(k64 == 1 && h.n == 0)) {
		return nil, ErrCorrupt
	}
	h.shards = make([]shardSec, int(k64))
	sum := 0
	for s := range h.shards {
		particles, body, err := br.ReadShardSection()
		if err != nil {
			return nil, corrupt(err)
		}
		if particles < 0 || particles > h.n || (particles == 0 && h.n != 0) {
			return nil, ErrCorrupt
		}
		h.shards[s] = shardSec{particles: particles, body: body}
		sum += particles
	}
	if sum != h.n {
		return nil, ErrCorrupt
	}
	// A forged header can pair a huge claimed geometry with a tiny payload,
	// tricking the decoder into allocating bs×n values it can never fill.
	// Even a constant axis needs well over a byte of payload per few
	// thousand values, so reject implausible expansion claims up front.
	body := 0
	for _, sh := range h.shards {
		body += len(sh.body)
	}
	if uint64(h.bs)*uint64(h.n) > uint64(body+1)*8192 {
		return nil, ErrCorrupt
	}
	return h, nil
}

// sections decompresses one shard payload and splits it into the bin
// stream, level-delta stream and outlier bytes, reusing sc's buffers when
// provided. The block version selects the matching backend and entropy
// codec. The returned slices alias sc and must not outlive its use.
func (d *Decoder) sections(ver byte, body []byte, bs, sn int, sc *decodeScratch, tx *budget.Tx) (bins, levels []int, outliers []byte, err error) {
	backend := d.p.Backend
	if ver == formatVer3 {
		backend = d.backendV3
	}
	payload, err := lossless.DecompressTx(backend, body, tx)
	if err != nil {
		return nil, nil, nil, corrupt(err)
	}
	pr := bitstream.NewByteReader(payload)
	var binsBuf, levelsBuf []int
	if sc != nil {
		binsBuf, levelsBuf = sc.bins, sc.levels
	}
	hsw := d.tel.HuffNS.Start()
	if ver == formatVer3 {
		if bins, err = huffman.DecodeInts2Tx(pr, binsBuf, tx); err != nil {
			return nil, nil, nil, corrupt(err)
		}
		if levels, err = huffman.DecodeInts2Tx(pr, levelsBuf, tx); err != nil {
			return nil, nil, nil, corrupt(err)
		}
	} else {
		if bins, err = huffman.DecodeIntsTx(pr, binsBuf, tx); err != nil {
			return nil, nil, nil, corrupt(err)
		}
		if levels, err = huffman.DecodeIntsTx(pr, levelsBuf, tx); err != nil {
			return nil, nil, nil, corrupt(err)
		}
	}
	hsw.Stop()
	if sc != nil {
		sc.bins, sc.levels = bins, levels
	}
	if outliers, err = pr.ReadSection(); err != nil {
		return nil, nil, nil, corrupt(err)
	}
	if len(bins) != bs*sn {
		return nil, nil, nil, ErrCorrupt
	}
	return bins, levels, outliers, nil
}

// BlockMethod peeks at a block's concrete method without decoding it.
func BlockMethod(blk []byte) (Method, error) {
	if len(blk) < 6 || string(blk[:4]) != blockMagic {
		return 0, ErrCorrupt
	}
	return Method(blk[5]), nil
}
