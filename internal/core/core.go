// Package core implements MDZ, the adaptive error-bounded lossy compressor
// for molecular-dynamics trajectories (paper §VI). It provides the three
// MD-specific compression methods — VQ (vector-quantization, spatial), VQT
// (VQ + time prediction) and MT (multi-level time prediction) — plus the
// adaptive selector ADP that re-evaluates the best method every
// AdaptInterval batches.
//
// The compressor is stateful across batches, mirroring the paper's buffered
// execution model: k-means level parameters (λ, μ) are computed once from a
// sample of the first snapshot, and the reconstructed initial snapshot is
// retained as the MT reference. Encoder and Decoder must therefore process
// batches in the same order; every block is otherwise self-describing.
package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/mdz/mdz/internal/bitstream"
	"github.com/mdz/mdz/internal/huffman"
	"github.com/mdz/mdz/internal/kmeans"
	"github.com/mdz/mdz/internal/lossless"
	"github.com/mdz/mdz/internal/predictor"
	"github.com/mdz/mdz/internal/quant"
)

// Method selects the MDZ compression method.
type Method uint8

// Compression methods. ADP is the paper's default: it dynamically selects
// among VQ, VQT and MT at runtime.
const (
	ADP Method = iota
	VQ
	VQT
	MT
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case ADP:
		return "ADP"
	case VQ:
		return "VQ"
	case VQT:
		return "VQT"
	case MT:
		return "MT"
	}
	return fmt.Sprintf("Method(%d)", uint8(m))
}

// Sequence selects the quantization-code interleaving (paper §VI-C2).
type Sequence uint8

// Quantization sequences. Seq2 stores one particle's codes across all
// snapshots of a buffer contiguously (particle-major) and is the paper's
// choice; Seq1 stores snapshot-major.
const (
	Seq2 Sequence = iota
	Seq1
)

// String implements fmt.Stringer.
func (s Sequence) String() string {
	if s == Seq1 {
		return "Seq-1"
	}
	return "Seq-2"
}

// DefaultAdaptInterval is the paper's ADP re-evaluation period, in
// compression operations (batches).
const DefaultAdaptInterval = 50

// Params configures an Encoder. The zero value is not usable; use
// NewEncoder which applies defaults.
type Params struct {
	// ErrorBound is the absolute error bound (must be positive). Callers
	// using the paper's value-range-based ε should convert with
	// quant.AbsBound first.
	ErrorBound float64
	// QuantScale is the linear-scale quantization range (default 1024).
	QuantScale int
	// Method selects VQ, VQT, MT, or adaptive ADP (default ADP).
	Method Method
	// Sequence selects the quantization interleaving (default Seq2).
	Sequence Sequence
	// AdaptInterval is the ADP re-evaluation period in batches (default 50).
	AdaptInterval int
	// Backend is the final lossless stage (default lossless.LZ).
	Backend lossless.Backend
	// KMeans tunes the sampled 1-D clustering for the VQ level model.
	KMeans kmeans.Options
}

func (p *Params) fill() error {
	if !(p.ErrorBound > 0) {
		return fmt.Errorf("core: ErrorBound must be positive, got %v", p.ErrorBound)
	}
	if p.QuantScale == 0 {
		p.QuantScale = quant.DefaultScale
	}
	if p.QuantScale < 4 {
		return fmt.Errorf("core: QuantScale must be >= 4, got %d", p.QuantScale)
	}
	if p.AdaptInterval <= 0 {
		p.AdaptInterval = DefaultAdaptInterval
	}
	if p.Backend == nil {
		p.Backend = lossless.LZ{}
	}
	return nil
}

// Block format constants.
const (
	blockMagic   = "MDZB"
	formatVer    = 1
	firstLorenzo = 0 // first snapshot of batch: spatial Lorenzo (no ref yet)
	firstRef     = 1 // first snapshot of batch: snapshot-0 reference
	firstVQ      = 2 // first snapshot of batch: VQ level prediction
)

// ErrCorrupt is returned for malformed blocks.
var ErrCorrupt = errors.New("core: corrupt MDZ block")

// ErrOrder is returned when a Decoder receives blocks out of order.
var ErrOrder = errors.New("core: MT block requires the preceding blocks to be decoded first")

// Encoder compresses one axis of a trajectory, batch by batch.
type Encoder struct {
	p     Params
	q     *quant.Quantizer
	km    *kmeans.Result
	ref   []float64 // reconstructed snapshot 0 of the run (set after batch 0)
	cur   Method    // concrete method in use (ADP resolves to one of the three)
	batch int       // batches encoded so far
	// Stats accumulates encoder-side statistics for benchmarks.
	Stats Stats
}

// Stats records encoder activity, exported for the benchmark harness.
type Stats struct {
	// Batches counts encoded batches; Evaluations counts ADP trials.
	Batches, Evaluations int
	// MethodBatches counts batches emitted per concrete method.
	MethodBatches [4]int
	// RawBytes and CompressedBytes accumulate totals.
	RawBytes, CompressedBytes int64
}

// NewEncoder returns an Encoder for one axis with the given parameters.
func NewEncoder(p Params) (*Encoder, error) {
	if err := p.fill(); err != nil {
		return nil, err
	}
	q, err := quant.New(p.ErrorBound, p.QuantScale)
	if err != nil {
		return nil, err
	}
	cur := p.Method
	if cur == ADP {
		cur = VQT // provisional; first batch evaluation overrides
	}
	return &Encoder{p: p, q: q, cur: cur}, nil
}

// Method reports the concrete method currently selected (useful under ADP).
func (e *Encoder) Method() Method { return e.cur }

// EncodeBatch compresses a buffer of snapshots (each []float64 of equal
// length) into a self-describing block. Snapshots are consumed in
// simulation order; the batch must not be empty.
func (e *Encoder) EncodeBatch(batch [][]float64) ([]byte, error) {
	if len(batch) == 0 {
		return nil, errors.New("core: empty batch")
	}
	n := len(batch[0])
	for i, s := range batch {
		if len(s) != n {
			return nil, fmt.Errorf("core: snapshot %d has %d values, want %d", i, len(s), n)
		}
	}
	if e.km == nil {
		if err := e.initLevels(batch[0]); err != nil {
			return nil, err
		}
	}

	// ADP re-evaluates every AdaptInterval batches. Batch 1 is also always
	// evaluated: batch 0 has no MT reference yet, so its winner can be
	// unrepresentative of steady-state behaviour.
	adapt := e.p.Method == ADP && (e.batch <= 1 || e.batch%e.p.AdaptInterval == 0)
	var out []byte
	var recon0 []float64
	if adapt {
		e.Stats.Evaluations++
		bestLen := math.MaxInt
		for _, m := range []Method{VQ, VQT, MT} {
			blk, r0, err := e.encodeWith(m, batch)
			if err != nil {
				return nil, err
			}
			if len(blk) < bestLen {
				bestLen = len(blk)
				out, recon0, e.cur = blk, r0, m
			}
		}
	} else {
		m := e.cur
		if e.p.Method != ADP {
			m = e.p.Method
		}
		var err error
		out, recon0, err = e.encodeWith(m, batch)
		if err != nil {
			return nil, err
		}
	}
	if e.ref == nil {
		e.ref = recon0
	}
	e.batch++
	e.Stats.Batches++
	e.Stats.MethodBatches[e.cur]++
	e.Stats.RawBytes += int64(len(batch) * n * 8)
	e.Stats.CompressedBytes += int64(len(out))
	return out, nil
}

// initLevels runs the sampled optimal k-means once per encoder lifetime.
func (e *Encoder) initLevels(snapshot0 []float64) error {
	res, err := kmeans.Cluster1D(snapshot0, e.p.KMeans)
	if err != nil {
		// No finite data to cluster: fall back to a unit level model; the
		// outlier path keeps correctness.
		res = kmeans.Result{K: 1, LevelDistance: 1, LevelOrigin: 0}
	}
	if !(res.LevelDistance > 0) || math.IsInf(res.LevelDistance, 0) || math.IsNaN(res.LevelOrigin) {
		res.LevelDistance, res.LevelOrigin = 1, 0
	}
	e.km = &res
	return nil
}

// encodeWith compresses batch with concrete method m without mutating
// encoder state; it returns the block and the reconstruction of the batch's
// first snapshot (the MT reference candidate for batch 0).
func (e *Encoder) encodeWith(m Method, batch [][]float64) (blk []byte, recon0 []float64, err error) {
	bs, n := len(batch), len(batch[0])
	bins := make([]int, 0, bs*n) // snapshot-major during prediction
	var levels []int             // J stream: level-index deltas (VQ-coded snapshots)
	var outliers []byte          // exact values in snapshot-major traversal order

	prevRecon := make([]float64, n) // reconstructed previous snapshot
	curRecon := make([]float64, n)
	firstPred := byte(firstVQ)

	for t, snap := range batch {
		vqSnapshot := m == VQ || (m == VQT && t == 0)
		switch {
		case vqSnapshot:
			if t == 0 {
				firstPred = firstVQ
			}
			lam, mu := e.km.LevelDistance, e.km.LevelOrigin
			prevLevel := int64(0)
			for i, d := range snap {
				lvl, centroid := predictor.Level(d, lam, mu)
				code, recon, ok := e.q.Quantize(d, centroid)
				if !ok {
					outliers = quant.AppendBounded(outliers, d, e.p.ErrorBound)
					recon = quant.BoundedRecon(d, e.p.ErrorBound)
					code = quant.Reserved
				}
				bins = append(bins, code)
				levels = append(levels, int(lvl-prevLevel))
				prevLevel = lvl
				curRecon[i] = recon
			}
		case t == 0 && m == MT:
			if e.ref != nil {
				firstPred = firstRef
				for i, d := range snap {
					code, recon, ok := e.q.Quantize(d, e.ref[i])
					if !ok {
						outliers = quant.AppendBounded(outliers, d, e.p.ErrorBound)
						recon = quant.BoundedRecon(d, e.p.ErrorBound)
						code = quant.Reserved
					}
					bins = append(bins, code)
					curRecon[i] = recon
				}
			} else {
				// Very first batch of the run: no reference exists yet, so
				// the initial snapshot is coded with spatial Lorenzo.
				firstPred = firstLorenzo
				prev := 0.0
				for i, d := range snap {
					code, recon, ok := e.q.Quantize(d, prev)
					if !ok {
						outliers = quant.AppendBounded(outliers, d, e.p.ErrorBound)
						recon = quant.BoundedRecon(d, e.p.ErrorBound)
						code = quant.Reserved
					}
					bins = append(bins, code)
					curRecon[i] = recon
					prev = recon
				}
			}
		default: // time-based prediction from the previous snapshot
			for i, d := range snap {
				code, recon, ok := e.q.Quantize(d, prevRecon[i])
				if !ok {
					outliers = quant.AppendBounded(outliers, d, e.p.ErrorBound)
					recon = quant.BoundedRecon(d, e.p.ErrorBound)
					code = quant.Reserved
				}
				bins = append(bins, code)
				curRecon[i] = recon
			}
		}
		prevRecon, curRecon = curRecon, prevRecon
		if t == 0 {
			recon0 = append([]float64(nil), prevRecon...)
		}
	}

	if e.p.Sequence == Seq2 {
		bins = interleave(bins, bs, n)
	}

	// Assemble payload sections, then run the lossless backend.
	var payload []byte
	payload, err = huffman.EncodeInts(payload, bins)
	if err != nil {
		return nil, nil, err
	}
	payload, err = huffman.EncodeInts(payload, levels)
	if err != nil {
		return nil, nil, err
	}
	payload = bitstream.AppendSection(payload, outliers)
	compressed, err := e.p.Backend.Compress(payload)
	if err != nil {
		return nil, nil, err
	}

	// Header.
	blk = append(blk, blockMagic...)
	blk = append(blk, formatVer, byte(m), byte(e.p.Sequence), firstPred)
	blk = bitstream.AppendFloat64(blk, e.p.ErrorBound)
	blk = bitstream.AppendUvarint(blk, uint64(e.p.QuantScale))
	blk = bitstream.AppendUvarint(blk, uint64(bs))
	blk = bitstream.AppendUvarint(blk, uint64(n))
	blk = bitstream.AppendFloat64(blk, e.km.LevelDistance)
	blk = bitstream.AppendFloat64(blk, e.km.LevelOrigin)
	blk = bitstream.AppendSection(blk, compressed)
	return blk, recon0, nil
}

// interleave reorders a snapshot-major bs×n code matrix to particle-major
// (Seq-2).
func interleave(bins []int, bs, n int) []int {
	out := make([]int, len(bins))
	idx := 0
	for i := 0; i < n; i++ {
		for t := 0; t < bs; t++ {
			out[idx] = bins[t*n+i]
			idx++
		}
	}
	return out
}

// deinterleave inverts interleave.
func deinterleave(bins []int, bs, n int) []int {
	out := make([]int, len(bins))
	idx := 0
	for i := 0; i < n; i++ {
		for t := 0; t < bs; t++ {
			out[t*n+i] = bins[idx]
			idx++
		}
	}
	return out
}

// Decoder decompresses blocks produced by an Encoder. Blocks must be fed in
// encode order (the MT reference is carried across batches).
type Decoder struct {
	p   Params
	ref []float64
}

// NewDecoder returns a Decoder. Only Backend is consulted from p (other
// parameters are read from block headers); a zero Params selects defaults.
func NewDecoder(p Params) *Decoder {
	if p.Backend == nil {
		p.Backend = lossless.LZ{}
	}
	return &Decoder{p: p}
}

// DecodeBatch reconstructs the snapshots of one block.
func (d *Decoder) DecodeBatch(blk []byte) ([][]float64, error) {
	h, err := parseHeader(blk)
	if err != nil {
		return nil, err
	}
	m, seq, firstPred := h.method, h.seq, h.firstPred
	eb, bs, n, lam, mu := h.eb, h.bs, h.n, h.lam, h.mu
	q, err := quant.New(eb, h.scale)
	if err != nil {
		return nil, ErrCorrupt
	}
	bins, levels, outliers, err := d.sections(h)
	if err != nil {
		return nil, err
	}
	if seq == Seq2 {
		bins = deinterleave(bins, bs, n)
	}
	if m == MT && firstPred == firstRef {
		if d.ref == nil || len(d.ref) != n {
			return nil, ErrOrder
		}
	}

	out := make([][]float64, bs)
	opos := 0
	levelPos := 0
	nextOutlier := func() (float64, error) {
		v, n, err := quant.ReadBounded(outliers[opos:], eb)
		opos += n
		return v, err
	}
	prevRecon := make([]float64, n)
	for t := 0; t < bs; t++ {
		snap := make([]float64, n)
		row := bins[t*n : (t+1)*n]
		vqSnapshot := m == VQ || (m == VQT && t == 0) ||
			(m == MT && t == 0 && firstPred == firstVQ)
		switch {
		case vqSnapshot:
			prevLevel := int64(0)
			for i := 0; i < n; i++ {
				if levelPos >= len(levels) {
					return nil, ErrCorrupt
				}
				lvl := prevLevel + int64(levels[levelPos])
				levelPos++
				prevLevel = lvl
				centroid := predictor.Centroid(lvl, lam, mu)
				if quant.IsReserved(row[i]) {
					v, err := nextOutlier()
					if err != nil {
						return nil, ErrCorrupt
					}
					snap[i] = v
				} else {
					snap[i] = q.Dequantize(row[i], centroid)
				}
			}
		case t == 0 && m == MT && firstPred == firstLorenzo:
			prev := 0.0
			for i := 0; i < n; i++ {
				if quant.IsReserved(row[i]) {
					v, err := nextOutlier()
					if err != nil {
						return nil, ErrCorrupt
					}
					snap[i] = v
				} else {
					snap[i] = q.Dequantize(row[i], prev)
				}
				prev = snap[i]
			}
		case t == 0 && m == MT && firstPred == firstRef:
			for i := 0; i < n; i++ {
				if quant.IsReserved(row[i]) {
					v, err := nextOutlier()
					if err != nil {
						return nil, ErrCorrupt
					}
					snap[i] = v
				} else {
					snap[i] = q.Dequantize(row[i], d.ref[i])
				}
			}
		default: // time-based
			for i := 0; i < n; i++ {
				if quant.IsReserved(row[i]) {
					v, err := nextOutlier()
					if err != nil {
						return nil, ErrCorrupt
					}
					snap[i] = v
				} else {
					snap[i] = q.Dequantize(row[i], prevRecon[i])
				}
			}
		}
		out[t] = snap
		prevRecon = snap
	}
	if d.ref == nil {
		d.ref = append([]float64(nil), out[0]...)
	}
	return out, nil
}

// DecodeSnapshot decodes a single snapshot t out of a VQ block without
// reconstructing the others — the random-access property the paper
// highlights for VQ (§VI: "any snapshot data can be decompressed very
// quickly without a need in decompressing other snapshots"). It fails with
// ErrNotRandomAccess for VQT/MT blocks, whose snapshots are chained in
// time.
func (d *Decoder) DecodeSnapshot(blk []byte, t int) ([]float64, error) {
	h, err := parseHeader(blk)
	if err != nil {
		return nil, err
	}
	if h.method != VQ {
		return nil, ErrNotRandomAccess
	}
	if t < 0 || t >= h.bs {
		return nil, fmt.Errorf("core: snapshot %d out of range [0,%d)", t, h.bs)
	}
	q, err := quant.New(h.eb, h.scale)
	if err != nil {
		return nil, ErrCorrupt
	}
	bins, levels, outliers, err := d.sections(h)
	if err != nil {
		return nil, err
	}
	if len(levels) != h.bs*h.n {
		return nil, ErrCorrupt // VQ blocks carry one level delta per value
	}
	if h.seq == Seq2 {
		bins = deinterleave(bins, h.bs, h.n)
	}
	// Position the outlier cursor: count reserved codes before row t.
	opos := 0
	for _, code := range bins[:t*h.n] {
		if quant.IsReserved(code) {
			_, n2, err := quant.ReadBounded(outliers[opos:], h.eb)
			if err != nil {
				return nil, ErrCorrupt
			}
			opos += n2
		}
	}
	snap := make([]float64, h.n)
	row := bins[t*h.n : (t+1)*h.n]
	lvlRow := levels[t*h.n : (t+1)*h.n]
	prevLevel := int64(0)
	for i := 0; i < h.n; i++ {
		lvl := prevLevel + int64(lvlRow[i])
		prevLevel = lvl
		if quant.IsReserved(row[i]) {
			v, n2, err := quant.ReadBounded(outliers[opos:], h.eb)
			if err != nil {
				return nil, ErrCorrupt
			}
			opos += n2
			snap[i] = v
		} else {
			snap[i] = q.Dequantize(row[i], predictor.Centroid(lvl, h.lam, h.mu))
		}
	}
	return snap, nil
}

// ErrNotRandomAccess is returned by DecodeSnapshot on VQT/MT blocks.
var ErrNotRandomAccess = errors.New("core: random access requires a VQ block")

// header is the parsed block preamble.
type header struct {
	method    Method
	seq       Sequence
	firstPred byte
	eb        float64
	scale     int
	bs, n     int
	lam, mu   float64
	body      []byte // compressed payload section
}

func parseHeader(blk []byte) (*header, error) {
	br := bitstream.NewByteReader(blk)
	magic, err := br.ReadBytes(4)
	if err != nil || string(magic) != blockMagic {
		return nil, ErrCorrupt
	}
	ver, err := br.ReadByte()
	if err != nil || ver != formatVer {
		return nil, ErrCorrupt
	}
	h := &header{}
	mByte, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	h.method = Method(mByte)
	if h.method != VQ && h.method != VQT && h.method != MT {
		return nil, ErrCorrupt
	}
	seqByte, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	h.seq = Sequence(seqByte)
	if h.firstPred, err = br.ReadByte(); err != nil {
		return nil, err
	}
	if h.eb, err = br.ReadFloat64(); err != nil {
		return nil, err
	}
	scale, err := br.ReadUvarint()
	if err != nil {
		return nil, err
	}
	h.scale = int(scale)
	bs64, err := br.ReadUvarint()
	if err != nil {
		return nil, err
	}
	n64, err := br.ReadUvarint()
	if err != nil {
		return nil, err
	}
	h.bs, h.n = int(bs64), int(n64)
	if h.bs <= 0 || h.n < 0 || uint64(h.bs)*uint64(h.n) > 1<<33 {
		return nil, ErrCorrupt
	}
	if h.lam, err = br.ReadFloat64(); err != nil {
		return nil, err
	}
	if h.mu, err = br.ReadFloat64(); err != nil {
		return nil, err
	}
	if h.body, err = br.ReadSection(); err != nil {
		return nil, err
	}
	return h, nil
}

// sections decompresses the payload and splits it into the bin stream,
// level-delta stream and outlier bytes.
func (d *Decoder) sections(h *header) (bins, levels []int, outliers []byte, err error) {
	payload, err := d.p.Backend.Decompress(h.body)
	if err != nil {
		return nil, nil, nil, err
	}
	pr := bitstream.NewByteReader(payload)
	if bins, err = huffman.DecodeInts(pr); err != nil {
		return nil, nil, nil, err
	}
	if levels, err = huffman.DecodeInts(pr); err != nil {
		return nil, nil, nil, err
	}
	if outliers, err = pr.ReadSection(); err != nil {
		return nil, nil, nil, err
	}
	if len(bins) != h.bs*h.n {
		return nil, nil, nil, ErrCorrupt
	}
	return bins, levels, outliers, nil
}

// BlockMethod peeks at a block's concrete method without decoding it.
func BlockMethod(blk []byte) (Method, error) {
	if len(blk) < 6 || string(blk[:4]) != blockMagic {
		return 0, ErrCorrupt
	}
	return Method(blk[5]), nil
}
