package gen

import (
	"math"
	"reflect"
	"testing"

	"github.com/mdz/mdz/internal/dataset"
	"github.com/mdz/mdz/internal/metrics"
)

// small returns fast-to-generate options for tests.
func small() Options { return Options{Snapshots: 6, Atoms: 300, Seed: 7} }

func TestAllGeneratorsProduceValidData(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			d, err := Generate(name, small())
			if err != nil {
				t.Fatal(err)
			}
			if d.M() != 6 {
				t.Errorf("M=%d, want 6", d.M())
			}
			if d.N() < 50 {
				t.Errorf("N=%d suspiciously small", d.N())
			}
			if err := d.Validate(); err != nil {
				t.Fatal(err)
			}
			if d.Meta.Name != name {
				t.Errorf("meta name %q", d.Meta.Name)
			}
			if d.Meta.OriginalAtoms == 0 {
				t.Error("original atom count missing (needed for exclusion emulation)")
			}
		})
	}
}

func TestUnknownDataset(t *testing.T) {
	if _, err := Generate("Nope", Options{}); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Generate("Copper-B", small())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate("Copper-B", small())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Frames, b.Frames) {
		t.Error("generation is not deterministic")
	}
	c, err := Generate("Copper-B", Options{Snapshots: 6, Atoms: 300, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Frames, c.Frames) {
		t.Error("different seeds produced identical data")
	}
}

func TestMDNamesRegistered(t *testing.T) {
	for _, n := range MDNames() {
		if registry[n] == nil {
			t.Errorf("MD dataset %q not registered", n)
		}
	}
	if len(Names()) != len(MDNames())+2 {
		t.Errorf("expected 8 MD + 2 HACC datasets, have %v", Names())
	}
}

// temporalDelta measures the mean |x(t+1)-x(t)| across particles, a proxy
// for Fig 5's temporal smoothness.
func temporalDelta(d *dataset.Dataset) float64 {
	var sum float64
	var cnt int
	for t := 1; t < d.M(); t++ {
		for i := 0; i < d.N(); i++ {
			sum += math.Abs(d.Frames[t].X[i] - d.Frames[t-1].X[i])
			cnt++
		}
	}
	return sum / float64(cnt)
}

func TestRegimeContrast(t *testing.T) {
	// The LJ analog (frequent saves of Newtonian motion) must be much
	// smoother in time than the Copper-B analog (sparse saves of a hot
	// solid), relative to their value ranges — this contrast is what drives
	// the paper's MT-vs-VQ adaptivity.
	lj, err := Generate("LJ", Options{Snapshots: 8, Atoms: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cu, err := Generate("Copper-B", Options{Snapshots: 8, Atoms: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ljDelta := temporalDelta(lj) / lj.Meta.Box
	cuDelta := temporalDelta(cu) / cu.Meta.Box
	if ljDelta*2 > cuDelta {
		t.Errorf("LJ temporal delta %v should be ≪ Copper-B %v (normalized)", ljDelta, cuDelta)
	}
}

func TestCrystallineLevels(t *testing.T) {
	// Copper-A snapshot coordinates must cluster near lattice levels:
	// the fractional parts of x/a should concentrate near 0 and 0.5.
	d, err := Generate("Copper-A", Options{Snapshots: 3, Atoms: 2000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	a := 1.62
	near := 0
	vals := d.Frames[0].X
	for _, x := range vals {
		frac := math.Mod(x/a*2, 1) // half-spacing grid (FCC has a/2 levels)
		if frac > 0.5 {
			frac = 1 - frac
		}
		if frac < 0.2 {
			near++
		}
	}
	if ratio := float64(near) / float64(len(vals)); ratio < 0.8 {
		t.Errorf("only %.0f%% of Copper-A coordinates near lattice levels", ratio*100)
	}
}

func TestPtMostlyStatic(t *testing.T) {
	// The Pt analog should have very high snapshot-0 similarity (Fig 8):
	// most atoms belong to the nearly immobile bulk.
	d, err := Generate("Pt", Options{Snapshots: 8, Atoms: 1500, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	lastF := d.Frames[d.M()-1]
	static := 0
	for i := 0; i < d.N(); i++ {
		dx := math.Abs(lastF.X[i] - d.Frames[0].X[i])
		dz := math.Abs(lastF.Z[i] - d.Frames[0].Z[i])
		if dx < 0.3 && dz < 0.3 {
			static++
		}
	}
	if ratio := float64(static) / float64(d.N()); ratio < 0.7 {
		t.Errorf("only %.0f%% of Pt atoms static relative to snapshot 0", ratio*100)
	}
}

func TestHACCBoxRecorded(t *testing.T) {
	d, err := Generate("HACC-1", Options{Snapshots: 3, Atoms: 500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d.Meta.Box != 100 {
		t.Errorf("HACC box = %v, want 100", d.Meta.Box)
	}
}

func TestPhysicalRegimesViaMSD(t *testing.T) {
	// The LJ liquid analog must be diffusive and the Copper-A solid analog
	// bounded — the physical split behind the paper's takeaways 2-4.
	lj, err := Generate("LJ", Options{Snapshots: 20, Atoms: 500, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	x, y, z := axes(lj)
	msd, err := metrics.MSD(x, y, z, lj.Meta.Box)
	if err != nil {
		t.Fatal(err)
	}
	if got := metrics.DiffusionRegime(msd, lj.Meta.Box); got != "diffusive" {
		t.Errorf("LJ regime = %s, want diffusive (MSD tail %v)", got, msd[len(msd)-1])
	}
	cu, err := Generate("Copper-A", Options{Snapshots: 20, Atoms: 500, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	x, y, z = axes(cu)
	msd, err = metrics.MSD(x, y, z, cu.Meta.Box)
	if err != nil {
		t.Fatal(err)
	}
	if got := metrics.DiffusionRegime(msd, cu.Meta.Box); got != "bounded" {
		t.Errorf("Copper-A regime = %s, want bounded (MSD tail %v)", got, msd[len(msd)-1])
	}
}

func axes(d *dataset.Dataset) (x, y, z [][]float64) {
	return d.AxisSeries(dataset.AxisX), d.AxisSeries(dataset.AxisY), d.AxisSeries(dataset.AxisZ)
}
