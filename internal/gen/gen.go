// Package gen synthesizes analogs of the paper's eight MD evaluation
// datasets (Table I) plus the two HACC cosmology datasets (Fig 16) by
// driving the internal/sim engine.
//
// The paper's original trajectories came from LAMMPS/EXAALT/CHARMM runs on
// LANL and ANL supercomputers and are not redistributable; each generator
// here reproduces the *qualitative regime* that drives compressor behavior
// (documented per generator), at configurable reduced scale. Generation is
// deterministic for a given (name, Options).
package gen

import (
	"fmt"
	"math"
	"sort"

	"github.com/mdz/mdz/internal/dataset"
	"github.com/mdz/mdz/internal/sim"
)

// Options scales a generator. Zero fields select the dataset's defaults.
type Options struct {
	// Snapshots overrides the number of saved frames.
	Snapshots int
	// Atoms approximately overrides the particle count (lattice generators
	// round to whole cells).
	Atoms int
	// Seed perturbs the random streams; 0 selects the default seed.
	Seed int64
}

// Generator builds one dataset analog.
type Generator struct {
	// Name matches the paper's dataset naming.
	Name string
	// DefaultSnapshots and DefaultAtoms are the reduced-scale defaults.
	DefaultSnapshots, DefaultAtoms int
	// Meta template (original full-scale counts from Table I).
	Meta dataset.Metadata
	// Build runs the simulation.
	Build func(o Options) *dataset.Dataset
}

var registry = map[string]*Generator{}

func register(g *Generator) { registry[g.Name] = g }

// Names lists all registered dataset analogs in deterministic order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// MDNames lists the eight MD datasets of Table I in paper order.
func MDNames() []string {
	return []string{"Copper-A", "Copper-B", "Helium-A", "Helium-B", "ADK", "IFABP", "Pt", "LJ"}
}

// Generate builds the named dataset analog.
func Generate(name string, o Options) (*dataset.Dataset, error) {
	g, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("gen: unknown dataset %q (known: %v)", name, Names())
	}
	if o.Snapshots <= 0 {
		o.Snapshots = g.DefaultSnapshots
	}
	if o.Atoms <= 0 {
		o.Atoms = g.DefaultAtoms
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	d := g.Build(o)
	box := d.Meta.Box // builders record the simulation box for RDF analysis
	d.Meta = g.Meta
	d.Meta.Box = box
	return d, nil
}

// cells returns the per-axis cell count whose lattice holds ~atoms sites.
func cells(atoms, perCell int) int {
	c := int(math.Cbrt(float64(atoms) / float64(perCell)))
	if c < 2 {
		c = 2
	}
	return c
}

// record samples one frame from an MD system.
func record(s *sim.System) dataset.Frame {
	x, y, z := s.Snapshot()
	return dataset.Frame{X: x, Y: y, Z: z}
}

// runMD equilibrates, then records snapshots every stride steps. The
// returned dataset carries the periodic box edge (for RDF analysis) when
// the box is periodic and cubic.
func runMD(s *sim.System, equil, snapshots, stride int) *dataset.Dataset {
	s.Run(equil)
	frames := make([]dataset.Frame, 0, snapshots)
	for i := 0; i < snapshots; i++ {
		frames = append(frames, record(s))
		s.Run(stride)
	}
	d := &dataset.Dataset{Frames: frames}
	if s.Box.Periodic && s.Box.L.X == s.Box.L.Y && s.Box.L.Y == s.Box.L.Z {
		d.Meta.Box = s.Box.L.X
	}
	return d
}

func init() {
	// Copper-A: large crystalline FCC solid at moderate temperature
	// (paper: electric-field study at 800 K). Atoms vibrate tightly around
	// lattice sites → strong equal-distant spatial levels (takeaways 2-3)
	// and high snapshot-0 similarity (Fig 8).
	register(&Generator{
		Name: "Copper-A", DefaultSnapshots: 20, DefaultAtoms: 4000,
		Meta: dataset.Metadata{Name: "Copper-A", State: "Solid", Code: "LAMMPS",
			OriginalAtoms: 1077290, OriginalSnapshots: 83},
		Build: func(o Options) *dataset.Dataset {
			c := cells(o.Atoms, 4)
			a := 1.62 // slightly above equilibrium spacing
			pos, box := sim.FCC(c, c, c, a)
			s := sim.NewSystem(box, pos, o.Seed)
			s.Pair = sim.NewLJ(1, 1, 2.5)
			s.Thermo = sim.Langevin
			s.Temp = 0.08
			s.Gamma = 2
			s.Dt = 0.004
			s.InitVelocities(0.08)
			return runMD(s, 150, o.Snapshots, 10)
		},
	})

	// Copper-B: the long-timescale mode — few atoms, many snapshots saved
	// far apart, at higher temperature: coordinates change largely and
	// frequently between saves (Fig 5 (a)) while keeping the level
	// structure (Fig 3 (a)).
	register(&Generator{
		Name: "Copper-B", DefaultSnapshots: 120, DefaultAtoms: 1372,
		Meta: dataset.Metadata{Name: "Copper-B", State: "Solid", Code: "LAMMPS",
			OriginalAtoms: 3137, OriginalSnapshots: 5423},
		Build: func(o Options) *dataset.Dataset {
			c := cells(o.Atoms, 4)
			pos, box := sim.FCC(c, c, c, 1.62)
			s := sim.NewSystem(box, pos, o.Seed+1)
			s.Pair = sim.NewLJ(1, 1, 2.5)
			s.Thermo = sim.Langevin
			s.Temp = 0.35 // hot solid: large vibration amplitude
			s.Gamma = 2
			s.Dt = 0.004
			s.InitVelocities(0.35)
			return runMD(s, 200, o.Snapshots, 40)
		},
	})

	// Helium-A: BCC matrix with interstitials (helium agglomerating in
	// tungsten). Crystalline levels plus a mobile defect population;
	// saved often → only slight changes in time (Fig 5).
	register(&Generator{
		Name: "Helium-A", DefaultSnapshots: 40, DefaultAtoms: 2000,
		Meta: dataset.Metadata{Name: "Helium-A", State: "Plasma", Code: "LAMMPS",
			OriginalAtoms: 106711, OriginalSnapshots: 2338},
		Build: func(o Options) *dataset.Dataset {
			c := cells(o.Atoms, 2)
			pos, box := sim.BCC(c, c, c, 1.8)
			// Substitutional "helium" defects: displace ~2% of atoms off
			// their sites, seeding mobile disorder in a stable matrix.
			nHe := len(pos) / 50
			for i := 0; i < nHe; i++ {
				idx := (i*37 + 11) % len(pos)
				pos[idx] = box.Wrap(pos[idx].Add(sim.Vec3{X: 0.45, Y: 0.3, Z: 0.15}))
			}
			s := sim.NewSystem(box, pos, o.Seed+2)
			// σ tuned so the BCC first shell sits at the LJ minimum; the
			// 2.2 cutoff keeps BCC mechanically stable (LJ with σ=1 would
			// relax toward close packing and destroy the level structure).
			s.Pair = sim.NewLJ(1, 1.42, 2.2)
			s.Thermo = sim.Langevin
			s.Temp = 0.08
			s.Gamma = 2
			s.Dt = 0.004
			s.InitVelocities(0.08)
			return runMD(s, 150, o.Snapshots, 5)
		},
	})

	// Helium-B: small vacancy/helium cluster cell, long-timescale method
	// (Parallel Trajectory Splicing): snapshots far apart → larger,
	// frequent changes in time (Fig 5 (b)/(c) regime) on a crystalline
	// backdrop.
	register(&Generator{
		Name: "Helium-B", DefaultSnapshots: 150, DefaultAtoms: 1024,
		Meta: dataset.Metadata{Name: "Helium-B", State: "Plasma", Code: "EXAALT",
			OriginalAtoms: 1037, OriginalSnapshots: 7852},
		Build: func(o Options) *dataset.Dataset {
			c := cells(o.Atoms, 2)
			pos, box := sim.BCC(c, c, c, 1.8)
			// A few vacancies: remove scattered atoms.
			for i := 0; i < 5 && len(pos) > 10; i++ {
				idx := (i*97 + 13) % len(pos)
				pos = append(pos[:idx], pos[idx+1:]...)
			}
			s := sim.NewSystem(box, pos, o.Seed+3)
			// Same σ tuning as Helium-A: keeps the BCC level structure.
			s.Pair = sim.NewLJ(1, 1.42, 2.2)
			s.Thermo = sim.Langevin
			s.Temp = 0.15
			s.Gamma = 2
			s.Dt = 0.004
			s.InitVelocities(0.15)
			return runMD(s, 200, o.Snapshots, 30)
		},
	})

	// ADK: protein analog — a bonded bead chain in implicit solvent
	// (Langevin), snapshots saved every 240 ps in the paper (very sparse):
	// spatially unstructured (Fig 3 (b), Fig 4 (b)) with substantial
	// frame-to-frame motion.
	register(&Generator{
		Name: "ADK", DefaultSnapshots: 80, DefaultAtoms: 334,
		Meta: dataset.Metadata{Name: "ADK", State: "Protein", Code: "CHARMM",
			OriginalAtoms: 3341, OriginalSnapshots: 4187},
		Build: func(o Options) *dataset.Dataset {
			return chainDataset(o, o.Atoms, 60, 150)
		},
	})

	// IFABP: larger protein analog saved every 1 ps — same chain physics
	// as ADK but denser sampling in time → smoother trajectories.
	register(&Generator{
		Name: "IFABP", DefaultSnapshots: 50, DefaultAtoms: 1244,
		Meta: dataset.Metadata{Name: "IFABP", State: "Protein", Code: "CHARMM",
			OriginalAtoms: 12445, OriginalSnapshots: 500},
		Build: func(o Options) *dataset.Dataset {
			return chainDataset(o, o.Atoms, 80, 5)
		},
	})

	// Pt: FCC slab with frozen base and surface adatoms diffusing (local
	// hyperdynamics study). The bulk barely moves → extreme snapshot-0
	// similarity (Fig 8) and stair-wise spatial z levels (Fig 3 (e)).
	register(&Generator{
		Name: "Pt", DefaultSnapshots: 30, DefaultAtoms: 3000,
		Meta: dataset.Metadata{Name: "Pt", State: "Solid", Code: "LAMMPS",
			OriginalAtoms: 2371092, OriginalSnapshots: 300},
		Build: func(o Options) *dataset.Dataset {
			nxy := int(math.Sqrt(float64(o.Atoms) / (4 * 4)))
			if nxy < 3 {
				nxy = 3
			}
			pos, box := sim.Slab(nxy, nxy, 4, 8, 1.62)
			// Sprinkle adatoms on a sparse unique grid above the surface
			// (fourfold hollow sites, one per 2×2 cells).
			nAd := len(pos) / 100
			grid := nxy / 2
			if grid < 1 {
				grid = 1
			}
			if nAd > grid*grid {
				nAd = grid * grid
			}
			for i := 0; i < nAd; i++ {
				x := float64(2*(i%grid)) * 1.62
				y := float64(2*(i/grid)) * 1.62
				pos = append(pos, sim.Vec3{X: x + 0.81, Y: y + 0.81, Z: 3*1.62 + 0.81 + 0.82})
			}
			s := sim.NewSystem(box, pos, o.Seed+4)
			s.Pair = sim.NewLJ(1, 1, 2.5)
			s.Frozen = make([]bool, s.N())
			for i, p := range s.Pos {
				if p.Z < 1.62 {
					s.Frozen[i] = true // clamp the bottom layer
				}
			}
			s.Thermo = sim.Langevin
			s.Temp = 0.06
			s.Gamma = 2
			s.Dt = 0.004
			s.InitVelocities(0.06)
			// Long equilibration: the free surface must finish relaxing
			// before snapshot 0, or the whole slab drifts relative to it.
			return runMD(s, 800, o.Snapshots, 5)
		},
	})

	// LJ: the LAMMPS Lennard-Jones liquid benchmark. Melted lattice at
	// T*=1.0: spatially uniform (Fig 4 (f)) but — saved every few steps —
	// extremely smooth in time (takeaway 4), the MT-dominant regime.
	register(&Generator{
		Name: "LJ", DefaultSnapshots: 25, DefaultAtoms: 4000,
		Meta: dataset.Metadata{Name: "LJ", State: "Liquid", Code: "LAMMPS",
			OriginalAtoms: 6912000, OriginalSnapshots: 50},
		Build: func(o Options) *dataset.Dataset {
			c := cells(o.Atoms, 4)
			pos, box := sim.FCC(c, c, c, 1.71) // ρ*≈0.8
			s := sim.NewSystem(box, pos, o.Seed+5)
			s.Pair = sim.NewLJ(1, 1, 2.5)
			s.Thermo = sim.Langevin
			s.Temp = 1.0
			s.Gamma = 1
			s.Dt = 0.004
			s.InitVelocities(1.4) // overshoot to melt quickly
			s.Run(250)            // melt + equilibrate
			s.Thermo = sim.NVE    // sample smooth Newtonian trajectories
			return runMD(s, 0, o.Snapshots, 4)
		},
	})

	// HACC-1/2: cosmology analogs — Barnes-Hut gravity with clustered
	// initial conditions. Smooth drifting trajectories, no crystalline
	// levels (Fig 16 generalizability study).
	register(&Generator{
		Name: "HACC-1", DefaultSnapshots: 15, DefaultAtoms: 8000,
		Meta: dataset.Metadata{Name: "HACC-1", State: "Cosmology", Code: "HACC",
			OriginalAtoms: 15767098, OriginalSnapshots: 30},
		Build: func(o Options) *dataset.Dataset { return haccDataset(o, 6) },
	})
	register(&Generator{
		Name: "HACC-2", DefaultSnapshots: 20, DefaultAtoms: 6000,
		Meta: dataset.Metadata{Name: "HACC-2", State: "Cosmology", Code: "HACC",
			OriginalAtoms: 13131491, OriginalSnapshots: 80},
		Build: func(o Options) *dataset.Dataset { return haccDataset(o, 7) },
	})
}

// chainDataset builds a protein-analog dataset: bonded bead chains with
// angle stiffness in implicit solvent.
func chainDataset(o Options, beads, equil, stride int) *dataset.Dataset {
	l := math.Cbrt(float64(beads)) * 3
	box := sim.Box{L: sim.Vec3{X: l, Y: l, Z: l}} // open boundaries like a solvated protein
	s := sim.NewSystem(box, nil, o.Seed+6)
	// Several chains, mimicking a folded multi-domain protein.
	nChains := 1 + beads/200
	per := beads / nChains
	for ci := 0; ci < nChains; ci++ {
		origin := sim.Vec3{
			X: l/2 + float64(ci%2)*2 - 1,
			Y: l/2 + float64(ci/2)*2 - 1,
			Z: l / 2,
		}
		s.Chain(per, origin, 1.0, 200, 4)
	}
	s.Pair = sim.NewLJ(0.3, 0.9, 2.2)
	s.ExcludeBonded()
	s.Thermo = sim.Langevin
	s.Temp = 0.55
	s.Gamma = 3
	s.Dt = 0.002
	s.InitVelocities(0.55)
	d := runMD(s, equil, o.Snapshots, stride)
	centerFrames(d)
	permuteAtoms(d, residuePerm(d.N()))
	return d
}

// centerFrames removes centre-of-mass drift by translating every frame to
// frame 0's centroid — the standard alignment applied to protein
// trajectories (the paper's ADK/IFABP benchmark trajectories are fitted),
// leaving internal conformational motion only.
func centerFrames(d *dataset.Dataset) {
	if d.M() == 0 || d.N() == 0 {
		return
	}
	com := func(f dataset.Frame) (cx, cy, cz float64) {
		for i := 0; i < f.N(); i++ {
			cx += f.X[i]
			cy += f.Y[i]
			cz += f.Z[i]
		}
		n := float64(f.N())
		return cx / n, cy / n, cz / n
	}
	cx0, cy0, cz0 := com(d.Frames[0])
	for t := 1; t < d.M(); t++ {
		cx, cy, cz := com(d.Frames[t])
		dx, dy, dz := cx0-cx, cy0-cy, cz0-cz
		f := d.Frames[t]
		for i := 0; i < f.N(); i++ {
			f.X[i] += dx
			f.Y[i] += dy
			f.Z[i] += dz
		}
	}
}

// residuePerm builds the atom storage order of a realistic protein
// trajectory file: atoms grouped by residue, but interleaved within each
// residue (backbone/sidechain/hydrogens), so consecutive file entries are
// near each other without forming a spatially smooth walk.
func residuePerm(n int) []int {
	const res = 8
	within := []int{0, 5, 2, 7, 4, 1, 6, 3}
	perm := make([]int, 0, n)
	for base := 0; base < n; base += res {
		for _, w := range within {
			if base+w < n {
				perm = append(perm, base+w)
			}
		}
	}
	return perm
}

// permuteAtoms reorders every frame's columns by perm.
func permuteAtoms(d *dataset.Dataset, perm []int) {
	for fi := range d.Frames {
		f := d.Frames[fi]
		g := dataset.NewFrame(f.N())
		for newIdx, oldIdx := range perm {
			g.X[newIdx] = f.X[oldIdx]
			g.Y[newIdx] = f.Y[oldIdx]
			g.Z[newIdx] = f.Z[oldIdx]
		}
		d.Frames[fi] = g
	}
}

func haccDataset(o Options, seedOff int64) *dataset.Dataset {
	g := sim.NewGravity(o.Atoms, 100, o.Seed+seedOff)
	g.G = 1.5e-3 // strong clustering: curved (non-ballistic) trajectories
	g.Dt = 0.2
	frames := make([]dataset.Frame, 0, o.Snapshots)
	for i := 0; i < o.Snapshots; i++ {
		x, y, z := g.Snapshot()
		frames = append(frames, dataset.Frame{X: x, Y: y, Z: z})
		g.Run(2)
	}
	d := &dataset.Dataset{Frames: frames}
	d.Meta.Box = g.Box.L.X
	return d
}
