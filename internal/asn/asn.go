// Package asn reimplements the adjacent-snapshot N-body compressor of Li et
// al. 2018 ("Optimizing lossy compression with adjacent snapshots for
// N-body simulation data") as an evaluation baseline: each snapshot after
// the first is predicted from the previous one or two reconstructed
// snapshots — order-1 (previous value) or order-2 (linear extrapolation
// 2·prev − prev2), whichever predicts the snapshot better on a sample — and
// the first snapshot falls back to spatial Lorenzo prediction. Residuals go
// through the standard quantization + Huffman + dictionary pipeline.
package asn

import (
	"errors"
	"fmt"
	"math"

	"github.com/mdz/mdz/internal/bitstream"
	"github.com/mdz/mdz/internal/huffman"
	"github.com/mdz/mdz/internal/lossless"
	"github.com/mdz/mdz/internal/quant"
)

// ErrCorrupt is returned for malformed blocks.
var ErrCorrupt = errors.New("asn: corrupt block")

// Compressor is a stateless per-batch ASN codec.
type Compressor struct {
	// QuantScale overrides the quantization interval count (default 65536).
	QuantScale int
	// Backend overrides the final lossless stage (default lossless.LZ).
	Backend lossless.Backend
}

// Name implements the benchmark Codec naming convention.
func (c *Compressor) Name() string { return "ASN" }

func (c *Compressor) backend() lossless.Backend {
	if c.Backend == nil {
		return lossless.LZ{}
	}
	return c.Backend
}

func (c *Compressor) scale() int {
	if c.QuantScale <= 0 {
		return 65536
	}
	return c.QuantScale
}

const blockMagic = "ASNB"

// Per-snapshot predictor selector codes.
const (
	predLorenzo = 0 // spatial previous-value (first snapshot)
	predOrder1  = 1 // previous snapshot
	predOrder2  = 2 // linear extrapolation from two previous snapshots
)

// CompressSeries compresses one axis batch under absolute error bound eb.
func (c *Compressor) CompressSeries(batch [][]float64, eb float64) ([]byte, error) {
	if len(batch) == 0 {
		return nil, errors.New("asn: empty batch")
	}
	n := len(batch[0])
	for i, s := range batch {
		if len(s) != n {
			return nil, fmt.Errorf("asn: snapshot %d has %d values, want %d", i, len(s), n)
		}
	}
	q, err := quant.New(eb, c.scale())
	if err != nil {
		return nil, err
	}
	bs := len(batch)
	bins := make([]int, 0, bs*n)
	var outliers []byte
	selectors := make([]byte, bs)
	prev := make([]float64, n)  // recon of t-1
	prev2 := make([]float64, n) // recon of t-2
	cur := make([]float64, n)
	for t, snap := range batch {
		sel := predLorenzo
		if t == 1 {
			sel = predOrder1
		} else if t >= 2 {
			// Sample-based selection between order-1 and order-2.
			sel = predOrder1
			if sampleErr(snap, prev, prev2, true) < sampleErr(snap, prev, prev2, false) {
				sel = predOrder2
			}
		}
		selectors[t] = byte(sel)
		lastRecon := 0.0
		for i, d := range snap {
			var pred float64
			switch sel {
			case predLorenzo:
				pred = lastRecon
			case predOrder1:
				pred = prev[i]
			default:
				pred = 2*prev[i] - prev2[i]
			}
			code, r, ok := q.Quantize(d, pred)
			if !ok {
				outliers = quant.AppendBounded(outliers, d, eb)
				r = quant.BoundedRecon(d, eb)
				code = quant.Reserved
			}
			bins = append(bins, code)
			cur[i] = r
			lastRecon = r
		}
		prev2, prev, cur = prev, cur, prev2
	}
	var payload []byte
	payload = bitstream.AppendSection(payload, selectors)
	payload, err = huffman.EncodeInts(payload, bins)
	if err != nil {
		return nil, err
	}
	payload = bitstream.AppendSection(payload, outliers)
	compressed, err := c.backend().Compress(payload)
	if err != nil {
		return nil, err
	}
	out := append([]byte{}, blockMagic...)
	out = bitstream.AppendFloat64(out, eb)
	out = bitstream.AppendUvarint(out, uint64(c.scale()))
	out = bitstream.AppendUvarint(out, uint64(bs))
	out = bitstream.AppendUvarint(out, uint64(n))
	out = bitstream.AppendSection(out, compressed)
	return out, nil
}

// sampleErr estimates the mean absolute prediction error over a stride
// sample; order2 selects the extrapolation predictor.
func sampleErr(snap, prev, prev2 []float64, order2 bool) float64 {
	stride := len(snap)/256 + 1
	var sum float64
	cnt := 0
	for i := 0; i < len(snap); i += stride {
		var p float64
		if order2 {
			p = 2*prev[i] - prev2[i]
		} else {
			p = prev[i]
		}
		sum += math.Abs(snap[i] - p)
		cnt++
	}
	return sum / float64(cnt)
}

// DecompressSeries inverts CompressSeries.
func (c *Compressor) DecompressSeries(blk []byte) ([][]float64, error) {
	br := bitstream.NewByteReader(blk)
	magic, err := br.ReadBytes(4)
	if err != nil || string(magic) != blockMagic {
		return nil, ErrCorrupt
	}
	eb, err := br.ReadFloat64()
	if err != nil {
		return nil, err
	}
	scale, err := br.ReadUvarint()
	if err != nil {
		return nil, err
	}
	bs64, err := br.ReadUvarint()
	if err != nil {
		return nil, err
	}
	n64, err := br.ReadUvarint()
	if err != nil {
		return nil, err
	}
	bs, n := int(bs64), int(n64)
	if bs <= 0 || n < 0 || uint64(bs)*uint64(n) > 1<<33 {
		return nil, ErrCorrupt
	}
	q, err := quant.New(eb, int(scale))
	if err != nil {
		return nil, ErrCorrupt
	}
	compressed, err := br.ReadSection()
	if err != nil {
		return nil, err
	}
	payload, err := c.backend().Decompress(compressed)
	if err != nil {
		return nil, err
	}
	pr := bitstream.NewByteReader(payload)
	selectors, err := pr.ReadSection()
	if err != nil {
		return nil, err
	}
	if len(selectors) != bs {
		return nil, ErrCorrupt
	}
	bins, err := huffman.DecodeInts(pr)
	if err != nil {
		return nil, err
	}
	outliers, err := pr.ReadSection()
	if err != nil {
		return nil, err
	}
	if len(bins) != bs*n {
		return nil, ErrCorrupt
	}
	opos := 0
	out := make([][]float64, bs)
	for t := range out {
		out[t] = make([]float64, n)
	}
	for t := 0; t < bs; t++ {
		sel := int(selectors[t])
		if sel < predLorenzo || sel > predOrder2 {
			return nil, ErrCorrupt
		}
		lastRecon := 0.0
		for i := 0; i < n; i++ {
			var pred float64
			switch sel {
			case predLorenzo:
				pred = lastRecon
			case predOrder1:
				if t < 1 {
					return nil, ErrCorrupt
				}
				pred = out[t-1][i]
			default:
				if t < 2 {
					return nil, ErrCorrupt
				}
				pred = 2*out[t-1][i] - out[t-2][i]
			}
			code := bins[t*n+i]
			if quant.IsReserved(code) {
				v, n2, err := quant.ReadBounded(outliers[opos:], eb)
				if err != nil {
					return nil, ErrCorrupt
				}
				opos += n2
				out[t][i] = v
			} else {
				out[t][i] = q.Dequantize(code, pred)
			}
			lastRecon = out[t][i]
		}
	}
	return out, nil
}
