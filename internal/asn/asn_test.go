package asn_test

import (
	"math/rand"
	"testing"

	"github.com/mdz/mdz/internal/asn"
	"github.com/mdz/mdz/internal/codec"
	"github.com/mdz/mdz/internal/codec/codectest"
)

func TestConformance(t *testing.T) {
	codectest.RunConformance(t, codec.FromBatch(&asn.Compressor{}))
}

func TestName(t *testing.T) {
	if (&asn.Compressor{}).Name() != "ASN" {
		t.Error("name")
	}
}

// Constant-velocity drift favors the order-2 (extrapolation) predictor;
// compression should improve markedly versus random-walk data of the same
// step magnitude.
func TestOrder2HelpsLinearDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bs, n := 12, 2000
	vel := make([]float64, n)
	pos := make([]float64, n)
	for i := range vel {
		pos[i] = rng.Float64() * 10
		vel[i] = (rng.Float64() - 0.5) * 0.1
	}
	drift := make([][]float64, bs)
	for t2 := range drift {
		snap := make([]float64, n)
		for i := range snap {
			pos[i] += vel[i]
			snap[i] = pos[i]
		}
		drift[t2] = snap
	}
	// Random-walk control: same per-step magnitude, direction re-drawn each
	// step, so order-2 extrapolation cannot help.
	walk := make([][]float64, bs)
	wpos := make([]float64, n)
	copy(wpos, pos)
	for t2 := range walk {
		snap := make([]float64, n)
		for i := range snap {
			wpos[i] += (rng.Float64() - 0.5) * 0.1
			snap[i] = wpos[i]
		}
		walk[t2] = snap
	}
	c := &asn.Compressor{}
	blkDrift, err := c.CompressSeries(drift, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	blkWalk, err := c.CompressSeries(walk, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	// With perfect linear motion, order-2 prediction is near-exact after
	// the first two snapshots, so drift must compress clearly better.
	if float64(len(blkDrift)) > 0.8*float64(len(blkWalk)) {
		t.Errorf("linear drift %d B vs random walk %d B: order-2 predictor ineffective", len(blkDrift), len(blkWalk))
	}
	got, err := c.DecompressSeries(blkDrift)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != bs {
		t.Fatal("shape")
	}
}

func TestCorrupt(t *testing.T) {
	c := &asn.Compressor{}
	blk, err := c.CompressSeries([][]float64{{1, 2}, {1.1, 2.1}}, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 3, len(blk) - 2} {
		if _, err := c.DecompressSeries(blk[:cut]); err == nil {
			t.Errorf("prefix %d accepted", cut)
		}
	}
}
