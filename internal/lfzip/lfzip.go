// Package lfzip reimplements the LFZip lossy floating-point time-series
// compressor baseline (Chandak et al., DCC 2020) with its NLMS (normalized
// least-mean-squares) adaptive linear predictor; as in the paper's
// evaluation, the neural-network predictor variant is omitted (the authors
// report it ~2000× slower for marginal gain).
//
// The batch is linearized particle-major (each particle's time series
// contiguous, the layout matching LFZip's per-variable streams), predicted
// by an order-32 NLMS filter over reconstructed values, uniformly quantized
// to the error bound, and entropy coded.
package lfzip

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"github.com/mdz/mdz/internal/bitstream"
	"github.com/mdz/mdz/internal/huffman"
	"github.com/mdz/mdz/internal/lossless"
	"github.com/mdz/mdz/internal/quant"
)

// DefaultOrder is LFZip's default NLMS filter order.
const DefaultOrder = 32

// ErrCorrupt is returned for malformed blocks.
var ErrCorrupt = errors.New("lfzip: corrupt block")

// Compressor is a stateless per-batch LFZip codec.
type Compressor struct {
	// Order overrides the NLMS filter order (default 32).
	Order int
	// QuantScale overrides the quantization interval count (default 65536).
	QuantScale int
	// Backend overrides the final lossless stage (default lossless.LZ).
	Backend lossless.Backend
}

// Name implements the benchmark Codec naming convention.
func (c *Compressor) Name() string { return "LFZip" }

func (c *Compressor) backend() lossless.Backend {
	if c.Backend == nil {
		return lossless.LZ{}
	}
	return c.Backend
}

func (c *Compressor) order() int {
	if c.Order <= 0 {
		return DefaultOrder
	}
	return c.Order
}

func (c *Compressor) scale() int {
	if c.QuantScale <= 0 {
		return 65536
	}
	return c.QuantScale
}

const blockMagic = "LFZB"

// huffScratchPool and decBinsPool recycle Huffman encoder state and decoded
// bin buffers across calls, keeping per-series table and symbol-buffer
// allocations off the steady-state path.
var (
	huffScratchPool = sync.Pool{New: func() any { return new(huffman.Scratch) }}
	decBinsPool     = sync.Pool{New: func() any { return new([]int) }}
)

// nlms is the normalized least-mean-squares adaptive filter. Encoder and
// decoder run identical instances over reconstructed values.
type nlms struct {
	w    []float64 // filter weights
	hist []float64 // ring buffer of past reconstructed values
	pos  int
	mu   float64
	n    int // values seen
}

func newNLMS(order int) *nlms {
	return &nlms{
		w:    make([]float64, order),
		hist: make([]float64, order),
		mu:   0.5,
	}
}

// predict returns the filter output for the next value.
func (f *nlms) predict() float64 {
	if f.n == 0 {
		return 0
	}
	if f.n < len(f.w) {
		// Cold start: previous value.
		return f.hist[(f.pos+len(f.hist)-1)%len(f.hist)]
	}
	var y float64
	for i := range f.w {
		y += f.w[i] * f.hist[(f.pos+i)%len(f.hist)]
	}
	if math.IsNaN(y) || math.IsInf(y, 0) {
		return f.hist[(f.pos+len(f.hist)-1)%len(f.hist)]
	}
	return y
}

// update feeds the reconstructed value back and adapts the weights.
func (f *nlms) update(recon, pred float64) {
	if f.n >= len(f.w) && !math.IsNaN(recon) && !math.IsInf(recon, 0) {
		e := recon - pred
		var norm float64
		for i := range f.w {
			h := f.hist[(f.pos+i)%len(f.hist)]
			norm += h * h
		}
		g := f.mu * e / (1 + norm)
		if !math.IsNaN(g) && !math.IsInf(g, 0) {
			for i := range f.w {
				f.w[i] += g * f.hist[(f.pos+i)%len(f.hist)]
			}
		}
	}
	f.hist[f.pos] = recon
	f.pos = (f.pos + 1) % len(f.hist)
	f.n++
}

// CompressSeries compresses one axis batch under absolute error bound eb.
func (c *Compressor) CompressSeries(batch [][]float64, eb float64) ([]byte, error) {
	if len(batch) == 0 {
		return nil, errors.New("lfzip: empty batch")
	}
	n := len(batch[0])
	for i, s := range batch {
		if len(s) != n {
			return nil, fmt.Errorf("lfzip: snapshot %d has %d values, want %d", i, len(s), n)
		}
	}
	q, err := quant.New(eb, c.scale())
	if err != nil {
		return nil, err
	}
	bs := len(batch)
	bins := make([]int, 0, bs*n)
	var outliers []byte
	f := newNLMS(c.order())
	// Particle-major traversal.
	for i := 0; i < n; i++ {
		for t := 0; t < bs; t++ {
			d := batch[t][i]
			pred := f.predict()
			code, r, ok := q.Quantize(d, pred)
			if !ok {
				outliers = quant.AppendBounded(outliers, d, eb)
				r = quant.BoundedRecon(d, eb)
				code = quant.Reserved
			}
			bins = append(bins, code)
			f.update(r, pred)
		}
	}
	var payload []byte
	hs := huffScratchPool.Get().(*huffman.Scratch)
	payload, err = hs.EncodeInts(payload, bins)
	huffScratchPool.Put(hs)
	if err != nil {
		return nil, err
	}
	payload = bitstream.AppendSection(payload, outliers)
	compressed, err := c.backend().Compress(payload)
	if err != nil {
		return nil, err
	}
	out := append([]byte{}, blockMagic...)
	out = append(out, byte(c.order()))
	out = bitstream.AppendFloat64(out, eb)
	out = bitstream.AppendUvarint(out, uint64(c.scale()))
	out = bitstream.AppendUvarint(out, uint64(bs))
	out = bitstream.AppendUvarint(out, uint64(n))
	out = bitstream.AppendSection(out, compressed)
	return out, nil
}

// DecompressSeries inverts CompressSeries.
func (c *Compressor) DecompressSeries(blk []byte) ([][]float64, error) {
	br := bitstream.NewByteReader(blk)
	magic, err := br.ReadBytes(4)
	if err != nil || string(magic) != blockMagic {
		return nil, ErrCorrupt
	}
	orderByte, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if orderByte == 0 {
		return nil, ErrCorrupt
	}
	eb, err := br.ReadFloat64()
	if err != nil {
		return nil, err
	}
	scale, err := br.ReadUvarint()
	if err != nil {
		return nil, err
	}
	bs64, err := br.ReadUvarint()
	if err != nil {
		return nil, err
	}
	n64, err := br.ReadUvarint()
	if err != nil {
		return nil, err
	}
	bs, n := int(bs64), int(n64)
	if bs <= 0 || n < 0 || uint64(bs)*uint64(n) > 1<<33 {
		return nil, ErrCorrupt
	}
	q, err := quant.New(eb, int(scale))
	if err != nil {
		return nil, ErrCorrupt
	}
	compressed, err := br.ReadSection()
	if err != nil {
		return nil, err
	}
	payload, err := c.backend().Decompress(compressed)
	if err != nil {
		return nil, err
	}
	pr := bitstream.NewByteReader(payload)
	bp := decBinsPool.Get().(*[]int)
	defer decBinsPool.Put(bp)
	bins, err := huffman.DecodeIntsBuf(pr, *bp)
	if err != nil {
		return nil, err
	}
	*bp = bins
	outliers, err := pr.ReadSection()
	if err != nil {
		return nil, err
	}
	if len(bins) != bs*n {
		return nil, ErrCorrupt
	}
	opos := 0
	f := newNLMS(int(orderByte))
	out := make([][]float64, bs)
	for t := range out {
		out[t] = make([]float64, n)
	}
	idx := 0
	for i := 0; i < n; i++ {
		for t := 0; t < bs; t++ {
			pred := f.predict()
			code := bins[idx]
			idx++
			var r float64
			if quant.IsReserved(code) {
				v, n2, err := quant.ReadBounded(outliers[opos:], eb)
				if err != nil {
					return nil, ErrCorrupt
				}
				opos += n2
				r = v
			} else {
				r = q.Dequantize(code, pred)
			}
			out[t][i] = r
			f.update(r, pred)
		}
	}
	return out, nil
}
