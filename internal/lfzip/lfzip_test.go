package lfzip_test

import (
	"math"
	"math/rand"
	"testing"

	"github.com/mdz/mdz/internal/codec"
	"github.com/mdz/mdz/internal/codec/codectest"
	"github.com/mdz/mdz/internal/lfzip"
)

func TestConformance(t *testing.T) {
	codectest.RunConformance(t, codec.FromBatch(&lfzip.Compressor{}))
}

func TestName(t *testing.T) {
	if (&lfzip.Compressor{}).Name() != "LFZip" {
		t.Error("name")
	}
}

func TestNLMSAdaptsToSinusoid(t *testing.T) {
	// A long per-particle sinusoid is highly predictable for NLMS once the
	// filter warms up: the payload should shrink well below 2 bytes/value.
	bs, n := 64, 100
	batch := make([][]float64, bs)
	for t2 := range batch {
		snap := make([]float64, n)
		for i := range snap {
			snap[i] = 10 * math.Sin(0.2*float64(t2)+float64(i))
		}
		batch[t2] = snap
	}
	c := &lfzip.Compressor{}
	blk, err := c.CompressSeries(batch, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(blk) > bs*n*2 {
		t.Errorf("sinusoid compressed to %d B for %d values", len(blk), bs*n)
	}
	got, err := c.DecompressSeries(blk)
	if err != nil {
		t.Fatal(err)
	}
	for t2 := range batch {
		for i := range batch[t2] {
			if e := math.Abs(got[t2][i] - batch[t2][i]); e > 1e-3 {
				t.Fatalf("bound violated: %v at (%d,%d)", e, t2, i)
			}
		}
	}
}

func TestFilterStability(t *testing.T) {
	// Adversarial data with huge dynamic range must not destabilize the
	// filter (errors guarded by the outlier path).
	rng := rand.New(rand.NewSource(6))
	bs, n := 20, 80
	batch := make([][]float64, bs)
	for t2 := range batch {
		snap := make([]float64, n)
		for i := range snap {
			snap[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(20))-10)
		}
		batch[t2] = snap
	}
	c := &lfzip.Compressor{}
	blk, err := c.CompressSeries(batch, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.DecompressSeries(blk)
	if err != nil {
		t.Fatal(err)
	}
	for t2 := range batch {
		for i := range batch[t2] {
			if e := math.Abs(got[t2][i] - batch[t2][i]); e > 1e-6 {
				t.Fatalf("bound violated: %v", e)
			}
		}
	}
}

func TestCorrupt(t *testing.T) {
	c := &lfzip.Compressor{}
	blk, err := c.CompressSeries([][]float64{{1, 2}, {3, 4}}, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 3, len(blk) - 2} {
		if _, err := c.DecompressSeries(blk[:cut]); err == nil {
			t.Errorf("prefix %d accepted", cut)
		}
	}
}
