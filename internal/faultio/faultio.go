// Package faultio provides deterministic I/O fault injection for stream
// robustness tests: bit flips, zeroed ranges, truncations, torn writes and
// mid-stream errors, all at explicit byte offsets, plus seeded read/write
// fragmentation so partial-transfer handling is exercised on every run.
//
// Faults are positional and deterministic by construction — the same fault
// list applied to the same byte stream always yields the same damage — so a
// failing case can be replayed from its seed alone.
package faultio

import (
	"errors"
	"io"
	"math/rand"
)

// ErrInjected is returned by fault points of kind Error.
var ErrInjected = errors.New("faultio: injected I/O error")

// Kind selects the damage a Fault inflicts.
type Kind int

const (
	// FlipBit XORs bit Bit (0-7) of the byte at Offset.
	FlipBit Kind = iota
	// ZeroRange zeroes Len bytes starting at Offset.
	ZeroRange
	// Truncate ends the stream at Offset: a Reader reports io.EOF, a
	// Writer silently discards everything past it (a torn write — the
	// producer believes the write succeeded, as after a crash).
	Truncate
	// Error fails with ErrInjected once the stream position reaches
	// Offset.
	Error
)

// Fault is one deterministic fault anchored at an absolute byte offset of
// the wrapped stream.
type Fault struct {
	Kind   Kind
	Offset int64
	Bit    uint  // FlipBit: bit index 0-7
	Len    int64 // ZeroRange: byte count
}

// Corrupt applies faults to an in-memory stream image and returns the
// damaged copy. Truncate shortens the result; Error faults are ignored
// (they only make sense on live I/O). Faults beyond the data are no-ops.
func Corrupt(data []byte, faults ...Fault) []byte {
	out := append([]byte(nil), data...)
	for _, f := range faults {
		switch f.Kind {
		case FlipBit:
			if f.Offset >= 0 && f.Offset < int64(len(out)) {
				out[f.Offset] ^= 1 << (f.Bit & 7)
			}
		case ZeroRange:
			for i := int64(0); i < f.Len; i++ {
				if p := f.Offset + i; p >= 0 && p < int64(len(out)) {
					out[p] = 0
				}
			}
		case Truncate:
			if f.Offset >= 0 && f.Offset < int64(len(out)) {
				out = out[:f.Offset]
			}
		}
	}
	return out
}

// Reader wraps an io.Reader and injects faults at their offsets as the
// stream flows through it.
type Reader struct {
	r      io.Reader
	off    int64
	faults []Fault
	rng    *rand.Rand
	failed bool
}

// NewReader returns a fault-injecting reader over r.
func NewReader(r io.Reader, faults ...Fault) *Reader {
	return &Reader{r: r, faults: append([]Fault(nil), faults...)}
}

// Fragment makes every Read return a short, seeded-random prefix of what
// was asked for (always at least one byte), exercising the caller's
// partial-read paths. Returns the receiver for chaining.
func (r *Reader) Fragment(seed int64) *Reader {
	r.rng = rand.New(rand.NewSource(seed))
	return r
}

// Read implements io.Reader with the configured faults applied.
func (r *Reader) Read(p []byte) (int, error) {
	if r.failed {
		return 0, ErrInjected
	}
	if len(p) == 0 {
		return 0, nil
	}
	// Stop short of the nearest barrier fault (Truncate or Error) so the
	// bytes before it flow through undamaged.
	limit := int64(len(p))
	for _, f := range r.faults {
		if f.Kind != Truncate && f.Kind != Error {
			continue
		}
		if f.Offset <= r.off {
			if f.Kind == Truncate {
				return 0, io.EOF
			}
			r.failed = true
			return 0, ErrInjected
		}
		if d := f.Offset - r.off; d < limit {
			limit = d
		}
	}
	if r.rng != nil && limit > 1 {
		limit = 1 + r.rng.Int63n(limit)
	}
	n, err := r.r.Read(p[:limit])
	// Damage the bytes that just passed through.
	for _, f := range r.faults {
		switch f.Kind {
		case FlipBit:
			if f.Offset >= r.off && f.Offset < r.off+int64(n) {
				p[f.Offset-r.off] ^= 1 << (f.Bit & 7)
			}
		case ZeroRange:
			for i := int64(0); i < f.Len; i++ {
				if q := f.Offset + i; q >= r.off && q < r.off+int64(n) {
					p[q-r.off] = 0
				}
			}
		}
	}
	r.off += int64(n)
	return n, err
}

// Writer wraps an io.Writer and injects faults at their offsets as data is
// written through it.
type Writer struct {
	w      io.Writer
	off    int64
	faults []Fault
	rng    *rand.Rand
	torn   bool
	failed bool
}

// NewWriter returns a fault-injecting writer over w.
func NewWriter(w io.Writer, faults ...Fault) *Writer {
	return &Writer{w: w, faults: append([]Fault(nil), faults...)}
}

// Fragment makes Write push data through in short, seeded-random pieces
// (stress-testing downstream partial-write handling without changing the
// bytes). Returns the receiver for chaining.
func (w *Writer) Fragment(seed int64) *Writer {
	w.rng = rand.New(rand.NewSource(seed))
	return w
}

// Write implements io.Writer with the configured faults applied. After a
// Truncate fault the tail is silently dropped while Write keeps reporting
// success, modeling a torn write that the producer never observes.
func (w *Writer) Write(p []byte) (int, error) {
	if w.failed {
		return 0, ErrInjected
	}
	if w.torn {
		w.off += int64(len(p))
		return len(p), nil
	}
	buf := append([]byte(nil), p...)
	for _, f := range w.faults {
		switch f.Kind {
		case FlipBit:
			if f.Offset >= w.off && f.Offset < w.off+int64(len(buf)) {
				buf[f.Offset-w.off] ^= 1 << (f.Bit & 7)
			}
		case ZeroRange:
			for i := int64(0); i < f.Len; i++ {
				if q := f.Offset + i; q >= w.off && q < w.off+int64(len(buf)) {
					buf[q-w.off] = 0
				}
			}
		}
	}
	written := 0
	for written < len(buf) {
		chunk := buf[written:]
		// Honor the nearest barrier fault inside this chunk.
		for _, f := range w.faults {
			if f.Kind != Truncate && f.Kind != Error {
				continue
			}
			if f.Offset <= w.off {
				if f.Kind == Truncate {
					w.torn = true
					w.off += int64(len(p) - written)
					return len(p), nil
				}
				w.failed = true
				return written, ErrInjected
			}
			if d := f.Offset - w.off; d < int64(len(chunk)) {
				chunk = chunk[:d]
			}
		}
		if w.rng != nil && len(chunk) > 1 {
			chunk = chunk[:1+w.rng.Intn(len(chunk))]
		}
		n, err := w.w.Write(chunk)
		w.off += int64(n)
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}
