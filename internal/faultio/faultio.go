// Package faultio provides deterministic I/O fault injection for stream
// robustness tests: bit flips, zeroed ranges, truncations, torn writes and
// mid-stream errors, all at explicit byte offsets, plus seeded read/write
// fragmentation so partial-transfer handling is exercised on every run.
//
// Faults are positional and deterministic by construction — the same fault
// list applied to the same byte stream always yields the same damage — so a
// failing case can be replayed from its seed alone.
//
// Seed contract: every seeded injector (Fragment) treats its seed as the
// replay key of a test case — the same seed must always produce the same
// fragmentation, on every run and every platform. Negative seeds are
// rejected with a panic rather than remapped onto the valid range: silently
// folding them would let two different-looking cases alias the same damage
// and make failure reports ambiguous. Construction-time misuse panics;
// stream-time faults return errors.
//
// Beyond the positional Fault list, three injectors model environmental
// failure shapes directly: Partial caps every transfer at a fixed size
// (deterministic short reads/writes), StallAt runs a callback when the
// stream position reaches a byte offset (letting a test cancel a context
// or kill a producer at an exact point), and Writer.AbortAt simulates a
// crash — the prefix before the offset is written, everything after is
// refused with ErrAborted.
package faultio

import (
	"errors"
	"io"
	"math/rand"
)

// ErrInjected is returned by fault points of kind Error.
var ErrInjected = errors.New("faultio: injected I/O error")

// ErrAborted is returned by a Writer past its AbortAt crash point: unlike a
// Truncate torn write, the producer observes the failure.
var ErrAborted = errors.New("faultio: aborted at injected crash point")

// checkSeed enforces the package seed contract (see the package comment).
func checkSeed(seed int64) {
	if seed < 0 {
		panic("faultio: negative Fragment seed (seeds are replay keys and must be >= 0)")
	}
}

// Kind selects the damage a Fault inflicts.
type Kind int

const (
	// FlipBit XORs bit Bit (0-7) of the byte at Offset.
	FlipBit Kind = iota
	// ZeroRange zeroes Len bytes starting at Offset.
	ZeroRange
	// Truncate ends the stream at Offset: a Reader reports io.EOF, a
	// Writer silently discards everything past it (a torn write — the
	// producer believes the write succeeded, as after a crash).
	Truncate
	// Error fails with ErrInjected once the stream position reaches
	// Offset.
	Error
)

// Fault is one deterministic fault anchored at an absolute byte offset of
// the wrapped stream.
type Fault struct {
	Kind   Kind
	Offset int64
	Bit    uint  // FlipBit: bit index 0-7
	Len    int64 // ZeroRange: byte count
}

// Corrupt applies faults to an in-memory stream image and returns the
// damaged copy. Truncate shortens the result; Error faults are ignored
// (they only make sense on live I/O). Faults beyond the data are no-ops.
func Corrupt(data []byte, faults ...Fault) []byte {
	out := append([]byte(nil), data...)
	for _, f := range faults {
		switch f.Kind {
		case FlipBit:
			if f.Offset >= 0 && f.Offset < int64(len(out)) {
				out[f.Offset] ^= 1 << (f.Bit & 7)
			}
		case ZeroRange:
			for i := int64(0); i < f.Len; i++ {
				if p := f.Offset + i; p >= 0 && p < int64(len(out)) {
					out[p] = 0
				}
			}
		case Truncate:
			if f.Offset >= 0 && f.Offset < int64(len(out)) {
				out = out[:f.Offset]
			}
		}
	}
	return out
}

// Reader wraps an io.Reader and injects faults at their offsets as the
// stream flows through it.
type Reader struct {
	r       io.Reader
	off     int64
	faults  []Fault
	rng     *rand.Rand
	failed  bool
	partial int64
	stallAt int64
	stallFn func()
}

// NewReader returns a fault-injecting reader over r.
func NewReader(r io.Reader, faults ...Fault) *Reader {
	return &Reader{r: r, faults: append([]Fault(nil), faults...)}
}

// Fragment makes every Read return a short, seeded-random prefix of what
// was asked for (always at least one byte), exercising the caller's
// partial-read paths. Returns the receiver for chaining. Panics on a
// negative seed (see the package seed contract).
func (r *Reader) Fragment(seed int64) *Reader {
	checkSeed(seed)
	r.rng = rand.New(rand.NewSource(seed))
	return r
}

// Partial caps every Read at max bytes — the deterministic counterpart of
// Fragment, for cases that need an exact transfer size rather than a
// seeded one. Returns the receiver for chaining. Panics if max < 1.
func (r *Reader) Partial(max int) *Reader {
	if max < 1 {
		panic("faultio: Partial cap must be at least 1 byte")
	}
	r.partial = int64(max)
	return r
}

// StallAt registers fn to run once, when the stream position reaches off:
// reads stop short of the offset, fn fires, and the next Read continues
// from exactly there. It lets a test cancel a context, kill a producer or
// inject any other concurrent event at a deterministic byte. Returns the
// receiver for chaining.
func (r *Reader) StallAt(off int64, fn func()) *Reader {
	r.stallAt, r.stallFn = off, fn
	return r
}

// Read implements io.Reader with the configured faults applied.
func (r *Reader) Read(p []byte) (int, error) {
	if r.failed {
		return 0, ErrInjected
	}
	if len(p) == 0 {
		return 0, nil
	}
	if r.stallFn != nil && r.off >= r.stallAt {
		fn := r.stallFn
		r.stallFn = nil
		fn()
	}
	// Stop short of the nearest barrier fault (Truncate or Error) so the
	// bytes before it flow through undamaged; an unfired stall point is a
	// barrier too, so fn fires at exactly its offset.
	limit := int64(len(p))
	for _, f := range r.faults {
		if f.Kind != Truncate && f.Kind != Error {
			continue
		}
		if f.Offset <= r.off {
			if f.Kind == Truncate {
				return 0, io.EOF
			}
			r.failed = true
			return 0, ErrInjected
		}
		if d := f.Offset - r.off; d < limit {
			limit = d
		}
	}
	if r.stallFn != nil {
		if d := r.stallAt - r.off; d > 0 && d < limit {
			limit = d
		}
	}
	if r.partial > 0 && limit > r.partial {
		limit = r.partial
	}
	if r.rng != nil && limit > 1 {
		limit = 1 + r.rng.Int63n(limit)
	}
	n, err := r.r.Read(p[:limit])
	// Damage the bytes that just passed through.
	for _, f := range r.faults {
		switch f.Kind {
		case FlipBit:
			if f.Offset >= r.off && f.Offset < r.off+int64(n) {
				p[f.Offset-r.off] ^= 1 << (f.Bit & 7)
			}
		case ZeroRange:
			for i := int64(0); i < f.Len; i++ {
				if q := f.Offset + i; q >= r.off && q < r.off+int64(n) {
					p[q-r.off] = 0
				}
			}
		}
	}
	r.off += int64(n)
	return n, err
}

// Writer wraps an io.Writer and injects faults at their offsets as data is
// written through it.
type Writer struct {
	w       io.Writer
	off     int64
	faults  []Fault
	rng     *rand.Rand
	torn    bool
	failed  bool
	aborted bool
	partial int64
	abortAt int64 // -1 = disabled
	stallAt int64
	stallFn func()
}

// NewWriter returns a fault-injecting writer over w.
func NewWriter(w io.Writer, faults ...Fault) *Writer {
	return &Writer{w: w, faults: append([]Fault(nil), faults...), abortAt: -1}
}

// Fragment makes Write push data through in short, seeded-random pieces
// (stress-testing downstream partial-write handling without changing the
// bytes). Returns the receiver for chaining. Panics on a negative seed
// (see the package seed contract).
func (w *Writer) Fragment(seed int64) *Writer {
	checkSeed(seed)
	w.rng = rand.New(rand.NewSource(seed))
	return w
}

// Partial caps every downstream write at max bytes — the deterministic
// counterpart of Fragment. Returns the receiver for chaining. Panics if
// max < 1.
func (w *Writer) Partial(max int) *Writer {
	if max < 1 {
		panic("faultio: Partial cap must be at least 1 byte")
	}
	w.partial = int64(max)
	return w
}

// StallAt registers fn to run once, when the write position reaches off
// (see Reader.StallAt). Returns the receiver for chaining.
func (w *Writer) StallAt(off int64, fn func()) *Writer {
	w.stallAt, w.stallFn = off, fn
	return w
}

// AbortAt simulates a crash at byte off of the produced stream: the prefix
// before the offset reaches the underlying writer, and the write that
// crosses it — plus every write after — fails with ErrAborted. Unlike a
// Truncate torn write the producer sees the error, so this models
// "process killed mid-write" for crash-consistency tests. Returns the
// receiver for chaining.
func (w *Writer) AbortAt(off int64) *Writer {
	w.abortAt = off
	return w
}

// Write implements io.Writer with the configured faults applied. After a
// Truncate fault the tail is silently dropped while Write keeps reporting
// success, modeling a torn write that the producer never observes.
func (w *Writer) Write(p []byte) (int, error) {
	if w.failed {
		return 0, ErrInjected
	}
	if w.aborted {
		return 0, ErrAborted
	}
	if w.torn {
		w.off += int64(len(p))
		return len(p), nil
	}
	buf := append([]byte(nil), p...)
	for _, f := range w.faults {
		switch f.Kind {
		case FlipBit:
			if f.Offset >= w.off && f.Offset < w.off+int64(len(buf)) {
				buf[f.Offset-w.off] ^= 1 << (f.Bit & 7)
			}
		case ZeroRange:
			for i := int64(0); i < f.Len; i++ {
				if q := f.Offset + i; q >= w.off && q < w.off+int64(len(buf)) {
					buf[q-w.off] = 0
				}
			}
		}
	}
	written := 0
	for written < len(buf) {
		if w.stallFn != nil && w.off >= w.stallAt {
			fn := w.stallFn
			w.stallFn = nil
			fn()
		}
		if w.abortAt >= 0 && w.off >= w.abortAt {
			w.aborted = true
			return written, ErrAborted
		}
		chunk := buf[written:]
		// Honor the nearest barrier fault inside this chunk; the abort and
		// unfired-stall offsets are barriers too, so each triggers at
		// exactly its byte.
		for _, f := range w.faults {
			if f.Kind != Truncate && f.Kind != Error {
				continue
			}
			if f.Offset <= w.off {
				if f.Kind == Truncate {
					w.torn = true
					w.off += int64(len(p) - written)
					return len(p), nil
				}
				w.failed = true
				return written, ErrInjected
			}
			if d := f.Offset - w.off; d < int64(len(chunk)) {
				chunk = chunk[:d]
			}
		}
		if w.abortAt >= 0 {
			if d := w.abortAt - w.off; d < int64(len(chunk)) {
				chunk = chunk[:d]
			}
		}
		if w.stallFn != nil {
			if d := w.stallAt - w.off; d > 0 && d < int64(len(chunk)) {
				chunk = chunk[:d]
			}
		}
		if w.partial > 0 && int64(len(chunk)) > w.partial {
			chunk = chunk[:w.partial]
		}
		if w.rng != nil && len(chunk) > 1 {
			chunk = chunk[:1+w.rng.Intn(len(chunk))]
		}
		n, err := w.w.Write(chunk)
		w.off += int64(n)
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}
