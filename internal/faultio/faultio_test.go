package faultio

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func seqBytes(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)
	}
	return b
}

func TestCorrupt(t *testing.T) {
	src := seqBytes(16)
	out := Corrupt(src,
		Fault{Kind: FlipBit, Offset: 3, Bit: 7},
		Fault{Kind: ZeroRange, Offset: 8, Len: 4},
		Fault{Kind: Truncate, Offset: 14},
	)
	if len(out) != 14 {
		t.Fatalf("truncated length = %d, want 14", len(out))
	}
	if out[3] != 3^0x80 {
		t.Errorf("bit flip: out[3] = %#x, want %#x", out[3], 3^0x80)
	}
	for i := 8; i < 12; i++ {
		if out[i] != 0 {
			t.Errorf("zero range: out[%d] = %#x, want 0", i, out[i])
		}
	}
	if src[3] != 3 || src[8] != 8 {
		t.Error("Corrupt mutated its input")
	}
	// Out-of-range faults are no-ops.
	if got := Corrupt(src, Fault{Kind: FlipBit, Offset: 99}); !bytes.Equal(got, src) {
		t.Error("out-of-range fault changed the data")
	}
}

func TestReaderFaults(t *testing.T) {
	src := seqBytes(64)

	r := NewReader(bytes.NewReader(src),
		Fault{Kind: FlipBit, Offset: 10, Bit: 0},
		Fault{Kind: ZeroRange, Offset: 20, Len: 5},
	).Fragment(1)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	want := Corrupt(src,
		Fault{Kind: FlipBit, Offset: 10, Bit: 0},
		Fault{Kind: ZeroRange, Offset: 20, Len: 5},
	)
	if !bytes.Equal(got, want) {
		t.Errorf("fragmented faulty read diverged from Corrupt image")
	}

	r = NewReader(bytes.NewReader(src), Fault{Kind: Truncate, Offset: 17})
	got, err = io.ReadAll(r)
	if err != nil || len(got) != 17 {
		t.Errorf("truncated read: n=%d err=%v, want 17 <nil>", len(got), err)
	}

	r = NewReader(bytes.NewReader(src), Fault{Kind: Error, Offset: 9})
	got, err = io.ReadAll(r)
	if !errors.Is(err, ErrInjected) || len(got) != 9 {
		t.Errorf("error fault: n=%d err=%v, want 9 ErrInjected", len(got), err)
	}
	if _, err := r.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Error("error fault is not sticky")
	}
}

func TestWriterFaults(t *testing.T) {
	src := seqBytes(64)

	var buf bytes.Buffer
	w := NewWriter(&buf,
		Fault{Kind: FlipBit, Offset: 5, Bit: 3},
		Fault{Kind: ZeroRange, Offset: 30, Len: 8},
	).Fragment(2)
	for i := 0; i < len(src); i += 16 {
		if n, err := w.Write(src[i : i+16]); n != 16 || err != nil {
			t.Fatalf("Write: n=%d err=%v", n, err)
		}
	}
	want := Corrupt(src,
		Fault{Kind: FlipBit, Offset: 5, Bit: 3},
		Fault{Kind: ZeroRange, Offset: 30, Len: 8},
	)
	if !bytes.Equal(buf.Bytes(), want) {
		t.Error("fragmented faulty write diverged from Corrupt image")
	}

	// Torn write: producer sees success, sink holds only the prefix.
	buf.Reset()
	w = NewWriter(&buf, Fault{Kind: Truncate, Offset: 23})
	for i := 0; i < len(src); i += 16 {
		if n, err := w.Write(src[i : i+16]); n != 16 || err != nil {
			t.Fatalf("torn Write reported n=%d err=%v", n, err)
		}
	}
	if !bytes.Equal(buf.Bytes(), src[:23]) {
		t.Errorf("torn write sink holds %d bytes, want 23", buf.Len())
	}

	buf.Reset()
	w = NewWriter(&buf, Fault{Kind: Error, Offset: 23})
	n, err := w.Write(src)
	if !errors.Is(err, ErrInjected) || n != 23 {
		t.Errorf("error fault: n=%d err=%v, want 23 ErrInjected", n, err)
	}
}

func TestFragmentRejectsNegativeSeed(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: negative seed did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Reader", func() { NewReader(bytes.NewReader(nil)).Fragment(-1) })
	mustPanic("Writer", func() { NewWriter(io.Discard).Fragment(-7) })
}

func TestReaderPartial(t *testing.T) {
	src := bytes.Repeat([]byte("abc"), 10)
	r := NewReader(bytes.NewReader(src)).Partial(4)
	buf := make([]byte, 64)
	var got []byte
	for {
		n, err := r.Read(buf)
		if n > 4 {
			t.Fatalf("Partial(4) delivered %d bytes", n)
		}
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, src) {
		t.Fatalf("partial reads reassembled %q, want %q", got, src)
	}
}

func TestWriterPartial(t *testing.T) {
	var sizes []int
	var sink bytes.Buffer
	w := NewWriter(writerFunc(func(p []byte) (int, error) {
		sizes = append(sizes, len(p))
		return sink.Write(p)
	})).Partial(3)
	data := bytes.Repeat([]byte("xyzw"), 5)
	if n, err := w.Write(data); err != nil || n != len(data) {
		t.Fatalf("Write = %d, %v", n, err)
	}
	for _, s := range sizes {
		if s > 3 {
			t.Fatalf("Partial(3) pushed a %d-byte chunk", s)
		}
	}
	if !bytes.Equal(sink.Bytes(), data) {
		t.Fatalf("partial writes reassembled %q, want %q", sink.Bytes(), data)
	}
}

func TestReaderStallAt(t *testing.T) {
	src := []byte("0123456789")
	var at int64 = -1
	var r *Reader
	r = NewReader(bytes.NewReader(src))
	r.StallAt(4, func() { at = 4 })
	buf := make([]byte, 16)
	n, err := r.Read(buf)
	if err != nil || n != 4 {
		t.Fatalf("first read = %d, %v; want 4 bytes stopping at the stall point", n, err)
	}
	if at != -1 {
		t.Fatal("stall fired before its offset was reached")
	}
	if _, err := r.Read(buf); err != nil {
		t.Fatal(err)
	}
	if at != 4 {
		t.Fatalf("stall fired at %d, want 4", at)
	}
}

func TestWriterStallAtFiresOnce(t *testing.T) {
	fired := 0
	w := NewWriter(io.Discard)
	w.StallAt(5, func() { fired++ })
	for i := 0; i < 4; i++ {
		if _, err := w.Write([]byte("abcd")); err != nil {
			t.Fatal(err)
		}
	}
	if fired != 1 {
		t.Fatalf("stall fired %d times, want exactly once", fired)
	}
}

func TestWriterAbortAt(t *testing.T) {
	var sink bytes.Buffer
	w := NewWriter(&sink).AbortAt(6)
	if n, err := w.Write([]byte("0123")); err != nil || n != 4 {
		t.Fatalf("pre-crash write = %d, %v", n, err)
	}
	n, err := w.Write([]byte("4567"))
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("crossing write err = %v, want ErrAborted", err)
	}
	if n != 2 {
		t.Fatalf("crossing write reported %d bytes, want the 2 before the crash point", n)
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrAborted) {
		t.Fatalf("post-crash write err = %v, want ErrAborted", err)
	}
	if got := sink.String(); got != "012345" {
		t.Fatalf("sink holds %q, want exactly the 6-byte prefix", got)
	}
}

func TestWriterAbortAtZero(t *testing.T) {
	var sink bytes.Buffer
	w := NewWriter(&sink).AbortAt(0)
	if _, err := w.Write([]byte("abc")); !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if sink.Len() != 0 {
		t.Fatalf("sink holds %d bytes, want none", sink.Len())
	}
}

// writerFunc adapts a function to io.Writer for chunk-size observation.
type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
