package faultio

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func seqBytes(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)
	}
	return b
}

func TestCorrupt(t *testing.T) {
	src := seqBytes(16)
	out := Corrupt(src,
		Fault{Kind: FlipBit, Offset: 3, Bit: 7},
		Fault{Kind: ZeroRange, Offset: 8, Len: 4},
		Fault{Kind: Truncate, Offset: 14},
	)
	if len(out) != 14 {
		t.Fatalf("truncated length = %d, want 14", len(out))
	}
	if out[3] != 3^0x80 {
		t.Errorf("bit flip: out[3] = %#x, want %#x", out[3], 3^0x80)
	}
	for i := 8; i < 12; i++ {
		if out[i] != 0 {
			t.Errorf("zero range: out[%d] = %#x, want 0", i, out[i])
		}
	}
	if src[3] != 3 || src[8] != 8 {
		t.Error("Corrupt mutated its input")
	}
	// Out-of-range faults are no-ops.
	if got := Corrupt(src, Fault{Kind: FlipBit, Offset: 99}); !bytes.Equal(got, src) {
		t.Error("out-of-range fault changed the data")
	}
}

func TestReaderFaults(t *testing.T) {
	src := seqBytes(64)

	r := NewReader(bytes.NewReader(src),
		Fault{Kind: FlipBit, Offset: 10, Bit: 0},
		Fault{Kind: ZeroRange, Offset: 20, Len: 5},
	).Fragment(1)
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	want := Corrupt(src,
		Fault{Kind: FlipBit, Offset: 10, Bit: 0},
		Fault{Kind: ZeroRange, Offset: 20, Len: 5},
	)
	if !bytes.Equal(got, want) {
		t.Errorf("fragmented faulty read diverged from Corrupt image")
	}

	r = NewReader(bytes.NewReader(src), Fault{Kind: Truncate, Offset: 17})
	got, err = io.ReadAll(r)
	if err != nil || len(got) != 17 {
		t.Errorf("truncated read: n=%d err=%v, want 17 <nil>", len(got), err)
	}

	r = NewReader(bytes.NewReader(src), Fault{Kind: Error, Offset: 9})
	got, err = io.ReadAll(r)
	if !errors.Is(err, ErrInjected) || len(got) != 9 {
		t.Errorf("error fault: n=%d err=%v, want 9 ErrInjected", len(got), err)
	}
	if _, err := r.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Error("error fault is not sticky")
	}
}

func TestWriterFaults(t *testing.T) {
	src := seqBytes(64)

	var buf bytes.Buffer
	w := NewWriter(&buf,
		Fault{Kind: FlipBit, Offset: 5, Bit: 3},
		Fault{Kind: ZeroRange, Offset: 30, Len: 8},
	).Fragment(2)
	for i := 0; i < len(src); i += 16 {
		if n, err := w.Write(src[i : i+16]); n != 16 || err != nil {
			t.Fatalf("Write: n=%d err=%v", n, err)
		}
	}
	want := Corrupt(src,
		Fault{Kind: FlipBit, Offset: 5, Bit: 3},
		Fault{Kind: ZeroRange, Offset: 30, Len: 8},
	)
	if !bytes.Equal(buf.Bytes(), want) {
		t.Error("fragmented faulty write diverged from Corrupt image")
	}

	// Torn write: producer sees success, sink holds only the prefix.
	buf.Reset()
	w = NewWriter(&buf, Fault{Kind: Truncate, Offset: 23})
	for i := 0; i < len(src); i += 16 {
		if n, err := w.Write(src[i : i+16]); n != 16 || err != nil {
			t.Fatalf("torn Write reported n=%d err=%v", n, err)
		}
	}
	if !bytes.Equal(buf.Bytes(), src[:23]) {
		t.Errorf("torn write sink holds %d bytes, want 23", buf.Len())
	}

	buf.Reset()
	w = NewWriter(&buf, Fault{Kind: Error, Offset: 23})
	n, err := w.Write(src)
	if !errors.Is(err, ErrInjected) || n != 23 {
		t.Errorf("error fault: n=%d err=%v, want 23 ErrInjected", n, err)
	}
}
