package mdz

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"strings"
	"testing"
)

// frameExtents walks a v2/v3 container and returns the [start, end) byte
// range of every frame, in order.
func frameExtents(t *testing.T, stream []byte) [][2]int {
	t.Helper()
	off := 4 // stream magic
	var ext [][2]int
	for off < len(stream) {
		if off+frameHeaderSize > len(stream) {
			t.Fatalf("frame header runs past the stream at offset %d", off)
		}
		if !bytes.Equal(stream[off:off+4], frameSync[:]) {
			t.Fatalf("no sync marker at offset %d", off)
		}
		n := binary.LittleEndian.Uint32(stream[off+9 : off+13])
		total := frameHeaderSize + int(n) + frameCRCSize
		if off+total > len(stream) {
			t.Fatalf("frame at offset %d claims %d bytes past the stream", off, total)
		}
		ext = append(ext, [2]int{off, off + total})
		off += total
	}
	return ext
}

// spliceReplay duplicates the frame at index idx immediately after itself,
// simulating a storage layer that replayed writer output.
func spliceReplay(t *testing.T, stream []byte, idx int) ([]byte, int) {
	t.Helper()
	ext := frameExtents(t, stream)
	if idx >= len(ext) {
		t.Fatalf("stream has only %d frames, want to replay %d", len(ext), idx)
	}
	start, end := ext[idx][0], ext[idx][1]
	out := make([]byte, 0, len(stream)+(end-start))
	out = append(out, stream[:end]...)
	out = append(out, stream[start:end]...)
	out = append(out, stream[end:]...)
	return out, end - start
}

// TestReplayedFrameSalvageAccounting is the regression test for the
// silent replayed-frame drop: a Resync reader used to discard a stale
// frame without recording it anywhere, so SalvageStats claimed byte-exact
// recovery while wire bytes vanished. The skip must now surface as a
// corrupt-frame event with its byte count in SkippedBytes.
func TestReplayedFrameSalvageAccounting(t *testing.T) {
	frames := makeFrames(12, 120, 3)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Config{ErrorBound: 1e-3, BufferSize: 3, CheckpointInterval: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()

	want, err := NewReader(bytes.NewReader(clean)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}

	spliced, dupSize := spliceReplay(t, clean, 1)

	// Strict mode: a replayed sequence is typed corruption.
	if _, err := NewReader(bytes.NewReader(spliced)).ReadAll(); !errors.Is(err, ErrCorruptBlock) {
		t.Fatalf("strict read of replayed frame: err = %v, want ErrCorruptBlock", err)
	}

	// Resync mode: every original snapshot is still delivered…
	r := NewReaderWith(bytes.NewReader(spliced), ReaderOptions{Resync: true, Telemetry: true})
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("salvaged %d snapshots, want %d", len(got), len(want))
	}
	for ti := range want {
		for i := range want[ti].X {
			if math.Float64bits(want[ti].X[i]) != math.Float64bits(got[ti].X[i]) ||
				math.Float64bits(want[ti].Y[i]) != math.Float64bits(got[ti].Y[i]) ||
				math.Float64bits(want[ti].Z[i]) != math.Float64bits(got[ti].Z[i]) {
				t.Fatalf("salvaged snapshot %d diverged at particle %d", ti, i)
			}
		}
	}

	// …and the replay is accounted: one corrupt frame, exactly the
	// duplicated wire bytes skipped, nothing reported lost.
	st := r.SalvageStats()
	if st.CorruptFrames != 1 {
		t.Errorf("CorruptFrames = %d, want 1", st.CorruptFrames)
	}
	if st.SkippedBytes != int64(dupSize) {
		t.Errorf("SkippedBytes = %d, want the %d-byte replayed frame", st.SkippedBytes, dupSize)
	}
	if st.DroppedFrames != 0 || len(st.LostRanges) != 0 {
		t.Errorf("replay reported data loss: dropped=%d ranges=%v", st.DroppedFrames, st.LostRanges)
	}
	if st.FirstError == nil {
		t.Fatal("FirstError not recorded for the replayed frame")
	}
	if !errors.Is(st.FirstError, ErrCorruptBlock) || !strings.Contains(st.FirstError.Error(), "replayed") {
		t.Errorf("FirstError = %v, want a replayed-sequence ErrCorruptBlock", st.FirstError)
	}

	// The live telemetry mirrors agree with the stats struct.
	snap := r.Telemetry()
	if snap.Counters["stream.corrupt_frames"] != 1 {
		t.Errorf("stream.corrupt_frames = %d, want 1", snap.Counters["stream.corrupt_frames"])
	}
	if snap.Counters["stream.skipped.bytes"] != int64(dupSize) {
		t.Errorf("stream.skipped.bytes = %d, want %d", snap.Counters["stream.skipped.bytes"], dupSize)
	}
}

// TestReplayedCheckpointFrameAccounting exercises the same path with a
// duplicated checkpoint frame: also intact, also stale, also accounted.
func TestReplayedCheckpointFrameAccounting(t *testing.T) {
	frames := makeFrames(9, 80, 5)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Config{ErrorBound: 1e-3, BufferSize: 3, CheckpointInterval: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := w.WriteFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Frame layout: data(0) ckpt(1) data(2) ckpt(3)… — replay the first
	// checkpoint (index 1).
	spliced, dupSize := spliceReplay(t, buf.Bytes(), 1)
	r := NewReaderWith(bytes.NewReader(spliced), ReaderOptions{Resync: true})
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 9 {
		t.Fatalf("salvaged %d snapshots, want 9", len(got))
	}
	st := r.SalvageStats()
	if st.CorruptFrames != 1 || st.SkippedBytes != int64(dupSize) {
		t.Errorf("replayed checkpoint accounting: corrupt=%d skipped=%d, want 1/%d",
			st.CorruptFrames, st.SkippedBytes, dupSize)
	}
}
