package mdz

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"github.com/mdz/mdz/internal/core"
	"github.com/mdz/mdz/internal/lossless"
)

// Pipelined read path (ReaderOptions.Pipeline)
//
// The read-side mirror of the Writer's PipelineDepth: a fetch goroutine
// runs the serial frame machinery — sync scan, header and payload CRCs,
// sequence accounting — and hands verified frames over a bounded channel,
// while the caller's goroutine assembles runs of consecutive data frames
// and decodes them concurrently on the shared pool. Blocks after the
// first are independent given the per-axis MT references (the only
// cross-block decoder state), so each group member decodes on its own
// Decompressor clone seeded with the main decompressor's references, and
// results are delivered strictly in frame order: the output is
// byte-identical to a serial read for any worker count or pipeline depth.
//
// Checkpoints, the seek table and the trailer are processed on the
// caller's goroutine between groups, in order, exactly as the serial path
// does. The pipeline is strict-mode only: salvage accounting is causal
// (what was lost before which recovery point), which the serial scan
// preserves and a decode-ahead would not.
//
// Error model: a decode failure at group position j surfaces after the
// j-1 preceding blocks' frames have been delivered — the same prefix a
// serial reader would deliver. The decode memory budget (MaxDecodeBytes)
// is shared by the whole group, matching its documented per-concurrent-
// operation-set semantics.

// pipeItem is one verified frame fetched ahead of decode. The payload is
// an owned copy (the parse window behind it is long gone by decode time).
type pipeItem struct {
	typ     byte
	seq     uint32
	off     int64
	payload []byte
}

// readPipe is the fetch goroutine's rendezvous state.
type readPipe struct {
	items chan pipeItem
	stop  chan struct{}
	done  chan struct{}
	// err is the fetch side's terminal error; written before items is
	// closed, so receivers observing the close may read it.
	err error
}

// startPipe launches the fetch goroutine. The Reader must be opened and
// in strict v2 mode.
func (r *Reader) startPipe() {
	p := &readPipe{
		items: make(chan pipeItem, r.pipeDepth),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	r.pipe = p
	go r.fetchLoop(p)
}

// stopPipe abandons the fetch goroutine and waits for it to exit. The
// parse window is left wherever the fetcher got to, so callers must
// reposition (Seek) before reading sequentially again.
func (r *Reader) stopPipe() {
	p := r.pipe
	if p == nil {
		return
	}
	close(p.stop)
	<-p.done
	for range p.items {
		// drain so the buffered payloads are released
	}
	r.pipe = nil
	r.pipePending = nil
}

// fetchLoop is the read-ahead stage: it walks frames with the serial
// strict-mode machinery and forwards verified ones. It exits — always
// closing items — on the trailer, any error, or stopPipe.
func (r *Reader) fetchLoop(p *readPipe) {
	defer close(p.done)
	defer close(p.items)
	for {
		select {
		case <-p.stop:
			return
		default:
		}
		if r.ctx != nil {
			if cerr := r.ctx.Err(); cerr != nil {
				p.err = cerr
				return
			}
		}
		fp, off, err := r.nextFrameV2()
		if err != nil {
			p.err = err
			return
		}
		it := pipeItem{
			typ: fp.typ, seq: fp.seq, off: off,
			payload: append([]byte(nil), fp.payload...),
		}
		select {
		case p.items <- it:
		case <-p.stop:
			return
		}
		if fp.typ == frameTrailer {
			return
		}
	}
}

// pipeNext returns the next fetched frame, blocking until one is
// available; ok is false when the fetch side has terminated.
func (r *Reader) pipeNext() (pipeItem, bool) {
	if it := r.pipePending; it != nil {
		r.pipePending = nil
		return *it, true
	}
	it, ok := <-r.pipe.items
	return it, ok
}

// pipeTryNext is pipeNext without blocking: it only drains frames the
// fetcher has already buffered.
func (r *Reader) pipeTryNext() (pipeItem, bool) {
	if it := r.pipePending; it != nil {
		r.pipePending = nil
		return *it, true
	}
	select {
	case it, ok := <-r.pipe.items:
		if !ok {
			return pipeItem{}, false
		}
		return it, true
	default:
		return pipeItem{}, false
	}
}

// groupMax bounds a decode group: one block per pool worker.
func (r *Reader) groupMax() int {
	w := r.d.pool.Workers()
	if w < 1 {
		w = 1
	}
	return w
}

// nextBatchPiped is nextBatchV2 for the pipelined Reader: it consumes
// fetched frames in order, decoding runs of data frames concurrently.
func (r *Reader) nextBatchPiped() error {
	if r.pipeDefer != nil {
		err := r.pipeDefer
		r.pipeDefer = nil
		return err
	}
	if r.pipe == nil {
		r.startPipe()
	}
	for {
		it, ok := r.pipeNext()
		if !ok {
			if err := r.pipe.err; err != nil {
				return err
			}
			return io.EOF
		}
		switch it.typ {
		case frameData:
			group := []pipeItem{it}
			if r.d.seeded() {
				// Extend the group with whatever consecutive data frames
				// the fetcher has already buffered.
				for len(group) < r.groupMax() {
					nxt, ok := r.pipeTryNext()
					if !ok {
						break
					}
					if nxt.typ != frameData {
						r.pipePending = &nxt
						break
					}
					group = append(group, nxt)
				}
			}
			if err := r.decodeGroup(group); err != nil {
				return err
			}
			if len(r.queue) > 0 {
				return nil
			}
			// Every decoded snapshot was consumed by a seek skip: keep
			// going.
			continue

		case frameCheckpoint:
			st := &CheckpointState{}
			tx := r.d.bud.Begin()
			derr := st.unmarshalTx(it.payload, tx)
			tx.Close()
			if derr != nil {
				if errors.Is(derr, ErrBudgetExceeded) {
					return derr
				}
				return &CorruptBlockError{Block: it.seq, Offset: it.off, Cause: derr}
			}
			if r.d.seeded() && !r.d.stateMatches(st) {
				return fmt.Errorf("%w: checkpoint %d disagrees with reconstructed state", ErrStateDesync, it.seq)
			}
			if aerr := r.d.ImportState(st); aerr != nil {
				return aerr
			}
			continue

		case frameSeekIndex:
			if idx, ierr := parseSeekIndex(it.payload); ierr == nil {
				if !r.indexLoaded {
					r.index, r.indexLoaded = idx, true
				}
			} else {
				return &CorruptBlockError{Block: it.seq, Offset: it.off, Cause: ierr}
			}
			continue

		case frameTrailer:
			return r.finishTrailer(it)
		}
	}
}

// finishTrailer validates the trailer frame in strict mode — the piped
// twin of nextBatchV2's trailer case.
func (r *Reader) finishTrailer(it pipeItem) error {
	snapTotal, blockTotal, err := parseTrailer(it.payload)
	if err != nil {
		return &CorruptBlockError{Block: it.seq, Offset: it.off, Cause: err}
	}
	r.trailer = true
	if r.seeked {
		if snapTotal < r.delivered || blockTotal < r.blocks {
			return fmt.Errorf("%w: trailer claims %d snapshots in %d blocks, decoded %d in %d after a seek",
				ErrCorruptBlock, snapTotal, blockTotal, r.delivered, r.blocks)
		}
		return io.EOF
	}
	if snapTotal != r.delivered || blockTotal != r.blocks {
		return fmt.Errorf("%w: trailer claims %d snapshots in %d blocks, decoded %d in %d",
			ErrCorruptBlock, snapTotal, blockTotal, r.delivered, r.blocks)
	}
	return io.EOF
}

// decodeGroup decodes a run of consecutive data frames, delivering their
// snapshots in order. A failure at position j delivers positions < j
// first and surfaces the error once they are consumed — exactly the
// serial prefix.
func (r *Reader) decodeGroup(items []pipeItem) error {
	outs := make([][]Frame, len(items))
	errs := make([]error, len(items))
	if len(items) == 1 {
		// Single block (or an unseeded decoder): decode on the main
		// decompressor so the MT references are established there.
		outs[0], errs[0] = r.d.DecompressBatch(items[0].payload)
	} else {
		refs := r.d.refs()
		clones := r.ensureClones(len(items))
		var next atomic.Int32
		rcErr := r.d.pool.RunContextChunked(r.ctx, len(items), func(lo, hi int) error {
			c := clones[int(next.Add(1))-1]
			c.setRefs(refs)
			for i := lo; i < hi; i++ {
				outs[i], errs[i] = c.DecompressBatchContext(r.ctx, items[i].payload)
			}
			return nil
		})
		if rcErr != nil {
			// A contained panic or pre-start cancellation; attribute it to
			// the first undecoded item.
			for i := range errs {
				if errs[i] == nil && outs[i] == nil {
					errs[i] = rcErr
					break
				}
			}
		}
	}
	var gerr error
	for i := range items {
		if derr := errs[i]; derr != nil {
			if isCancellation(derr) || errors.Is(derr, ErrBudgetExceeded) {
				gerr = derr
			} else {
				gerr = &CorruptBlockError{Block: items[i].seq, Offset: items[i].off, Cause: derr}
			}
			break
		}
		batch := r.trimSeekSkip(outs[i])
		r.blocks++
		r.delivered += int64(len(batch))
		r.queue = append(r.queue, batch...)
	}
	if gerr != nil {
		if len(r.queue) > 0 {
			r.pipeDefer = gerr
			return nil
		}
		return gerr
	}
	return nil
}

// ensureClones returns n decode clones (created lazily, reused across
// groups). Clones share the pool, budget and telemetry registry with the
// main decompressor; their per-axis references are refreshed per group.
func (r *Reader) ensureClones(n int) []*Decompressor {
	for len(r.clones) < n {
		r.clones = append(r.clones, r.d.clone())
	}
	return r.clones[:n]
}

// parseTrailer decodes a trailer payload.
func parseTrailer(payload []byte) (snapTotal, blockTotal int64, err error) {
	s, p, err := readUvarint(payload)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: malformed trailer", ErrCorruptBlock)
	}
	b, p, err := readUvarint(p)
	if err != nil || len(p) != 0 || s > 1<<62 || b > 1<<62 {
		return 0, 0, fmt.Errorf("%w: malformed trailer", ErrCorruptBlock)
	}
	return int64(s), int64(b), nil
}

// clone builds a Decompressor sharing this one's pool, budget, context
// and telemetry registry, with fresh per-axis decoders — the unit of
// frame-level decode parallelism.
func (d *Decompressor) clone() *Decompressor {
	c := &Decompressor{pool: d.pool, reg: d.reg, bud: d.bud, ctx: d.ctx, cancelled: d.cancelled}
	tel := core.DecoderInstruments(d.reg)
	for i := range c.dec {
		c.dec[i] = core.NewDecoder(core.Params{Backend: lossless.LZ{}, Pool: d.pool, Tel: tel, Budget: d.bud})
	}
	return c
}

// refs snapshots the per-axis MT references.
func (d *Decompressor) refs() [3][]float64 {
	var out [3][]float64
	for i, dec := range d.dec {
		out[i] = dec.Ref()
	}
	return out
}

// setRefs seeds the per-axis MT references.
func (d *Decompressor) setRefs(refs [3][]float64) {
	for i, dec := range d.dec {
		dec.SetRef(refs[i])
	}
}
