#!/bin/sh
# CI gate: vet, build, full test suite, then the same suite under the race
# detector. The race pass is what guards the sharded parallel pipeline —
# run it locally before sending changes that touch internal/core,
# internal/pool, or the Compressor/Decompressor concurrency model.
set -eux

cd "$(dirname "$0")/.."

gofmt -l . | tee /dev/stderr | wc -l | grep -q '^0$'
go vet ./...
go build ./...
go test ./...
go test -race ./...

# One-iteration benchmark smoke: compiles and executes every benchmark body
# once (including the telemetry-enabled throughput variants) so bit-rotted
# benchmark code fails the gate without paying for real measurement runs.
go test -run '^$' -bench . -benchtime 1x .

# Entropy-stage micro-benchmarks once under the race detector: the
# word-at-a-time bitstream and table-driven Huffman paths use pooled
# scratch state, and one racing iteration of each body is a cheap guard on
# that reuse.
go test -race -run '^$' -bench . -benchtime 1x ./internal/bitstream ./internal/huffman

# Short fuzz smoke over the stream container and checkpoint parsers: ten
# seconds each is enough to catch regressions in the framing/resync logic
# without slowing the gate meaningfully.
go test -run '^$' -fuzz '^FuzzStreamReader$' -fuzztime 10s .
go test -run '^$' -fuzz '^FuzzCheckpointUnmarshal$' -fuzztime 10s .

# Differential fuzz of the entropy hot path: the word-buffered bitstream
# Reader against the historical byte-at-a-time reader, and the two-level
# table-driven Huffman decoder against the tree-walking decoder. Identical
# symbols AND identical error behavior are asserted on every input.
go test -run '^$' -fuzz '^FuzzReaderDifferential$' -fuzztime 10s ./internal/bitstream
go test -run '^$' -fuzz '^FuzzDecodeDifferential$' -fuzztime 10s ./internal/huffman

# Differential fuzz of the dictionary-coder hot path: the pooled
# word-at-a-time LZ against the kept historical implementation (byte AND
# error identity, both directions), and the byte-oriented Huffman section
# codec against the generic int path (wire-byte identity).
go test -run '^$' -fuzz '^FuzzLZDifferential$' -fuzztime 10s ./internal/lossless
go test -run '^$' -fuzz '^FuzzEncodeBytesEquivalence$' -fuzztime 10s ./internal/huffman

# Soft performance gate: diff a fresh entropy-stage run against the
# committed report. Throughput deltas print as warnings only — shared-runner
# noise makes hard wall-clock gates flaky — so this step never fails CI.
go run ./cmd/mdzbench -entropy -compare BENCH_entropy.json || echo "WARNING: entropy benchmark compare failed"
