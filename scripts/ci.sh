#!/bin/sh
# CI gate: vet, build, full test suite, then the same suite under the race
# detector. The race pass is what guards the sharded parallel pipeline —
# run it locally before sending changes that touch internal/core,
# internal/pool, or the Compressor/Decompressor concurrency model.
set -eux

cd "$(dirname "$0")/.."

gofmt -l . | tee /dev/stderr | wc -l | grep -q '^0$'
go vet ./...
go build ./...
go test ./...
go test -race ./...

# Constrained-parallelism smoke: the chunked shard scheduler and the
# work-sharing pool must degrade gracefully when the runtime has almost no
# cores to hand out — helper tokens stop being granted and chunked runs
# collapse toward serial execution. GOMAXPROCS=2 is the smallest setting
# where helpers can still spawn, so it exercises both sides of that edge.
GOMAXPROCS=2 go test ./internal/pool ./internal/core

# Fault-containment matrix under the race detector, twice: stream
# corruption recovery, the CLI crash-consistency sweep, cancellation and
# panic isolation all unwind work across goroutines, and a second run
# varies the schedules. (The full -race suite above covers these once;
# this repeats exactly the containment surface.) `make chaos` is the
# longer local version with an every-byte crash sweep.
go test -race -count=2 \
  -run 'CrashMatrix|StreamFault|Resync|Cancel|ContextDeadline|Panic|Budget|MaxDecode' \
  . ./cmd/mdzc

# One-iteration benchmark smoke: compiles and executes every benchmark body
# once (including the telemetry-enabled throughput variants) so bit-rotted
# benchmark code fails the gate without paying for real measurement runs.
go test -run '^$' -bench . -benchtime 1x .

# Entropy-stage micro-benchmarks once under the race detector: the
# word-at-a-time bitstream and table-driven Huffman paths use pooled
# scratch state, and one racing iteration of each body is a cheap guard on
# that reuse.
go test -race -run '^$' -bench . -benchtime 1x ./internal/bitstream ./internal/huffman

# Daemon smoke: mdzload spawns an in-process mdzd and runs a couple dozen
# concurrent streaming sessions, byte-comparing every container against a
# local library run (-verify 1). `make loadtest` is the longer local soak.
go run ./cmd/mdzload -spawn -sessions 24 -frames 16 -atoms 100 -c 8 -verify 1

# Short fuzz smoke over every parser and differential fuzzer in the tree
# (stream framing, checkpoint parsing, the v2-vs-v3 pipeline differential,
# and the entropy/dictionary hot-path equivalence fuzzers). Ten seconds per
# fuzzer catches regressions without slowing the gate meaningfully.
make fuzz-short FUZZTIME=10s

# Performance gate: diff a fresh entropy-stage run against the committed
# report. Throughput deltas print as warnings only — shared-runner noise
# makes hard wall-clock gates flaky — but a compression-ratio regression
# beyond 2% (or a benchmark that fails to run at all) fails the gate:
# ratios are deterministic, so a drop is a real encoder change.
go run ./cmd/mdzbench -entropy -compare BENCH_entropy.json

# Scaling gate, warn-only: diff a fresh Workers x Shards scaling run against
# the committed report. Every delta here is wall-clock on the current host
# (the committed report records its own GOMAXPROCS), so regressions print
# WARNING lines instead of failing the gate; the compression-ratio guard on
# the amortized-ADP knob lives in the deterministic test suite instead
# (TestADPSampleShardsAcceptance).
go run ./cmd/mdzbench -scale -compare BENCH_scale.json

# Read-path gate, warn-only for the same wall-clock reason: diff a fresh
# ranged-access + pipelined-decode run against the committed report. The
# byte-identity guard on the parallel Reader is deterministic and lives in
# the test suite (TestPipelinedReaderDifferential), re-run here under the
# race detector because ordered delivery across read-ahead and decode
# workers is exactly the kind of coordination races hide in.
go run ./cmd/mdzbench -read -compare BENCH_read.json
go test -race -count=2 -run 'TestPipelined|TestSeekIndexedStream|TestReadRangeWindows' .
