package mdz

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Random access
//
// Seek and ReadRange give O(1) windowed access to a framed stream on an
// io.ReadSeeker: the seek table (or a header-only scan rebuild for streams
// written without one) maps a snapshot index to the data frame holding it;
// the nearest preceding checkpoint frame is fetched by offset and imported
// to reseed decoder state; and the reader jumps straight to the target
// frame — nothing in the skipped prefix is decoded. The only cross-block
// decoder state is the per-axis MT reference (established by block 0 or by
// any checkpoint), which is what makes the jump sound: every block after
// the reseed point decodes to exactly the bytes a sequential read would
// produce.

// ErrNotSeekable is returned by Reader.Seek and Reader.ReadRange when the
// underlying source does not implement io.ReadSeeker.
var ErrNotSeekable = errors.New("mdz: source is not seekable")

// seekTailWindow bounds the backwards search for the seek-table frame at
// the end of an indexed stream. It caps the cold-seek read at a constant
// while covering indexes of hundreds of thousands of frames.
const seekTailWindow = 1 << 20

// Seek positions the Reader so the next ReadFrame returns the snapshot
// with the given stream-wide index (0-based). It requires the source to be
// an io.ReadSeeker and the stream to be v2/v3 framed. The frame index is
// loaded from the stream's seek table when present, else rebuilt by a
// header-only scan (no payload is decoded); decoder state is reseeded from
// the nearest checkpoint at or before the target, falling back — in Resync
// mode, with the damage accounted in SalvageStats — to earlier checkpoints
// or to decoding block 0 when a checkpoint is corrupt. Seeking past the
// last indexed snapshot returns io.EOF. A sticky hard error is not
// cleared; a Reader that previously hit io.EOF can Seek again.
func (r *Reader) Seek(snapshot int) error {
	if r.err != nil && !errors.Is(r.err, io.EOF) {
		return r.err
	}
	if r.srcSeeker == nil {
		return ErrNotSeekable
	}
	if snapshot < 0 {
		return fmt.Errorf("mdz: negative seek target %d", snapshot)
	}
	r.err = nil
	r.stopPipe()
	if !r.opened {
		if err := r.open(); err != nil {
			return r.fail(err)
		}
	}
	if !r.v2 {
		return r.fail(fmt.Errorf("%w: v1 streams carry no frame index", ErrNotSeekable))
	}
	if err := r.ensureIndex(); err != nil {
		return r.fail(err)
	}
	data, cpIdx, ok := r.findTarget(int64(snapshot))
	if !ok {
		return io.EOF
	}
	if err := r.seedFor(data, cpIdx); err != nil {
		return r.fail(err)
	}
	return r.jumpTo(data, int(int64(snapshot)-data.SnapFrom))
}

// ReadRange decodes exactly the snapshots in the half-open range [lo, hi),
// seeking to lo first — the cost is O(window), not O(prefix). hi is
// clamped to the end of the stream; a range starting at or past the end
// returns io.EOF. The frames are identical to the corresponding slice of a
// full sequential decode.
func (r *Reader) ReadRange(lo, hi int) ([]Frame, error) {
	if lo < 0 || hi < lo {
		return nil, fmt.Errorf("mdz: invalid snapshot range [%d, %d)", lo, hi)
	}
	if lo == hi {
		return nil, nil
	}
	if err := r.Seek(lo); err != nil {
		return nil, err
	}
	out := make([]Frame, 0, hi-lo)
	for len(out) < hi-lo {
		f, err := r.ReadFrame()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return out, err
		}
		out = append(out, f)
	}
	return out, nil
}

// findTarget locates the data entry covering snapshot and the index (into
// r.index) of the nearest checkpoint entry preceding it, or -1.
func (r *Reader) findTarget(snapshot int64) (SeekEntry, int, bool) {
	data, cp, ok := findSeekEntry(r.index, snapshot)
	if !ok {
		return SeekEntry{}, -1, false
	}
	cpIdx := -1
	if cp != nil {
		for i := range r.index {
			if r.index[i].Offset == cp.Offset {
				cpIdx = i
				break
			}
		}
	}
	return data, cpIdx, ok
}

// seedFor establishes the decoder's cross-block state (the per-axis MT
// references) for decoding the block at target. An already-seeded decoder
// needs nothing: the references are constant for the whole stream. Else it
// imports the checkpoint at r.index[cpIdx]; a corrupt checkpoint fails a
// strict reader and, in Resync mode, is recorded in SalvageStats before
// falling back to the preceding checkpoint — and finally to decoding the
// stream's first data block, which establishes the references directly.
func (r *Reader) seedFor(target SeekEntry, cpIdx int) error {
	if r.d.seeded() {
		return nil
	}
	for i := cpIdx; i >= 0; i-- {
		e := r.index[i]
		if e.Type != frameCheckpoint {
			continue
		}
		err := r.seedFromCheckpoint(e)
		if err == nil {
			return nil
		}
		if isCancellation(err) || errors.Is(err, ErrBudgetExceeded) {
			return err
		}
		if !r.resync {
			return err
		}
		r.recordCorrupt(&CorruptBlockError{Block: e.Seq, Offset: e.Offset, Cause: err})
	}
	// No usable checkpoint: decode the first data block to establish the
	// references (the scan fallback). If the target IS the first block,
	// nothing needs seeding.
	first, ok := r.firstDataEntry()
	if !ok || first.Offset == target.Offset {
		return nil
	}
	payload, err := r.readFrameAt(first)
	if err != nil {
		return err
	}
	if _, err := r.d.DecompressBatch(payload); err != nil {
		return err
	}
	return nil
}

// firstDataEntry returns the index's first data entry.
func (r *Reader) firstDataEntry() (SeekEntry, bool) {
	for _, e := range r.index {
		if e.Type == frameData {
			return e, true
		}
	}
	return SeekEntry{}, false
}

// seedFromCheckpoint fetches the checkpoint frame at e by offset,
// validates it and imports its state into the decompressor.
func (r *Reader) seedFromCheckpoint(e SeekEntry) error {
	payload, err := r.readFrameAt(e)
	if err != nil {
		return err
	}
	st := &CheckpointState{}
	tx := r.d.bud.Begin()
	err = st.unmarshalTx(payload, tx)
	tx.Close()
	if err != nil {
		return err
	}
	return r.d.ImportState(st)
}

// readFrameAt random-access reads the frame recorded by e, verifying sync
// marker, header CRC, sequence, type and payload CRC. The returned payload
// is a fresh allocation owned by the caller. The source position is left
// undefined; callers reposition via jumpTo (or restore it themselves).
func (r *Reader) readFrameAt(e SeekEntry) ([]byte, error) {
	if _, err := r.srcSeeker.Seek(e.Offset, io.SeekStart); err != nil {
		return nil, err
	}
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r.srcSeeker, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: frame at offset %d cut short", ErrTruncated, e.Offset)
	}
	if !bytes.Equal(hdr[:4], frameSync[:]) ||
		crc32.Checksum(hdr[4:13], crcTable) != binary.LittleEndian.Uint32(hdr[13:17]) {
		return nil, fmt.Errorf("%w: no valid frame at indexed offset %d", ErrCorruptBlock, e.Offset)
	}
	if hdr[4] != e.Type || binary.LittleEndian.Uint32(hdr[5:9]) != e.Seq {
		return nil, fmt.Errorf("%w: frame at offset %d does not match its index entry", ErrCorruptBlock, e.Offset)
	}
	n := binary.LittleEndian.Uint32(hdr[9:13])
	if n > maxFramePayload {
		return nil, fmt.Errorf("%w: implausible frame length %d", ErrCorruptBlock, n)
	}
	tx := r.d.bud.Begin()
	defer tx.Close()
	if err := tx.Reserve(int64(n) + frameCRCSize); err != nil {
		return nil, err
	}
	body := make([]byte, int(n)+frameCRCSize)
	if _, err := io.ReadFull(r.srcSeeker, body); err != nil {
		return nil, fmt.Errorf("%w: frame at offset %d cut short", ErrTruncated, e.Offset)
	}
	payload := body[:n]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(body[n:]) {
		return nil, fmt.Errorf("%w: frame payload CRC mismatch at offset %d", ErrCorruptBlock, e.Offset)
	}
	return payload, nil
}

// jumpTo repositions the reader at entry e, resetting the parse window and
// sequencing so reading continues as if the prefix had been consumed; the
// first skip snapshots of the block are dropped before delivery.
func (r *Reader) jumpTo(e SeekEntry, skip int) error {
	if _, err := r.srcSeeker.Seek(e.Offset, io.SeekStart); err != nil {
		return r.fail(err)
	}
	r.buf = r.buf[:0]
	r.pos = 0
	r.off = e.Offset
	r.srcErr = nil
	r.queue = nil
	r.nextSeq = e.Seq
	r.await = false
	r.scanning = false
	r.trailer = false
	r.seeked = true
	r.skipSnaps = skip
	return nil
}

// ensureIndex makes r.index available: from the stream's seek-table frame
// when one validates (a constant-size read of the stream tail), else by
// the header-only scan rebuild. The result is cached for the Reader's
// lifetime.
func (r *Reader) ensureIndex() error {
	if r.indexLoaded {
		return nil
	}
	if idx, ok := r.loadIndexTail(); ok {
		r.index, r.indexLoaded = idx, true
		return nil
	}
	idx, err := r.rebuildIndex()
	if err != nil {
		return err
	}
	r.index, r.indexLoaded = idx, true
	return nil
}

// indexTotalSnaps reports the stream's total snapshot count when a cheap
// index is available: one already loaded, or a seek table in the stream
// tail. It never triggers a scan rebuild and restores the source position.
func (r *Reader) indexTotalSnaps() (int64, bool) {
	if r.indexLoaded {
		return seekIndexSnapshots(r.index), true
	}
	if r.srcSeeker == nil {
		return 0, false
	}
	pos, err := r.srcSeeker.Seek(0, io.SeekCurrent)
	if err != nil {
		return 0, false
	}
	idx, ok := r.loadIndexTail()
	if _, serr := r.srcSeeker.Seek(pos, io.SeekStart); serr != nil {
		return 0, false
	}
	if !ok {
		return 0, false
	}
	r.index, r.indexLoaded = idx, true
	return seekIndexSnapshots(idx), true
}

// loadIndexTail reads the stream's tail window and searches backwards for
// a valid seek-table frame. ok is false — never an error — when no intact
// table is found; callers fall back to the scan rebuild.
func (r *Reader) loadIndexTail() ([]SeekEntry, bool) {
	size, err := r.srcSeeker.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, false
	}
	start := size - seekTailWindow
	if start < 0 {
		start = 0
	}
	if _, err := r.srcSeeker.Seek(start, io.SeekStart); err != nil {
		return nil, false
	}
	tail := make([]byte, size-start)
	if _, err := io.ReadFull(r.srcSeeker, tail); err != nil {
		return nil, false
	}
	// Walk sync-marker candidates from the end; the seek frame sits just
	// before the trailer, so the first hit that parses as a seek-index
	// frame is the one.
	for at := len(tail) - frameHeaderSize; at >= 0; {
		i := bytes.LastIndex(tail[:at+4], frameSync[:])
		if i < 0 {
			return nil, false
		}
		at = i - 1
		hdr := tail[i:]
		if len(hdr) < frameHeaderSize {
			continue
		}
		if hdr[4] != frameSeekIndex {
			continue
		}
		if crc32.Checksum(hdr[4:13], crcTable) != binary.LittleEndian.Uint32(hdr[13:17]) {
			continue
		}
		n := binary.LittleEndian.Uint32(hdr[9:13])
		total := frameHeaderSize + int64(n) + frameCRCSize
		if int64(len(hdr)) < total {
			continue
		}
		payload := hdr[frameHeaderSize : frameHeaderSize+int(n)]
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(hdr[total-frameCRCSize:total]) {
			continue
		}
		entries, err := parseSeekIndex(payload)
		if err != nil {
			continue
		}
		return entries, true
	}
	return nil, false
}

// rebuildIndex reconstructs the frame index by walking frame headers from
// the stream start — the fallback for streams written without SeekIndex.
// Only headers and the leading block geometry are parsed; nothing is
// decoded. In Resync mode damaged regions are skipped (those frames are
// unreachable by Seek but everything after the next sync marker is
// indexed); a strict reader propagates the corruption instead.
func (r *Reader) rebuildIndex() ([]SeekEntry, error) {
	if _, err := r.srcSeeker.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	sc := newStreamScanner(r.srcSeeker)
	if err := sc.open(); err != nil {
		return nil, err
	}
	entries, _, err := sc.scan(!r.resync)
	if err != nil {
		return nil, err
	}
	return entries, nil
}

// scannedTrailer captures the trailer frame found by a scan.
type scannedTrailer struct {
	off     int64
	seq     uint32
	payload []byte
}

// streamScanner walks the frames of a v2/v3 container reading only wire
// bytes (headers, CRCs, block geometry) — the index-rebuild and retrofit
// engine.
type streamScanner struct {
	br      *bufio.Reader
	off     int64
	scratch []byte
	// hasIndex reports that the scan encountered an existing seek-table
	// frame.
	hasIndex bool
}

func newStreamScanner(src io.Reader) *streamScanner {
	return &streamScanner{br: bufio.NewReaderSize(src, 1<<20)}
}

// open validates the stream magic. v1 streams are rejected: they have no
// frames to index.
func (s *streamScanner) open() error {
	var magic [4]byte
	if _, err := io.ReadFull(s.br, magic[:]); err != nil {
		return fmt.Errorf("%w: stream cut inside the magic", ErrTruncated)
	}
	switch string(magic[:]) {
	case streamMagicV2, streamMagicV3:
	case streamMagic:
		return fmt.Errorf("%w: v1 streams carry no frame index", ErrNotSeekable)
	default:
		return fmt.Errorf("%w: not an MDZ stream (magic %q)", ErrCorruptBlock, magic)
	}
	s.off = 4
	return nil
}

// scan walks every frame to the end of input, returning seek entries for
// the data and checkpoint frames and the trailer if one was found. In
// strict mode any framing violation (bad sync, CRC, sequence break,
// truncation, bytes after the trailer) is an error; in lenient mode the
// scanner resynchronizes past damage like a salvage reader and returns
// whatever it could index.
func (s *streamScanner) scan(strict bool) ([]SeekEntry, *scannedTrailer, error) {
	var entries []SeekEntry
	var trailer *scannedTrailer
	var snaps int64
	seq := uint32(0)
	seqKnown := true
	for {
		hdr, err := s.br.Peek(frameHeaderSize)
		if err != nil {
			if len(hdr) == 0 {
				return entries, trailer, nil // clean end of input
			}
			if strict {
				return nil, nil, fmt.Errorf("%w: stream cut inside a frame header", ErrTruncated)
			}
			return entries, trailer, nil
		}
		if trailer != nil {
			if strict {
				return nil, nil, fmt.Errorf("%w: bytes after the stream trailer", ErrCorruptBlock)
			}
			return entries, trailer, nil
		}
		bad := !bytes.Equal(hdr[:4], frameSync[:]) ||
			crc32.Checksum(hdr[4:13], crcTable) != binary.LittleEndian.Uint32(hdr[13:17]) ||
			hdr[4] > frameSeekIndex
		var n uint32
		if !bad {
			n = binary.LittleEndian.Uint32(hdr[9:13])
			bad = n > maxFramePayload
		}
		if bad {
			if strict {
				return nil, nil, &CorruptBlockError{
					Block: seq, Offset: s.off,
					Cause: fmt.Errorf("%w: frame sync/CRC validation failed", ErrCorruptBlock),
				}
			}
			if !s.skipToSync() {
				return entries, trailer, nil
			}
			seqKnown = false
			continue
		}
		typ := hdr[4]
		fseq := binary.LittleEndian.Uint32(hdr[5:9])
		if seqKnown && fseq != seq {
			if strict {
				return nil, nil, &CorruptBlockError{
					Block: seq, Offset: s.off,
					Cause: fmt.Errorf("%w: frame sequence %d (want %d)", ErrCorruptBlock, fseq, seq),
				}
			}
			// Sequence break on an individually valid frame: accept it and
			// continue from its numbering, like the salvage reader.
		}
		frameOff := s.off
		if _, err := s.br.Discard(frameHeaderSize); err != nil {
			return entries, trailer, scanIOErr(strict, err)
		}
		s.off += frameHeaderSize
		body := s.grow(int(n) + frameCRCSize)
		if _, err := io.ReadFull(s.br, body); err != nil {
			if strict {
				return nil, nil, fmt.Errorf("%w: stream cut inside frame %d", ErrTruncated, fseq)
			}
			return entries, trailer, nil
		}
		s.off += int64(len(body))
		payload := body[:n]
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(body[n:]) {
			if strict {
				return nil, nil, &CorruptBlockError{
					Block: fseq, Offset: frameOff,
					Cause: fmt.Errorf("%w: frame payload CRC mismatch", ErrCorruptBlock),
				}
			}
			seqKnown = false
			continue
		}
		seq = fseq + 1
		seqKnown = true
		switch typ {
		case frameData:
			bs, berr := blockSnapshots(payload)
			if berr != nil {
				if strict {
					return nil, nil, &CorruptBlockError{Block: fseq, Offset: frameOff, Cause: berr}
				}
				continue
			}
			entries = append(entries, SeekEntry{
				Offset: frameOff, Seq: fseq, Type: frameData,
				SnapFrom: snaps, SnapCount: bs,
			})
			snaps += int64(bs)
		case frameCheckpoint:
			entries = append(entries, SeekEntry{
				Offset: frameOff, Seq: fseq, Type: frameCheckpoint, SnapFrom: snaps,
			})
		case frameSeekIndex:
			s.hasIndex = true
		case frameTrailer:
			trailer = &scannedTrailer{
				off: frameOff, seq: fseq,
				payload: append([]byte(nil), payload...),
			}
		}
	}
}

// grow returns a scratch buffer of exactly n bytes, reusing the backing
// array across frames.
func (s *streamScanner) grow(n int) []byte {
	if cap(s.scratch) < n {
		s.scratch = make([]byte, n)
	}
	return s.scratch[:n]
}

// skipToSync discards at least one byte, then everything up to the next
// sync-marker candidate, reporting false at end of input.
func (s *streamScanner) skipToSync() bool {
	if _, err := s.br.Discard(1); err != nil {
		return false
	}
	s.off++
	for {
		b, err := s.br.Peek(4096)
		if i := bytes.Index(b, frameSync[:]); i >= 0 {
			s.br.Discard(i)
			s.off += int64(i)
			return true
		}
		if err != nil || len(b) < len(frameSync) {
			// Keep a possible marker prefix at the tail; if no more input
			// arrives the scan is over.
			if err != nil {
				return false
			}
		}
		drop := len(b) - (len(frameSync) - 1)
		if drop <= 0 {
			return false
		}
		s.br.Discard(drop)
		s.off += int64(drop)
	}
}

// scanIOErr classifies an unexpected mid-scan read failure.
func scanIOErr(strict bool, err error) error {
	if !strict {
		return nil
	}
	return err
}
