package mdz

import (
	"bytes"
	"math"
	"testing"
)

// compressAll runs frames through a fresh compressor batch by batch.
func compressAll(t testing.TB, cfg Config, frames []Frame, bs int) [][]byte {
	t.Helper()
	c, err := NewCompressor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var blks [][]byte
	for lo := 0; lo < len(frames); lo += bs {
		hi := lo + bs
		if hi > len(frames) {
			hi = len(frames)
		}
		blk, err := c.CompressBatch(frames[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		blks = append(blks, append([]byte(nil), blk...))
	}
	return blks
}

func decompressAll(t testing.TB, blks [][]byte) []Frame {
	t.Helper()
	d := NewDecompressor()
	var out []Frame
	for _, blk := range blks {
		frames, err := d.DecompressBatch(blk)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, frames...)
	}
	return out
}

func requireFramesIdentical(t testing.TB, want, got []Frame, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d frames, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !framesExactEqual(want[i], got[i]) {
			t.Fatalf("%s: frame %d not bit-identical", label, i)
		}
	}
}

func requireFramesWithinBound(t testing.TB, orig, got []Frame, eb float64) {
	t.Helper()
	if len(orig) != len(got) {
		t.Fatalf("%d frames, want %d", len(got), len(orig))
	}
	for i := range orig {
		for j := range orig[i].X {
			for _, p := range [][2]float64{
				{orig[i].X[j], got[i].X[j]},
				{orig[i].Y[j], got[i].Y[j]},
				{orig[i].Z[j], got[i].Z[j]},
			} {
				if math.Abs(p[0]-p[1]) > eb {
					t.Fatalf("frame %d atom %d: error %g exceeds bound %g", i, j, math.Abs(p[0]-p[1]), eb)
				}
			}
		}
	}
}

// TestV3BatchMatchesV2 pins the central v3 contract at the public API: a
// v3 compressor produces different wire bytes but the decompressor (which
// auto-detects the block version) reconstructs values bit-identical to the
// v2 pipeline. ADP is excluded from the bit-identity claim — it selects
// the method by final compressed size, and v3's entropy stage can break
// near-ties differently (both choices stay error-bounded; the fuzzer
// checks that).
func TestV3BatchMatchesV2(t *testing.T) {
	frames := makeFrames(20, 150, 77)
	for _, m := range []Method{VQ, VQT, MT} {
		cfg2 := Config{ErrorBound: 1e-3, Method: m, BufferSize: 5}
		cfg3 := cfg2
		cfg3.FormatVersion = 3
		blks2 := compressAll(t, cfg2, frames, 5)
		blks3 := compressAll(t, cfg3, frames, 5)
		same := true
		for i := range blks2 {
			if !bytes.Equal(blks2[i], blks3[i]) {
				same = false
			}
		}
		if same {
			t.Fatalf("%v: v3 blocks are byte-identical to v2 (format not applied)", m)
		}
		requireFramesIdentical(t, decompressAll(t, blks2), decompressAll(t, blks3), m.String())
	}
}

// TestV3ConfigValidation pins the accepted Config.FormatVersion values.
func TestV3ConfigValidation(t *testing.T) {
	for _, v := range []int{0, 2, 3} {
		if _, err := NewCompressor(Config{ErrorBound: 1e-3, FormatVersion: v}); err != nil {
			t.Fatalf("FormatVersion %d rejected: %v", v, err)
		}
	}
	for _, v := range []int{1, 4, -2} {
		if _, err := NewCompressor(Config{ErrorBound: 1e-3, FormatVersion: v}); err == nil {
			t.Fatalf("FormatVersion %d accepted", v)
		}
	}
}

// TestV3OneShotRoundTrip checks the one-shot Compress/Decompress path with
// v3 blocks inside the MDZF envelope.
func TestV3OneShotRoundTrip(t *testing.T) {
	frames := makeFrames(12, 80, 5)
	c, err := NewCompressor(Config{ErrorBound: 1e-4, Mode: Absolute, FormatVersion: 3, BufferSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := c.Compress(frames)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(frames) {
		t.Fatalf("%d frames, want %d", len(got), len(frames))
	}
	for i := range frames {
		for j := range frames[i].X {
			for _, p := range [][2]float64{
				{frames[i].X[j], got[i].X[j]},
				{frames[i].Y[j], got[i].Y[j]},
				{frames[i].Z[j], got[i].Z[j]},
			} {
				if math.Abs(p[0]-p[1]) > 1e-4 {
					t.Fatalf("frame %d atom %d: error %g exceeds bound", i, j, math.Abs(p[0]-p[1]))
				}
			}
		}
	}
}

// TestV3CheckpointFormat pins that v3 compressors export v3-tagged
// checkpoints whose payload round-trips through the version-2 checkpoint
// encoding.
func TestV3CheckpointFormat(t *testing.T) {
	frames := makeFrames(8, 60, 13)
	c, err := NewCompressor(Config{ErrorBound: 1e-3, FormatVersion: 3, BufferSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CompressBatch(frames[:4]); err != nil {
		t.Fatal(err)
	}
	st, err := c.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if st.Format != 3 {
		t.Fatalf("checkpoint Format = %d, want 3", st.Format)
	}
	payload, err := st.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if payload[0] != checkpointVersionV3 {
		t.Fatalf("checkpoint payload version = %d, want %d", payload[0], checkpointVersionV3)
	}
	var back CheckpointState
	if err := back.UnmarshalBinary(payload); err != nil {
		t.Fatal(err)
	}
	if back.Format != 3 || back.Batch != st.Batch {
		t.Fatalf("round trip diverged: %+v vs %+v", back, st)
	}

	// A fresh v3 compressor resumed from the checkpoint must continue the
	// stream byte-identically.
	want, err := c.CompressBatch(frames[4:])
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewCompressor(Config{ErrorBound: 1e-3, FormatVersion: 3, BufferSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.ImportState(&back); err != nil {
		t.Fatal(err)
	}
	got, err := c2.CompressBatch(frames[4:])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("resumed v3 compressor diverged from the original")
	}
}

// FuzzV3Differential drives the public API with fuzzer-derived
// trajectories and requires the v2 and v3 pipelines to reconstruct
// bit-identical values for fixed methods. Under ADP the pipelines may pick
// different methods (selection goes by compressed size, which the entropy
// stage changes), so there both reconstructions are checked against the
// originals within the error bound instead.
func FuzzV3Differential(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(3), uint8(2))
	f.Add([]byte{0xFF, 0, 0xFF, 0}, uint8(1), uint8(0))
	f.Add(bytes.Repeat([]byte{9}, 64), uint8(4), uint8(3))
	f.Fuzz(func(t *testing.T, raw []byte, mSel, nSel uint8) {
		m := int(mSel%6) + 2  // snapshots
		n := int(nSel%10) + 1 // atoms
		frames := make([]Frame, m)
		at := 0
		next := func() float64 {
			if len(raw) == 0 {
				return 1
			}
			b := raw[at%len(raw)]
			at++
			return float64(int8(b)) / 16
		}
		for t2 := range frames {
			fr := Frame{X: make([]float64, n), Y: make([]float64, n), Z: make([]float64, n)}
			for i := 0; i < n; i++ {
				fr.X[i] = next()
				fr.Y[i] = next() * 3
				fr.Z[i] = 42
			}
			frames[t2] = fr
		}
		method := []Method{ADP, VQ, VQT, MT}[int(mSel>>4)%4]
		cfg2 := Config{ErrorBound: 1e-3, Mode: Absolute, Method: method, BufferSize: m}
		cfg3 := cfg2
		cfg3.FormatVersion = 3
		blks2 := compressAll(t, cfg2, frames, m)
		blks3 := compressAll(t, cfg3, frames, m)
		d2, d3 := decompressAll(t, blks2), decompressAll(t, blks3)
		if method == ADP {
			requireFramesWithinBound(t, frames, d2, 1e-3)
			requireFramesWithinBound(t, frames, d3, 1e-3)
			return
		}
		requireFramesIdentical(t, d2, d3, "fuzz")
	})
}
