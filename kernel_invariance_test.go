package mdz

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"testing"
)

// kernelGolden pins the SHA-256 of compressed output for every method ×
// sequence combination (plus shard fan-out and outlier-heavy input). The
// hashes were captured from the per-value Quantize/interleave encode path
// immediately before the fused block-kernel rewrite; the kernels must keep
// the stream byte-identical. If an intentional format change ever breaks
// these, regenerate with `go test -run TestGenKernelHashes -v` — but note
// byte identity is also what keeps old archives readable, so think twice.
var kernelGolden = map[string]string{
	"VQ/Seq-1":     "b0350469dc3935a1d81a4a6d406702e5e12f58e3a96c046106ffce71a52d2793",
	"VQ/Seq-2":     "b7d64c806d698e14d9dff0cdb4bf6c6bb5c47adea02c79af301cb792e920c701",
	"VQT/Seq-1":    "b333fcef3b12f56b0881ba3f7c364e664e5f1bdbf10001dfac6a800f93a457d0",
	"VQT/Seq-2":    "f6cce154cfca7d1418a833e71319ef30645f9283fe9dc0f91cf30377ca04743f",
	"MT/Seq-1":     "1772fbf67670ec1a3b168f615adb852193a1e374d23f11cf2b56fa0038c79dc9",
	"MT/Seq-2":     "6347859375efaba9fb54fa476fcf24fc4be961d34751a063e69dcb69fc2ec109",
	"ADP/shards=4": "c18871cb17f48a341adac9bcef51d0057c484e4b2b8e403b4c93baf8298e003f",
	"MT/outliers":  "4b26293f10e7838ba545f8743602ad5c8e008dc150d98c9ff1ac28fcddb5d36d",
	"VQ/outliers":  "d084c53f0477c263bbce720c487696d294a9380871e46b71c70948c9538d014d",
}

func kernelCases() map[string][]byte {
	frames := makeFrames(6, 512, 3)
	out := map[string][]byte{}
	for _, m := range []Method{VQ, VQT, MT} {
		for _, s := range []Sequence{Seq1, Seq2} {
			c, err := NewCompressor(Config{ErrorBound: 1e-3, Method: m, Sequence: s, Shards: 1})
			if err != nil {
				panic(err)
			}
			blk, err := c.CompressBatch(frames)
			if err != nil {
				panic(err)
			}
			out[fmt.Sprintf("%v/%v", m, s)] = blk
		}
	}
	// Shard fan-out under ADP (both sequences' default) exercises every
	// method the adaptive selector picks plus the shard framing.
	c, err := NewCompressor(Config{ErrorBound: 1e-3, Shards: 4})
	if err != nil {
		panic(err)
	}
	blk, err := c.CompressBatch(frames)
	if err != nil {
		panic(err)
	}
	out["ADP/shards=4"] = blk
	// Outlier-heavy input: NaNs and huge jumps force the out-of-scope path
	// (Reserved codes + exact storage) through the kernels' fix-up pass.
	spiky := makeFrames(4, 256, 8)
	for t := range spiky {
		for i := 0; i < 256; i += 17 {
			spiky[t].Y[i] = math.NaN()
		}
		for i := 5; i < 256; i += 29 {
			spiky[t].Y[i] = 1e18
		}
	}
	for _, m := range []Method{MT, VQ} {
		c, err := NewCompressor(Config{ErrorBound: 1e-3, Method: m, Shards: 2})
		if err != nil {
			panic(err)
		}
		blk, err := c.CompressBatch(spiky)
		if err != nil {
			panic(err)
		}
		out[fmt.Sprintf("%v/outliers", m)] = blk
	}
	return out
}

// TestKernelByteInvariance asserts the fused predict+quantize kernels and
// table-driven entropy stage produce byte-identical compressed streams to
// the historical per-value path, for all three methods, both sequences,
// sharded ADP, and outlier-heavy data.
func TestKernelByteInvariance(t *testing.T) {
	cases := kernelCases()
	if len(cases) != len(kernelGolden) {
		t.Fatalf("have %d cases, %d golden hashes", len(cases), len(kernelGolden))
	}
	for name, blk := range cases {
		sum := sha256.Sum256(blk)
		got := hex.EncodeToString(sum[:])
		want, ok := kernelGolden[name]
		if !ok {
			t.Errorf("%s: no golden hash (got %s)", name, got)
			continue
		}
		if got != want {
			t.Errorf("%s: compressed bytes changed: sha256 %s, want %s", name, got, want)
		}
	}
}

// TestGenKernelHashes logs the current hashes in kernelGolden's literal
// format (run with -v) for regenerating the table after a deliberate
// format change.
func TestGenKernelHashes(t *testing.T) {
	cases := kernelCases()
	names := make([]string, 0, len(cases))
	for n := range cases {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sum := sha256.Sum256(cases[n])
		t.Logf("%q: %q,", n, hex.EncodeToString(sum[:]))
	}
}
